// Econometric scenario from the paper's introduction: summarizing a
// statistical relationship "with simple graphs" free of functional-form
// assumptions. We build a synthetic Engel-curve dataset (food share falling
// nonlinearly in log income, heteroskedastic noise), compare the parametric
// regressions an economist might assume (linear, quadratic) against the
// nonparametric fit at the CV-optimal bandwidth, and render the curves as
// ASCII art.
//
//   $ ./engel_curve [n]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/kreg.hpp"
#include "stats/metrics.hpp"
#include "stats/ols.hpp"

namespace {

/// True Engel relationship: food budget share vs log income (Working-Leser
/// with a satiation kink — deliberately not a polynomial).
double true_share(double log_income) {
  const double base = 0.62 - 0.11 * log_income;
  const double satiation = 0.08 * std::exp(-2.0 * (log_income - 1.2) *
                                           (log_income - 1.2));
  return std::max(0.05, base + satiation);
}

kreg::data::Dataset make_engel_data(std::size_t n, kreg::rng::Stream& stream) {
  kreg::data::Dataset d;
  d.x.reserve(n);
  d.y.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double log_income = stream.uniform(0.0, 3.0);  // ~ $1 to $20 (000s)
    const double noise_sd = 0.02 + 0.02 * log_income;    // heteroskedastic
    d.x.push_back(log_income);
    d.y.push_back(true_share(log_income) + stream.gaussian(0.0, noise_sd));
  }
  return d;
}

void ascii_plot(const std::vector<double>& xs,
                const std::vector<std::vector<double>>& series,
                const std::vector<char>& marks) {
  const int rows = 18;
  const int cols = static_cast<int>(xs.size());
  double lo = 1e300;
  double hi = -1e300;
  for (const auto& s : series) {
    for (double v : s) {
      if (std::isfinite(v)) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }
  std::vector<std::string> canvas(rows, std::string(cols, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    for (int c = 0; c < cols; ++c) {
      const double v = series[si][c];
      if (!std::isfinite(v)) {
        continue;
      }
      int r = static_cast<int>((hi - v) / (hi - lo) * (rows - 1) + 0.5);
      r = std::clamp(r, 0, rows - 1);
      canvas[r][c] = marks[si];
    }
  }
  std::printf("  food share (%.2f at top, %.2f at bottom)\n", hi, lo);
  for (const auto& line : canvas) {
    std::printf("  |%s\n", line.c_str());
  }
  std::printf("  +%s\n   log income: %.1f%*s%.1f\n", std::string(cols, '-').c_str(),
              xs.front(), cols - 6, "", xs.back());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3000;
  kreg::rng::Stream stream(7);
  const kreg::data::Dataset data = make_engel_data(n, stream);

  // Parametric baselines an applied economist might reach for.
  const auto linear = kreg::stats::fit_linear(data.x, data.y);
  const auto quadratic = kreg::stats::fit_polynomial(data.x, data.y, 2);

  // Nonparametric: CV-optimal bandwidth via the fast grid search.
  const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(data, 300);
  const auto choice = kreg::SortedGridSelector().select(data, grid);
  const kreg::NadarayaWatson nw(data, choice.bandwidth);

  std::printf("Engel curve, n = %zu\n", n);
  std::printf("  linear fit:     share = %.3f %+.3f * log(income)   (R² = %.3f)\n",
              linear.beta[0], linear.beta[1], linear.r2);
  std::printf("  quadratic fit:  R² = %.3f\n", quadratic.r2);
  std::printf("  kernel regression: h* = %.4f via %s (CV = %.6f)\n\n",
              choice.bandwidth, choice.method.c_str(), choice.cv_score);

  // Evaluate all three against the truth on a grid.
  const int cols = 72;
  std::vector<double> xs(cols);
  std::vector<double> truth(cols);
  std::vector<double> nw_curve(cols);
  std::vector<double> lin_curve(cols);
  for (int c = 0; c < cols; ++c) {
    const double x = 0.05 + (2.95 - 0.05) * c / (cols - 1);
    xs[c] = x;
    truth[c] = true_share(x);
    nw_curve[c] = nw(x);
    lin_curve[c] = linear(x);
  }
  std::printf("  '*' = true relationship, 'k' = kernel regression, '.' = "
              "linear fit\n");
  ascii_plot(xs, {lin_curve, nw_curve, truth}, {'.', 'k', '*'});

  const double mse_nw = kreg::stats::mse(nw_curve, truth);
  const double mse_lin = kreg::stats::mse(lin_curve, truth);
  std::vector<double> quad_curve(cols);
  for (int c = 0; c < cols; ++c) {
    quad_curve[c] = quadratic(xs[c]);
  }
  const double mse_quad = kreg::stats::mse(quad_curve, truth);
  std::printf("\n  MSE against the true curve:  linear %.6f | quadratic %.6f "
              "| kernel %.6f\n",
              mse_lin, mse_quad, mse_nw);
  std::printf("  The kernel regression recovers the satiation bump that both "
              "parametric forms miss.\n");
  return 0;
}
