// Tour of the SPMD device substrate: the programming model the paper's
// CUDA code targets, exposed as a library. Walks through memory allocation
// and its limits, an independent kernel launch, a cooperative reduction,
// and finally the full Program-4 bandwidth selection with its device-side
// statistics.
//
//   $ ./device_tour
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/kreg.hpp"
#include "spmd/device.hpp"
#include "spmd/errors.hpp"
#include "spmd/reduce.hpp"

int main() {
  using kreg::spmd::Device;
  using kreg::spmd::LaunchConfig;

  Device device;  // simulated Tesla S10: 240 cores, 4 GB, 512 threads/block
  const auto& props = device.properties();
  std::printf("device: %s\n", props.name.c_str());
  std::printf("  %zu SMs x %zu cores = %zu cores, warp %zu\n",
              props.multiprocessor_count, props.cores_per_multiprocessor,
              props.total_cores(), props.warp_size);
  std::printf("  %zu MB global, %zu KB constant cache, %zu KB shared/block, "
              "max %zu threads/block\n\n",
              props.global_memory_bytes >> 20, props.constant_cache_bytes >> 10,
              props.shared_memory_per_block >> 10,
              props.max_threads_per_block);

  // --- Global memory and the allocation ledger ---------------------------
  {
    auto buf = device.alloc_global<float>(1 << 20);
    std::printf("allocated 4 MB: ledger shows %zu bytes in use, peak %zu\n",
                device.global_allocated(), device.global_peak());
  }
  std::printf("buffer destroyed: ledger back to %zu bytes\n\n",
              device.global_allocated());

  // --- An independent kernel: square every element -----------------------
  const std::size_t n = 10000;
  auto data = device.alloc_global<double>(n);
  std::vector<double> host(n);
  std::iota(host.begin(), host.end(), 0.0);
  device.copy_to_device(data, std::span<const double>(host));
  std::span<double> view = data.span();
  device.launch(LaunchConfig::cover(n, 256),
                [view, n](const kreg::spmd::ThreadCtx& t) {
                  const std::size_t j = t.global_idx();
                  if (j < n) {
                    view[j] = view[j] * view[j];
                  }
                });
  std::printf("independent kernel squared %zu elements; element 7 = %.0f\n",
              n, view[7]);

  // --- A cooperative (shared-memory) reduction ----------------------------
  const double total = kreg::spmd::reduce_sum<double>(device, view);
  const double expected = (n - 1.0) * n * (2.0 * n - 1.0) / 6.0;
  std::printf("Harris-style tree reduction: sum of squares = %.6e (closed "
              "form %.6e)\n\n",
              total, expected);

  // --- The paper's capacity limits, on demand ------------------------------
  try {
    auto hopeless = device.alloc_global<float>(2ULL << 30);  // 8 GB
  } catch (const kreg::spmd::DeviceAllocError& e) {
    std::printf("8 GB request rejected: %s\n", e.what());
  }
  try {
    std::vector<float> too_many(4096, 1.0f);
    auto c = device.upload_constant<float>(too_many);
  } catch (const kreg::spmd::ConstantCapacityError& e) {
    std::printf("4096-bandwidth constant upload rejected: %s\n\n", e.what());
  }

  // --- Program 4 end to end -------------------------------------------------
  kreg::rng::Stream stream(5);
  const kreg::data::Dataset sample = kreg::data::paper_dgp(2000, stream);
  const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(sample, 50);
  kreg::SpmdSelectorConfig cfg;  // float, 512 threads/block, like the paper
  const auto result = kreg::SpmdGridSelector(device, cfg).select(sample, grid);
  std::printf("Program 4 on n=2000, k=50: h* = %.4f, CV = %.6f\n",
              result.bandwidth, result.cv_score);
  std::printf("device stats: %zu independent launches, %zu cooperative "
              "launches, %zu blocks, %zu threads, peak memory %.1f MB\n",
              device.stats().kernel_launches,
              device.stats().cooperative_launches,
              device.stats().blocks_executed, device.stats().threads_executed,
              static_cast<double>(device.global_peak()) / (1 << 20));
  return 0;
}
