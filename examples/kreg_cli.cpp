// Command-line selection engine: the downstream-user entry point the
// paper promises as an R package, delivered here as a standalone tool.
// Reads a two-column CSV (x,y), selects the CV-optimal smoothing parameter
// for the chosen estimator, and optionally prints the fitted curve.
//
// Usage:
//   kreg_cli <data.csv> [options]
//   kreg_cli --demo [n]            # run on freshly generated paper-DGP data
//
// Options:
//   --estimator nw|knn|oscv (default nw). nw: Nadaraya–Watson with the
//             LOO-CV bandwidth grid search. knn: k-NN regression, the
//             neighbour count selected by exact fast LOOCV over a k-grid
//             (methods window|parallel|tiled|spmd|naive). oscv: NW with
//             the bandwidth selected by one-sided CV and reported as the
//             rescaled h = C*b (same methods as knn).
//   --method  sorted|window|tiled|parallel|naive|dense|spmd|spmd-per-row|
//             optimizer|silverman|scott (default sorted; spmd runs the
//             window sweep, spmd-per-row the paper-faithful per-thread
//             sort, tiled the cache-blocked host mirror of the streamed
//             device sweep)
//   --kernel  epanechnikov|uniform|triangular|biweight|triweight|cosine|
//             gaussian (default epanechnikov)
//   --k       grid size (default 200)
//   --hmin    minimum bandwidth (default: domain/k)
//   --hmax    maximum bandwidth (default: domain of X)
//   --refine  run 3 zoom rounds after the grid search
//   --curve N print the fitted regression curve at N points
//   --k-block N       stream the spmd window sweep in k-blocks of N
//   --n-block N       tile the observations too: stream in n-blocks of N
//                     (spmd window methods and the tiled host mirror)
//   --memory-budget S device-memory budget for auto (n, k)-blocking, e.g.
//                     128MiB (sizes accept b/KB/KiB/MB/MiB/...)
//   --lane-width N    lanes per batch for the batched window kernels
//                     (0 = auto, 1 = scalar, 4/8/16 = vector widths;
//                     spmd window methods and the tiled host mirror)
//   --sigma-sort on|off  enable/disable the σ-sort before lane batching
//                     (on = the default position-length policy; bitwise
//                     identical either way)
//   --sigma-policy none|length|position-length  exact σ-sort policy:
//                     length = PR 6's window-length sort, position-length
//                     = two-key position-bucket + length sort (default)
//   --prefetch-distance N  software-prefetch admission lines N phase-2
//                     steps ahead in the batched kernels (0 = off, the
//                     default; also KREG_PREFETCH_DIST)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/kreg.hpp"
#include "spmd/device.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <data.csv> | --demo [n]\n"
               "  [--estimator nw|knn|oscv]\n"
               "  [--method sorted|window|tiled|parallel|naive|dense|spmd|"
               "spmd-per-row|optimizer|silverman|scott]\n"
               "  (knn/oscv support window|parallel|tiled|spmd|naive)\n"
               "  [--kernel epanechnikov|uniform|triangular|biweight|"
               "triweight|cosine|gaussian]\n"
               "  [--k K] [--hmin H] [--hmax H] [--refine] [--curve N]\n"
               "  [--k-block N] [--n-block N] [--memory-budget SIZE]\n"
               "  [--lane-width 0|1|4|8|16] [--sigma-sort on|off]\n"
               "  [--sigma-policy none|length|position-length]\n"
               "  [--prefetch-distance N]\n",
               argv0);
  std::exit(2);
}

/// The cache-blocked host mirror of the streamed device sweep, exposed as a
/// selector so --n-block / --k-block / --memory-budget drive the same tiling
/// machinery on the CPU (see host_tiling_from_stream). Runs the batched
/// (lane-vectorized) kernels by default — bitwise identical to the scalar
/// tiled sweep for every lane width, so the switch is pure speed.
class TiledWindowSelector final : public kreg::Selector {
 public:
  TiledWindowSelector(kreg::KernelType kernel, kreg::HostTiling tiling,
                      kreg::BatchedSweep batched)
      : kernel_(kernel), tiling_(tiling), batched_(batched) {}

  kreg::SelectionResult select(const kreg::data::Dataset& data,
                               const kreg::BandwidthGrid& grid) const override {
    const std::vector<double> scores = kreg::window_cv_profile_batched(
        data, grid.values(), kernel_, kreg::Precision::kDouble, batched_,
        tiling_);
    std::size_t best = 0;
    for (std::size_t b = 1; b < scores.size(); ++b) {
      if (scores[b] < scores[best]) {
        best = b;
      }
    }
    kreg::SelectionResult result;
    result.bandwidth = grid[best];
    result.cv_score = scores[best];
    result.grid = grid.values();
    result.scores = scores;
    result.evaluations = grid.size();
    result.method = name();
    return result;
  }

  std::string name() const override {
    std::string n = "tiled-window(" + std::string(kreg::to_string(kernel_));
    if (tiling_.n_block != 0) {
      n += ",nblock=" + std::to_string(tiling_.n_block);
    }
    if (tiling_.k_block != 0) {
      n += ",kblock=" + std::to_string(tiling_.k_block);
    }
    const std::size_t lanes = kreg::resolve_lane_width(batched_.lane_width);
    if (lanes > 1) {
      n += ",lanes=" + std::to_string(lanes);
      if (batched_.sigma != kreg::SigmaPolicy::kNone) {
        n += ",sigma=" + std::string(kreg::to_string(batched_.sigma));
      }
      if (batched_.prefetch_distance != kreg::kPrefetchFromEnv &&
          batched_.prefetch_distance != 0) {
        n += ",prefetch=" + std::to_string(batched_.prefetch_distance);
      }
    }
    n += ")";
    return n;
  }

 private:
  kreg::KernelType kernel_;
  kreg::HostTiling tiling_;
  kreg::BatchedSweep batched_;
};

kreg::KernelType parse_kernel(const std::string& name) {
  for (kreg::KernelType k : kreg::kAllKernels) {
    if (name == kreg::to_string(k)) {
      return k;
    }
  }
  throw std::invalid_argument("unknown kernel: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
  }
  std::string input;
  std::size_t demo_n = 0;
  std::string method = "sorted";
  std::string estimator_name = "nw";
  std::string kernel_name = "epanechnikov";
  std::size_t k = 200;
  double hmin = 0.0;
  double hmax = 0.0;
  bool refine = false;
  std::size_t curve_points = 0;
  kreg::StreamingConfig stream;
  kreg::BatchedSweep batched;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--demo") {
      demo_n = (i + 1 < argc && argv[i + 1][0] != '-')
                   ? std::strtoul(argv[++i], nullptr, 10)
                   : 2000;
    } else if (arg == "--method") {
      method = next();
    } else if (arg == "--estimator") {
      estimator_name = next();
    } else if (arg == "--kernel") {
      kernel_name = next();
    } else if (arg == "--k") {
      k = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--hmin") {
      hmin = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--hmax") {
      hmax = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--refine") {
      refine = true;
    } else if (arg == "--curve") {
      curve_points = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--k-block") {
      stream.k_block = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--n-block") {
      stream.n_block = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--memory-budget") {
      try {
        stream.memory_budget_bytes = kreg::parse_memory_budget(next());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        usage(argv[0]);
      }
    } else if (arg == "--lane-width") {
      batched.lane_width = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--sigma-sort") {
      const std::string v = next();
      if (v != "on" && v != "off") {
        usage(argv[0]);
      }
      batched.sigma = v == "on" ? kreg::SigmaPolicy::kPositionLength
                                : kreg::SigmaPolicy::kNone;
    } else if (arg == "--sigma-policy") {
      try {
        batched.sigma = kreg::parse_sigma_policy(next());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        usage(argv[0]);
      }
    } else if (arg == "--prefetch-distance") {
      try {
        batched.prefetch_distance = kreg::parse_prefetch_distance(next());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        usage(argv[0]);
      }
    } else if (arg.rfind("--", 0) == 0) {
      usage(argv[0]);
    } else {
      input = arg;
    }
  }

  try {
    kreg::data::Dataset data;
    if (demo_n > 0) {
      kreg::rng::Stream stream(2017);
      data = kreg::data::paper_dgp(demo_n, stream);
      std::printf("demo mode: generated %zu paper-DGP observations\n",
                  demo_n);
    } else {
      if (input.empty()) {
        usage(argv[0]);
      }
      data = kreg::data::read_csv_file(input);
      std::printf("read %zu observations from %s\n", data.size(),
                  input.c_str());
    }
    data.validate();
    const kreg::KernelType kernel = parse_kernel(kernel_name);
    const kreg::EstimatorKind estimator = kreg::parse_estimator(estimator_name);
    if (estimator != kreg::EstimatorKind::kNadarayaWatson) {
      if (refine) {
        std::fprintf(stderr,
                     "error: --refine applies to the nw estimator only\n");
        return 2;
      }
      if (method == "sorted") {
        method = "window";  // the fast sweep is the natural default here
      }
    }

    // k-NN selects a neighbour count, not a bandwidth — no h-grid at all.
    if (estimator == kreg::EstimatorKind::kKnn) {
      const std::vector<std::size_t> kgrid =
          kreg::default_neighbor_grid(data.size(), k);
      std::vector<double> scores;
      std::string method_name;
      std::unique_ptr<kreg::spmd::Device> device;
      if (method == "window") {
        scores = kreg::knn_cv_profile(data, kgrid);
        method_name = "knn-window-sweep";
      } else if (method == "parallel") {
        scores = kreg::knn_cv_profile_parallel(data, kgrid);
        method_name = "knn-window-sweep-parallel";
      } else if (method == "tiled") {
        scores = kreg::knn_cv_profile_tiled(
            data, kgrid, kreg::Precision::kDouble,
            kreg::host_tiling_from_stream(stream));
        method_name = "knn-window-sweep-tiled";
      } else if (method == "spmd") {
        device = std::make_unique<kreg::spmd::Device>();
        kreg::KnnDeviceConfig cfg;
        cfg.stream = stream;
        scores = kreg::knn_cv_profile_device(*device, data, kgrid, cfg);
        method_name = "knn-window-sweep-spmd";
      } else if (method == "naive") {
        scores = kreg::knn_cv_profile_naive(data, kgrid);
        method_name = "knn-naive";
      } else {
        usage(argv[0]);
      }
      const kreg::KnnSelectionResult result = kreg::knn_selection_from_profile(
          kgrid, std::move(scores), std::move(method_name));
      std::printf("k = %zu neighbors (CV = %.6f) via %s [%zu evaluations]\n",
                  result.k, result.cv_score, result.method.c_str(),
                  result.grid.size());
      if (curve_points > 1) {
        const kreg::KnnRegression fit(data, result.k);
        const auto [mn, mx] =
            std::minmax_element(data.x.begin(), data.x.end());
        std::printf("x,fitted\n");
        for (std::size_t i = 0; i < curve_points; ++i) {
          const double x0 =
              *mn + (*mx - *mn) * static_cast<double>(i) /
                        static_cast<double>(curve_points - 1);
          std::printf("%.6f,%.6f\n", x0, fit.predict(x0));
        }
      }
      return 0;
    }

    // Rule-of-thumb methods need no grid.
    if (method == "silverman" || method == "scott") {
      const auto r = kreg::rule_of_thumb_select(
          data,
          method == "silverman" ? kreg::ThumbRule::kSilverman
                                : kreg::ThumbRule::kScott,
          kernel);
      std::printf("h = %.6f (CV = %.6f) via %s\n", r.bandwidth, r.cv_score,
                  r.method.c_str());
      return 0;
    }

    const double domain = data.x_domain();
    if (hmax <= 0.0) {
      hmax = domain;
    }
    if (hmin <= 0.0) {
      hmin = hmax / static_cast<double>(k);
    }
    const kreg::BandwidthGrid grid(hmin, hmax, k);

    // OSCV: minimize the one-sided criterion over the b-grid, then fit NW
    // at the rescaled two-sided bandwidth h = C*b.
    if (estimator == kreg::EstimatorKind::kOscv) {
      std::vector<double> scores;
      std::string method_name;
      std::unique_ptr<kreg::spmd::Device> device;
      if (method == "window") {
        scores = kreg::oscv_profile(data, grid.values(), kernel);
        method_name = "oscv-sweep";
      } else if (method == "parallel") {
        scores = kreg::oscv_profile_parallel(data, grid.values(), kernel);
        method_name = "oscv-sweep-parallel";
      } else if (method == "tiled") {
        scores = kreg::oscv_profile_tiled(
            data, grid.values(), kernel, kreg::Precision::kDouble,
            kreg::host_tiling_from_stream(stream));
        method_name = "oscv-sweep-tiled";
      } else if (method == "spmd") {
        device = std::make_unique<kreg::spmd::Device>();
        kreg::OscvDeviceConfig cfg;
        cfg.stream = stream;
        scores =
            kreg::oscv_profile_device(*device, data, grid.values(), kernel, cfg);
        method_name = "oscv-sweep-spmd";
      } else if (method == "naive") {
        scores = kreg::oscv_profile_naive(data, grid.values(), kernel);
        method_name = "oscv-naive";
      } else {
        usage(argv[0]);
      }
      kreg::SelectionResult result = kreg::selection_from_profile(
          grid, std::move(scores), std::move(method_name));
      const double rescale = kreg::oscv_rescale_constant(kernel);
      const double b_hat = result.bandwidth;
      result.bandwidth *= rescale;
      std::printf(
          "b = %.6f (OSCV = %.6f) -> h = %.6f (C = %.4f) via %s "
          "[%zu evaluations]\n",
          b_hat, result.cv_score, result.bandwidth, rescale,
          result.method.c_str(), result.evaluations);
      if (curve_points > 1) {
        const kreg::NadarayaWatson fit(data, result.bandwidth, kernel);
        const auto curve = fit.curve(curve_points);
        std::printf("x,fitted\n");
        for (std::size_t i = 0; i < curve.x.size(); ++i) {
          std::printf("%.6f,%.6f\n", curve.x[i], curve.y[i]);
        }
      }
      return 0;
    }

    std::unique_ptr<kreg::Selector> selector;
    std::unique_ptr<kreg::spmd::Device> device;
    if (method == "sorted") {
      selector = std::make_unique<kreg::SortedGridSelector>(kernel);
    } else if (method == "window") {
      selector = std::make_unique<kreg::WindowSweepSelector>(kernel);
    } else if (method == "tiled") {
      selector = std::make_unique<TiledWindowSelector>(
          kernel, kreg::host_tiling_from_stream(stream), batched);
    } else if (method == "spmd-per-row" || method == "spmd-window") {
      // spmd-window is kept as an explicit alias now that plain spmd
      // defaults to the window sweep.
      device = std::make_unique<kreg::spmd::Device>();
      kreg::SpmdSelectorConfig cfg;
      cfg.kernel = kernel;
      cfg.algorithm = method == "spmd-per-row"
                          ? kreg::SweepAlgorithm::kPerRowSort
                          : kreg::SweepAlgorithm::kWindow;
      cfg.stream = stream;
      cfg.lane_width = batched.lane_width;
      cfg.sigma = batched.sigma;
      cfg.prefetch_distance = batched.prefetch_distance;
      selector = std::make_unique<kreg::SpmdGridSelector>(*device, cfg);
    } else if (method == "parallel") {
      selector = std::make_unique<kreg::ParallelSortedGridSelector>(kernel);
    } else if (method == "naive") {
      selector = std::make_unique<kreg::NaiveGridSelector>(kernel);
    } else if (method == "dense") {
      selector = std::make_unique<kreg::DenseGridSelector>(kernel);
    } else if (method == "spmd") {
      device = std::make_unique<kreg::spmd::Device>();
      kreg::SpmdSelectorConfig cfg;
      cfg.kernel = kernel;
      cfg.stream = stream;
      cfg.lane_width = batched.lane_width;
      cfg.sigma = batched.sigma;
      cfg.prefetch_distance = batched.prefetch_distance;
      selector = std::make_unique<kreg::SpmdGridSelector>(*device, cfg);
    } else if (method == "optimizer") {
      kreg::CvOptimizerSelector::Config cfg;
      cfg.kernel = kernel;
      selector = std::make_unique<kreg::CvOptimizerSelector>(cfg);
    } else {
      usage(argv[0]);
    }

    kreg::SelectionResult result;
    if (refine) {
      result = kreg::refine_select(*selector, data, grid);
    } else {
      result = selector->select(data, grid);
    }
    std::printf("h = %.6f (CV = %.6f) via %s [%zu evaluations]\n",
                result.bandwidth, result.cv_score, result.method.c_str(),
                result.evaluations);

    if (curve_points > 1) {
      const kreg::NadarayaWatson fit(data, result.bandwidth, kernel);
      const auto curve = fit.curve(curve_points);
      std::printf("x,fitted\n");
      for (std::size_t i = 0; i < curve.x.size(); ++i) {
        std::printf("%.6f,%.6f\n", curve.x[i], curve.y[i]);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
