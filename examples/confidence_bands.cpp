// Confidence-interval extension (paper §II: "the estimation of
// leave-one-out cross-validated confidence intervals for … kernel
// regressions"). Selects the CV-optimal bandwidth on the doppler signal,
// computes pointwise LOO-residual confidence bands, and reports empirical
// coverage of the true mean.
//
//   $ ./confidence_bands [n]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/kreg.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2500;

  kreg::rng::Stream stream(101);
  const kreg::data::Dataset data = kreg::data::sine_dgp(n, stream, 0.25);

  const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(data, 250);
  const auto choice = kreg::SortedGridSelector().select(data, grid);
  std::printf("sine DGP, n = %zu; CV-optimal h = %.4f\n\n", n,
              choice.bandwidth);

  const auto band = kreg::nw_confidence_band(
      data, choice.bandwidth, kreg::KernelType::kEpanechnikov, 60, 0.95);

  std::printf("%8s %10s %10s %10s %10s %8s\n", "x", "fit", "lower", "upper",
              "truth", "covered");
  std::size_t covered = 0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < band.x.size(); i += 3) {
    if (!std::isfinite(band.fit[i])) {
      continue;
    }
    const double truth = kreg::data::sine_dgp_mean(band.x[i]);
    const bool hit = truth >= band.lower[i] && truth <= band.upper[i];
    std::printf("%8.3f %10.4f %10.4f %10.4f %10.4f %8s\n", band.x[i],
                band.fit[i], band.lower[i], band.upper[i], truth,
                hit ? "yes" : "NO");
  }
  for (std::size_t i = 0; i < band.x.size(); ++i) {
    if (!std::isfinite(band.fit[i])) {
      continue;
    }
    const double truth = kreg::data::sine_dgp_mean(band.x[i]);
    ++counted;
    covered += (truth >= band.lower[i] && truth <= band.upper[i]) ? 1 : 0;
  }
  std::printf("\npointwise 95%% band coverage of the true mean: %zu/%zu = "
              "%.1f%%\n",
              covered, counted,
              100.0 * static_cast<double>(covered) /
                  static_cast<double>(counted));
  std::printf("(pointwise residual-based bands; smoothing bias is not "
              "corrected, so coverage dips\n where the mean bends fastest)\n");
  return 0;
}
