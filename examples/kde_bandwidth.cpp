// KDE extension (paper §II: the least-squares cross-validation machinery
// "can be applied to … optimal bandwidth selection for kernel density
// estimation"). Draws from a bimodal mixture, selects the LSCV-optimal
// bandwidth over a grid, and contrasts the resulting density with
// oversmoothed/undersmoothed alternatives and the Silverman rule.
//
//   $ ./kde_bandwidth [n]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>
#include <vector>

#include "core/kreg.hpp"

namespace {

double mixture_pdf(double x) {
  const auto normal_pdf = [](double v, double mu, double sd) {
    const double z = (v - mu) / sd;
    return std::exp(-0.5 * z * z) / (sd * std::sqrt(2.0 * std::numbers::pi));
  };
  return 0.6 * normal_pdf(x, -1.5, 0.5) + 0.4 * normal_pdf(x, 1.0, 0.8);
}

void ascii_density(const kreg::KernelDensity& f, double lo, double hi,
                   char mark) {
  const int cols = 70;
  const int rows = 10;
  std::vector<double> vals(cols);
  double peak = 0.0;
  for (int c = 0; c < cols; ++c) {
    vals[c] = f(lo + (hi - lo) * c / (cols - 1));
    peak = std::max(peak, vals[c]);
  }
  std::vector<std::string> canvas(rows, std::string(cols, ' '));
  for (int c = 0; c < cols; ++c) {
    const int height = static_cast<int>(vals[c] / peak * (rows - 1) + 0.5);
    for (int r = 0; r < height; ++r) {
      canvas[rows - 1 - r][c] = mark;
    }
  }
  for (const auto& line : canvas) {
    std::printf("  |%s\n", line.c_str());
  }
  std::printf("  +%s\n", std::string(cols, '-').c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;

  kreg::rng::Stream stream(2024);
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = stream.uniform() < 0.6 ? stream.gaussian(-1.5, 0.5)
                               : stream.gaussian(1.0, 0.8);
  }

  // LSCV bandwidth selection over a grid via the paper's sorting trick
  // (kde_select_sweep): one sort per observation serves all 150 candidate
  // bandwidths; kde_select_grid would pay O(n²) per candidate instead.
  const kreg::BandwidthGrid grid(0.02, 1.5, 150);
  const auto choice = kreg::kde_select_sweep(xs, grid);
  std::printf("n = %zu draws from 0.6·N(-1.5,0.5²) + 0.4·N(1.0,0.8²)\n", n);
  std::printf("LSCV-optimal h = %.4f (score %.6f)\n", choice.bandwidth,
              choice.cv_score);
  const double silverman =
      kreg::silverman_bandwidth(xs, kreg::KernelType::kEpanechnikov);
  std::printf("Silverman rule  h = %.4f (LSCV score %.6f)\n\n", silverman,
              kreg::kde_lscv_score(xs, silverman));

  std::printf("density at the LSCV-optimal bandwidth (h = %.3f):\n",
              choice.bandwidth);
  ascii_density(kreg::KernelDensity(xs, choice.bandwidth), -3.5, 3.5, '#');

  std::printf("\novers moothed (h = 1.2): the two modes blur into one\n");
  ascii_density(kreg::KernelDensity(xs, 1.2), -3.5, 3.5, '#');

  std::printf("\nundersmoothed (h = 0.05): spurious wiggles\n");
  ascii_density(kreg::KernelDensity(xs, 0.05), -3.5, 3.5, '#');

  // Quantify against the true density.
  const auto ise = [&](double h) {
    kreg::KernelDensity f(xs, h);
    double acc = 0.0;
    const int steps = 2000;
    for (int i = 0; i < steps; ++i) {
      const double x = -4.0 + 8.0 * (i + 0.5) / steps;
      const double e = f(x) - mixture_pdf(x);
      acc += e * e;
    }
    return acc * 8.0 / steps;
  };
  std::printf("\nintegrated squared error vs the true mixture:\n");
  std::printf("  LSCV h=%.3f : %.6f\n", choice.bandwidth,
              ise(choice.bandwidth));
  std::printf("  Silverman   : %.6f\n", ise(silverman));
  std::printf("  h = 1.2     : %.6f\n", ise(1.2));
  std::printf("  h = 0.05    : %.6f\n", ise(0.05));
  return 0;
}
