// Multivariate bandwidth selection (paper §III: "an evenly-spaced grid or
// matrix in multivariate contexts"). Selects a per-dimension bandwidth
// vector for a 2-D product-kernel regression by exhaustive Cartesian grid
// search and by coordinate descent, and compares fits against the truth.
//
//   $ ./multivariate_selection [n]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/kreg.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 600;

  kreg::rng::Stream stream(123);
  const kreg::data::MDataset data =
      kreg::data::multivariate_dgp(n, 2, stream, 0.2);
  std::printf("additive DGP on [0,1]^2: Y = sin(2πx1) + 10·x2² + N(0,0.2)\n");
  std::printf("n = %zu\n\n", n);

  // Exhaustive Cartesian product of two 12-point grids (144 CV evaluations).
  const auto grids = kreg::default_grids_for(data, 12);
  const auto exhaustive = kreg::multi_grid_search(data, grids);
  std::printf("exhaustive grid search (%zu cells):\n", exhaustive.evaluations);
  std::printf("  h = (%.4f, %.4f), CV = %.6f\n", exhaustive.bandwidths[0],
              exhaustive.bandwidths[1], exhaustive.cv_score);

  // Coordinate descent on finer per-dimension grids.
  const auto fine_grids = kreg::default_grids_for(data, 40);
  const auto descent = kreg::multi_coordinate_descent(data, fine_grids);
  std::printf("coordinate descent (40-pt grids, %zu CV evaluations):\n",
              descent.evaluations);
  std::printf("  h = (%.4f, %.4f), CV = %.6f\n\n", descent.bandwidths[0],
              descent.bandwidths[1], descent.cv_score);

  // The selected bandwidths reflect each dimension's curvature: the sine
  // direction (x1) wants a narrower bandwidth than the smooth quadratic.
  const kreg::NadarayaWatsonMulti fit(data, descent.bandwidths);
  std::printf("%8s %8s %12s %12s %12s\n", "x1", "x2", "fitted", "true",
              "error");
  for (double x1 : {0.25, 0.5, 0.75}) {
    for (double x2 : {0.25, 0.5, 0.75}) {
      const std::vector<double> x = {x1, x2};
      const double predicted = fit(x);
      const double truth = kreg::data::multivariate_dgp_mean(x);
      std::printf("%8.2f %8.2f %12.4f %12.4f %12.4f\n", x1, x2, predicted,
                  truth, predicted - truth);
    }
  }
  return 0;
}
