// Quickstart: generate the paper's synthetic data, select the optimal
// bandwidth with the fast sorted grid search, fit the Nadaraya-Watson
// regression, and print the fitted curve against the truth.
//
//   $ ./quickstart [n]
#include <cstdio>
#include <cstdlib>

#include "core/kreg.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;

  // 1. Data: X ~ U(0,1), Y = 0.5X + 10X² + U(0, 0.5)  (paper §IV).
  kreg::rng::Stream stream(42);
  const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);

  // 2. Candidate bandwidths: the paper's default grid — max = domain of X,
  //    min = domain / k, evenly spaced.
  const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(data, 200);

  // 3. Select the LOO-CV-optimal bandwidth with the sorted grid search
  //    (Program 3: O(n² log n) instead of the naive O(k·n²)).
  const kreg::SortedGridSelector selector;
  const kreg::SelectionResult choice = selector.select(data, grid);
  std::printf("n = %zu, grid of %zu bandwidths on [%.4f, %.4f]\n", n,
              grid.size(), grid.min(), grid.max());
  std::printf("selected h = %.4f  (CV = %.6f, method: %s)\n\n",
              choice.bandwidth, choice.cv_score, choice.method.c_str());

  // 4. Fit and evaluate.
  const kreg::NadarayaWatson fit(data, choice.bandwidth);
  std::printf("%8s %12s %12s %12s\n", "x", "fitted", "true mean", "error");
  for (double x = 0.05; x < 1.0; x += 0.1) {
    const double predicted = fit(x);
    const double truth = kreg::data::paper_dgp_mean(x);
    std::printf("%8.2f %12.4f %12.4f %12.4f\n", x, predicted, truth,
                predicted - truth);
  }

  // 5. Compare against what a rule of thumb would have chosen.
  const auto thumb = kreg::rule_of_thumb_select(data);
  std::printf("\nSilverman rule of thumb: h = %.4f (CV = %.6f) — CV-optimal "
              "h = %.4f (CV = %.6f)\n",
              thumb.bandwidth, thumb.cv_score, choice.bandwidth,
              choice.cv_score);
  return 0;
}
