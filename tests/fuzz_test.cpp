// Reproducible fuzz suite: Philox-driven random configurations hammer the
// core equivalences. Each case derives every choice (n, k, grid range,
// kernel, data shape) from a counter-based stream, so failures replay
// exactly from the case index.
#include <gtest/gtest.h>

#include <cmath>

#include "core/kreg.hpp"
#include "rng/philox.hpp"
#include "spmd/device.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::KernelType;
using kreg::data::Dataset;

/// Deterministic config drawn from a Philox stream keyed by the case index.
struct FuzzCase {
  Dataset data;
  double h_min = 0.0;
  double h_max = 0.0;
  std::size_t k = 0;
  KernelType kernel = KernelType::kEpanechnikov;
};

FuzzCase make_case(std::uint32_t index) {
  kreg::rng::Philox4x32 eng({index, 0xFEEDu}, {0, 0, 0, 0});
  auto next_unit = [&] {
    return static_cast<double>(eng()) / 4294967296.0;
  };

  FuzzCase c;
  const std::size_t n = 20 + static_cast<std::size_t>(next_unit() * 180);
  const std::size_t k = 2 + static_cast<std::size_t>(next_unit() * 60);
  const double x_scale = 0.1 + next_unit() * 20.0;   // non-unit domains
  const double x_shift = (next_unit() - 0.5) * 50.0; // off-origin
  const double y_scale = 0.1 + next_unit() * 10.0;

  c.data.x.reserve(n);
  c.data.y.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = next_unit();
    const double noise = next_unit() - 0.5;
    c.data.x.push_back(x_shift + x_scale * u);
    c.data.y.push_back(y_scale * (std::sin(6.0 * u) + 0.3 * noise));
  }
  // Cluster duplicates occasionally (ties in X).
  if (index % 3 == 0 && n > 10) {
    for (std::size_t i = 0; i < n / 10; ++i) {
      c.data.x[i + 1] = c.data.x[0];
    }
  }

  c.k = k;
  c.h_max = x_scale * (0.3 + next_unit());
  c.h_min = c.h_max / static_cast<double>(k + 1);
  static constexpr std::array<KernelType, 5> kSweepable = {
      KernelType::kEpanechnikov, KernelType::kUniform,
      KernelType::kTriangular, KernelType::kBiweight,
      KernelType::kTriweight};
  c.kernel = kSweepable[eng() % kSweepable.size()];
  return c;
}

class FuzzSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FuzzSweep, SortedSweepMatchesNaiveOnRandomConfig) {
  const FuzzCase c = make_case(GetParam());
  const BandwidthGrid grid(c.h_min, c.h_max, c.k);
  const auto naive = kreg::NaiveGridSelector(c.kernel).select(c.data, grid);
  const auto swept = kreg::SortedGridSelector(c.kernel).select(c.data, grid);
  ASSERT_EQ(swept.scores.size(), naive.scores.size());
  for (std::size_t b = 0; b < naive.scores.size(); ++b) {
    ASSERT_NEAR(swept.scores[b], naive.scores[b],
                1e-8 * std::max(1.0, naive.scores[b]))
        << "case " << GetParam() << " kernel " << to_string(c.kernel)
        << " b=" << b;
  }
  EXPECT_DOUBLE_EQ(swept.bandwidth, naive.bandwidth) << "case " << GetParam();
}

TEST_P(FuzzSweep, DeviceMatchesHostOnRandomConfig) {
  const FuzzCase c = make_case(GetParam());
  const BandwidthGrid grid(c.h_min, c.h_max, c.k);
  kreg::spmd::Device device;
  kreg::SpmdSelectorConfig cfg;
  cfg.kernel = c.kernel;
  cfg.precision = kreg::Precision::kDouble;
  // Vary execution shape with the case index, too.
  cfg.threads_per_block = 32u << (GetParam() % 5);
  cfg.layout = GetParam() % 2 == 0 ? kreg::ResidualLayout::kBandwidthMajor
                                   : kreg::ResidualLayout::kObservationMajor;
  cfg.streaming = GetParam() % 4 == 1;
  cfg.algorithm = GetParam() % 3 == 0 ? kreg::SweepAlgorithm::kPerRowSort
                                      : kreg::SweepAlgorithm::kWindow;

  const auto host = kreg::SortedGridSelector(c.kernel).select(c.data, grid);
  const auto device_result =
      kreg::SpmdGridSelector(device, cfg).select(c.data, grid);
  EXPECT_DOUBLE_EQ(device_result.bandwidth, host.bandwidth)
      << "case " << GetParam();
  for (std::size_t b = 0; b < host.scores.size(); ++b) {
    ASSERT_NEAR(device_result.scores[b], host.scores[b],
                1e-8 * std::max(1.0, host.scores[b]))
        << "case " << GetParam() << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, FuzzSweep, ::testing::Range(0u, 24u));

class FuzzKde : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FuzzKde, KdeSweepMatchesDirectOnRandomConfig) {
  const FuzzCase c = make_case(1000 + GetParam());
  const KernelType kernel = GetParam() % 2 == 0 ? KernelType::kEpanechnikov
                                                : KernelType::kUniform;
  const BandwidthGrid grid(c.h_min, c.h_max, c.k);
  const auto swept =
      kreg::kde_sweep_lscv_profile(c.data.x, grid.values(), kernel);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    const double direct = kreg::kde_lscv_score(c.data.x, grid[b], kernel);
    ASSERT_NEAR(swept[b], direct, 1e-8 * std::max(1.0, std::abs(direct)))
        << "case " << GetParam() << " b=" << b;
  }
}

TEST_P(FuzzKde, DeviceKdeMatchesDirectOnRandomConfig) {
  const FuzzCase c = make_case(1000 + GetParam());
  const KernelType kernel = GetParam() % 2 == 0 ? KernelType::kEpanechnikov
                                                : KernelType::kUniform;
  const BandwidthGrid grid(c.h_min, c.h_max, c.k);
  kreg::spmd::Device device;
  kreg::SpmdKdeConfig cfg;
  cfg.kernel = kernel;
  cfg.threads_per_block = 32u << (GetParam() % 5);
  cfg.algorithm = GetParam() % 3 == 0 ? kreg::SweepAlgorithm::kPerRowSort
                                      : kreg::SweepAlgorithm::kWindow;
  const auto r = kreg::SpmdKdeSelector(device, cfg).select(c.data.x, grid);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    const double direct = kreg::kde_lscv_score(c.data.x, grid[b], kernel);
    ASSERT_NEAR(r.scores[b], direct, 1e-8 * std::max(1.0, std::abs(direct)))
        << "case " << GetParam() << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, FuzzKde, ::testing::Range(0u, 12u));

/// Random multivariate ray configurations: dimension, ratios, duplicated
/// rows, and tied leading coordinates all drawn from the case stream.
class FuzzRay : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FuzzRay, RayWindowMatchesPerRowAndDirectOnRandomConfig) {
  const std::uint32_t index = GetParam();
  kreg::rng::Philox4x32 eng({index, 0xABCDu}, {0, 0, 0, 0});
  auto next_unit = [&] {
    return static_cast<double>(eng()) / 4294967296.0;
  };

  kreg::data::MDataset data;
  data.dim = 1 + eng() % 3;
  const std::size_t n = 20 + static_cast<std::size_t>(next_unit() * 80);
  std::vector<double> scale(data.dim);
  std::vector<double> shift(data.dim);
  for (std::size_t j = 0; j < data.dim; ++j) {
    scale[j] = 0.1 + next_unit() * 10.0;
    shift[j] = (next_unit() - 0.5) * 20.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    double mean = 0.0;
    for (std::size_t j = 0; j < data.dim; ++j) {
      const double u = next_unit();
      data.x.push_back(shift[j] + scale[j] * u);
      mean += std::sin(4.0 * u);
    }
    data.y.push_back(mean + 0.3 * (next_unit() - 0.5));
  }
  if (index % 3 == 0) {
    // Duplicate some full rows (identical regressors, distinct y).
    for (std::size_t i = 0; i + 1 < n / 5; ++i) {
      for (std::size_t j = 0; j < data.dim; ++j) {
        data.x[(i + 1) * data.dim + j] = data.x[j];
      }
    }
  } else if (index % 3 == 1) {
    // Tie the sort coordinate only: stresses the z-window's equal keys.
    for (std::size_t i = 0; i + 1 < n / 4; ++i) {
      data.x[(i + 1) * data.dim] = data.x[0];
    }
  }

  const auto ratios = kreg::default_ray_ratios(data);
  const std::size_t k = 4 + eng() % 12;
  const BandwidthGrid scales(0.05 + 0.2 * next_unit(), 1.0 + next_unit(), k);
  static constexpr std::array<KernelType, 4> kRayKernels = {
      KernelType::kEpanechnikov, KernelType::kUniform,
      KernelType::kTriangular, KernelType::kBiweight};
  const KernelType kernel = kRayKernels[eng() % kRayKernels.size()];

  const auto window = kreg::multi_ray_cv_profile_window(
      data, ratios, scales.values(), kernel);
  const auto per_row =
      kreg::multi_ray_cv_profile(data, ratios, scales.values(), kernel);
  ASSERT_EQ(window.size(), k);
  for (std::size_t b = 0; b < k; ++b) {
    ASSERT_NEAR(window[b], per_row[b], 1e-9 * std::max(1.0, per_row[b]))
        << "case " << index << " dim=" << data.dim << " b=" << b << " kernel "
        << to_string(kernel);
    std::vector<double> h(data.dim);
    for (std::size_t j = 0; j < data.dim; ++j) {
      h[j] = scales[b] * ratios[j];
    }
    const double direct = kreg::cv_score_multi(data, h, kernel);
    // The sweep-vs-direct recombination error grows with the domain scale
    // (high powers of |d|/r cancel); 1e-6 relative bounds it on these wide
    // off-origin domains while window-vs-per-row stays at 1e-9.
    ASSERT_NEAR(window[b], direct, 1e-6 * std::max(1.0, direct))
        << "case " << index << " dim=" << data.dim << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, FuzzRay, ::testing::Range(0u, 18u));

}  // namespace
