// Tests for the no-sort dense grid selector (footnote 1): exact agreement
// with the naive reference for every kernel, including the non-sweepable
// Gaussian and Cosine, serial and parallel.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dense_grid.hpp"
#include "core/grid.hpp"
#include "core/loocv.hpp"
#include "core/selectors.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::DenseGridSelector;
using kreg::KernelType;
using kreg::NaiveGridSelector;
using kreg::data::Dataset;
using kreg::rng::Stream;

class DenseGridKernelTest : public ::testing::TestWithParam<KernelType> {};

TEST_P(DenseGridKernelTest, MatchesNaiveProfileExactly) {
  const KernelType kernel = GetParam();
  Stream s(31);
  const Dataset d = kreg::data::paper_dgp(200, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 20);
  const auto naive = NaiveGridSelector(kernel).select(d, grid);
  const auto dense = DenseGridSelector(kernel).select(d, grid);
  ASSERT_EQ(dense.scores.size(), naive.scores.size());
  for (std::size_t b = 0; b < naive.scores.size(); ++b) {
    EXPECT_NEAR(dense.scores[b], naive.scores[b],
                1e-10 * std::max(1.0, naive.scores[b]))
        << to_string(kernel) << " b=" << b;
  }
  EXPECT_DOUBLE_EQ(dense.bandwidth, naive.bandwidth);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, DenseGridKernelTest,
                         ::testing::ValuesIn(kreg::kAllKernels),
                         [](const auto& info) {
                           return std::string(kreg::to_string(info.param));
                         });

TEST(DenseGrid, ParallelVariantAgrees) {
  Stream s(32);
  const Dataset d = kreg::data::sine_dgp(300, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 15);
  const auto serial =
      DenseGridSelector(KernelType::kGaussian).select(d, grid);
  const auto parallel =
      DenseGridSelector(KernelType::kGaussian, nullptr, /*parallel=*/true)
          .select(d, grid);
  for (std::size_t b = 0; b < serial.scores.size(); ++b) {
    EXPECT_NEAR(parallel.scores[b], serial.scores[b],
                1e-10 * std::max(1.0, serial.scores[b]));
  }
}

TEST(DenseGrid, GaussianSelectionSane) {
  Stream s(33);
  const Dataset d = kreg::data::paper_dgp(400, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 100);
  const auto r = DenseGridSelector(KernelType::kGaussian).select(d, grid);
  EXPECT_GT(r.bandwidth, 0.0);
  EXPECT_LE(r.bandwidth, grid.max());
  EXPECT_NEAR(r.cv_score, kreg::cv_score(d, r.bandwidth, KernelType::kGaussian),
              1e-10);
}

TEST(DenseGrid, RejectsEmptyDataset) {
  const Dataset empty;
  const BandwidthGrid grid(0.1, 1.0, 4);
  EXPECT_THROW(DenseGridSelector().select(empty, grid), std::invalid_argument);
}

TEST(DenseGrid, DuplicateXValues) {
  Dataset d{{0.5, 0.5, 0.7, 0.7}, {1.0, 2.0, 3.0, 4.0}};
  const BandwidthGrid grid(0.1, 0.8, 5);
  const auto naive = NaiveGridSelector(KernelType::kEpanechnikov).select(d, grid);
  const auto dense = DenseGridSelector(KernelType::kEpanechnikov).select(d, grid);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(dense.scores[b], naive.scores[b], 1e-12);
  }
}

TEST(DenseGrid, NameReflectsConfiguration) {
  EXPECT_NE(DenseGridSelector(KernelType::kGaussian).name().find("gaussian"),
            std::string::npos);
  EXPECT_NE(DenseGridSelector(KernelType::kGaussian, nullptr, true)
                .name()
                .find("parallel"),
            std::string::npos);
}

}  // namespace
