// Tests for Program 4 (the SPMD device grid selector): agreement with the
// sequential sorted search (the paper's §IV-C check), layout/block-size
// invariance, float/double paths, streaming mode, and the paper's memory
// and constant-cache capacity behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/grid.hpp"
#include "core/selectors.hpp"
#include "core/spmd_selector.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"
#include "spmd/errors.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::KernelType;
using kreg::Precision;
using kreg::ResidualLayout;
using kreg::SelectionResult;
using kreg::SortedGridSelector;
using kreg::SpmdGridSelector;
using kreg::SpmdSelectorConfig;
using kreg::SweepAlgorithm;
using kreg::WindowSweepSelector;
using kreg::data::Dataset;
using kreg::rng::Stream;
using kreg::spmd::Device;
using kreg::spmd::DeviceProperties;

Dataset paper_data(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  return kreg::data::paper_dgp(n, s);
}

SpmdSelectorConfig double_cfg() {
  SpmdSelectorConfig cfg;
  cfg.precision = Precision::kDouble;
  return cfg;
}

// ---- §IV-C protocol: CUDA program vs sequential C program ------------------

TEST(SpmdSelector, MatchesSequentialSortedSearchInDouble) {
  Device dev;
  const Dataset d = paper_data(300, 1);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
  const SelectionResult host = SortedGridSelector().select(d, grid);
  const SelectionResult device =
      SpmdGridSelector(dev, double_cfg()).select(d, grid);
  EXPECT_DOUBLE_EQ(device.bandwidth, host.bandwidth);
  ASSERT_EQ(device.scores.size(), host.scores.size());
  for (std::size_t b = 0; b < host.scores.size(); ++b) {
    EXPECT_NEAR(device.scores[b], host.scores[b],
                1e-9 * std::max(1.0, host.scores[b]))
        << "b=" << b;
  }
}

TEST(SpmdSelector, FloatPathSelectsSameBandwidth) {
  Device dev;
  const Dataset d = paper_data(400, 2);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
  const SelectionResult host = SortedGridSelector().select(d, grid);
  SpmdSelectorConfig cfg;  // default float, like the paper
  const SelectionResult device = SpmdGridSelector(dev, cfg).select(d, grid);
  EXPECT_DOUBLE_EQ(device.bandwidth, host.bandwidth);
  for (std::size_t b = 0; b < host.scores.size(); ++b) {
    EXPECT_NEAR(device.scores[b], host.scores[b],
                1e-3 * std::max(1.0, host.scores[b]));
  }
}

// ---- Invariance over execution configuration -------------------------------

using InvarianceParam =
    std::tuple<std::size_t /*tpb*/, ResidualLayout, bool /*streaming*/>;

class SpmdInvarianceTest : public ::testing::TestWithParam<InvarianceParam> {};

TEST_P(SpmdInvarianceTest, SelectionIndependentOfExecutionConfig) {
  const auto [tpb, layout, streaming] = GetParam();
  Device dev;
  const Dataset d = paper_data(257, 3);  // odd size: exercises padding
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 25);

  SpmdSelectorConfig cfg = double_cfg();
  cfg.threads_per_block = tpb;
  cfg.layout = layout;
  cfg.streaming = streaming;
  const SelectionResult r = SpmdGridSelector(dev, cfg).select(d, grid);

  const SelectionResult reference =
      SpmdGridSelector(dev, double_cfg()).select(d, grid);
  EXPECT_DOUBLE_EQ(r.bandwidth, reference.bandwidth);
  for (std::size_t b = 0; b < reference.scores.size(); ++b) {
    EXPECT_NEAR(r.scores[b], reference.scores[b],
                1e-9 * std::max(1.0, reference.scores[b]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SpmdInvarianceTest,
    ::testing::Combine(::testing::Values<std::size_t>(32, 128, 512),
                       ::testing::Values(ResidualLayout::kObservationMajor,
                                         ResidualLayout::kBandwidthMajor),
                       ::testing::Bool()));

TEST(SpmdSelector, ReduceVariantDoesNotChangeResult) {
  Device dev;
  const Dataset d = paper_data(200, 4);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 20);
  SpmdSelectorConfig seq_cfg = double_cfg();
  seq_cfg.reduce_variant = kreg::spmd::ReduceVariant::kSequential;
  SpmdSelectorConfig inter_cfg = double_cfg();
  inter_cfg.reduce_variant = kreg::spmd::ReduceVariant::kInterleaved;
  const auto a = SpmdGridSelector(dev, seq_cfg).select(d, grid);
  const auto b = SpmdGridSelector(dev, inter_cfg).select(d, grid);
  EXPECT_DOUBLE_EQ(a.bandwidth, b.bandwidth);
}

TEST(SpmdSelector, WorksAcrossSweepableKernels) {
  Device dev;
  const Dataset d = paper_data(150, 5);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 15);
  for (KernelType k :
       {KernelType::kEpanechnikov, KernelType::kUniform,
        KernelType::kTriangular, KernelType::kBiweight,
        KernelType::kTriweight}) {
    SpmdSelectorConfig cfg = double_cfg();
    cfg.kernel = k;
    const SelectionResult device = SpmdGridSelector(dev, cfg).select(d, grid);
    const SelectionResult host = SortedGridSelector(k).select(d, grid);
    EXPECT_DOUBLE_EQ(device.bandwidth, host.bandwidth) << to_string(k);
  }
}

TEST(SpmdSelector, RejectsNonSweepableKernel) {
  Device dev;
  const Dataset d = paper_data(50, 6);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 5);
  SpmdSelectorConfig cfg;
  cfg.kernel = KernelType::kGaussian;
  EXPECT_THROW(SpmdGridSelector(dev, cfg).select(d, grid),
               std::invalid_argument);
}

// ---- Window-sweep device algorithm -----------------------------------------

TEST(SpmdWindowSweep, MatchesHostPathsInDouble) {
  Device dev;
  for (std::size_t n : {std::size_t{50}, std::size_t{1000}}) {
    const Dataset d = paper_data(n, 20);
    const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
    SpmdSelectorConfig cfg = double_cfg();
    cfg.algorithm = SweepAlgorithm::kWindow;
    const SelectionResult device = SpmdGridSelector(dev, cfg).select(d, grid);
    const SelectionResult host = WindowSweepSelector().select(d, grid);
    const SelectionResult sorted = SortedGridSelector().select(d, grid);
    EXPECT_DOUBLE_EQ(device.bandwidth, host.bandwidth) << "n=" << n;
    EXPECT_DOUBLE_EQ(device.bandwidth, sorted.bandwidth) << "n=" << n;
    ASSERT_EQ(device.scores.size(), host.scores.size());
    for (std::size_t b = 0; b < host.scores.size(); ++b) {
      EXPECT_NEAR(device.scores[b], host.scores[b],
                  1e-9 * std::max(1.0, host.scores[b]))
          << "n=" << n << " b=" << b;
    }
  }
}

TEST(SpmdWindowSweep, FloatPathSelectsSameBandwidth) {
  Device dev;
  const Dataset d = paper_data(400, 21);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
  SpmdSelectorConfig cfg;  // float, like the paper
  cfg.algorithm = SweepAlgorithm::kWindow;
  const SelectionResult device = SpmdGridSelector(dev, cfg).select(d, grid);
  const SelectionResult host = SortedGridSelector().select(d, grid);
  EXPECT_DOUBLE_EQ(device.bandwidth, host.bandwidth);
}

TEST(SpmdWindowSweep, LayoutAndBlockSizeInvariant) {
  Device dev;
  const Dataset d = paper_data(257, 22);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 25);
  SpmdSelectorConfig base = double_cfg();
  base.algorithm = SweepAlgorithm::kWindow;
  const SelectionResult reference = SpmdGridSelector(dev, base).select(d, grid);
  for (std::size_t tpb : {std::size_t{32}, std::size_t{512}}) {
    for (ResidualLayout layout : {ResidualLayout::kObservationMajor,
                                  ResidualLayout::kBandwidthMajor}) {
      SpmdSelectorConfig cfg = base;
      cfg.threads_per_block = tpb;
      cfg.layout = layout;
      const SelectionResult r = SpmdGridSelector(dev, cfg).select(d, grid);
      EXPECT_DOUBLE_EQ(r.bandwidth, reference.bandwidth);
      for (std::size_t b = 0; b < reference.scores.size(); ++b) {
        EXPECT_NEAR(r.scores[b], reference.scores[b],
                    1e-9 * std::max(1.0, reference.scores[b]));
      }
    }
  }
}

TEST(SpmdWindowSweep, LiftsMemoryLimitWithoutStreaming) {
  // The same over-limit problem from GlobalMemoryOomReproducesOnSmallDevice
  // fits once the n×n matrices are gone — no streaming needed.
  Device dev(DeviceProperties::tiny(1 << 20));
  const BandwidthGrid grid(0.01, 1.0, 8);
  const Dataset big = paper_data(512, 23);
  SpmdSelectorConfig cfg;  // float
  cfg.algorithm = SweepAlgorithm::kWindow;
  EXPECT_NO_THROW(SpmdGridSelector(dev, cfg).select(big, grid));
}

TEST(SpmdWindowSweep, EstimatedBytesDropsQuadraticTerm) {
  // Per-row-sort needs two n×n matrices; window keeps only O(n + n·k).
  const std::size_t cap = 4ULL * 1024 * 1024 * 1024;
  EXPECT_GT(SpmdGridSelector::estimated_bytes(25000, 50, Precision::kFloat,
                                              false,
                                              SweepAlgorithm::kPerRowSort),
            cap);
  EXPECT_LT(SpmdGridSelector::estimated_bytes(25000, 50, Precision::kFloat,
                                              false, SweepAlgorithm::kWindow),
            cap);
  EXPECT_LT(SpmdGridSelector::estimated_bytes(1000000, 50, Precision::kFloat,
                                              false, SweepAlgorithm::kWindow),
            cap);
}

TEST(SpmdWindowSweep, EstimatedBytesMatchesLedgerPeak) {
  Device dev;
  const Dataset d = paper_data(100, 24);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 10);
  SpmdSelectorConfig cfg = double_cfg();
  cfg.algorithm = SweepAlgorithm::kWindow;
  (void)SpmdGridSelector(dev, cfg).select(d, grid);
  const std::size_t predicted = SpmdGridSelector::estimated_bytes(
      100, 10, Precision::kDouble, /*streaming=*/false,
      SweepAlgorithm::kWindow);
  EXPECT_EQ(dev.global_peak(), predicted);
}

TEST(SpmdWindowSweep, TiedXAndTinyDatasets) {
  Device dev;
  SpmdSelectorConfig cfg = double_cfg();
  cfg.algorithm = SweepAlgorithm::kWindow;
  {
    Dataset d{{0.5, 0.5, 0.5, 0.7}, {1.0, 2.0, 3.0, 4.0}};
    const BandwidthGrid grid(0.1, 0.8, 4);
    const SelectionResult device = SpmdGridSelector(dev, cfg).select(d, grid);
    const SelectionResult host = SortedGridSelector().select(d, grid);
    EXPECT_DOUBLE_EQ(device.bandwidth, host.bandwidth);
  }
  {
    Dataset d{{0.2, 0.8}, {1.0, 3.0}};
    const BandwidthGrid grid(0.1, 1.0, 4);
    const SelectionResult device = SpmdGridSelector(dev, cfg).select(d, grid);
    const SelectionResult host = SortedGridSelector().select(d, grid);
    EXPECT_DOUBLE_EQ(device.bandwidth, host.bandwidth);
  }
}

TEST(SpmdWindowSweep, PaperScaleBeyondPerRowLimit) {
  // n = 20,000 with k = 50 in float sits right at the per-row path's 4 GB
  // cliff (two n×n matrices = 3.2 GB). The window path needs ~4 MB and must
  // select the same bandwidth as the parallel host sweep.
  Device dev;
  const Dataset d = paper_data(20000, 25);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
  SpmdSelectorConfig cfg;  // float
  cfg.algorithm = SweepAlgorithm::kWindow;
  const SelectionResult device = SpmdGridSelector(dev, cfg).select(d, grid);
  const SelectionResult host =
      WindowSweepSelector(KernelType::kEpanechnikov, Precision::kDouble,
                          /*parallel=*/true)
          .select(d, grid);
  EXPECT_DOUBLE_EQ(device.bandwidth, host.bandwidth);
}

TEST(SpmdWindowSweep, NameReportsAlgorithm) {
  Device dev;
  SpmdSelectorConfig cfg;
  cfg.algorithm = SweepAlgorithm::kWindow;
  EXPECT_NE(SpmdGridSelector(dev, cfg).name().find("window"),
            std::string::npos);
  EXPECT_EQ(std::string(kreg::to_string(SweepAlgorithm::kPerRowSort)),
            "per-row-sort");
  EXPECT_EQ(std::string(kreg::to_string(SweepAlgorithm::kWindow)), "window");
}

// ---- Capacity behaviour (paper §IV-A / §V) ----------------------------------

TEST(SpmdSelector, GlobalMemoryOomReproducesOnSmallDevice) {
  // Scale the paper's cliff down: a 1 MB device cannot hold two n×n float
  // matrices once n exceeds ~360.
  Device dev(DeviceProperties::tiny(1 << 20));
  const BandwidthGrid grid(0.01, 1.0, 8);
  const Dataset small = paper_data(128, 7);
  SpmdSelectorConfig cfg;  // float
  cfg.algorithm = SweepAlgorithm::kPerRowSort;  // the plan with the cliff
  EXPECT_NO_THROW(SpmdGridSelector(dev, cfg).select(small, grid));
  const Dataset big = paper_data(512, 8);
  EXPECT_THROW(SpmdGridSelector(dev, cfg).select(big, grid),
               kreg::spmd::DeviceAllocError);
}

TEST(SpmdSelector, StreamingModeLiftsTheLimit) {
  // The same over-limit problem succeeds in streaming mode (paper's stated
  // future work: drop the n×n matrices).
  Device dev(DeviceProperties::tiny(1 << 20));
  const BandwidthGrid grid(0.01, 1.0, 8);
  const Dataset big = paper_data(512, 9);
  SpmdSelectorConfig cfg;
  cfg.algorithm = SweepAlgorithm::kPerRowSort;
  cfg.streaming = true;
  EXPECT_NO_THROW(SpmdGridSelector(dev, cfg).select(big, grid));
}

TEST(SpmdSelector, ConstantCacheCapsBandwidthCount) {
  Device dev;
  const Dataset d = paper_data(64, 10);
  // 2049 float bandwidths exceed the 8 KB constant working set.
  const BandwidthGrid grid(1e-4, 1.0, 2049);
  SpmdSelectorConfig cfg;
  EXPECT_THROW(SpmdGridSelector(dev, cfg).select(d, grid),
               kreg::spmd::ConstantCapacityError);
}

TEST(SpmdSelector, DevicePrecisionHalvesConstantCapacity) {
  Device dev;
  const Dataset d = paper_data(64, 11);
  const BandwidthGrid grid(1e-4, 1.0, 1025);
  EXPECT_THROW(SpmdGridSelector(dev, double_cfg()).select(d, grid),
               kreg::spmd::ConstantCapacityError);
}

TEST(SpmdSelector, MemoryIsReleasedAfterSelect) {
  Device dev;
  const Dataset d = paper_data(100, 12);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 10);
  (void)SpmdGridSelector(dev, double_cfg()).select(d, grid);
  EXPECT_EQ(dev.global_allocated(), 0u);
  EXPECT_GT(dev.global_peak(), 0u);
}

TEST(SpmdSelector, EstimatedBytesMatchesLedgerPeak) {
  Device dev;
  const Dataset d = paper_data(100, 13);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 10);
  SpmdSelectorConfig cfg = double_cfg();
  cfg.algorithm = SweepAlgorithm::kPerRowSort;
  (void)SpmdGridSelector(dev, cfg).select(d, grid);
  const std::size_t predicted = SpmdGridSelector::estimated_bytes(
      100, 10, Precision::kDouble, /*streaming=*/false,
      SweepAlgorithm::kPerRowSort);
  // Peak also includes the grid-reduction partials etc. if any; here the
  // faithful path allocates exactly the predicted set.
  EXPECT_EQ(dev.global_peak(), predicted);
}

TEST(SpmdSelector, WindowEstimatedBytesMatchesLedgerPeak) {
  Device dev;
  const Dataset d = paper_data(100, 13);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 10);
  (void)SpmdGridSelector(dev, double_cfg()).select(d, grid);  // window default
  const std::size_t predicted = SpmdGridSelector::estimated_bytes(
      100, 10, Precision::kDouble, /*streaming=*/false,
      SweepAlgorithm::kWindow);
  EXPECT_EQ(dev.global_peak(), predicted);
}

TEST(SpmdSelector, DefaultAlgorithmIsWindowAndMatchesPerRowSort) {
  // The flipped default (ROADMAP soak item): a default-constructed config
  // runs the window sweep, and on the paper's grid it picks the same
  // bandwidth as the paper-faithful per-row-sort path.
  SpmdSelectorConfig def;
  EXPECT_EQ(def.algorithm, SweepAlgorithm::kWindow);

  Device dev;
  const Dataset d = paper_data(300, 21);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
  SpmdSelectorConfig window_cfg = double_cfg();
  SpmdSelectorConfig per_row_cfg = double_cfg();
  per_row_cfg.algorithm = SweepAlgorithm::kPerRowSort;
  const SelectionResult w = SpmdGridSelector(dev, window_cfg).select(d, grid);
  const SelectionResult p = SpmdGridSelector(dev, per_row_cfg).select(d, grid);
  EXPECT_DOUBLE_EQ(w.bandwidth, p.bandwidth);
  for (std::size_t b = 0; b < p.scores.size(); ++b) {
    EXPECT_NEAR(w.scores[b], p.scores[b], 1e-9 * std::max(1.0, p.scores[b]));
  }
}

TEST(SpmdSelector, EstimatedBytesPaperScale) {
  // At n = 20,000, k = 50, float: the two n×n matrices alone are 3.2 GB —
  // under the 4 GB ledger. At n = 25,000 they exceed it. This is the
  // paper's "cannot run at sample sizes greater than 20,000".
  const std::size_t cap = 4ULL * 1024 * 1024 * 1024;
  EXPECT_LT(SpmdGridSelector::estimated_bytes(20000, 50, Precision::kFloat,
                                              false),
            cap);
  EXPECT_GT(SpmdGridSelector::estimated_bytes(25000, 50, Precision::kFloat,
                                              false),
            cap);
  // Streaming removes the quadratic term entirely.
  EXPECT_LT(SpmdGridSelector::estimated_bytes(1000000, 50, Precision::kFloat,
                                              true),
            cap);
}

TEST(SpmdSelector, StatsShowMainKernelPlusReductions) {
  Device dev;
  const Dataset d = paper_data(100, 14);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 10);
  (void)SpmdGridSelector(dev, double_cfg()).select(d, grid);
  EXPECT_EQ(dev.stats().kernel_launches, 1u);  // one main kernel
  // k sum reductions + 1 argmin.
  EXPECT_EQ(dev.stats().cooperative_launches, 10u + 1u);
}

TEST(SpmdSelector, SingleObservationDataset) {
  Device dev;
  Dataset d{{0.5}, {2.0}};
  const BandwidthGrid grid(0.1, 1.0, 4);
  const SelectionResult r = SpmdGridSelector(dev, double_cfg()).select(d, grid);
  for (double s : r.scores) {
    EXPECT_DOUBLE_EQ(s, 0.0);  // M(X_0) = 0 everywhere
  }
}

}  // namespace
