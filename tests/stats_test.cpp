// Tests for the statistics substrate: Welford accumulation/merging,
// descriptive statistics, quantiles, OLS fits, metrics, and the normal
// quantile function.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "rng/stream.hpp"
#include "stats/descriptive.hpp"
#include "stats/metrics.hpp"
#include "stats/normal.hpp"
#include "stats/ols.hpp"
#include "stats/welford.hpp"

namespace {

using kreg::rng::Stream;
using kreg::stats::Welford;

TEST(Welford, MeanAndVarianceExactSmallCase) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    w.add(x);
  }
  EXPECT_EQ(w.count(), 8u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.variance_population(), 4.0);
  EXPECT_NEAR(w.variance_sample(), 32.0 / 7.0, 1e-12);
}

TEST(Welford, EmptyAccumulatorIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance_sample(), 0.0);
}

TEST(Welford, MergeMatchesSinglePass) {
  Stream s(1);
  std::vector<double> xs = s.uniforms(1000, -5.0, 5.0);
  Welford whole;
  Welford left;
  Welford right;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    whole.add(xs[i]);
    (i < 400 ? left : right).add(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance_sample(), whole.variance_sample(), 1e-10);
}

TEST(Welford, MergeWithEmptySides) {
  Welford a;
  Welford b;
  b.add(3.0);
  b.add(5.0);
  a.merge(b);  // empty.merge(nonempty)
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  Welford c;
  a.merge(c);  // nonempty.merge(empty)
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_EQ(a.count(), 2u);
}

TEST(Descriptive, BasicStatistics) {
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(kreg::stats::min(xs), 1.0);
  EXPECT_DOUBLE_EQ(kreg::stats::max(xs), 9.0);
  EXPECT_DOUBLE_EQ(kreg::stats::range(xs), 8.0);
  EXPECT_NEAR(kreg::stats::mean(xs), 3.875, 1e-12);
}

TEST(Descriptive, QuantileMatchesRType7) {
  // R: quantile(c(1,2,3,4), c(0, .25, .5, 1)) -> 1, 1.75, 2.5, 4
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(kreg::stats::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(kreg::stats::quantile(xs, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(kreg::stats::quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(kreg::stats::quantile(xs, 1.0), 4.0);
}

TEST(Descriptive, MedianOfSingleton) {
  const std::vector<double> xs = {7.5};
  EXPECT_DOUBLE_EQ(kreg::stats::median(xs), 7.5);
}

TEST(Descriptive, IqrOfUniformSampleNearHalf) {
  Stream s(2);
  const std::vector<double> xs = s.uniforms(50000);
  EXPECT_NEAR(kreg::stats::iqr(xs), 0.5, 0.01);
}

TEST(Descriptive, SummaryFieldsConsistent) {
  Stream s(3);
  const std::vector<double> xs = s.uniforms(1000, 10.0, 20.0);
  const auto summary = kreg::stats::summarize(xs);
  EXPECT_EQ(summary.n, 1000u);
  EXPECT_GE(summary.q25, summary.min);
  EXPECT_GE(summary.median, summary.q25);
  EXPECT_GE(summary.q75, summary.median);
  EXPECT_GE(summary.max, summary.q75);
  EXPECT_NEAR(summary.mean, 15.0, 0.3);
}

TEST(Descriptive, SummaryOfEmptyIsZeroed) {
  const std::vector<double> xs;
  const auto summary = kreg::stats::summarize(xs);
  EXPECT_EQ(summary.n, 0u);
}

TEST(Metrics, MseAndMae) {
  const std::vector<double> pred = {1.0, 2.0, 3.0};
  const std::vector<double> truth = {1.0, 4.0, 1.0};
  EXPECT_DOUBLE_EQ(kreg::stats::mse(pred, truth), (0.0 + 4.0 + 4.0) / 3.0);
  EXPECT_DOUBLE_EQ(kreg::stats::mae(pred, truth), (0.0 + 2.0 + 2.0) / 3.0);
}

TEST(Metrics, RSquaredPerfectFitIsOne) {
  const std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(kreg::stats::r_squared(y, y), 1.0);
}

TEST(Metrics, RSquaredConstantTruthIsZero) {
  const std::vector<double> pred = {1.0, 2.0};
  const std::vector<double> truth = {5.0, 5.0};
  EXPECT_DOUBLE_EQ(kreg::stats::r_squared(pred, truth), 0.0);
}

TEST(Ols, RecoversExactLine) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(3.0 + 2.0 * i);
  }
  const auto fit = kreg::stats::fit_linear(x, y);
  ASSERT_EQ(fit.beta.size(), 2u);
  EXPECT_NEAR(fit.beta[0], 3.0, 1e-9);
  EXPECT_NEAR(fit.beta[1], 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Ols, RecoversQuadraticWithNoise) {
  Stream s(4);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 2000; ++i) {
    const double xi = s.uniform();
    x.push_back(xi);
    y.push_back(0.5 * xi + 10.0 * xi * xi + s.gaussian(0.0, 0.01));
  }
  const auto fit = kreg::stats::fit_polynomial(x, y, 2);
  ASSERT_EQ(fit.beta.size(), 3u);
  EXPECT_NEAR(fit.beta[0], 0.0, 0.01);
  EXPECT_NEAR(fit.beta[1], 0.5, 0.05);
  EXPECT_NEAR(fit.beta[2], 10.0, 0.05);
}

TEST(Ols, PolyFitEvaluatesHornerCorrectly) {
  kreg::stats::PolyFit fit;
  fit.beta = {1.0, -2.0, 3.0};  // 1 - 2x + 3x²
  EXPECT_DOUBLE_EQ(fit(0.0), 1.0);
  EXPECT_DOUBLE_EQ(fit(2.0), 1.0 - 4.0 + 12.0);
}

TEST(Ols, SingularSystemThrows) {
  // Two identical equations -> singular normal matrix.
  std::vector<double> a = {1.0, 2.0, 2.0, 4.0};
  std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(kreg::stats::solve_linear_system(a, b), std::runtime_error);
}

TEST(Ols, SolveLinearSystemKnownSolution) {
  // [2 1; 1 3] x = [5; 10] -> x = (1, 3)
  const std::vector<double> a = {2.0, 1.0, 1.0, 3.0};
  const std::vector<double> b = {5.0, 10.0};
  const auto x = kreg::stats::solve_linear_system(a, b);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Normal, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999}) {
    const double z = kreg::stats::normal_quantile(p);
    EXPECT_NEAR(kreg::stats::normal_cdf(z), p, 1e-9) << "p=" << p;
  }
}

TEST(Normal, KnownQuantiles) {
  EXPECT_NEAR(kreg::stats::normal_quantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(kreg::stats::normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(kreg::stats::normal_quantile(0.025), -1.959963985, 1e-6);
}

}  // namespace
