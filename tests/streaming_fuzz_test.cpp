// Differential fuzzing for the 2-D (n-block × k-block) streamed window
// sweeps: every iteration draws a random problem (n, k, precision, layout)
// and a random tiling (n_block, k_block, budget) from a seeded stream, then
// demands
//   * bitwise agreement between the streamed and resident device profiles
//     (scores, best bandwidth, CV at the argmin),
//   * tolerance agreement with the sequential host profile and the
//     cache-blocked host mirror,
// for both the regression CV sweep and the KDE LSCV sweep.
//
// The default iteration count keeps ctest fast; set KREG_FUZZ_ITERS for a
// soak run (e.g. KREG_FUZZ_ITERS=500 ./streaming_fuzz_test). The seed is
// fixed so a CI failure reproduces locally; every failure message carries
// the iteration's full parameter draw.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>

#include "core/grid.hpp"
#include "core/knn_sweep.hpp"
#include "core/loocv.hpp"
#include "core/multi_device_selector.hpp"
#include "core/oscv_sweep.hpp"
#include "core/spmd_kde.hpp"
#include "core/spmd_selector.hpp"
#include "core/window_sweep.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"
#include "spmd/device.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::HostTiling;
using kreg::KernelType;
using kreg::MultiDeviceGridSelector;
using kreg::Precision;
using kreg::ResidualLayout;
using kreg::SelectionResult;
using kreg::SpmdGridSelector;
using kreg::SpmdKdeConfig;
using kreg::SpmdKdeSelector;
using kreg::SpmdSelectorConfig;
using kreg::data::Dataset;
using kreg::rng::Stream;
using kreg::spmd::Device;

std::size_t fuzz_iterations(std::size_t default_iters) {
  const char* env = std::getenv("KREG_FUZZ_ITERS");
  if (env == nullptr || *env == '\0') {
    return default_iters;
  }
  const unsigned long parsed = std::strtoul(env, nullptr, 10);
  return parsed == 0 ? default_iters : static_cast<std::size_t>(parsed);
}

// Uniform integer in [lo, hi] from the repo's own stream (the fuzzer must
// not depend on libc rand state).
std::size_t draw(Stream& s, std::size_t lo, std::size_t hi) {
  return lo + static_cast<std::size_t>(s.uniform() *
                                       static_cast<double>(hi - lo + 1)) %
                  (hi - lo + 1);
}

struct FuzzDraw {
  std::size_t n;
  std::size_t k;
  std::size_t n_block;
  std::size_t k_block;
  Precision precision;
  ResidualLayout layout;
  std::size_t budget;  // 0 = no budget knob this round
  std::size_t lane_width;
  kreg::SigmaPolicy sigma;
  std::size_t prefetch;

  std::string describe() const {
    std::ostringstream os;
    os << "n=" << n << " k=" << k << " n_block=" << n_block
       << " k_block=" << k_block
       << " precision=" << (precision == Precision::kFloat ? "float" : "double")
       << " layout="
       << (layout == ResidualLayout::kObservationMajor ? "obs-major"
                                                       : "bw-major")
       << " budget=" << budget << " lanes=" << lane_width
       << " sigma=" << kreg::to_string(sigma) << " prefetch=" << prefetch;
    return os.str();
  }
};

FuzzDraw draw_problem(Stream& s) {
  FuzzDraw d;
  d.n = draw(s, 2, 400);
  d.k = draw(s, 1, 40);
  // Deliberately include degenerate blocks: 1, > n, > k.
  d.n_block = draw(s, 1, d.n + 16);
  d.k_block = draw(s, 1, d.k + 8);
  d.precision = s.uniform() < 0.5 ? Precision::kFloat : Precision::kDouble;
  d.layout = s.uniform() < 0.5 ? ResidualLayout::kObservationMajor
                               : ResidualLayout::kBandwidthMajor;
  d.budget = 0;
  // Batched execution knobs: every (lane width, σ policy, prefetch) draw
  // must leave the profile bitwise unchanged — they are pure scheduling.
  const std::size_t widths[] = {1, 4, 8, 16};
  d.lane_width = widths[draw(s, 0, 3)];
  const kreg::SigmaPolicy policies[] = {kreg::SigmaPolicy::kNone,
                                        kreg::SigmaPolicy::kLength,
                                        kreg::SigmaPolicy::kPositionLength};
  d.sigma = policies[draw(s, 0, 2)];
  d.prefetch = draw(s, 0, 12);
  return d;
}

void expect_bitwise(const SelectionResult& streamed,
                    const SelectionResult& resident, const std::string& what) {
  EXPECT_DOUBLE_EQ(streamed.bandwidth, resident.bandwidth) << what;
  EXPECT_DOUBLE_EQ(streamed.cv_score, resident.cv_score) << what;
  ASSERT_EQ(streamed.scores.size(), resident.scores.size()) << what;
  for (std::size_t b = 0; b < resident.scores.size(); ++b) {
    EXPECT_DOUBLE_EQ(streamed.scores[b], resident.scores[b])
        << what << " b=" << b;
  }
}

TEST(StreamingFuzz, RegressionStreamedResidentHostAgree) {
  Stream s(0x5eed5eedULL);
  const std::size_t iters = fuzz_iterations(12);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const FuzzDraw fz = draw_problem(s);
    SCOPED_TRACE("iter=" + std::to_string(iter) + " " + fz.describe());

    Stream data_stream(s.uniform() * 1e9);
    const Dataset data = kreg::data::paper_dgp(fz.n, data_stream);
    const BandwidthGrid grid = BandwidthGrid::default_for(data, fz.k);

    SpmdSelectorConfig base;
    base.precision = fz.precision;
    base.layout = fz.layout;
    base.stream.auto_tune = false;  // resident reference
    Device ref;
    const SelectionResult resident =
        SpmdGridSelector(ref, base).select(data, grid);

    SpmdSelectorConfig cfg = base;
    cfg.stream.n_block = fz.n_block;
    cfg.stream.k_block = fz.k_block;
    cfg.lane_width = fz.lane_width;
    cfg.sigma = fz.sigma;
    cfg.prefetch_distance = fz.prefetch;
    Device dev;
    const SelectionResult streamed =
        SpmdGridSelector(dev, cfg).select(data, grid);
    expect_bitwise(streamed, resident, "streamed-vs-resident");

    // Host cross-checks are tolerance-based: the device reduction tree and
    // the sequential host fold group the same addends differently.
    const std::vector<double> host = kreg::window_cv_profile(
        data, grid.values(), cfg.kernel, fz.precision);
    const std::vector<double> tiled = kreg::window_cv_profile_tiled(
        data, grid.values(), cfg.kernel, fz.precision,
        HostTiling{fz.n_block, fz.k_block});
    const double tol = fz.precision == Precision::kFloat ? 1e-3 : 1e-9;
    for (std::size_t b = 0; b < grid.size(); ++b) {
      const double scale = std::max(1.0, std::abs(host[b]));
      EXPECT_NEAR(streamed.scores[b], host[b], tol * scale) << "host b=" << b;
      EXPECT_NEAR(tiled[b], host[b], tol * scale) << "tiled b=" << b;
    }
  }
}

TEST(StreamingFuzz, RegressionBudgetDrivenPlansStayUnderBudgetAndAgree) {
  Stream s(0xbadb0d9eULL);
  const std::size_t iters = fuzz_iterations(6);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const std::size_t n = draw(s, 50, 600);
    const std::size_t k = draw(s, 4, 32);
    Stream data_stream(s.uniform() * 1e9);
    const Dataset data = kreg::data::paper_dgp(n, data_stream);
    const BandwidthGrid grid = BandwidthGrid::default_for(data, k);
    // A budget between the minimal tile and the resident plan: the resolver
    // must pick some (n_block, k_block) and the ledger must respect it.
    const std::size_t resident_bytes = SpmdGridSelector::estimated_bytes(
        n, k, Precision::kDouble, false, kreg::SweepAlgorithm::kWindow);
    const std::size_t budget =
        resident_bytes / draw(s, 2, 6) + 64 * 1024;
    SCOPED_TRACE("iter=" + std::to_string(iter) + " n=" + std::to_string(n) +
                 " k=" + std::to_string(k) +
                 " budget=" + std::to_string(budget));

    SpmdSelectorConfig cfg;
    cfg.precision = Precision::kDouble;
    cfg.stream.memory_budget_bytes = budget;
    Device dev;
    const SelectionResult streamed =
        SpmdGridSelector(dev, cfg).select(data, grid);
    EXPECT_LE(dev.global_peak(), budget);

    SpmdSelectorConfig base;
    base.precision = Precision::kDouble;
    base.stream.auto_tune = false;
    Device ref;
    expect_bitwise(streamed, SpmdGridSelector(ref, base).select(data, grid),
                   "budget-vs-resident");
  }
}

TEST(StreamingFuzz, KdeStreamedResidentAgree) {
  Stream s(0x4de4de4dULL);
  const std::size_t iters = fuzz_iterations(10);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const std::size_t n = draw(s, 3, 300);
    const std::size_t k = draw(s, 1, 30);
    const std::size_t n_block = draw(s, 1, n + 16);
    const std::size_t k_block = draw(s, 1, k + 8);
    const KernelType kernel =
        s.uniform() < 0.5 ? KernelType::kEpanechnikov : KernelType::kUniform;
    SCOPED_TRACE("iter=" + std::to_string(iter) + " n=" + std::to_string(n) +
                 " k=" + std::to_string(k) +
                 " n_block=" + std::to_string(n_block) +
                 " k_block=" + std::to_string(k_block) + " kernel=" +
                 std::string(kreg::to_string(kernel)));

    Stream data_stream(s.uniform() * 1e9);
    std::vector<double> xs(n);
    for (auto& x : xs) {
      x = data_stream.uniform() < 0.5 ? data_stream.gaussian(-1.0, 0.4)
                                      : data_stream.gaussian(1.0, 0.6);
    }
    const BandwidthGrid grid(0.05, 1.5, k);

    SpmdKdeConfig base;
    base.kernel = kernel;
    base.stream.auto_tune = false;
    Device ref;
    const SelectionResult resident =
        SpmdKdeSelector(ref, base).select(xs, grid);

    SpmdKdeConfig cfg = base;
    cfg.stream.n_block = n_block;
    cfg.stream.k_block = k_block;
    Device dev;
    expect_bitwise(SpmdKdeSelector(dev, cfg).select(xs, grid), resident,
                   "kde streamed-vs-resident");
  }
}

// Estimator-family fuzz: each iteration draws an estimator — NW LOOCV,
// k-NN fast LOOCV, or OSCV — with a random grid, precision, and k-block
// plan, then demands the family's own agreement contract: fast-vs-naive
// bitwise for k-NN and OSCV (their per-(i, grid-entry) terms accumulate in
// an identical order everywhere), streamed-vs-resident bitwise on the
// device, and tolerance agreement for NW against the direct objective
// (whose summation order legitimately differs).
TEST(StreamingFuzz, EstimatorFamiliesAgreeAcrossBackends) {
  Stream s(0x0e571fa7ULL);
  const std::size_t iters = fuzz_iterations(9);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const std::size_t estimator = draw(s, 0, 2);
    const std::size_t n = draw(s, 8, 250);
    const Precision precision =
        s.uniform() < 0.5 ? Precision::kFloat : Precision::kDouble;
    const std::size_t k_block = draw(s, 1, 12);
    Stream data_stream(s.uniform() * 1e9);
    const Dataset data = kreg::data::paper_dgp(n, data_stream);
    SCOPED_TRACE("iter=" + std::to_string(iter) + " estimator=" +
                 (estimator == 0   ? "nw"
                  : estimator == 1 ? "knn"
                                   : "oscv") +
                 " n=" + std::to_string(n) + " k_block=" +
                 std::to_string(k_block) + " precision=" +
                 (precision == Precision::kFloat ? "float" : "double"));
    Device dev;

    if (estimator == 0) {
      const std::size_t k = draw(s, 1, 24);
      const BandwidthGrid grid = BandwidthGrid::default_for(data, k);
      const std::vector<double> fast = kreg::window_cv_profile(
          data, grid.values(), KernelType::kEpanechnikov, precision);
      const double tol = precision == Precision::kFloat ? 1e-3 : 1e-9;
      for (std::size_t b = 0; b < grid.size(); ++b) {
        const double direct = kreg::cv_score(data, grid[b]);
        EXPECT_NEAR(fast[b], direct, tol * std::max(1.0, std::abs(direct)))
            << "b=" << b;
      }
      continue;
    }

    if (estimator == 1) {
      // Random strictly increasing neighbour grid within [1, n - 1].
      std::vector<std::size_t> kgrid;
      const std::size_t entries = draw(s, 1, 10);
      std::size_t kv = 0;
      for (std::size_t e = 0; e < entries && kv < n - 1; ++e) {
        kv += draw(s, 1, std::max<std::size_t>(1, (n - 1) / entries));
        kgrid.push_back(std::min(kv, n - 1));
      }
      const std::vector<double> fast =
          kreg::knn_cv_profile(data, kgrid, precision);
      const std::vector<double> naive =
          kreg::knn_cv_profile_naive(data, kgrid, precision);
      ASSERT_EQ(fast.size(), naive.size());
      for (std::size_t b = 0; b < naive.size(); ++b) {
        EXPECT_DOUBLE_EQ(fast[b], naive[b]) << "knn fast-vs-naive b=" << b;
      }
      kreg::KnnDeviceConfig cfg;
      cfg.precision = precision;
      cfg.stream.k_block = k_block;
      const std::vector<double> streamed =
          kreg::knn_cv_profile_device(dev, data, kgrid, cfg);
      for (std::size_t b = 0; b < naive.size(); ++b) {
        EXPECT_DOUBLE_EQ(streamed[b], naive[b]) << "knn streamed b=" << b;
      }
      continue;
    }

    const KernelType kernel =
        s.uniform() < 0.5 ? KernelType::kEpanechnikov : KernelType::kUniform;
    const std::size_t k = draw(s, 1, 20);
    const BandwidthGrid grid = BandwidthGrid::default_for(data, k);
    const std::vector<double> fast =
        kreg::oscv_profile(data, grid.values(), kernel, precision);
    const std::vector<double> naive =
        kreg::oscv_profile_naive(data, grid.values(), kernel, precision);
    ASSERT_EQ(fast.size(), naive.size());
    for (std::size_t b = 0; b < naive.size(); ++b) {
      EXPECT_DOUBLE_EQ(fast[b], naive[b]) << "oscv fast-vs-naive b=" << b;
    }
    kreg::OscvDeviceConfig cfg;
    cfg.precision = precision;
    cfg.stream.k_block = k_block;
    const std::vector<double> streamed =
        kreg::oscv_profile_device(dev, data, grid.values(), kernel, cfg);
    for (std::size_t b = 0; b < naive.size(); ++b) {
      EXPECT_DOUBLE_EQ(streamed[b], naive[b]) << "oscv streamed b=" << b;
    }
  }
}

TEST(StreamingFuzz, MultiDeviceShardsAgreeWithResident) {
  Stream s(0x3d3d3d3dULL);
  const std::size_t iters = fuzz_iterations(6);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const std::size_t n = draw(s, 10, 500);
    const std::size_t k = draw(s, 2, 24);
    const std::size_t devices = draw(s, 2, 4);
    const std::size_t n_block = draw(s, 1, n + 16);
    const std::size_t k_block = draw(s, 1, k + 8);
    const Precision precision =
        s.uniform() < 0.5 ? Precision::kFloat : Precision::kDouble;
    SCOPED_TRACE("iter=" + std::to_string(iter) + " n=" + std::to_string(n) +
                 " k=" + std::to_string(k) +
                 " devices=" + std::to_string(devices) +
                 " n_block=" + std::to_string(n_block) +
                 " k_block=" + std::to_string(k_block));

    Stream data_stream(s.uniform() * 1e9);
    const Dataset data = kreg::data::paper_dgp(n, data_stream);
    const BandwidthGrid grid = BandwidthGrid::default_for(data, k);

    std::vector<Device> resident_pool(devices);
    std::vector<Device*> resident_ptrs;
    for (auto& d : resident_pool) {
      resident_ptrs.push_back(&d);
    }
    SpmdSelectorConfig base;
    base.precision = precision;
    base.stream.auto_tune = false;
    const SelectionResult resident =
        MultiDeviceGridSelector(resident_ptrs, base).select(data, grid);

    std::vector<Device> streamed_pool(devices);
    std::vector<Device*> streamed_ptrs;
    for (auto& d : streamed_pool) {
      streamed_ptrs.push_back(&d);
    }
    SpmdSelectorConfig cfg = base;
    cfg.stream.n_block = n_block;
    cfg.stream.k_block = k_block;
    expect_bitwise(
        MultiDeviceGridSelector(streamed_ptrs, cfg).select(data, grid),
        resident, "multi-device streamed-vs-resident");
  }
}

}  // namespace
