// Tests for the host parallel substrate: thread pool lifecycle, parallel_for
// correctness under both schedules, exception propagation, and deterministic
// reduction.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/blocked_range.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using kreg::parallel::BlockedRange;
using kreg::parallel::parallel_for;
using kreg::parallel::parallel_reduce;
using kreg::parallel::partition_chunks;
using kreg::parallel::partition_evenly;
using kreg::parallel::Schedule;
using kreg::parallel::ThreadPool;

TEST(BlockedRangePartition, EvenSplitCoversAllIndices) {
  for (std::size_t n : {0u, 1u, 7u, 64u, 1001u}) {
    for (std::size_t parts : {1u, 2u, 3u, 16u}) {
      const auto ranges = partition_evenly(n, parts);
      std::vector<bool> covered(n, false);
      for (const BlockedRange& r : ranges) {
        for (std::size_t i = r.begin; i < r.end; ++i) {
          EXPECT_FALSE(covered[i]) << "index covered twice";
          covered[i] = true;
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(covered[i]) << "index " << i << " not covered";
      }
    }
  }
}

TEST(BlockedRangePartition, SizesDifferByAtMostOne) {
  const auto ranges = partition_evenly(103, 8);
  std::size_t lo = SIZE_MAX;
  std::size_t hi = 0;
  for (const BlockedRange& r : ranges) {
    lo = std::min(lo, r.size());
    hi = std::max(hi, r.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(BlockedRangePartition, MorePartsThanElements) {
  const auto ranges = partition_evenly(3, 10);
  EXPECT_EQ(ranges.size(), 3u);
  for (const BlockedRange& r : ranges) {
    EXPECT_EQ(r.size(), 1u);
  }
}

TEST(BlockedRangePartition, ChunksRespectChunkSize) {
  const auto ranges = partition_chunks(100, 33);
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges[0].size(), 33u);
  EXPECT_EQ(ranges[3].size(), 1u);
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  ThreadPool pool(4);
  for (Schedule sched : {Schedule::kStatic, Schedule::kDynamic}) {
    const std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    parallel_for(
        n, [&](std::size_t i) { hits[i].fetch_add(1); }, &pool, sched, 64);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
    }
  }
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(0, [&](std::size_t) { touched = true; }, &pool);
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, SingleWorkerFallsBackToSerial) {
  ThreadPool pool(1);
  std::vector<int> order;
  parallel_for(10, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               &pool);
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // serial path preserves order
}

TEST(ParallelFor, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(
          100,
          [](std::size_t i) {
            if (i == 37) {
              throw std::runtime_error("boom");
            }
          },
          &pool),
      std::runtime_error);
}

TEST(ParallelFor, UsesGlobalPoolWhenNull) {
  std::atomic<int> counter{0};
  parallel_for(50, [&](std::size_t) { counter.fetch_add(1); }, nullptr);
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelReduce, SumMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  const double parallel_sum = parallel_reduce<double>(
      n, 0.0, [](std::size_t i) { return static_cast<double>(i); },
      [](double a, double b) { return a + b; }, &pool);
  EXPECT_DOUBLE_EQ(parallel_sum, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(ParallelReduce, DeterministicAcrossRuns) {
  ThreadPool pool(4);
  const std::size_t n = 12345;
  auto run = [&] {
    return parallel_reduce<double>(
        n, 0.0,
        [](std::size_t i) { return 1.0 / (static_cast<double>(i) + 1.0); },
        [](double a, double b) { return a + b; }, &pool);
  };
  const double first = run();
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_DOUBLE_EQ(run(), first);
  }
}

TEST(ParallelReduce, MinReduction) {
  ThreadPool pool(4);
  const double m = parallel_reduce<double>(
      1000, std::numeric_limits<double>::infinity(),
      [](std::size_t i) { return std::abs(static_cast<double>(i) - 500.5); },
      [](double a, double b) { return std::min(a, b); }, &pool);
  EXPECT_DOUBLE_EQ(m, 0.5);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  const double r = parallel_reduce<double>(
      0, 42.0, [](std::size_t) { return 1.0; },
      [](double a, double b) { return a + b; }, nullptr);
  EXPECT_DOUBLE_EQ(r, 42.0);
}

TEST(ParallelFor, NestedCallsFromWorkersRunSeriallyWithoutDeadlock) {
  // A parallel_for body that itself calls parallel_for/parallel_reduce on
  // the same pool must not deadlock: the nested call detects it is on a
  // worker thread and degrades to a serial loop.
  ThreadPool pool(2);
  std::atomic<long> total{0};
  parallel_for(
      8,
      [&](std::size_t) {
        const double inner = parallel_reduce<double>(
            1000, 0.0, [](std::size_t i) { return static_cast<double>(i); },
            [](double a, double b) { return a + b; }, &pool);
        EXPECT_DOUBLE_EQ(inner, 999.0 * 1000.0 / 2.0);
        parallel_for(10, [&](std::size_t) { total.fetch_add(1); }, &pool);
      },
      &pool);
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPool, CurrentIsNullOffWorkersAndSetOnWorkers) {
  EXPECT_EQ(ThreadPool::current(), nullptr);
  ThreadPool pool(2);
  std::atomic<bool> saw_pool{false};
  pool.submit([&] { saw_pool = ThreadPool::current() == &pool; });
  pool.wait_idle();
  EXPECT_TRUE(saw_pool.load());
  EXPECT_EQ(ThreadPool::current(), nullptr);
}

TEST(ParallelReduce, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_reduce<double>(
                   1000, 0.0,
                   [](std::size_t i) -> double {
                     if (i == 999) {
                       throw std::logic_error("bad");
                     }
                     return 0.0;
                   },
                   [](double a, double b) { return a + b; }, &pool),
               std::logic_error);
}

}  // namespace
