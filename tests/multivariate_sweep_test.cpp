// Tests for the multivariate ray sweep: agreement with the direct product-
// kernel CV at every scale, collapse to the univariate sweep at p = 1,
// kernels, dimensions, and edge cases.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/grid.hpp"
#include "core/loocv.hpp"
#include "core/multivariate.hpp"
#include "core/multivariate_sweep.hpp"
#include "core/sorted_sweep.hpp"
#include "core/window_sweep.hpp"
#include "data/dgp.hpp"
#include "data/mdataset.hpp"
#include "rng/stream.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::KernelType;
using kreg::data::MDataset;
using kreg::rng::Stream;

using RayParam = std::tuple<KernelType, std::size_t /*dim*/>;

class RaySweepTest : public ::testing::TestWithParam<RayParam> {};

TEST_P(RaySweepTest, ProfileMatchesDirectMultivariateCv) {
  const auto [kernel, dim] = GetParam();
  Stream s(70 + dim);
  const MDataset data = kreg::data::multivariate_dgp(150, dim, s);
  const auto ratios = kreg::default_ray_ratios(data);
  const BandwidthGrid scales(0.05, 1.0, 15);

  const auto profile =
      kreg::multi_ray_cv_profile(data, ratios, scales.values(), kernel);
  ASSERT_EQ(profile.size(), scales.size());
  for (std::size_t b = 0; b < scales.size(); ++b) {
    std::vector<double> h(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      h[j] = scales[b] * ratios[j];
    }
    const double direct = kreg::cv_score_multi(data, h, kernel);
    ASSERT_NEAR(profile[b], direct, 1e-9 * std::max(1.0, direct))
        << to_string(kernel) << " dim=" << dim << " c=" << scales[b];
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndDims, RaySweepTest,
    ::testing::Combine(::testing::Values(KernelType::kEpanechnikov,
                                         KernelType::kUniform,
                                         KernelType::kTriangular,
                                         KernelType::kBiweight),
                       ::testing::Values<std::size_t>(1, 2, 3)),
    [](const auto& info) {
      return std::string(kreg::to_string(std::get<0>(info.param))) + "_dim" +
             std::to_string(std::get<1>(info.param));
    });

TEST(RaySweep, CollapsesToUnivariateSweepAtDimOne) {
  Stream s(80);
  const kreg::data::Dataset uni = kreg::data::paper_dgp(200, s);
  const MDataset multi = kreg::data::to_multivariate(uni);
  const std::vector<double> ratios = {1.0};  // h = c directly
  const BandwidthGrid grid = BandwidthGrid::default_for(uni, 20);

  const auto ray =
      kreg::multi_ray_cv_profile(multi, ratios, grid.values(),
                                 KernelType::kEpanechnikov);
  const auto sweep = kreg::sweep_cv_profile(uni, grid.values(),
                                            KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(ray[b], sweep[b], 1e-10 * std::max(1.0, sweep[b]));
  }
}

TEST(RaySweep, ParallelMatchesSequential) {
  Stream s(81);
  const MDataset data = kreg::data::multivariate_dgp(200, 2, s);
  const auto ratios = kreg::default_ray_ratios(data);
  const BandwidthGrid scales(0.05, 1.0, 20);
  const auto seq = kreg::multi_ray_cv_profile(data, ratios, scales.values(),
                                              KernelType::kEpanechnikov);
  const auto par = kreg::multi_ray_cv_profile_parallel(
      data, ratios, scales.values(), KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < scales.size(); ++b) {
    EXPECT_NEAR(par[b], seq[b], 1e-11 * std::max(1.0, seq[b]));
  }
}

TEST(RaySweep, SelectReturnsScaledBandwidthVector) {
  Stream s(82);
  const MDataset data = kreg::data::multivariate_dgp(150, 2, s);
  const auto ratios = kreg::default_ray_ratios(data);
  const BandwidthGrid scales(0.05, 1.0, 25);
  const auto r = kreg::multi_ray_select(data, ratios, scales);
  ASSERT_EQ(r.bandwidths.size(), 2u);
  // The bandwidth vector lies on the ray.
  EXPECT_NEAR(r.bandwidths[0] / ratios[0], r.bandwidths[1] / ratios[1],
              1e-12);
  EXPECT_NEAR(r.cv_score, kreg::cv_score_multi(data, r.bandwidths), 1e-9);
}

TEST(RaySweep, RayOptimumNoBetterThanCartesianOptimum) {
  // The ray is a 1-D slice of the Cartesian grid space; its optimum cannot
  // beat an exhaustive search over a grid containing comparable points.
  Stream s(83);
  const MDataset data = kreg::data::multivariate_dgp(120, 2, s);
  const auto ratios = kreg::default_ray_ratios(data);
  const BandwidthGrid scales(1.0 / 8.0, 1.0, 8);
  const auto ray = kreg::multi_ray_select(data, ratios, scales);
  const auto grids = kreg::default_grids_for(data, 8);
  const auto cartesian = kreg::multi_grid_search(data, grids);
  EXPECT_GE(ray.cv_score, cartesian.cv_score - 1e-9);
}

TEST(RaySweep, ValidatesInputs) {
  Stream s(84);
  const MDataset data = kreg::data::multivariate_dgp(50, 2, s);
  const BandwidthGrid scales(0.1, 1.0, 5);
  const std::vector<double> wrong_count = {1.0};
  EXPECT_THROW(kreg::multi_ray_cv_profile(data, wrong_count, scales.values(),
                                          KernelType::kEpanechnikov),
               std::invalid_argument);
  const std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(kreg::multi_ray_cv_profile(data, negative, scales.values(),
                                          KernelType::kEpanechnikov),
               std::invalid_argument);
  const std::vector<double> ratios = {1.0, 1.0};
  EXPECT_THROW(kreg::multi_ray_cv_profile(data, ratios, scales.values(),
                                          KernelType::kGaussian),
               std::invalid_argument);
  const std::vector<double> descending = {0.5, 0.1};
  EXPECT_THROW(kreg::multi_ray_cv_profile(data, ratios, descending,
                                          KernelType::kEpanechnikov),
               std::invalid_argument);
}

TEST(RaySweep, TriweightIn3DWithinDegreeCap) {
  // Triweight (degree 6) × 3 dims = degree 18 <= cap 24.
  Stream s(85);
  const MDataset data = kreg::data::multivariate_dgp(80, 3, s);
  const auto ratios = kreg::default_ray_ratios(data);
  const BandwidthGrid scales(0.2, 1.0, 6);
  const auto profile = kreg::multi_ray_cv_profile(
      data, ratios, scales.values(), KernelType::kTriweight);
  for (std::size_t b = 0; b < scales.size(); ++b) {
    std::vector<double> h(3);
    for (std::size_t j = 0; j < 3; ++j) {
      h[j] = scales[b] * ratios[j];
    }
    EXPECT_NEAR(profile[b],
                kreg::cv_score_multi(data, h, KernelType::kTriweight),
                1e-8 * std::max(1.0, profile[b]));
  }
}

TEST(RaySweep, DefaultRatiosAreDomains) {
  Stream s(86);
  const MDataset data = kreg::data::multivariate_dgp(100, 2, s);
  const auto ratios = kreg::default_ray_ratios(data);
  EXPECT_DOUBLE_EQ(ratios[0], data.domain(0));
  EXPECT_DOUBLE_EQ(ratios[1], data.domain(1));
}

TEST(RaySweep, DefaultRatiosClampConstantDimension) {
  // Regression: a constant dimension has zero domain, and a zero ratio was
  // handed straight to multi_ray_cv_profile, which rejects it. The clamp
  // substitutes the largest positive domain so the ray stays usable.
  Stream s(87);
  MDataset data = kreg::data::multivariate_dgp(60, 2, s);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.x[i * 2 + 1] = 0.25;  // dimension 1 constant
  }
  const auto ratios = kreg::default_ray_ratios(data);
  ASSERT_EQ(ratios.size(), 2u);
  EXPECT_DOUBLE_EQ(ratios[0], data.domain(0));
  EXPECT_GT(ratios[1], 0.0);
  EXPECT_DOUBLE_EQ(ratios[1], data.domain(0));  // clamped to the largest

  // The clamped ray runs end to end and matches the direct CV.
  const BandwidthGrid scales(0.1, 1.0, 6);
  const auto profile = kreg::multi_ray_cv_profile(
      data, ratios, scales.values(), KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < scales.size(); ++b) {
    const std::vector<double> h = {scales[b] * ratios[0],
                                   scales[b] * ratios[1]};
    EXPECT_NEAR(profile[b],
                kreg::cv_score_multi(data, h, KernelType::kEpanechnikov),
                1e-9 * std::max(1.0, profile[b]));
  }
}

TEST(RaySweep, DefaultRatiosAllConstantFallBackToOne) {
  MDataset data;
  data.dim = 2;
  for (int i = 0; i < 8; ++i) {
    data.x.push_back(0.5);
    data.x.push_back(-1.0);
    data.y.push_back(static_cast<double>(i));
  }
  const auto ratios = kreg::default_ray_ratios(data);
  EXPECT_DOUBLE_EQ(ratios[0], 1.0);
  EXPECT_DOUBLE_EQ(ratios[1], 1.0);
}

// ---- Ray window sweep ------------------------------------------------------

class RayWindowTest : public ::testing::TestWithParam<RayParam> {};

TEST_P(RayWindowTest, WindowProfileMatchesPerRowAndDirect) {
  const auto [kernel, dim] = GetParam();
  Stream s(90 + dim);
  const MDataset data = kreg::data::multivariate_dgp(150, dim, s);
  const auto ratios = kreg::default_ray_ratios(data);
  const BandwidthGrid scales(0.05, 1.0, 15);

  const auto window = kreg::multi_ray_cv_profile_window(
      data, ratios, scales.values(), kernel);
  const auto per_row =
      kreg::multi_ray_cv_profile(data, ratios, scales.values(), kernel);
  ASSERT_EQ(window.size(), scales.size());
  for (std::size_t b = 0; b < scales.size(); ++b) {
    EXPECT_NEAR(window[b], per_row[b], 1e-9 * std::max(1.0, per_row[b]))
        << to_string(kernel) << " dim=" << dim << " c=" << scales[b];
    std::vector<double> h(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      h[j] = scales[b] * ratios[j];
    }
    const double direct = kreg::cv_score_multi(data, h, kernel);
    EXPECT_NEAR(window[b], direct, 1e-9 * std::max(1.0, direct))
        << to_string(kernel) << " dim=" << dim << " c=" << scales[b];
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndDims, RayWindowTest,
    ::testing::Combine(::testing::Values(KernelType::kEpanechnikov,
                                         KernelType::kUniform,
                                         KernelType::kTriangular,
                                         KernelType::kBiweight),
                       ::testing::Values<std::size_t>(1, 2, 3)),
    [](const auto& info) {
      return std::string(kreg::to_string(std::get<0>(info.param))) + "_dim" +
             std::to_string(std::get<1>(info.param));
    });

TEST(RayWindow, CollapsesToUnivariateWindowProfileAtDimOne) {
  Stream s(95);
  const kreg::data::Dataset uni = kreg::data::paper_dgp(200, s);
  const MDataset multi = kreg::data::to_multivariate(uni);
  const std::vector<double> ratios = {1.0};  // h = c directly
  const BandwidthGrid grid = BandwidthGrid::default_for(uni, 20);

  const auto ray = kreg::multi_ray_cv_profile_window(
      multi, ratios, grid.values(), KernelType::kEpanechnikov);
  const auto window = kreg::window_cv_profile(uni, grid.values(),
                                              KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(ray[b], window[b], 1e-10 * std::max(1.0, window[b]));
  }
}

TEST(RayWindow, HandlesTiedAndDuplicateCoordinates) {
  // Duplicated rows and tied first coordinates stress the sorted-z window
  // edges (<= comparisons, zero distances) and the ρ buckets at ρ = 0.
  Stream s(96);
  MDataset data = kreg::data::multivariate_dgp(80, 2, s);
  for (std::size_t i = 0; i < 20; ++i) {
    // Duplicate row i as row i + 20 (same x, different y).
    data.x[(i + 20) * 2] = data.x[i * 2];
    data.x[(i + 20) * 2 + 1] = data.x[i * 2 + 1];
    // Tie first coordinates across another block.
    data.x[(i + 40) * 2] = data.x[i * 2];
  }
  const auto ratios = kreg::default_ray_ratios(data);
  const BandwidthGrid scales(0.05, 1.0, 12);
  const auto window = kreg::multi_ray_cv_profile_window(
      data, ratios, scales.values(), KernelType::kEpanechnikov);
  const auto per_row = kreg::multi_ray_cv_profile(
      data, ratios, scales.values(), KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < scales.size(); ++b) {
    EXPECT_NEAR(window[b], per_row[b], 1e-9 * std::max(1.0, per_row[b]));
  }
}

TEST(RayWindow, HandlesDegenerateRay) {
  // A constant first dimension makes every z identical: the z-window spans
  // the whole dataset at the first scale and all filtering falls to the
  // remaining dimensions.
  Stream s(97);
  MDataset data = kreg::data::multivariate_dgp(60, 2, s);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.x[i * 2] = 0.5;
  }
  const auto ratios = kreg::default_ray_ratios(data);
  const BandwidthGrid scales(0.1, 1.0, 8);
  const auto window = kreg::multi_ray_cv_profile_window(
      data, ratios, scales.values(), KernelType::kEpanechnikov);
  const auto per_row = kreg::multi_ray_cv_profile(
      data, ratios, scales.values(), KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < scales.size(); ++b) {
    EXPECT_NEAR(window[b], per_row[b], 1e-9 * std::max(1.0, per_row[b]));
  }
}

TEST(RayWindow, ParallelMatchesSequential) {
  Stream s(98);
  const MDataset data = kreg::data::multivariate_dgp(200, 3, s);
  const auto ratios = kreg::default_ray_ratios(data);
  const BandwidthGrid scales(0.05, 1.0, 20);
  const auto seq = kreg::multi_ray_cv_profile_window(
      data, ratios, scales.values(), KernelType::kEpanechnikov);
  const auto par = kreg::multi_ray_cv_profile_window_parallel(
      data, ratios, scales.values(), KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < scales.size(); ++b) {
    EXPECT_NEAR(par[b], seq[b], 1e-11 * std::max(1.0, seq[b]));
  }
}

TEST(RayWindow, ParallelIsDeterministicAcrossRuns) {
  Stream s(99);
  const MDataset data = kreg::data::multivariate_dgp(150, 2, s);
  const auto ratios = kreg::default_ray_ratios(data);
  const BandwidthGrid scales(0.05, 1.0, 15);
  const auto a = kreg::multi_ray_cv_profile_window_parallel(
      data, ratios, scales.values(), KernelType::kEpanechnikov);
  const auto b = kreg::multi_ray_cv_profile_window_parallel(
      data, ratios, scales.values(), KernelType::kEpanechnikov);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "bitwise determinism at scale " << i;
  }
}

TEST(RayWindow, ValidatesInputsLikePerRow) {
  Stream s(100);
  const MDataset data = kreg::data::multivariate_dgp(50, 2, s);
  const BandwidthGrid scales(0.1, 1.0, 5);
  const std::vector<double> wrong_count = {1.0};
  EXPECT_THROW(kreg::multi_ray_cv_profile_window(
                   data, wrong_count, scales.values(),
                   KernelType::kEpanechnikov),
               std::invalid_argument);
  const std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(kreg::multi_ray_cv_profile_window(
                   data, negative, scales.values(), KernelType::kEpanechnikov),
               std::invalid_argument);
  const std::vector<double> ratios = {1.0, 1.0};
  EXPECT_THROW(kreg::multi_ray_cv_profile_window(data, ratios, scales.values(),
                                                 KernelType::kGaussian),
               std::invalid_argument);
  const std::vector<double> descending = {0.5, 0.1};
  EXPECT_THROW(kreg::multi_ray_cv_profile_window(data, ratios, descending,
                                                 KernelType::kEpanechnikov),
               std::invalid_argument);
}

TEST(RayWindow, SelectRoutesOnAlgorithm) {
  Stream s(101);
  const MDataset data = kreg::data::multivariate_dgp(150, 2, s);
  const auto ratios = kreg::default_ray_ratios(data);
  const BandwidthGrid scales(0.05, 1.0, 25);
  const auto window = kreg::multi_ray_select(data, ratios, scales,
                                             KernelType::kEpanechnikov,
                                             kreg::SweepAlgorithm::kWindow);
  const auto per_row = kreg::multi_ray_select(
      data, ratios, scales, KernelType::kEpanechnikov,
      kreg::SweepAlgorithm::kPerRowSort);
  ASSERT_EQ(window.bandwidths.size(), per_row.bandwidths.size());
  for (std::size_t j = 0; j < window.bandwidths.size(); ++j) {
    EXPECT_DOUBLE_EQ(window.bandwidths[j], per_row.bandwidths[j]);
  }
  EXPECT_NEAR(window.cv_score, per_row.cv_score,
              1e-9 * std::max(1.0, per_row.cv_score));
  EXPECT_NE(window.method.find("window"), std::string::npos);
  EXPECT_NE(per_row.method.find("sweep"), std::string::npos);
}

}  // namespace
