// Seeded multi-client stress for the kreg-serve scheduler.
//
// N client threads × M jobs each, mixed estimators/backends/budgets drawn
// from a seeded stream, submitted against the *threaded* scheduler while
// the pump drains concurrently. The contract under test is the strongest
// one the serving layer makes: every returned profile — whether it came
// from a fresh launch, the profile cache, a coalesced twin, or a merged
// co-scheduled launch — is bitwise identical to a direct run_job call for
// that job. A second pass replays the identical submission sequence into
// the deterministic executor and requires outcome-for-outcome equality.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/grid.hpp"
#include "core/job.hpp"
#include "core/knn_sweep.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"
#include "serve/scheduler.hpp"
#include "spmd/device.hpp"

namespace {

using kreg::EstimatorKind;
using kreg::JobBackend;
using kreg::JobContext;
using kreg::SelectionJob;
using kreg::SelectionProfile;
using kreg::serve::JobOutcome;
using kreg::serve::Scheduler;
using kreg::serve::SchedulerConfig;

constexpr std::size_t kClients = 8;
constexpr std::size_t kJobsPerClient = 6;

/// The deterministic job mix: a handful of shared datasets (so cache hits,
/// coalescing, and co-scheduling all actually happen under load) crossed
/// with estimator/backend/knob choices derived from the seeded stream.
std::vector<SelectionJob> make_job_mix(std::uint64_t seed) {
  std::vector<std::shared_ptr<const kreg::data::Dataset>> datasets;
  for (std::size_t d = 0; d < 3; ++d) {
    kreg::rng::Stream stream(900 + d);
    datasets.push_back(std::make_shared<const kreg::data::Dataset>(
        kreg::data::paper_dgp(120 + 40 * d, stream)));
  }
  kreg::rng::Stream pick(seed);
  std::vector<SelectionJob> jobs;
  jobs.reserve(kClients * kJobsPerClient);
  for (std::size_t i = 0; i < kClients * kJobsPerClient; ++i) {
    SelectionJob job;
    job.data = datasets[pick.index(datasets.size())];
    switch (pick.index(3)) {
      case 0:
        job.estimator = EstimatorKind::kNadarayaWatson;
        break;
      case 1:
        job.estimator = EstimatorKind::kKnn;
        break;
      default:
        job.estimator = EstimatorKind::kOscv;
        break;
    }
    switch (pick.index(3)) {
      case 0:
        job.backend = JobBackend::kHostSweep;
        break;
      case 1:
        job.backend = JobBackend::kHostTiled;
        break;
      default:
        job.backend = JobBackend::kDevice;
        break;
    }
    if (job.estimator == EstimatorKind::kKnn) {
      job.neighbor_grid = kreg::default_neighbor_grid(
          job.data->size(), 8 + pick.index(8));
    } else {
      job.bandwidth_grid =
          kreg::BandwidthGrid(0.05 + 0.01 * static_cast<double>(
                                               pick.index(4)),
                              1.0, 8 + pick.index(8))
              .values();
    }
    if (job.backend == JobBackend::kDevice && pick.index(3) == 0) {
      // A random (generous) explicit budget: exercises streamed plans under
      // admission without ever being the reason a launch fails.
      job.stream.memory_budget_bytes = std::size_t{1} << (19 + pick.index(3));
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

SelectionProfile direct_run(const SelectionJob& job) {
  kreg::spmd::Device device;
  JobContext ctx;
  ctx.device = &device;
  return kreg::run_job(job, ctx);
}

void expect_profiles_bitwise(const SelectionProfile& got,
                             const SelectionProfile& want, std::size_t index) {
  ASSERT_EQ(got.grid.size(), want.grid.size()) << "job " << index;
  ASSERT_EQ(got.scores.size(), want.scores.size()) << "job " << index;
  for (std::size_t i = 0; i < got.grid.size(); ++i) {
    ASSERT_EQ(got.grid[i], want.grid[i]) << "job " << index << " grid " << i;
  }
  for (std::size_t i = 0; i < got.scores.size(); ++i) {
    ASSERT_EQ(got.scores[i], want.scores[i])
        << "job " << index << " score " << i;
  }
  EXPECT_EQ(got.argmin, want.argmin) << "job " << index;
  EXPECT_EQ(got.selected, want.selected) << "job " << index;
  EXPECT_EQ(got.cv_score, want.cv_score) << "job " << index;
  EXPECT_EQ(got.method, want.method) << "job " << index;
}

TEST(ServeStress, ConcurrentClientsGetBitwiseIdenticalProfiles) {
  const std::vector<SelectionJob> jobs = make_job_mix(2026);
  SchedulerConfig config;
  config.deterministic = false;
  config.workers = 4;
  config.device_budget_bytes = std::size_t{4} << 20;  // real admission pressure
  config.record_events = false;
  Scheduler scheduler(config);
  scheduler.start_pump();
  std::vector<std::future<JobOutcome>> futures(jobs.size());
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t j = 0; j < kJobsPerClient; ++j) {
          const std::size_t index = c * kJobsPerClient + j;
          futures[index] = scheduler.submit(jobs[index]);
        }
      });
    }
    for (std::thread& client : clients) {
      client.join();
    }
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobOutcome outcome = futures[i].get();
    ASSERT_TRUE(outcome.ok) << "job " << i << ": " << outcome.error;
    expect_profiles_bitwise(outcome.profile, direct_run(jobs[i]), i);
  }
  scheduler.stop_pump();
  const kreg::serve::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, jobs.size());
  EXPECT_EQ(stats.completed, jobs.size());
  EXPECT_EQ(stats.failed, 0u);
}

TEST(ServeStress, ThreadedAndDeterministicExecutorsAgreeOutcomeForOutcome) {
  // The same submission sequence (single submitter, one drain) must produce
  // identical decisions and identical bits in both executor modes — the
  // differential that pins the threaded scheduler to the unit-testable one.
  const std::vector<SelectionJob> jobs = make_job_mix(4052);
  const auto run_all = [&](bool deterministic) {
    SchedulerConfig config;
    config.deterministic = deterministic;
    config.workers = deterministic ? 0 : 4;
    config.device_budget_bytes = std::size_t{4} << 20;
    Scheduler scheduler(config);
    std::vector<std::future<JobOutcome>> futures;
    futures.reserve(jobs.size());
    for (const SelectionJob& job : jobs) {
      futures.push_back(scheduler.submit(job));
    }
    scheduler.drain();
    std::vector<JobOutcome> outcomes;
    outcomes.reserve(futures.size());
    for (auto& future : futures) {
      outcomes.push_back(future.get());
    }
    return std::make_pair(std::move(outcomes), scheduler.stats());
  };
  auto [det, det_stats] = run_all(true);
  auto [thr, thr_stats] = run_all(false);
  ASSERT_EQ(det.size(), thr.size());
  for (std::size_t i = 0; i < det.size(); ++i) {
    ASSERT_TRUE(det[i].ok) << "job " << i << ": " << det[i].error;
    ASSERT_TRUE(thr[i].ok) << "job " << i << ": " << thr[i].error;
    EXPECT_EQ(det[i].cache_hit, thr[i].cache_hit) << "job " << i;
    expect_profiles_bitwise(thr[i].profile, det[i].profile, i);
  }
  EXPECT_EQ(thr_stats.cache_hits, det_stats.cache_hits);
  EXPECT_EQ(thr_stats.cache_misses, det_stats.cache_misses);
  EXPECT_EQ(thr_stats.coalesced, det_stats.coalesced);
  EXPECT_EQ(thr_stats.co_scheduled, det_stats.co_scheduled);
  EXPECT_EQ(thr_stats.launches, det_stats.launches);
  EXPECT_EQ(thr_stats.deferrals, det_stats.deferrals);
  EXPECT_EQ(thr_stats.waves, det_stats.waves);
}

TEST(ServeStress, RepeatedMixIsServedFromTheCacheBitwise) {
  // Replay the whole mix a second time on the same scheduler: every repeat
  // must be a cache hit (or coalesced twin) and bitwise equal to round one.
  const std::vector<SelectionJob> jobs = make_job_mix(7919);
  SchedulerConfig config;
  config.deterministic = true;
  Scheduler scheduler(config);
  std::vector<std::future<JobOutcome>> first;
  for (const SelectionJob& job : jobs) {
    first.push_back(scheduler.submit(job));
  }
  scheduler.drain();
  std::vector<std::future<JobOutcome>> second;
  for (const SelectionJob& job : jobs) {
    second.push_back(scheduler.submit(job));
  }
  scheduler.drain();
  const std::uint64_t launches_after_round_one = scheduler.stats().launches;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobOutcome a = first[i].get();
    const JobOutcome b = second[i].get();
    ASSERT_TRUE(a.ok) << "job " << i << ": " << a.error;
    ASSERT_TRUE(b.ok) << "job " << i << ": " << b.error;
    EXPECT_TRUE(b.cache_hit) << "job " << i;
    expect_profiles_bitwise(b.profile, a.profile, i);
  }
  // Round two launched nothing.
  EXPECT_EQ(scheduler.stats().launches, launches_after_round_one);
}

}  // namespace
