// k-NN fast-LOOCV suite: golden profiles pinned from the naive O(n²·|grid|)
// reference, plus the bitwise contract across backends — the sequential
// window sweep, the device path, and every streamed k-block plan must
// reproduce the naive profile bit-for-bit (their per-k score folds run in
// the same ascending observation order); the parallel and tiled profiles
// regroup that fold at slice/tile boundaries, so they are held to 1e-12
// and to bitwise equality in the one-tile-covers-n configuration.
//
// Regenerating the golden arrays (only after an *intentional* numeric
// change): evaluate knn_cv_profile_naive on
// data::paper_dgp(n, rng::Stream(2024 + n)) over the k-grids below,
// printing with %.17g.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <span>
#include <vector>

#include "core/kreg.hpp"
#include "rng/stream.hpp"
#include "spmd/device.hpp"

namespace {

using kreg::HostTiling;
using kreg::KnnDeviceConfig;
using kreg::Precision;
using kreg::data::Dataset;
using kreg::rng::Stream;

constexpr double kTol = 1e-12;

constexpr std::array<std::size_t, 9> kGridN50 = {1, 2, 3, 5, 8, 13, 21, 34,
                                                 49};
constexpr std::array<double, 9> kKnnProfileN50 = {
    0.071191227045885042,
    0.065963438887321077,
    0.075175338181848503,
    0.10566051846271465,
    0.16403472579466472,
    0.42871168082704258,
    1.5028632902554211,
    4.3797065035979879,
    10.577613842049713,
};

constexpr std::array<std::size_t, 9> kGridN200 = {1, 2, 4, 8, 16, 32, 64, 128,
                                                  199};
constexpr std::array<double, 9> kKnnProfileN200 = {
    0.053633469323553083,
    0.038091426394695288,
    0.031440075237583173,
    0.034594244916373237,
    0.04887563073725501,
    0.17578295520172041,
    0.6266083170811485,
    2.9746706647548731,
    9.3453477868236909,
};

Dataset fixture(std::size_t n) {
  Stream s(2024 + n);
  return kreg::data::paper_dgp(n, s);
}

// A dataset with heavy x-duplication: ties at every admission threshold.
// The tie-inclusive neighbourhood definition must keep fast == naive exact
// here (a greedy "first k admitted" rule would be order-dependent).
Dataset tied_fixture(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    // x drawn from only 7 distinct values.
    d.x.push_back(std::floor(s.uniform() * 7.0) / 7.0);
    d.y.push_back(s.gaussian(0.0, 1.0));
  }
  return d;
}

void expect_near_profile(std::span<const double> actual,
                         std::span<const double> expected,
                         const char* backend) {
  ASSERT_EQ(actual.size(), expected.size()) << backend;
  for (std::size_t b = 0; b < expected.size(); ++b) {
    EXPECT_NEAR(actual[b], expected[b],
                kTol * std::max(1.0, std::abs(expected[b])))
        << backend << " b=" << b;
  }
}

void expect_bitwise_profile(std::span<const double> actual,
                            std::span<const double> reference,
                            const char* backend) {
  ASSERT_EQ(actual.size(), reference.size()) << backend;
  for (std::size_t b = 0; b < reference.size(); ++b) {
    EXPECT_EQ(actual[b], reference[b]) << backend << " b=" << b;
  }
}

struct GoldenCase {
  std::size_t n;
  std::span<const std::size_t> kgrid;
  std::span<const double> expected;
};

const std::array<GoldenCase, 2> kGoldenCases = {{
    {50, kGridN50, kKnnProfileN50},
    {200, kGridN200, kKnnProfileN200},
}};

class GoldenKnn
    : public ::testing::TestWithParam<std::size_t /*case index*/> {};

TEST_P(GoldenKnn, EveryBackendReproducesTheGoldenProfile) {
  const GoldenCase& gc = kGoldenCases[GetParam()];
  const Dataset data = fixture(gc.n);

  // The generator of the golden values.
  const std::vector<double> naive = kreg::knn_cv_profile_naive(data, gc.kgrid);
  expect_near_profile(naive, gc.expected, "naive");

  // Bitwise tier: sequential, device resident, device streamed.
  const std::vector<double> fast = kreg::knn_cv_profile(data, gc.kgrid);
  expect_bitwise_profile(fast, naive, "window");

  kreg::spmd::Device dev;
  expect_bitwise_profile(kreg::knn_cv_profile_device(dev, data, gc.kgrid),
                         naive, "spmd-resident");
  KnnDeviceConfig streamed;
  streamed.stream.k_block = 3;  // misaligned with |grid| = 9
  expect_bitwise_profile(
      kreg::knn_cv_profile_device(dev, data, gc.kgrid, streamed), naive,
      "spmd-k-block-3");

  // Tolerance tier: parallel and tiled regroup the score fold.
  expect_near_profile(kreg::knn_cv_profile_parallel(data, gc.kgrid),
                      gc.expected, "parallel");
  expect_near_profile(
      kreg::knn_cv_profile_tiled(data, gc.kgrid, Precision::kDouble,
                                 HostTiling{7, 3}),
      gc.expected, "tiled-7x3");
  // One tile covering (n, |grid|) re-joins the bitwise tier.
  expect_bitwise_profile(
      kreg::knn_cv_profile_tiled(data, gc.kgrid, Precision::kDouble,
                                 HostTiling{gc.n, gc.kgrid.size()}),
      naive, "tiled-single-tile");
}

INSTANTIATE_TEST_SUITE_P(Fixtures, GoldenKnn,
                         ::testing::Range<std::size_t>(0, 2),
                         [](const auto& suite_info) {
                           return "n" +
                                  std::to_string(kGoldenCases[suite_info.param].n);
                         });

class KnnBitwise : public ::testing::TestWithParam<Precision> {};

TEST_P(KnnBitwise, FastMatchesNaiveOnDenseGrid) {
  // Every admissible k at once: the window grows one admission at a time,
  // exercising the left/right tie races at each step.
  const Dataset data = fixture(60);
  std::vector<std::size_t> kgrid(59);
  for (std::size_t i = 0; i < kgrid.size(); ++i) {
    kgrid[i] = i + 1;
  }
  expect_bitwise_profile(kreg::knn_cv_profile(data, kgrid, GetParam()),
                         kreg::knn_cv_profile_naive(data, kgrid, GetParam()),
                         "dense-grid");
}

TEST_P(KnnBitwise, FastMatchesNaiveUnderHeavyTies) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const Dataset data = tied_fixture(80, seed);
    const std::vector<std::size_t> kgrid = {1, 2, 5, 11, 23, 47, 79};
    expect_bitwise_profile(
        kreg::knn_cv_profile(data, kgrid, GetParam()),
        kreg::knn_cv_profile_naive(data, kgrid, GetParam()),
        ("ties seed=" + std::to_string(seed)).c_str());
  }
}

TEST_P(KnnBitwise, StreamedKBlocksMatchResident) {
  const Dataset data = fixture(90);
  const std::vector<std::size_t> kgrid = {1, 3, 7, 12, 20, 33, 54, 89};
  kreg::spmd::Device dev;
  KnnDeviceConfig resident_cfg;
  resident_cfg.precision = GetParam();
  const std::vector<double> resident =
      kreg::knn_cv_profile_device(dev, data, kgrid, resident_cfg);
  for (std::size_t k_block : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                              std::size_t{8}, std::size_t{11}}) {
    KnnDeviceConfig cfg = resident_cfg;
    cfg.stream.k_block = k_block;
    expect_bitwise_profile(
        kreg::knn_cv_profile_device(dev, data, kgrid, cfg), resident,
        ("k_block=" + std::to_string(k_block)).c_str());
  }
  // The device fold shares the host's ascending order: bitwise across the
  // host/device boundary too.
  expect_bitwise_profile(resident,
                         kreg::knn_cv_profile(data, kgrid, GetParam()),
                         "device-vs-host");
}

INSTANTIATE_TEST_SUITE_P(Precisions, KnnBitwise,
                         ::testing::Values(Precision::kDouble,
                                           Precision::kFloat),
                         [](const auto& suite_info) {
                           return suite_info.param == Precision::kFloat ? "Float"
                                                                  : "Double";
                         });

TEST(KnnParallel, DeterministicAndToleranceEqual) {
  const Dataset data = fixture(200);
  const std::vector<double> sequential =
      kreg::knn_cv_profile(data, kGridN200);
  const std::vector<double> first =
      kreg::knn_cv_profile_parallel(data, kGridN200);
  expect_near_profile(first, sequential, "parallel-vs-sequential");
  for (int run = 0; run < 3; ++run) {
    expect_bitwise_profile(kreg::knn_cv_profile_parallel(data, kGridN200),
                           first, "parallel-rerun");
  }
}

TEST(KnnEstimator, PermutationInvariantWithinTolerance) {
  // The tie-inclusive neighbourhood is a set, so the estimator cannot
  // depend on input order; only summation grouping may move (ties admit in
  // sorted-position order).
  const Dataset data = tied_fixture(64, 21);
  std::vector<std::size_t> perm(data.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    perm[i] = (i * 29) % perm.size();  // 29 coprime with 64
  }
  const Dataset shuffled = kreg::data::permute(data, perm);
  const std::vector<std::size_t> kgrid = {1, 3, 9, 27, 63};
  expect_near_profile(kreg::knn_cv_profile(shuffled, kgrid),
                      kreg::knn_cv_profile(data, kgrid), "permuted");
}

TEST(KnnSelection, ArgminAndTieBreak) {
  const std::vector<std::size_t> kgrid = {2, 4, 8};
  auto r = kreg::knn_selection_from_profile(kgrid, {3.0, 1.0, 2.0}, "test");
  EXPECT_EQ(r.k, 4u);
  EXPECT_DOUBLE_EQ(r.cv_score, 1.0);
  EXPECT_EQ(r.method, "test");
  // Equal scores: smallest index (smallest k) wins.
  r = kreg::knn_selection_from_profile(kgrid, {1.0, 1.0, 1.0}, "test");
  EXPECT_EQ(r.k, 2u);
}

TEST(KnnSelection, SelectAgreesWithProfileArgmin) {
  const Dataset data = fixture(200);
  const auto result = kreg::knn_select(data, kGridN200);
  const std::vector<double> profile = kreg::knn_cv_profile(data, kGridN200);
  std::size_t best = 0;
  for (std::size_t b = 1; b < profile.size(); ++b) {
    if (profile[b] < profile[best]) {
      best = b;
    }
  }
  EXPECT_EQ(result.k, kGridN200[best]);
  EXPECT_EQ(result.cv_score, profile[best]);
  EXPECT_EQ(result.scores.size(), profile.size());
}

TEST(KnnDefaultGrid, SpansOneToNMinusOneStrictlyIncreasing) {
  for (std::size_t n : {2u, 3u, 10u, 1000u, 100000u}) {
    const auto grid = kreg::default_neighbor_grid(n);
    ASSERT_FALSE(grid.empty()) << n;
    EXPECT_EQ(grid.front(), 1u) << n;
    EXPECT_EQ(grid.back(), n - 1) << n;
    EXPECT_LE(grid.size(), 32u) << n;
    for (std::size_t i = 1; i < grid.size(); ++i) {
      EXPECT_LT(grid[i - 1], grid[i]) << n;
    }
  }
  EXPECT_EQ(kreg::default_neighbor_grid(2), std::vector<std::size_t>{1});
  EXPECT_THROW(kreg::default_neighbor_grid(1), std::invalid_argument);
  EXPECT_THROW(kreg::default_neighbor_grid(10, 0), std::invalid_argument);
}

TEST(KnnRegression, PredictsTieInclusiveNearestMean) {
  // Sorted x: {0, 1, 2, 3, 10}. Query 1.9 with k = 2: nearest are x=2 (0.1)
  // and x=1 (0.9) -> mean(20, 30).
  const Dataset data{{0, 1, 2, 3, 10}, {10, 20, 30, 40, 50}};
  const kreg::KnnRegression fit(data, 2);
  EXPECT_EQ(fit.k(), 2u);
  EXPECT_DOUBLE_EQ(fit.predict(1.9), 25.0);
  // Query 1.5 with k = 1: both x=1 and x=2 sit exactly at the radius, so
  // the tie-inclusive neighbourhood holds both.
  const kreg::KnnRegression one(data, 1);
  EXPECT_DOUBLE_EQ(one.predict(1.5), 25.0);
  // Far query: the k nearest are the right tail.
  EXPECT_DOUBLE_EQ(fit.predict(100.0), 45.0);
}

TEST(KnnValidation, RejectsBadInputs) {
  const Dataset data = fixture(20);
  const Dataset empty;
  const std::vector<std::size_t> ok = {1, 5, 19};
  EXPECT_THROW(kreg::knn_cv_profile(empty, ok), std::invalid_argument);
  EXPECT_THROW(kreg::knn_cv_profile(data, std::vector<std::size_t>{}),
               std::invalid_argument);
  EXPECT_THROW(kreg::knn_cv_profile(data, std::vector<std::size_t>{0, 3}),
               std::invalid_argument);
  EXPECT_THROW(kreg::knn_cv_profile(data, std::vector<std::size_t>{3, 3}),
               std::invalid_argument);
  EXPECT_THROW(kreg::knn_cv_profile(data, std::vector<std::size_t>{5, 20}),
               std::invalid_argument);
  EXPECT_THROW(kreg::knn_cv_profile_naive(data, std::vector<std::size_t>{20}),
               std::invalid_argument);
}

TEST(KnnStreamedBytes, MonotoneInKBlock) {
  const std::size_t base =
      kreg::knn_estimated_streamed_bytes(1000, 0, Precision::kDouble);
  std::size_t prev = base;
  for (std::size_t k_block : {1u, 4u, 16u, 64u}) {
    const std::size_t bytes =
        kreg::knn_estimated_streamed_bytes(1000, k_block, Precision::kDouble);
    EXPECT_GT(bytes, prev) << k_block;
    prev = bytes;
  }
}

}  // namespace
