// Unit and property tests for the RNG substrate: engine determinism,
// stream independence, distribution moments, and Lemire-bound correctness.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "rng/stream.hpp"
#include "rng/xoshiro256pp.hpp"

namespace {

using kreg::rng::Philox4x32;
using kreg::rng::SplitMix64;
using kreg::rng::Stream;
using kreg::rng::Xoshiro256pp;

TEST(SplitMix64, KnownSequenceFromZeroSeed) {
  // Reference values from the canonical splitmix64.c with seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a(), b());
}

TEST(Xoshiro256pp, DeterministicForFixedSeed) {
  Xoshiro256pp a(123);
  Xoshiro256pp b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256pp, DifferentSeedsProduceDifferentStreams) {
  Xoshiro256pp a(1);
  Xoshiro256pp b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256pp, AllZeroStateIsRemapped) {
  Xoshiro256pp z(std::array<std::uint64_t, 4>{0, 0, 0, 0});
  // A true all-zero state would emit zero forever.
  bool any_nonzero = false;
  for (int i = 0; i < 8; ++i) {
    any_nonzero |= z() != 0;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(Xoshiro256pp, JumpChangesStateAndDecorrelates) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(7);
  b.jump();
  EXPECT_NE(a.state(), b.state());
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256pp, SplitReturnsPreJumpEngine) {
  Xoshiro256pp parent(99);
  const Xoshiro256pp before = parent;
  Xoshiro256pp child = parent.split();
  EXPECT_EQ(child, before);
  EXPECT_NE(child.state(), parent.state());
}

TEST(Philox, DeterministicBlockFunction) {
  const Philox4x32::key_type key{0xdeadbeefu, 0xcafebabeu};
  const Philox4x32::counter_type ctr{1, 2, 3, 4};
  const auto block1 = Philox4x32::block(key, ctr);
  const auto block2 = Philox4x32::block(key, ctr);
  EXPECT_EQ(block1, block2);
}

TEST(Philox, CounterChangesOutput) {
  const Philox4x32::key_type key{1, 2};
  const auto a = Philox4x32::block(key, {0, 0, 0, 0});
  const auto b = Philox4x32::block(key, {1, 0, 0, 0});
  EXPECT_NE(a, b);
}

TEST(Philox, KeyChangesOutput) {
  const Philox4x32::counter_type ctr{5, 6, 7, 8};
  const auto a = Philox4x32::block({1, 0}, ctr);
  const auto b = Philox4x32::block({2, 0}, ctr);
  EXPECT_NE(a, b);
}

TEST(Philox, StreamInterfaceMatchesBlocks) {
  Philox4x32 eng(42);
  const auto expected = Philox4x32::block(eng.key(), eng.counter());
  EXPECT_EQ(eng(), expected[0]);
  EXPECT_EQ(eng(), expected[1]);
  EXPECT_EQ(eng(), expected[2]);
  EXPECT_EQ(eng(), expected[3]);
}

TEST(Philox, SetCounterRepositions) {
  Philox4x32 eng(9);
  (void)eng();
  (void)eng();
  eng.set_counter({0, 0, 0, 0});
  Philox4x32 fresh(9);
  EXPECT_EQ(eng(), fresh());
}

TEST(Philox, ReferenceVectorTenRounds) {
  // Philox4x32-10 test vector from the Random123 known-answer tests:
  // all-ones counter and key.
  const auto out = Philox4x32::block({0xffffffffu, 0xffffffffu},
                                     {0xffffffffu, 0xffffffffu, 0xffffffffu,
                                      0xffffffffu});
  const Philox4x32::counter_type expected{0x408f276du, 0x41c83b0eu,
                                          0xa20bc7c6u, 0x6d5451fdu};
  EXPECT_EQ(out, expected);
}

TEST(Distributions, CanonicalInUnitInterval) {
  Xoshiro256pp eng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = kreg::rng::canonical(eng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Distributions, UniformRealRespectsBounds) {
  Xoshiro256pp eng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = kreg::rng::uniform_real(eng, -2.5, 7.25);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.25);
  }
}

TEST(Distributions, UniformMeanAndVariance) {
  Xoshiro256pp eng(5);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = kreg::rng::canonical(eng);
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Distributions, UniformIndexWithinBoundAndCoversAll) {
  Xoshiro256pp eng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = kreg::rng::uniform_index(eng, 7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Distributions, UniformIndexBoundOne) {
  Xoshiro256pp eng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(kreg::rng::uniform_index(eng, 1), 0u);
  }
}

TEST(Distributions, NormalMomentsMatch) {
  Xoshiro256pp eng(8);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = kreg::rng::standard_normal(eng);
    sum += z;
    sum_sq += z * z;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Distributions, ExponentialMeanMatchesRate) {
  Xoshiro256pp eng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double e = kreg::rng::exponential(eng, 4.0);
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Stream, SubstreamsAreDecorrelated) {
  Stream root(11);
  Stream s0 = root.substream(0);
  Stream s1 = root.substream(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (s0.bits() == s1.bits()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

TEST(Stream, SubstreamIsDeterministic) {
  Stream root_a(12);
  Stream root_b(12);
  Stream a = root_a.substream(3);
  Stream b = root_b.substream(3);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.bits(), b.bits());
  }
}

TEST(Stream, UniformsVectorHasRequestedShape) {
  Stream s(13);
  const std::vector<double> v = s.uniforms(257, 2.0, 3.0);
  ASSERT_EQ(v.size(), 257u);
  for (double x : v) {
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Stream, ShuffleIsAPermutation) {
  Stream s(14);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) {
    v[i] = i;
  }
  std::vector<int> orig = v;
  s.shuffle(v);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

}  // namespace
