// The library's central property test: the sorting-based incremental sweep
// (paper §III) must reproduce the naive O(k·n²) CV profile exactly (up to
// floating-point recombination error) for every sweepable kernel, every
// DGP, sequential and parallel, float and double.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/grid.hpp"
#include "core/loocv.hpp"
#include "core/sorted_sweep.hpp"
#include "core/window_sweep.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::cv_score;
using kreg::KernelType;
using kreg::Precision;
using kreg::sweep_cv_profile;
using kreg::sweep_cv_profile_parallel;
using kreg::window_cv_profile;
using kreg::window_cv_profile_parallel;
using kreg::data::Dataset;
using kreg::rng::Stream;

std::vector<double> naive_profile(const Dataset& d,
                                  const std::vector<double>& grid,
                                  KernelType kernel) {
  std::vector<double> scores;
  scores.reserve(grid.size());
  for (double h : grid) {
    scores.push_back(cv_score(d, h, kernel));
  }
  return scores;
}

constexpr std::array<KernelType, 5> kSweepable = {
    KernelType::kEpanechnikov, KernelType::kUniform, KernelType::kTriangular,
    KernelType::kBiweight, KernelType::kTriweight};

// ---- Sweep vs naive across kernels and datasets ---------------------------

using SweepParam = std::tuple<KernelType, std::size_t /*dgp idx*/>;

class SweepEquivalenceTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SweepEquivalenceTest, MatchesNaiveProfile) {
  const auto [kernel, dgp_idx] = GetParam();
  Stream s(10 + dgp_idx);
  const auto& dgp = kreg::data::all_dgps()[dgp_idx];
  const Dataset d = dgp.generate(300, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 25);

  const std::vector<double> naive = naive_profile(d, grid.values(), kernel);
  const std::vector<double> swept =
      sweep_cv_profile(d, grid.values(), kernel, Precision::kDouble);

  ASSERT_EQ(swept.size(), naive.size());
  for (std::size_t b = 0; b < naive.size(); ++b) {
    ASSERT_NEAR(swept[b], naive[b], 1e-9 * std::max(1.0, naive[b]))
        << dgp.name << "/" << to_string(kernel) << " at h=" << grid[b];
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndDgps, SweepEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(kSweepable),
                       ::testing::Values<std::size_t>(0, 1, 2, 3, 4)),
    [](const auto& info) {
      return std::string(kreg::to_string(std::get<0>(info.param))) + "_" +
             kreg::data::all_dgps()[std::get<1>(info.param)].name;
    });

// ---- Parallel sweep == sequential sweep -----------------------------------

TEST(SweepParallel, MatchesSequentialExactly) {
  Stream s(20);
  const Dataset d = kreg::data::paper_dgp(700, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
  const auto seq = sweep_cv_profile(d, grid.values(),
                                    KernelType::kEpanechnikov);
  const auto par = sweep_cv_profile_parallel(d, grid.values(),
                                             KernelType::kEpanechnikov);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t b = 0; b < seq.size(); ++b) {
    // Same per-observation terms, possibly different summation grouping.
    EXPECT_NEAR(par[b], seq[b], 1e-11 * std::max(1.0, seq[b]));
  }
}

// ---- Float path stays close to double path --------------------------------

TEST(SweepPrecision, FloatTracksDoubleWithinSinglePrecision) {
  Stream s(21);
  const Dataset d = kreg::data::paper_dgp(500, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 40);
  const auto dbl = sweep_cv_profile(d, grid.values(),
                                    KernelType::kEpanechnikov,
                                    Precision::kDouble);
  const auto flt = sweep_cv_profile(d, grid.values(),
                                    KernelType::kEpanechnikov,
                                    Precision::kFloat);
  for (std::size_t b = 0; b < dbl.size(); ++b) {
    EXPECT_NEAR(flt[b], dbl[b], 1e-3 * std::max(1.0, dbl[b])) << "b=" << b;
  }
}

TEST(SweepPrecision, ArgminAgreesAcrossPrecisions) {
  Stream s(22);
  const Dataset d = kreg::data::paper_dgp(600, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 30);
  const auto dbl = sweep_cv_profile(d, grid.values(),
                                    KernelType::kEpanechnikov,
                                    Precision::kDouble);
  const auto flt = sweep_cv_profile(d, grid.values(),
                                    KernelType::kEpanechnikov,
                                    Precision::kFloat);
  const auto argmin = [](const std::vector<double>& v) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (v[i] < v[best]) {
        best = i;
      }
    }
    return best;
  };
  EXPECT_EQ(argmin(dbl), argmin(flt));
}

// ---- Edge cases and validation ---------------------------------------------

TEST(Sweep, RejectsNonSweepableKernel) {
  Stream s(23);
  const Dataset d = kreg::data::paper_dgp(50, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 5);
  EXPECT_THROW(sweep_cv_profile(d, grid.values(), KernelType::kGaussian),
               std::invalid_argument);
  EXPECT_THROW(sweep_cv_profile(d, grid.values(), KernelType::kCosine),
               std::invalid_argument);
}

TEST(Sweep, RejectsEmptyInputsAndBadGrids) {
  Stream s(24);
  const Dataset d = kreg::data::paper_dgp(50, s);
  const Dataset empty;
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 5);
  EXPECT_THROW(sweep_cv_profile(empty, grid.values(),
                                KernelType::kEpanechnikov),
               std::invalid_argument);
  const std::vector<double> descending = {0.5, 0.2};
  EXPECT_THROW(sweep_cv_profile(d, descending, KernelType::kEpanechnikov),
               std::invalid_argument);
  const std::vector<double> non_positive = {0.0, 0.5};
  EXPECT_THROW(sweep_cv_profile(d, non_positive, KernelType::kEpanechnikov),
               std::invalid_argument);
}

TEST(Sweep, SingleObservationProfileIsZero) {
  // n = 1: the only residual has M(X_0) = 0 at every bandwidth.
  Dataset d{{0.5}, {2.0}};
  const std::vector<double> grid = {0.1, 0.5, 1.0};
  const auto profile = sweep_cv_profile(d, grid, KernelType::kEpanechnikov);
  for (double score : profile) {
    EXPECT_DOUBLE_EQ(score, 0.0);
  }
}

TEST(Sweep, DuplicateXValuesHandled) {
  // Ties in X (zero distances beyond self) must not break the sweep.
  Dataset d{{0.5, 0.5, 0.5, 0.7}, {1.0, 2.0, 3.0, 4.0}};
  const std::vector<double> grid = {0.1, 0.3, 0.8};
  const auto swept = sweep_cv_profile(d, grid, KernelType::kEpanechnikov);
  const auto naive = naive_profile(d, grid, KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(swept[b], naive[b], 1e-12);
  }
}

TEST(Sweep, SingleBandwidthGrid) {
  Stream s(25);
  const Dataset d = kreg::data::paper_dgp(100, s);
  const std::vector<double> grid = {0.25};
  const auto swept = sweep_cv_profile(d, grid, KernelType::kEpanechnikov);
  ASSERT_EQ(swept.size(), 1u);
  EXPECT_NEAR(swept[0], cv_score(d, 0.25), 1e-10);
}

TEST(Sweep, LargeGridDenseCheck) {
  // k near the device cap with a small n: every bandwidth must still agree
  // with the naive path (the sweep's pointer never rewinds).
  Stream s(26);
  const Dataset d = kreg::data::paper_dgp(60, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 512);
  const auto swept = sweep_cv_profile(d, grid.values(),
                                      KernelType::kEpanechnikov);
  const auto naive = naive_profile(d, grid.values(),
                                   KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    ASSERT_NEAR(swept[b], naive[b], 1e-9 * std::max(1.0, naive[b]))
        << "b=" << b;
  }
}

// ---- Window sweep (global sort + two monotone pointers) --------------------

class WindowSweepEquivalenceTest : public ::testing::TestWithParam<SweepParam> {
};

TEST_P(WindowSweepEquivalenceTest, MatchesNaiveProfile) {
  const auto [kernel, dgp_idx] = GetParam();
  Stream s(40 + dgp_idx);
  const auto& dgp = kreg::data::all_dgps()[dgp_idx];
  const Dataset d = dgp.generate(300, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 25);

  const std::vector<double> naive = naive_profile(d, grid.values(), kernel);
  const std::vector<double> windowed =
      window_cv_profile(d, grid.values(), kernel, Precision::kDouble);

  ASSERT_EQ(windowed.size(), naive.size());
  for (std::size_t b = 0; b < naive.size(); ++b) {
    ASSERT_NEAR(windowed[b], naive[b], 1e-9 * std::max(1.0, naive[b]))
        << dgp.name << "/" << to_string(kernel) << " at h=" << grid[b];
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndDgps, WindowSweepEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(kSweepable),
                       ::testing::Values<std::size_t>(0, 1, 2, 3, 4)),
    [](const auto& info) {
      return std::string(kreg::to_string(std::get<0>(info.param))) + "_" +
             kreg::data::all_dgps()[std::get<1>(info.param)].name;
    });

TEST(WindowSweep, MatchesPerRowSortProfileClosely) {
  // Both incremental paths accumulate the same moment sums (different
  // admission order), so they agree far tighter than either does vs naive.
  Stream s(41);
  const Dataset d = kreg::data::paper_dgp(600, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
  const auto per_row = sweep_cv_profile(d, grid.values(),
                                        KernelType::kEpanechnikov);
  const auto windowed = window_cv_profile(d, grid.values(),
                                          KernelType::kEpanechnikov);
  ASSERT_EQ(per_row.size(), windowed.size());
  for (std::size_t b = 0; b < per_row.size(); ++b) {
    EXPECT_NEAR(windowed[b], per_row[b], 1e-10 * std::max(1.0, per_row[b]));
  }
}

TEST(WindowSweep, ParallelMatchesSequential) {
  Stream s(42);
  const Dataset d = kreg::data::paper_dgp(700, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
  const auto seq = window_cv_profile(d, grid.values(),
                                     KernelType::kEpanechnikov);
  const auto par = window_cv_profile_parallel(d, grid.values(),
                                              KernelType::kEpanechnikov);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t b = 0; b < seq.size(); ++b) {
    EXPECT_NEAR(par[b], seq[b], 1e-11 * std::max(1.0, seq[b]));
  }
}

TEST(WindowSweep, FloatTracksDoubleWithinSinglePrecision) {
  Stream s(43);
  const Dataset d = kreg::data::paper_dgp(500, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 40);
  const auto dbl = window_cv_profile(d, grid.values(),
                                     KernelType::kEpanechnikov,
                                     Precision::kDouble);
  const auto flt = window_cv_profile(d, grid.values(),
                                     KernelType::kEpanechnikov,
                                     Precision::kFloat);
  for (std::size_t b = 0; b < dbl.size(); ++b) {
    EXPECT_NEAR(flt[b], dbl[b], 1e-3 * std::max(1.0, dbl[b])) << "b=" << b;
  }
}

TEST(WindowSweep, DuplicateXValuesHandled) {
  // Ties in X collapse to zero distances; both pointers must admit all of
  // them (and nothing twice).
  Dataset d{{0.5, 0.5, 0.5, 0.7}, {1.0, 2.0, 3.0, 4.0}};
  const std::vector<double> grid = {0.1, 0.3, 0.8};
  const auto windowed = window_cv_profile(d, grid, KernelType::kEpanechnikov);
  const auto naive = naive_profile(d, grid, KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(windowed[b], naive[b], 1e-12);
  }
}

TEST(WindowSweep, TwoObservations) {
  // n = 2 exercises both boundary pointers immediately.
  Dataset d{{0.2, 0.8}, {1.0, 3.0}};
  const std::vector<double> grid = {0.1, 0.5, 0.7, 1.0};
  const auto windowed = window_cv_profile(d, grid, KernelType::kEpanechnikov);
  const auto naive = naive_profile(d, grid, KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(windowed[b], naive[b], 1e-12) << "h=" << grid[b];
  }
}

TEST(WindowSweep, EmptyNeighbourhoodContributesZero) {
  // An isolated observation has M(X_i) = 0 at small h: its residual must be
  // dropped, not produce a 0/0.
  Dataset d{{0.0, 0.01, 5.0}, {1.0, 2.0, 100.0}};
  const std::vector<double> grid = {0.05, 0.1};
  const auto windowed = window_cv_profile(d, grid, KernelType::kEpanechnikov);
  const auto naive = naive_profile(d, grid, KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(windowed[b], naive[b], 1e-12) << "h=" << grid[b];
  }
}

TEST(WindowSweep, RejectsBadInputs) {
  Stream s(44);
  const Dataset d = kreg::data::paper_dgp(50, s);
  const Dataset empty;
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 5);
  EXPECT_THROW(window_cv_profile(empty, grid.values(),
                                 KernelType::kEpanechnikov),
               std::invalid_argument);
  EXPECT_THROW(window_cv_profile(d, grid.values(), KernelType::kGaussian),
               std::invalid_argument);
  const std::vector<double> descending = {0.5, 0.2};
  EXPECT_THROW(window_cv_profile(d, descending, KernelType::kEpanechnikov),
               std::invalid_argument);
  const std::vector<double> duplicate = {0.2, 0.2, 0.5};
  EXPECT_THROW(window_cv_profile(d, duplicate, KernelType::kEpanechnikov),
               std::invalid_argument);
  const std::vector<double> non_positive = {0.0, 0.5};
  EXPECT_THROW(window_cv_profile(d, non_positive, KernelType::kEpanechnikov),
               std::invalid_argument);
}

TEST(WindowSweep, LargeGridDenseCheck) {
  Stream s(45);
  const Dataset d = kreg::data::paper_dgp(60, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 512);
  const auto windowed = window_cv_profile(d, grid.values(),
                                          KernelType::kEpanechnikov);
  const auto naive = naive_profile(d, grid.values(),
                                   KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    ASSERT_NEAR(windowed[b], naive[b], 1e-9 * std::max(1.0, naive[b]))
        << "b=" << b;
  }
}

TEST(WindowSweep, SortDatasetOrdersAndPairs) {
  const std::vector<double> x = {0.9, 0.1, 0.5};
  const std::vector<double> y = {9.0, 1.0, 5.0};
  const auto sorted = kreg::sort_dataset<double>(x, y);
  ASSERT_EQ(sorted.x.size(), 3u);
  EXPECT_DOUBLE_EQ(sorted.x[0], 0.1);
  EXPECT_DOUBLE_EQ(sorted.x[1], 0.5);
  EXPECT_DOUBLE_EQ(sorted.x[2], 0.9);
  EXPECT_DOUBLE_EQ(sorted.y[0], 1.0);
  EXPECT_DOUBLE_EQ(sorted.y[1], 5.0);
  EXPECT_DOUBLE_EQ(sorted.y[2], 9.0);
}

TEST(Sweep, MonotoneAdmissionProperty) {
  // Internal consistency of the §III argument: denominators (weighted
  // counts) can only grow with h for the Uniform kernel, where weights are
  // constants — so the number of M(X_i)=0 drops can only shrink. We verify
  // via the naive predictor for transparency.
  Stream s(27);
  const Dataset d = kreg::data::paper_dgp(150, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 20);
  std::size_t previous_valid = 0;
  for (double h : grid.values()) {
    const auto loo = kreg::loo_predict_all(d, h, KernelType::kUniform);
    std::size_t valid = 0;
    for (const auto& p : loo) {
      valid += p.valid ? 1 : 0;
    }
    EXPECT_GE(valid, previous_valid) << "h=" << h;
    previous_valid = valid;
  }
}

}  // namespace
