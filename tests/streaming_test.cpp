// Tests for k-block streaming: plan resolution and budget parsing, the
// streamed device regression/KDE window sweeps (bitwise parity with the
// resident paths), the multi-device (device × k-block) sharding, the
// cache-blocked host kernel, and the memory-cliff lift under small budgets.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/grid.hpp"
#include "core/multi_device_selector.hpp"
#include "core/spmd_kde.hpp"
#include "core/spmd_selector.hpp"
#include "core/streaming.hpp"
#include "core/window_sweep.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"
#include "spmd/device.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::HostTiling;
using kreg::KernelType;
using kreg::MultiDeviceGridSelector;
using kreg::Precision;
using kreg::ResidualLayout;
using kreg::SelectionResult;
using kreg::SpmdGridSelector;
using kreg::SpmdKdeConfig;
using kreg::SpmdKdeSelector;
using kreg::SpmdSelectorConfig;
using kreg::StreamingConfig;
using kreg::StreamingPlan;
using kreg::data::Dataset;
using kreg::rng::Stream;
using kreg::spmd::Device;
using kreg::spmd::DeviceProperties;

Dataset paper_data(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  return kreg::data::paper_dgp(n, s);
}

std::vector<double> kde_sample(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = s.uniform() < 0.5 ? s.gaussian(-1.0, 0.4) : s.gaussian(1.0, 0.6);
  }
  return xs;
}

SpmdSelectorConfig resident_cfg(Precision precision = Precision::kDouble) {
  SpmdSelectorConfig cfg;
  cfg.precision = precision;
  cfg.stream.auto_tune = false;  // pin the pre-streaming resident path
  return cfg;
}

void expect_same_selection(const SelectionResult& streamed,
                           const SelectionResult& resident) {
  EXPECT_DOUBLE_EQ(streamed.bandwidth, resident.bandwidth);
  EXPECT_DOUBLE_EQ(streamed.cv_score, resident.cv_score);
  ASSERT_EQ(streamed.scores.size(), resident.scores.size());
  for (std::size_t b = 0; b < resident.scores.size(); ++b) {
    EXPECT_DOUBLE_EQ(streamed.scores[b], resident.scores[b]) << "b=" << b;
  }
}

// --- parse_memory_budget ---------------------------------------------------

TEST(ParseMemoryBudget, AcceptsPlainBytesAndBinarySuffixes) {
  EXPECT_EQ(kreg::parse_memory_budget("4096"), 4096u);
  EXPECT_EQ(kreg::parse_memory_budget("512K"), 512u << 10);
  EXPECT_EQ(kreg::parse_memory_budget("512kb"), 512u << 10);
  EXPECT_EQ(kreg::parse_memory_budget("256KiB"), 256u << 10);
  EXPECT_EQ(kreg::parse_memory_budget("64MB"), 64u << 20);
  EXPECT_EQ(kreg::parse_memory_budget("1MiB"), 1u << 20);
  EXPECT_EQ(kreg::parse_memory_budget("2GiB"), std::size_t{2} << 30);
  EXPECT_EQ(kreg::parse_memory_budget("1gb"), std::size_t{1} << 30);
  EXPECT_EQ(kreg::parse_memory_budget("128b"), 128u);
  EXPECT_EQ(kreg::parse_memory_budget(" 16m "), 16u << 20);
}

TEST(ParseMemoryBudget, RejectsGarbage) {
  EXPECT_THROW(kreg::parse_memory_budget(""), std::invalid_argument);
  EXPECT_THROW(kreg::parse_memory_budget("MB"), std::invalid_argument);
  EXPECT_THROW(kreg::parse_memory_budget("12XB"), std::invalid_argument);
  EXPECT_THROW(kreg::parse_memory_budget("12 34"), std::invalid_argument);
}

// --- resolve_streaming -----------------------------------------------------

TEST(ResolveStreaming, ExplicitKBlockAlwaysStreams) {
  StreamingConfig cfg;
  cfg.k_block = 3;
  const StreamingPlan plan =
      kreg::resolve_streaming(cfg, 10, 1 << 20, 1 << 10, 1 << 8, 1 << 30);
  EXPECT_TRUE(plan.streamed);
  EXPECT_EQ(plan.k_block, 3u);
  EXPECT_EQ(plan.blocks(10), 4u);

  cfg.k_block = 17;  // clamped to the grid
  const StreamingPlan clamped =
      kreg::resolve_streaming(cfg, 10, 1 << 20, 1 << 10, 1 << 8, 1 << 30);
  EXPECT_TRUE(clamped.streamed);
  EXPECT_EQ(clamped.k_block, 10u);
  EXPECT_EQ(clamped.blocks(10), 1u);
}

TEST(ResolveStreaming, AutoTuneOffStaysResidentWithoutBudget) {
  StreamingConfig cfg;
  cfg.auto_tune = false;
  const StreamingPlan plan = kreg::resolve_streaming(
      cfg, 8, /*resident=*/1 << 30, /*base=*/1 << 10, 1 << 8, /*cap=*/1 << 20);
  EXPECT_FALSE(plan.streamed);
  EXPECT_EQ(plan.k_block, 8u);
}

TEST(ResolveStreaming, EnvBudgetIgnoredWhenAutoTuneOff) {
  ASSERT_EQ(setenv("KREG_MEMORY_BUDGET", "2KiB", 1), 0);
  StreamingConfig cfg;
  cfg.auto_tune = false;
  const StreamingPlan plan = kreg::resolve_streaming(
      cfg, 8, /*resident=*/1 << 30, /*base=*/1 << 10, 1 << 8, /*cap=*/1 << 20);
  unsetenv("KREG_MEMORY_BUDGET");
  EXPECT_FALSE(plan.streamed);
  EXPECT_EQ(plan.k_block, 8u);
}

TEST(ResolveStreaming, BudgetAboveDeviceCapacityIsClamped) {
  StreamingConfig cfg;
  cfg.memory_budget_bytes = std::size_t{1} << 30;  // far beyond the ledger
  const StreamingPlan plan = kreg::resolve_streaming(
      cfg, 100, /*resident=*/1 << 20, /*base=*/4'000, /*per_k=*/500,
      /*cap=*/10'000);
  EXPECT_TRUE(plan.streamed);
  EXPECT_EQ(plan.budget_bytes, 10'000u);
  EXPECT_EQ(plan.k_block, 12u);  // sized against the clamped ledger
}

TEST(ResolveStreaming, ResidentWhenItFitsTheBudget) {
  const StreamingPlan plan = kreg::resolve_streaming(
      StreamingConfig{}, 8, /*resident=*/1 << 16, 1 << 10, 1 << 8,
      /*cap=*/1 << 20);
  EXPECT_FALSE(plan.streamed);
  EXPECT_EQ(plan.k_block, 8u);
}

TEST(ResolveStreaming, SizesBlockFromBudgetWhenResidentOverflows) {
  StreamingConfig cfg;
  cfg.memory_budget_bytes = 10'000;
  const StreamingPlan plan = kreg::resolve_streaming(
      cfg, 100, /*resident=*/1 << 20, /*base=*/4'000, /*per_k=*/500, 1 << 30);
  EXPECT_TRUE(plan.streamed);
  EXPECT_EQ(plan.k_block, 12u);  // (10000 - 4000) / 500
}

TEST(ResolveStreaming, BudgetBelowBaseDegradesToSingleBandwidth) {
  StreamingConfig cfg;
  cfg.memory_budget_bytes = 1'000;
  const StreamingPlan plan = kreg::resolve_streaming(
      cfg, 100, 1 << 20, /*base=*/4'000, /*per_k=*/500, 1 << 30);
  EXPECT_TRUE(plan.streamed);
  EXPECT_EQ(plan.k_block, 1u);
}

TEST(ResolveStreaming, EmptyGridThrows) {
  EXPECT_THROW(
      kreg::resolve_streaming(StreamingConfig{}, 0, 1, 1, 1, 1 << 20),
      std::invalid_argument);
}

// --- streamed device regression sweep --------------------------------------

TEST(StreamedSelector, MatchesResidentBitwiseAcrossKBlocks) {
  const Dataset d = paper_data(257, 11);  // odd n: uneven last thread block
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 23);
  const std::size_t k = grid.size();

  Device ref;
  const SelectionResult resident =
      SpmdGridSelector(ref, resident_cfg()).select(d, grid);

  for (std::size_t kb : {std::size_t{1}, std::size_t{3}, k - 1, k, k + 7}) {
    Device dev;
    SpmdSelectorConfig cfg = resident_cfg();
    cfg.stream.k_block = kb;
    const SelectionResult streamed = SpmdGridSelector(dev, cfg).select(d, grid);
    SCOPED_TRACE("k_block=" + std::to_string(kb));
    expect_same_selection(streamed, resident);
  }
}

TEST(StreamedSelector, FloatPathMatchesResidentBitwise) {
  const Dataset d = paper_data(180, 12);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 14);
  Device ref;
  const SelectionResult resident =
      SpmdGridSelector(ref, resident_cfg(Precision::kFloat)).select(d, grid);
  Device dev;
  SpmdSelectorConfig cfg = resident_cfg(Precision::kFloat);
  cfg.stream.k_block = 5;
  expect_same_selection(SpmdGridSelector(dev, cfg).select(d, grid), resident);
}

TEST(StreamedSelector, ObservationMajorLayoutMatchesResident) {
  const Dataset d = paper_data(150, 13);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 11);
  SpmdSelectorConfig base = resident_cfg();
  base.layout = ResidualLayout::kObservationMajor;
  Device ref;
  const SelectionResult resident =
      SpmdGridSelector(ref, base).select(d, grid);
  Device dev;
  SpmdSelectorConfig cfg = base;
  cfg.stream.k_block = 4;
  expect_same_selection(SpmdGridSelector(dev, cfg).select(d, grid), resident);
}

TEST(StreamedSelector, MatchesHostWindowProfile) {
  const Dataset d = paper_data(220, 14);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 17);
  const std::vector<double> host =
      kreg::window_cv_profile(d, grid.values(), KernelType::kEpanechnikov);
  Device dev;
  SpmdSelectorConfig cfg = resident_cfg();
  cfg.stream.k_block = 6;
  const SelectionResult streamed = SpmdGridSelector(dev, cfg).select(d, grid);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(streamed.scores[b], host[b],
                1e-9 * std::max(1.0, host[b]));
  }
}

TEST(StreamedSelector, LaunchesOneKernelPerBlockAndNoDeviceArgmin) {
  const Dataset d = paper_data(90, 15);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 10);
  Device dev;
  SpmdSelectorConfig cfg = resident_cfg();
  cfg.stream.k_block = 3;
  (void)SpmdGridSelector(dev, cfg).select(d, grid);
  EXPECT_EQ(dev.stats().kernel_launches, 4u);       // ceil(10 / 3) blocks
  EXPECT_EQ(dev.stats().cooperative_launches, 10u);  // k reductions, argmin
                                                     // runs on the host
}

TEST(StreamedSelector, TiedXAndTinyDatasetsWithKBlockOne) {
  Device dev;
  SpmdSelectorConfig cfg = resident_cfg();
  cfg.stream.k_block = 1;
  const Dataset ties{{0.5, 0.5, 0.5, 0.9}, {1.0, 2.0, 3.0, 4.0}};
  const BandwidthGrid grid(0.1, 1.0, 4);
  Device ref;
  expect_same_selection(SpmdGridSelector(dev, cfg).select(ties, grid),
                        SpmdGridSelector(ref, resident_cfg()).select(ties, grid));

  Device dev2;
  const Dataset two{{0.1, 0.9}, {1.0, 2.0}};
  EXPECT_NO_THROW(SpmdGridSelector(dev2, cfg).select(two, grid));
}

TEST(StreamedSelector, PerRowAlgorithmIgnoresStreamConfig) {
  const Dataset d = paper_data(80, 16);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 6);
  SpmdSelectorConfig cfg = resident_cfg();
  cfg.algorithm = kreg::SweepAlgorithm::kPerRowSort;
  cfg.stream.k_block = 2;
  Device dev;
  Device ref;
  SpmdSelectorConfig plain = resident_cfg();
  plain.algorithm = kreg::SweepAlgorithm::kPerRowSort;
  expect_same_selection(SpmdGridSelector(dev, cfg).select(d, grid),
                        SpmdGridSelector(ref, plain).select(d, grid));
}

TEST(StreamedSelector, NameShowsStreamingKnobs) {
  Device dev;
  SpmdSelectorConfig cfg;
  cfg.stream.k_block = 8;
  cfg.stream.memory_budget_bytes = 1 << 20;
  const std::string name = SpmdGridSelector(dev, cfg).name();
  EXPECT_NE(name.find("kblock=8"), std::string::npos) << name;
  EXPECT_NE(name.find("budget=1048576"), std::string::npos) << name;
}

// --- budget-driven engagement ----------------------------------------------

TEST(StreamedSelector, ExplicitBudgetKeepsLedgerPeakUnderBudget) {
  const Dataset d = paper_data(1000, 17);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 30);
  const std::size_t budget = 200'000;
  ASSERT_GT(SpmdGridSelector::estimated_bytes(1000, 30, Precision::kDouble,
                                              false,
                                              kreg::SweepAlgorithm::kWindow),
            budget);
  Device dev;
  SpmdSelectorConfig cfg;
  cfg.precision = Precision::kDouble;
  cfg.stream.memory_budget_bytes = budget;
  const SelectionResult streamed = SpmdGridSelector(dev, cfg).select(d, grid);
  EXPECT_LE(dev.global_peak(), budget);

  Device ref;
  expect_same_selection(streamed,
                        SpmdGridSelector(ref, resident_cfg()).select(d, grid));
}

TEST(StreamedSelector, AutoStreamsPastTheResidentCliff) {
  // A device whose global memory cannot hold the resident n×k plan: the
  // default config streams automatically instead of throwing.
  const std::size_t cap = 256 * 1024;
  const Dataset d = paper_data(1500, 18);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 20);
  ASSERT_GT(SpmdGridSelector::estimated_bytes(1500, 20, Precision::kDouble,
                                              false,
                                              kreg::SweepAlgorithm::kWindow),
            cap);
  Device dev(DeviceProperties::tiny(cap));
  SpmdSelectorConfig cfg;
  cfg.precision = Precision::kDouble;
  const SelectionResult streamed = SpmdGridSelector(dev, cfg).select(d, grid);
  EXPECT_LE(dev.global_peak(), cap);

  Device ref;
  expect_same_selection(streamed,
                        SpmdGridSelector(ref, resident_cfg()).select(d, grid));
}

TEST(StreamedSelector, EnvBudgetEngagesStreaming) {
  const Dataset d = paper_data(4000, 19);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 40);
  Device ref;
  const SelectionResult resident =
      SpmdGridSelector(ref, resident_cfg()).select(d, grid);

  ASSERT_EQ(setenv("KREG_MEMORY_BUDGET", "1MiB", 1), 0);
  EXPECT_EQ(kreg::env_memory_budget(), std::size_t{1} << 20);
  Device dev;
  SpmdSelectorConfig cfg;
  cfg.precision = Precision::kDouble;
  const SelectionResult streamed = SpmdGridSelector(dev, cfg).select(d, grid);
  unsetenv("KREG_MEMORY_BUDGET");

  EXPECT_LE(dev.global_peak(), std::size_t{1} << 20);
  expect_same_selection(streamed, resident);
}

// --- streamed device KDE sweep ---------------------------------------------

TEST(StreamedKde, MatchesResidentBitwiseAcrossKBlocks) {
  const auto xs = kde_sample(230, 21);
  const BandwidthGrid grid(0.05, 1.5, 18);
  const std::size_t k = grid.size();
  Device ref;
  SpmdKdeConfig base;
  base.stream.auto_tune = false;
  const SelectionResult resident = SpmdKdeSelector(ref, base).select(xs, grid);

  for (std::size_t kb : {std::size_t{1}, std::size_t{3}, k - 1, k, k + 7}) {
    Device dev;
    SpmdKdeConfig cfg = base;
    cfg.stream.k_block = kb;
    SCOPED_TRACE("k_block=" + std::to_string(kb));
    expect_same_selection(SpmdKdeSelector(dev, cfg).select(xs, grid),
                          resident);
  }
}

TEST(StreamedKde, UniformKernelMatchesResident) {
  const auto xs = kde_sample(160, 22);
  const BandwidthGrid grid(0.1, 1.0, 12);
  SpmdKdeConfig base;
  base.kernel = KernelType::kUniform;
  base.stream.auto_tune = false;
  Device ref;
  const SelectionResult resident = SpmdKdeSelector(ref, base).select(xs, grid);
  Device dev;
  SpmdKdeConfig cfg = base;
  cfg.stream.k_block = 5;
  expect_same_selection(SpmdKdeSelector(dev, cfg).select(xs, grid), resident);
}

TEST(StreamedKde, AutoStreamsPastTheResidentCliff) {
  const std::size_t cap = 512 * 1024;
  const auto xs = kde_sample(3000, 23);
  const BandwidthGrid grid(0.05, 1.5, 30);
  ASSERT_GT(SpmdKdeSelector::estimated_bytes(3000, 30), cap);
  Device dev(DeviceProperties::tiny(cap));
  const SelectionResult streamed = SpmdKdeSelector(dev).select(xs, grid);
  EXPECT_LE(dev.global_peak(), cap);

  Device ref;
  SpmdKdeConfig base;
  base.stream.auto_tune = false;
  expect_same_selection(streamed, SpmdKdeSelector(ref, base).select(xs, grid));
}

TEST(StreamedKde, NameShowsStreamingKnobs) {
  Device dev;
  SpmdKdeConfig cfg;
  cfg.stream.k_block = 4;
  const std::string name = SpmdKdeSelector(dev, cfg).name();
  EXPECT_NE(name.find("kblock=4"), std::string::npos) << name;
}

// --- multi-device (device × k-block) sharding ------------------------------

TEST(StreamedMultiDevice, MatchesMultiDeviceResidentBitwise) {
  const Dataset d = paper_data(301, 24);  // odd: uneven slices
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 15);
  const std::size_t k = grid.size();
  Device ra;
  Device rb;
  const SelectionResult resident =
      MultiDeviceGridSelector({&ra, &rb}, resident_cfg()).select(d, grid);

  for (std::size_t kb : {std::size_t{1}, std::size_t{7}, k}) {
    Device a;
    Device b;
    SpmdSelectorConfig cfg = resident_cfg();
    cfg.stream.k_block = kb;
    SCOPED_TRACE("k_block=" + std::to_string(kb));
    expect_same_selection(
        MultiDeviceGridSelector({&a, &b}, cfg).select(d, grid), resident);
  }
}

TEST(StreamedMultiDevice, AgreesWithSingleDeviceWindowSweep) {
  const Dataset d = paper_data(240, 25);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 12);
  Device single;
  const SelectionResult one =
      SpmdGridSelector(single, resident_cfg()).select(d, grid);
  Device a;
  Device b;
  Device c;
  SpmdSelectorConfig cfg = resident_cfg();
  cfg.stream.k_block = 5;
  const SelectionResult multi =
      MultiDeviceGridSelector({&a, &b, &c}, cfg).select(d, grid);
  EXPECT_DOUBLE_EQ(multi.bandwidth, one.bandwidth);
  for (std::size_t g = 0; g < grid.size(); ++g) {
    EXPECT_NEAR(multi.scores[g], one.scores[g],
                1e-10 * std::max(1.0, one.scores[g]));
  }
}

TEST(StreamedMultiDevice, HeterogeneousBudgetsStreamPerDevice) {
  // One roomy device and one tiny one: each resolves its own k-block; the
  // combined profile still matches the all-resident reference.
  const Dataset d = paper_data(1200, 26);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 16);
  Device roomy;
  Device tiny(DeviceProperties::tiny(160 * 1024));
  SpmdSelectorConfig cfg;
  cfg.precision = Precision::kDouble;
  const SelectionResult mixed =
      MultiDeviceGridSelector({&roomy, &tiny}, cfg).select(d, grid);
  EXPECT_LE(tiny.global_peak(), 160u * 1024);

  Device ra;
  Device rb;
  expect_same_selection(
      mixed,
      MultiDeviceGridSelector({&ra, &rb}, resident_cfg()).select(d, grid));
}

// --- cache-blocked host kernel ---------------------------------------------

TEST(TiledHostProfile, MatchesWindowProfileAcrossTilings) {
  const Dataset d = paper_data(333, 27);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 21);
  const std::vector<double> reference =
      kreg::window_cv_profile(d, grid.values(), KernelType::kEpanechnikov);

  // Tiles visit observations in ascending order but round their partial
  // sums independently before combining, so agreement is up to summation
  // regrouping — exact only when one tile covers the whole dataset.
  for (const HostTiling tiling :
       {HostTiling{}, HostTiling{7, 3}, HostTiling{1, 1},
        HostTiling{1000, 64}}) {
    const std::vector<double> tiled = kreg::window_cv_profile_tiled(
        d, grid.values(), KernelType::kEpanechnikov, Precision::kDouble,
        tiling);
    ASSERT_EQ(tiled.size(), reference.size());
    for (std::size_t b = 0; b < reference.size(); ++b) {
      if (tiling.n_block >= d.size()) {
        EXPECT_DOUBLE_EQ(tiled[b], reference[b])
            << "n_block=" << tiling.n_block << " b=" << b;
      } else {
        EXPECT_NEAR(tiled[b], reference[b],
                    1e-12 * std::max(1.0, std::abs(reference[b])))
            << "n_block=" << tiling.n_block << " k_block=" << tiling.k_block
            << " b=" << b;
      }
    }
  }
}

TEST(TiledHostProfile, FloatPrecisionMatchesFloatWindowProfile) {
  const Dataset d = paper_data(200, 28);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 9);
  const std::vector<double> reference = kreg::window_cv_profile(
      d, grid.values(), KernelType::kEpanechnikov, Precision::kFloat);
  const std::vector<double> tiled = kreg::window_cv_profile_tiled(
      d, grid.values(), KernelType::kEpanechnikov, Precision::kFloat,
      HostTiling{64, 4});
  for (std::size_t b = 0; b < reference.size(); ++b) {
    EXPECT_NEAR(tiled[b], reference[b],
                1e-12 * std::max(1.0, std::abs(reference[b])))
        << "b=" << b;
  }
}

TEST(TiledHostProfile, OtherSweepableKernelsAgree) {
  const Dataset d = paper_data(150, 29);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 8);
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kTriangular,
        KernelType::kEpanechnikov}) {
    if (!kreg::is_sweepable(kernel)) {
      continue;
    }
    const std::vector<double> reference =
        kreg::window_cv_profile(d, grid.values(), kernel);
    const std::vector<double> tiled = kreg::window_cv_profile_tiled(
        d, grid.values(), kernel, Precision::kDouble, HostTiling{32, 3});
    for (std::size_t b = 0; b < reference.size(); ++b) {
      EXPECT_NEAR(tiled[b], reference[b],
                  1e-12 * std::max(1.0, std::abs(reference[b])))
          << "b=" << b;
    }
  }
}

}  // namespace
