// Tests for 2-D (n-block × k-block) streaming: plan resolution and budget
// parsing, the streamed device regression/KDE window sweeps (bitwise parity
// with the resident paths across both tiling dimensions), halo-slab
// construction, the multi-device (device × n-block × k-block) sharding, the
// cache-blocked host kernel, and the memory-cliff lifts under small budgets.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "core/detail/device_sweep.hpp"
#include "core/grid.hpp"
#include "core/multi_device_selector.hpp"
#include "core/spmd_kde.hpp"
#include "core/spmd_selector.hpp"
#include "core/streaming.hpp"
#include "core/window_sweep.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"
#include "spmd/device.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::HostTiling;
using kreg::KernelType;
using kreg::MultiDeviceGridSelector;
using kreg::Precision;
using kreg::ResidualLayout;
using kreg::SelectionResult;
using kreg::SpmdGridSelector;
using kreg::SpmdKdeConfig;
using kreg::SpmdKdeSelector;
using kreg::SpmdSelectorConfig;
using kreg::StreamingConfig;
using kreg::StreamingPlan;
using kreg::data::Dataset;
using kreg::rng::Stream;
using kreg::spmd::Device;
using kreg::spmd::DeviceProperties;

Dataset paper_data(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  return kreg::data::paper_dgp(n, s);
}

std::vector<double> kde_sample(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = s.uniform() < 0.5 ? s.gaussian(-1.0, 0.4) : s.gaussian(1.0, 0.6);
  }
  return xs;
}

SpmdSelectorConfig resident_cfg(Precision precision = Precision::kDouble) {
  SpmdSelectorConfig cfg;
  cfg.precision = precision;
  cfg.stream.auto_tune = false;  // pin the pre-streaming resident path
  return cfg;
}

void expect_same_selection(const SelectionResult& streamed,
                           const SelectionResult& resident) {
  EXPECT_DOUBLE_EQ(streamed.bandwidth, resident.bandwidth);
  EXPECT_DOUBLE_EQ(streamed.cv_score, resident.cv_score);
  ASSERT_EQ(streamed.scores.size(), resident.scores.size());
  for (std::size_t b = 0; b < resident.scores.size(); ++b) {
    EXPECT_DOUBLE_EQ(streamed.scores[b], resident.scores[b]) << "b=" << b;
  }
}

// --- parse_memory_budget ---------------------------------------------------

TEST(ParseMemoryBudget, AcceptsPlainBytesAndBinarySuffixes) {
  EXPECT_EQ(kreg::parse_memory_budget("4096"), 4096u);
  EXPECT_EQ(kreg::parse_memory_budget("512K"), 512u << 10);
  EXPECT_EQ(kreg::parse_memory_budget("512kb"), 512u << 10);
  EXPECT_EQ(kreg::parse_memory_budget("256KiB"), 256u << 10);
  EXPECT_EQ(kreg::parse_memory_budget("64MB"), 64u << 20);
  EXPECT_EQ(kreg::parse_memory_budget("1MiB"), 1u << 20);
  EXPECT_EQ(kreg::parse_memory_budget("2GiB"), std::size_t{2} << 30);
  EXPECT_EQ(kreg::parse_memory_budget("1gb"), std::size_t{1} << 30);
  EXPECT_EQ(kreg::parse_memory_budget("128b"), 128u);
  EXPECT_EQ(kreg::parse_memory_budget(" 16m "), 16u << 20);
}

TEST(ParseMemoryBudget, RejectsGarbage) {
  EXPECT_THROW(kreg::parse_memory_budget(""), std::invalid_argument);
  EXPECT_THROW(kreg::parse_memory_budget("MB"), std::invalid_argument);
  EXPECT_THROW(kreg::parse_memory_budget("12XB"), std::invalid_argument);
  EXPECT_THROW(kreg::parse_memory_budget("12 34"), std::invalid_argument);
}

TEST(ParseMemoryBudget, EdgeCasesRejectedWithDiagnosableErrors) {
  // Table of inputs that once parsed silently wrong (overflowing the byte
  // counter, or producing a 0 that downstream reads as "no budget").
  struct Case {
    const char* text;
    const char* why;
  };
  const Case rejected[] = {
      {"", "empty input"},
      {"   ", "whitespace only"},
      {"0", "zero bytes means un-setting the knob"},
      {"0MiB", "zero with a suffix"},
      {"00", "zero with leading zeros"},
      {"99999999999999999999999", "digit accumulation overflows size_t"},
      {"18446744073709551615KiB", "suffix multiply overflows size_t"},
      {"17179869184GiB", "suffix multiply overflows size_t"},
  };
  for (const Case& c : rejected) {
    EXPECT_THROW((void)kreg::parse_memory_budget(c.text),
                 std::invalid_argument)
        << "'" << c.text << "' (" << c.why << ")";
  }
  // The largest representable values still parse.
  EXPECT_EQ(kreg::parse_memory_budget("18446744073709551615"),
            std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(kreg::parse_memory_budget("16777215GiB"),
            std::size_t{16777215} << 30);
}

// --- resolve_streaming -----------------------------------------------------

TEST(ResolveStreaming, ExplicitKBlockAlwaysStreams) {
  StreamingConfig cfg;
  cfg.k_block = 3;
  const StreamingPlan plan =
      kreg::resolve_streaming(cfg, 10, 1 << 20, 1 << 10, 1 << 8, 1 << 30);
  EXPECT_TRUE(plan.streamed);
  EXPECT_EQ(plan.k_block, 3u);
  EXPECT_EQ(plan.blocks(10), 4u);

  cfg.k_block = 17;  // clamped to the grid
  const StreamingPlan clamped =
      kreg::resolve_streaming(cfg, 10, 1 << 20, 1 << 10, 1 << 8, 1 << 30);
  EXPECT_TRUE(clamped.streamed);
  EXPECT_EQ(clamped.k_block, 10u);
  EXPECT_EQ(clamped.blocks(10), 1u);
}

TEST(ResolveStreaming, AutoTuneOffStaysResidentWithoutBudget) {
  StreamingConfig cfg;
  cfg.auto_tune = false;
  const StreamingPlan plan = kreg::resolve_streaming(
      cfg, 8, /*resident=*/1 << 30, /*base=*/1 << 10, 1 << 8, /*cap=*/1 << 20);
  EXPECT_FALSE(plan.streamed);
  EXPECT_EQ(plan.k_block, 8u);
}

TEST(ResolveStreaming, EnvBudgetIgnoredWhenAutoTuneOff) {
  ASSERT_EQ(setenv("KREG_MEMORY_BUDGET", "2KiB", 1), 0);
  StreamingConfig cfg;
  cfg.auto_tune = false;
  const StreamingPlan plan = kreg::resolve_streaming(
      cfg, 8, /*resident=*/1 << 30, /*base=*/1 << 10, 1 << 8, /*cap=*/1 << 20);
  unsetenv("KREG_MEMORY_BUDGET");
  EXPECT_FALSE(plan.streamed);
  EXPECT_EQ(plan.k_block, 8u);
}

TEST(ResolveStreaming, BudgetAboveDeviceCapacityIsClamped) {
  StreamingConfig cfg;
  cfg.memory_budget_bytes = std::size_t{1} << 30;  // far beyond the ledger
  const StreamingPlan plan = kreg::resolve_streaming(
      cfg, 100, /*resident=*/1 << 20, /*base=*/4'000, /*per_k=*/500,
      /*cap=*/10'000);
  EXPECT_TRUE(plan.streamed);
  EXPECT_EQ(plan.budget_bytes, 10'000u);
  EXPECT_EQ(plan.k_block, 12u);  // sized against the clamped ledger
}

TEST(ResolveStreaming, ResidentWhenItFitsTheBudget) {
  const StreamingPlan plan = kreg::resolve_streaming(
      StreamingConfig{}, 8, /*resident=*/1 << 16, 1 << 10, 1 << 8,
      /*cap=*/1 << 20);
  EXPECT_FALSE(plan.streamed);
  EXPECT_EQ(plan.k_block, 8u);
}

TEST(ResolveStreaming, SizesBlockFromBudgetWhenResidentOverflows) {
  StreamingConfig cfg;
  cfg.memory_budget_bytes = 10'000;
  const StreamingPlan plan = kreg::resolve_streaming(
      cfg, 100, /*resident=*/1 << 20, /*base=*/4'000, /*per_k=*/500, 1 << 30);
  EXPECT_TRUE(plan.streamed);
  EXPECT_EQ(plan.k_block, 12u);  // (10000 - 4000) / 500
}

TEST(ResolveStreaming, BudgetBelowBaseDegradesToSingleBandwidth) {
  StreamingConfig cfg;
  cfg.memory_budget_bytes = 1'000;
  const StreamingPlan plan = kreg::resolve_streaming(
      cfg, 100, 1 << 20, /*base=*/4'000, /*per_k=*/500, 1 << 30);
  EXPECT_TRUE(plan.streamed);
  EXPECT_EQ(plan.k_block, 1u);
}

TEST(ResolveStreaming, EmptyGridThrows) {
  EXPECT_THROW(
      kreg::resolve_streaming(StreamingConfig{}, 0, 1, 1, 1, 1 << 20),
      std::invalid_argument);
}

// --- resolve_streaming_2d --------------------------------------------------

// A synthetic but monotone byte model: slab overhead decays as blocks
// shrink, the residual tile grows in both dimensions.
std::size_t fake_tile_bytes(std::size_t nb, std::size_t kb) {
  return 1'000 + nb * 80 + nb * kb * 8;
}

TEST(ResolveStreaming2d, ResidentWhenItFits) {
  const StreamingPlan plan = kreg::resolve_streaming_2d(
      StreamingConfig{}, 100, 10, /*resident=*/50'000, fake_tile_bytes,
      /*cap=*/1 << 20);
  EXPECT_FALSE(plan.streamed);
  EXPECT_FALSE(plan.n_streamed);
  EXPECT_EQ(plan.n_block, 100u);
  EXPECT_EQ(plan.k_block, 10u);
}

TEST(ResolveStreaming2d, KBlocksFirstWhenCarryFits) {
  // Resident over budget but tile_bytes(n, 1) under it: n stays resident.
  StreamingConfig cfg;
  cfg.memory_budget_bytes = 10'000;
  const StreamingPlan plan = kreg::resolve_streaming_2d(
      cfg, 100, 10, /*resident=*/1 << 20, fake_tile_bytes, 1 << 30);
  EXPECT_TRUE(plan.streamed);
  EXPECT_FALSE(plan.n_streamed);
  EXPECT_EQ(plan.n_block, 100u);
  EXPECT_LE(fake_tile_bytes(plan.n_block, plan.k_block), 10'000u);
  // Largest fitting block: one more bandwidth would overflow.
  EXPECT_TRUE(plan.k_block == 10 ||
              fake_tile_bytes(plan.n_block, plan.k_block + 1) > 10'000u);
}

TEST(ResolveStreaming2d, NBlocksWhenCarryOverflows) {
  StreamingConfig cfg;
  cfg.memory_budget_bytes = 3'000;  // tile(100, 1) = 1000+8000+800 > 3000
  const StreamingPlan plan = kreg::resolve_streaming_2d(
      cfg, 100, 10, /*resident=*/1 << 20, fake_tile_bytes, 1 << 30);
  EXPECT_TRUE(plan.streamed);
  EXPECT_TRUE(plan.n_streamed);
  EXPECT_LT(plan.n_block, 100u);
  EXPECT_GE(plan.n_block, 1u);
  // The plan's modeled bytes never exceed the budget.
  EXPECT_LE(fake_tile_bytes(plan.n_block, plan.k_block), 3'000u);
}

TEST(ResolveStreaming2d, PlanTilesCoverExactlyOnce) {
  StreamingConfig cfg;
  cfg.memory_budget_bytes = 3'000;
  const std::size_t n = 100;
  const std::size_t k = 10;
  const StreamingPlan plan = kreg::resolve_streaming_2d(
      cfg, n, k, 1 << 20, fake_tile_bytes, 1 << 30);
  // Walk the 2-D tiling the backends execute and count coverage.
  std::vector<int> n_cover(n, 0);
  std::vector<int> k_cover(k, 0);
  for (std::size_t n0 = 0; n0 < n; n0 += plan.n_block) {
    const std::size_t nb = std::min(plan.n_block, n - n0);
    for (std::size_t i = n0; i < n0 + nb; ++i) {
      ++n_cover[i];
    }
  }
  for (std::size_t b0 = 0; b0 < k; b0 += plan.k_block) {
    const std::size_t kb = std::min(plan.k_block, k - b0);
    for (std::size_t b = b0; b < b0 + kb; ++b) {
      ++k_cover[b];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(n_cover[i], 1) << "observation " << i;
  }
  for (std::size_t b = 0; b < k; ++b) {
    EXPECT_EQ(k_cover[b], 1) << "bandwidth " << b;
  }
  EXPECT_EQ(plan.n_blocks(n), (n + plan.n_block - 1) / plan.n_block);
  EXPECT_EQ(plan.blocks(k), (k + plan.k_block - 1) / plan.k_block);
}

TEST(ResolveStreaming2d, DegenerateBudgetThrowsDiagnosableError) {
  StreamingConfig cfg;
  cfg.memory_budget_bytes = 500;  // below fake_tile_bytes(1, 1) = 1088
  try {
    (void)kreg::resolve_streaming_2d(cfg, 100, 10, 1 << 20, fake_tile_bytes,
                                     1 << 30);
    FAIL() << "expected StreamingBudgetError";
  } catch (const kreg::StreamingBudgetError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("500"), std::string::npos) << what;   // the budget
    EXPECT_NE(what.find("1088"), std::string::npos) << what;  // minimal tile
  }
}

TEST(ResolveStreaming2d, ExplicitNBlockForcesNStreamedPath) {
  // Even when one block covers everything — that is how tests pin the
  // n_block ∈ {n, n+13} degenerates to the same code as n_block = 1.
  StreamingConfig cfg;
  cfg.n_block = 150;  // > n: clamped but still n-streamed
  const StreamingPlan plan = kreg::resolve_streaming_2d(
      cfg, 100, 10, /*resident=*/1'000, fake_tile_bytes, 1 << 30);
  EXPECT_TRUE(plan.n_streamed);
  EXPECT_EQ(plan.n_block, 100u);
}

TEST(ResolveStreaming2d, ExplicitKBlockAloneKeepsNResident) {
  StreamingConfig cfg;
  cfg.k_block = 3;
  const StreamingPlan plan = kreg::resolve_streaming_2d(
      cfg, 100, 10, /*resident=*/1'000, fake_tile_bytes, 1 << 30);
  EXPECT_TRUE(plan.streamed);
  EXPECT_FALSE(plan.n_streamed);
  EXPECT_EQ(plan.n_block, 100u);
  EXPECT_EQ(plan.k_block, 3u);
}

TEST(ResolveStreaming2d, EmptyInputsThrow) {
  EXPECT_THROW(kreg::resolve_streaming_2d(StreamingConfig{}, 0, 10, 1,
                                          fake_tile_bytes, 1 << 20),
               std::invalid_argument);
  EXPECT_THROW(kreg::resolve_streaming_2d(StreamingConfig{}, 10, 0, 1,
                                          fake_tile_bytes, 1 << 20),
               std::invalid_argument);
}

// --- halo-slab construction ------------------------------------------------

TEST(HaloSlab, SlabContainsEveryAdmissibleIndex) {
  // Property: for every pos in the block and every l the device's admission
  // predicate (|xs[l] − xs[pos]| <= reach, evaluated as the sweep's own
  // subtractions) accepts, l lies inside [halo_begin, halo_end).
  Stream s(404);
  std::vector<double> xs(257);
  for (auto& x : xs) {
    x = s.uniform();
  }
  std::sort(xs.begin(), xs.end());
  const std::span<const double> span(xs);
  for (const double reach : {0.0, 0.01, 0.1, 0.5, 2.0}) {
    for (const std::size_t n0 : {std::size_t{0}, std::size_t{100},
                                 std::size_t{250}}) {
      const std::size_t nb = std::min<std::size_t>(32, xs.size() - n0);
      const std::size_t begin = kreg::detail::halo_begin(span, n0, reach);
      const std::size_t end =
          kreg::detail::halo_end(span, n0 + nb - 1, reach);
      ASSERT_LE(begin, n0);
      ASSERT_GE(end, n0 + nb);
      for (std::size_t pos = n0; pos < n0 + nb; ++pos) {
        for (std::size_t l = 0; l < xs.size(); ++l) {
          const bool admitted = l < pos ? xs[pos] - xs[l] <= reach
                                        : xs[l] - xs[pos] <= reach;
          if (admitted) {
            EXPECT_GE(l, begin) << "pos=" << pos << " reach=" << reach;
            EXPECT_LT(l, end) << "pos=" << pos << " reach=" << reach;
          }
        }
      }
      // Tightness: the slab's first excluded neighbours really are
      // inadmissible from the block's edges.
      if (begin > 0) {
        EXPECT_GT(xs[n0] - xs[begin - 1], reach);
      }
      if (end < xs.size()) {
        EXPECT_GT(xs[end] - xs[n0 + nb - 1], reach);
      }
    }
  }
}

TEST(HaloSlab, TiedAbscissaeStayInOneSlab) {
  // All-equal X: every index is admissible at any reach, so the slab must
  // be the whole array no matter the block.
  const std::vector<double> xs(16, 0.25);
  const std::span<const double> span(xs);
  EXPECT_EQ(kreg::detail::halo_begin(span, std::size_t{10}, 0.0),
            std::size_t{0});
  EXPECT_EQ(kreg::detail::halo_end(span, std::size_t{3}, 0.0), xs.size());
}

TEST(HaloSlab, MaxHaloSpanBoundsEveryBlock) {
  Stream s(405);
  std::vector<double> xs(200);
  for (auto& x : xs) {
    x = s.gaussian();
  }
  std::sort(xs.begin(), xs.end());
  const std::span<const double> span(xs);
  const double reach = 0.3;
  for (const std::size_t nb : {std::size_t{1}, std::size_t{7},
                               std::size_t{64}, std::size_t{200}}) {
    const std::size_t widest =
        kreg::detail::max_halo_span(span, 0, xs.size(), nb, reach);
    for (std::size_t n0 = 0; n0 < xs.size(); n0 += nb) {
      const std::size_t last = std::min(n0 + nb, xs.size()) - 1;
      const std::size_t slab = kreg::detail::halo_end(span, last, reach) -
                               kreg::detail::halo_begin(span, n0, reach);
      EXPECT_LE(slab, widest) << "n0=" << n0 << " nb=" << nb;
    }
  }
}

// --- streamed device regression sweep --------------------------------------

TEST(StreamedSelector, MatchesResidentBitwiseAcrossKBlocks) {
  const Dataset d = paper_data(257, 11);  // odd n: uneven last thread block
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 23);
  const std::size_t k = grid.size();

  Device ref;
  const SelectionResult resident =
      SpmdGridSelector(ref, resident_cfg()).select(d, grid);

  for (std::size_t kb : {std::size_t{1}, std::size_t{3}, k - 1, k, k + 7}) {
    Device dev;
    SpmdSelectorConfig cfg = resident_cfg();
    cfg.stream.k_block = kb;
    const SelectionResult streamed = SpmdGridSelector(dev, cfg).select(d, grid);
    SCOPED_TRACE("k_block=" + std::to_string(kb));
    expect_same_selection(streamed, resident);
  }
}

TEST(StreamedSelector, FloatPathMatchesResidentBitwise) {
  const Dataset d = paper_data(180, 12);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 14);
  Device ref;
  const SelectionResult resident =
      SpmdGridSelector(ref, resident_cfg(Precision::kFloat)).select(d, grid);
  Device dev;
  SpmdSelectorConfig cfg = resident_cfg(Precision::kFloat);
  cfg.stream.k_block = 5;
  expect_same_selection(SpmdGridSelector(dev, cfg).select(d, grid), resident);
}

TEST(StreamedSelector, ObservationMajorLayoutMatchesResident) {
  const Dataset d = paper_data(150, 13);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 11);
  SpmdSelectorConfig base = resident_cfg();
  base.layout = ResidualLayout::kObservationMajor;
  Device ref;
  const SelectionResult resident =
      SpmdGridSelector(ref, base).select(d, grid);
  Device dev;
  SpmdSelectorConfig cfg = base;
  cfg.stream.k_block = 4;
  expect_same_selection(SpmdGridSelector(dev, cfg).select(d, grid), resident);
}

TEST(StreamedSelector, MatchesHostWindowProfile) {
  const Dataset d = paper_data(220, 14);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 17);
  const std::vector<double> host =
      kreg::window_cv_profile(d, grid.values(), KernelType::kEpanechnikov);
  Device dev;
  SpmdSelectorConfig cfg = resident_cfg();
  cfg.stream.k_block = 6;
  const SelectionResult streamed = SpmdGridSelector(dev, cfg).select(d, grid);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(streamed.scores[b], host[b],
                1e-9 * std::max(1.0, host[b]));
  }
}

TEST(StreamedSelector, LaunchesOneKernelPerBlockAndNoDeviceArgmin) {
  const Dataset d = paper_data(90, 15);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 10);
  Device dev;
  SpmdSelectorConfig cfg = resident_cfg();
  cfg.stream.k_block = 3;
  (void)SpmdGridSelector(dev, cfg).select(d, grid);
  EXPECT_EQ(dev.stats().kernel_launches, 4u);       // ceil(10 / 3) blocks
  EXPECT_EQ(dev.stats().cooperative_launches, 10u);  // k reductions, argmin
                                                     // runs on the host
}

TEST(StreamedSelector, TiedXAndTinyDatasetsWithKBlockOne) {
  Device dev;
  SpmdSelectorConfig cfg = resident_cfg();
  cfg.stream.k_block = 1;
  const Dataset ties{{0.5, 0.5, 0.5, 0.9}, {1.0, 2.0, 3.0, 4.0}};
  const BandwidthGrid grid(0.1, 1.0, 4);
  Device ref;
  expect_same_selection(SpmdGridSelector(dev, cfg).select(ties, grid),
                        SpmdGridSelector(ref, resident_cfg()).select(ties, grid));

  Device dev2;
  const Dataset two{{0.1, 0.9}, {1.0, 2.0}};
  EXPECT_NO_THROW(SpmdGridSelector(dev2, cfg).select(two, grid));
}

TEST(StreamedSelector, PerRowAlgorithmIgnoresStreamConfig) {
  const Dataset d = paper_data(80, 16);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 6);
  SpmdSelectorConfig cfg = resident_cfg();
  cfg.algorithm = kreg::SweepAlgorithm::kPerRowSort;
  cfg.stream.k_block = 2;
  Device dev;
  Device ref;
  SpmdSelectorConfig plain = resident_cfg();
  plain.algorithm = kreg::SweepAlgorithm::kPerRowSort;
  expect_same_selection(SpmdGridSelector(dev, cfg).select(d, grid),
                        SpmdGridSelector(ref, plain).select(d, grid));
}

TEST(StreamedSelector, NameShowsStreamingKnobs) {
  Device dev;
  SpmdSelectorConfig cfg;
  cfg.stream.k_block = 8;
  cfg.stream.memory_budget_bytes = 1 << 20;
  const std::string name = SpmdGridSelector(dev, cfg).name();
  EXPECT_NE(name.find("kblock=8"), std::string::npos) << name;
  EXPECT_NE(name.find("budget=1048576"), std::string::npos) << name;
}

// --- budget-driven engagement ----------------------------------------------

TEST(StreamedSelector, ExplicitBudgetKeepsLedgerPeakUnderBudget) {
  const Dataset d = paper_data(1000, 17);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 30);
  const std::size_t budget = 200'000;
  ASSERT_GT(SpmdGridSelector::estimated_bytes(1000, 30, Precision::kDouble,
                                              false,
                                              kreg::SweepAlgorithm::kWindow),
            budget);
  Device dev;
  SpmdSelectorConfig cfg;
  cfg.precision = Precision::kDouble;
  cfg.stream.memory_budget_bytes = budget;
  const SelectionResult streamed = SpmdGridSelector(dev, cfg).select(d, grid);
  EXPECT_LE(dev.global_peak(), budget);

  Device ref;
  expect_same_selection(streamed,
                        SpmdGridSelector(ref, resident_cfg()).select(d, grid));
}

TEST(StreamedSelector, AutoStreamsPastTheResidentCliff) {
  // A device whose global memory cannot hold the resident n×k plan: the
  // default config streams automatically instead of throwing.
  const std::size_t cap = 256 * 1024;
  const Dataset d = paper_data(1500, 18);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 20);
  ASSERT_GT(SpmdGridSelector::estimated_bytes(1500, 20, Precision::kDouble,
                                              false,
                                              kreg::SweepAlgorithm::kWindow),
            cap);
  Device dev(DeviceProperties::tiny(cap));
  SpmdSelectorConfig cfg;
  cfg.precision = Precision::kDouble;
  const SelectionResult streamed = SpmdGridSelector(dev, cfg).select(d, grid);
  EXPECT_LE(dev.global_peak(), cap);

  Device ref;
  expect_same_selection(streamed,
                        SpmdGridSelector(ref, resident_cfg()).select(d, grid));
}

TEST(StreamedSelector, EnvBudgetEngagesStreaming) {
  const Dataset d = paper_data(4000, 19);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 40);
  Device ref;
  const SelectionResult resident =
      SpmdGridSelector(ref, resident_cfg()).select(d, grid);

  ASSERT_EQ(setenv("KREG_MEMORY_BUDGET", "1MiB", 1), 0);
  EXPECT_EQ(kreg::env_memory_budget(), std::size_t{1} << 20);
  Device dev;
  SpmdSelectorConfig cfg;
  cfg.precision = Precision::kDouble;
  const SelectionResult streamed = SpmdGridSelector(dev, cfg).select(d, grid);
  unsetenv("KREG_MEMORY_BUDGET");

  EXPECT_LE(dev.global_peak(), std::size_t{1} << 20);
  expect_same_selection(streamed, resident);
}

// --- n-streamed (2-D) device regression sweep --------------------------------

TEST(NStreamedSelector, MatchesResidentBitwiseAcrossNByKBlocks) {
  const std::size_t n = 237;  // odd: uneven lane distribution and last block
  const Dataset d = paper_data(n, 31);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 17);
  const std::size_t k = grid.size();
  Device ref;
  const SelectionResult resident =
      SpmdGridSelector(ref, resident_cfg()).select(d, grid);

  for (std::size_t nb : {std::size_t{1}, std::size_t{7}, n - 1, n, n + 13}) {
    for (std::size_t kb : {std::size_t{1}, k}) {
      Device dev;
      SpmdSelectorConfig cfg = resident_cfg();
      cfg.stream.n_block = nb;
      cfg.stream.k_block = kb;
      SCOPED_TRACE("n_block=" + std::to_string(nb) +
                   " k_block=" + std::to_string(kb));
      expect_same_selection(SpmdGridSelector(dev, cfg).select(d, grid),
                            resident);
    }
  }
}

TEST(NStreamedSelector, FloatPathMatchesResidentBitwise) {
  const Dataset d = paper_data(190, 32);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 13);
  Device ref;
  const SelectionResult resident =
      SpmdGridSelector(ref, resident_cfg(Precision::kFloat)).select(d, grid);
  Device dev;
  SpmdSelectorConfig cfg = resident_cfg(Precision::kFloat);
  cfg.stream.n_block = 23;
  cfg.stream.k_block = 5;
  expect_same_selection(SpmdGridSelector(dev, cfg).select(d, grid), resident);
}

TEST(NStreamedSelector, ObservationMajorLayoutMatchesResident) {
  const Dataset d = paper_data(151, 33);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 11);
  SpmdSelectorConfig base = resident_cfg();
  base.layout = ResidualLayout::kObservationMajor;
  Device ref;
  const SelectionResult resident = SpmdGridSelector(ref, base).select(d, grid);
  Device dev;
  SpmdSelectorConfig cfg = base;
  cfg.stream.n_block = 17;
  cfg.stream.k_block = 4;
  expect_same_selection(SpmdGridSelector(dev, cfg).select(d, grid), resident);
}

TEST(NStreamedSelector, WindowsStraddlingEveryBlockBoundary) {
  // hmax spans the whole X domain, so at the top of the grid every
  // observation's admission window covers all n observations — each window
  // straddles one, several, and finally all n-blocks as h ascends. With
  // n_block = 1 every slab is a pure halo.
  const Dataset d = paper_data(120, 34);
  const double domain = d.x_domain();
  const BandwidthGrid grid(domain / 40.0, domain, 12);
  Device ref;
  const SelectionResult resident =
      SpmdGridSelector(ref, resident_cfg()).select(d, grid);
  for (std::size_t nb : {std::size_t{1}, std::size_t{11}, std::size_t{40}}) {
    Device dev;
    SpmdSelectorConfig cfg = resident_cfg();
    cfg.stream.n_block = nb;
    cfg.stream.k_block = 3;
    SCOPED_TRACE("n_block=" + std::to_string(nb));
    expect_same_selection(SpmdGridSelector(dev, cfg).select(d, grid),
                          resident);
  }
}

TEST(NStreamedSelector, TiedXEveryObservationInEveryHalo) {
  // All-tied X: each single-observation block's halo is the entire dataset.
  Device dev;
  SpmdSelectorConfig cfg = resident_cfg();
  cfg.stream.n_block = 1;
  cfg.stream.k_block = 2;
  const Dataset ties{{0.5, 0.5, 0.5, 0.5, 0.9}, {1.0, 2.0, 3.0, 4.0, 5.0}};
  const BandwidthGrid grid(0.1, 1.0, 5);
  Device ref;
  expect_same_selection(
      SpmdGridSelector(dev, cfg).select(ties, grid),
      SpmdGridSelector(ref, resident_cfg()).select(ties, grid));
}

TEST(NStreamedSelector, StreamsWhereTheResidentCarryAllocFails) {
  // Size the device so even the 1-D streamed plan's O(n) carry state cannot
  // fit: only the 2-D plan survives, and the ledger proves it stayed under.
  const std::size_t n = 4000;
  const Dataset d = paper_data(n, 35);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 24);
  const std::size_t cap = 96 * 1024;
  ASSERT_GT(SpmdGridSelector::estimated_streamed_bytes(n, 1,
                                                       Precision::kDouble),
            cap);
  Device dev(DeviceProperties::tiny(cap));
  SpmdSelectorConfig cfg;
  cfg.precision = Precision::kDouble;
  const SelectionResult streamed = SpmdGridSelector(dev, cfg).select(d, grid);
  EXPECT_LE(dev.global_peak(), cap);

  Device ref;
  expect_same_selection(streamed,
                        SpmdGridSelector(ref, resident_cfg()).select(d, grid));
}

TEST(NStreamedSelector, NameShowsNBlock) {
  Device dev;
  SpmdSelectorConfig cfg;
  cfg.stream.n_block = 37;
  cfg.stream.k_block = 8;
  const std::string name = SpmdGridSelector(dev, cfg).name();
  EXPECT_NE(name.find("nblock=37"), std::string::npos) << name;
  EXPECT_NE(name.find("kblock=8"), std::string::npos) << name;
}

// --- streamed device KDE sweep ---------------------------------------------

TEST(StreamedKde, MatchesResidentBitwiseAcrossKBlocks) {
  const auto xs = kde_sample(230, 21);
  const BandwidthGrid grid(0.05, 1.5, 18);
  const std::size_t k = grid.size();
  Device ref;
  SpmdKdeConfig base;
  base.stream.auto_tune = false;
  const SelectionResult resident = SpmdKdeSelector(ref, base).select(xs, grid);

  for (std::size_t kb : {std::size_t{1}, std::size_t{3}, k - 1, k, k + 7}) {
    Device dev;
    SpmdKdeConfig cfg = base;
    cfg.stream.k_block = kb;
    SCOPED_TRACE("k_block=" + std::to_string(kb));
    expect_same_selection(SpmdKdeSelector(dev, cfg).select(xs, grid),
                          resident);
  }
}

TEST(StreamedKde, UniformKernelMatchesResident) {
  const auto xs = kde_sample(160, 22);
  const BandwidthGrid grid(0.1, 1.0, 12);
  SpmdKdeConfig base;
  base.kernel = KernelType::kUniform;
  base.stream.auto_tune = false;
  Device ref;
  const SelectionResult resident = SpmdKdeSelector(ref, base).select(xs, grid);
  Device dev;
  SpmdKdeConfig cfg = base;
  cfg.stream.k_block = 5;
  expect_same_selection(SpmdKdeSelector(dev, cfg).select(xs, grid), resident);
}

TEST(StreamedKde, AutoStreamsPastTheResidentCliff) {
  const std::size_t cap = 512 * 1024;
  const auto xs = kde_sample(3000, 23);
  const BandwidthGrid grid(0.05, 1.5, 30);
  ASSERT_GT(SpmdKdeSelector::estimated_bytes(3000, 30), cap);
  Device dev(DeviceProperties::tiny(cap));
  const SelectionResult streamed = SpmdKdeSelector(dev).select(xs, grid);
  EXPECT_LE(dev.global_peak(), cap);

  Device ref;
  SpmdKdeConfig base;
  base.stream.auto_tune = false;
  expect_same_selection(streamed, SpmdKdeSelector(ref, base).select(xs, grid));
}

TEST(StreamedKde, NameShowsStreamingKnobs) {
  Device dev;
  SpmdKdeConfig cfg;
  cfg.stream.k_block = 4;
  const std::string name = SpmdKdeSelector(dev, cfg).name();
  EXPECT_NE(name.find("kblock=4"), std::string::npos) << name;
}

// --- n-streamed (2-D) device KDE sweep --------------------------------------

TEST(NStreamedKde, MatchesResidentBitwiseAcrossNByKBlocks) {
  const std::size_t n = 206;
  const auto xs = kde_sample(n, 41);
  const BandwidthGrid grid(0.05, 1.5, 14);
  const std::size_t k = grid.size();
  Device ref;
  SpmdKdeConfig base;
  base.stream.auto_tune = false;
  const SelectionResult resident = SpmdKdeSelector(ref, base).select(xs, grid);

  for (std::size_t nb : {std::size_t{1}, std::size_t{7}, n - 1, n, n + 13}) {
    for (std::size_t kb : {std::size_t{1}, k}) {
      Device dev;
      SpmdKdeConfig cfg = base;
      cfg.stream.n_block = nb;
      cfg.stream.k_block = kb;
      SCOPED_TRACE("n_block=" + std::to_string(nb) +
                   " k_block=" + std::to_string(kb));
      expect_same_selection(SpmdKdeSelector(dev, cfg).select(xs, grid),
                            resident);
    }
  }
}

TEST(NStreamedKde, ConvolutionReachIsWiderThanTheKernels) {
  // A kernel pair's convolution support (2h for compact kernels) is wider
  // than the kernel's own: the halo must be sized by the larger of the two
  // supports or far-pair convolution terms go missing.
  const auto xs = kde_sample(140, 42);
  const BandwidthGrid grid(0.1, 1.2, 10);
  SpmdKdeConfig base;
  base.kernel = KernelType::kUniform;
  base.stream.auto_tune = false;
  Device ref;
  const SelectionResult resident = SpmdKdeSelector(ref, base).select(xs, grid);
  Device dev;
  SpmdKdeConfig cfg = base;
  cfg.stream.n_block = 9;
  cfg.stream.k_block = 3;
  expect_same_selection(SpmdKdeSelector(dev, cfg).select(xs, grid), resident);
}

TEST(NStreamedKde, StreamsWhereTheResidentCarryAllocFails) {
  const std::size_t n = 4000;
  const auto xs = kde_sample(n, 43);
  const BandwidthGrid grid(0.05, 1.5, 20);
  const std::size_t cap = 128 * 1024;
  ASSERT_GT(SpmdKdeSelector::estimated_streamed_bytes(n, 1), cap);
  Device dev(DeviceProperties::tiny(cap));
  const SelectionResult streamed = SpmdKdeSelector(dev).select(xs, grid);
  EXPECT_LE(dev.global_peak(), cap);

  Device ref;
  SpmdKdeConfig base;
  base.stream.auto_tune = false;
  expect_same_selection(streamed, SpmdKdeSelector(ref, base).select(xs, grid));
}

TEST(NStreamedKde, NameShowsNBlock) {
  Device dev;
  SpmdKdeConfig cfg;
  cfg.stream.n_block = 19;
  const std::string name = SpmdKdeSelector(dev, cfg).name();
  EXPECT_NE(name.find("nblock=19"), std::string::npos) << name;
}

// --- multi-device (device × k-block) sharding ------------------------------

TEST(StreamedMultiDevice, MatchesMultiDeviceResidentBitwise) {
  const Dataset d = paper_data(301, 24);  // odd: uneven slices
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 15);
  const std::size_t k = grid.size();
  Device ra;
  Device rb;
  const SelectionResult resident =
      MultiDeviceGridSelector({&ra, &rb}, resident_cfg()).select(d, grid);

  for (std::size_t kb : {std::size_t{1}, std::size_t{7}, k}) {
    Device a;
    Device b;
    SpmdSelectorConfig cfg = resident_cfg();
    cfg.stream.k_block = kb;
    SCOPED_TRACE("k_block=" + std::to_string(kb));
    expect_same_selection(
        MultiDeviceGridSelector({&a, &b}, cfg).select(d, grid), resident);
  }
}

TEST(StreamedMultiDevice, AgreesWithSingleDeviceWindowSweep) {
  const Dataset d = paper_data(240, 25);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 12);
  Device single;
  const SelectionResult one =
      SpmdGridSelector(single, resident_cfg()).select(d, grid);
  Device a;
  Device b;
  Device c;
  SpmdSelectorConfig cfg = resident_cfg();
  cfg.stream.k_block = 5;
  const SelectionResult multi =
      MultiDeviceGridSelector({&a, &b, &c}, cfg).select(d, grid);
  EXPECT_DOUBLE_EQ(multi.bandwidth, one.bandwidth);
  for (std::size_t g = 0; g < grid.size(); ++g) {
    EXPECT_NEAR(multi.scores[g], one.scores[g],
                1e-10 * std::max(1.0, one.scores[g]));
  }
}

TEST(StreamedMultiDevice, HeterogeneousBudgetsStreamPerDevice) {
  // One roomy device and one tiny one: each resolves its own k-block; the
  // combined profile still matches the all-resident reference.
  const Dataset d = paper_data(1200, 26);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 16);
  Device roomy;
  Device tiny(DeviceProperties::tiny(160 * 1024));
  SpmdSelectorConfig cfg;
  cfg.precision = Precision::kDouble;
  const SelectionResult mixed =
      MultiDeviceGridSelector({&roomy, &tiny}, cfg).select(d, grid);
  EXPECT_LE(tiny.global_peak(), 160u * 1024);

  Device ra;
  Device rb;
  expect_same_selection(
      mixed,
      MultiDeviceGridSelector({&ra, &rb}, resident_cfg()).select(d, grid));
}

// --- multi-device (device × n-block × k-block) sharding ----------------------

TEST(NStreamedMultiDevice, MatchesMultiDeviceResidentBitwise) {
  const std::size_t n = 301;  // 3 uneven slices of ~100
  const Dataset d = paper_data(n, 51);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 13);
  Device ra;
  Device rb;
  Device rc;
  const SelectionResult resident =
      MultiDeviceGridSelector({&ra, &rb, &rc}, resident_cfg()).select(d, grid);

  for (std::size_t nb : {std::size_t{1}, std::size_t{7}, n, n + 13}) {
    for (std::size_t kb : {std::size_t{1}, std::size_t{13}}) {
      Device a;
      Device b;
      Device c;
      SpmdSelectorConfig cfg = resident_cfg();
      cfg.stream.n_block = nb;
      cfg.stream.k_block = kb;
      SCOPED_TRACE("n_block=" + std::to_string(nb) +
                   " k_block=" + std::to_string(kb));
      expect_same_selection(
          MultiDeviceGridSelector({&a, &b, &c}, cfg).select(d, grid),
          resident);
    }
  }
}

TEST(NStreamedMultiDevice, FloatShardsMatchResidentBitwise) {
  const Dataset d = paper_data(250, 52);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 10);
  Device ra;
  Device rb;
  const SelectionResult resident =
      MultiDeviceGridSelector({&ra, &rb}, resident_cfg(Precision::kFloat))
          .select(d, grid);
  Device a;
  Device b;
  SpmdSelectorConfig cfg = resident_cfg(Precision::kFloat);
  cfg.stream.n_block = 29;
  cfg.stream.k_block = 4;
  expect_same_selection(
      MultiDeviceGridSelector({&a, &b}, cfg).select(d, grid), resident);
}

TEST(NStreamedMultiDevice, TinyDevicesNStreamUnderTheirCaps) {
  // Both devices too small for even the 1-D carry: the per-device 2-D plans
  // engage, peaks stay under the caps, and the profile is unchanged.
  const std::size_t n = 6000;
  const Dataset d = paper_data(n, 53);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 18);
  // Big enough for the minimal tile (h_max spans the domain, so even a
  // one-observation block's halo slab is the whole slice), too small for
  // the 1-D plan's O(rows) carry state.
  const std::size_t cap = 128 * 1024;
  ASSERT_GT(SpmdGridSelector::estimated_streamed_bytes(n / 2, 1,
                                                       Precision::kDouble),
            cap);
  Device a(DeviceProperties::tiny(cap));
  Device b(DeviceProperties::tiny(cap));
  SpmdSelectorConfig cfg;
  cfg.precision = Precision::kDouble;
  const SelectionResult streamed =
      MultiDeviceGridSelector({&a, &b}, cfg).select(d, grid);
  EXPECT_LE(a.global_peak(), cap);
  EXPECT_LE(b.global_peak(), cap);

  Device ra;
  Device rb;
  expect_same_selection(
      streamed,
      MultiDeviceGridSelector({&ra, &rb}, resident_cfg()).select(d, grid));
}

TEST(NStreamedMultiDevice, NameShowsNBlock) {
  Device a;
  Device b;
  SpmdSelectorConfig cfg;
  cfg.stream.n_block = 21;
  const std::string name = MultiDeviceGridSelector({&a, &b}, cfg).name();
  EXPECT_NE(name.find("nblock=21"), std::string::npos) << name;
}

// --- cache-blocked host kernel ---------------------------------------------

TEST(TiledHostProfile, MatchesWindowProfileAcrossTilings) {
  const Dataset d = paper_data(333, 27);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 21);
  const std::vector<double> reference =
      kreg::window_cv_profile(d, grid.values(), KernelType::kEpanechnikov);

  // Tiles visit observations in ascending order but round their partial
  // sums independently before combining, so agreement is up to summation
  // regrouping — exact only when one tile covers the whole dataset.
  for (const HostTiling tiling :
       {HostTiling{}, HostTiling{7, 3}, HostTiling{1, 1},
        HostTiling{1000, 64}}) {
    const std::vector<double> tiled = kreg::window_cv_profile_tiled(
        d, grid.values(), KernelType::kEpanechnikov, Precision::kDouble,
        tiling);
    ASSERT_EQ(tiled.size(), reference.size());
    for (std::size_t b = 0; b < reference.size(); ++b) {
      if (tiling.n_block >= d.size()) {
        EXPECT_DOUBLE_EQ(tiled[b], reference[b])
            << "n_block=" << tiling.n_block << " b=" << b;
      } else {
        EXPECT_NEAR(tiled[b], reference[b],
                    1e-12 * std::max(1.0, std::abs(reference[b])))
            << "n_block=" << tiling.n_block << " k_block=" << tiling.k_block
            << " b=" << b;
      }
    }
  }
}

TEST(TiledHostProfile, FloatPrecisionMatchesFloatWindowProfile) {
  const Dataset d = paper_data(200, 28);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 9);
  const std::vector<double> reference = kreg::window_cv_profile(
      d, grid.values(), KernelType::kEpanechnikov, Precision::kFloat);
  const std::vector<double> tiled = kreg::window_cv_profile_tiled(
      d, grid.values(), KernelType::kEpanechnikov, Precision::kFloat,
      HostTiling{64, 4});
  for (std::size_t b = 0; b < reference.size(); ++b) {
    EXPECT_NEAR(tiled[b], reference[b],
                1e-12 * std::max(1.0, std::abs(reference[b])))
        << "b=" << b;
  }
}

TEST(TiledHostProfile, OtherSweepableKernelsAgree) {
  const Dataset d = paper_data(150, 29);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 8);
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kTriangular,
        KernelType::kEpanechnikov}) {
    if (!kreg::is_sweepable(kernel)) {
      continue;
    }
    const std::vector<double> reference =
        kreg::window_cv_profile(d, grid.values(), kernel);
    const std::vector<double> tiled = kreg::window_cv_profile_tiled(
        d, grid.values(), kernel, Precision::kDouble, HostTiling{32, 3});
    for (std::size_t b = 0; b < reference.size(); ++b) {
      EXPECT_NEAR(tiled[b], reference[b],
                  1e-12 * std::max(1.0, std::abs(reference[b])))
          << "b=" << b;
    }
  }
}

}  // namespace
