// Tests for the kreg-verify static verifier: the affine/Diophantine
// machinery in isolation, seeded-hazard "mutation" kernels the verifier
// MUST flag with a concrete witness pair (WW race, missing barrier,
// tid-divergent barrier) next to their corrected twins that must verify,
// the exhaustive-cap fall-through, and a clean pass over real production
// launches (regression sweep, batched lanes, reductions).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "core/grid.hpp"
#include "core/selectors.hpp"
#include "core/spmd_selector.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"
#include "spmd/device.hpp"
#include "spmd/reduce.hpp"
#include "spmd/verify/affine.hpp"
#include "spmd/verify/verifier.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::Precision;
using kreg::SelectionResult;
using kreg::SortedGridSelector;
using kreg::SpmdGridSelector;
using kreg::SpmdSelectorConfig;
using kreg::data::Dataset;
using kreg::rng::Stream;
using kreg::spmd::BlockCtx;
using kreg::spmd::LaunchConfig;
using kreg::spmd::ThreadCtx;
using kreg::spmd::verify::Ap;
using kreg::spmd::verify::Domain;
using kreg::spmd::verify::Family;
using kreg::spmd::verify::HazardClass;
using kreg::spmd::verify::SolveResult;
using kreg::spmd::verify::SymbolicDevice;
using kreg::spmd::verify::VerifyOptions;
using kreg::spmd::verify::VerifyReport;
using kreg::spmd::verify::VerifyStatus;

Dataset paper_data(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  return kreg::data::paper_dgp(n, s);
}

const VerifyReport& report_for(const std::vector<VerifyReport>& reports,
                               const std::string& kernel) {
  for (const VerifyReport& r : reports) {
    if (r.kernel == kernel) {
      return r;
    }
  }
  ADD_FAILURE() << "no report for kernel '" << kernel << "'";
  static const VerifyReport kEmpty;
  return kEmpty;
}

// ---------------------------------------------------------------------------
// Affine machinery

TEST(AffineDomain, ContiguousStridedAndRejected) {
  const auto contiguous =
      kreg::spmd::verify::domain_from_ids({0, 1, 2, 3, 4, 5});
  ASSERT_TRUE(contiguous.has_value());
  EXPECT_EQ(contiguous->lo, 0);
  EXPECT_EQ(contiguous->hi, 5);
  EXPECT_EQ(contiguous->step, 1);
  EXPECT_EQ(contiguous->count(), 6);

  const auto strided = kreg::spmd::verify::domain_from_ids({3, 7, 11, 15});
  ASSERT_TRUE(strided.has_value());
  EXPECT_EQ(strided->step, 4);
  EXPECT_EQ(strided->offset, 3);
  EXPECT_TRUE(strided->contains(11));
  EXPECT_FALSE(strided->contains(12));

  EXPECT_FALSE(kreg::spmd::verify::domain_from_ids({0, 1, 3}).has_value());
  EXPECT_FALSE(kreg::spmd::verify::domain_from_ids({0, 0, 1}).has_value());

  const auto single = kreg::spmd::verify::domain_from_ids({42});
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->count(), 1);
}

TEST(AffineDomain, ApDecomposition) {
  const std::vector<Ap> one = kreg::spmd::verify::decompose_aps({5, 6, 7, 8});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].base, 5);
  EXPECT_EQ(one[0].stride, 1);
  EXPECT_EQ(one[0].count, 4);

  const std::vector<Ap> two =
      kreg::spmd::verify::decompose_aps({0, 1, 2, 10, 20, 30});
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].count, 3);
  EXPECT_EQ(two[1].base, 10);
  EXPECT_EQ(two[1].stride, 10);
  EXPECT_EQ(two[1].count, 3);

  const std::vector<Ap> single = kreg::spmd::verify::decompose_aps({9});
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].stride, 0);
  EXPECT_EQ(single[0].count, 1);
}

Family family(long long slope, long long base, const Domain& dom, bool write,
              long long stride = 0, long long count = 1, long long width = 1) {
  Family f;
  f.space = 1;
  f.write = write;
  f.slope = slope;
  f.base = base;
  f.stride = stride;
  f.count = count;
  f.width = width;
  f.dom = dom;
  return f;
}

TEST(AffineSolver, EvenOddWritersAreDisjoint) {
  const Domain dom{0, 63, 1, 0};
  const Family even = family(2, 0, dom, true);
  const Family odd = family(2, 1, dom, true);
  const SolveResult r =
      kreg::spmd::verify::find_collision(even, odd, false, 1 << 20);
  EXPECT_EQ(r.kind, SolveResult::kDisjoint);
}

TEST(AffineSolver, InjectiveSelfPairIsDisjointOffDiagonal) {
  const Domain dom{0, 999, 1, 0};
  const Family f = family(1, 0, dom, true);
  const SolveResult r =
      kreg::spmd::verify::find_collision(f, f, true, 1 << 20);
  EXPECT_EQ(r.kind, SolveResult::kDisjoint);
}

TEST(AffineSolver, OverlappingWidthsCollideWithWitness) {
  // Executor d writes [2d, 2d + 3): neighbours share a byte.
  const Domain dom{0, 31, 1, 0};
  const Family f = family(2, 0, dom, true, 0, 1, 3);
  const SolveResult r =
      kreg::spmd::verify::find_collision(f, f, true, 1 << 20);
  ASSERT_EQ(r.kind, SolveResult::kCollision);
  EXPECT_NE(r.witness.d1, r.witness.d2);
  const long long lo1 = 2 * r.witness.d1;
  const long long lo2 = 2 * r.witness.d2;
  EXPECT_LT(std::max(lo1, lo2), std::min(lo1 + 3, lo2 + 3))
      << "witness intervals must overlap";
}

TEST(AffineSolver, CongruenceDomainsSeparate) {
  // Harris interleave: writers t ≡ 0 (mod 8) write t, readers t ≡ 4 (mod 8)
  // read t — never the same address.
  const Domain writers{0, 56, 8, 0};
  const Domain readers{4, 60, 8, 4};
  const Family w = family(1, 0, writers, true);
  const Family rd = family(1, 0, readers, false);
  const SolveResult r =
      kreg::spmd::verify::find_collision(w, rd, false, 1 << 20);
  EXPECT_EQ(r.kind, SolveResult::kDisjoint);
}

// ---------------------------------------------------------------------------
// Mutation kernels: seeded hazards the verifier must flag with a witness,
// plus corrected twins that must verify.

TEST(VerifyMutation, WriteWriteRaceHasConcreteWitness) {
  SymbolicDevice dev;
  const std::size_t n = 32;
  auto buf = dev.alloc_global<double>(n + 1, "overlap_out");
  auto view = buf.view();
  dev.launch("mut_ww_overlap", LaunchConfig{1, n}, [=](const ThreadCtx& t) {
    // BUG: thread g writes elements g and g+1 — neighbours collide on g+1.
    view[t.global_idx()] = 1.0;
    view[t.global_idx() + 1] = 2.0;
  });
  const auto reports = dev.verifier().take_reports();
  const VerifyReport& r = report_for(reports, "mut_ww_overlap");
  ASSERT_EQ(r.status, VerifyStatus::kHazard) << r.summary();
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_EQ(r.witness->hazard, HazardClass::kWriteWrite);
  EXPECT_EQ(r.witness->object, "overlap_out");
  EXPECT_FALSE(r.witness->shared);
  EXPECT_NE(r.witness->exec_a, r.witness->exec_b);
  // The colliding element must actually be written by both witnesses.
  EXPECT_EQ(r.witness->addr_a, r.witness->addr_b);
  const long long lo = std::min(r.witness->exec_a, r.witness->exec_b);
  const long long hi = std::max(r.witness->exec_a, r.witness->exec_b);
  EXPECT_EQ(hi, lo + 1);
  EXPECT_EQ(r.witness->addr_a, hi);
}

TEST(VerifyMutation, DisjointTwinOfWriteWriteVerifies) {
  SymbolicDevice dev;
  const std::size_t n = 32;
  auto buf = dev.alloc_global<double>(2 * n, "disjoint_out");
  auto view = buf.view();
  dev.launch("mut_ww_fixed", LaunchConfig{1, n}, [=](const ThreadCtx& t) {
    view[2 * t.global_idx()] = 1.0;
    view[2 * t.global_idx() + 1] = 2.0;
  });
  const auto reports = dev.verifier().take_reports();
  const VerifyReport& r = report_for(reports, "mut_ww_fixed");
  EXPECT_EQ(r.status, VerifyStatus::kVerified) << r.summary();
  EXPECT_GT(r.families, 0u);
  EXPECT_EQ(r.executors, n);
}

TEST(VerifyMutation, MissingBarrierIsAReadWriteHazard) {
  SymbolicDevice dev;
  const std::size_t block = 32;
  auto out = dev.alloc_global<double>(block, "shift_out");
  auto out_view = out.view();
  dev.launch_cooperative(
      "mut_missing_barrier", LaunchConfig{1, block}, block * sizeof(double),
      [=](BlockCtx& ctx) {
        auto sh = ctx.shared_as<double>(block);
        // BUG: write and neighbour-read collapsed into one phase — tid t
        // reads the slot tid t+1 writes with no barrier between them.
        ctx.for_each_thread([&](std::size_t t) {
          sh[t] = static_cast<double>(t);
          if (t + 1 < block) {
            out_view[t] = static_cast<double>(sh[t + 1]);
          } else {
            out_view[t] = 0.0;
          }
        });
      });
  const auto reports = dev.verifier().take_reports();
  const VerifyReport& r = report_for(reports, "mut_missing_barrier");
  ASSERT_EQ(r.status, VerifyStatus::kHazard) << r.summary();
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_EQ(r.witness->hazard, HazardClass::kReadWrite);
  EXPECT_TRUE(r.witness->shared);
  EXPECT_EQ(r.witness->object, "shared");
  EXPECT_EQ(r.witness->phase, 0);
  EXPECT_NE(r.witness->exec_a, r.witness->exec_b);
}

TEST(VerifyMutation, TwoPhaseTwinOfMissingBarrierVerifies) {
  SymbolicDevice dev;
  const std::size_t block = 32;
  auto out = dev.alloc_global<double>(block, "shift_out");
  auto out_view = out.view();
  dev.launch_cooperative(
      "mut_barrier_fixed", LaunchConfig{1, block}, block * sizeof(double),
      [=](BlockCtx& ctx) {
        auto sh = ctx.shared_as<double>(block);
        ctx.for_each_thread(
            [&](std::size_t t) { sh[t] = static_cast<double>(t); });
        ctx.for_each_thread([&](std::size_t t) {
          if (t + 1 < block) {
            out_view[t] = static_cast<double>(sh[t + 1]);
          } else {
            out_view[t] = 0.0;
          }
        });
      });
  const auto reports = dev.verifier().take_reports();
  const VerifyReport& r = report_for(reports, "mut_barrier_fixed");
  EXPECT_EQ(r.status, VerifyStatus::kVerified) << r.summary();
  EXPECT_EQ(r.phases, 2u);
}

TEST(VerifyMutation, TidDivergentBarrierIsFlagged) {
  SymbolicDevice dev;
  const std::size_t block = 16;
  dev.launch_cooperative(
      "mut_divergent_barrier", LaunchConfig{1, block}, block * sizeof(double),
      [](BlockCtx& ctx) {
        auto sh = ctx.shared_as<double>(block);
        ctx.for_each_thread([&](std::size_t t) {
          sh[t] = 1.0;
          // BUG: a barrier (for_each_thread) behind a tid-dependent branch.
          if (t == 3) {
            ctx.for_each_thread([&](std::size_t u) { sh[u] = 2.0; });
          }
        });
      });
  const auto reports = dev.verifier().take_reports();
  const VerifyReport& r = report_for(reports, "mut_divergent_barrier");
  ASSERT_EQ(r.status, VerifyStatus::kHazard) << r.summary();
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_EQ(r.witness->hazard, HazardClass::kBarrierDivergence);
  EXPECT_EQ(r.witness->exec_a, 3);  // the tid that reached the barrier
  EXPECT_NE(r.witness->exec_b, 3);  // one that may not
}

TEST(VerifyMutation, HoistedBarrierTwinVerifies) {
  SymbolicDevice dev;
  const std::size_t block = 16;
  dev.launch_cooperative(
      "mut_divergence_fixed", LaunchConfig{1, block}, block * sizeof(double),
      [](BlockCtx& ctx) {
        auto sh = ctx.shared_as<double>(block);
        ctx.for_each_thread([&](std::size_t t) { sh[t] = 1.0; });
        ctx.for_each_thread([&](std::size_t t) { sh[t] = 2.0; });
      });
  const auto reports = dev.verifier().take_reports();
  const VerifyReport& r = report_for(reports, "mut_divergence_fixed");
  EXPECT_EQ(r.status, VerifyStatus::kVerified) << r.summary();
}

// ---------------------------------------------------------------------------
// Cap fall-through: an over-budget launch runs normally and is unproven.

TEST(VerifyOptionsTest, OverCapLaunchRunsUnverified) {
  VerifyOptions opts;
  opts.exhaustive_cap = 16;
  SymbolicDevice dev(kreg::spmd::DeviceProperties::tesla_s10(), nullptr,
                     opts);
  const std::size_t n = 64;
  auto buf = dev.alloc_global<double>(n, "big_out");
  auto view = buf.view();
  dev.launch("too_big", LaunchConfig{1, n}, [=](const ThreadCtx& t) {
    view[t.global_idx()] = static_cast<double>(t.global_idx());
  });
  std::vector<double> host(n);
  dev.copy_to_host(std::span<double>(host), buf);
  EXPECT_DOUBLE_EQ(host[n - 1], static_cast<double>(n - 1))
      << "the launch must still have executed";
  const auto reports = dev.verifier().take_reports();
  const VerifyReport& r = report_for(reports, "too_big");
  EXPECT_EQ(r.status, VerifyStatus::kUnproven);
  EXPECT_NE(r.reason.find("cap"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Production launches: the real selection stack, traced and verified, with
// results identical to a plain device run (the serial trace is a legal
// schedule).

TEST(VerifyProduction, ScalarWindowSweepVerifiesEveryLaunch) {
  SymbolicDevice dev;
  const Dataset d = paper_data(200, 11);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 16);
  SpmdSelectorConfig cfg;
  cfg.precision = Precision::kDouble;
  cfg.lane_width = 1;  // scalar kernels
  const SelectionResult got = SpmdGridSelector(dev, cfg).select(d, grid);
  const SelectionResult want = SortedGridSelector().select(d, grid);
  EXPECT_DOUBLE_EQ(got.bandwidth, want.bandwidth);

  const auto reports = dev.verifier().take_reports();
  ASSERT_FALSE(reports.empty());
  std::size_t verified = 0;
  for (const VerifyReport& r : reports) {
    EXPECT_NE(r.status, VerifyStatus::kHazard) << r.summary();
    verified += r.status == VerifyStatus::kVerified ? 1 : 0;
  }
  EXPECT_EQ(report_for(reports, "cv_sweep").status, VerifyStatus::kVerified);
  EXPECT_GE(verified, 2u);  // at least the sweep and a reduction
}

TEST(VerifyProduction, BatchedLanesWithoutSigmaSortVerify) {
  SymbolicDevice dev;
  const Dataset d = paper_data(192, 12);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 12);
  SpmdSelectorConfig cfg;
  cfg.precision = Precision::kDouble;
  cfg.lane_width = 8;
  cfg.sigma = kreg::SigmaPolicy::kNone;  // identity lane order: affine
                                         // addressing
  const SelectionResult got = SpmdGridSelector(dev, cfg).select(d, grid);
  const SelectionResult want = SortedGridSelector().select(d, grid);
  EXPECT_DOUBLE_EQ(got.bandwidth, want.bandwidth);
  const auto reports = dev.verifier().take_reports();
  for (const VerifyReport& r : reports) {
    EXPECT_NE(r.status, VerifyStatus::kHazard) << r.summary();
  }
}

TEST(VerifyProduction, TreeReductionsVerify) {
  SymbolicDevice dev;
  const std::size_t n = 128;
  auto buf = dev.alloc_global<double>(n, "reduce_in");
  std::vector<double> host(n, 1.0);
  dev.copy_to_device(buf, std::span<const double>(host));
  const kreg::spmd::MemView<const double> view = buf.view();
  EXPECT_DOUBLE_EQ(kreg::spmd::reduce_sum<double>(dev, view, n),
                   static_cast<double>(n));
  EXPECT_DOUBLE_EQ(
      kreg::spmd::reduce_sum<double>(
          dev, view, n, kreg::spmd::ReduceVariant::kInterleaved),
      static_cast<double>(n));
  const auto reports = dev.verifier().take_reports();
  ASSERT_GE(reports.size(), 2u);
  for (const VerifyReport& r : reports) {
    EXPECT_EQ(r.status, VerifyStatus::kVerified) << r.summary();
    EXPECT_TRUE(r.cooperative);
    EXPECT_GT(r.phases, 1u);
  }
}

}  // namespace
