// Tests for the Harris-style device reductions: agreement with serial
// reference across sizes/block dims/variants, argmin tie-breaking, and the
// two-level grid reduction.
#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <tuple>
#include <vector>

#include "rng/stream.hpp"
#include "spmd/device.hpp"
#include "spmd/reduce.hpp"

namespace {

using kreg::rng::Stream;
using kreg::spmd::ArgminResult;
using kreg::spmd::Device;
using kreg::spmd::DeviceBuffer;
using kreg::spmd::DeviceProperties;
using kreg::spmd::ReduceVariant;

template <class T>
DeviceBuffer<T> upload(Device& dev, const std::vector<T>& host) {
  auto buf = dev.alloc_global<T>(host.size());
  dev.copy_to_device(buf, std::span<const T>(host));
  return buf;
}

std::vector<double> random_values(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  return s.uniforms(n, -10.0, 10.0);
}

// ---- Parameterized: (size, block_dim, variant) ---------------------------

using SumParam = std::tuple<std::size_t, std::size_t, ReduceVariant>;

class ReduceSumTest : public ::testing::TestWithParam<SumParam> {};

TEST_P(ReduceSumTest, MatchesSerialAccumulate) {
  const auto [n, block_dim, variant] = GetParam();
  Device dev;
  const std::vector<double> host = random_values(n, 100 + n);
  auto buf = upload(dev, host);
  const double expected = std::accumulate(host.begin(), host.end(), 0.0);
  const double got = kreg::spmd::reduce_sum<double>(
      dev, buf.span(), block_dim, variant);
  EXPECT_NEAR(got, expected, 1e-9 * std::max(1.0, std::abs(expected)))
      << "n=" << n << " block=" << block_dim;
}

INSTANTIATE_TEST_SUITE_P(
    SizesBlocksVariants, ReduceSumTest,
    ::testing::Combine(
        ::testing::Values<std::size_t>(1, 2, 3, 31, 32, 33, 512, 1000, 4097),
        ::testing::Values<std::size_t>(1, 2, 32, 512),
        ::testing::Values(ReduceVariant::kSequential,
                          ReduceVariant::kInterleaved)));

TEST(ReduceSum, EmptyInputIsZero) {
  Device dev;
  const std::vector<double> empty;
  EXPECT_EQ(kreg::spmd::reduce_sum<double>(dev, std::span<const double>(empty)),
            0.0);
}

TEST(ReduceSum, FloatPrecisionPath) {
  Device dev;
  std::vector<float> host(1000, 0.5f);
  auto buf = upload(dev, host);
  EXPECT_FLOAT_EQ(kreg::spmd::reduce_sum<float>(dev, buf.span()), 500.0f);
}

TEST(ReduceSum, NonPowerOfTwoBlockRoundedDown) {
  Device dev;
  const std::vector<double> host = random_values(256, 7);
  auto buf = upload(dev, host);
  const double expected = std::accumulate(host.begin(), host.end(), 0.0);
  // 100 threads/block rounds down to 64; result must be unaffected.
  EXPECT_NEAR(kreg::spmd::reduce_sum<double>(dev, buf.span(), 100), expected,
              1e-9);
}

TEST(ReduceSum, VariantsAgreeBitwiseOnIntegers) {
  // With integer-valued doubles both schedules are exact, so they must
  // agree exactly, not just within tolerance.
  Device dev;
  std::vector<double> host(777);
  std::iota(host.begin(), host.end(), 1.0);
  auto buf = upload(dev, host);
  const double seq = kreg::spmd::reduce_sum<double>(
      dev, buf.span(), 512, ReduceVariant::kSequential);
  const double inter = kreg::spmd::reduce_sum<double>(
      dev, buf.span(), 512, ReduceVariant::kInterleaved);
  EXPECT_EQ(seq, inter);
  EXPECT_EQ(seq, 777.0 * 778.0 / 2.0);
}

// ---- argmin ---------------------------------------------------------------

class ReduceArgminTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ReduceArgminTest, MatchesSerialArgmin) {
  const auto [n, block_dim] = GetParam();
  Device dev;
  const std::vector<double> host = random_values(n, 500 + n);
  auto buf = upload(dev, host);
  std::size_t expected = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (host[i] < host[expected]) {
      expected = i;
    }
  }
  const ArgminResult<double> got =
      kreg::spmd::reduce_argmin<double>(dev, buf.span(), block_dim);
  EXPECT_EQ(got.index, expected);
  EXPECT_EQ(got.value, host[expected]);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBlocks, ReduceArgminTest,
    ::testing::Combine(
        ::testing::Values<std::size_t>(1, 2, 17, 64, 1000, 2048, 5000),
        ::testing::Values<std::size_t>(1, 8, 512)));

TEST(ReduceArgmin, TieBreaksToSmallestIndex) {
  Device dev;
  std::vector<double> host = {5.0, 1.0, 3.0, 1.0, 1.0, 9.0};
  auto buf = upload(dev, host);
  const auto got = kreg::spmd::reduce_argmin<double>(dev, buf.span(), 2);
  EXPECT_EQ(got.index, 1u);
  EXPECT_EQ(got.value, 1.0);
}

TEST(ReduceArgmin, MinimumAtEnds) {
  Device dev;
  std::vector<double> front = {-7.0, 1.0, 2.0, 3.0};
  std::vector<double> back = {1.0, 2.0, 3.0, -7.0};
  auto bf = upload(dev, front);
  auto bb = upload(dev, back);
  EXPECT_EQ(kreg::spmd::reduce_argmin<double>(dev, bf.span()).index, 0u);
  EXPECT_EQ(kreg::spmd::reduce_argmin<double>(dev, bb.span()).index, 3u);
}

TEST(ReduceArgmin, EmptyInputReturnsSentinel) {
  Device dev;
  const std::vector<double> empty;
  const auto got =
      kreg::spmd::reduce_argmin<double>(dev, std::span<const double>(empty));
  EXPECT_EQ(got.index, 0u);
  EXPECT_EQ(got.value, std::numeric_limits<double>::infinity());
}

TEST(ReduceMin, MatchesArgminValue) {
  Device dev;
  const std::vector<double> host = random_values(321, 9);
  auto buf = upload(dev, host);
  const double min_value = kreg::spmd::reduce_min<double>(dev, buf.span());
  EXPECT_EQ(min_value, *std::min_element(host.begin(), host.end()));
}

// ---- Two-level grid reduction ---------------------------------------------

class ReduceGridTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReduceGridTest, MatchesSerialAccumulate) {
  const std::size_t n = GetParam();
  Device dev;
  const std::vector<double> host = random_values(n, 900 + n);
  auto buf = upload(dev, host);
  const double expected = std::accumulate(host.begin(), host.end(), 0.0);
  const double got = kreg::spmd::reduce_sum_grid<double>(dev, buf.span(), 64);
  EXPECT_NEAR(got, expected, 1e-9 * std::max(1.0, std::abs(expected)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReduceGridTest,
                         ::testing::Values<std::size_t>(1, 63, 64, 65, 127,
                                                        128, 129, 10000,
                                                        100001));

TEST(ReduceGrid, AgreesWithSingleBlock) {
  Device dev;
  const std::vector<double> host = random_values(3000, 11);
  auto buf = upload(dev, host);
  const double single = kreg::spmd::reduce_sum<double>(dev, buf.span(), 512);
  const double grid = kreg::spmd::reduce_sum_grid<double>(dev, buf.span(), 512);
  EXPECT_NEAR(single, grid, 1e-9);
}

}  // namespace
