// Tests for the SPMD device simulator: memory ledger accounting, the
// paper's capacity failure modes (global OOM, constant-cache cap), launch
// validation, and kernel execution semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "spmd/buffer.hpp"
#include "spmd/device.hpp"
#include "spmd/device_properties.hpp"
#include "spmd/errors.hpp"

namespace {

using kreg::spmd::BlockCtx;
using kreg::spmd::ConstantCapacityError;
using kreg::spmd::Device;
using kreg::spmd::DeviceAllocError;
using kreg::spmd::DeviceBuffer;
using kreg::spmd::DeviceProperties;
using kreg::spmd::LaunchConfig;
using kreg::spmd::LaunchConfigError;
using kreg::spmd::ThreadCtx;

TEST(DeviceProperties, TeslaS10MatchesPaperHardware) {
  const auto p = DeviceProperties::tesla_s10();
  EXPECT_EQ(p.total_cores(), 240u);  // "240 streaming cores"
  EXPECT_EQ(p.max_threads_per_block, 512u);
  EXPECT_EQ(p.constant_cache_bytes, 8u * 1024u);  // 8 KB -> k <= 2048 floats
  EXPECT_EQ(p.global_memory_bytes, 4ULL * 1024 * 1024 * 1024);
  EXPECT_NO_THROW(p.validate());
}

TEST(DeviceProperties, ValidateRejectsZeroLimits) {
  auto p = DeviceProperties::tesla_s10();
  p.max_threads_per_block = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(DeviceMemory, LedgerTracksAllocationAndRelease) {
  Device dev(DeviceProperties::tiny(1 << 20));
  EXPECT_EQ(dev.global_allocated(), 0u);
  {
    auto buf = dev.alloc_global<float>(1000);
    EXPECT_EQ(dev.global_allocated(), 4000u);
    EXPECT_EQ(dev.global_peak(), 4000u);
    auto buf2 = dev.alloc_global<double>(100);
    EXPECT_EQ(dev.global_allocated(), 4800u);
  }
  EXPECT_EQ(dev.global_allocated(), 0u);  // RAII returned the bytes
  EXPECT_EQ(dev.global_peak(), 4800u);    // peak persists
}

TEST(DeviceMemory, OverAllocationThrowsDeviceAllocError) {
  Device dev(DeviceProperties::tiny(1024));
  auto small = dev.alloc_global<float>(128);  // 512 bytes
  try {
    auto big = dev.alloc_global<float>(256);  // 1024 more: over capacity
    FAIL() << "expected DeviceAllocError";
  } catch (const DeviceAllocError& e) {
    EXPECT_EQ(e.requested_bytes, 1024u);
    EXPECT_EQ(e.available_bytes, 512u);
  }
}

TEST(DeviceMemory, PaperScaleOomReproduces) {
  // The paper's failure: two n×n float matrices exceed 4 GB for n > 23,170
  // (and with the n×k matrices on top, for n just above 20,000). Check the
  // arithmetic against the ledger without touching real gigabytes by
  // scaling everything down 1024×: capacity 4 MB, n = 1,024 rows?
  // 2·n²·4 bytes = 8 MB > 4 MB -> must throw on the second matrix.
  Device dev(DeviceProperties::tiny(4 << 20));
  const std::size_t n = 1024;
  auto first = dev.alloc_global<float>(n * n);  // 4 MB exactly fills it
  EXPECT_THROW(dev.alloc_global<float>(n * n), DeviceAllocError);
}

TEST(DeviceMemory, FreedBufferCanBeReallocated) {
  Device dev(DeviceProperties::tiny(4096));
  {
    auto a = dev.alloc_global<float>(1024);  // fills capacity
  }
  EXPECT_NO_THROW(dev.alloc_global<float>(1024));
}

TEST(DeviceMemory, MoveTransfersOwnershipWithoutDoubleFree) {
  Device dev(DeviceProperties::tiny(4096));
  auto a = dev.alloc_global<float>(256);
  const std::size_t after_alloc = dev.global_allocated();
  DeviceBuffer<float> b = std::move(a);
  EXPECT_EQ(dev.global_allocated(), after_alloc);  // unchanged by the move
  b = DeviceBuffer<float>();                       // releases
  EXPECT_EQ(dev.global_allocated(), 0u);
}

TEST(DeviceMemory, ZeroInitialized) {
  Device dev(DeviceProperties::tiny(4096));
  auto buf = dev.alloc_global<float>(64);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], 0.0f);
  }
}

TEST(ConstantMemory, CapEnforcesPaperBandwidthLimit) {
  Device dev;  // Tesla S10: 8 KB constant cache
  std::vector<float> okay(2048, 1.0f);  // exactly 8 KB
  EXPECT_NO_THROW(dev.upload_constant<float>(okay));
}

TEST(ConstantMemory, ExceedingCapThrows) {
  Device dev;
  std::vector<float> too_many(2049, 1.0f);
  try {
    auto buf = dev.upload_constant<float>(too_many);
    FAIL() << "expected ConstantCapacityError";
  } catch (const ConstantCapacityError& e) {
    EXPECT_EQ(e.capacity_bytes, 8192u);
  }
}

TEST(ConstantMemory, DoubleHalvesTheCap) {
  Device dev;
  std::vector<double> okay(1024, 1.0);
  EXPECT_NO_THROW(dev.upload_constant<double>(okay));
  std::vector<double> too_many(1025, 1.0);
  EXPECT_THROW(dev.upload_constant<double>(too_many), ConstantCapacityError);
}

TEST(ConstantMemory, ContentsMatchUpload) {
  Device dev;
  const std::vector<float> values = {1.5f, -2.0f, 3.25f};
  auto buf = dev.upload_constant<float>(values);
  ASSERT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf[0], 1.5f);
  EXPECT_EQ(buf[2], 3.25f);
}

TEST(Transfers, RoundTripHostDeviceHost) {
  Device dev(DeviceProperties::tiny(1 << 16));
  std::vector<float> host(100);
  std::iota(host.begin(), host.end(), 0.0f);
  auto d = dev.alloc_global<float>(100);
  dev.copy_to_device(d, std::span<const float>(host));
  std::vector<float> back(100, -1.0f);
  dev.copy_to_host(std::span<float>(back), d);
  EXPECT_EQ(back, host);
}

TEST(Transfers, SizeMismatchThrows) {
  Device dev(DeviceProperties::tiny(1 << 16));
  auto d = dev.alloc_global<float>(10);
  std::vector<float> wrong(11);
  EXPECT_THROW(dev.copy_to_device(d, std::span<const float>(wrong)),
               LaunchConfigError);
  EXPECT_THROW(dev.copy_to_host(std::span<float>(wrong), d),
               LaunchConfigError);
}

TEST(LaunchConfig, CoverComputesCeilingGrid) {
  const auto cfg = LaunchConfig::cover(1000, 512);
  EXPECT_EQ(cfg.grid_blocks, 2u);
  EXPECT_EQ(cfg.threads_per_block, 512u);
  EXPECT_GE(cfg.total_threads(), 1000u);
  const auto exact = LaunchConfig::cover(1024, 512);
  EXPECT_EQ(exact.grid_blocks, 2u);
  const auto zero = LaunchConfig::cover(0, 512);
  EXPECT_EQ(zero.grid_blocks, 1u);  // at least one block
}

TEST(Launch, RejectsOversizedBlock) {
  Device dev;  // max 512 threads/block
  EXPECT_THROW(dev.launch(LaunchConfig{1, 513}, [](const ThreadCtx&) {}),
               LaunchConfigError);
}

TEST(Launch, RejectsZeroDimensions) {
  Device dev;
  EXPECT_THROW(dev.launch(LaunchConfig{0, 32}, [](const ThreadCtx&) {}),
               LaunchConfigError);
  EXPECT_THROW(dev.launch(LaunchConfig{1, 0}, [](const ThreadCtx&) {}),
               LaunchConfigError);
}

TEST(Launch, RejectsOversizedSharedMemory) {
  Device dev;  // 16 KB shared per block
  EXPECT_THROW(
      dev.launch_cooperative(LaunchConfig{1, 32}, 16 * 1024 + 1,
                             [](BlockCtx&) {}),
      LaunchConfigError);
}

TEST(Launch, EveryThreadRunsExactlyOnce) {
  Device dev;
  const std::size_t n = 2000;
  std::vector<std::atomic<int>> hits(n);
  const auto cfg = LaunchConfig::cover(n, 128);
  dev.launch(cfg, [&](const ThreadCtx& t) {
    const std::size_t j = t.global_idx();
    if (j < n) {
      hits[j].fetch_add(1);
    }
  });
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(hits[j].load(), 1) << "thread " << j;
  }
}

TEST(Launch, ThreadCtxIdentitiesAreConsistent) {
  Device dev;
  const LaunchConfig cfg{4, 64};
  std::vector<std::atomic<int>> hits(cfg.total_threads());
  dev.launch(cfg, [&](const ThreadCtx& t) {
    EXPECT_LT(t.block_idx, 4u);
    EXPECT_LT(t.thread_idx, 64u);
    EXPECT_EQ(t.block_dim, 64u);
    EXPECT_EQ(t.grid_dim, 4u);
    hits[t.global_idx()].fetch_add(1);
  });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(Launch, StatsAccumulate) {
  Device dev;
  dev.launch(LaunchConfig{2, 32}, [](const ThreadCtx&) {});
  dev.launch_cooperative(LaunchConfig{3, 16}, 64, [](BlockCtx& ctx) {
    ctx.for_each_thread([](std::size_t) {});
  });
  EXPECT_EQ(dev.stats().kernel_launches, 1u);
  EXPECT_EQ(dev.stats().cooperative_launches, 1u);
  EXPECT_EQ(dev.stats().blocks_executed, 5u);
  EXPECT_EQ(dev.stats().threads_executed, 2u * 32u + 3u * 16u);
}

TEST(LaunchCooperative, PhasesActAsBarriers) {
  // Classic barrier test: phase 1 writes shared[tid], phase 2 reads the
  // neighbour's slot. Without barrier semantics the read could see stale
  // data; with for_each_thread phases it must see phase 1's writes.
  Device dev;
  const std::size_t block = 64;
  std::vector<int> out(block);
  dev.launch_cooperative(
      LaunchConfig{1, block}, block * sizeof(int), [&](BlockCtx& ctx) {
        auto shared = ctx.shared_as<int>(block);
        ctx.for_each_thread(
            [&](std::size_t tid) { shared[tid] = static_cast<int>(tid); });
        ctx.for_each_thread([&](std::size_t tid) {
          out[tid] = shared[(tid + 1) % block];
        });
      });
  for (std::size_t tid = 0; tid < block; ++tid) {
    EXPECT_EQ(out[tid], static_cast<int>((tid + 1) % block));
  }
}

TEST(LaunchCooperative, BlocksGetPrivateSharedMemory) {
  Device dev;
  const std::size_t blocks = 8;
  std::vector<int> result(blocks, -1);
  dev.launch_cooperative(
      LaunchConfig{blocks, 4}, 4 * sizeof(int), [&](BlockCtx& ctx) {
        auto shared = ctx.shared_as<int>(4);
        ctx.for_each_thread([&](std::size_t tid) {
          shared[tid] = static_cast<int>(ctx.block_idx());
        });
        ctx.for_each_thread([&](std::size_t tid) {
          if (tid == 0) {
            result[ctx.block_idx()] = shared[3];
          }
        });
      });
  for (std::size_t b = 0; b < blocks; ++b) {
    EXPECT_EQ(result[b], static_cast<int>(b));  // no cross-block bleed
  }
}

TEST(Launch, WorksWithDedicatedPool) {
  kreg::parallel::ThreadPool pool(2);
  Device dev(DeviceProperties::tesla_s10(), &pool);
  std::atomic<int> count{0};
  dev.launch(LaunchConfig{16, 32},
             [&](const ThreadCtx&) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16 * 32);
}

}  // namespace
