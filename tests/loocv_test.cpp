// Tests for the LOO-CV objective (paper Eq. 1-2): hand-computed small
// cases, the M(X_i) indicator, leave-one-out semantics, and agreement
// between the serial and parallel evaluations.
#include <gtest/gtest.h>

#include <cmath>

#include "core/grid.hpp"
#include "core/loocv.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"

namespace {

using kreg::cv_score;
using kreg::cv_score_parallel;
using kreg::KernelType;
using kreg::loo_predict;
using kreg::loo_predict_all;
using kreg::data::Dataset;
using kreg::rng::Stream;

TEST(LooPredict, HandComputedTwoPointCase) {
  // Two points within bandwidth of each other: the LOO prediction at each
  // point is exactly the other point's y.
  Dataset d{{0.0, 0.1}, {1.0, 3.0}};
  const auto p0 = loo_predict(d, 0, 1.0);
  const auto p1 = loo_predict(d, 1, 1.0);
  ASSERT_TRUE(p0.valid);
  ASSERT_TRUE(p1.valid);
  EXPECT_DOUBLE_EQ(p0.value, 3.0);
  EXPECT_DOUBLE_EQ(p1.value, 1.0);
}

TEST(LooPredict, HandComputedThreePointWeights) {
  // x = {0, 0.5, 1}, h = 1 (Epanechnikov). For i=0: neighbours at
  // distance 0.5 (weight .75*(1-.25)=.5625) and 1.0 (weight 0).
  Dataset d{{0.0, 0.5, 1.0}, {10.0, 20.0, 30.0}};
  const auto p = loo_predict(d, 0, 1.0);
  ASSERT_TRUE(p.valid);
  EXPECT_DOUBLE_EQ(p.value, 20.0);  // only the middle point has weight
}

TEST(LooPredict, IndicatorZeroWhenNoNeighbourInSupport) {
  Dataset d{{0.0, 10.0}, {1.0, 2.0}};
  const auto p = loo_predict(d, 0, 0.5);
  EXPECT_FALSE(p.valid);  // M(X_0) = 0
}

TEST(LooPredict, SelfIsExcluded) {
  // Three clustered points: i=1's prediction must not involve y[1].
  Dataset d{{0.0, 0.01, 0.02}, {5.0, 1000.0, 7.0}};
  const auto p = loo_predict(d, 1, 1.0);
  ASSERT_TRUE(p.valid);
  EXPECT_LT(p.value, 10.0);  // average of 5 and 7-ish, not dragged to 1000
  EXPECT_GT(p.value, 4.0);
}

TEST(LooPredictAll, MatchesPerObservationCalls) {
  Stream s(3);
  const Dataset d = kreg::data::paper_dgp(100, s);
  const auto all = loo_predict_all(d, 0.2);
  ASSERT_EQ(all.size(), d.size());
  for (std::size_t i = 0; i < d.size(); i += 13) {
    const auto single = loo_predict(d, i, 0.2);
    EXPECT_EQ(all[i].valid, single.valid);
    if (single.valid) {
      EXPECT_DOUBLE_EQ(all[i].value, single.value);
    }
  }
}

TEST(CvScore, HandComputedTwoPointCase) {
  // Residuals: (1-3)² and (3-1)², mean = 4.
  Dataset d{{0.0, 0.1}, {1.0, 3.0}};
  EXPECT_DOUBLE_EQ(cv_score(d, 1.0), 4.0);
}

TEST(CvScore, DroppedObservationsContributeZero) {
  // Far-apart points, tiny bandwidth: every M(X_i) = 0 -> CV = 0.
  Dataset d{{0.0, 10.0, 20.0}, {1.0, 2.0, 3.0}};
  EXPECT_DOUBLE_EQ(cv_score(d, 0.1), 0.0);
}

TEST(CvScore, RejectsBadInputs) {
  Dataset d{{0.0, 0.1}, {1.0, 3.0}};
  EXPECT_THROW(cv_score(d, 0.0), std::invalid_argument);
  EXPECT_THROW(cv_score(d, -1.0), std::invalid_argument);
  Dataset empty;
  EXPECT_THROW(cv_score(empty, 0.5), std::invalid_argument);
}

TEST(CvScore, ParallelMatchesSerial) {
  Stream s(4);
  const Dataset d = kreg::data::paper_dgp(500, s);
  for (double h : {0.02, 0.1, 0.5, 1.0}) {
    const double serial = cv_score(d, h);
    const double parallel = cv_score_parallel(d, h);
    EXPECT_NEAR(parallel, serial, 1e-12 * std::max(1.0, serial)) << "h=" << h;
  }
}

TEST(CvScore, ParallelMatchesSerialAcrossKernels) {
  Stream s(5);
  const Dataset d = kreg::data::sine_dgp(300, s);
  for (KernelType k : kreg::kAllKernels) {
    const double serial = cv_score(d, 0.15, k);
    const double parallel = cv_score_parallel(d, 0.15, k);
    EXPECT_NEAR(parallel, serial, 1e-12 * std::max(1.0, serial))
        << to_string(k);
  }
}

TEST(CvScore, LargeBandwidthApproachesGlobalMeanResiduals) {
  // With h >> domain and the Uniform kernel, every ĝ₋ᵢ is the mean of the
  // other n-1 y's; check against the closed form.
  Stream s(6);
  const Dataset d = kreg::data::paper_dgp(50, s);
  double y_sum = 0.0;
  for (double y : d.y) {
    y_sum += y;
  }
  const double n = static_cast<double>(d.size());
  double expected = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double loo_mean = (y_sum - d.y[i]) / (n - 1.0);
    const double e = d.y[i] - loo_mean;
    expected += e * e;
  }
  expected /= n;
  EXPECT_NEAR(cv_score(d, 100.0, KernelType::kUniform), expected, 1e-10);
}

TEST(CvScore, GaussianKernelNeverDropsObservations) {
  Stream s(7);
  const Dataset d = kreg::data::paper_dgp(100, s);
  const auto all = loo_predict_all(d, 0.001, KernelType::kGaussian);
  for (const auto& p : all) {
    EXPECT_TRUE(p.valid);  // unbounded support: M(X_i) = 1 always
  }
}

TEST(CvScore, InteriorBandwidthBeatsExtremes) {
  // The CV profile over the paper's default grid must attain its minimum
  // strictly inside the grid: undersmoothing (h near domain/k) inflates
  // variance, oversmoothing (h near the domain) inflates bias. (Comparing
  // against arbitrarily tiny h below the grid is not meaningful: the M(X_i)
  // indicator drops unsupported observations, deflating CV as h -> 0.)
  Stream s(8);
  const Dataset d = kreg::data::paper_dgp(800, s);
  // A fine default grid (k = 200 -> floor = domain/200) brackets the CV
  // optimum for this low-noise DGP; the paper's coarser k = 50 grid has its
  // floor above the optimum, which would pin the argmin to the first cell.
  std::vector<double> scores;
  const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(d, 200);
  for (double h : grid.values()) {
    scores.push_back(cv_score(d, h));
  }
  std::size_t best = 0;
  for (std::size_t b = 1; b < scores.size(); ++b) {
    if (scores[b] < scores[best]) {
      best = b;
    }
  }
  EXPECT_GT(best, 0u);
  EXPECT_LT(best, scores.size() - 1);
  EXPECT_LT(scores[best], scores.front());
  EXPECT_LT(scores[best], scores.back());
}

}  // namespace
