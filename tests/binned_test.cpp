// Tests for linear binning and the binned CV approximation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/binned.hpp"
#include "core/nadaraya_watson.hpp"
#include "core/selectors.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::BinnedSample;
using kreg::KernelType;
using kreg::data::Dataset;
using kreg::rng::Stream;

TEST(LinearBin, PreservesMassAndFirstMomentExactly) {
  Stream s(1);
  const Dataset d = kreg::data::paper_dgp(1000, s);
  const BinnedSample binned = kreg::linear_bin(d, 64);

  double total_mass = 0.0;
  double first_moment = 0.0;
  double total_y = 0.0;
  for (std::size_t j = 0; j < binned.bins(); ++j) {
    total_mass += binned.mass[j];
    first_moment += binned.mass[j] * binned.node(j);
    total_y += binned.y_mass[j];
  }
  double x_sum = 0.0;
  double y_sum = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    x_sum += d.x[i];
    y_sum += d.y[i];
  }
  EXPECT_NEAR(total_mass, 1000.0, 1e-9);
  EXPECT_NEAR(first_moment, x_sum, 1e-8);  // linear binning's exactness
  EXPECT_NEAR(total_y, y_sum, 1e-8);
}

TEST(LinearBin, PointsOnNodesBinExactly) {
  Dataset d;
  // x exactly on nodes of an 11-bin grid over [0, 1].
  for (int i = 0; i <= 10; ++i) {
    d.x.push_back(i / 10.0);
    d.y.push_back(static_cast<double>(i));
  }
  const BinnedSample binned = kreg::linear_bin(d, 11);
  for (std::size_t j = 0; j < 11; ++j) {
    EXPECT_NEAR(binned.mass[j], 1.0, 1e-12) << "j=" << j;
    EXPECT_NEAR(binned.bin_mean(j), static_cast<double>(j), 1e-12);
  }
}

TEST(LinearBin, SplitsMassProportionally) {
  Dataset d{{0.25}, {4.0}};
  // Domain degenerate with one point; use two anchor points.
  d.x = {0.0, 0.25, 1.0};
  d.y = {0.0, 4.0, 0.0};
  const BinnedSample binned = kreg::linear_bin(d, 5);  // nodes at 0,.25,.5,.75,1
  EXPECT_NEAR(binned.mass[1], 1.0, 1e-12);  // 0.25 lands exactly on node 1
  EXPECT_NEAR(binned.y_mass[1], 4.0, 1e-12);
}

TEST(LinearBin, ValidatesInputs) {
  Dataset empty;
  EXPECT_THROW(kreg::linear_bin(empty, 8), std::invalid_argument);
  Dataset constant{{0.5, 0.5}, {1.0, 2.0}};
  EXPECT_THROW(kreg::linear_bin(constant, 8), std::invalid_argument);
  Dataset ok{{0.0, 1.0}, {1.0, 2.0}};
  EXPECT_THROW(kreg::linear_bin(ok, 1), std::invalid_argument);
}

TEST(BinnedNw, ApproximatesExactEstimatorClosely) {
  Stream s(2);
  const Dataset d = kreg::data::paper_dgp(2000, s);
  const BinnedSample binned = kreg::linear_bin(d, 400);
  const kreg::NadarayaWatson exact(d, 0.08);
  for (double x = 0.1; x < 0.95; x += 0.1) {
    const double approx = kreg::binned_nw_evaluate(binned, x, 0.08);
    EXPECT_NEAR(approx, exact(x), 0.02 * std::max(1.0, std::abs(exact(x))))
        << "x=" << x;
  }
}

TEST(BinnedNw, NanOutsideSupport) {
  Dataset d{{0.0, 1.0}, {1.0, 2.0}};
  const BinnedSample binned = kreg::linear_bin(d, 8);
  EXPECT_TRUE(std::isnan(kreg::binned_nw_evaluate(binned, 0.5, 0.05)));
}

TEST(BinnedCv, ProfileTracksExactProfileShape) {
  Stream s(3);
  const Dataset d = kreg::data::paper_dgp(1500, s);
  const BandwidthGrid grid(0.02, 0.5, 25);
  const auto exact = kreg::SortedGridSelector().select(d, grid);
  const auto binned = kreg::binned_select(d, grid, 400);

  // The binned argmin should land within a couple of grid cells of the
  // exact argmin, and the profiles should correlate strongly.
  const double cell = grid[1] - grid[0];
  EXPECT_NEAR(binned.bandwidth, exact.bandwidth, 2.5 * cell);
  for (std::size_t b = 2; b < grid.size(); ++b) {
    // Relative shape: both profiles should rank far-apart bandwidths the
    // same way (compare each to the profile 2 cells earlier).
    const bool exact_up = exact.scores[b] > exact.scores[b - 2];
    const bool binned_up = binned.scores[b] > binned.scores[b - 2];
    if (std::abs(exact.scores[b] - exact.scores[b - 2]) >
        0.05 * exact.scores[b]) {
      EXPECT_EQ(binned_up, exact_up) << "b=" << b;
    }
  }
}

TEST(BinnedCv, MoreBinsImproveAgreement) {
  Stream s(4);
  const Dataset d = kreg::data::paper_dgp(1200, s);
  const BandwidthGrid grid(0.02, 0.4, 20);
  const auto exact = kreg::SortedGridSelector().select(d, grid);
  const auto coarse = kreg::binned_select(d, grid, 50);
  const auto fine = kreg::binned_select(d, grid, 800);
  const double err_coarse = std::abs(coarse.cv_score - exact.cv_score);
  const double err_fine = std::abs(fine.cv_score - exact.cv_score);
  EXPECT_LE(err_fine, err_coarse + 1e-12);
}

TEST(BinnedCv, GaussianKernelSupported) {
  Stream s(5);
  const Dataset d = kreg::data::paper_dgp(500, s);
  const BandwidthGrid grid(0.02, 0.5, 10);
  const auto r = kreg::binned_select(d, grid, 200, KernelType::kGaussian);
  EXPECT_EQ(r.scores.size(), grid.size());
  EXPECT_GT(r.bandwidth, 0.0);
}

TEST(BinnedCv, ValidatesGrid) {
  Stream s(6);
  const Dataset d = kreg::data::paper_dgp(100, s);
  const BinnedSample binned = kreg::linear_bin(d, 32);
  const std::vector<double> bad = {0.0, 0.1};
  EXPECT_THROW(kreg::binned_cv_profile(binned, bad), std::invalid_argument);
}

}  // namespace
