// Tests for kernel weighting functions: values, support, normalization (by
// numeric integration), traits, and the sweep-polynomial representation the
// fast grid search relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "core/kernels.hpp"

namespace {

using kreg::KernelType;

double integrate(double (*f)(KernelType, double), KernelType kernel,
                 double lo, double hi, int steps = 200000) {
  // Simple midpoint rule; plenty for 1e-6 checks on smooth kernels.
  const double dx = (hi - lo) / steps;
  double acc = 0.0;
  for (int i = 0; i < steps; ++i) {
    acc += f(kernel, lo + (i + 0.5) * dx);
  }
  return acc * dx;
}

double kernel_sq(KernelType k, double u) {
  const double v = kreg::kernel_value(k, u);
  return v * v;
}

double kernel_u2(KernelType k, double u) {
  return u * u * kreg::kernel_value(k, u);
}

class KernelPropertyTest : public ::testing::TestWithParam<KernelType> {};

TEST_P(KernelPropertyTest, IntegratesToOne) {
  const KernelType k = GetParam();
  const double lo = kreg::is_compact(k) ? -1.0 : -10.0;
  EXPECT_NEAR(integrate(kreg::kernel_value, k, lo, -lo), 1.0, 1e-4)
      << to_string(k);
}

TEST_P(KernelPropertyTest, NonNegativeAndSymmetric) {
  const KernelType k = GetParam();
  for (double u = -3.0; u <= 3.0; u += 0.01) {
    const double v = kreg::kernel_value(k, u);
    EXPECT_GE(v, 0.0);
    EXPECT_NEAR(v, kreg::kernel_value(k, -u), 1e-15);
  }
}

TEST_P(KernelPropertyTest, CompactSupportHonored) {
  const KernelType k = GetParam();
  if (!kreg::is_compact(k)) {
    EXPECT_GT(kreg::kernel_value(k, 5.0), 0.0);  // Gaussian never vanishes
    return;
  }
  EXPECT_EQ(kreg::kernel_value(k, 1.0001), 0.0);
  EXPECT_EQ(kreg::kernel_value(k, -1.0001), 0.0);
}

TEST_P(KernelPropertyTest, RoughnessMatchesNumericIntegral) {
  const KernelType k = GetParam();
  const double lo = kreg::is_compact(k) ? -1.0 : -10.0;
  EXPECT_NEAR(integrate(kernel_sq, k, lo, -lo), kreg::roughness(k), 1e-4)
      << to_string(k);
}

TEST_P(KernelPropertyTest, SecondMomentMatchesNumericIntegral) {
  const KernelType k = GetParam();
  const double lo = kreg::is_compact(k) ? -1.0 : -12.0;
  EXPECT_NEAR(integrate(kernel_u2, k, lo, -lo), kreg::second_moment(k), 1e-4)
      << to_string(k);
}

TEST_P(KernelPropertyTest, SweepPolynomialReproducesKernelOnSupport) {
  const KernelType k = GetParam();
  if (!kreg::is_sweepable(k)) {
    EXPECT_THROW(kreg::sweep_polynomial(k), std::invalid_argument);
    return;
  }
  const auto poly = kreg::sweep_polynomial(k);
  for (double u = 0.0; u <= 1.0; u += 0.001) {
    double acc = 0.0;
    double pw = 1.0;
    for (std::size_t m = 0; m <= poly.max_power; ++m) {
      acc += poly.coeff[m] * pw;
      pw *= u;
    }
    ASSERT_NEAR(acc, kreg::kernel_value(k, u), 1e-12)
        << to_string(k) << " at u=" << u;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelPropertyTest,
                         ::testing::ValuesIn(kreg::kAllKernels),
                         [](const auto& info) {
                           return std::string(kreg::to_string(info.param));
                         });

TEST(Kernels, EpanechnikovMatchesPaperFormula) {
  // K(u) = 0.75 (1 - u²) 1{|u| <= 1}  (paper Eq. 3)
  EXPECT_DOUBLE_EQ(kreg::kernel_value(KernelType::kEpanechnikov, 0.0), 0.75);
  EXPECT_DOUBLE_EQ(kreg::kernel_value(KernelType::kEpanechnikov, 0.5),
                   0.75 * 0.75);
  EXPECT_DOUBLE_EQ(kreg::kernel_value(KernelType::kEpanechnikov, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(kreg::kernel_value(KernelType::kEpanechnikov, 2.0), 0.0);
}

TEST(Kernels, SweepabilityMatchesFootnoteOne) {
  // Footnote 1: the sorting strategy covers Epanechnikov, Uniform and
  // Triangular; the Gaussian has no exclusion indicator. (We extend the
  // sweep to Biweight/Triweight; Cosine is compact but non-polynomial.)
  EXPECT_TRUE(kreg::is_sweepable(KernelType::kEpanechnikov));
  EXPECT_TRUE(kreg::is_sweepable(KernelType::kUniform));
  EXPECT_TRUE(kreg::is_sweepable(KernelType::kTriangular));
  EXPECT_TRUE(kreg::is_sweepable(KernelType::kBiweight));
  EXPECT_TRUE(kreg::is_sweepable(KernelType::kTriweight));
  EXPECT_FALSE(kreg::is_sweepable(KernelType::kCosine));
  EXPECT_FALSE(kreg::is_sweepable(KernelType::kGaussian));
}

TEST(Kernels, NamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (KernelType k : kreg::kAllKernels) {
    const auto name = kreg::to_string(k);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << name;
  }
}

}  // namespace
