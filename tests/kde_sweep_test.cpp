// Tests for the sorted-sweep KDE LSCV: agreement with the direct O(k·n²)
// criterion, parallel determinism, and selection equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "core/grid.hpp"
#include "core/kde.hpp"
#include "core/kde_sweep.hpp"
#include "rng/stream.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::KernelType;
using kreg::rng::Stream;

std::vector<double> sample(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = s.uniform() < 0.5 ? s.gaussian(-1.0, 0.4) : s.gaussian(1.0, 0.6);
  }
  return xs;
}

class KdeSweepKernelTest : public ::testing::TestWithParam<KernelType> {};

TEST_P(KdeSweepKernelTest, ProfileMatchesDirectLscv) {
  const KernelType kernel = GetParam();
  const std::vector<double> xs = sample(250, 61);
  const BandwidthGrid grid(0.05, 2.0, 30);
  const auto swept = kreg::kde_sweep_lscv_profile(xs, grid.values(), kernel);
  ASSERT_EQ(swept.size(), grid.size());
  for (std::size_t b = 0; b < grid.size(); ++b) {
    const double direct = kreg::kde_lscv_score(xs, grid[b], kernel);
    ASSERT_NEAR(swept[b], direct, 1e-10 * std::max(1.0, std::abs(direct)))
        << to_string(kernel) << " h=" << grid[b];
  }
}

INSTANTIATE_TEST_SUITE_P(SweepableKernels, KdeSweepKernelTest,
                         ::testing::Values(KernelType::kEpanechnikov,
                                           KernelType::kUniform),
                         [](const auto& info) {
                           return std::string(kreg::to_string(info.param));
                         });

TEST(KdeSweep, ParallelMatchesSequential) {
  const std::vector<double> xs = sample(400, 62);
  const BandwidthGrid grid(0.05, 1.5, 40);
  const auto seq = kreg::kde_sweep_lscv_profile(xs, grid.values(),
                                                KernelType::kEpanechnikov);
  const auto par = kreg::kde_sweep_lscv_profile_parallel(
      xs, grid.values(), KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(par[b], seq[b], 1e-11 * std::max(1.0, std::abs(seq[b])));
  }
}

TEST(KdeSweep, SelectionMatchesDirectGridSelect) {
  const std::vector<double> xs = sample(300, 63);
  const BandwidthGrid grid(0.05, 1.5, 25);
  const auto direct = kreg::kde_select_grid(xs, grid);
  const auto swept = kreg::kde_select_sweep(xs, grid);
  EXPECT_DOUBLE_EQ(swept.bandwidth, direct.bandwidth);
  EXPECT_NEAR(swept.cv_score, direct.cv_score,
              1e-10 * std::max(1.0, std::abs(direct.cv_score)));
}

TEST(KdeSweep, RejectsUnsupportedKernels) {
  const std::vector<double> xs = sample(50, 64);
  const BandwidthGrid grid(0.1, 1.0, 5);
  for (KernelType kernel :
       {KernelType::kGaussian, KernelType::kTriangular,
        KernelType::kBiweight, KernelType::kCosine}) {
    EXPECT_FALSE(kreg::is_kde_sweepable(kernel));
    EXPECT_THROW(kreg::kde_sweep_lscv_profile(xs, grid.values(), kernel),
                 std::invalid_argument);
  }
}

TEST(KdeSweep, RejectsBadInputs) {
  const std::vector<double> one = {0.5};
  const BandwidthGrid grid(0.1, 1.0, 5);
  EXPECT_THROW(kreg::kde_sweep_lscv_profile(one, grid.values(),
                                            KernelType::kEpanechnikov),
               std::invalid_argument);
  const std::vector<double> xs = sample(20, 65);
  const std::vector<double> descending = {0.5, 0.1};
  EXPECT_THROW(
      kreg::kde_sweep_lscv_profile(xs, descending, KernelType::kEpanechnikov),
      std::invalid_argument);
}

TEST(KdeSweep, DuplicatePointsHandled) {
  std::vector<double> xs = {0.5, 0.5, 0.5, 1.0, 1.5};
  const BandwidthGrid grid(0.2, 2.0, 8);
  const auto swept = kreg::kde_sweep_lscv_profile(xs, grid.values(),
                                                  KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    const double direct = kreg::kde_lscv_score(xs, grid[b]);
    EXPECT_NEAR(swept[b], direct, 1e-12);
  }
}

TEST(KdeSweep, WideGridCoversFullAdmission) {
  // At large h every pair is admitted in both sweeps; still must match.
  const std::vector<double> xs = sample(100, 66);
  const std::vector<double> grid = {0.1, 5.0, 50.0};
  const auto swept =
      kreg::kde_sweep_lscv_profile(xs, grid, KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    const double direct = kreg::kde_lscv_score(xs, grid[b]);
    EXPECT_NEAR(swept[b], direct, 1e-10 * std::max(1.0, std::abs(direct)));
  }
}

// ---- Window LSCV sweep (global sort + two-pointer windows) -----------------

class KdeWindowKernelTest : public ::testing::TestWithParam<KernelType> {};

TEST_P(KdeWindowKernelTest, ProfileMatchesDirectLscv) {
  const KernelType kernel = GetParam();
  const std::vector<double> xs = sample(250, 71);
  const BandwidthGrid grid(0.05, 2.0, 30);
  const auto windowed =
      kreg::kde_window_lscv_profile(xs, grid.values(), kernel);
  ASSERT_EQ(windowed.size(), grid.size());
  for (std::size_t b = 0; b < grid.size(); ++b) {
    const double direct = kreg::kde_lscv_score(xs, grid[b], kernel);
    ASSERT_NEAR(windowed[b], direct, 1e-10 * std::max(1.0, std::abs(direct)))
        << to_string(kernel) << " h=" << grid[b];
  }
}

INSTANTIATE_TEST_SUITE_P(SweepableKernels, KdeWindowKernelTest,
                         ::testing::Values(KernelType::kEpanechnikov,
                                           KernelType::kUniform),
                         [](const auto& info) {
                           return std::string(kreg::to_string(info.param));
                         });

TEST(KdeWindow, MatchesPerRowSweepProfile) {
  const std::vector<double> xs = sample(400, 72);
  const BandwidthGrid grid(0.05, 1.5, 40);
  const auto per_row = kreg::kde_sweep_lscv_profile(xs, grid.values(),
                                                    KernelType::kEpanechnikov);
  const auto windowed = kreg::kde_window_lscv_profile(
      xs, grid.values(), KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(windowed[b], per_row[b],
                1e-11 * std::max(1.0, std::abs(per_row[b])));
  }
}

TEST(KdeWindow, ParallelMatchesSequential) {
  const std::vector<double> xs = sample(400, 73);
  const BandwidthGrid grid(0.05, 1.5, 40);
  const auto seq = kreg::kde_window_lscv_profile(xs, grid.values(),
                                                 KernelType::kEpanechnikov);
  const auto par = kreg::kde_window_lscv_profile_parallel(
      xs, grid.values(), KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(par[b], seq[b], 1e-11 * std::max(1.0, std::abs(seq[b])));
  }
}

TEST(KdeWindow, SelectionMatchesSweepSelect) {
  const std::vector<double> xs = sample(300, 74);
  const BandwidthGrid grid(0.05, 1.5, 25);
  const auto swept = kreg::kde_select_sweep(xs, grid);
  const auto windowed = kreg::kde_select_window(xs, grid);
  EXPECT_DOUBLE_EQ(windowed.bandwidth, swept.bandwidth);
  EXPECT_NE(windowed.method.find("kde-lscv-window"), std::string::npos);
}

TEST(KdeWindow, DuplicatePointsAndWideGrid) {
  std::vector<double> xs = {0.5, 0.5, 0.5, 1.0, 1.5};
  const std::vector<double> grid = {0.2, 1.0, 5.0, 50.0};
  const auto windowed =
      kreg::kde_window_lscv_profile(xs, grid, KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    const double direct = kreg::kde_lscv_score(xs, grid[b]);
    EXPECT_NEAR(windowed[b], direct, 1e-12);
  }
}

TEST(KdeWindow, RejectsBadInputs) {
  const std::vector<double> one = {0.5};
  const BandwidthGrid grid(0.1, 1.0, 5);
  EXPECT_THROW(kreg::kde_window_lscv_profile(one, grid.values(),
                                             KernelType::kEpanechnikov),
               std::invalid_argument);
  const std::vector<double> xs = sample(20, 75);
  const std::vector<double> duplicate = {0.1, 0.1, 0.5};
  EXPECT_THROW(kreg::kde_window_lscv_profile(xs, duplicate,
                                             KernelType::kEpanechnikov),
               std::invalid_argument);
  EXPECT_THROW(kreg::kde_window_lscv_profile(xs, grid.values(),
                                             KernelType::kGaussian),
               std::invalid_argument);
}

}  // namespace
