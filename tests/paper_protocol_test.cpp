// Integration test of the paper's §IV-C correctness protocol at miniature
// scale: "the sequential C code and the CUDA code were checked against each
// other to ensure that they produced identical results under many different
// sets of inputs", plus the R-range sanity check. Every selector in the
// library is run on the same inputs across a sweep of (n, k, seed)
// configurations and their answers are reconciled.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include "core/kreg.hpp"
#include "spmd/device.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::SelectionResult;
using kreg::data::Dataset;
using kreg::rng::Stream;

using ProtocolParam = std::tuple<std::size_t /*n*/, std::size_t /*k*/,
                                 std::uint64_t /*seed*/>;

class PaperProtocolTest : public ::testing::TestWithParam<ProtocolParam> {};

TEST_P(PaperProtocolTest, AllGridProgramsProduceIdenticalResults) {
  const auto [n, k, seed] = GetParam();
  Stream stream(seed);
  const Dataset data = kreg::data::paper_dgp(n, stream);
  const BandwidthGrid grid = BandwidthGrid::default_for(data, k);

  kreg::spmd::Device device;
  kreg::SpmdSelectorConfig spmd_cfg;
  spmd_cfg.precision = kreg::Precision::kDouble;
  kreg::spmd::Device dev_a;
  kreg::spmd::Device dev_b;

  // Every grid-exhaustive selector in the library.
  std::vector<SelectionResult> results;
  results.push_back(kreg::NaiveGridSelector().select(data, grid));
  results.push_back(kreg::DenseGridSelector(kreg::KernelType::kEpanechnikov)
                        .select(data, grid));
  results.push_back(kreg::SortedGridSelector().select(data, grid));
  results.push_back(kreg::ParallelSortedGridSelector().select(data, grid));
  results.push_back(kreg::SpmdGridSelector(device, spmd_cfg).select(data, grid));
  results.push_back(kreg::MultiDeviceGridSelector({&dev_a, &dev_b}, spmd_cfg)
                        .select(data, grid));

  const SelectionResult& reference = results.front();
  for (std::size_t r = 1; r < results.size(); ++r) {
    EXPECT_DOUBLE_EQ(results[r].bandwidth, reference.bandwidth)
        << results[r].method;
    ASSERT_EQ(results[r].scores.size(), reference.scores.size())
        << results[r].method;
    for (std::size_t b = 0; b < reference.scores.size(); ++b) {
      EXPECT_NEAR(results[r].scores[b], reference.scores[b],
                  1e-9 * std::max(1.0, reference.scores[b]))
          << results[r].method << " bandwidth index " << b;
    }
  }

  // The optimizer baselines (Programs 1-2) don't guarantee the global grid
  // minimum, but on the paper DGP's smooth surface they must land in the
  // same neighbourhood — the paper's cross-language "similar ranges" check.
  const auto optimized = kreg::CvOptimizerSelector().select(data, grid);
  EXPECT_GT(optimized.bandwidth, 0.0);
  EXPECT_LE(optimized.bandwidth, grid.max() * 1.0000001);
  // "Similar ranges", not equality: at small n the CV surface grows local
  // dips and a single-start optimizer may settle in one (the paper's own
  // §III caveat), so allow up to a factor-2 CV gap.
  EXPECT_LE(optimized.cv_score, 2.0 * reference.cv_score + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, PaperProtocolTest,
    ::testing::Values(ProtocolParam{50, 5, 1}, ProtocolParam{50, 50, 2},
                      ProtocolParam{100, 10, 3}, ProtocolParam{100, 100, 4},
                      ProtocolParam{250, 25, 5}, ProtocolParam{500, 50, 6},
                      ProtocolParam{97, 13, 7},  // primes: odd partitions
                      ProtocolParam{512, 128, 8}),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

TEST(PaperProtocol, RefinementAgreesWithDenseGridAcrossSelectors) {
  // The refinement driver must work identically over any grid selector.
  Stream stream(99);
  const Dataset data = kreg::data::paper_dgp(300, stream);
  const BandwidthGrid initial = BandwidthGrid::default_for(data, 16);

  kreg::RefineOptions opts;
  opts.k_per_round = 16;
  opts.rounds = 3;
  opts.shrink = 0.3;

  const auto via_sorted =
      kreg::refine_select(kreg::SortedGridSelector(), data, initial, opts);
  kreg::spmd::Device device;
  kreg::SpmdSelectorConfig cfg;
  cfg.precision = kreg::Precision::kDouble;
  const auto via_device = kreg::refine_select(
      kreg::SpmdGridSelector(device, cfg), data, initial, opts);

  EXPECT_NEAR(via_device.bandwidth, via_sorted.bandwidth, 1e-9);
  EXPECT_NEAR(via_device.cv_score, via_sorted.cv_score,
              1e-9 * std::max(1.0, via_sorted.cv_score));
}

TEST(PaperProtocol, SelectedBandwidthStableAcrossSampleDraws) {
  // The paper's cross-program check used *different* random draws and
  // verified "optimal bandwidths in similar ranges". Five independent draws
  // at n = 400 should select bandwidths within a factor ~3 band.
  double lo = 1e300;
  double hi = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Stream stream(seed * 1000);
    const Dataset data = kreg::data::paper_dgp(400, stream);
    const BandwidthGrid grid = BandwidthGrid::default_for(data, 100);
    const auto r = kreg::SortedGridSelector().select(data, grid);
    lo = std::min(lo, r.bandwidth);
    hi = std::max(hi, r.bandwidth);
  }
  EXPECT_LE(hi / lo, 3.0);
}

}  // namespace
