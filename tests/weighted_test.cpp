// Tests for observation-weighted kernel regression: unit weights recover
// the unweighted criterion, frequency semantics (weight 2 == duplicate),
// zero-weight exclusion, and the weighted sweep against the direct
// weighted CV.
#include <gtest/gtest.h>

#include <cmath>

#include "core/grid.hpp"
#include "core/loocv.hpp"
#include "core/nadaraya_watson.hpp"
#include "core/selectors.hpp"
#include "core/weighted.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::KernelType;
using kreg::data::Dataset;
using kreg::rng::Stream;

Dataset paper_data(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  return kreg::data::paper_dgp(n, s);
}

TEST(Weighted, UnitWeightsRecoverUnweightedEverything) {
  const Dataset d = paper_data(200, 1);
  const std::vector<double> ones(d.size(), 1.0);
  for (double h : {0.05, 0.2}) {
    EXPECT_NEAR(kreg::weighted_cv_score(d, ones, h), kreg::cv_score(d, h),
                1e-12);
    const kreg::NadarayaWatson g(d, h);
    for (double x : {0.2, 0.5, 0.8}) {
      EXPECT_NEAR(kreg::weighted_nw_evaluate(d, ones, x, h), g(x), 1e-12);
    }
  }
}

TEST(Weighted, ConstantWeightScalingIsInvariant) {
  // CV_w is scale-free in the weights: 7·w gives the same criterion.
  const Dataset d = paper_data(150, 2);
  std::vector<double> base(d.size());
  Stream s(3);
  for (auto& w : base) {
    w = s.uniform(0.5, 2.0);
  }
  std::vector<double> scaled = base;
  for (auto& w : scaled) {
    w *= 7.0;
  }
  EXPECT_NEAR(kreg::weighted_cv_score(d, base, 0.1),
              kreg::weighted_cv_score(d, scaled, 0.1), 1e-12);
}

TEST(Weighted, WeightTwoEqualsDuplicateObservation) {
  // Frequency semantics: doubling observation 5's weight must equal
  // physically duplicating it (with unit weights) — in both the CV score
  // and the fitted values.
  const Dataset d = paper_data(60, 4);
  std::vector<double> weights(d.size(), 1.0);
  weights[5] = 2.0;

  Dataset duplicated = d;
  duplicated.x.push_back(d.x[5]);
  duplicated.y.push_back(d.y[5]);
  const std::vector<double> unit(duplicated.size(), 1.0);

  for (double h : {0.05, 0.15, 0.4}) {
    // Fitted curves agree exactly.
    for (double x : {0.1, 0.5, 0.9}) {
      EXPECT_NEAR(kreg::weighted_nw_evaluate(d, weights, x, h),
                  kreg::weighted_nw_evaluate(duplicated, unit, x, h), 1e-12)
          << "h=" << h << " x=" << x;
    }
  }
  // Note the CV criteria differ by construction: duplicating changes the
  // leave-one-out sets (each copy leaves the other in), so only the
  // estimator equivalence is exact. Document by checking they are *close*
  // but not asserting equality.
}

TEST(Weighted, ZeroWeightObservationIsInvisible) {
  const Dataset d = paper_data(80, 5);
  std::vector<double> weights(d.size(), 1.0);
  weights[10] = 0.0;

  Dataset without = d;
  without.x.erase(without.x.begin() + 10);
  without.y.erase(without.y.begin() + 10);
  const std::vector<double> unit(without.size(), 1.0);

  for (double x : {0.2, 0.6}) {
    EXPECT_NEAR(kreg::weighted_nw_evaluate(d, weights, x, 0.2),
                kreg::weighted_nw_evaluate(without, unit, x, 0.2), 1e-12);
  }
  // CV: the zero-weight point contributes no residual and no kernel mass.
  EXPECT_NEAR(kreg::weighted_cv_score(d, weights, 0.2),
              kreg::weighted_cv_score(without, unit, 0.2), 1e-12);
}

TEST(Weighted, SweepMatchesDirectAcrossKernels) {
  const Dataset d = paper_data(150, 6);
  Stream s(7);
  std::vector<double> weights(d.size());
  for (auto& w : weights) {
    w = s.uniform(0.1, 3.0);
  }
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 15);
  for (KernelType kernel :
       {KernelType::kEpanechnikov, KernelType::kUniform,
        KernelType::kTriangular, KernelType::kBiweight}) {
    const auto swept =
        kreg::weighted_sweep_cv_profile(d, weights, grid.values(), kernel);
    for (std::size_t b = 0; b < grid.size(); ++b) {
      const double direct =
          kreg::weighted_cv_score(d, weights, grid[b], kernel);
      ASSERT_NEAR(swept[b], direct, 1e-9 * std::max(1.0, direct))
          << to_string(kernel) << " b=" << b;
    }
  }
}

TEST(Weighted, SelectPicksProfileArgmin) {
  const Dataset d = paper_data(300, 8);
  Stream s(9);
  std::vector<double> weights(d.size());
  for (auto& w : weights) {
    w = s.uniform(0.5, 1.5);
  }
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 40);
  const auto r = kreg::weighted_select(d, weights, grid);
  EXPECT_EQ(r.scores.size(), grid.size());
  double best = r.scores[0];
  for (double v : r.scores) {
    best = std::min(best, v);
  }
  EXPECT_DOUBLE_EQ(best, r.cv_score);
  EXPECT_NE(r.method.find("weighted"), std::string::npos);
}

TEST(Weighted, UpweightedRegionDominatesSelection) {
  // Give one half of the domain overwhelming weight: the selected
  // bandwidth must match what selection on that half alone would choose
  // (approximately — the downweighted half still contributes kernel mass).
  const Dataset d = paper_data(400, 10);
  std::vector<double> weights(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    weights[i] = d.x[i] < 0.5 ? 1000.0 : 0.001;
  }
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 60);
  const auto weighted = kreg::weighted_select(d, weights, grid);

  Dataset left_half;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d.x[i] < 0.5) {
      left_half.x.push_back(d.x[i]);
      left_half.y.push_back(d.y[i]);
    }
  }
  const auto left_only = kreg::SortedGridSelector().select(left_half, grid);
  EXPECT_NEAR(weighted.bandwidth, left_only.bandwidth,
              3.0 * (grid[1] - grid[0]));
}

TEST(Weighted, ValidatesInputs) {
  const Dataset d = paper_data(20, 11);
  std::vector<double> short_weights(d.size() - 1, 1.0);
  EXPECT_THROW(kreg::weighted_cv_score(d, short_weights, 0.1),
               std::invalid_argument);
  std::vector<double> negative(d.size(), 1.0);
  negative[0] = -0.5;
  EXPECT_THROW(kreg::weighted_cv_score(d, negative, 0.1),
               std::invalid_argument);
  const std::vector<double> zeros(d.size(), 0.0);
  EXPECT_THROW(kreg::weighted_cv_score(d, zeros, 0.1), std::invalid_argument);
  const std::vector<double> ones(d.size(), 1.0);
  EXPECT_THROW(kreg::weighted_cv_score(d, ones, 0.0), std::invalid_argument);
  const BandwidthGrid grid(0.1, 1.0, 4);
  EXPECT_THROW(kreg::weighted_select(d, ones, grid, KernelType::kGaussian),
               std::invalid_argument);
}

}  // namespace
