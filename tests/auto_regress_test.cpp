// Tests for the one-call auto_regress facade.
#include <gtest/gtest.h>

#include <cmath>

#include "core/auto_regress.hpp"
#include "core/selectors.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"
#include "spmd/device.hpp"

namespace {

using kreg::AutoOptions;
using kreg::auto_regress;
using kreg::KernelType;
using kreg::data::Dataset;
using kreg::rng::Stream;

Dataset paper_data(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  return kreg::data::paper_dgp(n, s);
}

TEST(AutoRegress, MatchesExplicitPipeline) {
  const Dataset d = paper_data(400, 1);
  AutoOptions opts;
  opts.backend = AutoOptions::Backend::kSequential;
  const auto fitted = auto_regress(d, opts);

  const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(d, 200);
  const auto manual = kreg::WindowSweepSelector().select(d, grid);
  EXPECT_DOUBLE_EQ(fitted.bandwidth(), manual.bandwidth);
  const kreg::NadarayaWatson nw(d, manual.bandwidth);
  EXPECT_DOUBLE_EQ(fitted(0.5), nw(0.5));
}

TEST(AutoRegress, PerRowSortAlgorithmMatchesPaperPipeline) {
  // algorithm = kPerRowSort routes to the paper-faithful Program 3.
  const Dataset d = paper_data(400, 1);
  AutoOptions opts;
  opts.backend = AutoOptions::Backend::kSequential;
  opts.algorithm = kreg::SweepAlgorithm::kPerRowSort;
  const auto fitted = auto_regress(d, opts);

  const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(d, 200);
  const auto manual = kreg::SortedGridSelector().select(d, grid);
  EXPECT_DOUBLE_EQ(fitted.bandwidth(), manual.bandwidth);
  EXPECT_NE(fitted.selection().method.find("sorted-grid"), std::string::npos);
}

TEST(AutoRegress, WindowAndPerRowAlgorithmsSelectSameBandwidth) {
  const Dataset d = paper_data(500, 15);
  AutoOptions window_opts;
  AutoOptions per_row_opts;
  per_row_opts.algorithm = kreg::SweepAlgorithm::kPerRowSort;
  EXPECT_DOUBLE_EQ(auto_regress(d, window_opts).bandwidth(),
                   auto_regress(d, per_row_opts).bandwidth());
}

TEST(AutoRegress, BackendsAgreeOnSelection) {
  const Dataset d = paper_data(600, 2);
  AutoOptions seq;
  seq.backend = AutoOptions::Backend::kSequential;
  AutoOptions par;
  par.backend = AutoOptions::Backend::kParallel;
  kreg::spmd::Device device;
  AutoOptions dev;
  dev.backend = AutoOptions::Backend::kDevice;
  dev.device = &device;

  const double h_seq = auto_regress(d, seq).bandwidth();
  const double h_par = auto_regress(d, par).bandwidth();
  const double h_dev = auto_regress(d, dev).bandwidth();
  EXPECT_DOUBLE_EQ(h_seq, h_par);
  EXPECT_DOUBLE_EQ(h_seq, h_dev);  // float device path, same grid argmin
}

TEST(AutoRegress, AutoHeuristicPicksBySampleSize) {
  // Behavioural check only: both paths must succeed and agree.
  const Dataset small_data = paper_data(200, 3);
  const Dataset large_data = paper_data(1500, 4);
  EXPECT_NO_THROW(auto_regress(small_data));
  EXPECT_NO_THROW(auto_regress(large_data));
}

TEST(AutoRegress, AutoWithDeviceUsesItForLargeSamples) {
  // The window sweep's sequential/parallel crossover sits near n ≈ 4,000,
  // so the device only engages above it.
  kreg::spmd::Device device;
  AutoOptions opts;
  opts.device = &device;
  const Dataset d = paper_data(5000, 5);
  (void)auto_regress(d, opts);
  EXPECT_GT(device.stats().kernel_launches, 0u);  // device actually ran
}

TEST(AutoRegress, AutoWithDevicePerRowKeepsPaperCrossover) {
  // The per-row-sort algorithm keeps the paper's §V crossover near 1,000.
  kreg::spmd::Device device;
  AutoOptions opts;
  opts.device = &device;
  opts.algorithm = kreg::SweepAlgorithm::kPerRowSort;
  const Dataset d = paper_data(1500, 5);
  (void)auto_regress(d, opts);
  EXPECT_GT(device.stats().kernel_launches, 0u);
}

TEST(AutoRegress, GaussianFallsBackToDenseSearch) {
  const Dataset d = paper_data(300, 6);
  AutoOptions opts;
  opts.kernel = KernelType::kGaussian;
  const auto fitted = auto_regress(d, opts);
  EXPECT_NE(fitted.selection().method.find("dense-grid"), std::string::npos);
}

TEST(AutoRegress, GaussianOnDeviceThrows) {
  kreg::spmd::Device device;
  AutoOptions opts;
  opts.kernel = KernelType::kGaussian;
  opts.backend = AutoOptions::Backend::kDevice;
  opts.device = &device;
  EXPECT_THROW(auto_regress(paper_data(100, 7), opts), std::invalid_argument);
}

TEST(AutoRegress, DeviceBackendWithoutDeviceThrows) {
  AutoOptions opts;
  opts.backend = AutoOptions::Backend::kDevice;
  EXPECT_THROW(auto_regress(paper_data(100, 8), opts), std::invalid_argument);
}

TEST(AutoRegress, RefineImprovesOrMatches) {
  const Dataset d = paper_data(500, 9);
  AutoOptions plain;
  plain.backend = AutoOptions::Backend::kSequential;
  AutoOptions refined = plain;
  refined.refine = true;
  const auto a = auto_regress(d, plain);
  const auto b = auto_regress(d, refined);
  EXPECT_LE(b.selection().cv_score, a.selection().cv_score + 1e-12);
  EXPECT_NE(b.selection().method.find("+refine"), std::string::npos);
}

TEST(AutoRegress, CurveAndBandExposed) {
  const Dataset d = paper_data(400, 10);
  const auto fitted = auto_regress(d);
  const auto curve = fitted.curve(33);
  EXPECT_EQ(curve.x.size(), 33u);
  const auto band = fitted.confidence_band(25, 0.9);
  EXPECT_EQ(band.x.size(), 25u);
  EXPECT_DOUBLE_EQ(band.bandwidth, fitted.bandwidth());
}

TEST(AutoRegress, ValidatesInputs) {
  Dataset tiny{{0.5}, {1.0}};
  EXPECT_THROW(auto_regress(tiny), std::invalid_argument);
  AutoOptions opts;
  opts.grid_size = 0;
  EXPECT_THROW(auto_regress(paper_data(100, 11), opts),
               std::invalid_argument);
}

}  // namespace
