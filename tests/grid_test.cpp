// Tests for the bandwidth grid: paper defaults, spacing, validation, the
// device constant-memory cap, and zooming — plus the shared grid
// validators every sweep front door calls (validate_bandwidth_grid and its
// neighbor-count analogue for the k-NN sweep), and the batched-sweep
// option parsers the CLI front door leans on (prefetch distance, σ
// policy).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/batched_sweep.hpp"
#include "core/grid.hpp"
#include "core/validate_grid.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"

namespace {

using kreg::BandwidthGrid;

TEST(BandwidthGrid, EvenSpacingWithEndpoints) {
  const BandwidthGrid g(0.1, 1.0, 10);
  ASSERT_EQ(g.size(), 10u);
  EXPECT_DOUBLE_EQ(g.min(), 0.1);
  EXPECT_DOUBLE_EQ(g.max(), 1.0);
  for (std::size_t i = 1; i < g.size(); ++i) {
    EXPECT_NEAR(g[i] - g[i - 1], 0.1, 1e-12);
  }
}

TEST(BandwidthGrid, SingleValueGridIsMax) {
  const BandwidthGrid g(0.2, 0.9, 1);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_DOUBLE_EQ(g[0], 0.9);
}

TEST(BandwidthGrid, RejectsInvalidArguments) {
  EXPECT_THROW(BandwidthGrid(0.1, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(BandwidthGrid(0.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(BandwidthGrid(-0.5, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(BandwidthGrid(2.0, 1.0, 5), std::invalid_argument);
}

TEST(BandwidthGrid, PaperDefaultSpansDomainOverKToDomain) {
  // Paper §IV: max = domain of X; min = domain / k. With X on [0,1] and
  // k = 50 the grid is {0.02, 0.04, ..., 1.0}.
  kreg::rng::Stream s(1);
  const auto data = kreg::data::paper_dgp(1000, s);
  const auto g = BandwidthGrid::default_for(data, 50);
  const double domain = data.x_domain();
  ASSERT_EQ(g.size(), 50u);
  EXPECT_NEAR(g.min(), domain / 50.0, 1e-12);
  EXPECT_NEAR(g.max(), domain, 1e-12);
  // Even spacing at domain/k steps.
  EXPECT_NEAR(g[1] - g[0], domain / 50.0, 1e-9);
}

TEST(BandwidthGrid, DefaultForDegenerateDomainThrows) {
  kreg::data::Dataset constant{{0.5, 0.5, 0.5}, {1.0, 2.0, 3.0}};
  EXPECT_THROW(BandwidthGrid::default_for(constant, 10), std::invalid_argument);
}

TEST(BandwidthGrid, DefaultForEmptyThrows) {
  kreg::data::Dataset empty;
  EXPECT_THROW(BandwidthGrid::default_for(empty, 10), std::invalid_argument);
}

TEST(BandwidthGrid, DeviceCapIsTwoThousandFortyEight) {
  EXPECT_EQ(kreg::kDeviceMaxBandwidths, 2048u);
  const BandwidthGrid fits(0.001, 1.0, 2048);
  EXPECT_TRUE(fits.fits_device());
  const BandwidthGrid too_big(0.001, 1.0, 2049);
  EXPECT_FALSE(too_big.fits_device());
}

TEST(BandwidthGrid, ZoomedProducesSubRange) {
  const BandwidthGrid g(0.1, 1.0, 10);
  const BandwidthGrid z = g.zoomed(0.3, 0.5, 5);
  EXPECT_EQ(z.size(), 5u);
  EXPECT_DOUBLE_EQ(z.min(), 0.3);
  EXPECT_DOUBLE_EQ(z.max(), 0.5);
}

TEST(BandwidthGrid, ValuesStrictlyIncreasing) {
  const BandwidthGrid g(1e-4, 2.0, 777);
  for (std::size_t i = 1; i < g.size(); ++i) {
    EXPECT_LT(g[i - 1], g[i]);
  }
}

TEST(BandwidthGrid, RejectsDegenerateSpacing) {
  // k so large the step underflows the range: consecutive values collide,
  // which would silently break the incremental sweeps' two-pointer logic.
  EXPECT_THROW(BandwidthGrid(1.0, 1.0 + 1e-13, 1000), std::invalid_argument);
  // A single-value grid over the same degenerate range is fine: {max}.
  EXPECT_NO_THROW(BandwidthGrid(1.0, 1.0 + 1e-13, 1));
}

TEST(ValidateBandwidthGrid, AcceptsAscendingPositive) {
  const std::vector<double> strict = {0.1, 0.2, 0.5};
  EXPECT_NO_THROW(kreg::validate_bandwidth_grid(strict, "test"));
  // Non-strict mode (the multivariate ray's scale multipliers) tolerates
  // duplicates; strict mode rejects them.
  const std::vector<double> ties = {0.1, 0.1, 0.5};
  EXPECT_NO_THROW(
      kreg::validate_bandwidth_grid(ties, "test", /*strict=*/false));
  EXPECT_THROW(kreg::validate_bandwidth_grid(ties, "test"),
               std::invalid_argument);
}

TEST(ValidateBandwidthGrid, RejectsEmptyNonPositiveAndDescending) {
  EXPECT_THROW(kreg::validate_bandwidth_grid({}, "test"),
               std::invalid_argument);
  const std::vector<double> zero = {0.0, 0.5};
  EXPECT_THROW(kreg::validate_bandwidth_grid(zero, "test"),
               std::invalid_argument);
  const std::vector<double> negative = {-0.2, 0.5};
  EXPECT_THROW(kreg::validate_bandwidth_grid(negative, "test"),
               std::invalid_argument);
  const std::vector<double> descending = {0.5, 0.2};
  EXPECT_THROW(kreg::validate_bandwidth_grid(descending, "test"),
               std::invalid_argument);
  EXPECT_THROW(
      kreg::validate_bandwidth_grid(descending, "test", /*strict=*/false),
      std::invalid_argument);
}

TEST(ValidateBandwidthGrid, ErrorCarriesContext) {
  try {
    kreg::validate_bandwidth_grid({}, "window_cv_profile");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("window_cv_profile"),
              std::string::npos);
  }
}

TEST(ValidateNeighborGrid, AcceptsFullRange) {
  const std::vector<std::size_t> grid = {1, 2, 5, 9};
  EXPECT_NO_THROW(kreg::validate_neighbor_grid(grid, 10, "test"));
  // The extremes: a single k = 1, and k = n - 1 exactly.
  const std::vector<std::size_t> one = {1};
  EXPECT_NO_THROW(kreg::validate_neighbor_grid(one, 2, "test"));
  const std::vector<std::size_t> edge = {9};
  EXPECT_NO_THROW(kreg::validate_neighbor_grid(edge, 10, "test"));
}

TEST(ValidateNeighborGrid, RejectsEmptyZeroAndNonIncreasing) {
  EXPECT_THROW(kreg::validate_neighbor_grid({}, 10, "test"),
               std::invalid_argument);
  const std::vector<std::size_t> zero = {0, 3};
  EXPECT_THROW(kreg::validate_neighbor_grid(zero, 10, "test"),
               std::invalid_argument);
  const std::vector<std::size_t> ties = {2, 2};
  EXPECT_THROW(kreg::validate_neighbor_grid(ties, 10, "test"),
               std::invalid_argument);
  const std::vector<std::size_t> descending = {5, 3};
  EXPECT_THROW(kreg::validate_neighbor_grid(descending, 10, "test"),
               std::invalid_argument);
}

TEST(ValidateNeighborGrid, RejectsCountsBeyondLeaveOneOut) {
  // k = n has no leave-one-out meaning: only n - 1 neighbours exist.
  const std::vector<std::size_t> full = {10};
  EXPECT_THROW(kreg::validate_neighbor_grid(full, 10, "test"),
               std::invalid_argument);
  // n < 2 leaves no neighbours at all, whatever the grid says.
  const std::vector<std::size_t> one = {1};
  EXPECT_THROW(kreg::validate_neighbor_grid(one, 1, "test"),
               std::invalid_argument);
  EXPECT_THROW(kreg::validate_neighbor_grid(one, 0, "test"),
               std::invalid_argument);
}

TEST(ParsePrefetchDistance, AcceptsDigitsUpToCap) {
  const struct {
    const char* text;
    std::size_t want;
  } ok[] = {{"0", 0}, {"1", 1}, {"07", 7}, {"64", 64}, {"1024", 1024}};
  for (const auto& row : ok) {
    EXPECT_EQ(kreg::parse_prefetch_distance(row.text), row.want)
        << "text=" << row.text;
  }
}

TEST(ParsePrefetchDistance, RejectsGarbageNegativesAndOverflow) {
  const char* bad[] = {"",      "-1",   "-0",  " 4",   "4 ",  "4x",
                       "x4",    "0.5",  "+2",  "1e3",  "1025", "99999",
                       "184467440737095516160"};
  for (const char* text : bad) {
    EXPECT_THROW(kreg::parse_prefetch_distance(text), std::invalid_argument)
        << "text='" << text << "'";
  }
}

TEST(ParsePrefetchDistance, ErrorNamesTheOffendingText) {
  try {
    kreg::parse_prefetch_distance("-3");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("-3"), std::string::npos);
  }
}

TEST(ResolvePrefetchDistance, ExplicitValuesPassCapApplies) {
  EXPECT_EQ(kreg::resolve_prefetch_distance(0), 0u);
  EXPECT_EQ(kreg::resolve_prefetch_distance(16), 16u);
  EXPECT_EQ(kreg::resolve_prefetch_distance(kreg::kMaxPrefetchDistance),
            kreg::kMaxPrefetchDistance);
  EXPECT_THROW(
      kreg::resolve_prefetch_distance(kreg::kMaxPrefetchDistance + 1),
      std::invalid_argument);
}

TEST(ResolvePrefetchDistance, SentinelConsultsEnvironment) {
  // Unset / empty → off; set → parsed strictly (garbage throws).
  ::unsetenv("KREG_PREFETCH_DIST");
  EXPECT_EQ(kreg::resolve_prefetch_distance(kreg::kPrefetchFromEnv), 0u);
  ::setenv("KREG_PREFETCH_DIST", "", 1);
  EXPECT_EQ(kreg::resolve_prefetch_distance(kreg::kPrefetchFromEnv), 0u);
  ::setenv("KREG_PREFETCH_DIST", "12", 1);
  EXPECT_EQ(kreg::resolve_prefetch_distance(kreg::kPrefetchFromEnv), 12u);
  ::setenv("KREG_PREFETCH_DIST", "nope", 1);
  EXPECT_THROW(kreg::resolve_prefetch_distance(kreg::kPrefetchFromEnv),
               std::invalid_argument);
  ::unsetenv("KREG_PREFETCH_DIST");
}

TEST(ParseSigmaPolicy, TableOfAcceptedAndRejectedSpellings) {
  EXPECT_EQ(kreg::parse_sigma_policy("none"), kreg::SigmaPolicy::kNone);
  EXPECT_EQ(kreg::parse_sigma_policy("length"), kreg::SigmaPolicy::kLength);
  EXPECT_EQ(kreg::parse_sigma_policy("position-length"),
            kreg::SigmaPolicy::kPositionLength);
  const char* bad[] = {"",        "None",   "LENGTH",       "pos",
                       "position", "len",   "position_length", "sigma",
                       " length", "length "};
  for (const char* text : bad) {
    EXPECT_THROW(kreg::parse_sigma_policy(text), std::invalid_argument)
        << "text='" << text << "'";
  }
}

TEST(ParseSigmaPolicy, ToStringRoundTripsEveryPolicy) {
  for (const kreg::SigmaPolicy policy :
       {kreg::SigmaPolicy::kNone, kreg::SigmaPolicy::kLength,
        kreg::SigmaPolicy::kPositionLength}) {
    EXPECT_EQ(kreg::parse_sigma_policy(kreg::to_string(policy)), policy);
  }
}

}  // namespace
