// Tests for the multivariate extension: product kernels, the multivariate
// NW estimator and CV criterion, collapse to the univariate case at p = 1,
// exhaustive grid search, and coordinate descent.
#include <gtest/gtest.h>

#include <cmath>

#include "core/grid.hpp"
#include "core/loocv.hpp"
#include "core/multivariate.hpp"
#include "core/nadaraya_watson.hpp"
#include "core/selectors.hpp"
#include "data/dgp.hpp"
#include "data/mdataset.hpp"
#include "rng/stream.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::KernelType;
using kreg::NadarayaWatsonMulti;
using kreg::data::MDataset;
using kreg::rng::Stream;

TEST(MDataset, ValidateAndShape) {
  MDataset d;
  d.dim = 2;
  d.x = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  d.y = {1.0, 2.0, 3.0};
  EXPECT_NO_THROW(d.validate());
  EXPECT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d.row(1)[0], 0.3);
  EXPECT_DOUBLE_EQ(d.row(1)[1], 0.4);
}

TEST(MDataset, ValidateRejectsBadShapes) {
  MDataset zero_dim;
  zero_dim.x = {1.0};
  zero_dim.y = {1.0};
  EXPECT_THROW(zero_dim.validate(), std::invalid_argument);

  MDataset ragged;
  ragged.dim = 2;
  ragged.x = {1.0, 2.0, 3.0};  // not a multiple of dim
  ragged.y = {1.0};
  EXPECT_THROW(ragged.validate(), std::invalid_argument);

  MDataset mismatch;
  mismatch.dim = 1;
  mismatch.x = {1.0, 2.0};
  mismatch.y = {1.0};
  EXPECT_THROW(mismatch.validate(), std::invalid_argument);
}

TEST(MDataset, DomainPerAxis) {
  MDataset d;
  d.dim = 2;
  d.x = {0.0, 10.0, 1.0, 30.0, 0.5, 20.0};
  d.y = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(d.domain(0), 1.0);
  EXPECT_DOUBLE_EQ(d.domain(1), 20.0);
  EXPECT_THROW(d.domain(2), std::invalid_argument);
}

TEST(MultivariateDgp, ShapesAndDeterminism) {
  Stream a(50);
  Stream b(50);
  const MDataset da = kreg::data::multivariate_dgp(100, 3, a);
  const MDataset db = kreg::data::multivariate_dgp(100, 3, b);
  EXPECT_EQ(da.size(), 100u);
  EXPECT_EQ(da.dim, 3u);
  EXPECT_NO_THROW(da.validate());
  EXPECT_EQ(da.x, db.x);
  EXPECT_EQ(da.y, db.y);
}

TEST(ProductKernel, IsProductOfUnivariateWeights) {
  const std::vector<double> u = {0.2, -0.5, 0.9};
  double expected = 1.0;
  for (double uj : u) {
    expected *= kreg::kernel_value(KernelType::kEpanechnikov, uj);
  }
  EXPECT_DOUBLE_EQ(
      kreg::product_kernel_weight(KernelType::kEpanechnikov, u), expected);
}

TEST(ProductKernel, ZeroWhenAnyCoordinateOutsideSupport) {
  const std::vector<double> u = {0.2, 1.5, 0.1};
  EXPECT_DOUBLE_EQ(kreg::product_kernel_weight(KernelType::kEpanechnikov, u),
                   0.0);
}

TEST(MultivariateCollapse, OneDimensionMatchesUnivariate) {
  // p = 1 multivariate code must agree exactly with the univariate path.
  Stream s(51);
  const kreg::data::Dataset uni = kreg::data::paper_dgp(150, s);
  const MDataset multi = kreg::data::to_multivariate(uni);
  for (double h : {0.05, 0.2, 0.8}) {
    const std::vector<double> hv = {h};
    EXPECT_NEAR(kreg::cv_score_multi(multi, hv), kreg::cv_score(uni, h),
                1e-12)
        << "h=" << h;
  }
}

TEST(MultivariateCollapse, EstimatorMatchesUnivariate) {
  Stream s(52);
  const kreg::data::Dataset uni = kreg::data::paper_dgp(100, s);
  const MDataset multi = kreg::data::to_multivariate(uni);
  const kreg::NadarayaWatson g1(uni, 0.1);
  const NadarayaWatsonMulti gp(multi, {0.1});
  for (double x : {0.1, 0.4, 0.75}) {
    const std::vector<double> xv = {x};
    EXPECT_NEAR(gp(xv), g1(x), 1e-12);
  }
}

TEST(MultivariateEstimator, RejectsBadInputs) {
  Stream s(53);
  const MDataset d = kreg::data::multivariate_dgp(50, 2, s);
  EXPECT_THROW(NadarayaWatsonMulti(d, {0.1}), std::invalid_argument);
  EXPECT_THROW(NadarayaWatsonMulti(d, {0.1, 0.0}), std::invalid_argument);
  const NadarayaWatsonMulti g(d, {0.3, 0.3});
  const std::vector<double> wrong_dim = {0.5};
  EXPECT_THROW(g(wrong_dim), std::invalid_argument);
}

TEST(MultivariateEstimator, ConsistencyOnAdditiveDgp) {
  Stream s(54);
  const MDataset d = kreg::data::multivariate_dgp(4000, 2, s, 0.1);
  const NadarayaWatsonMulti g(d, {0.08, 0.08});
  for (double x1 : {0.3, 0.6}) {
    for (double x2 : {0.3, 0.6}) {
      const std::vector<double> x = {x1, x2};
      const double truth = kreg::data::multivariate_dgp_mean(x);
      EXPECT_NEAR(g(x), truth, 0.25) << x1 << "," << x2;
    }
  }
}

TEST(MultiGridSearch, FindsCartesianOptimum) {
  Stream s(55);
  const MDataset d = kreg::data::multivariate_dgp(150, 2, s);
  const std::vector<BandwidthGrid> grids = {BandwidthGrid(0.05, 1.0, 4),
                                            BandwidthGrid(0.05, 1.0, 4)};
  const auto r = kreg::multi_grid_search(d, grids);
  EXPECT_EQ(r.evaluations, 16u);
  ASSERT_EQ(r.bandwidths.size(), 2u);
  // Exhaustive check against direct evaluation of all 16 cells.
  double best = 1e300;
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      const std::vector<double> h = {grids[0][a], grids[1][b]};
      best = std::min(best, kreg::cv_score_multi(d, h));
    }
  }
  EXPECT_NEAR(r.cv_score, best, 1e-12);
}

TEST(MultiGridSearch, ValidatesGridCount) {
  Stream s(56);
  const MDataset d = kreg::data::multivariate_dgp(50, 2, s);
  const std::vector<BandwidthGrid> one_grid = {BandwidthGrid(0.1, 1.0, 3)};
  EXPECT_THROW(kreg::multi_grid_search(d, one_grid), std::invalid_argument);
}

TEST(CoordinateDescent, MonotoneAndNoWorseThanMidpointStart) {
  Stream s(57);
  const MDataset d = kreg::data::multivariate_dgp(200, 2, s);
  const auto grids = kreg::default_grids_for(d, 8);
  std::vector<double> midpoint = {grids[0][4], grids[1][4]};
  const double start_score = kreg::cv_score_multi(d, midpoint);
  const auto r = kreg::multi_coordinate_descent(d, grids);
  EXPECT_LE(r.cv_score, start_score + 1e-12);
  EXPECT_GE(r.evaluations, 1u);
}

TEST(CoordinateDescent, CloseToExhaustiveOnSmallProblem) {
  Stream s(58);
  const MDataset d = kreg::data::multivariate_dgp(150, 2, s);
  const auto grids = kreg::default_grids_for(d, 6);
  const auto exhaustive = kreg::multi_grid_search(d, grids);
  const auto descent = kreg::multi_coordinate_descent(d, grids);
  // Coordinate-wise optimum can differ from the global one, but on this
  // well-behaved additive surface it should land within a few percent.
  EXPECT_LE(descent.cv_score, exhaustive.cv_score * 1.05 + 1e-12);
  EXPECT_LT(descent.evaluations, exhaustive.evaluations * 3);
}

TEST(DefaultGridsFor, MirrorsUnivariateDefaults) {
  Stream s(59);
  const MDataset d = kreg::data::multivariate_dgp(100, 3, s);
  const auto grids = kreg::default_grids_for(d, 10);
  ASSERT_EQ(grids.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(grids[j].max(), d.domain(j), 1e-12);
    EXPECT_NEAR(grids[j].min(), d.domain(j) / 10.0, 1e-12);
  }
}

}  // namespace
