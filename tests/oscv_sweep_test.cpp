// OSCV suite: golden one-sided profiles pinned from the naive O(n²·|grid|)
// reference, the closed-form rescale constants against published values,
// and the bitwise contract across backends — sequential, device resident,
// and every streamed k-block plan reproduce the naive profile exactly,
// while parallel/tiled (which regroup the score fold) are held to 1e-12
// and to bitwise equality in the one-tile configuration.
//
// Regenerating the golden arrays (only after an *intentional* numeric
// change): evaluate oscv_profile_naive on
// data::paper_dgp(n, rng::Stream(2024 + n)) over
// BandwidthGrid::default_for(data, k), printing with %.17g.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <span>
#include <vector>

#include "core/kreg.hpp"
#include "rng/stream.hpp"
#include "spmd/device.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::HostTiling;
using kreg::KernelType;
using kreg::OscvDeviceConfig;
using kreg::Precision;
using kreg::data::Dataset;
using kreg::rng::Stream;

constexpr double kTol = 1e-12;

constexpr std::array<double, 8> kOscvProfileN50Epan = {
    0.072176962416078017,
    0.065015921492457357,
    0.077977581894967743,
    0.10998249335549007,
    0.16771785977184883,
    0.25829983171186482,
    0.36534748826506053,
    0.46930060310139154,
};

constexpr std::array<double, 8> kOscvProfileN50Uniform = {
    0.072782137661674323,
    0.066846470030508143,
    0.091491891751325494,
    0.15445996380339519,
    0.24870734065037226,
    0.4237022278654945,
    0.56944499282690475,
    0.68247424901490406,
};

constexpr std::array<double, 12> kOscvProfileN200Epan = {
    0.031702658426087479,
    0.0274330220134829,
    0.030102320654350093,
    0.038641201993527961,
    0.054462152969038974,
    0.079807717296663971,
    0.11667823131743559,
    0.16577245427742399,
    0.22289153665835648,
    0.28705305598940678,
    0.34752354510602912,
    0.3982490917872486,
};

Dataset fixture(std::size_t n) {
  Stream s(2024 + n);
  return kreg::data::paper_dgp(n, s);
}

void expect_near_profile(std::span<const double> actual,
                         std::span<const double> expected,
                         const char* backend) {
  ASSERT_EQ(actual.size(), expected.size()) << backend;
  for (std::size_t b = 0; b < expected.size(); ++b) {
    EXPECT_NEAR(actual[b], expected[b],
                kTol * std::max(1.0, std::abs(expected[b])))
        << backend << " b=" << b;
  }
}

void expect_bitwise_profile(std::span<const double> actual,
                            std::span<const double> reference,
                            const char* backend) {
  ASSERT_EQ(actual.size(), reference.size()) << backend;
  for (std::size_t b = 0; b < reference.size(); ++b) {
    EXPECT_EQ(actual[b], reference[b]) << backend << " b=" << b;
  }
}

struct GoldenCase {
  std::size_t n;
  std::size_t k;
  KernelType kernel;
  std::span<const double> expected;
};

const std::array<GoldenCase, 3> kGoldenCases = {{
    {50, 8, KernelType::kEpanechnikov, kOscvProfileN50Epan},
    {50, 8, KernelType::kUniform, kOscvProfileN50Uniform},
    {200, 12, KernelType::kEpanechnikov, kOscvProfileN200Epan},
}};

class GoldenOscv
    : public ::testing::TestWithParam<std::size_t /*case index*/> {};

TEST_P(GoldenOscv, EveryBackendReproducesTheGoldenProfile) {
  const GoldenCase& gc = kGoldenCases[GetParam()];
  const Dataset data = fixture(gc.n);
  const BandwidthGrid grid = BandwidthGrid::default_for(data, gc.k);

  const std::vector<double> naive =
      kreg::oscv_profile_naive(data, grid.values(), gc.kernel);
  expect_near_profile(naive, gc.expected, "naive");

  // Bitwise tier.
  const std::vector<double> fast =
      kreg::oscv_profile(data, grid.values(), gc.kernel);
  expect_bitwise_profile(fast, naive, "window");

  kreg::spmd::Device dev;
  expect_bitwise_profile(
      kreg::oscv_profile_device(dev, data, grid.values(), gc.kernel), naive,
      "spmd-resident");
  OscvDeviceConfig streamed;
  streamed.stream.k_block = 5;  // misaligned with both |grid| = 8 and 12
  expect_bitwise_profile(
      kreg::oscv_profile_device(dev, data, grid.values(), gc.kernel,
                                streamed),
      naive, "spmd-k-block-5");

  // Tolerance tier.
  expect_near_profile(
      kreg::oscv_profile_parallel(data, grid.values(), gc.kernel),
      gc.expected, "parallel");
  expect_near_profile(
      kreg::oscv_profile_tiled(data, grid.values(), gc.kernel,
                               Precision::kDouble, HostTiling{7, 3}),
      gc.expected, "tiled-7x3");
  expect_bitwise_profile(
      kreg::oscv_profile_tiled(data, grid.values(), gc.kernel,
                               Precision::kDouble,
                               HostTiling{gc.n, grid.size()}),
      naive, "tiled-single-tile");
}

INSTANTIATE_TEST_SUITE_P(Fixtures, GoldenOscv,
                         ::testing::Range<std::size_t>(0, 3),
                         [](const auto& suite_info) {
                           const GoldenCase& gc = kGoldenCases[suite_info.param];
                           return "n" + std::to_string(gc.n) +
                                  std::string(kreg::to_string(gc.kernel));
                         });

TEST(OscvRescale, MatchesPublishedConstants) {
  // Hart & Yi report C = 0.5371 for the Epanechnikov kernel; the uniform
  // kernel's constant is exactly 1/2 (its one-sided equivalent kernel is
  // the uniform local-linear weight, whose ratio collapses to 2^(-1)).
  EXPECT_NEAR(kreg::oscv_rescale_constant(KernelType::kEpanechnikov),
              0.53713363074458009, 1e-12);
  EXPECT_DOUBLE_EQ(kreg::oscv_rescale_constant(KernelType::kUniform), 0.5);
  // Remaining sweepable kernels: pinned from the same closed form, sane
  // range (every one-sided constant sits well inside (0, 1)).
  EXPECT_NEAR(kreg::oscv_rescale_constant(KernelType::kBiweight),
              0.55730119997466787, 1e-12);
  EXPECT_NEAR(kreg::oscv_rescale_constant(KernelType::kTriweight),
              0.56940764119813747, 1e-12);
  const double tri = kreg::oscv_rescale_constant(KernelType::kTriangular);
  EXPECT_GT(tri, 0.3);
  EXPECT_LT(tri, 0.8);
  EXPECT_THROW(kreg::oscv_rescale_constant(KernelType::kGaussian),
               std::invalid_argument);
  EXPECT_THROW(kreg::oscv_rescale_constant(KernelType::kCosine),
               std::invalid_argument);
}

class OscvBitwise : public ::testing::TestWithParam<Precision> {};

TEST_P(OscvBitwise, FastMatchesNaiveAcrossSweepableKernels) {
  const Dataset data = fixture(70);
  const BandwidthGrid grid = BandwidthGrid::default_for(data, 9);
  for (KernelType kernel :
       {KernelType::kEpanechnikov, KernelType::kUniform,
        KernelType::kTriangular, KernelType::kBiweight,
        KernelType::kTriweight}) {
    expect_bitwise_profile(
        kreg::oscv_profile(data, grid.values(), kernel, GetParam()),
        kreg::oscv_profile_naive(data, grid.values(), kernel, GetParam()),
        std::string(kreg::to_string(kernel)).c_str());
  }
}

TEST_P(OscvBitwise, FastMatchesNaiveUnderDuplicatedX) {
  // Duplicates are excluded by the one-sided admission test d > 0, exactly
  // like the LOOCV self term: fast and naive must agree bit-for-bit on a
  // heavily tied design.
  Stream s(31);
  Dataset data;
  for (std::size_t i = 0; i < 90; ++i) {
    data.x.push_back(std::floor(s.uniform() * 9.0) / 9.0);
    data.y.push_back(s.gaussian(0.0, 1.0));
  }
  const BandwidthGrid grid(0.05, 1.0, 7);
  expect_bitwise_profile(
      kreg::oscv_profile(data, grid.values(), KernelType::kEpanechnikov,
                         GetParam()),
      kreg::oscv_profile_naive(data, grid.values(),
                               KernelType::kEpanechnikov, GetParam()),
      "tied");
}

TEST_P(OscvBitwise, StreamedKBlocksMatchResident) {
  const Dataset data = fixture(110);
  const BandwidthGrid grid = BandwidthGrid::default_for(data, 11);
  kreg::spmd::Device dev;
  OscvDeviceConfig resident_cfg;
  resident_cfg.precision = GetParam();
  const std::vector<double> resident = kreg::oscv_profile_device(
      dev, data, grid.values(), KernelType::kEpanechnikov, resident_cfg);
  for (std::size_t k_block : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{7}, std::size_t{13}}) {
    OscvDeviceConfig cfg = resident_cfg;
    cfg.stream.k_block = k_block;
    expect_bitwise_profile(
        kreg::oscv_profile_device(dev, data, grid.values(),
                                  KernelType::kEpanechnikov, cfg),
        resident, ("k_block=" + std::to_string(k_block)).c_str());
  }
  expect_bitwise_profile(
      resident,
      kreg::oscv_profile(data, grid.values(), KernelType::kEpanechnikov,
                         GetParam()),
      "device-vs-host");
}

INSTANTIATE_TEST_SUITE_P(Precisions, OscvBitwise,
                         ::testing::Values(Precision::kDouble,
                                           Precision::kFloat),
                         [](const auto& suite_info) {
                           return suite_info.param == Precision::kFloat ? "Float"
                                                                  : "Double";
                         });

TEST(OscvDegenerate, EmptyWindowsContributeZero) {
  // Every one-sided window is empty (the admission test d > 0 never
  // holds), so each observation is skipped — zero contribution, not a
  // zero *prediction* — and the whole profile is exactly zero. Fast and
  // naive must agree on this rule too.
  const Dataset data{{0.5, 0.5, 0.5, 0.5}, {1.0, -2.0, 3.0, -4.0}};
  const std::vector<double> grid = {0.1, 0.5, 2.0};
  for (double score :
       kreg::oscv_profile(data, grid, KernelType::kEpanechnikov)) {
    EXPECT_DOUBLE_EQ(score, 0.0);
  }
  expect_bitwise_profile(
      kreg::oscv_profile(data, grid, KernelType::kEpanechnikov),
      kreg::oscv_profile_naive(data, grid, KernelType::kEpanechnikov),
      "degenerate");
}

TEST(OscvParallel, DeterministicAndToleranceEqual) {
  const Dataset data = fixture(200);
  const BandwidthGrid grid = BandwidthGrid::default_for(data, 12);
  const std::vector<double> sequential =
      kreg::oscv_profile(data, grid.values(), KernelType::kEpanechnikov);
  const std::vector<double> first = kreg::oscv_profile_parallel(
      data, grid.values(), KernelType::kEpanechnikov);
  expect_near_profile(first, sequential, "parallel-vs-sequential");
  for (int run = 0; run < 3; ++run) {
    expect_bitwise_profile(
        kreg::oscv_profile_parallel(data, grid.values(),
                                    KernelType::kEpanechnikov),
        first, "parallel-rerun");
  }
}

TEST(OscvSelector, ReportsRescaledBandwidthOverOneSidedProfile) {
  const Dataset data = fixture(200);
  const BandwidthGrid grid = BandwidthGrid::default_for(data, 12);
  const kreg::OscvSweepSelector selector;
  const auto result = selector.select(data, grid);
  EXPECT_EQ(selector.name(), "oscv-sweep");
  EXPECT_EQ(kreg::OscvSweepSelector(KernelType::kEpanechnikov,
                                    Precision::kDouble, /*parallel=*/true)
                .name(),
            "oscv-sweep-parallel");

  const std::vector<double> profile =
      kreg::oscv_profile(data, grid.values(), KernelType::kEpanechnikov);
  expect_bitwise_profile(result.scores, profile, "selector-scores");
  std::size_t best = 0;
  for (std::size_t b = 1; b < profile.size(); ++b) {
    if (profile[b] < profile[best]) {
      best = b;
    }
  }
  EXPECT_EQ(result.cv_score, profile[best]);
  // The reported bandwidth is the *rescaled* two-sided one: C·b̂, not a
  // grid point of the searched profile.
  const double c = kreg::oscv_rescale_constant(KernelType::kEpanechnikov);
  EXPECT_DOUBLE_EQ(result.bandwidth, c * grid[best]);
}

TEST(OscvValidation, RejectsBadInputs) {
  const Dataset data = fixture(20);
  const Dataset empty;
  const std::vector<double> ok = {0.1, 0.2, 0.4};
  EXPECT_THROW(
      kreg::oscv_profile(empty, ok, KernelType::kEpanechnikov),
      std::invalid_argument);
  EXPECT_THROW(kreg::oscv_profile(data, std::vector<double>{},
                                  KernelType::kEpanechnikov),
               std::invalid_argument);
  EXPECT_THROW(kreg::oscv_profile(data, std::vector<double>{-0.1, 0.2},
                                  KernelType::kEpanechnikov),
               std::invalid_argument);
  EXPECT_THROW(kreg::oscv_profile(data, std::vector<double>{0.2, 0.2},
                                  KernelType::kEpanechnikov),
               std::invalid_argument);
  EXPECT_THROW(kreg::oscv_profile(data, ok, KernelType::kGaussian),
               std::invalid_argument);
  EXPECT_THROW(kreg::oscv_profile_naive(data, ok, KernelType::kCosine),
               std::invalid_argument);
}

TEST(OscvStreamedBytes, MonotoneInKBlock) {
  const std::size_t base = kreg::oscv_estimated_streamed_bytes(
      1000, 0, Precision::kDouble, KernelType::kEpanechnikov);
  std::size_t prev = base;
  for (std::size_t k_block : {1u, 4u, 16u, 64u}) {
    const std::size_t bytes = kreg::oscv_estimated_streamed_bytes(
        1000, k_block, Precision::kDouble, KernelType::kEpanechnikov);
    EXPECT_GT(bytes, prev) << k_block;
    prev = bytes;
  }
}

}  // namespace
