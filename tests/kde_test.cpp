// Tests for the KDE extension: density values, normalization, the LSCV
// criterion (including closed-form self-convolutions), and bandwidth
// selection sanity on known densities.
#include <gtest/gtest.h>

#include <cmath>

#include "core/grid.hpp"
#include "core/kde.hpp"
#include "rng/stream.hpp"

namespace {

using kreg::KernelDensity;
using kreg::KernelType;
using kreg::rng::Stream;

TEST(KernelDensity, SinglePointIsScaledKernel) {
  KernelDensity f({0.0}, 2.0);
  // f(x) = K(x/2)/2.
  EXPECT_DOUBLE_EQ(f(0.0), 0.75 / 2.0);
  EXPECT_DOUBLE_EQ(f(2.0), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 0.75 * (1.0 - 0.25) / 2.0);
}

TEST(KernelDensity, ValidatesInputs) {
  EXPECT_THROW(KernelDensity({}, 1.0), std::invalid_argument);
  EXPECT_THROW(KernelDensity({1.0}, 0.0), std::invalid_argument);
}

TEST(KernelDensity, IntegratesToOne) {
  Stream s(1);
  const std::vector<double> xs = s.uniforms(400);
  KernelDensity f(xs, 0.1);
  // Midpoint rule over the support (sample range +- h).
  const double lo = -0.2;
  const double hi = 1.2;
  const int steps = 20000;
  double acc = 0.0;
  for (int i = 0; i < steps; ++i) {
    acc += f(lo + (i + 0.5) * (hi - lo) / steps);
  }
  acc *= (hi - lo) / steps;
  EXPECT_NEAR(acc, 1.0, 1e-3);
}

TEST(KernelDensity, CurveHasRequestedShapeAndPositiveMass) {
  Stream s(2);
  const std::vector<double> xs = s.uniforms(200);
  KernelDensity f(xs, 0.1);
  const auto curve = f.curve(64);
  ASSERT_EQ(curve.x.size(), 64u);
  double peak = 0.0;
  for (double v : curve.density) {
    EXPECT_GE(v, 0.0);
    peak = std::max(peak, v);
  }
  EXPECT_GT(peak, 0.5);  // uniform density is 1 on [0,1]
}

TEST(SelfConvolution, ClosedFormsMatchNumericConvolution) {
  // (K*K)(u) = ∫ K(t) K(u - t) dt, checked numerically.
  for (KernelType k : {KernelType::kEpanechnikov, KernelType::kUniform,
                       KernelType::kGaussian}) {
    for (double u : {0.0, 0.3, 0.9, 1.5, 1.99}) {
      const double lo = -8.0;
      const double hi = 8.0;
      const int steps = 40000;
      double acc = 0.0;
      for (int i = 0; i < steps; ++i) {
        const double t = lo + (i + 0.5) * (hi - lo) / steps;
        acc += kreg::kernel_value(k, t) * kreg::kernel_value(k, u - t);
      }
      acc *= (hi - lo) / steps;
      EXPECT_NEAR(kreg::kernel_self_convolution(k, u), acc, 1e-4)
          << to_string(k) << " u=" << u;
    }
  }
}

TEST(SelfConvolution, ValueAtZeroIsRoughness) {
  for (KernelType k : {KernelType::kEpanechnikov, KernelType::kUniform,
                       KernelType::kGaussian}) {
    EXPECT_NEAR(kreg::kernel_self_convolution(k, 0.0), kreg::roughness(k),
                1e-12)
        << to_string(k);
  }
}

TEST(SelfConvolution, UnsupportedKernelThrows) {
  EXPECT_THROW(kreg::kernel_self_convolution(KernelType::kTriweight, 0.5),
               std::invalid_argument);
  EXPECT_FALSE(kreg::has_self_convolution(KernelType::kCosine));
  EXPECT_TRUE(kreg::has_self_convolution(KernelType::kEpanechnikov));
}

TEST(KdeLscv, ValidatesInputs) {
  const std::vector<double> xs = {0.1, 0.2, 0.3};
  EXPECT_THROW(kreg::kde_lscv_score(xs, 0.0), std::invalid_argument);
  const std::vector<double> one = {0.1};
  EXPECT_THROW(kreg::kde_lscv_score(one, 0.5), std::invalid_argument);
}

TEST(KdeLscv, MatchesDirectDefinitionOnSmallSample) {
  // Direct form: LSCV(h) = ∫ f̂² − (2/n) Σ_i f̂₋ᵢ(X_i); compare the
  // closed-form pairwise implementation against numeric integration plus
  // explicit leave-one-out densities.
  Stream s(3);
  const std::vector<double> xs = s.uniforms(40);
  const double h = 0.2;

  KernelDensity f(std::vector<double>(xs), h);
  const double lo = -0.5;
  const double hi = 1.5;
  const int steps = 200000;
  double integral_f2 = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double v = f(lo + (i + 0.5) * (hi - lo) / steps);
    integral_f2 += v * v;
  }
  integral_f2 *= (hi - lo) / steps;

  double loo_sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<double> rest;
    for (std::size_t l = 0; l < xs.size(); ++l) {
      if (l != i) {
        rest.push_back(xs[l]);
      }
    }
    loo_sum += KernelDensity(rest, h)(xs[i]);
  }
  const double direct =
      integral_f2 - 2.0 * loo_sum / static_cast<double>(xs.size());

  EXPECT_NEAR(kreg::kde_lscv_score(xs, h), direct, 5e-4);
}

TEST(KdeLscv, GridSelectionPicksInteriorBandwidthOnGaussianData) {
  Stream s(4);
  std::vector<double> xs(3000);
  for (auto& x : xs) {
    x = s.gaussian(0.0, 1.0);
  }
  const kreg::BandwidthGrid grid(0.02, 2.0, 60);
  const auto r = kreg::kde_select_grid(xs, grid);
  // The optimal Epanechnikov bandwidth for N(0,1) at n=3000 is around
  // 2.34 * n^(-1/5) ≈ 0.47; accept a generous interior window.
  EXPECT_GT(r.bandwidth, 0.15);
  EXPECT_LT(r.bandwidth, 1.2);
  EXPECT_EQ(r.scores.size(), grid.size());
}

TEST(KdeLscv, SelectionResultProfileAlignedWithGrid) {
  Stream s(5);
  const std::vector<double> xs = s.uniforms(200);
  const kreg::BandwidthGrid grid(0.05, 0.5, 10);
  const auto r = kreg::kde_select_grid(xs, grid);
  ASSERT_EQ(r.grid.size(), r.scores.size());
  double best = r.scores[0];
  for (double v : r.scores) {
    best = std::min(best, v);
  }
  EXPECT_DOUBLE_EQ(best, r.cv_score);
}

TEST(KdeLscv, GaussianKernelPathWorks) {
  Stream s(6);
  std::vector<double> xs(500);
  for (auto& x : xs) {
    x = s.gaussian(0.0, 1.0);
  }
  const kreg::BandwidthGrid grid(0.05, 1.5, 20);
  const auto r = kreg::kde_select_grid(xs, grid, KernelType::kGaussian);
  EXPECT_GT(r.bandwidth, 0.05);
  EXPECT_LT(r.bandwidth, 1.5);
}

}  // namespace
