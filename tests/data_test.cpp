// Tests for the data substrate: dataset invariants, the paper DGP's
// distributional properties, DGP registry, CSV round-tripping, splits.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "data/csv.hpp"
#include "data/dataset.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"
#include "stats/descriptive.hpp"

namespace {

using kreg::data::Dataset;
using kreg::rng::Stream;

TEST(Dataset, ValidateAcceptsWellFormed) {
  Dataset d{{0.1, 0.2}, {1.0, 2.0}};
  EXPECT_NO_THROW(d.validate());
}

TEST(Dataset, ValidateRejectsLengthMismatch) {
  Dataset d{{0.1, 0.2}, {1.0}};
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(Dataset, ValidateRejectsNonFinite) {
  Dataset d{{0.1, std::nan("")}, {1.0, 2.0}};
  EXPECT_THROW(d.validate(), std::invalid_argument);
  Dataset e{{0.1, 0.2}, {1.0, INFINITY}};
  EXPECT_THROW(e.validate(), std::invalid_argument);
}

TEST(Dataset, XDomainIsRange) {
  Dataset d{{0.25, 0.75, 0.5}, {0.0, 0.0, 0.0}};
  EXPECT_DOUBLE_EQ(d.x_domain(), 0.5);
}

TEST(Dataset, XDomainOfEmptyThrows) {
  Dataset d;
  EXPECT_THROW(d.x_domain(), std::invalid_argument);
}

TEST(Dataset, SplitAtPartitions) {
  Dataset d{{1, 2, 3, 4, 5}, {10, 20, 30, 40, 50}};
  const auto split = kreg::data::split_at(d, 3);
  EXPECT_EQ(split.train.size(), 3u);
  EXPECT_EQ(split.test.size(), 2u);
  EXPECT_DOUBLE_EQ(split.train.x[2], 3.0);
  EXPECT_DOUBLE_EQ(split.test.y[0], 40.0);
}

TEST(Dataset, SplitBeyondSizeThrows) {
  Dataset d{{1}, {2}};
  EXPECT_THROW(kreg::data::split_at(d, 2), std::invalid_argument);
}

TEST(Dataset, PermuteReordersBothColumns) {
  Dataset d{{1, 2, 3}, {10, 20, 30}};
  const std::vector<std::size_t> perm = {2, 0, 1};
  const Dataset p = kreg::data::permute(d, perm);
  EXPECT_DOUBLE_EQ(p.x[0], 3.0);
  EXPECT_DOUBLE_EQ(p.y[0], 30.0);
  EXPECT_DOUBLE_EQ(p.x[1], 1.0);
  EXPECT_DOUBLE_EQ(p.y[1], 10.0);
}

TEST(PaperDgp, MatchesSpecification) {
  Stream s(42);
  const Dataset d = kreg::data::paper_dgp(50000, s);
  ASSERT_EQ(d.size(), 50000u);
  d.validate();
  // X ~ U(0,1).
  EXPECT_GE(kreg::stats::min(d.x), 0.0);
  EXPECT_LT(kreg::stats::max(d.x), 1.0);
  EXPECT_NEAR(kreg::stats::mean(d.x), 0.5, 0.01);
  // Y = 0.5X + 10X² + U(0, 0.5): residual u = y - (0.5x + 10x²) in [0, 0.5].
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double u = d.y[i] - (0.5 * d.x[i] + 10.0 * d.x[i] * d.x[i]);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 0.5);
  }
}

TEST(PaperDgp, TrueMeanIncludesNoiseMean) {
  // E[Y|X=x] = 0.5x + 10x² + E[u] with E[u] = 0.25.
  EXPECT_DOUBLE_EQ(kreg::data::paper_dgp_mean(0.0), 0.25);
  EXPECT_DOUBLE_EQ(kreg::data::paper_dgp_mean(1.0), 0.5 + 10.0 + 0.25);
}

TEST(PaperDgp, DeterministicForFixedSeed) {
  Stream a(7);
  Stream b(7);
  const Dataset da = kreg::data::paper_dgp(100, a);
  const Dataset db = kreg::data::paper_dgp(100, b);
  EXPECT_EQ(da.x, db.x);
  EXPECT_EQ(da.y, db.y);
}

TEST(AllDgps, GenerateValidDataAndFiniteMeans) {
  for (const auto& dgp : kreg::data::all_dgps()) {
    Stream s(11);
    const Dataset d = dgp.generate(500, s);
    EXPECT_EQ(d.size(), 500u) << dgp.name;
    EXPECT_NO_THROW(d.validate()) << dgp.name;
    for (double x : {0.01, 0.25, 0.5, 0.75, 0.99}) {
      EXPECT_TRUE(std::isfinite(dgp.true_mean(x))) << dgp.name;
    }
  }
}

TEST(AllDgps, RegistryHasExpectedEntries) {
  const auto& dgps = kreg::data::all_dgps();
  ASSERT_EQ(dgps.size(), 6u);
  EXPECT_EQ(dgps[0].name, "paper");
  EXPECT_EQ(dgps[5].name, "kink");
}

TEST(SineDgp, NoiseAveragesOut) {
  Stream s(12);
  const Dataset d = kreg::data::sine_dgp(20000, s, 0.1);
  // Mean of Y - m(X) should be ~0.
  double acc = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    acc += d.y[i] - kreg::data::sine_dgp_mean(d.x[i]);
  }
  EXPECT_NEAR(acc / static_cast<double>(d.size()), 0.0, 0.005);
}

TEST(StepDgp, MeanIsPiecewiseConstant) {
  EXPECT_DOUBLE_EQ(kreg::data::step_dgp_mean(0.1), 0.0);
  EXPECT_DOUBLE_EQ(kreg::data::step_dgp_mean(0.3), 1.0);
  EXPECT_DOUBLE_EQ(kreg::data::step_dgp_mean(0.6), -0.5);
  EXPECT_DOUBLE_EQ(kreg::data::step_dgp_mean(0.9), 0.75);
}

TEST(Csv, RoundTripsThroughStreams) {
  Stream s(13);
  const Dataset d = kreg::data::paper_dgp(100, s);
  std::stringstream buffer;
  kreg::data::write_csv(buffer, d);
  const Dataset back = kreg::data::read_csv(buffer);
  ASSERT_EQ(back.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.x[i], d.x[i]);
    EXPECT_DOUBLE_EQ(back.y[i], d.y[i]);
  }
}

TEST(Csv, ReadsHeaderlessInput) {
  std::stringstream in("1.5,2.5\n3.25,-4\n");
  const Dataset d = kreg::data::read_csv(in);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.x[0], 1.5);
  EXPECT_DOUBLE_EQ(d.y[1], -4.0);
}

TEST(Csv, SkipsHeaderAndBlankLines) {
  std::stringstream in("x,y\n\n1,2\n\n3,4\n");
  const Dataset d = kreg::data::read_csv(in);
  ASSERT_EQ(d.size(), 2u);
}

TEST(Csv, MalformedMidFileLineThrows) {
  std::stringstream in("x,y\n1,2\nnot,a number\n");
  EXPECT_THROW(kreg::data::read_csv(in), std::runtime_error);
}

TEST(Csv, MissingCommaThrows) {
  std::stringstream in("x,y\n1,2\n34\n");
  EXPECT_THROW(kreg::data::read_csv(in), std::runtime_error);
}

TEST(Csv, ToleratesCrlf) {
  std::stringstream in("x,y\r\n1,2\r\n3,4\r\n");
  const Dataset d = kreg::data::read_csv(in);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.y[1], 4.0);
}

}  // namespace
