// Tests for the host-side selectors (Programs 1-3 and the naive baseline):
// result structure, cross-agreement, optimizer behaviour on multimodal CV
// surfaces, and the multistart mitigation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/grid.hpp"
#include "core/loocv.hpp"
#include "core/optimizers.hpp"
#include "core/selectors.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::CvOptimizerSelector;
using kreg::KernelType;
using kreg::NaiveGridSelector;
using kreg::OptimizeMethod;
using kreg::ParallelSortedGridSelector;
using kreg::SelectionResult;
using kreg::SortedGridSelector;
using kreg::WindowSweepSelector;
using kreg::data::Dataset;
using kreg::rng::Stream;

Dataset paper_data(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  return kreg::data::paper_dgp(n, s);
}

TEST(SelectionFromProfile, ArgminAndTieBreak) {
  const BandwidthGrid grid(0.1, 0.5, 5);
  const std::vector<double> scores = {3.0, 1.0, 2.0, 1.0, 5.0};
  const SelectionResult r =
      kreg::selection_from_profile(grid, scores, "test");
  EXPECT_DOUBLE_EQ(r.bandwidth, grid[1]);  // smallest index wins the tie
  EXPECT_DOUBLE_EQ(r.cv_score, 1.0);
  EXPECT_EQ(r.evaluations, 5u);
  EXPECT_EQ(r.method, "test");
}

TEST(SelectionFromProfile, SizeMismatchThrows) {
  const BandwidthGrid grid(0.1, 0.5, 5);
  EXPECT_THROW(kreg::selection_from_profile(grid, {1.0, 2.0}, "test"),
               std::invalid_argument);
}

TEST(NaiveGridSelector, ScoresMatchDirectCvCalls) {
  const Dataset d = paper_data(150, 1);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 10);
  const SelectionResult r = NaiveGridSelector().select(d, grid);
  ASSERT_EQ(r.scores.size(), 10u);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_DOUBLE_EQ(r.scores[b], kreg::cv_score(d, grid[b]));
  }
  EXPECT_EQ(r.grid, grid.values());
}

TEST(NaiveGridSelector, ParallelVariantAgrees) {
  const Dataset d = paper_data(200, 2);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 8);
  const SelectionResult serial = NaiveGridSelector().select(d, grid);
  const SelectionResult parallel =
      NaiveGridSelector(KernelType::kEpanechnikov, /*parallel=*/true)
          .select(d, grid);
  EXPECT_DOUBLE_EQ(serial.bandwidth, parallel.bandwidth);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(serial.scores[b], parallel.scores[b], 1e-12);
  }
}

// ---- The paper's §IV-C correctness protocol: programs agree ----------------

TEST(SelectorCrosscheck, SortedMatchesNaiveOnPaperDgp) {
  const Dataset d = paper_data(400, 3);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
  const SelectionResult naive = NaiveGridSelector().select(d, grid);
  const SelectionResult sorted = SortedGridSelector().select(d, grid);
  EXPECT_DOUBLE_EQ(naive.bandwidth, sorted.bandwidth);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(sorted.scores[b], naive.scores[b],
                1e-9 * std::max(1.0, naive.scores[b]));
  }
}

TEST(SelectorCrosscheck, ParallelSortedMatchesSorted) {
  const Dataset d = paper_data(400, 4);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
  const SelectionResult sorted = SortedGridSelector().select(d, grid);
  const SelectionResult parallel = ParallelSortedGridSelector().select(d, grid);
  EXPECT_DOUBLE_EQ(sorted.bandwidth, parallel.bandwidth);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(parallel.scores[b], sorted.scores[b],
                1e-10 * std::max(1.0, sorted.scores[b]));
  }
}

TEST(SelectorCrosscheck, AgreementAcrossSweepableKernels) {
  const Dataset d = paper_data(250, 5);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 20);
  for (KernelType k :
       {KernelType::kEpanechnikov, KernelType::kUniform,
        KernelType::kTriangular, KernelType::kBiweight,
        KernelType::kTriweight}) {
    const SelectionResult naive = NaiveGridSelector(k).select(d, grid);
    const SelectionResult sorted = SortedGridSelector(k).select(d, grid);
    EXPECT_DOUBLE_EQ(naive.bandwidth, sorted.bandwidth) << to_string(k);
  }
}

TEST(SelectorCrosscheck, WindowSweepMatchesNaiveOnPaperDgp) {
  const Dataset d = paper_data(400, 3);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
  const SelectionResult naive = NaiveGridSelector().select(d, grid);
  const SelectionResult windowed = WindowSweepSelector().select(d, grid);
  EXPECT_DOUBLE_EQ(naive.bandwidth, windowed.bandwidth);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(windowed.scores[b], naive.scores[b],
                1e-9 * std::max(1.0, naive.scores[b]));
  }
}

TEST(SelectorCrosscheck, WindowSweepAgreesWithSortedAcrossKernels) {
  const Dataset d = paper_data(250, 5);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 20);
  for (KernelType k :
       {KernelType::kEpanechnikov, KernelType::kUniform,
        KernelType::kTriangular, KernelType::kBiweight,
        KernelType::kTriweight}) {
    const SelectionResult sorted = SortedGridSelector(k).select(d, grid);
    const SelectionResult windowed = WindowSweepSelector(k).select(d, grid);
    EXPECT_DOUBLE_EQ(sorted.bandwidth, windowed.bandwidth) << to_string(k);
  }
}

TEST(SelectorCrosscheck, WindowSweepParallelAndFloatVariantsAgree) {
  const Dataset d = paper_data(400, 4);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
  const SelectionResult seq = WindowSweepSelector().select(d, grid);
  const SelectionResult par =
      WindowSweepSelector(KernelType::kEpanechnikov, kreg::Precision::kDouble,
                          /*parallel=*/true)
          .select(d, grid);
  EXPECT_DOUBLE_EQ(seq.bandwidth, par.bandwidth);
  const SelectionResult flt =
      WindowSweepSelector(KernelType::kEpanechnikov, kreg::Precision::kFloat)
          .select(d, grid);
  EXPECT_DOUBLE_EQ(seq.bandwidth, flt.bandwidth);  // same grid argmin
}

TEST(SelectorCrosscheck, OptimizerLandsNearGridMinimumOnSmoothSurface) {
  // The paper DGP has a well-behaved CV curve; Brent should land close to
  // the fine-grid argmin.
  const Dataset d = paper_data(300, 6);
  const BandwidthGrid fine = BandwidthGrid::default_for(d, 200);
  const SelectionResult grid_result = SortedGridSelector().select(d, fine);
  const SelectionResult opt_result = CvOptimizerSelector().select(d, fine);
  EXPECT_NEAR(opt_result.bandwidth, grid_result.bandwidth,
              3.0 * (fine[1] - fine[0]));
  // The optimizer's minimum can't beat the true surface minimum by much,
  // nor be dramatically worse on this smooth case.
  EXPECT_LE(std::abs(opt_result.cv_score - grid_result.cv_score),
            0.05 * grid_result.cv_score + 1e-9);
}

TEST(CvOptimizerSelector, ParallelObjectiveMatchesSerial) {
  const Dataset d = paper_data(200, 7);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
  CvOptimizerSelector::Config serial_cfg;
  CvOptimizerSelector::Config parallel_cfg;
  parallel_cfg.parallel_objective = true;
  const SelectionResult a = CvOptimizerSelector(serial_cfg).select(d, grid);
  const SelectionResult b = CvOptimizerSelector(parallel_cfg).select(d, grid);
  // Identical objective values -> identical trajectories.
  EXPECT_NEAR(a.bandwidth, b.bandwidth, 1e-9);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(CvOptimizerSelector, GoldenSectionAlsoConverges) {
  const Dataset d = paper_data(200, 8);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
  CvOptimizerSelector::Config cfg;
  cfg.method = OptimizeMethod::kGoldenSection;
  const SelectionResult r = CvOptimizerSelector(cfg).select(d, grid);
  EXPECT_GT(r.bandwidth, grid.min());
  EXPECT_LT(r.bandwidth, grid.max());
  EXPECT_GT(r.evaluations, 10u);
}

TEST(CvOptimizerSelector, MultistartNeverWorseThanSingleStart) {
  // On a multimodal surface (step DGP tends to produce one) multistart's
  // minimum is by construction <= the single-bracket minimum.
  Stream s(9);
  const Dataset d = kreg::data::step_dgp(300, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
  CvOptimizerSelector::Config single;
  CvOptimizerSelector::Config multi;
  multi.starts = 8;
  const SelectionResult rs = CvOptimizerSelector(single).select(d, grid);
  const SelectionResult rm = CvOptimizerSelector(multi).select(d, grid);
  // Sub-bracket boundaries may exclude the single bracket's exact iterate,
  // so allow a hair of slack beyond "never worse".
  EXPECT_LE(rm.cv_score, rs.cv_score * (1.0 + 1e-6));
  EXPECT_GT(rm.evaluations, rs.evaluations);
}

TEST(CvOptimizerSelector, GridSearchBeatsOrMatchesOptimizerGlobally) {
  // The paper's core robustness claim: the grid search cannot be beaten by
  // more than grid discretization; on multimodal surfaces it often wins.
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    Stream s(seed);
    const Dataset d = kreg::data::doppler_dgp(250, s);
    const BandwidthGrid grid = BandwidthGrid::default_for(d, 100);
    const SelectionResult gr = SortedGridSelector().select(d, grid);
    const SelectionResult opt = CvOptimizerSelector().select(d, grid);
    // Optimizer evaluated on the continuum can be slightly below the grid's
    // discretized minimum, but must never be dramatically better; and when
    // it lands in a local minimum it is worse.
    EXPECT_LE(gr.cv_score, opt.cv_score * 1.05 + 1e-9) << "seed=" << seed;
  }
}

TEST(Selectors, NamesAreDescriptive) {
  EXPECT_NE(SortedGridSelector().name().find("sorted-grid"),
            std::string::npos);
  EXPECT_NE(NaiveGridSelector().name().find("naive"), std::string::npos);
  EXPECT_NE(ParallelSortedGridSelector().name().find("parallel"),
            std::string::npos);
  EXPECT_NE(WindowSweepSelector().name().find("window-sweep"),
            std::string::npos);
  EXPECT_NE(WindowSweepSelector(KernelType::kEpanechnikov,
                                kreg::Precision::kDouble, /*parallel=*/true)
                .name()
                .find("parallel"),
            std::string::npos);
  CvOptimizerSelector::Config cfg;
  cfg.starts = 4;
  cfg.parallel_objective = true;
  const std::string n = CvOptimizerSelector(cfg).name();
  EXPECT_NE(n.find("starts=4"), std::string::npos);
  EXPECT_NE(n.find("parallel"), std::string::npos);
}

TEST(Selectors, ResultsCarryMethodNames) {
  const Dataset d = paper_data(60, 14);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 5);
  EXPECT_EQ(SortedGridSelector().select(d, grid).method,
            SortedGridSelector().name());
  EXPECT_EQ(CvOptimizerSelector().select(d, grid).method,
            CvOptimizerSelector().name());
}

// ---- 1-D optimizers in isolation -------------------------------------------

TEST(Optimizers, GoldenSectionFindsQuadraticMinimum) {
  const auto f = [](double x) { return (x - 2.5) * (x - 2.5) + 1.0; };
  const auto r = kreg::golden_section(f, 0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 2.5, 1e-4);
  EXPECT_NEAR(r.fx, 1.0, 1e-8);
}

TEST(Optimizers, BrentFindsQuadraticMinimumFaster) {
  const auto f = [](double x) { return (x - 2.5) * (x - 2.5) + 1.0; };
  const auto golden = kreg::golden_section(f, 0.0, 10.0);
  const auto brent_result = kreg::brent(f, 0.0, 10.0);
  EXPECT_TRUE(brent_result.converged);
  EXPECT_NEAR(brent_result.x, 2.5, 1e-4);
  EXPECT_LT(brent_result.evaluations, golden.evaluations);
}

TEST(Optimizers, BothCanMissGlobalMinimumOnBimodal) {
  // f has minima at x = 1 (f = 0.5) and x = 4 (f = 0, global). Bracketing
  // methods started on the full interval may converge to either — this is
  // the instability the paper cites. We only require: the found point is a
  // local minimum, and multistart finds the global one.
  const auto f = [](double x) {
    const double a = (x - 1.0) * (x - 1.0) + 0.5;
    const double b = (x - 4.0) * (x - 4.0);
    return std::min(a, b);
  };
  const auto multi = kreg::multistart(f, 0.0, 5.0, 10, kreg::golden_section);
  EXPECT_NEAR(multi.x, 4.0, 1e-3);
  EXPECT_NEAR(multi.fx, 0.0, 1e-6);
}

TEST(Optimizers, RejectDegenerateBrackets) {
  const auto f = [](double x) { return x * x; };
  EXPECT_THROW(kreg::golden_section(f, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(kreg::brent(f, 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(kreg::multistart(f, 0.0, 1.0, 0, kreg::brent),
               std::invalid_argument);
}

TEST(Optimizers, EvaluationCountsAreReported) {
  int calls = 0;
  const auto f = [&calls](double x) {
    ++calls;
    return x * x;
  };
  const auto r = kreg::brent(f, -1.0, 1.0);
  EXPECT_EQ(static_cast<int>(r.evaluations), calls);
}

}  // namespace
