// Tests for the remaining extensions: rule-of-thumb selectors, iterated
// grid refinement, and LOO-based confidence bands.
#include <gtest/gtest.h>

#include <cmath>

#include "core/confidence.hpp"
#include "core/grid.hpp"
#include "core/refine.hpp"
#include "core/rule_of_thumb.hpp"
#include "core/selectors.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::KernelType;
using kreg::data::Dataset;
using kreg::rng::Stream;

Dataset paper_data(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  return kreg::data::paper_dgp(n, s);
}

// ---- Rules of thumb ---------------------------------------------------------

TEST(RuleOfThumb, SilvermanMatchesHandFormulaOnGaussianSample) {
  Stream s(1);
  std::vector<double> xs(5000);
  for (auto& x : xs) {
    x = s.gaussian(0.0, 2.0);
  }
  const double h = kreg::silverman_bandwidth(xs, KernelType::kGaussian);
  // 0.9 · min(σ, IQR/1.349) · n^(-1/5); for a normal sample both spread
  // measures estimate sigma = 2.
  const double expected = 0.9 * 2.0 * std::pow(5000.0, -0.2);
  EXPECT_NEAR(h, expected, 0.1 * expected);
}

TEST(RuleOfThumb, ScottLargerThanSilvermanOnNormalData) {
  Stream s(2);
  std::vector<double> xs(2000);
  for (auto& x : xs) {
    x = s.gaussian(0.0, 1.0);
  }
  EXPECT_GT(kreg::scott_bandwidth(xs), kreg::silverman_bandwidth(xs));
}

TEST(RuleOfThumb, EpanechnikovRescalingFactorApplied) {
  Stream s(3);
  std::vector<double> xs(1000);
  for (auto& x : xs) {
    x = s.gaussian(0.0, 1.0);
  }
  const double gaussian_h = kreg::silverman_bandwidth(xs, KernelType::kGaussian);
  const double epan_h =
      kreg::silverman_bandwidth(xs, KernelType::kEpanechnikov);
  // Canonical-bandwidth ratio delta(Epan)/delta(Gauss) ≈ 1.7188/0.7764.
  EXPECT_NEAR(epan_h / gaussian_h, 2.214, 0.02);
}

TEST(RuleOfThumb, RejectsDegenerateSamples) {
  const std::vector<double> single = {1.0};
  EXPECT_THROW(kreg::silverman_bandwidth(single), std::invalid_argument);
  const std::vector<double> constant(10, 2.0);
  EXPECT_THROW(kreg::silverman_bandwidth(constant), std::invalid_argument);
  EXPECT_THROW(kreg::scott_bandwidth(constant), std::invalid_argument);
}

TEST(RuleOfThumb, SelectReturnsScoredResult) {
  const Dataset d = paper_data(400, 4);
  const auto r = kreg::rule_of_thumb_select(d, kreg::ThumbRule::kSilverman);
  EXPECT_GT(r.bandwidth, 0.0);
  EXPECT_EQ(r.evaluations, 1u);
  EXPECT_NEAR(r.cv_score, kreg::cv_score(d, r.bandwidth), 1e-12);
  EXPECT_NE(r.method.find("silverman"), std::string::npos);
}

TEST(RuleOfThumb, CrossValidationBeatsThumbOnPaperDgp) {
  // The paper's motivation: rules of thumb are proxies; CV optimizes the
  // actual criterion, so its CV score must be at least as good.
  const Dataset d = paper_data(800, 5);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 100);
  const auto cv = kreg::SortedGridSelector().select(d, grid);
  const auto thumb = kreg::rule_of_thumb_select(d, kreg::ThumbRule::kSilverman);
  EXPECT_LE(cv.cv_score, thumb.cv_score + 1e-12);
}

// ---- Iterated grid refinement ----------------------------------------------

TEST(Refine, ImprovesResolutionBeyondInitialGrid) {
  const Dataset d = paper_data(500, 6);
  const BandwidthGrid coarse = BandwidthGrid::default_for(d, 16);
  const kreg::SortedGridSelector selector;

  kreg::RefineOptions opts;
  opts.k_per_round = 16;
  opts.rounds = 4;
  opts.shrink = 0.25;
  const auto refined = kreg::refine_select(selector, d, coarse, opts);
  const auto single = selector.select(d, coarse);

  EXPECT_LE(refined.cv_score, single.cv_score + 1e-12);
  EXPECT_GT(refined.evaluations, single.evaluations);
  EXPECT_NE(refined.method.find("+refine"), std::string::npos);
}

TEST(Refine, ConvergesTowardFineGridAnswer) {
  // Refinement never searches below the initial grid's floor, so give the
  // coarse grid the same [min, max] range as the fine reference and let the
  // zoom rounds supply the resolution.
  const Dataset d = paper_data(400, 7);
  const BandwidthGrid fine = BandwidthGrid::default_for(d, 1200);
  const BandwidthGrid coarse(fine.min(), fine.max(), 24);
  const kreg::SortedGridSelector selector;

  kreg::RefineOptions opts;
  opts.k_per_round = 24;
  opts.rounds = 4;
  opts.shrink = 0.25;
  const auto refined = kreg::refine_select(selector, d, coarse, opts);
  const auto exhaustive = selector.select(d, fine);

  // 24 points × 4 zoom rounds approximates the 1200-point grid; the zoom
  // can land in a neighbouring fine-scale dip, so compare scores with a
  // modest relative tolerance rather than bandwidths.
  EXPECT_NEAR(refined.cv_score, exhaustive.cv_score,
              2e-2 * exhaustive.cv_score);
}

TEST(Refine, HonorsOriginalRangeBounds) {
  const Dataset d = paper_data(300, 8);
  const BandwidthGrid coarse = BandwidthGrid::default_for(d, 8);
  const auto refined =
      kreg::refine_select(kreg::SortedGridSelector(), d, coarse);
  EXPECT_GE(refined.bandwidth, coarse.min() - 1e-12);
  EXPECT_LE(refined.bandwidth, coarse.max() + 1e-12);
}

TEST(Refine, RejectsBadOptions) {
  const Dataset d = paper_data(50, 9);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 8);
  const kreg::SortedGridSelector selector;
  kreg::RefineOptions bad;
  bad.rounds = 0;
  EXPECT_THROW(kreg::refine_select(selector, d, grid, bad),
               std::invalid_argument);
  bad.rounds = 2;
  bad.shrink = 1.5;
  EXPECT_THROW(kreg::refine_select(selector, d, grid, bad),
               std::invalid_argument);
  bad.shrink = 0.5;
  bad.k_per_round = 1;
  EXPECT_THROW(kreg::refine_select(selector, d, grid, bad),
               std::invalid_argument);
}

// ---- Confidence bands --------------------------------------------------------

TEST(ConfidenceBand, ShapeAndOrdering) {
  const Dataset d = paper_data(600, 10);
  const auto band = kreg::nw_confidence_band(d, 0.08, KernelType::kEpanechnikov,
                                             60, 0.95);
  ASSERT_EQ(band.x.size(), 60u);
  ASSERT_EQ(band.fit.size(), 60u);
  ASSERT_EQ(band.lower.size(), 60u);
  ASSERT_EQ(band.upper.size(), 60u);
  for (std::size_t i = 0; i < band.x.size(); ++i) {
    if (std::isfinite(band.fit[i])) {
      EXPECT_LE(band.lower[i], band.fit[i]);
      EXPECT_GE(band.upper[i], band.fit[i]);
    }
  }
}

TEST(ConfidenceBand, WiderAtHigherLevel) {
  const Dataset d = paper_data(600, 11);
  const auto band90 = kreg::nw_confidence_band(d, 0.08,
                                               KernelType::kEpanechnikov,
                                               40, 0.90);
  const auto band99 = kreg::nw_confidence_band(d, 0.08,
                                               KernelType::kEpanechnikov,
                                               40, 0.99);
  for (std::size_t i = 0; i < band90.x.size(); ++i) {
    if (std::isfinite(band90.fit[i])) {
      EXPECT_GE(band99.upper[i] - band99.lower[i],
                band90.upper[i] - band90.lower[i]);
    }
  }
}

TEST(ConfidenceBand, CoversTrueMeanMostOfTheTime) {
  // Pointwise 95% bands should cover the true conditional mean at the vast
  // majority of interior points. Use a low-curvature DGP (linear mean) so
  // the NW smoothing bias — which these residual-based bands do not
  // correct — stays well below the band width.
  Stream s(12);
  Dataset d;
  for (int i = 0; i < 3000; ++i) {
    const double x = s.uniform();
    d.x.push_back(x);
    d.y.push_back(2.0 * x + s.uniform(0.0, 0.5));
  }
  const auto truth_at = [](double x) { return 2.0 * x + 0.25; };
  const auto band =
      kreg::nw_confidence_band(d, 0.05, KernelType::kEpanechnikov, 50, 0.95);
  std::size_t covered = 0;
  std::size_t interior = 0;
  for (std::size_t i = 0; i < band.x.size(); ++i) {
    const double x = band.x[i];
    if (x < 0.1 || x > 0.9 || !std::isfinite(band.fit[i])) {
      continue;  // skip boundary-bias region
    }
    ++interior;
    const double truth = truth_at(x);
    covered += (truth >= band.lower[i] && truth <= band.upper[i]) ? 1 : 0;
  }
  ASSERT_GT(interior, 20u);
  EXPECT_GE(static_cast<double>(covered) / static_cast<double>(interior), 0.8);
}

TEST(ConfidenceBand, NanWhereUnsupported) {
  Dataset d{{0.0, 1.0}, {1.0, 2.0}};
  const auto band = kreg::nw_confidence_band(d, 0.05,
                                             KernelType::kEpanechnikov, 11,
                                             0.95);
  // Midpoints far from both observations have no kernel support.
  bool any_nan = false;
  for (double f : band.fit) {
    any_nan |= std::isnan(f);
  }
  EXPECT_TRUE(any_nan);
}

TEST(ConfidenceBand, ValidatesInputs) {
  const Dataset d = paper_data(50, 13);
  EXPECT_THROW(kreg::nw_confidence_band(d, 0.0), std::invalid_argument);
  EXPECT_THROW(kreg::nw_confidence_band(d, 0.1, KernelType::kEpanechnikov, 1),
               std::invalid_argument);
  EXPECT_THROW(
      kreg::nw_confidence_band(d, 0.1, KernelType::kEpanechnikov, 10, 1.5),
      std::invalid_argument);
  Dataset empty;
  EXPECT_THROW(kreg::nw_confidence_band(empty, 0.1), std::invalid_argument);
}

}  // namespace
