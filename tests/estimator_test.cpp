// Tests for the Nadaraya-Watson and local-linear estimators: exact small
// cases, consistency against the true conditional mean, boundary behaviour,
// and input validation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/nadaraya_watson.hpp"
#include "core/selectors.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"
#include "stats/metrics.hpp"

namespace {

using kreg::KernelType;
using kreg::LocalLinear;
using kreg::NadarayaWatson;
using kreg::data::Dataset;
using kreg::rng::Stream;

TEST(NadarayaWatson, ExactWeightedMeanSmallCase) {
  // x = {0, 1}, evaluate at 0.25 with h = 1 (Epanechnikov):
  // w0 = .75(1-.0625) = .703125 ; w1 = .75(1-.5625) = .328125
  Dataset d{{0.0, 1.0}, {2.0, 6.0}};
  NadarayaWatson g(d, 1.0);
  const double w0 = 0.75 * (1.0 - 0.0625);
  const double w1 = 0.75 * (1.0 - 0.5625);
  EXPECT_DOUBLE_EQ(g(0.25), (2.0 * w0 + 6.0 * w1) / (w0 + w1));
}

TEST(NadarayaWatson, NanOutsideSupport) {
  Dataset d{{0.0, 1.0}, {2.0, 6.0}};
  NadarayaWatson g(d, 0.1);
  EXPECT_TRUE(std::isnan(g(0.5)));
  EXPECT_FALSE(g.defined_at(0.5));
  EXPECT_TRUE(g.defined_at(0.05));
}

TEST(NadarayaWatson, ConstantDataIsReproducedExactly) {
  Dataset d{{0.1, 0.4, 0.7, 0.9}, {5.0, 5.0, 5.0, 5.0}};
  NadarayaWatson g(d, 0.5);
  for (double x : {0.1, 0.3, 0.5, 0.8}) {
    EXPECT_DOUBLE_EQ(g(x), 5.0);
  }
}

TEST(NadarayaWatson, ValidatesInputs) {
  Dataset empty;
  EXPECT_THROW(NadarayaWatson(empty, 0.5), std::invalid_argument);
  Dataset d{{0.0}, {1.0}};
  EXPECT_THROW(NadarayaWatson(d, 0.0), std::invalid_argument);
  EXPECT_THROW(NadarayaWatson(d, -0.2), std::invalid_argument);
  Dataset mismatch{{0.0, 1.0}, {1.0}};
  EXPECT_THROW(NadarayaWatson(mismatch, 0.5), std::invalid_argument);
}

TEST(NadarayaWatson, ConsistencyOnPaperDgp) {
  // With n = 4000 and a reasonable bandwidth the fit should track the true
  // mean to a few percent in the interior.
  Stream s(1);
  const Dataset d = kreg::data::paper_dgp(4000, s);
  NadarayaWatson g(d, 0.05);
  for (double x = 0.15; x <= 0.85; x += 0.1) {
    EXPECT_NEAR(g(x), kreg::data::paper_dgp_mean(x),
                0.05 * std::max(1.0, std::abs(kreg::data::paper_dgp_mean(x))))
        << "x=" << x;
  }
}

TEST(NadarayaWatson, CurveCoversSampleRange) {
  Stream s(2);
  const Dataset d = kreg::data::paper_dgp(500, s);
  NadarayaWatson g(d, 0.1);
  const auto curve = g.curve(41);
  ASSERT_EQ(curve.x.size(), 41u);
  ASSERT_EQ(curve.y.size(), 41u);
  EXPECT_DOUBLE_EQ(curve.x.front(), *std::min_element(d.x.begin(), d.x.end()));
  EXPECT_DOUBLE_EQ(curve.x.back(), *std::max_element(d.x.begin(), d.x.end()));
  for (double y : curve.y) {
    EXPECT_TRUE(std::isfinite(y));  // h = 0.1 covers gaps at n = 500
  }
}

TEST(NadarayaWatson, CurveRequiresTwoPoints) {
  Dataset d{{0.0, 1.0}, {1.0, 2.0}};
  NadarayaWatson g(d, 0.5);
  EXPECT_THROW(g.curve(1), std::invalid_argument);
}

TEST(NadarayaWatson, EvaluateBatchMatchesPointwise) {
  Stream s(3);
  const Dataset d = kreg::data::paper_dgp(200, s);
  NadarayaWatson g(d, 0.1);
  const std::vector<double> xs = {0.1, 0.35, 0.62, 0.9};
  const auto batch = g.evaluate(xs);
  ASSERT_EQ(batch.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], g(xs[i]));
  }
}

TEST(NadarayaWatson, GaussianKernelDefinedEverywhere) {
  Dataset d{{0.0, 1.0}, {2.0, 6.0}};
  NadarayaWatson g(d, 0.1, KernelType::kGaussian);
  EXPECT_TRUE(std::isfinite(g(0.5)));
  // Defined well outside the compact-kernel support (until the Gaussian
  // tail underflows to zero in double precision, around |u| ~ 38).
  EXPECT_TRUE(g.defined_at(2.5));
}

// ---- Local linear ----------------------------------------------------------

TEST(LocalLinear, ReproducesExactLineEverywhere) {
  // A local-linear fit of noiseless linear data is exact, including at the
  // boundary — the advantage over NW.
  Dataset d;
  for (int i = 0; i <= 20; ++i) {
    const double x = i / 20.0;
    d.x.push_back(x);
    d.y.push_back(2.0 + 3.0 * x);
  }
  LocalLinear g(d, 0.3);
  for (double x : {0.0, 0.05, 0.5, 0.95, 1.0}) {
    EXPECT_NEAR(g(x), 2.0 + 3.0 * x, 1e-10) << "x=" << x;
  }
}

TEST(LocalLinear, NwHasBoundaryBiasLocalLinearDoesNot) {
  Dataset d;
  for (int i = 0; i <= 200; ++i) {
    const double x = i / 200.0;
    d.x.push_back(x);
    d.y.push_back(5.0 * x);  // steep line, no noise
  }
  NadarayaWatson nw(d, 0.2);
  LocalLinear ll(d, 0.2);
  // At the left boundary NW averages only rightward points -> biased up.
  EXPECT_GT(nw(0.0), 0.2);
  EXPECT_NEAR(ll(0.0), 0.0, 1e-9);
}

TEST(LocalLinear, FallsBackWhenDesignDegenerate) {
  // All mass at one X: slope unidentified; must return the local mean.
  Dataset d{{0.5, 0.5, 0.5}, {1.0, 2.0, 3.0}};
  LocalLinear g(d, 0.2);
  EXPECT_DOUBLE_EQ(g(0.5), 2.0);
}

TEST(LocalLinear, NanOutsideSupport) {
  Dataset d{{0.0, 1.0}, {1.0, 2.0}};
  LocalLinear g(d, 0.1);
  EXPECT_TRUE(std::isnan(g(0.5)));
  EXPECT_FALSE(g.defined_at(0.5));
}

TEST(LocalLinear, BatchEvaluateMatchesPointwise) {
  Stream s(4);
  const Dataset d = kreg::data::sine_dgp(300, s);
  LocalLinear g(d, 0.1);
  const std::vector<double> xs = {0.2, 0.5, 0.8};
  const auto batch = g.evaluate(xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], g(xs[i]));
  }
}

TEST(Estimators, OptimalBandwidthBeatsExtremesOutOfSample) {
  // Integration check tying the selector to predictive performance: on a
  // held-out sample, the CV-selected bandwidth's MSE beats badly chosen
  // ones.
  Stream s(5);
  const Dataset train = kreg::data::paper_dgp(1500, s);
  const Dataset test = kreg::data::paper_dgp(500, s);

  const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(train, 50);
  const auto chosen = kreg::SortedGridSelector().select(train, grid);

  const auto mse_at = [&](double h) {
    NadarayaWatson g(train, h);
    double acc = 0.0;
    std::size_t used = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      const double pred = g(test.x[i]);
      if (std::isfinite(pred)) {
        const double e = pred - test.y[i];
        acc += e * e;
        ++used;
      }
    }
    return acc / static_cast<double>(used);
  };

  const double mse_chosen = mse_at(chosen.bandwidth);
  EXPECT_LT(mse_chosen, mse_at(grid.max()));        // oversmoothed
  EXPECT_LT(mse_chosen, mse_at(grid.min() * 0.2));  // absurdly undersmoothed
}

}  // namespace
