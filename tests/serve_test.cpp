// kreg-serve suite: the async selection scheduler, its profile cache, the
// line protocol, and the strict server knobs.
//
// The deterministic executor mode is the load-bearing test surface — wave
// formation and commit are single-threaded in *both* executor modes, so
// every scheduling decision (cache hit/miss, within-wave coalescing,
// co-schedule grouping, admission deferral, solo-override, eviction order)
// is pinned here as an exact event sequence, and the threaded executor is
// differential-tested against it (same submissions → same decisions, same
// bits). Every profile a scheduler returns is required to be bitwise
// identical to a direct run_job call — the contract that makes the cache
// and co-scheduling safe at all.
#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/grid.hpp"
#include "core/job.hpp"
#include "core/knn_sweep.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"
#include "serve/fingerprint.hpp"
#include "serve/knobs.hpp"
#include "serve/profile_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "spmd/device.hpp"

namespace {

using kreg::EstimatorKind;
using kreg::JobBackend;
using kreg::JobContext;
using kreg::KernelType;
using kreg::Precision;
using kreg::SelectionJob;
using kreg::SelectionProfile;
using kreg::serve::CacheKey;
using kreg::serve::cache_key;
using kreg::serve::CacheKeyHash;
using kreg::serve::Event;
using kreg::serve::EventKind;
using kreg::serve::Fingerprint128;
using kreg::serve::JobOutcome;
using kreg::serve::ProfileCache;
using kreg::serve::Scheduler;
using kreg::serve::SchedulerConfig;
using kreg::serve::ServeContext;

std::shared_ptr<const kreg::data::Dataset> make_data(std::size_t n,
                                                     std::uint64_t seed) {
  kreg::rng::Stream stream(seed);
  return std::make_shared<const kreg::data::Dataset>(
      kreg::data::paper_dgp(n, stream));
}

SelectionJob make_job(std::shared_ptr<const kreg::data::Dataset> data,
                      EstimatorKind estimator = EstimatorKind::kNadarayaWatson,
                      JobBackend backend = JobBackend::kDevice,
                      std::size_t grid_size = 12) {
  SelectionJob job;
  job.data = std::move(data);
  job.estimator = estimator;
  job.backend = backend;
  if (estimator == EstimatorKind::kKnn) {
    job.neighbor_grid = kreg::default_neighbor_grid(job.data->size(),
                                                    grid_size);
  } else {
    job.bandwidth_grid =
        kreg::BandwidthGrid(0.05, 1.0, grid_size).values();
  }
  return job;
}

SelectionProfile direct_run(const SelectionJob& job) {
  kreg::spmd::Device device;
  JobContext ctx;
  ctx.device = &device;
  return kreg::run_job(job, ctx);
}

void expect_profiles_bitwise(const SelectionProfile& got,
                             const SelectionProfile& want) {
  ASSERT_EQ(got.grid.size(), want.grid.size());
  ASSERT_EQ(got.scores.size(), want.scores.size());
  for (std::size_t i = 0; i < got.grid.size(); ++i) {
    EXPECT_EQ(got.grid[i], want.grid[i]) << "grid[" << i << "]";
  }
  for (std::size_t i = 0; i < got.scores.size(); ++i) {
    EXPECT_EQ(got.scores[i], want.scores[i]) << "scores[" << i << "]";
  }
  EXPECT_EQ(got.argmin, want.argmin);
  EXPECT_EQ(got.selected, want.selected);
  EXPECT_EQ(got.cv_score, want.cv_score);
  EXPECT_EQ(got.estimator, want.estimator);
}

std::vector<EventKind> kinds(const std::vector<Event>& events) {
  std::vector<EventKind> out;
  out.reserve(events.size());
  for (const Event& e : events) {
    out.push_back(e.kind);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fingerprints

TEST(Fingerprint, DeterministicAndContentSensitive) {
  const std::vector<double> a = {0.1, 0.2, 0.3};
  const std::vector<double> b = {0.1, 0.2, 0.30000000000000004};
  EXPECT_EQ(kreg::serve::fingerprint_span(a), kreg::serve::fingerprint_span(a));
  EXPECT_NE(kreg::serve::fingerprint_span(a), kreg::serve::fingerprint_span(b));
}

TEST(Fingerprint, OrderSensitive) {
  const std::vector<double> fwd = {0.1, 0.2, 0.3};
  const std::vector<double> rev = {0.3, 0.2, 0.1};
  EXPECT_NE(kreg::serve::fingerprint_span(fwd),
            kreg::serve::fingerprint_span(rev));
}

TEST(Fingerprint, NegativeZeroIsBitwiseDistinct) {
  const std::vector<double> pos = {0.0};
  const std::vector<double> neg = {-0.0};
  EXPECT_NE(kreg::serve::fingerprint_span(pos),
            kreg::serve::fingerprint_span(neg));
}

TEST(Fingerprint, DatasetDependsOnBothCoordinates) {
  auto base = make_data(64, 7);
  kreg::data::Dataset other_y = *base;
  other_y.y[10] = other_y.y[10] + 1e-9;
  kreg::data::Dataset swapped = *base;
  std::swap(swapped.x, swapped.y);
  const Fingerprint128 fp = kreg::serve::fingerprint_dataset(*base);
  EXPECT_NE(fp, kreg::serve::fingerprint_dataset(other_y));
  EXPECT_NE(fp, kreg::serve::fingerprint_dataset(swapped));
}

// ---------------------------------------------------------------------------
// Cache keys

TEST(CacheKeyTest, EqualContentDistinctHandlesShareKey) {
  const auto job_a = make_job(make_data(96, 3));
  auto job_b = job_a;
  job_b.data = make_data(96, 3);  // same bits, different handle
  ASSERT_NE(job_a.data.get(), job_b.data.get());
  EXPECT_EQ(cache_key(job_a), cache_key(job_b));
  EXPECT_EQ(CacheKeyHash{}(cache_key(job_a)), CacheKeyHash{}(cache_key(job_b)));
}

TEST(CacheKeyTest, DifferentYMisses) {
  const auto job_a = make_job(make_data(96, 3));
  auto modified = *job_a.data;
  modified.y[0] += 1.0;
  auto job_b = job_a;
  job_b.data = std::make_shared<const kreg::data::Dataset>(std::move(modified));
  EXPECT_NE(cache_key(job_a), cache_key(job_b));
}

TEST(CacheKeyTest, PermutedGridMisses) {
  const auto job_a = make_job(make_data(96, 3));
  auto job_b = job_a;
  std::swap(job_b.bandwidth_grid.front(), job_b.bandwidth_grid.back());
  EXPECT_NE(cache_key(job_a), cache_key(job_b));
}

TEST(CacheKeyTest, EstimatorKernelPrecisionDisambiguate) {
  const auto data = make_data(96, 3);
  const auto nw = make_job(data);
  auto other = nw;
  other.kernel = KernelType::kUniform;
  EXPECT_NE(cache_key(nw), cache_key(other));
  other = nw;
  other.precision = Precision::kFloat;
  EXPECT_NE(cache_key(nw), cache_key(other));
  EXPECT_NE(cache_key(nw),
            cache_key(make_job(data, EstimatorKind::kOscv)));
}

TEST(CacheKeyTest, KnobsCollapseIntoBitwiseFamilies) {
  // Streaming/batching knobs never split the key (every plan they induce
  // is bitwise identical), and backends collapse into numeric families:
  // the NW host sweeps share one family, the NW device reduction is its
  // own, and knn/oscv reproduce one bit pattern on every backend.
  const auto data = make_data(96, 3);
  SelectionJob nw_device = make_job(data);
  auto knobs = nw_device;
  knobs.stream.memory_budget_bytes = 1 << 16;
  knobs.stream.k_block = 3;
  knobs.lane_width = 8;
  EXPECT_EQ(cache_key(nw_device), cache_key(knobs));
  SelectionJob nw_sweep = nw_device;
  nw_sweep.backend = JobBackend::kHostSweep;
  SelectionJob nw_tiled = nw_device;
  nw_tiled.backend = JobBackend::kHostTiled;
  EXPECT_EQ(cache_key(nw_sweep), cache_key(nw_tiled));
  EXPECT_NE(cache_key(nw_device), cache_key(nw_sweep));
  SelectionJob oscv_device = make_job(data, EstimatorKind::kOscv);
  SelectionJob oscv_host = oscv_device;
  oscv_host.backend = JobBackend::kHostSweep;
  EXPECT_EQ(cache_key(oscv_device), cache_key(oscv_host));
}

// ---------------------------------------------------------------------------
// Profile cache

SelectionProfile tiny_profile(double seed_value, std::size_t grid_size = 4) {
  SelectionProfile profile;
  for (std::size_t i = 0; i < grid_size; ++i) {
    profile.grid.push_back(0.1 * static_cast<double>(i + 1));
    profile.scores.push_back(seed_value + static_cast<double>(i));
  }
  profile.argmin = 0;
  profile.selected = profile.grid[0];
  profile.cv_score = profile.scores[0];
  profile.method = "job:nw:device:epanechnikov:double";
  return profile;
}

CacheKey manual_key(std::uint64_t tag) {
  CacheKey key;
  key.data_fp = Fingerprint128{tag, ~tag};
  key.n = 96;
  key.grid_fp = Fingerprint128{tag * 3, tag * 5};
  key.grid_size = 4;
  return key;
}

TEST(ProfileCacheTest, RepeatHitIsBitwiseIdenticalAndCounted) {
  const SelectionProfile profile = tiny_profile(1.5);
  ProfileCache cache(1 << 20);
  const CacheKey key = manual_key(1);
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, profile);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  expect_profiles_bitwise(*hit, profile);
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(ProfileCacheTest, EvictsInExactLruOrder) {
  const SelectionProfile profile = tiny_profile(2.0);
  const std::size_t entry = ProfileCache::entry_bytes(profile);
  ProfileCache cache(3 * entry);
  for (std::uint64_t tag = 1; tag <= 3; ++tag) {
    EXPECT_TRUE(cache.insert(manual_key(tag), profile).empty());
  }
  // Key 1 is now LRU; inserting a fourth evicts exactly it.
  const std::vector<CacheKey> evicted = cache.insert(manual_key(4), profile);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], manual_key(1));
  const std::vector<CacheKey> mru = cache.keys_mru_first();
  ASSERT_EQ(mru.size(), 3u);
  EXPECT_EQ(mru[0], manual_key(4));
  EXPECT_EQ(mru[1], manual_key(3));
  EXPECT_EQ(mru[2], manual_key(2));
}

TEST(ProfileCacheTest, LookupPromotesToMru) {
  const SelectionProfile profile = tiny_profile(2.5);
  ProfileCache cache(3 * ProfileCache::entry_bytes(profile));
  for (std::uint64_t tag = 1; tag <= 3; ++tag) {
    cache.insert(manual_key(tag), profile);
  }
  ASSERT_TRUE(cache.lookup(manual_key(1)).has_value());  // promote the LRU
  const std::vector<CacheKey> evicted = cache.insert(manual_key(4), profile);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], manual_key(2));  // 2 became LRU after the touch
}

TEST(ProfileCacheTest, ByteAccountingTracksResidentEntries) {
  const SelectionProfile profile = tiny_profile(3.0);
  const std::size_t entry = ProfileCache::entry_bytes(profile);
  ProfileCache cache(10 * entry);
  for (std::uint64_t tag = 1; tag <= 4; ++tag) {
    cache.insert(manual_key(tag), profile);
  }
  EXPECT_EQ(cache.resident_bytes(), 4 * entry);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().resident_bytes, 4 * entry);
  EXPECT_EQ(cache.stats().resident_entries, 4u);
  cache.clear();
  EXPECT_EQ(cache.resident_bytes(), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ProfileCacheTest, OversizeEntryRejectedNotStored) {
  const SelectionProfile profile = tiny_profile(4.0, 64);
  ProfileCache cache(ProfileCache::entry_bytes(profile) - 1);
  EXPECT_TRUE(cache.insert(manual_key(1), profile).empty());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().rejected_oversize, 1u);
  EXPECT_FALSE(cache.lookup(manual_key(1)).has_value());
}

TEST(ProfileCacheTest, ZeroBudgetDisablesTheCache) {
  ProfileCache cache(0);
  const SelectionProfile profile = tiny_profile(5.0);
  cache.insert(manual_key(1), profile);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().rejected_oversize, 1u);
  EXPECT_FALSE(cache.lookup(manual_key(1)).has_value());
}

TEST(ProfileCacheTest, RefreshInPlaceReaccountsBytes) {
  ProfileCache cache(1 << 20);
  const SelectionProfile small = tiny_profile(6.0, 4);
  const SelectionProfile large = tiny_profile(6.0, 24);
  cache.insert(manual_key(1), small);
  cache.insert(manual_key(1), large);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.resident_bytes(), ProfileCache::entry_bytes(large));
  const auto hit = cache.lookup(manual_key(1));
  ASSERT_TRUE(hit.has_value());
  expect_profiles_bitwise(*hit, large);
}

TEST(ProfileCacheTest, FingerprintCollisionRegression) {
  // Even a full 128-bit fingerprint collision (manufactured here) must not
  // alias entries: the key also carries exact lengths, and equality
  // compares every field.
  CacheKey a = manual_key(1);
  CacheKey b = a;
  b.n = a.n + 1;
  CacheKey c = a;
  c.grid_size = a.grid_size + 1;
  ASSERT_EQ(a.data_fp, b.data_fp);
  ASSERT_EQ(a.grid_fp, c.grid_fp);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  ProfileCache cache(1 << 20);
  cache.insert(a, tiny_profile(1.0));
  cache.insert(b, tiny_profile(2.0));
  cache.insert(c, tiny_profile(3.0));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.lookup(a)->scores[0], 1.0);
  EXPECT_EQ(cache.lookup(b)->scores[0], 2.0);
  EXPECT_EQ(cache.lookup(c)->scores[0], 3.0);
}

// ---------------------------------------------------------------------------
// Server knobs (strict validators)

TEST(ParseWorkerCount, AcceptsDigitsInRange) {
  const struct {
    const char* text;
    std::size_t want;
  } ok[] = {{"1", 1}, {"8", 8}, {"07", 7}, {"256", 256}};
  for (const auto& row : ok) {
    EXPECT_EQ(kreg::serve::parse_worker_count(row.text), row.want)
        << "text=" << row.text;
  }
}

TEST(ParseWorkerCount, RejectsEmptyZeroGarbageAndOverflow) {
  const char* bad[] = {"",   "0",   "-1",  " 4", "4 ",
                       "4x", "x4",  "+2",  "1e2", "0.5",
                       "257", "99999", "184467440737095516160"};
  for (const char* text : bad) {
    EXPECT_THROW(kreg::serve::parse_worker_count(text), std::invalid_argument)
        << "text='" << text << "'";
  }
}

TEST(ResolveWorkerCount, SentinelConsultsEnvironment) {
  ::unsetenv("KREG_SERVE_WORKERS");
  EXPECT_EQ(kreg::serve::resolve_worker_count(kreg::serve::kServeFromEnv, 0),
            0u);
  ::setenv("KREG_SERVE_WORKERS", "", 1);
  EXPECT_EQ(kreg::serve::resolve_worker_count(kreg::serve::kServeFromEnv, 3),
            3u);
  ::setenv("KREG_SERVE_WORKERS", "12", 1);
  EXPECT_EQ(kreg::serve::resolve_worker_count(kreg::serve::kServeFromEnv, 0),
            12u);
  ::setenv("KREG_SERVE_WORKERS", "0", 1);
  EXPECT_THROW(kreg::serve::resolve_worker_count(kreg::serve::kServeFromEnv, 0),
               std::invalid_argument);
  ::setenv("KREG_SERVE_WORKERS", "lots", 1);
  EXPECT_THROW(kreg::serve::resolve_worker_count(kreg::serve::kServeFromEnv, 0),
               std::invalid_argument);
  ::unsetenv("KREG_SERVE_WORKERS");
  // Explicit values: 0 means fallback; above the cap throws.
  EXPECT_EQ(kreg::serve::resolve_worker_count(0, 5), 5u);
  EXPECT_EQ(kreg::serve::resolve_worker_count(16, 0), 16u);
  EXPECT_THROW(kreg::serve::resolve_worker_count(257, 0),
               std::invalid_argument);
}

TEST(ParseCacheBudget, KeywordsSuffixesAndRejects) {
  EXPECT_EQ(kreg::serve::parse_cache_budget("0"), 0u);
  EXPECT_EQ(kreg::serve::parse_cache_budget("off"), 0u);
  EXPECT_EQ(kreg::serve::parse_cache_budget("none"), 0u);
  EXPECT_EQ(kreg::serve::parse_cache_budget("disabled"), 0u);
  EXPECT_EQ(kreg::serve::parse_cache_budget("4096"), 4096u);
  EXPECT_EQ(kreg::serve::parse_cache_budget("64K"), std::size_t{64} << 10);
  EXPECT_EQ(kreg::serve::parse_cache_budget("2MiB"), std::size_t{2} << 20);
  // parse_memory_budget tolerates surrounding whitespace (established
  // library behaviour); everything else about it is strict.
  EXPECT_EQ(kreg::serve::parse_cache_budget(" 4 "), 4u);
  const char* bad[] = {"", "OFF", "-1", "1.5M", "1QB", "4x4"};
  for (const char* text : bad) {
    EXPECT_THROW(kreg::serve::parse_cache_budget(text), std::invalid_argument)
        << "text='" << text << "'";
  }
}

TEST(ResolveCacheBudget, SentinelConsultsEnvironment) {
  ::unsetenv("KREG_SERVE_CACHE_BUDGET");
  EXPECT_EQ(kreg::serve::resolve_cache_budget(kreg::serve::kServeFromEnv),
            kreg::serve::kDefaultCacheBudgetBytes);
  ::setenv("KREG_SERVE_CACHE_BUDGET", "off", 1);
  EXPECT_EQ(kreg::serve::resolve_cache_budget(kreg::serve::kServeFromEnv), 0u);
  ::setenv("KREG_SERVE_CACHE_BUDGET", "2M", 1);
  EXPECT_EQ(kreg::serve::resolve_cache_budget(kreg::serve::kServeFromEnv),
            std::size_t{2} << 20);
  ::setenv("KREG_SERVE_CACHE_BUDGET", "junk", 1);
  EXPECT_THROW(kreg::serve::resolve_cache_budget(kreg::serve::kServeFromEnv),
               std::invalid_argument);
  ::unsetenv("KREG_SERVE_CACHE_BUDGET");
  // Explicit values — including 0, cache off — pass through verbatim.
  EXPECT_EQ(kreg::serve::resolve_cache_budget(0), 0u);
  EXPECT_EQ(kreg::serve::resolve_cache_budget(1234), 1234u);
}

TEST(ValidateSocketPath, AcceptsAbsoluteRejectsTheRest) {
  EXPECT_NO_THROW(kreg::serve::validate_socket_path("/tmp/kreg.sock"));
  EXPECT_THROW(kreg::serve::validate_socket_path(""), std::invalid_argument);
  EXPECT_THROW(kreg::serve::validate_socket_path("relative.sock"),
               std::invalid_argument);
  EXPECT_THROW(
      kreg::serve::validate_socket_path("/" + std::string(107, 'a') + ".sock"),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Protocol

TEST(ParseRequest, VerbsAndStrictArity) {
  using kreg::serve::RequestKind;
  EXPECT_EQ(kreg::serve::parse_request("ping").kind, RequestKind::kPing);
  EXPECT_EQ(kreg::serve::parse_request("  stats ").kind, RequestKind::kStats);
  EXPECT_EQ(kreg::serve::parse_request("shutdown").kind,
            RequestKind::kShutdown);
  EXPECT_THROW(kreg::serve::parse_request(""), std::invalid_argument);
  EXPECT_THROW(kreg::serve::parse_request("ping now"), std::invalid_argument);
  EXPECT_THROW(kreg::serve::parse_request("selec"), std::invalid_argument);
}

TEST(ParseRequest, SelectDefaults) {
  const kreg::serve::Request request = kreg::serve::parse_request("select");
  EXPECT_EQ(request.kind, kreg::serve::RequestKind::kSelect);
  EXPECT_EQ(request.estimator, EstimatorKind::kNadarayaWatson);
  EXPECT_EQ(request.kernel, KernelType::kEpanechnikov);
  EXPECT_EQ(request.precision, Precision::kDouble);
  EXPECT_EQ(request.dgp, "paper");
  EXPECT_EQ(request.n, 512u);
  EXPECT_EQ(request.seed, 1u);
  EXPECT_FALSE(request.grid.set);
  EXPECT_EQ(request.backend, JobBackend::kDevice);
}

TEST(ParseRequest, SelectFullLine) {
  const kreg::serve::Request request = kreg::serve::parse_request(
      "select estimator=oscv kernel=uniform precision=float dgp=paper "
      "n=300 seed=42 grid=0.1:0.9:17 backend=tiled lane=8 budget=2MiB");
  EXPECT_EQ(request.estimator, EstimatorKind::kOscv);
  EXPECT_EQ(request.kernel, KernelType::kUniform);
  EXPECT_EQ(request.precision, Precision::kFloat);
  EXPECT_EQ(request.n, 300u);
  EXPECT_EQ(request.seed, 42u);
  ASSERT_TRUE(request.grid.set);
  EXPECT_EQ(request.grid.lo, 0.1);
  EXPECT_EQ(request.grid.hi, 0.9);
  EXPECT_EQ(request.grid.count, 17u);
  EXPECT_EQ(request.backend, JobBackend::kHostTiled);
  EXPECT_EQ(request.lane_width, 8u);
  EXPECT_EQ(request.budget_bytes, std::size_t{2} << 20);
}

TEST(ParseRequest, RejectsMalformedSelects) {
  const char* bad[] = {
      "select nonsense",          "select =value",
      "select unknown=1",         "select estimator=ols",
      "select n=1",               "select n=abc",
      "select grid=0.1:0.9",      "select grid=0.1:0.9:0",
      "select grid=1:2:3:4",      "select backend=gpu",
      "select precision=half",    "select kernel=boxcar",
      "select dgp=",              "select budget=1.5X",
  };
  for (const char* line : bad) {
    EXPECT_THROW(kreg::serve::parse_request(line), std::invalid_argument)
        << "line='" << line << "'";
  }
}

TEST(ParseKernelAndPrecision, RoundTripsAndRejects) {
  for (const KernelType kernel : kreg::kAllKernels) {
    EXPECT_EQ(kreg::serve::parse_kernel(kreg::to_string(kernel)), kernel);
  }
  EXPECT_THROW(kreg::serve::parse_kernel("epan"), std::invalid_argument);
  EXPECT_EQ(kreg::serve::parse_precision("float"), Precision::kFloat);
  EXPECT_EQ(kreg::serve::parse_precision("single"), Precision::kFloat);
  EXPECT_EQ(kreg::serve::parse_precision("double"), Precision::kDouble);
  EXPECT_THROW(kreg::serve::parse_precision("Double"), std::invalid_argument);
}

TEST(FormatOutcome, RoundTripsSelectedBitwise) {
  JobOutcome outcome;
  outcome.id = 7;
  outcome.ok = true;
  outcome.cache_hit = true;
  outcome.profile = tiny_profile(0.1);
  outcome.profile.selected = 0.12345678901234567;
  const std::string line = kreg::serve::format_outcome(outcome);
  EXPECT_EQ(line.rfind("ok id=7 ", 0), 0u);
  EXPECT_NE(line.find(" cache=hit"), std::string::npos);
  const std::size_t pos = line.find("selected=");
  ASSERT_NE(pos, std::string::npos);
  const double parsed = std::strtod(line.c_str() + pos + 9, nullptr);
  EXPECT_EQ(parsed, outcome.profile.selected);  // %.17g round-trips bitwise
  JobOutcome failed;
  failed.id = 9;
  failed.error = "boom";
  EXPECT_EQ(kreg::serve::format_outcome(failed), "error id=9 boom");
}

// ---------------------------------------------------------------------------
// Job layer

TEST(JobBackendTest, ParseToStringRoundTrip) {
  for (const JobBackend backend :
       {JobBackend::kHostSweep, JobBackend::kHostTiled, JobBackend::kDevice}) {
    EXPECT_EQ(kreg::parse_job_backend(kreg::to_string(backend)), backend);
  }
  EXPECT_THROW(kreg::parse_job_backend("gpu"), std::invalid_argument);
  EXPECT_THROW(kreg::parse_job_backend(""), std::invalid_argument);
}

TEST(ValidateJob, ErrorTable) {
  const auto data = make_data(64, 1);
  {
    SelectionJob job = make_job(data);
    job.data = nullptr;
    EXPECT_THROW(kreg::validate_job(job), std::invalid_argument);
  }
  {
    SelectionJob job = make_job(data);
    job.bandwidth_grid.clear();
    EXPECT_THROW(kreg::validate_job(job), std::invalid_argument);
  }
  {
    SelectionJob job = make_job(data);
    std::swap(job.bandwidth_grid.front(), job.bandwidth_grid.back());
    EXPECT_THROW(kreg::validate_job(job), std::invalid_argument);  // not ascending
  }
  {
    SelectionJob job = make_job(data);
    job.neighbor_grid = {2, 4};  // both grids set
    EXPECT_THROW(kreg::validate_job(job), std::invalid_argument);
  }
  {
    SelectionJob job = make_job(data, EstimatorKind::kKnn);
    job.neighbor_grid.back() = data->size();  // count must stay <= n-1
    EXPECT_THROW(kreg::validate_job(job), std::invalid_argument);
  }
  {
    SelectionJob job = make_job(data);
    job.kernel = KernelType::kGaussian;  // unbounded support: not sweepable
    EXPECT_THROW(kreg::validate_job(job), std::invalid_argument);
  }
  EXPECT_NO_THROW(kreg::validate_job(make_job(data)));
}

TEST(JobStreamedBytes, GrowsWithResidentGridBlock) {
  const SelectionJob job = make_job(make_data(128, 2));
  const std::size_t base = kreg::job_streamed_bytes(job, 0);
  const std::size_t one = kreg::job_streamed_bytes(job, 1);
  const std::size_t full = kreg::job_streamed_bytes(job, job.grid_size());
  EXPECT_GT(base, 0u);
  EXPECT_GE(one, base);
  EXPECT_GT(full, one);
}

// ---------------------------------------------------------------------------
// Scheduler, deterministic executor

SchedulerConfig deterministic_config() {
  SchedulerConfig config;
  config.deterministic = true;
  return config;
}

TEST(SchedulerTest, MatchesDirectRunJobAcrossEstimatorsAndBackends) {
  const auto data = make_data(128, 11);
  Scheduler scheduler(deterministic_config());
  for (const EstimatorKind estimator :
       {EstimatorKind::kNadarayaWatson, EstimatorKind::kKnn,
        EstimatorKind::kOscv}) {
    for (const JobBackend backend :
         {JobBackend::kHostSweep, JobBackend::kHostTiled,
          JobBackend::kDevice}) {
      SelectionJob job = make_job(data, estimator, backend);
      auto future = scheduler.submit(job);
      scheduler.drain();
      const JobOutcome outcome = future.get();
      ASSERT_TRUE(outcome.ok) << outcome.error;
      const SelectionProfile want = direct_run(job);
      expect_profiles_bitwise(outcome.profile, want);
      EXPECT_EQ(outcome.profile.method, want.method)
          << "estimator=" << static_cast<int>(estimator)
          << " backend=" << static_cast<int>(backend);
    }
  }
  // Across the 3×3 sweep one miss per bitwise family: knn and oscv each
  // miss once and hit twice (all backends share their family); NW misses
  // twice (host family, then the separate device family) and hits once.
  EXPECT_EQ(scheduler.stats().cache_misses, 4u);
  EXPECT_EQ(scheduler.stats().cache_hits, 5u);
}

TEST(SchedulerTest, CacheHitEventSequenceExact) {
  const auto data = make_data(96, 5);
  Scheduler scheduler(deterministic_config());
  auto first = scheduler.submit(make_job(data));
  scheduler.drain();
  auto second = scheduler.submit(make_job(data));
  scheduler.drain();
  EXPECT_TRUE(first.get().ok);
  const JobOutcome repeat = second.get();
  EXPECT_TRUE(repeat.ok);
  EXPECT_TRUE(repeat.cache_hit);
  const std::vector<EventKind> got = kinds(scheduler.events());
  const std::vector<EventKind> want = {
      EventKind::kSubmitted, EventKind::kCacheMiss, EventKind::kAdmitted,
      EventKind::kCompleted, EventKind::kSubmitted, EventKind::kCacheHit,
      EventKind::kCompleted};
  EXPECT_EQ(got, want);
}

TEST(SchedulerTest, CacheHitServesRequestersBackendMethod) {
  // OSCV is bitwise identical on every backend (one cache family), so a
  // host request can legitimately be served from a device-populated entry.
  const auto data = make_data(96, 6);
  Scheduler scheduler(deterministic_config());
  auto device_future = scheduler.submit(make_job(data, EstimatorKind::kOscv));
  scheduler.drain();
  SelectionJob host_job = make_job(data, EstimatorKind::kOscv);
  host_job.backend = JobBackend::kHostSweep;
  auto host_future = scheduler.submit(host_job);
  scheduler.drain();
  const JobOutcome device_outcome = device_future.get();
  const JobOutcome host_outcome = host_future.get();
  ASSERT_TRUE(host_outcome.ok);
  EXPECT_TRUE(host_outcome.cache_hit);
  // The payload is the cached device launch bit-for-bit, but the method
  // names what *this* request asked for.
  expect_profiles_bitwise(host_outcome.profile, device_outcome.profile);
  EXPECT_EQ(host_outcome.profile.method, kreg::job_method(host_job));
  EXPECT_NE(host_outcome.profile.method, device_outcome.profile.method);
}

TEST(SchedulerTest, WithinWaveDuplicateCoalescesOntoOneLaunch) {
  const auto data = make_data(96, 7);
  Scheduler scheduler(deterministic_config());
  auto a = scheduler.submit(make_job(data));
  auto b = scheduler.submit(make_job(data));
  scheduler.drain();
  const JobOutcome first = a.get();
  const JobOutcome twin = b.get();
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(twin.ok);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(twin.cache_hit);  // served from its executing twin
  expect_profiles_bitwise(twin.profile, first.profile);
  EXPECT_EQ(scheduler.stats().coalesced, 1u);
  EXPECT_EQ(scheduler.stats().launches, 1u);
}

TEST(SchedulerTest, CoSchedulesCompatibleSmallJobsOntoOneLaunch) {
  // OSCV: its device fold is bitwise invariant under grid composition, so
  // two different grids may share one merged launch.
  const auto data = make_data(96, 8);
  SelectionJob a = make_job(data, EstimatorKind::kOscv);
  SelectionJob b = make_job(data, EstimatorKind::kOscv);
  b.bandwidth_grid = kreg::BandwidthGrid(0.07, 0.8, 9).values();
  Scheduler scheduler(deterministic_config());
  auto fa = scheduler.submit(a);
  auto fb = scheduler.submit(b);
  scheduler.drain();
  const JobOutcome oa = fa.get();
  const JobOutcome ob = fb.get();
  ASSERT_TRUE(oa.ok) << oa.error;
  ASSERT_TRUE(ob.ok) << ob.error;
  EXPECT_EQ(scheduler.stats().launches, 1u);
  EXPECT_EQ(scheduler.stats().co_scheduled, 1u);
  bool saw_co_schedule = false;
  for (const Event& event : scheduler.events()) {
    saw_co_schedule = saw_co_schedule || event.kind == EventKind::kCoScheduled;
  }
  EXPECT_TRUE(saw_co_schedule);
  // Extraction from the merged launch must reproduce the solo runs exactly.
  expect_profiles_bitwise(oa.profile, direct_run(a));
  expect_profiles_bitwise(ob.profile, direct_run(b));
}

TEST(SchedulerTest, NwDeviceJobsNeverGridMerge) {
  // The NW device sweep's lane batching composes lanes across the whole
  // h-grid, so per-point bits depend on the grid's other members. Merging
  // two NW grids would change both jobs' last-ulp bits; the scheduler must
  // launch them separately, and each launch must match its solo run.
  const auto data = make_data(96, 8);
  SelectionJob a = make_job(data);
  SelectionJob b = make_job(data);
  b.bandwidth_grid = kreg::BandwidthGrid(0.07, 0.8, 9).values();
  Scheduler scheduler(deterministic_config());
  auto fa = scheduler.submit(a);
  auto fb = scheduler.submit(b);
  scheduler.drain();
  const JobOutcome oa = fa.get();
  const JobOutcome ob = fb.get();
  ASSERT_TRUE(oa.ok) << oa.error;
  ASSERT_TRUE(ob.ok) << ob.error;
  EXPECT_EQ(scheduler.stats().launches, 2u);
  EXPECT_EQ(scheduler.stats().co_scheduled, 0u);
  expect_profiles_bitwise(oa.profile, direct_run(a));
  expect_profiles_bitwise(ob.profile, direct_run(b));
}

TEST(SchedulerTest, CoScheduleLimitOneDisablesMerging) {
  const auto data = make_data(96, 8);
  SelectionJob a = make_job(data, EstimatorKind::kOscv);
  SelectionJob b = make_job(data, EstimatorKind::kOscv);
  b.bandwidth_grid = kreg::BandwidthGrid(0.07, 0.8, 9).values();
  SchedulerConfig config = deterministic_config();
  config.co_schedule_limit = 1;
  Scheduler scheduler(config);
  auto fa = scheduler.submit(a);
  auto fb = scheduler.submit(b);
  scheduler.drain();
  EXPECT_TRUE(fa.get().ok);
  EXPECT_TRUE(fb.get().ok);
  EXPECT_EQ(scheduler.stats().launches, 2u);
  EXPECT_EQ(scheduler.stats().co_scheduled, 0u);
}

TEST(SchedulerTest, AdmissionDefersWhenTheLedgerShareIsSpent) {
  // Both jobs pin k_block = 1, so each reservation is exactly the minimum
  // streaming footprint. Capacity = 1.5× that: the first job fits, the
  // second (different dataset, so not co-schedulable) cannot reserve its
  // minimum in the remaining half-share and waits for the next wave.
  SelectionJob probe = make_job(make_data(256, 21),
                                EstimatorKind::kNadarayaWatson,
                                JobBackend::kDevice, 48);
  probe.stream.k_block = 1;
  const std::size_t minimum = kreg::job_streamed_bytes(probe, 1);
  SchedulerConfig config = deterministic_config();
  config.device_budget_bytes = minimum + minimum / 2;
  Scheduler scheduler(config);
  SelectionJob second = make_job(make_data(256, 22),
                                 EstimatorKind::kNadarayaWatson,
                                 JobBackend::kDevice, 48);
  second.stream.k_block = 1;
  auto fa = scheduler.submit(probe);
  auto fb = scheduler.submit(second);
  scheduler.drain();
  const JobOutcome oa = fa.get();
  const JobOutcome ob = fb.get();
  ASSERT_TRUE(oa.ok) << oa.error;
  ASSERT_TRUE(ob.ok) << ob.error;
  EXPECT_GE(scheduler.stats().deferrals, 1u);
  EXPECT_GE(scheduler.stats().waves, 2u);
  bool saw_deferred = false;
  for (const Event& event : scheduler.events()) {
    saw_deferred = saw_deferred || event.kind == EventKind::kDeferred;
  }
  EXPECT_TRUE(saw_deferred);
}

TEST(SchedulerTest, SoloOverrideGuaranteesProgress) {
  // A budget below even the minimum streaming footprint: admission can
  // never fit the job, so the solo-override path must run it anyway
  // (where the streaming planner itself resolves or reports the truth)
  // instead of deferring forever.
  const SelectionJob job = make_job(make_data(256, 23));
  SchedulerConfig config = deterministic_config();
  config.device_budget_bytes = kreg::job_streamed_bytes(job, 0) / 2;
  Scheduler scheduler(config);
  auto future = scheduler.submit(job);
  scheduler.drain();
  const JobOutcome outcome = future.get();  // ok or a real planner error —
  EXPECT_GE(scheduler.stats().solo_overrides, 1u);  // never a hang
  EXPECT_EQ(scheduler.stats().deferrals, 0u);
  if (!outcome.ok) {
    EXPECT_FALSE(outcome.error.empty());
  }
}

TEST(SchedulerTest, EvictionHappensAtCommitAndIsRecorded) {
  const auto data = make_data(96, 9);
  SelectionJob first = make_job(data);
  // Budget sized to hold exactly one profile of this shape.
  Scheduler probe(deterministic_config());
  auto probe_future = probe.submit(first);
  probe.drain();
  const std::size_t one_entry =
      ProfileCache::entry_bytes(probe_future.get().profile);
  SchedulerConfig config = deterministic_config();
  config.cache_budget_bytes = one_entry + 64;
  Scheduler scheduler(config);
  auto fa = scheduler.submit(first);
  scheduler.drain();
  SelectionJob second = make_job(data);
  second.bandwidth_grid = kreg::BandwidthGrid(0.06, 0.9, 12).values();
  auto fb = scheduler.submit(second);
  scheduler.drain();
  EXPECT_TRUE(fa.get().ok);
  EXPECT_TRUE(fb.get().ok);
  EXPECT_GE(scheduler.cache_stats().evictions, 1u);
  EXPECT_EQ(scheduler.cache_stats().resident_entries, 1u);
  bool saw_evicted = false;
  for (const Event& event : scheduler.events()) {
    saw_evicted = saw_evicted || event.kind == EventKind::kEvicted;
  }
  EXPECT_TRUE(saw_evicted);
}

TEST(SchedulerTest, ZeroCacheBudgetNeverHits) {
  const auto data = make_data(96, 10);
  SchedulerConfig config = deterministic_config();
  config.cache_budget_bytes = 0;
  Scheduler scheduler(config);
  auto fa = scheduler.submit(make_job(data));
  scheduler.drain();
  auto fb = scheduler.submit(make_job(data));
  scheduler.drain();
  const JobOutcome oa = fa.get();
  const JobOutcome ob = fb.get();
  ASSERT_TRUE(oa.ok);
  ASSERT_TRUE(ob.ok);
  EXPECT_FALSE(ob.cache_hit);
  EXPECT_EQ(scheduler.stats().cache_hits, 0u);
  EXPECT_EQ(scheduler.stats().launches, 2u);
  expect_profiles_bitwise(ob.profile, oa.profile);  // still the same bits
}

TEST(SchedulerTest, ValidationErrorFailsTheJobNotTheScheduler) {
  Scheduler scheduler(deterministic_config());
  SelectionJob bad = make_job(make_data(64, 12));
  bad.bandwidth_grid.clear();
  auto fb = scheduler.submit(bad);
  auto fg = scheduler.submit(make_job(make_data(64, 12)));
  scheduler.drain();
  const JobOutcome outcome = fb.get();
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("SelectionJob"), std::string::npos);
  EXPECT_TRUE(fg.get().ok);  // the wave carries on past the failed member
  EXPECT_EQ(scheduler.stats().failed, 1u);
  EXPECT_EQ(scheduler.stats().completed, 1u);
  // The failed member never reaches the cache or a device; commit delivers
  // outcomes in submission order, failure first.
  const std::vector<EventKind> want = {
      EventKind::kSubmitted, EventKind::kSubmitted, EventKind::kCacheMiss,
      EventKind::kAdmitted,  EventKind::kFailed,    EventKind::kCompleted};
  EXPECT_EQ(kinds(scheduler.events()), want);
}

TEST(SchedulerTest, DestructorFailsOrphanedJobs) {
  std::future<JobOutcome> orphan;
  {
    Scheduler scheduler(deterministic_config());
    orphan = scheduler.submit(make_job(make_data(64, 13)));
    // no drain — destroyed with the job still queued
  }
  const JobOutcome outcome = orphan.get();
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("destroyed"), std::string::npos);
}

TEST(SchedulerTest, ThreadedExecutorMatchesDeterministicDecisions) {
  // Same submission order → same waves → same decision sequence and the
  // same bits, whether groups execute inline or on the worker pool.
  const auto data_a = make_data(96, 14);
  const auto data_b = make_data(96, 15);
  const auto submit_all = [&](Scheduler& scheduler) {
    std::vector<std::future<JobOutcome>> futures;
    futures.push_back(scheduler.submit(make_job(data_a)));
    futures.push_back(
        scheduler.submit(make_job(data_b, EstimatorKind::kOscv)));
    futures.push_back(scheduler.submit(make_job(data_a)));  // coalesces
    SelectionJob wide = make_job(data_b, EstimatorKind::kOscv);
    wide.bandwidth_grid = kreg::BandwidthGrid(0.07, 0.8, 9).values();
    futures.push_back(scheduler.submit(wide));  // co-schedules with data_b
    futures.push_back(
        scheduler.submit(make_job(data_a, EstimatorKind::kKnn)));
    scheduler.drain();
    return futures;
  };
  Scheduler deterministic(deterministic_config());
  SchedulerConfig threaded_config;
  threaded_config.deterministic = false;
  threaded_config.workers = 4;
  Scheduler threaded(threaded_config);
  auto det_futures = submit_all(deterministic);
  auto thr_futures = submit_all(threaded);
  ASSERT_EQ(det_futures.size(), thr_futures.size());
  for (std::size_t i = 0; i < det_futures.size(); ++i) {
    const JobOutcome det = det_futures[i].get();
    const JobOutcome thr = thr_futures[i].get();
    ASSERT_TRUE(det.ok) << det.error;
    ASSERT_TRUE(thr.ok) << thr.error;
    EXPECT_EQ(det.cache_hit, thr.cache_hit) << "job " << i;
    expect_profiles_bitwise(thr.profile, det.profile);
    EXPECT_EQ(thr.profile.method, det.profile.method);
  }
  EXPECT_EQ(kinds(threaded.events()), kinds(deterministic.events()));
  const kreg::serve::SchedulerStats det_stats = deterministic.stats();
  const kreg::serve::SchedulerStats thr_stats = threaded.stats();
  EXPECT_EQ(thr_stats.launches, det_stats.launches);
  EXPECT_EQ(thr_stats.cache_hits, det_stats.cache_hits);
  EXPECT_EQ(thr_stats.cache_misses, det_stats.cache_misses);
  EXPECT_EQ(thr_stats.coalesced, det_stats.coalesced);
  EXPECT_EQ(thr_stats.co_scheduled, det_stats.co_scheduled);
}

// ---------------------------------------------------------------------------
// ServeContext (the daemon minus the sockets)

SchedulerConfig pumpable_config() {
  SchedulerConfig config;
  config.deterministic = true;  // pump drains inline, still deterministic
  return config;
}

TEST(ServeContextTest, DatasetRegistrySharesHandles) {
  ServeContext context(pumpable_config());
  const auto a = context.dataset("paper", 128, 3);
  const auto b = context.dataset("paper", 128, 3);
  EXPECT_EQ(a.get(), b.get());  // same handle → co-schedulable requests
  EXPECT_NE(a.get(), context.dataset("paper", 128, 4).get());
  EXPECT_THROW(context.dataset("nope", 128, 3), std::invalid_argument);
}

TEST(ServeContextTest, HandleLineControlVerbs) {
  ServeContext context(pumpable_config());
  bool shutdown = false;
  EXPECT_EQ(context.handle_line("ping", &shutdown), "ok pong");
  EXPECT_FALSE(shutdown);
  EXPECT_EQ(context.handle_line("stats", &shutdown).rfind("ok submitted=", 0),
            0u);
  EXPECT_EQ(context.handle_line("shutdown", &shutdown), "ok shutting down");
  EXPECT_TRUE(shutdown);
  EXPECT_EQ(context.handle_line("bogus", nullptr).rfind("error ", 0), 0u);
  EXPECT_EQ(context.handle_line("select n=1", nullptr).rfind("error ", 0), 0u);
}

TEST(ServeContextTest, SelectMatchesDirectRunJobBitwise) {
  ServeContext context(pumpable_config());
  context.scheduler().start_pump();
  const std::string response = context.handle_line(
      "select estimator=nw n=128 seed=5 grid=0.05:1.0:12 backend=device",
      nullptr);
  context.scheduler().stop_pump();
  ASSERT_EQ(response.rfind("ok ", 0), 0u) << response;
  // Reconstruct the same job and compare the wire-formatted selected value
  // bitwise (%.17g round-trips doubles exactly).
  SelectionJob job = make_job(context.dataset("paper", 128, 5));
  const SelectionProfile want = direct_run(job);
  const std::size_t pos = response.find("selected=");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(std::strtod(response.c_str() + pos + 9, nullptr), want.selected);
  EXPECT_NE(response.find("method=" + want.method), std::string::npos);
}

TEST(ServeContextTest, KnnGridSpecRoundsToAscendingCounts) {
  ServeContext context(pumpable_config());
  kreg::serve::Request request =
      kreg::serve::parse_request("select estimator=knn n=64 grid=2:10:5");
  const SelectionJob job = context.job_from_request(request);
  const std::vector<std::size_t> want = {2, 4, 6, 8, 10};
  EXPECT_EQ(job.neighbor_grid, want);
  EXPECT_TRUE(job.bandwidth_grid.empty());
  kreg::serve::Request bad =
      kreg::serve::parse_request("select estimator=knn n=64 grid=0:10:5");
  EXPECT_THROW(context.job_from_request(bad), std::invalid_argument);
}

}  // namespace
