// Tests for the multi-device selector: agreement with the single-device
// program, capacity scaling across devices, odd partitions, and composition
// with streaming mode.
#include <gtest/gtest.h>

#include <cmath>

#include "core/grid.hpp"
#include "core/multi_device_selector.hpp"
#include "core/selectors.hpp"
#include "core/spmd_selector.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"
#include "spmd/errors.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::MultiDeviceGridSelector;
using kreg::Precision;
using kreg::SpmdSelectorConfig;
using kreg::data::Dataset;
using kreg::rng::Stream;
using kreg::spmd::Device;
using kreg::spmd::DeviceProperties;

Dataset paper_data(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  return kreg::data::paper_dgp(n, s);
}

SpmdSelectorConfig double_cfg() {
  SpmdSelectorConfig cfg;
  cfg.precision = Precision::kDouble;
  return cfg;
}

TEST(MultiDevice, MatchesSingleDeviceSelection) {
  Device a;
  Device b;
  Device single;
  const Dataset d = paper_data(301, 1);  // odd: uneven slices
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 40);

  const auto one =
      kreg::SpmdGridSelector(single, double_cfg()).select(d, grid);
  const auto two =
      MultiDeviceGridSelector({&a, &b}, double_cfg()).select(d, grid);

  EXPECT_DOUBLE_EQ(two.bandwidth, one.bandwidth);
  ASSERT_EQ(two.scores.size(), one.scores.size());
  for (std::size_t i = 0; i < one.scores.size(); ++i) {
    EXPECT_NEAR(two.scores[i], one.scores[i],
                1e-10 * std::max(1.0, one.scores[i]));
  }
}

TEST(MultiDevice, MatchesHostReferenceWithThreeDevices) {
  Device a;
  Device b;
  Device c;
  const Dataset d = paper_data(200, 2);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 25);
  const auto host = kreg::SortedGridSelector().select(d, grid);
  const auto multi =
      MultiDeviceGridSelector({&a, &b, &c}, double_cfg()).select(d, grid);
  EXPECT_DOUBLE_EQ(multi.bandwidth, host.bandwidth);
  for (std::size_t i = 0; i < host.scores.size(); ++i) {
    EXPECT_NEAR(multi.scores[i], host.scores[i],
                1e-9 * std::max(1.0, host.scores[i]));
  }
}

TEST(MultiDevice, SingleDeviceListBehavesLikeSpmdSelector) {
  Device dev;
  Device reference_dev;
  const Dataset d = paper_data(150, 3);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 12);
  const auto multi =
      MultiDeviceGridSelector({&dev}, double_cfg()).select(d, grid);
  const auto single =
      kreg::SpmdGridSelector(reference_dev, double_cfg()).select(d, grid);
  EXPECT_DOUBLE_EQ(multi.bandwidth, single.bandwidth);
}

TEST(MultiDevice, TwoDevicesRoughlyHalveTheFootprint) {
  const std::size_t one = kreg::SpmdGridSelector::estimated_bytes(
      20000, 50, Precision::kFloat, false);
  const std::size_t per_dev =
      MultiDeviceGridSelector::estimated_bytes_per_device(
          20000, 50, 2, Precision::kFloat, false);
  EXPECT_LT(per_dev, one * 6 / 10);  // slightly over half (x/y replicated)
}

TEST(MultiDevice, CapacityDoublesAcrossTwoSmallDevices) {
  // A dataset whose n×n matrices overflow one 1 MB device but fit when the
  // rows are split across two (n = 448: single needs ~1.6 MB, each half
  // ~0.94 MB).
  const Dataset d = paper_data(448, 4);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 8);
  SpmdSelectorConfig cfg;  // float
  // The per-row plan is the one with the n×n matrices; the window default
  // would fit on the lone device and defeat the capacity demonstration.
  cfg.algorithm = kreg::SweepAlgorithm::kPerRowSort;

  Device lone(DeviceProperties::tiny(1 << 20));
  EXPECT_THROW(kreg::SpmdGridSelector(lone, cfg).select(d, grid),
               kreg::spmd::DeviceAllocError);

  Device a(DeviceProperties::tiny(1 << 20));
  Device b(DeviceProperties::tiny(1 << 20));
  EXPECT_NO_THROW(MultiDeviceGridSelector({&a, &b}, cfg).select(d, grid));
}

TEST(MultiDevice, ComposesWithStreaming) {
  Device a(DeviceProperties::tiny(1 << 20));
  Device b(DeviceProperties::tiny(1 << 20));
  const Dataset d = paper_data(1500, 5);  // too big even split, unless streaming
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 8);
  SpmdSelectorConfig cfg;
  cfg.streaming = true;
  EXPECT_NO_THROW(MultiDeviceGridSelector({&a, &b}, cfg).select(d, grid));
}

TEST(MultiDevice, MemoryReleasedOnAllDevices) {
  Device a;
  Device b;
  const Dataset d = paper_data(100, 6);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 10);
  (void)MultiDeviceGridSelector({&a, &b}, double_cfg()).select(d, grid);
  EXPECT_EQ(a.global_allocated(), 0u);
  EXPECT_EQ(b.global_allocated(), 0u);
  EXPECT_GT(a.global_peak(), 0u);
  EXPECT_GT(b.global_peak(), 0u);
}

TEST(MultiDevice, ValidatesConstruction) {
  EXPECT_THROW(MultiDeviceGridSelector({}, SpmdSelectorConfig{}),
               std::invalid_argument);
  Device dev;
  EXPECT_THROW(
      MultiDeviceGridSelector({&dev, nullptr}, SpmdSelectorConfig{}),
      std::invalid_argument);
}

TEST(MultiDevice, FloatPathAgreesOnSelection) {
  Device a;
  Device b;
  Device single;
  const Dataset d = paper_data(400, 7);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
  SpmdSelectorConfig cfg;  // float
  const auto one = kreg::SpmdGridSelector(single, cfg).select(d, grid);
  const auto two = MultiDeviceGridSelector({&a, &b}, cfg).select(d, grid);
  EXPECT_DOUBLE_EQ(two.bandwidth, one.bandwidth);
}

TEST(MultiDevice, MoreDevicesThanObservations) {
  Device a;
  Device b;
  Device c;
  Device d4;
  Dataset d{{0.1, 0.5, 0.9}, {1.0, 2.0, 3.0}};
  const BandwidthGrid grid(0.2, 1.0, 5);
  const auto r = MultiDeviceGridSelector({&a, &b, &c, &d4}, double_cfg())
                     .select(d, grid);
  Device ref;
  const auto single = kreg::SpmdGridSelector(ref, double_cfg()).select(d, grid);
  EXPECT_DOUBLE_EQ(r.bandwidth, single.bandwidth);
}

}  // namespace
