// Cross-module edge cases: file-level CSV I/O, buffer move semantics under
// ledger accounting, pool shutdown draining, degenerate grids, and
// closed-form equivalences.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "core/kreg.hpp"
#include "spmd/device.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::KernelType;
using kreg::data::Dataset;
using kreg::rng::Stream;

TEST(CsvFiles, RoundTripOnDisk) {
  Stream s(1);
  const Dataset d = kreg::data::paper_dgp(64, s);
  const std::string path =
      (std::filesystem::temp_directory_path() / "kreg_csv_roundtrip.csv")
          .string();
  kreg::data::write_csv_file(path, d);
  const Dataset back = kreg::data::read_csv_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.x[i], d.x[i]);
    EXPECT_DOUBLE_EQ(back.y[i], d.y[i]);
  }
}

TEST(CsvFiles, MissingFileThrows) {
  EXPECT_THROW(kreg::data::read_csv_file("/nonexistent/kreg.csv"),
               std::runtime_error);
}

TEST(DeviceBuffer, SelfMoveAssignmentIsSafe) {
  kreg::spmd::Device dev(kreg::spmd::DeviceProperties::tiny(1 << 16));
  auto buf = dev.alloc_global<float>(16);
  buf[3] = 7.0f;
  auto* self = &buf;
  buf = std::move(*self);
  EXPECT_EQ(buf.size(), 16u);
  EXPECT_EQ(buf[3], 7.0f);
  EXPECT_EQ(dev.global_allocated(), 64u);
}

TEST(DeviceBuffer, DefaultConstructedIsEmptyAndDroppable) {
  kreg::spmd::DeviceBuffer<double> empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size_bytes(), 0u);
  kreg::spmd::DeviceBuffer<double> other = std::move(empty);
  EXPECT_TRUE(other.empty());
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    kreg::parallel::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    // No wait_idle: the destructor must still run everything.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(NadarayaWatson, UniformKernelHugeBandwidthIsGlobalMean) {
  Stream s(2);
  const Dataset d = kreg::data::paper_dgp(128, s);
  const kreg::NadarayaWatson g(d, 1e6, KernelType::kUniform);
  double mean = 0.0;
  for (double y : d.y) {
    mean += y;
  }
  mean /= static_cast<double>(d.size());
  EXPECT_NEAR(g(0.5), mean, 1e-10);
  EXPECT_NEAR(g(-100.0), mean, 1e-10);  // still inside the huge support
}

TEST(Selectors, SingleBandwidthGridDegeneratesGracefully) {
  Stream s(3);
  const Dataset d = kreg::data::paper_dgp(100, s);
  const BandwidthGrid grid(0.2, 0.2, 1);
  const auto sorted = kreg::SortedGridSelector().select(d, grid);
  EXPECT_DOUBLE_EQ(sorted.bandwidth, 0.2);
  EXPECT_EQ(sorted.scores.size(), 1u);

  kreg::spmd::Device dev;
  kreg::SpmdSelectorConfig cfg;
  cfg.precision = kreg::Precision::kDouble;
  const auto device = kreg::SpmdGridSelector(dev, cfg).select(d, grid);
  EXPECT_DOUBLE_EQ(device.bandwidth, 0.2);
  EXPECT_NEAR(device.cv_score, sorted.cv_score, 1e-10);
}

TEST(Selectors, TwoObservationDatasetAllSelectors) {
  Dataset d{{0.2, 0.8}, {1.0, 3.0}};
  const BandwidthGrid grid(0.1, 1.0, 10);
  const auto naive = kreg::NaiveGridSelector().select(d, grid);
  const auto sorted = kreg::SortedGridSelector().select(d, grid);
  const auto dense = kreg::DenseGridSelector(KernelType::kEpanechnikov)
                         .select(d, grid);
  EXPECT_DOUBLE_EQ(naive.bandwidth, sorted.bandwidth);
  EXPECT_DOUBLE_EQ(naive.bandwidth, dense.bandwidth);
}

TEST(Version, ConstantsAreConsistent) {
  EXPECT_EQ(kreg::kVersionMajor, 1);
  EXPECT_STREQ(kreg::kVersionString, "1.0.0");
}

TEST(Grid, ExactlyDeviceCapIsAccepted) {
  kreg::spmd::Device dev;
  Stream s(4);
  const Dataset d = kreg::data::paper_dgp(64, s);
  const BandwidthGrid grid(1e-4, 1.0, 2048);
  kreg::SpmdSelectorConfig cfg;  // float: 2048 * 4 B == 8 KB exactly
  EXPECT_NO_THROW(kreg::SpmdGridSelector(dev, cfg).select(d, grid));
}

TEST(Refine, SingleRoundEqualsPlainSelection) {
  Stream s(5);
  const Dataset d = kreg::data::paper_dgp(150, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 16);
  kreg::RefineOptions opts;
  opts.rounds = 1;
  opts.k_per_round = 16;
  const auto refined =
      kreg::refine_select(kreg::SortedGridSelector(), d, grid, opts);
  const auto plain = kreg::SortedGridSelector().select(d, grid);
  EXPECT_DOUBLE_EQ(refined.bandwidth, plain.bandwidth);
  EXPECT_DOUBLE_EQ(refined.cv_score, plain.cv_score);
}

TEST(LooPredict, TwoPointTinyBandwidthBothDropped) {
  Dataset d{{0.0, 1.0}, {5.0, 9.0}};
  const auto all = kreg::loo_predict_all(d, 0.25);
  EXPECT_FALSE(all[0].valid);
  EXPECT_FALSE(all[1].valid);
  EXPECT_DOUBLE_EQ(kreg::cv_score(d, 0.25), 0.0);
}

}  // namespace
