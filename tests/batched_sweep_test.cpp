// Tests for the batched (SELL-C-σ-style) window-sweep execution layer:
// the σ-sort key and batch ordering, lane-width resolution, bitwise parity
// of the batched host profile with the scalar resident/tiled sweeps across
// lane widths, σ on/off, ragged tails, precisions, and streaming tilings —
// and the batched device kernels against the scalar device baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/batched_sweep.hpp"
#include "core/grid.hpp"
#include "core/multi_device_selector.hpp"
#include "core/spmd_selector.hpp"
#include "core/window_sweep.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"
#include "spmd/device.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::BatchedSweep;
using kreg::HostTiling;
using kreg::KernelType;
using kreg::MultiDeviceGridSelector;
using kreg::Precision;
using kreg::ResidualLayout;
using kreg::BatchRunStats;
using kreg::SelectionResult;
using kreg::SigmaPolicy;
using kreg::SpmdGridSelector;
using kreg::SpmdSelectorConfig;
using kreg::data::Dataset;
using kreg::rng::Stream;
using kreg::spmd::Device;

Dataset paper_data(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  return kreg::data::paper_dgp(n, s);
}

constexpr SigmaPolicy kAllPolicies[] = {
    SigmaPolicy::kNone, SigmaPolicy::kLength, SigmaPolicy::kPositionLength};

std::vector<double> test_grid(std::size_t k = 24) {
  return BandwidthGrid(0.05, 1.2, k).values();
}

void expect_bitwise_profiles(const std::vector<double>& got,
                             const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t b = 0; b < want.size(); ++b) {
    EXPECT_DOUBLE_EQ(got[b], want[b]) << "b=" << b;
  }
}

// --- resolve_lane_width ----------------------------------------------------

TEST(ResolveLaneWidth, ZeroSelectsDefaultAndValidWidthsPass) {
  EXPECT_EQ(kreg::resolve_lane_width(0), kreg::kDefaultLaneWidth);
  EXPECT_EQ(kreg::resolve_lane_width(1), 1u);
  EXPECT_EQ(kreg::resolve_lane_width(4), 4u);
  EXPECT_EQ(kreg::resolve_lane_width(8), 8u);
  EXPECT_EQ(kreg::resolve_lane_width(16), 16u);
}

TEST(ResolveLaneWidth, RejectsUnsupportedWidths) {
  EXPECT_THROW(kreg::resolve_lane_width(2), std::invalid_argument);
  EXPECT_THROW(kreg::resolve_lane_width(3), std::invalid_argument);
  EXPECT_THROW(kreg::resolve_lane_width(5), std::invalid_argument);
  EXPECT_THROW(kreg::resolve_lane_width(32), std::invalid_argument);
}

// --- admission_window_lengths ----------------------------------------------

TEST(AdmissionWindowLengths, MatchesBruteForceCount) {
  const Dataset data = paper_data(257, 11);
  const auto sorted = kreg::sort_dataset<double>(data.x, data.y);
  const double h_max = 0.9;
  const std::vector<std::size_t> lengths =
      kreg::admission_window_lengths<double>(sorted.x, h_max);
  ASSERT_EQ(lengths.size(), sorted.x.size());
  for (std::size_t i = 0; i < sorted.x.size(); ++i) {
    std::size_t count = 0;
    for (double xl : sorted.x) {
      const double d = xl < sorted.x[i] ? sorted.x[i] - xl : xl - sorted.x[i];
      if (d <= h_max) {
        ++count;
      }
    }
    EXPECT_EQ(lengths[i], count) << "i=" << i;
  }
}

TEST(AdmissionWindowLengths, FloatUsesFloatPredicate) {
  const Dataset data = paper_data(129, 7);
  const auto sorted = kreg::sort_dataset<float>(data.x, data.y);
  const float h_max = 0.5f;
  const std::vector<std::size_t> lengths =
      kreg::admission_window_lengths<float>(sorted.x, h_max);
  ASSERT_EQ(lengths.size(), sorted.x.size());
  for (std::size_t i = 0; i < sorted.x.size(); ++i) {
    std::size_t count = 0;
    for (float xl : sorted.x) {
      const float d = xl < sorted.x[i] ? sorted.x[i] - xl : xl - sorted.x[i];
      if (d <= h_max) {
        ++count;
      }
    }
    EXPECT_EQ(lengths[i], count) << "i=" << i;
  }
}

// --- sigma_batch_order -----------------------------------------------------

TEST(SigmaBatchOrder, IdentityWhenSortDisabled) {
  const std::vector<std::size_t> lengths = {5, 1, 9, 3, 7};
  const auto order = kreg::sigma_batch_order(lengths, 0, 5, 0, false);
  ASSERT_EQ(order.size(), 5u);
  for (std::uint32_t r = 0; r < 5; ++r) {
    EXPECT_EQ(order[r], r);
  }
}

TEST(SigmaBatchOrder, SortsDescendingStableWithinScope) {
  const std::vector<std::size_t> lengths = {5, 1, 9, 5, 7};
  const auto order = kreg::sigma_batch_order(lengths, 0, 5, 0, true);
  // Descending by length; ties (the two 5s) keep original order.
  const std::vector<std::uint32_t> want = {2, 4, 0, 3, 1};
  ASSERT_EQ(order.size(), want.size());
  for (std::size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(order[r], want[r]) << "r=" << r;
  }
}

TEST(SigmaBatchOrder, ScopesSortIndependently) {
  const std::vector<std::size_t> lengths = {1, 9, 5, 2, 8, 3};
  // scope = 3: {1,9,5} and {2,8,3} sort independently.
  const auto order = kreg::sigma_batch_order(lengths, 0, 6, 3, true);
  const std::vector<std::uint32_t> want = {1, 2, 0, 4, 5, 3};
  ASSERT_EQ(order.size(), want.size());
  for (std::size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(order[r], want[r]) << "r=" << r;
  }
}

TEST(SigmaBatchOrder, RespectsBeginOffsetAndIsAPermutation) {
  const std::vector<std::size_t> lengths = {0, 0, 4, 6, 5, 2};
  const auto order = kreg::sigma_batch_order(lengths, 2, 6, 0, true);
  ASSERT_EQ(order.size(), 4u);
  // Relative to begin = 2: lengths {4,6,5,2} → order {1,2,0,3}.
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
  EXPECT_EQ(order[3], 3u);
  std::vector<std::uint32_t> sorted_order(order.begin(), order.end());
  std::sort(sorted_order.begin(), sorted_order.end());
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(sorted_order[r], r);
  }
}

// --- sigma_batch_order: two-key (position, length) policy --------------------

TEST(SigmaBatchOrderTwoKey, PolicyNoneIsIdentityAndIgnoresKeys) {
  const std::vector<std::size_t> lengths = {5, 1, 9, 3, 7};
  const std::vector<std::size_t> los = {40, 0, 20, 10, 30};
  const auto order = kreg::sigma_batch_order(lengths, los, 0, 5, 0,
                                             SigmaPolicy::kNone, 8);
  ASSERT_EQ(order.size(), 5u);
  for (std::uint32_t r = 0; r < 5; ++r) {
    EXPECT_EQ(order[r], r);
  }
}

TEST(SigmaBatchOrderTwoKey, PrimarySortsByPositionBucketAscending) {
  // Buckets of width 8: lo 17 → bucket 2, lo 9 → 1, lo 0 → 0, lo 25 → 3.
  const std::vector<std::size_t> lengths = {4, 4, 4, 4};
  const std::vector<std::size_t> los = {17, 9, 0, 25};
  const auto order = kreg::sigma_batch_order(
      lengths, los, 0, 4, 0, SigmaPolicy::kPositionLength, 8);
  const std::vector<std::uint32_t> want = {2, 1, 0, 3};
  ASSERT_EQ(order.size(), want.size());
  for (std::size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(order[r], want[r]) << "r=" << r;
  }
}

TEST(SigmaBatchOrderTwoKey, SecondaryLengthDescendingWithinBucket) {
  // All four lo values land in bucket 0 (width 16) → pure length order.
  const std::vector<std::size_t> lengths = {5, 9, 1, 7};
  const std::vector<std::size_t> los = {3, 0, 15, 8};
  const auto order = kreg::sigma_batch_order(
      lengths, los, 0, 4, 0, SigmaPolicy::kPositionLength, 16);
  const std::vector<std::uint32_t> want = {1, 3, 0, 2};
  ASSERT_EQ(order.size(), want.size());
  for (std::size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(order[r], want[r]) << "r=" << r;
  }
}

TEST(SigmaBatchOrderTwoKey, StableOnFullKeyTiesAndRespectsScopes) {
  // Rows 0/2/4 tie on (bucket 0, length 6): original order must survive.
  const std::vector<std::size_t> lengths = {6, 2, 6, 8, 6, 3};
  const std::vector<std::size_t> los = {1, 3, 2, 0, 5, 4};
  const auto order = kreg::sigma_batch_order(
      lengths, los, 0, 6, 0, SigmaPolicy::kPositionLength, 8);
  const std::vector<std::uint32_t> want = {3, 0, 2, 4, 5, 1};
  ASSERT_EQ(order.size(), want.size());
  for (std::size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(order[r], want[r]) << "r=" << r;
  }
  // scope = 3: {6,2,6} with lo {1,3,2} and {8,6,3} with lo {0,5,4} sort
  // independently (one bucket each → length order, stable).
  const auto scoped = kreg::sigma_batch_order(
      lengths, los, 0, 6, 3, SigmaPolicy::kPositionLength, 8);
  const std::vector<std::uint32_t> want_scoped = {0, 2, 1, 3, 4, 5};
  ASSERT_EQ(scoped.size(), want_scoped.size());
  for (std::size_t r = 0; r < want_scoped.size(); ++r) {
    EXPECT_EQ(scoped[r], want_scoped[r]) << "r=" << r;
  }
}

TEST(SigmaBatchOrderTwoKey, PositionLengthRequiresLoCoverage) {
  const std::vector<std::size_t> lengths = {5, 1, 9};
  const std::vector<std::size_t> los = {0, 1};  // too short for end = 3
  EXPECT_THROW(kreg::sigma_batch_order(lengths, los, 0, 3, 0,
                                       SigmaPolicy::kPositionLength, 8),
               std::invalid_argument);
}

TEST(SigmaBatchOrderTwoKey, LegacyBoolOverloadMapsToLengthPolicy) {
  const std::vector<std::size_t> lengths = {5, 1, 9, 5, 7};
  const auto legacy = kreg::sigma_batch_order(lengths, 0, 5, 0, true);
  const auto policy = kreg::sigma_batch_order(
      lengths, {}, 0, 5, 0, SigmaPolicy::kLength, 8);
  ASSERT_EQ(legacy.size(), policy.size());
  for (std::size_t r = 0; r < legacy.size(); ++r) {
    EXPECT_EQ(legacy[r], policy[r]) << "r=" << r;
  }
}

// --- admission_windows -------------------------------------------------------

TEST(AdmissionWindowsTest, LoAndLengthMatchBruteForce) {
  const Dataset data = paper_data(193, 19);
  const auto sorted = kreg::sort_dataset<double>(data.x, data.y);
  const double h_max = 0.7;
  const kreg::AdmissionWindows win = kreg::admission_windows<double>(
      std::span<const double>(sorted.x), h_max);
  ASSERT_EQ(win.lo.size(), sorted.x.size());
  ASSERT_EQ(win.length.size(), sorted.x.size());
  for (std::size_t i = 0; i < sorted.x.size(); ++i) {
    std::size_t lo = i;
    while (lo > 0 && sorted.x[i] - sorted.x[lo - 1] <= h_max) {
      --lo;
    }
    std::size_t hi = i;
    while (hi + 1 < sorted.x.size() && sorted.x[hi + 1] - sorted.x[i] <= h_max) {
      ++hi;
    }
    EXPECT_EQ(win.lo[i], lo) << "i=" << i;
    EXPECT_EQ(win.length[i], hi - lo + 1) << "i=" << i;
  }
}

// --- host batched profile: bitwise parity ----------------------------------

// One tile covering the dataset ⇒ the batched profile must equal the
// sequential scalar profile bit for bit, for every lane width × σ setting,
// including ragged tails (n mod C ≠ 0).
TEST(BatchedHostProfile, BitwiseEqualsScalarSingleTile) {
  const std::vector<double> grid = test_grid();
  for (const std::size_t n : {64u, 203u, 517u}) {
    const Dataset data = paper_data(n, 42 + n);
    const std::vector<double> want = kreg::window_cv_profile(
        data, grid, KernelType::kEpanechnikov, Precision::kDouble);
    HostTiling one_tile;
    one_tile.n_block = n;  // single tile: matches profile_sequential order
    for (const std::size_t width : {1u, 4u, 8u, 16u}) {
      for (const SigmaPolicy sigma : kAllPolicies) {
        BatchedSweep batched;
        batched.lane_width = width;
        batched.sigma = sigma;
        const std::vector<double> got = kreg::window_cv_profile_batched(
            data, grid, KernelType::kEpanechnikov, Precision::kDouble,
            batched, one_tile);
        SCOPED_TRACE("n=" + std::to_string(n) + " C=" + std::to_string(width) +
                     " sigma=" + std::string(kreg::to_string(sigma)));
        expect_bitwise_profiles(got, want);
      }
    }
  }
}

TEST(BatchedHostProfile, BitwiseEqualsScalarFloat) {
  const std::vector<double> grid = test_grid();
  const Dataset data = paper_data(301, 5);
  const std::vector<double> want = kreg::window_cv_profile(
      data, grid, KernelType::kEpanechnikov, Precision::kFloat);
  HostTiling one_tile;
  one_tile.n_block = 301;
  for (const std::size_t width : {4u, 8u}) {
    BatchedSweep batched;
    batched.lane_width = width;
    const std::vector<double> got = kreg::window_cv_profile_batched(
        data, grid, KernelType::kEpanechnikov, Precision::kFloat, batched,
        one_tile);
    SCOPED_TRACE("C=" + std::to_string(width));
    expect_bitwise_profiles(got, want);
  }
}

// Same tiling ⇒ the batched profile must equal the scalar *tiled* profile
// bit for bit: batching is a pure scheduling change inside each tile.
TEST(BatchedHostProfile, BitwiseEqualsTiledUnderStreamingTilings) {
  const std::vector<double> grid = test_grid(37);
  const Dataset data = paper_data(411, 9);
  for (const std::size_t n_block : {64u, 128u}) {
    for (const std::size_t k_block : {8u, 16u, 37u}) {
      HostTiling tiling;
      tiling.n_block = n_block;
      tiling.k_block = k_block;
      const std::vector<double> want = kreg::window_cv_profile_tiled(
          data, grid, KernelType::kEpanechnikov, Precision::kDouble, tiling);
      for (const SigmaPolicy sigma : kAllPolicies) {
        BatchedSweep batched;
        batched.lane_width = 8;
        batched.sigma = sigma;
        const std::vector<double> got = kreg::window_cv_profile_batched(
            data, grid, KernelType::kEpanechnikov, Precision::kDouble,
            batched, tiling);
        SCOPED_TRACE("n_block=" + std::to_string(n_block) +
                     " k_block=" + std::to_string(k_block) +
                     " sigma=" + std::string(kreg::to_string(sigma)));
        expect_bitwise_profiles(got, want);
      }
    }
  }
}

// The quartic kernel exercises the higher moment terms (m up to 4).
TEST(BatchedHostProfile, BitwiseParityTriweightKernel) {
  const std::vector<double> grid = test_grid();
  const Dataset data = paper_data(222, 13);
  const std::vector<double> want = kreg::window_cv_profile(
      data, grid, KernelType::kTriweight, Precision::kDouble);
  HostTiling one_tile;
  one_tile.n_block = 222;
  BatchedSweep batched;
  batched.lane_width = 8;
  const std::vector<double> got = kreg::window_cv_profile_batched(
      data, grid, KernelType::kTriweight, Precision::kDouble, batched,
      one_tile);
  expect_bitwise_profiles(got, want);
}

// Tiny samples stress the batch machinery's edges: n < C (one all-padding
// batch beyond lane 0), n = C (exactly one full batch), and n = C + 1 (a
// one-lane ragged tail) — for both precisions under the default two-key
// policy, where the contiguous-run detector sees windows pinned against
// both array edges.
TEST(BatchedHostProfile, TinyNBitwiseParityPositionLength) {
  const std::vector<double> grid = test_grid(16);
  for (const std::size_t n : {5u, 8u, 9u, 16u, 17u}) {
    const Dataset data = paper_data(n, 100 + n);
    HostTiling one_tile;
    one_tile.n_block = n;
    for (const Precision precision : {Precision::kFloat, Precision::kDouble}) {
      const std::vector<double> want =
          kreg::window_cv_profile(data, grid, KernelType::kEpanechnikov,
                                  precision);
      for (const std::size_t width : {8u, 16u}) {
        BatchedSweep batched;
        batched.lane_width = width;
        batched.sigma = SigmaPolicy::kPositionLength;
        BatchRunStats stats;
        const std::vector<double> got = kreg::window_cv_profile_batched(
            data, grid, KernelType::kEpanechnikov, precision, batched,
            one_tile, nullptr, &stats);
        SCOPED_TRACE("n=" + std::to_string(n) + " C=" + std::to_string(width) +
                     " float=" +
                     std::to_string(precision == Precision::kFloat));
        expect_bitwise_profiles(got, want);
        EXPECT_GE(stats.contig_rate(), 0.0);
        EXPECT_LE(stats.contig_rate(), 1.0);
      }
    }
  }
}

// Under the two-key policy a batch's lanes admit from overlapping index
// ranges, so the contiguous-run transpose path must actually fire — and
// firing must not perturb a single bit of the profile.
TEST(BatchedHostProfile, ContigFastPathFiresAndStaysBitwise) {
  const std::vector<double> grid = test_grid();
  const Dataset data = paper_data(1024, 77);
  const std::vector<double> want = kreg::window_cv_profile(
      data, grid, KernelType::kEpanechnikov, Precision::kDouble);
  HostTiling one_tile;
  one_tile.n_block = 1024;
  // C = 4 is absent: narrow-batch host requests are rerouted to the scalar
  // sweep (see CFourRoutesToScalarSweep), so its vector counters never fire.
  for (const std::size_t width : {8u, 16u}) {
    BatchedSweep batched;
    batched.lane_width = width;
    batched.sigma = SigmaPolicy::kPositionLength;
    BatchRunStats stats;
    const std::vector<double> got = kreg::window_cv_profile_batched(
        data, grid, KernelType::kEpanechnikov, Precision::kDouble, batched,
        one_tile, nullptr, &stats);
    SCOPED_TRACE("C=" + std::to_string(width));
    expect_bitwise_profiles(got, want);
    EXPECT_GT(stats.contig_steps, 0u);
    EXPECT_GT(stats.contig_steps + stats.gather_steps, 0u);
    EXPECT_GE(stats.contig_rate(), 0.0);
    EXPECT_LE(stats.contig_rate(), 1.0);
    EXPECT_EQ(stats.scalar_routed, 0u);
  }
}

// The C = 4 narrow batch loses to scalar on the host (ROADMAP measurement):
// an explicit lane_width = 4 request must take the scalar tiled sweep —
// bitwise identical, no vector steps, and the reroute noted in the ledger.
TEST(BatchedHostProfile, CFourRoutesToScalarSweep) {
  const std::vector<double> grid = test_grid();
  const Dataset data = paper_data(640, 19);
  HostTiling tiling;  // auto tiles: matches window_cv_profile_tiled exactly
  const std::vector<double> want = kreg::window_cv_profile_tiled(
      data, grid, KernelType::kEpanechnikov, Precision::kDouble, tiling);
  BatchedSweep batched;
  batched.lane_width = 4;
  BatchRunStats stats;
  const std::vector<double> got = kreg::window_cv_profile_batched(
      data, grid, KernelType::kEpanechnikov, Precision::kDouble, batched,
      tiling, nullptr, &stats);
  expect_bitwise_profiles(got, want);
  EXPECT_EQ(stats.scalar_routed, 1u);
  EXPECT_EQ(stats.contig_steps, 0u);
  EXPECT_EQ(stats.gather_steps, 0u);

  // The wide batch still takes the vector path: no reroute.
  batched.lane_width = 8;
  BatchRunStats wide_stats;
  const std::vector<double> wide = kreg::window_cv_profile_batched(
      data, grid, KernelType::kEpanechnikov, Precision::kDouble, batched,
      tiling, nullptr, &wide_stats);
  expect_bitwise_profiles(wide, want);
  EXPECT_EQ(wide_stats.scalar_routed, 0u);
  EXPECT_GT(wide_stats.contig_steps + wide_stats.gather_steps, 0u);
}

// Software prefetch is observational: any distance gives the same bits.
TEST(BatchedHostProfile, PrefetchDistanceIsBitwiseNeutral) {
  const std::vector<double> grid = test_grid();
  const Dataset data = paper_data(517, 41);
  HostTiling one_tile;
  one_tile.n_block = 517;
  const std::vector<double> want = kreg::window_cv_profile(
      data, grid, KernelType::kEpanechnikov, Precision::kDouble);
  for (const std::size_t dist : {0u, 1u, 8u, 64u}) {
    BatchedSweep batched;
    batched.lane_width = 8;
    batched.prefetch_distance = dist;
    const std::vector<double> got = kreg::window_cv_profile_batched(
        data, grid, KernelType::kEpanechnikov, Precision::kDouble, batched,
        one_tile);
    SCOPED_TRACE("dist=" + std::to_string(dist));
    expect_bitwise_profiles(got, want);
  }
}

TEST(BatchedHostProfile, RejectsOversizedPrefetchDistance) {
  const Dataset data = paper_data(32, 3);
  const std::vector<double> grid = test_grid(4);
  BatchedSweep batched;
  batched.prefetch_distance = kreg::kMaxPrefetchDistance + 1;
  EXPECT_THROW(kreg::window_cv_profile_batched(data, grid,
                                               KernelType::kEpanechnikov,
                                               Precision::kDouble, batched),
               std::invalid_argument);
}

TEST(BatchedHostProfile, DefaultsMatchTiledDefaults) {
  // Default BatchedSweep (auto width, σ on) with default tiling must equal
  // the default scalar tiled profile — batched is the default host backend.
  const std::vector<double> grid = test_grid();
  const Dataset data = paper_data(3000, 21);
  const std::vector<double> want = kreg::window_cv_profile_tiled(
      data, grid, KernelType::kEpanechnikov, Precision::kDouble);
  const std::vector<double> got = kreg::window_cv_profile_batched(
      data, grid, KernelType::kEpanechnikov);
  expect_bitwise_profiles(got, want);
}

TEST(BatchedHostProfile, RejectsBadLaneWidthAndBadGrid) {
  const Dataset data = paper_data(32, 3);
  const std::vector<double> grid = test_grid(4);
  BatchedSweep batched;
  batched.lane_width = 3;
  EXPECT_THROW(kreg::window_cv_profile_batched(
                   data, grid, KernelType::kEpanechnikov, Precision::kDouble,
                   batched),
               std::invalid_argument);
  const std::vector<double> bad_grid = {0.5, 0.5, 0.6};
  EXPECT_THROW(kreg::window_cv_profile_batched(data, bad_grid,
                                               KernelType::kEpanechnikov),
               std::invalid_argument);
}

// --- device batched kernels: bitwise parity --------------------------------

SpmdSelectorConfig device_cfg(std::size_t lane_width, SigmaPolicy sigma,
                              Precision precision = Precision::kDouble) {
  SpmdSelectorConfig cfg;
  cfg.precision = precision;
  cfg.lane_width = lane_width;
  cfg.sigma = sigma;
  cfg.stream.auto_tune = false;  // pin the resident path unless overridden
  return cfg;
}

void expect_same_selection(const SelectionResult& got,
                           const SelectionResult& want) {
  EXPECT_DOUBLE_EQ(got.bandwidth, want.bandwidth);
  EXPECT_DOUBLE_EQ(got.cv_score, want.cv_score);
  ASSERT_EQ(got.scores.size(), want.scores.size());
  for (std::size_t b = 0; b < want.scores.size(); ++b) {
    EXPECT_DOUBLE_EQ(got.scores[b], want.scores[b]) << "b=" << b;
  }
}

// n = 700 with tpb = 512 gives a full block plus a ragged 188-row block, so
// every lane width exercises tail dispatches and a short σ-scope.
TEST(SpmdBatchedParity, ResidentBitwiseAcrossLaneWidthsAndSigma) {
  const Dataset data = paper_data(700, 31);
  const BandwidthGrid grid(0.05, 1.2, 32);
  Device dev;
  const SelectionResult want =
      SpmdGridSelector(dev, device_cfg(1, SigmaPolicy::kNone))
          .select(data, grid);
  for (const std::size_t width : {4u, 8u, 16u}) {
    for (const SigmaPolicy sigma : kAllPolicies) {
      const SelectionResult got =
          SpmdGridSelector(dev, device_cfg(width, sigma)).select(data, grid);
      SCOPED_TRACE("C=" + std::to_string(width) +
                   " sigma=" + std::string(kreg::to_string(sigma)));
      expect_same_selection(got, want);
    }
  }
}

TEST(SpmdBatchedParity, ResidentBitwiseObservationMajorAndFloat) {
  const Dataset data = paper_data(451, 17);
  const BandwidthGrid grid(0.05, 1.2, 24);
  Device dev;
  for (const Precision precision : {Precision::kFloat, Precision::kDouble}) {
    SpmdSelectorConfig scalar = device_cfg(1, SigmaPolicy::kNone, precision);
    scalar.layout = ResidualLayout::kObservationMajor;
    const SelectionResult want =
        SpmdGridSelector(dev, scalar).select(data, grid);
    SpmdSelectorConfig batched =
        device_cfg(8, SigmaPolicy::kPositionLength, precision);
    batched.layout = ResidualLayout::kObservationMajor;
    const SelectionResult got =
        SpmdGridSelector(dev, batched).select(data, grid);
    expect_same_selection(got, want);
  }
}

TEST(SpmdBatchedParity, StreamedKblockBitwise) {
  const Dataset data = paper_data(600, 23);
  const BandwidthGrid grid(0.05, 1.2, 40);
  Device dev;
  const SelectionResult resident =
      SpmdGridSelector(dev, device_cfg(1, SigmaPolicy::kNone))
          .select(data, grid);
  for (const SigmaPolicy sigma : kAllPolicies) {
    SpmdSelectorConfig cfg = device_cfg(8, sigma);
    cfg.stream.k_block = 8;
    const SelectionResult got =
        SpmdGridSelector(dev, cfg).select(data, grid);
    SCOPED_TRACE("sigma=" + std::string(kreg::to_string(sigma)));
    expect_same_selection(got, resident);
  }
}

TEST(SpmdBatchedParity, Streamed2DTileBitwise) {
  const Dataset data = paper_data(531, 29);
  const BandwidthGrid grid(0.05, 1.2, 32);
  Device dev;
  const SelectionResult resident =
      SpmdGridSelector(dev, device_cfg(1, SigmaPolicy::kNone))
          .select(data, grid);
  for (const std::size_t width : {4u, 16u}) {
    SpmdSelectorConfig cfg = device_cfg(width, SigmaPolicy::kPositionLength);
    cfg.stream.k_block = 8;
    cfg.stream.n_block = 96;
    const SelectionResult got =
        SpmdGridSelector(dev, cfg).select(data, grid);
    SCOPED_TRACE("C=" + std::to_string(width));
    expect_same_selection(got, resident);
  }
}

TEST(SpmdBatchedParity, NameReportsLanesSigmaAndPrefetch) {
  Device dev;
  const std::string batched =
      SpmdGridSelector(dev, device_cfg(8, SigmaPolicy::kLength)).name();
  EXPECT_NE(batched.find("lanes=8"), std::string::npos) << batched;
  EXPECT_NE(batched.find("sigma=length"), std::string::npos) << batched;
  const std::string poslen =
      SpmdGridSelector(dev, device_cfg(8, SigmaPolicy::kPositionLength))
          .name();
  EXPECT_NE(poslen.find("sigma=position-length"), std::string::npos) << poslen;
  const std::string no_sigma =
      SpmdGridSelector(dev, device_cfg(4, SigmaPolicy::kNone)).name();
  EXPECT_NE(no_sigma.find("lanes=4"), std::string::npos) << no_sigma;
  EXPECT_EQ(no_sigma.find("sigma"), std::string::npos) << no_sigma;
  EXPECT_EQ(no_sigma.find("prefetch"), std::string::npos) << no_sigma;
  SpmdSelectorConfig pf = device_cfg(8, SigmaPolicy::kPositionLength);
  pf.prefetch_distance = 6;
  const std::string with_pf = SpmdGridSelector(dev, pf).name();
  EXPECT_NE(with_pf.find("prefetch=6"), std::string::npos) << with_pf;
  const std::string scalar =
      SpmdGridSelector(dev, device_cfg(1, SigmaPolicy::kLength)).name();
  EXPECT_EQ(scalar.find("lanes"), std::string::npos) << scalar;
}

TEST(SpmdBatchedParity, CtorRejectsBadLaneWidthAndBadPrefetch) {
  Device dev;
  EXPECT_THROW(SpmdGridSelector(dev, device_cfg(5, SigmaPolicy::kLength)),
               std::invalid_argument);
  EXPECT_THROW(MultiDeviceGridSelector({&dev},
                                       device_cfg(3, SigmaPolicy::kLength)),
               std::invalid_argument);
  SpmdSelectorConfig pf = device_cfg(8, SigmaPolicy::kPositionLength);
  pf.prefetch_distance = kreg::kMaxPrefetchDistance + 1;
  EXPECT_THROW(SpmdGridSelector(dev, pf), std::invalid_argument);
}

TEST(MultiDeviceBatchedParity, ResidentAndStreamedBitwise) {
  const Dataset data = paper_data(640, 37);
  const BandwidthGrid grid(0.05, 1.2, 24);
  Device dev1;
  Device dev2;
  const std::vector<Device*> devices = {&dev1, &dev2};
  const SelectionResult want =
      MultiDeviceGridSelector(devices, device_cfg(1, SigmaPolicy::kNone))
          .select(data, grid);
  for (const std::size_t width : {4u, 8u}) {
    const SelectionResult got =
        MultiDeviceGridSelector(
            devices, device_cfg(width, SigmaPolicy::kPositionLength))
            .select(data, grid);
    SCOPED_TRACE("C=" + std::to_string(width));
    expect_same_selection(got, want);
  }
  // Force both streaming dimensions on each device slice.
  SpmdSelectorConfig streamed = device_cfg(8, SigmaPolicy::kPositionLength);
  streamed.stream.k_block = 8;
  streamed.stream.n_block = 64;
  const SelectionResult got =
      MultiDeviceGridSelector(devices, streamed).select(data, grid);
  expect_same_selection(got, want);
}

// --- launch_lanes ----------------------------------------------------------

TEST(LaunchLanes, CoversEveryThreadOnceWithRaggedTail) {
  Device dev;
  const std::size_t blocks = 3;
  const std::size_t tpb = 10;
  const std::size_t lane_width = 4;
  const std::size_t per_block = 3;  // ceil(10 / 4): lanes 4, 4, 2
  std::vector<std::size_t> seen(blocks * tpb, 0);
  std::vector<std::size_t> lane_counts(blocks * per_block, 0);
  dev.launch_lanes("probe", kreg::spmd::LaunchConfig{blocks, tpb}, lane_width,
                   [&](const kreg::spmd::LaneCtx& t) {
    lane_counts[t.block_idx * per_block + t.base / lane_width] = t.lanes;
    for (std::size_t l = 0; l < t.lanes; ++l) {
      seen[t.global_base() + l] += 1;
    }
  });
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1u) << "thread " << i;
  }
  for (std::size_t b = 0; b < blocks; ++b) {
    EXPECT_EQ(lane_counts[b * per_block + 0], 4u);
    EXPECT_EQ(lane_counts[b * per_block + 1], 4u);
    EXPECT_EQ(lane_counts[b * per_block + 2], 2u);
  }
  EXPECT_EQ(dev.stats().kernel_launches, 1u);
  EXPECT_EQ(dev.stats().blocks_executed, blocks);
  EXPECT_EQ(dev.stats().threads_executed, blocks * tpb);
  EXPECT_EQ(dev.stats().lane_dispatches, blocks * per_block);
}

TEST(LaunchLanes, ZeroLaneWidthThrows) {
  Device dev;
  EXPECT_THROW(
      dev.launch_lanes("bad", kreg::spmd::LaunchConfig{1, 8}, 0,
                       [](const kreg::spmd::LaneCtx&) {}),
      kreg::spmd::LaunchConfigError);
}

}  // namespace
