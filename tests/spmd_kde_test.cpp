// Tests for the device KDE selector and KDE confidence bands.
#include <gtest/gtest.h>

#include <cmath>

#include "core/grid.hpp"
#include "core/kde.hpp"
#include "core/kde_sweep.hpp"
#include "core/spmd_kde.hpp"
#include "rng/stream.hpp"
#include "spmd/device.hpp"
#include "spmd/errors.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::KernelType;
using kreg::SpmdKdeConfig;
using kreg::SpmdKdeSelector;
using kreg::rng::Stream;
using kreg::spmd::Device;

std::vector<double> sample(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = s.uniform() < 0.5 ? s.gaussian(-1.0, 0.4) : s.gaussian(1.0, 0.6);
  }
  return xs;
}

TEST(SpmdKde, MatchesHostSweepProfile) {
  Device dev;
  const auto xs = sample(300, 90);
  const BandwidthGrid grid(0.05, 1.5, 30);
  const auto host = kreg::kde_select_sweep(xs, grid);
  const auto device = SpmdKdeSelector(dev).select(xs, grid);
  EXPECT_DOUBLE_EQ(device.bandwidth, host.bandwidth);
  ASSERT_EQ(device.scores.size(), host.scores.size());
  for (std::size_t b = 0; b < host.scores.size(); ++b) {
    EXPECT_NEAR(device.scores[b], host.scores[b],
                1e-10 * std::max(1.0, std::abs(host.scores[b])));
  }
}

TEST(SpmdKde, MatchesDirectLscvAcrossBlockSizes) {
  const auto xs = sample(200, 91);
  const BandwidthGrid grid(0.1, 1.0, 12);
  for (std::size_t tpb : {32u, 512u}) {
    Device dev;
    SpmdKdeConfig cfg;
    cfg.threads_per_block = tpb;
    const auto r = SpmdKdeSelector(dev, cfg).select(xs, grid);
    for (std::size_t b = 0; b < grid.size(); ++b) {
      EXPECT_NEAR(r.scores[b], kreg::kde_lscv_score(xs, grid[b]),
                  1e-9 * std::max(1.0, std::abs(r.scores[b])))
          << "tpb=" << tpb;
    }
  }
}

TEST(SpmdKde, UniformKernelPath) {
  Device dev;
  const auto xs = sample(150, 92);
  const BandwidthGrid grid(0.1, 1.0, 10);
  SpmdKdeConfig cfg;
  cfg.kernel = KernelType::kUniform;
  const auto r = SpmdKdeSelector(dev, cfg).select(xs, grid);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(r.scores[b],
                kreg::kde_lscv_score(xs, grid[b], KernelType::kUniform),
                1e-10 * std::max(1.0, std::abs(r.scores[b])));
  }
}

TEST(SpmdKde, RejectsUnsupportedKernelAndTinySamples) {
  Device dev;
  const BandwidthGrid grid(0.1, 1.0, 5);
  SpmdKdeConfig cfg;
  cfg.kernel = KernelType::kGaussian;
  const auto xs = sample(50, 93);
  EXPECT_THROW(SpmdKdeSelector(dev, cfg).select(xs, grid),
               std::invalid_argument);
  const std::vector<double> one = {0.5};
  EXPECT_THROW(SpmdKdeSelector(dev).select(one, grid), std::invalid_argument);
}

TEST(SpmdKde, ConstantCapAppliesToDoubles) {
  Device dev;
  const auto xs = sample(64, 94);
  const BandwidthGrid grid(1e-4, 1.0, 1025);  // 1025 doubles > 8 KB
  EXPECT_THROW(SpmdKdeSelector(dev).select(xs, grid),
               kreg::spmd::ConstantCapacityError);
}

TEST(SpmdKde, MemoryReleasedAfterSelect) {
  Device dev;
  const auto xs = sample(100, 95);
  const BandwidthGrid grid(0.1, 1.0, 8);
  (void)SpmdKdeSelector(dev).select(xs, grid);
  EXPECT_EQ(dev.global_allocated(), 0u);
}

// ---- Window-sweep device algorithm --------------------------------------

TEST(SpmdKdeWindow, DefaultIsWindowAndMatchesHostWindowProfile) {
  SpmdKdeConfig def;
  EXPECT_EQ(def.algorithm, kreg::SweepAlgorithm::kWindow);

  Device dev;
  const auto xs = sample(300, 190);
  const BandwidthGrid grid(0.05, 1.5, 30);
  const auto host =
      kreg::kde_window_lscv_profile(xs, grid.values(),
                                    KernelType::kEpanechnikov);
  const auto device = SpmdKdeSelector(dev).select(xs, grid);
  ASSERT_EQ(device.scores.size(), host.size());
  for (std::size_t b = 0; b < host.size(); ++b) {
    EXPECT_NEAR(device.scores[b], host[b],
                1e-10 * std::max(1.0, std::abs(host[b])));
  }
}

TEST(SpmdKdeWindow, PerRowStaysSelectableAndAgrees) {
  Device dev;
  const auto xs = sample(250, 191);
  const BandwidthGrid grid(0.05, 1.2, 20);
  SpmdKdeConfig per_row;
  per_row.algorithm = kreg::SweepAlgorithm::kPerRowSort;
  const auto p = SpmdKdeSelector(dev, per_row).select(xs, grid);
  const auto w = SpmdKdeSelector(dev).select(xs, grid);
  EXPECT_DOUBLE_EQ(p.bandwidth, w.bandwidth);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(w.scores[b], p.scores[b],
                1e-9 * std::max(1.0, std::abs(p.scores[b])));
  }
}

TEST(SpmdKdeWindow, UniformKernelAgreesWithDirectLscv) {
  Device dev;
  const auto xs = sample(150, 192);
  const BandwidthGrid grid(0.1, 1.0, 10);
  SpmdKdeConfig cfg;
  cfg.kernel = KernelType::kUniform;
  const auto r = SpmdKdeSelector(dev, cfg).select(xs, grid);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(r.scores[b],
                kreg::kde_lscv_score(xs, grid[b], KernelType::kUniform),
                1e-10 * std::max(1.0, std::abs(r.scores[b])));
  }
}

TEST(SpmdKdeWindow, LiftsThePerRowDeviceLimit) {
  // On a 1 MB device the per-row path's n×n double row matrix overflows
  // well before n = 512; the window path's O(n + n·k) plan sails through
  // and still matches the host profile.
  kreg::spmd::Device small_dev(kreg::spmd::DeviceProperties::tiny(1 << 20));
  const auto xs = sample(512, 193);
  const BandwidthGrid grid(0.1, 1.0, 8);

  SpmdKdeConfig per_row;
  per_row.algorithm = kreg::SweepAlgorithm::kPerRowSort;
  EXPECT_THROW(SpmdKdeSelector(small_dev, per_row).select(xs, grid),
               kreg::spmd::DeviceAllocError);

  const auto r = SpmdKdeSelector(small_dev).select(xs, grid);
  const auto host =
      kreg::kde_window_lscv_profile(xs, grid.values(),
                                    KernelType::kEpanechnikov);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_NEAR(r.scores[b], host[b],
                1e-10 * std::max(1.0, std::abs(host[b])));
  }
}

TEST(SpmdKdeWindow, EstimatedBytesMatchesLedgerPeak) {
  const auto xs = sample(100, 194);
  const BandwidthGrid grid(0.1, 1.0, 10);
  {
    Device dev;
    (void)SpmdKdeSelector(dev).select(xs, grid);
    EXPECT_EQ(dev.global_peak(),
              SpmdKdeSelector::estimated_bytes(100, 10,
                                               kreg::SweepAlgorithm::kWindow));
  }
  {
    Device dev;
    SpmdKdeConfig cfg;
    cfg.algorithm = kreg::SweepAlgorithm::kPerRowSort;
    (void)SpmdKdeSelector(dev, cfg).select(xs, grid);
    EXPECT_EQ(dev.global_peak(),
              SpmdKdeSelector::estimated_bytes(
                  100, 10, kreg::SweepAlgorithm::kPerRowSort));
  }
}

TEST(SpmdKdeWindow, NameReportsAlgorithm) {
  Device dev;
  SpmdKdeConfig cfg;
  EXPECT_NE(SpmdKdeSelector(dev, cfg).name().find("window"),
            std::string::npos);
  cfg.algorithm = kreg::SweepAlgorithm::kPerRowSort;
  EXPECT_EQ(SpmdKdeSelector(dev, cfg).name().find("window"),
            std::string::npos);
}

// ---- KDE confidence bands ----------------------------------------------

TEST(KdeBand, ShapeOrderingAndClamping) {
  const auto xs = sample(500, 96);
  const auto band = kreg::kde_confidence_band(xs, 0.3,
                                              KernelType::kEpanechnikov, 50,
                                              0.95);
  ASSERT_EQ(band.x.size(), 50u);
  for (std::size_t i = 0; i < band.x.size(); ++i) {
    EXPECT_GE(band.lower[i], 0.0);  // densities cannot be negative
    EXPECT_LE(band.lower[i], band.density[i]);
    EXPECT_GE(band.upper[i], band.density[i]);
  }
}

TEST(KdeBand, WidthShrinksWithSampleSize) {
  const auto small_sample = sample(200, 97);
  const auto large_sample = sample(5000, 97);
  const auto bs = kreg::kde_confidence_band(small_sample, 0.3);
  const auto bl = kreg::kde_confidence_band(large_sample, 0.3);
  // Compare max width: larger n -> tighter bands.
  double ws = 0.0;
  double wl = 0.0;
  for (std::size_t i = 0; i < bs.x.size(); ++i) {
    ws = std::max(ws, bs.upper[i] - bs.lower[i]);
  }
  for (std::size_t i = 0; i < bl.x.size(); ++i) {
    wl = std::max(wl, bl.upper[i] - bl.lower[i]);
  }
  EXPECT_LT(wl, ws);
}

TEST(KdeBand, CoversTrueDensityMostly) {
  Stream s(98);
  std::vector<double> xs(4000);
  for (auto& x : xs) {
    x = s.gaussian(0.0, 1.0);
  }
  const auto band = kreg::kde_confidence_band(xs, 0.35,
                                              KernelType::kEpanechnikov, 40,
                                              0.95);
  std::size_t covered = 0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < band.x.size(); ++i) {
    const double x = band.x[i];
    if (std::abs(x) > 2.0) {
      continue;  // tails: relative bias dominates
    }
    const double truth = std::exp(-0.5 * x * x) / std::sqrt(8.0 * std::atan(1.0));
    ++counted;
    covered += (truth >= band.lower[i] && truth <= band.upper[i]) ? 1 : 0;
  }
  ASSERT_GT(counted, 10u);
  EXPECT_GE(static_cast<double>(covered) / static_cast<double>(counted), 0.7);
}

TEST(KdeBand, ValidatesInputs) {
  const auto xs = sample(50, 99);
  EXPECT_THROW(kreg::kde_confidence_band(xs, 0.0), std::invalid_argument);
  EXPECT_THROW(kreg::kde_confidence_band(xs, 0.3,
                                         KernelType::kEpanechnikov, 1),
               std::invalid_argument);
  EXPECT_THROW(kreg::kde_confidence_band(xs, 0.3,
                                         KernelType::kEpanechnikov, 10, 0.0),
               std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW(kreg::kde_confidence_band(empty, 0.3), std::invalid_argument);
}

}  // namespace
