// Tests for the kreg-sanitizer checked device layer: seeded-hazard
// "mutation" kernels the sanitizer MUST catch (racecheck / memcheck /
// initcheck / leakcheck), report contents (hazard kind, kernel, phase,
// tids, byte offset), sink behavior, and a clean-suite pass asserting zero
// false positives on the real device algorithms.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <numeric>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/grid.hpp"
#include "core/spmd_kde.hpp"
#include "core/spmd_selector.hpp"
#include "data/dataset.hpp"
#include "spmd/device.hpp"
#include "spmd/device_properties.hpp"
#include "spmd/errors.hpp"
#include "spmd/reduce.hpp"
#include "spmd/sanitizer/checked_device.hpp"
#include "spmd/scan.hpp"

namespace {

using kreg::spmd::BlockCtx;
using kreg::spmd::CheckedDevice;
using kreg::spmd::ConstantCapacityError;
using kreg::spmd::CountingSink;
using kreg::spmd::Device;
using kreg::spmd::DeviceBuffer;
using kreg::spmd::DeviceProperties;
using kreg::spmd::HazardKind;
using kreg::spmd::LaunchConfig;
using kreg::spmd::LaunchConfigError;
using kreg::spmd::SanitizerError;
using kreg::spmd::SanitizerReport;

// ---------------------------------------------------------------------------
// racecheck: seeded intra-phase hazards

TEST(Racecheck, DroppedBarrierReductionIsCaught) {
  // The classic barrier bug: the whole Harris tree reduction collapsed into
  // ONE for_each_thread phase. On the sequential simulator this silently
  // "works"; on any parallel schedule it races. The sanitizer must flag it.
  CheckedDevice dev;
  const std::size_t block = 64;
  try {
    dev.launch_cooperative(
        "dropped_barrier_reduce", LaunchConfig{1, block},
        block * sizeof(double), [&](BlockCtx& ctx) {
          auto shared = ctx.shared_as<double>(block);
          ctx.for_each_thread(
              [&](std::size_t t) { shared[t] = static_cast<double>(t); });
          // BUG: all strides in one phase — no barrier between levels.
          ctx.for_each_thread([&](std::size_t t) {
            for (std::size_t stride = block / 2; stride > 0; stride /= 2) {
              if (t < stride) {
                shared[t] += shared[t + stride];
              }
            }
          });
        });
    FAIL() << "sanitizer missed the dropped-barrier race";
  } catch (const SanitizerError& e) {
    const SanitizerReport& r = e.report();
    EXPECT_EQ(r.kind, HazardKind::kRace);
    EXPECT_EQ(r.kernel, "dropped_barrier_reduce");
    EXPECT_EQ(r.phase, 1u);  // the collapsed reduction phase
    EXPECT_NE(r.tid_a, SanitizerReport::kNoTid);
    EXPECT_NE(r.tid_b, SanitizerReport::kNoTid);
    EXPECT_NE(r.tid_a, r.tid_b);
    EXPECT_NE(e.what(), nullptr);
  }
}

TEST(Racecheck, WriteWriteConflictIsCaught) {
  CheckedDevice dev;
  try {
    dev.launch_cooperative(
        "waw_kernel", LaunchConfig{1, 8}, sizeof(int), [&](BlockCtx& ctx) {
          auto shared = ctx.shared_as<int>(1);
          // Every thread writes shared[0] in the same phase: WAW.
          ctx.for_each_thread(
              [&](std::size_t t) { shared[0] = static_cast<int>(t); });
        });
    FAIL() << "sanitizer missed the write-write race";
  } catch (const SanitizerError& e) {
    EXPECT_EQ(e.report().kind, HazardKind::kRace);
    EXPECT_EQ(e.report().byte_offset, 0u);
    EXPECT_NE(e.report().message.find("WAW"), std::string::npos);
  }
}

TEST(Racecheck, ReadAfterWriteConflictIsCaught) {
  CheckedDevice dev;
  try {
    dev.launch_cooperative(
        "raw_kernel", LaunchConfig{1, 8}, 8 * sizeof(int), [&](BlockCtx& ctx) {
          auto shared = ctx.shared_as<int>(8);
          // One phase: tid 0 writes slot 1, then tid 1 (later in the same
          // phase) reads its own slot — a RAW hazard across tids.
          ctx.for_each_thread([&](std::size_t t) {
            if (t == 0) {
              shared[1] = 7;
            } else if (t == 1) {
              volatile int v = shared[1];
              (void)v;
            }
          });
        });
    FAIL() << "sanitizer missed the read-after-write race";
  } catch (const SanitizerError& e) {
    EXPECT_EQ(e.report().kind, HazardKind::kRace);
    EXPECT_EQ(e.report().tid_a, 0u);
    EXPECT_EQ(e.report().tid_b, 1u);
    EXPECT_NE(e.report().message.find("RAW"), std::string::npos);
  }
}

TEST(Racecheck, CrossPhaseCommunicationIsNotFlagged) {
  // Phase barriers order accesses: writing in phase 1 and reading the
  // neighbour's slot in phase 2 is the *correct* pattern and must stay
  // silent (the false-positive guard).
  CheckedDevice dev;
  const std::size_t block = 32;
  std::vector<int> out(block);
  EXPECT_NO_THROW(dev.launch_cooperative(
      "neighbour_exchange", LaunchConfig{1, block}, block * sizeof(int),
      [&](BlockCtx& ctx) {
        auto shared = ctx.shared_as<int>(block);
        ctx.for_each_thread(
            [&](std::size_t t) { shared[t] = static_cast<int>(t); });
        ctx.for_each_thread([&](std::size_t t) {
          out[t] = shared[(t + 1) % block];
        });
      }));
}

// ---------------------------------------------------------------------------
// memcheck: out-of-bounds and moved-from

TEST(Memcheck, OobSharedIndexIsCaught) {
  CheckedDevice dev;
  try {
    dev.launch_cooperative(
        "oob_shared", LaunchConfig{1, 4}, 4 * sizeof(double),
        [&](BlockCtx& ctx) {
          auto shared = ctx.shared_as<double>(4);
          ctx.for_each_thread([&](std::size_t t) {
            shared[t + 1] = 1.0;  // BUG: t == 3 writes shared[4]
          });
        });
    FAIL() << "sanitizer missed the out-of-bounds shared index";
  } catch (const SanitizerError& e) {
    EXPECT_EQ(e.report().kind, HazardKind::kOob);
    EXPECT_EQ(e.report().kernel, "oob_shared");
    EXPECT_EQ(e.report().object, "shared");
    EXPECT_EQ(e.report().byte_offset, 4 * sizeof(double));
    EXPECT_EQ(e.report().tid_b, 3u);
  }
}

TEST(Memcheck, SharedAsOverRequestIsCaughtOnCheckedDevice) {
  CheckedDevice dev;
  EXPECT_THROW(
      dev.launch_cooperative(
          "over_request", LaunchConfig{1, 4}, 4 * sizeof(double),
          [&](BlockCtx& ctx) {
            auto shared = ctx.shared_as<double>(8);  // 64 bytes of 32
            (void)shared;
          }),
      SanitizerError);
}

TEST(Memcheck, SharedAsOverRequestThrowsOnPlainDeviceToo) {
  // Satellite: the unchecked device also validates shared_as against the
  // launch's shared bytes instead of silently reinterpreting past the span.
  if (std::getenv("KREG_SPMD_SANITIZE") != nullptr) {
    GTEST_SKIP() << "KREG_SPMD_SANITIZE set: Device is not unchecked here";
  }
  Device dev;
  ASSERT_FALSE(dev.sanitizer_enabled());
  EXPECT_THROW(
      dev.launch_cooperative(LaunchConfig{1, 4}, 4 * sizeof(double),
                             [&](BlockCtx& ctx) {
                               auto shared = ctx.shared_as<double>(5);
                               (void)shared;
                             }),
      LaunchConfigError);
}

TEST(Memcheck, SharedAsMisalignedOffsetThrows) {
  Device dev;
  EXPECT_THROW(
      dev.launch_cooperative(LaunchConfig{1, 2}, 64,
                             [&](BlockCtx& ctx) {
                               auto v = ctx.shared_as<double>(1, 4);
                               (void)v;
                             }),
      LaunchConfigError);
}

TEST(Memcheck, OobBufferIndexIsCaught) {
  CheckedDevice dev(DeviceProperties::tiny(1 << 16));
  auto buf = dev.alloc_global<double>(8, "small-buffer");
  std::vector<double> host(8, 1.0);
  dev.copy_to_device(buf, std::span<const double>(host));
  auto view = buf.view();
  try {
    volatile double v = view[8];  // one past the end
    (void)v;
    FAIL() << "sanitizer missed the out-of-bounds buffer index";
  } catch (const SanitizerError& e) {
    EXPECT_EQ(e.report().kind, HazardKind::kOob);
    EXPECT_EQ(e.report().object, "small-buffer");
  }
}

TEST(Memcheck, MovedFromBufferUseIsCaught) {
  CheckedDevice dev(DeviceProperties::tiny(1 << 16));
  auto buf = dev.alloc_global<double>(8, "donor");
  auto taken = std::move(buf);
  try {
    auto view = buf.view();  // NOLINT(bugprone-use-after-move): intentional
    (void)view;
    FAIL() << "sanitizer missed the moved-from buffer use";
  } catch (const SanitizerError& e) {
    EXPECT_EQ(e.report().kind, HazardKind::kOob);
    EXPECT_NE(e.report().message.find("moved-from"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// initcheck: uninitialized reads and teardown leaks

TEST(Initcheck, UninitializedPartialSumReadIsCaught) {
  // The seeded bug: reduce over a buffer the main kernel never wrote (e.g.
  // a partial-sum array whose fill launch was skipped). Zero-initialized
  // storage makes this numerically silent; initcheck must flag it.
  CheckedDevice dev(DeviceProperties::tiny(1 << 16));
  auto partials = dev.alloc_global<double>(32, "partial-sums");
  try {
    const double total = kreg::spmd::reduce_sum<double>(
        dev, kreg::spmd::MemView<const double>(partials.view()), 32);
    (void)total;
    FAIL() << "sanitizer missed the uninitialized read";
  } catch (const SanitizerError& e) {
    EXPECT_EQ(e.report().kind, HazardKind::kUninit);
    EXPECT_EQ(e.report().object, "partial-sums");
    EXPECT_EQ(e.report().kernel, "reduce_sum");
  }
}

TEST(Initcheck, CopyToHostOfNeverWrittenBufferIsCaught) {
  CheckedDevice dev(DeviceProperties::tiny(1 << 16));
  auto buf = dev.alloc_global<float>(16, "never-written");
  std::vector<float> host(16);
  EXPECT_THROW(dev.copy_to_host(std::span<float>(host), buf), SanitizerError);
}

TEST(Initcheck, PartiallyWrittenBufferIsCaught) {
  CheckedDevice dev(DeviceProperties::tiny(1 << 16));
  auto buf = dev.alloc_global<double>(8, "half-written");
  auto view = buf.view();
  dev.launch("half_fill", LaunchConfig{1, 4},
             [&](const kreg::spmd::ThreadCtx& t) {
               view[t.thread_idx] = 1.0;  // elements 4..7 stay unwritten
             });
  std::vector<double> host(8);
  try {
    dev.copy_to_host(std::span<double>(host), buf);
    FAIL() << "sanitizer missed the partially-written buffer";
  } catch (const SanitizerError& e) {
    EXPECT_EQ(e.report().kind, HazardKind::kUninit);
    EXPECT_EQ(e.report().byte_offset, 4 * sizeof(double));
  }
}

TEST(Initcheck, LeakedAllocationIsReportedByCheckLeaks) {
  auto sink = std::make_shared<CountingSink>();
  std::optional<DeviceBuffer<double>> leaked;
  {
    CheckedDevice dev(DeviceProperties::tiny(1 << 16), nullptr, sink);
    leaked = dev.alloc_global<double>(64, "leaky");
    EXPECT_EQ(dev.check_leaks(), 1u);
    EXPECT_EQ(sink->count(HazardKind::kLeak), 1u);
    // Device teardown runs a second, non-throwing pass; the leak was
    // already reported once and must not be double-counted.
  }
  EXPECT_EQ(sink->count(HazardKind::kLeak), 1u);
  const std::vector<SanitizerReport> reports = sink->reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].object, "leaky");
  EXPECT_NE(reports[0].format().find("leakcheck"), std::string::npos);
}

TEST(Initcheck, TeardownReportsLeaksThroughNonThrowingPath) {
  auto sink = std::make_shared<CountingSink>();
  std::optional<DeviceBuffer<double>> leaked;
  {
    CheckedDevice dev(DeviceProperties::tiny(1 << 16), nullptr, sink);
    leaked = dev.alloc_global<double>(8, "teardown-leak");
  }  // ~Device: leak pass must not throw even with a ThrowSink installed
  EXPECT_EQ(sink->count(HazardKind::kLeak), 1u);
}

TEST(Initcheck, ReleasedBuffersAreNotLeaks) {
  CheckedDevice dev(DeviceProperties::tiny(1 << 16));
  {
    auto a = dev.alloc_global<double>(8, "scoped");
  }
  EXPECT_EQ(dev.check_leaks(), 0u);
}

// ---------------------------------------------------------------------------
// Report formatting and sinks

TEST(Report, FormatNamesHazardKindPhaseAndTids) {
  SanitizerReport r;
  r.kind = HazardKind::kRace;
  r.kernel = "reduce_sum";
  r.object = "shared";
  r.phase = 3;
  r.block = 2;
  r.tid_a = 5;
  r.tid_b = 9;
  r.byte_offset = 40;
  r.message = "WAR hazard";
  const std::string text = r.format();
  EXPECT_NE(text.find("racecheck"), std::string::npos);
  EXPECT_NE(text.find("kernel=reduce_sum"), std::string::npos);
  EXPECT_NE(text.find("phase=3"), std::string::npos);
  EXPECT_NE(text.find("tids=5,9"), std::string::npos);
  EXPECT_NE(text.find("byte=40"), std::string::npos);

  SanitizerReport u;
  u.kind = HazardKind::kUninit;
  EXPECT_NE(u.format().find("initcheck"), std::string::npos);
  SanitizerReport o;
  o.kind = HazardKind::kOob;
  EXPECT_NE(o.format().find("memcheck"), std::string::npos);
}

TEST(Sinks, CountingSinkCountsPerKindAndKeepsReports) {
  CountingSink sink(nullptr, 2);
  SanitizerReport race;
  race.kind = HazardKind::kRace;
  SanitizerReport oob;
  oob.kind = HazardKind::kOob;
  sink.report(race);
  sink.report(race);
  sink.report(oob);
  EXPECT_EQ(sink.count(HazardKind::kRace), 2u);
  EXPECT_EQ(sink.count(HazardKind::kOob), 1u);
  EXPECT_EQ(sink.count(HazardKind::kUninit), 0u);
  EXPECT_EQ(sink.total(), 3u);
  EXPECT_EQ(sink.reports().size(), 2u);  // max_kept
}

TEST(Sinks, CountingSinkDeviceKeepsRunningPastFindings) {
  // The bench mode: log-and-count races don't abort the launch (OOB still
  // throws — there's no valid location to redirect the access to).
  auto sink = std::make_shared<CountingSink>();
  CheckedDevice dev(DeviceProperties::tesla_s10(), nullptr, sink);
  dev.launch_cooperative("waw_counted", LaunchConfig{1, 4}, sizeof(int),
                         [&](BlockCtx& ctx) {
                           auto shared = ctx.shared_as<int>(1);
                           ctx.for_each_thread([&](std::size_t t) {
                             shared[0] = static_cast<int>(t);
                           });
                         });
  EXPECT_GE(sink->count(HazardKind::kRace), 1u);
  EXPECT_EQ(dev.sanitizer()->races_detected(), sink->count(HazardKind::kRace));
}

// ---------------------------------------------------------------------------
// Clean suite: the real device algorithms produce zero findings

TEST(CleanSuite, DeviceAlgorithmsProduceZeroFindings) {
  auto sink = std::make_shared<CountingSink>();
  {
    CheckedDevice dev(DeviceProperties::tesla_s10(), nullptr, sink);

    // Primitives: both reduction variants, argmin, grid reduce, scan.
    // Scoped so the buffers are released before the final leak check.
    {
      const std::size_t n = 1000;
      std::vector<double> host(n);
      std::iota(host.begin(), host.end(), 1.0);
      auto buf = dev.alloc_global<double>(n, "clean-input");
      dev.copy_to_device(buf, std::span<const double>(host));
      const kreg::spmd::MemView<const double> view = buf.view();
      EXPECT_DOUBLE_EQ(kreg::spmd::reduce_sum<double>(dev, view, 128),
                       n * (n + 1) / 2.0);
      EXPECT_DOUBLE_EQ(
          kreg::spmd::reduce_sum<double>(
              dev, view, 128, kreg::spmd::ReduceVariant::kInterleaved),
          n * (n + 1) / 2.0);
      EXPECT_EQ(kreg::spmd::reduce_argmin<double>(dev, view, 64).index, 0u);
      EXPECT_DOUBLE_EQ(kreg::spmd::reduce_sum_grid<double>(dev, view, 64),
                       n * (n + 1) / 2.0);

      auto scan_buf = dev.alloc_global<double>(300, "clean-scan");
      std::vector<double> ones(300, 1.0);
      dev.copy_to_device(scan_buf, std::span<const double>(ones));
      kreg::spmd::inclusive_scan<double>(dev, scan_buf.view(), 64);
      std::vector<double> scanned(300);
      dev.copy_to_host(std::span<double>(scanned), scan_buf);
      EXPECT_DOUBLE_EQ(scanned.back(), 300.0);
    }

    // Full selectors: regression (both layouts, window + per-row) and KDE.
    kreg::data::Dataset data;
    for (std::size_t i = 0; i < 80; ++i) {
      const double x = static_cast<double>(i) / 8.0;
      data.x.push_back(x);
      data.y.push_back(x * 0.5 + ((i % 7) - 3.0) * 0.05);
    }
    const kreg::BandwidthGrid grid(0.3, 3.0, 12);
    for (const auto algorithm :
         {kreg::SweepAlgorithm::kWindow, kreg::SweepAlgorithm::kPerRowSort}) {
      for (const auto layout : {kreg::ResidualLayout::kBandwidthMajor,
                                kreg::ResidualLayout::kObservationMajor}) {
        kreg::SpmdSelectorConfig config;
        config.algorithm = algorithm;
        config.layout = layout;
        config.threads_per_block = 64;
        kreg::SpmdGridSelector selector(dev, config);
        const auto result = selector.select(data, grid);
        EXPECT_GT(result.bandwidth, 0.0);
      }
      kreg::SpmdKdeConfig kde_config;
      kde_config.algorithm = algorithm;
      kde_config.threads_per_block = 64;
      kreg::SpmdKdeSelector kde(dev, kde_config);
      const auto kde_result =
          kde.select(std::span<const double>(data.x), grid);
      EXPECT_GT(kde_result.bandwidth, 0.0);
    }

    EXPECT_EQ(dev.check_leaks(), 0u);
  }
  EXPECT_EQ(sink->total(), 0u)
      << "false positive: " << (sink->reports().empty()
                                    ? std::string("<none kept>")
                                    : sink->reports().front().format());
}

// ---------------------------------------------------------------------------
// Device error paths (unchecked device): launch validation and recovery

TEST(DeviceErrorPaths, CoverZeroStillLaunchesOneBlock) {
  const LaunchConfig cfg = LaunchConfig::cover(0, 128);
  EXPECT_EQ(cfg.grid_blocks, 1u);
  EXPECT_EQ(cfg.threads_per_block, 128u);
  Device dev;
  std::size_t executed = 0;  // one block → one worker, no data race
  dev.launch(cfg, [&](const kreg::spmd::ThreadCtx&) { ++executed; });
  EXPECT_EQ(executed, 128u);
  EXPECT_EQ(dev.stats().blocks_executed, 1u);
}

TEST(DeviceErrorPaths, ZeroSizedGridOrBlockIsRejected) {
  Device dev;
  EXPECT_THROW(dev.launch(LaunchConfig{0, 8}, [](const kreg::spmd::ThreadCtx&) {}),
               LaunchConfigError);
  EXPECT_THROW(dev.launch(LaunchConfig{1, 0}, [](const kreg::spmd::ThreadCtx&) {}),
               LaunchConfigError);
  EXPECT_EQ(dev.stats().kernel_launches, 0u);  // rejected before counting
}

TEST(DeviceErrorPaths, SharedBytesAtCapacityPassesOverCapacityThrows) {
  Device dev;
  const std::size_t cap = dev.properties().shared_memory_per_block;
  EXPECT_NO_THROW(dev.launch_cooperative(
      LaunchConfig{1, 1}, cap,
      [&](BlockCtx& ctx) { EXPECT_EQ(ctx.shared_bytes(), cap); }));
  EXPECT_THROW(
      dev.launch_cooperative(LaunchConfig{1, 1}, cap + 1, [](BlockCtx&) {}),
      LaunchConfigError);
  EXPECT_EQ(dev.stats().cooperative_launches, 1u);  // only the valid launch
}

TEST(DeviceErrorPaths, ConstantMemoryExhaustionIsRecoverable) {
  Device dev;
  const std::size_t cap_floats =
      dev.properties().constant_cache_bytes / sizeof(float);
  std::vector<float> host(cap_floats, 1.0f);
  {
    auto full = dev.upload_constant<float>(std::span<const float>(host));
    EXPECT_EQ(full.size(), cap_floats);
    // The cache is full: even one more float must be refused...
    EXPECT_THROW(dev.upload_constant<float>(
                     std::span<const float>(host).first(1)),
                 ConstantCapacityError);
  }  // ...until the RAII release returns the bytes...
  auto again = dev.upload_constant<float>(std::span<const float>(host));
  EXPECT_EQ(again.size(), cap_floats);  // ...after which a re-upload fits.
}

TEST(DeviceErrorPaths, LaunchStatsAccumulateAcrossMixedLaunches) {
  Device dev;
  dev.launch(LaunchConfig{2, 8}, [](const kreg::spmd::ThreadCtx&) {});
  dev.launch_cooperative(LaunchConfig{3, 4}, 64, [](BlockCtx& ctx) {
    ctx.for_each_thread([](std::size_t) {});
  });
  dev.launch(LaunchConfig{1, 16}, [](const kreg::spmd::ThreadCtx&) {});
  const kreg::spmd::LaunchStats& s = dev.stats();
  EXPECT_EQ(s.kernel_launches, 2u);
  EXPECT_EQ(s.cooperative_launches, 1u);
  EXPECT_EQ(s.blocks_executed, 2u + 3u + 1u);
  EXPECT_EQ(s.threads_executed, 16u + 12u + 16u);
}

// ---------------------------------------------------------------------------
// Environment activation

TEST(Activation, PlainDeviceHasNoSanitizerByDefault) {
  // The test harness may set KREG_SPMD_SANITIZE for the `sanitize` label
  // re-run; skip the "off by default" claim in that configuration.
  if (std::getenv("KREG_SPMD_SANITIZE") != nullptr) {
    GTEST_SKIP() << "KREG_SPMD_SANITIZE set in environment";
  }
  Device dev;
  EXPECT_FALSE(dev.sanitizer_enabled());
  EXPECT_EQ(dev.check_leaks(), 0u);  // no-op without a sanitizer
}

TEST(Activation, CheckedDeviceAlwaysHasSanitizer) {
  CheckedDevice dev;
  EXPECT_TRUE(dev.sanitizer_enabled());
  ASSERT_NE(dev.sanitizer(), nullptr);
  EXPECT_EQ(dev.sanitizer()->findings(), 0u);
}

}  // namespace
