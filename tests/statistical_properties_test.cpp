// Statistical property tests: asymptotic behaviours the selector must
// exhibit on synthetic data — the optimal bandwidth's n^(−1/5) decay, CV
// consistency against the oracle MSE-optimal bandwidth, bitwise
// determinism of the full pipeline, and the analogous oracle-tracking
// guarantees for the k-NN LOOCV and OSCV selectors (including OSCV's
// documented steadiness advantage at a kinked regression mean).
#include <gtest/gtest.h>

#include <cmath>

#include "core/kreg.hpp"
#include "spmd/device.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::data::Dataset;
using kreg::rng::Stream;

double select_h(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  const Dataset d = kreg::data::sine_dgp(n, s, 0.3);
  // Fine fixed grid (not n-dependent) so the argmin can move freely.
  const BandwidthGrid grid(0.005, 0.5, 200);
  return kreg::SortedGridSelector().select(d, grid).bandwidth;
}

TEST(StatisticalRates, OptimalBandwidthShrinksWithSampleSize) {
  // h* ~ C n^(−1/5): over a 16x increase in n, h should fall by roughly
  // 16^(1/5) ≈ 1.74. Average over seeds to tame selection noise, and
  // accept a generous band around the theoretical ratio.
  const std::size_t n_small = 250;
  const std::size_t n_large = 4000;
  double h_small = 0.0;
  double h_large = 0.0;
  const int seeds = 5;
  for (int r = 0; r < seeds; ++r) {
    h_small += select_h(n_small, 100 + r);
    h_large += select_h(n_large, 200 + r);
  }
  h_small /= seeds;
  h_large /= seeds;
  EXPECT_LT(h_large, h_small);  // must shrink
  const double ratio = h_small / h_large;
  EXPECT_GT(ratio, 1.15);  // clearly shrinking …
  EXPECT_LT(ratio, 4.0);   // … but not collapsing
}

TEST(StatisticalRates, CvTracksOracleBandwidth) {
  // The CV-selected bandwidth should achieve out-of-sample MSE within a
  // modest factor of the best bandwidth on the same grid chosen with
  // knowledge of the true mean (the oracle).
  Stream s(42);
  const Dataset train = kreg::data::sine_dgp(1500, s, 0.3);
  const BandwidthGrid grid(0.005, 0.4, 60);

  const auto cv_choice = kreg::SortedGridSelector().select(train, grid);

  const auto oracle_mse = [&](double h) {
    const kreg::NadarayaWatson g(train, h);
    double acc = 0.0;
    int used = 0;
    for (double x = 0.05; x <= 0.95; x += 0.01) {
      const double predicted = g(x);
      if (std::isfinite(predicted)) {
        const double e = predicted - kreg::data::sine_dgp_mean(x);
        acc += e * e;
        ++used;
      }
    }
    return acc / used;
  };

  double best_oracle = 1e300;
  for (double h : grid.values()) {
    best_oracle = std::min(best_oracle, oracle_mse(h));
  }
  EXPECT_LE(oracle_mse(cv_choice.bandwidth), 3.0 * best_oracle);
}

TEST(Determinism, FullPipelineIsBitwiseReproducible) {
  // Same seed, same configuration: every byte of the result must match,
  // including across the parallel and device paths.
  const auto run = [] {
    Stream s(7);
    const Dataset d = kreg::data::paper_dgp(500, s);
    const BandwidthGrid grid = BandwidthGrid::default_for(d, 50);
    kreg::spmd::Device device;
    kreg::SpmdSelectorConfig cfg;
    cfg.precision = kreg::Precision::kDouble;
    return kreg::SpmdGridSelector(device, cfg).select(d, grid);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.bandwidth, b.bandwidth);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    EXPECT_EQ(a.scores[i], b.scores[i]) << i;  // bitwise
  }
}

TEST(Determinism, ParallelSweepBitwiseStableAcrossRuns) {
  Stream s(8);
  const Dataset d = kreg::data::paper_dgp(700, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 40);
  const auto first = kreg::ParallelSortedGridSelector().select(d, grid);
  for (int r = 0; r < 3; ++r) {
    const auto again = kreg::ParallelSortedGridSelector().select(d, grid);
    for (std::size_t i = 0; i < first.scores.size(); ++i) {
      ASSERT_EQ(again.scores[i], first.scores[i]) << "run " << r;
    }
  }
}

// Out-of-sample MSE of an NW fit at bandwidth h against a known mean,
// averaged over the interior of [0, 1] (mirrors CvTracksOracleBandwidth).
double nw_oracle_mse(const Dataset& train, double h, double (*truth)(double)) {
  const kreg::NadarayaWatson g(train, h);
  double acc = 0.0;
  int used = 0;
  for (double x = 0.05; x <= 0.95; x += 0.01) {
    const double predicted = g(x);
    if (std::isfinite(predicted)) {
      const double e = predicted - truth(x);
      acc += e * e;
      ++used;
    }
  }
  return acc / used;
}

double knn_oracle_mse(const Dataset& train, std::size_t k,
                      double (*truth)(double)) {
  const kreg::KnnRegression g(train, k);
  double acc = 0.0;
  int used = 0;
  for (double x = 0.05; x <= 0.95; x += 0.01) {
    const double e = g.predict(x) - truth(x);
    acc += e * e;
    ++used;
  }
  return acc / used;
}

TEST(StatisticalRates, KnnCvTracksOracleNeighborCount) {
  // The fast-LOOCV-selected k should achieve out-of-sample risk within a
  // modest factor of the best k on the same grid chosen with knowledge of
  // the true mean. (Empirically the ratio stays below 2.0 across seeds;
  // 3.0 leaves slack without losing the property.)
  for (std::uint64_t seed : {42u, 43u, 44u}) {
    Stream s(seed);
    const Dataset train = kreg::data::sine_dgp(1500, s, 0.3);
    const auto kgrid = kreg::default_neighbor_grid(train.size());
    const auto choice = kreg::knn_select(train, kgrid);

    double best_oracle = 1e300;
    for (std::size_t k : kgrid) {
      best_oracle = std::min(
          best_oracle, knn_oracle_mse(train, k, kreg::data::sine_dgp_mean));
    }
    EXPECT_LE(knn_oracle_mse(train, choice.k, kreg::data::sine_dgp_mean),
              3.0 * best_oracle)
        << "seed=" << seed << " k=" << choice.k;
  }
}

TEST(StatisticalRates, OscvTracksOracleBandwidthOnSmoothMean) {
  // On a smooth mean the rescaled OSCV bandwidth ĥ = C·b̂ must be
  // competitive with the oracle-best h of the searched grid. (Empirically
  // the ratio stays below 1.1 across seeds; 2.0 leaves slack.)
  for (std::uint64_t seed : {42u, 43u, 44u}) {
    Stream s(seed);
    const Dataset train = kreg::data::sine_dgp(1500, s, 0.3);
    const BandwidthGrid grid(0.005, 0.4, 60);
    const auto choice = kreg::OscvSweepSelector().select(train, grid);

    double best_oracle = 1e300;
    for (double h : grid.values()) {
      best_oracle = std::min(
          best_oracle, nw_oracle_mse(train, h, kreg::data::sine_dgp_mean));
    }
    EXPECT_LE(
        nw_oracle_mse(train, choice.bandwidth, kreg::data::sine_dgp_mean),
        2.0 * best_oracle)
        << "seed=" << seed << " h=" << choice.bandwidth;
  }
}

TEST(StatisticalRates, OscvIsSteadierThanCvAtAKink) {
  // Hart & Yi's motivating comparison on a continuous, nondifferentiable
  // mean: ordinary LOOCV's bandwidth is dragged down by the kink and
  // bounces seed to seed, while OSCV selects a consistently wider, less
  // variable h at no risk penalty. All three facets hold with margin on
  // these fixed seeds (per-seed h ordering, ~2x spread reduction, mean
  // oracle risk parity).
  constexpr int kSeeds = 10;
  double h_cv[kSeeds];
  double h_oscv[kSeeds];
  double risk_cv = 0.0;
  double risk_oscv = 0.0;
  for (int r = 0; r < kSeeds; ++r) {
    Stream s(500 + r);
    const Dataset train = kreg::data::kink_dgp(1000, s, 0.3);
    const BandwidthGrid grid(0.005, 0.4, 60);
    const auto cv = kreg::WindowSweepSelector().select(train, grid);
    const auto oscv = kreg::OscvSweepSelector().select(train, grid);
    h_cv[r] = cv.bandwidth;
    h_oscv[r] = oscv.bandwidth;
    EXPECT_GT(oscv.bandwidth, cv.bandwidth) << "seed=" << 500 + r;
    risk_cv += nw_oracle_mse(train, cv.bandwidth, kreg::data::kink_dgp_mean);
    risk_oscv +=
        nw_oracle_mse(train, oscv.bandwidth, kreg::data::kink_dgp_mean);
  }
  const auto spread = [](const double* h) {
    double mean = 0.0;
    for (int r = 0; r < kSeeds; ++r) {
      mean += h[r];
    }
    mean /= kSeeds;
    double acc = 0.0;
    for (int r = 0; r < kSeeds; ++r) {
      acc += (h[r] - mean) * (h[r] - mean);
    }
    return std::sqrt(acc / kSeeds);
  };
  EXPECT_LT(spread(h_oscv), spread(h_cv));
  EXPECT_LE(risk_oscv, 1.25 * risk_cv);
}

TEST(StatisticalRates, KdeBandwidthAlsoShrinks) {
  const auto kde_h = [](std::size_t n, std::uint64_t seed) {
    Stream s(seed);
    std::vector<double> xs(n);
    for (auto& x : xs) {
      x = s.gaussian(0.0, 1.0);
    }
    const BandwidthGrid grid(0.02, 2.0, 100);
    return kreg::kde_select_sweep(xs, grid).bandwidth;
  };
  double h_small = 0.0;
  double h_large = 0.0;
  for (int r = 0; r < 3; ++r) {
    h_small += kde_h(300, 300 + r);
    h_large += kde_h(4800, 400 + r);
  }
  EXPECT_LT(h_large, h_small);
}

}  // namespace
