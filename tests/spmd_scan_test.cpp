// Tests for the device inclusive prefix scan.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "rng/stream.hpp"
#include "spmd/device.hpp"
#include "spmd/scan.hpp"

namespace {

using kreg::spmd::Device;

class ScanTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanTest, MatchesSerialInclusiveScan) {
  const std::size_t n = GetParam();
  Device dev;
  kreg::rng::Stream s(100 + n);
  std::vector<double> host = s.uniforms(n, -1.0, 1.0);
  std::vector<double> expected(n);
  std::partial_sum(host.begin(), host.end(), expected.begin());

  auto buf = dev.alloc_global<double>(n);
  dev.copy_to_device(buf, std::span<const double>(host));
  kreg::spmd::inclusive_scan<double>(dev, buf.span(), 64);
  std::vector<double> got(n);
  dev.copy_to_host(std::span<double>(got), buf);

  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(got[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])))
        << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanTest,
                         ::testing::Values<std::size_t>(1, 2, 3, 63, 64, 65,
                                                        127, 128, 129, 1000,
                                                        4096, 10001));

TEST(Scan, IntegersExact) {
  Device dev;
  const std::size_t n = 5000;
  std::vector<double> host(n, 1.0);
  auto buf = dev.alloc_global<double>(n);
  dev.copy_to_device(buf, std::span<const double>(host));
  kreg::spmd::inclusive_scan<double>(dev, buf.span(), 512);
  std::vector<double> got(n);
  dev.copy_to_host(std::span<double>(got), buf);
  for (std::size_t i = 0; i < n; i += 499) {
    EXPECT_EQ(got[i], static_cast<double>(i + 1));
  }
  EXPECT_EQ(got.back(), static_cast<double>(n));
}

TEST(Scan, SingleElementUntouched) {
  Device dev;
  auto buf = dev.alloc_global<double>(1);
  buf[0] = 42.0;
  kreg::spmd::inclusive_scan<double>(dev, buf.span());
  EXPECT_EQ(buf[0], 42.0);
}

TEST(Scan, BlockDimRequestOfOneIsClampedSafely) {
  // A one-thread block request is clamped to 2 (otherwise the recursive
  // block-totals pass would never shrink); the scan must stay correct.
  Device dev;
  std::vector<double> host = {1.0, 2.0, 3.0, 4.0};
  auto buf = dev.alloc_global<double>(4);
  dev.copy_to_device(buf, std::span<const double>(host));
  kreg::spmd::inclusive_scan<double>(dev, buf.span(), 1);
  EXPECT_EQ(buf[0], 1.0);
  EXPECT_EQ(buf[1], 3.0);
  EXPECT_EQ(buf[2], 6.0);
  EXPECT_EQ(buf[3], 10.0);
}

TEST(Scan, FloatPath) {
  Device dev;
  std::vector<float> host(100, 0.5f);
  auto buf = dev.alloc_global<float>(100);
  dev.copy_to_device(buf, std::span<const float>(host));
  kreg::spmd::inclusive_scan<float>(dev, buf.span(), 32);
  EXPECT_FLOAT_EQ(buf[99], 50.0f);
}

}  // namespace
