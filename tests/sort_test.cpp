// Unit and property tests for the sorting substrate, including the paper's
// iterative (explicit-stack) quicksort with auxiliary payload.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "rng/stream.hpp"
#include "sort/argsort.hpp"
#include "sort/checks.hpp"
#include "sort/heapsort.hpp"
#include "sort/insertion_sort.hpp"
#include "sort/introsort.hpp"
#include "sort/iterative_quicksort.hpp"
#include "sort/partition.hpp"

namespace {

using kreg::rng::Stream;

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  return s.uniforms(n, -100.0, 100.0);
}

// ---- Adversarial input shapes -------------------------------------------

std::vector<double> sorted_input(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<double>(i);
  }
  return v;
}

std::vector<double> reversed_input(std::size_t n) {
  std::vector<double> v = sorted_input(n);
  std::reverse(v.begin(), v.end());
  return v;
}

std::vector<double> organ_pipe(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<double>(std::min(i, n - i));
  }
  return v;
}

std::vector<double> all_equal(std::size_t n) {
  return std::vector<double>(n, 3.14);
}

std::vector<double> few_distinct(std::size_t n, std::uint64_t seed) {
  Stream s(seed);
  std::vector<double> v(n);
  for (auto& x : v) {
    x = static_cast<double>(s.index(4));
  }
  return v;
}

struct ShapeCase {
  const char* name;
  std::vector<double> (*make)(std::size_t);
};

// ---- Plain key sorts: parameterized over algorithm and shape ------------

using SortFn = void (*)(std::span<double>);

void run_iterative_quicksort(std::span<double> a) {
  kreg::sort::iterative_quicksort(a);
}
void run_introsort(std::span<double> a) { kreg::sort::introsort(a); }
void run_heapsort(std::span<double> a) { kreg::sort::heapsort(a); }
void run_insertion(std::span<double> a) { kreg::sort::insertion_sort(a); }

class SortAlgoTest : public ::testing::TestWithParam<SortFn> {};

TEST_P(SortAlgoTest, SortsRandomInputs) {
  for (std::size_t n : {0u, 1u, 2u, 3u, 15u, 16u, 17u, 100u, 1000u}) {
    std::vector<double> v = random_doubles(n, 1000 + n);
    std::vector<double> expected = v;
    std::sort(expected.begin(), expected.end());
    GetParam()(std::span<double>(v));
    EXPECT_EQ(v, expected) << "n=" << n;
  }
}

TEST_P(SortAlgoTest, SortsAdversarialShapes) {
  for (std::size_t n : {7u, 64u, 513u}) {
    for (auto make : {sorted_input, reversed_input, organ_pipe, all_equal}) {
      std::vector<double> v = make(n);
      std::vector<double> expected = v;
      std::sort(expected.begin(), expected.end());
      GetParam()(std::span<double>(v));
      EXPECT_EQ(v, expected) << "n=" << n;
    }
  }
}

TEST_P(SortAlgoTest, SortsFewDistinctValues) {
  std::vector<double> v = few_distinct(777, 42);
  std::vector<double> expected = v;
  std::sort(expected.begin(), expected.end());
  GetParam()(std::span<double>(v));
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SortAlgoTest,
                         ::testing::Values(run_iterative_quicksort,
                                           run_introsort, run_heapsort,
                                           run_insertion));

// ---- Key-value sorts ------------------------------------------------------

using SortKvFn = void (*)(std::span<double>, std::span<int>);

void run_quicksort_kv(std::span<double> k, std::span<int> v) {
  kreg::sort::iterative_quicksort_kv(k, v);
}
void run_heapsort_kv(std::span<double> k, std::span<int> v) {
  kreg::sort::heapsort_kv(k, v);
}
void run_insertion_kv(std::span<double> k, std::span<int> v) {
  kreg::sort::insertion_sort_kv(k, v);
}

class SortKvTest : public ::testing::TestWithParam<SortKvFn> {};

TEST_P(SortKvTest, KeysSortedAndPairsPreserved) {
  for (std::size_t n : {0u, 1u, 2u, 17u, 200u}) {
    std::vector<double> keys = random_doubles(n, 2000 + n);
    std::vector<int> values(n);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = static_cast<int>(i);
    }
    const std::vector<double> keys_before = keys;
    const std::vector<int> values_before = values;

    GetParam()(std::span<double>(keys), std::span<int>(values));

    EXPECT_TRUE(kreg::sort::is_sorted(std::span<const double>(keys)));
    EXPECT_TRUE(kreg::sort::is_paired_permutation(
        std::span<const double>(keys_before),
        std::span<const int>(values_before), std::span<const double>(keys),
        std::span<const int>(values)));
  }
}

TEST_P(SortKvTest, PayloadFollowsKeyExactly) {
  // With distinct keys, value i must end up wherever key i went.
  std::vector<double> keys = {5.0, -1.0, 3.5, 0.0, 9.75, -20.0};
  std::vector<int> values = {0, 1, 2, 3, 4, 5};
  GetParam()(std::span<double>(keys), std::span<int>(values));
  const std::vector<double> expected_keys = {-20.0, -1.0, 0.0, 3.5, 5.0, 9.75};
  const std::vector<int> expected_values = {5, 1, 3, 2, 0, 4};
  EXPECT_EQ(keys, expected_keys);
  EXPECT_EQ(values, expected_values);
}

INSTANTIATE_TEST_SUITE_P(AllKvAlgorithms, SortKvTest,
                         ::testing::Values(run_quicksort_kv, run_heapsort_kv,
                                           run_insertion_kv));

// ---- The paper's use case: distances with Y payload -----------------------

TEST(IterativeQuicksortKv, DistanceRowWithYPayload) {
  // Mimic one device thread: sort |x_i - x_l| carrying y_l.
  Stream s(77);
  const std::size_t n = 500;
  std::vector<double> x = s.uniforms(n);
  std::vector<double> y = s.uniforms(n, 0.0, 10.0);
  const double xi = x[123];

  std::vector<double> dist(n);
  std::vector<double> yrow = y;
  for (std::size_t l = 0; l < n; ++l) {
    dist[l] = std::abs(x[l] - xi);
  }
  const std::vector<double> dist_before = dist;
  const std::vector<double> y_before = yrow;

  kreg::sort::iterative_quicksort_kv(std::span<double>(dist),
                                     std::span<double>(yrow));

  EXPECT_TRUE(kreg::sort::is_sorted(std::span<const double>(dist)));
  EXPECT_DOUBLE_EQ(dist[0], 0.0);  // self distance first
  EXPECT_TRUE(kreg::sort::is_paired_permutation(
      std::span<const double>(dist_before), std::span<const double>(y_before),
      std::span<const double>(dist), std::span<const double>(yrow)));
}

TEST(IterativeQuicksort, CutoffVariantsAgree) {
  for (std::size_t cutoff : {1u, 2u, 8u, 64u}) {
    std::vector<double> v = random_doubles(333, 5);
    std::vector<double> expected = v;
    std::sort(expected.begin(), expected.end());
    kreg::sort::iterative_quicksort(std::span<double>(v), cutoff);
    EXPECT_EQ(v, expected) << "cutoff=" << cutoff;
  }
}

// ---- partition -------------------------------------------------------------

TEST(PartitionKv, SplitsAtBoundAndKeepsPairs) {
  for (std::size_t n : {0u, 1u, 2u, 17u, 200u}) {
    std::vector<double> keys = random_doubles(n, 3000 + n);
    std::vector<int> values(n);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = static_cast<int>(i);
    }
    const std::vector<double> keys_before = keys;
    const std::vector<int> values_before = values;
    const double bound = 25.0;

    const std::size_t q = kreg::sort::partition_kv(
        std::span<double>(keys), std::span<int>(values), bound);

    std::size_t expected = 0;
    for (double k : keys_before) {
      expected += k <= bound ? 1 : 0;
    }
    EXPECT_EQ(q, expected) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) {
      if (i < q) {
        EXPECT_LE(keys[i], bound);
      } else {
        EXPECT_GT(keys[i], bound);
      }
    }
    EXPECT_TRUE(kreg::sort::is_paired_permutation(
        std::span<const double>(keys_before),
        std::span<const int>(values_before), std::span<const double>(keys),
        std::span<const int>(values)));
  }
}

TEST(PartitionKv, BoundaryBounds) {
  std::vector<double> keys = {3.0, 1.0, 2.0};
  std::vector<int> values = {30, 10, 20};
  // Bound below everything: nothing admitted.
  EXPECT_EQ(kreg::sort::partition_kv(std::span<double>(keys),
                                     std::span<int>(values), 0.5),
            0u);
  // Bound at the max (inclusive <=): everything admitted.
  EXPECT_EQ(kreg::sort::partition_kv(std::span<double>(keys),
                                     std::span<int>(values), 3.0),
            3u);
}

TEST(PartitionKeys, MatchesKvOnKeys) {
  std::vector<double> a = random_doubles(101, 11);
  std::vector<double> b = a;
  std::vector<int> payload(a.size(), 0);
  const std::size_t qa =
      kreg::sort::partition_keys(std::span<double>(a), 10.0);
  const std::size_t qb = kreg::sort::partition_kv(
      std::span<double>(b), std::span<int>(payload), 10.0);
  EXPECT_EQ(qa, qb);
}

// ---- argsort ---------------------------------------------------------------

TEST(Argsort, ProducesSortingPermutation) {
  std::vector<double> keys = random_doubles(321, 9);
  const auto perm = kreg::sort::argsort(std::span<const double>(keys));
  ASSERT_EQ(perm.size(), keys.size());
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(keys[perm[i - 1]], keys[perm[i]]);
  }
  // perm is a permutation of 0..n-1.
  std::vector<std::size_t> sorted_perm = perm;
  std::sort(sorted_perm.begin(), sorted_perm.end());
  for (std::size_t i = 0; i < sorted_perm.size(); ++i) {
    EXPECT_EQ(sorted_perm[i], i);
  }
}

TEST(Argsort, ApplyPermutationRoundTrip) {
  std::vector<double> keys = random_doubles(64, 10);
  const auto perm = kreg::sort::argsort(std::span<const double>(keys));
  const auto sorted =
      kreg::sort::apply_permutation(std::span<const double>(keys), perm);
  EXPECT_TRUE(kreg::sort::is_sorted(std::span<const double>(sorted)));
}

TEST(Argsort, EmptyInput) {
  const std::vector<double> empty;
  EXPECT_TRUE(kreg::sort::argsort(std::span<const double>(empty)).empty());
}

// ---- Checks helpers --------------------------------------------------------

TEST(Checks, IsSortedDetectsOrder) {
  const std::vector<double> good = {1.0, 1.0, 2.0, 3.0};
  const std::vector<double> bad = {1.0, 3.0, 2.0};
  EXPECT_TRUE(kreg::sort::is_sorted(std::span<const double>(good)));
  EXPECT_FALSE(kreg::sort::is_sorted(std::span<const double>(bad)));
}

TEST(Checks, PairedPermutationCatchesBrokenAssociation) {
  const std::vector<double> k1 = {1.0, 2.0};
  const std::vector<int> v1 = {10, 20};
  const std::vector<double> k2 = {1.0, 2.0};
  const std::vector<int> swapped = {20, 10};  // association broken
  EXPECT_FALSE(kreg::sort::is_paired_permutation(
      std::span<const double>(k1), std::span<const int>(v1),
      std::span<const double>(k2), std::span<const int>(swapped)));
}

}  // namespace
