// Tests for local-linear LOO-CV bandwidth selection.
#include <gtest/gtest.h>

#include <cmath>

#include "core/grid.hpp"
#include "core/local_linear_cv.hpp"
#include "core/nadaraya_watson.hpp"
#include "core/selectors.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::KernelType;
using kreg::LocalLinear;
using kreg::LocalLinearGridSelector;
using kreg::data::Dataset;
using kreg::rng::Stream;

TEST(LooLocalLinear, MatchesRefitWithoutObservation) {
  // The LOO prediction must equal fitting LocalLinear on the other n-1
  // points and evaluating at X_i.
  Stream s(41);
  const Dataset d = kreg::data::sine_dgp(60, s);
  const double h = 0.3;
  for (std::size_t i = 0; i < d.size(); i += 7) {
    Dataset rest;
    for (std::size_t l = 0; l < d.size(); ++l) {
      if (l != i) {
        rest.x.push_back(d.x[l]);
        rest.y.push_back(d.y[l]);
      }
    }
    const LocalLinear g(rest, h);
    const auto p = kreg::loo_predict_local_linear(d, i, h);
    ASSERT_TRUE(p.valid);
    EXPECT_NEAR(p.value, g(d.x[i]), 1e-9) << "i=" << i;
  }
}

TEST(LooLocalLinear, InvalidWhenNoNeighbours) {
  Dataset d{{0.0, 10.0}, {1.0, 2.0}};
  const auto p = kreg::loo_predict_local_linear(d, 0, 0.5);
  EXPECT_FALSE(p.valid);
}

TEST(LooLocalLinear, ExactOnNoiselessLine) {
  // Leave-one-out from linear data refits the same line: residuals are 0,
  // so CV_ll is 0 at any bandwidth wide enough for 2+ neighbours.
  Dataset d;
  for (int i = 0; i <= 30; ++i) {
    d.x.push_back(i / 30.0);
    d.y.push_back(1.0 + 2.0 * i / 30.0);
  }
  EXPECT_NEAR(kreg::cv_score_local_linear(d, 0.5), 0.0, 1e-18);
}

TEST(LooLocalLinear, ValidatesInputs) {
  Dataset d{{0.0, 0.5}, {1.0, 2.0}};
  EXPECT_THROW(kreg::cv_score_local_linear(d, 0.0), std::invalid_argument);
  Dataset empty;
  EXPECT_THROW(kreg::cv_score_local_linear(empty, 0.5), std::invalid_argument);
}

TEST(LocalLinearGridSelector, ScoresMatchDirectCalls) {
  Stream s(42);
  const Dataset d = kreg::data::paper_dgp(120, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 8);
  const auto r = LocalLinearGridSelector().select(d, grid);
  ASSERT_EQ(r.scores.size(), grid.size());
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_DOUBLE_EQ(r.scores[b], kreg::cv_score_local_linear(d, grid[b]));
  }
}

TEST(LocalLinearGridSelector, ParallelMatchesSerial) {
  Stream s(43);
  const Dataset d = kreg::data::sine_dgp(150, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 10);
  const auto serial = LocalLinearGridSelector().select(d, grid);
  const auto parallel =
      LocalLinearGridSelector(KernelType::kEpanechnikov, nullptr, true)
          .select(d, grid);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    EXPECT_DOUBLE_EQ(parallel.scores[b], serial.scores[b]);
  }
}

TEST(LocalLinearGridSelector, PrefersWiderBandwidthThanNwOnSteepTrend) {
  // Local-linear absorbs the first-order trend, so on a steep smooth mean
  // it tolerates (and usually prefers) a bandwidth at least as wide as the
  // local-constant choice.
  Stream s(44);
  const Dataset d = kreg::data::paper_dgp(500, s);
  const BandwidthGrid grid = BandwidthGrid::default_for(d, 60);
  const auto ll = LocalLinearGridSelector().select(d, grid);
  const auto nw = kreg::SortedGridSelector().select(d, grid);
  EXPECT_GE(ll.bandwidth, nw.bandwidth);
  // And its optimal CV is no worse than NW's (it nests the constant fit
  // locally in the noiseless limit; on noisy data this holds loosely).
  EXPECT_LT(ll.cv_score, nw.cv_score * 1.10);
}

}  // namespace
