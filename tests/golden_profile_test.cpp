// Golden-profile suite: Philox-seeded paper-DGP fixtures with hard-coded
// CV / LSCV profiles, evaluated through every sweep backend. The expected
// arrays below were produced by the direct O(n²·k) objectives (cv_score,
// kde_lscv_score) at double precision; every fast backend must reproduce
// them to 1e-12 relative, so any regression in the sweep algebra — sort,
// admission, moment recombination, reductions — fails loudly against a
// fixed number rather than against another live backend that might drift
// in the same direction.
//
// Regenerating (only after an *intentional* numeric change): evaluate the
// direct objective on data::paper_dgp(n, rng::Stream(2024 + n)) over
// BandwidthGrid::default_for(data, k), and kde_lscv_score on
// data::paper_dgp(n, rng::Stream(3024 + n)).x over BandwidthGrid(0.05,
// 1.5, k), printing with %.17g.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <span>
#include <vector>

#include "core/kreg.hpp"
#include "rng/stream.hpp"
#include "spmd/device.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::KernelType;
using kreg::Precision;
using kreg::SweepAlgorithm;
using kreg::data::Dataset;
using kreg::rng::Stream;

constexpr double kTol = 1e-12;

constexpr std::array<double, 5> kCvProfileN50K5 = {
    0.12811355660027299,
    0.57288337523147004,
    1.7727294666345881,
    3.7363677993937086,
    6.1009275885672967,
};

constexpr std::array<double, 50> kCvProfileN50K50 = {
    0.036829919504693914,
    0.058681382314832164,
    0.05221606422057419,
    0.066052735959204772,
    0.073308295787104127,
    0.088534842885994725,
    0.10450498296119508,
    0.11131667860356105,
    0.11989632143400554,
    0.1281135566002731,
    0.14605015767175636,
    0.17204413208375935,
    0.19847413530019609,
    0.2332970125207047,
    0.27034175257596899,
    0.3094192528206402,
    0.35766971158365679,
    0.41652926815654395,
    0.48879386002276776,
    0.57288337523147004,
    0.6608362235705405,
    0.76056279261197579,
    0.86968028300659772,
    0.98065727918147905,
    1.1042822860090202,
    1.2266349948751205,
    1.3532711711664347,
    1.4888704487290711,
    1.629780873952744,
    1.7727294666345881,
    1.9226814577533953,
    2.0733798556146672,
    2.2334526986022096,
    2.4034816424364256,
    2.5809944406889782,
    2.78330828459627,
    3.0049425787751161,
    3.2392977836318555,
    3.4836841206721827,
    3.7363677993937068,
    3.9821478355663156,
    4.2236518482629775,
    4.4638209342334392,
    4.7105769592919486,
    4.9548596458530492,
    5.1945123257312265,
    5.4301953217018539,
    5.6622183732003126,
    5.8851554214386121,
    6.1009275885672967,
};

constexpr std::array<double, 5> kCvProfileN200K5 = {
    0.14101960294231433,
    0.79032966838745766,
    2.031056950123427,
    4.0211744841681352,
    5.9688853695039601,
};

constexpr std::array<double, 50> kCvProfileN200K50 = {
    0.031242443611751526,
    0.028704426674216233,
    0.030808154326976648,
    0.03201016750587321,
    0.035983874871799243,
    0.043397169491767633,
    0.057465013809982993,
    0.077540552712954694,
    0.10512919368200795,
    0.14101960294231439,
    0.18080586967417972,
    0.22417756670065142,
    0.27168608776423225,
    0.32846170387146906,
    0.39461720285042778,
    0.46408345600265571,
    0.53558346286959546,
    0.61260585985196703,
    0.69798609441822368,
    0.79032966838745766,
    0.88501886343033132,
    0.9813199907624357,
    1.0853499697394176,
    1.1974469118207829,
    1.314807285023615,
    1.4388615093253154,
    1.5714647842961103,
    1.7146433956793965,
    1.8677490909000736,
    2.031056950123427,
    2.2049368285400051,
    2.3865137116947324,
    2.5742033208032642,
    2.7689486090878521,
    2.9708057522538018,
    3.1762931405908863,
    3.3838207423665647,
    3.5927744258055787,
    3.8041768313042974,
    4.0211744841681352,
    4.2414150183646662,
    4.4605035513915574,
    4.6753053419854078,
    4.8836306575550452,
    5.0841401849133865,
    5.2750774058931746,
    5.4587020419093202,
    5.6364764886677881,
    5.8070139689977784,
    5.9688853695039601,
};

constexpr std::array<double, 5> kLscvProfileN50K5 = {
    -0.65588666836174081,
    -0.87054012601292452,
    -0.80233585082245451,
    -0.68189137025373014,
    -0.55455191717999108,
};

constexpr std::array<double, 50> kLscvProfileN200K50 = {
    -0.87785503531816889,
    -0.90634434779885409,
    -0.91709103264795144,
    -0.92341962896573804,
    -0.92153191982398164,
    -0.91279087492002497,
    -0.90783155496180112,
    -0.90189926467017234,
    -0.89435912030696685,
    -0.88792988866446798,
    -0.88268831036332618,
    -0.87846526760614863,
    -0.87382237853065192,
    -0.87047803240326427,
    -0.86749258769223914,
    -0.86409471020470852,
    -0.86012308455420172,
    -0.85538460240664305,
    -0.85003262262616852,
    -0.84366565914883607,
    -0.83682618422735389,
    -0.82954050297562676,
    -0.82185608969492963,
    -0.81381156394389786,
    -0.80554469581094124,
    -0.79716261863690085,
    -0.7884645973097526,
    -0.77953842469652213,
    -0.77044022064219164,
    -0.76115298711872859,
    -0.75160957000450768,
    -0.74171528024421285,
    -0.73148388116466823,
    -0.72083300340217127,
    -0.70986511297855126,
    -0.69870870942883001,
    -0.687464783803024,
    -0.6762125473357713,
    -0.66501390966494578,
    -0.6539169969943508,
    -0.6429589287872518,
    -0.63216801861567795,
    -0.62156552544603016,
    -0.61116705221703427,
    -0.60098366641319267,
    -0.59102280056011791,
    -0.58128897778474342,
    -0.57178439779014623,
    -0.56250941105201524,
    -0.55346290320435187,
};

Dataset regression_fixture(std::size_t n) {
  Stream s(2024 + n);
  return kreg::data::paper_dgp(n, s);
}

std::vector<double> kde_fixture(std::size_t n) {
  Stream s(3024 + n);
  return kreg::data::paper_dgp(n, s).x;
}

void expect_profile(std::span<const double> actual,
                    std::span<const double> expected, const char* backend) {
  ASSERT_EQ(actual.size(), expected.size()) << backend;
  for (std::size_t b = 0; b < expected.size(); ++b) {
    EXPECT_NEAR(actual[b], expected[b],
                kTol * std::max(1.0, std::abs(expected[b])))
        << backend << " b=" << b;
  }
}

struct RegressionFixture {
  std::size_t n;
  std::size_t k;
  std::span<const double> expected;
};

const std::array<RegressionFixture, 4> kRegressionFixtures = {{
    {50, 5, kCvProfileN50K5},
    {50, 50, kCvProfileN50K50},
    {200, 5, kCvProfileN200K5},
    {200, 50, kCvProfileN200K50},
}};

class GoldenRegression
    : public ::testing::TestWithParam<std::size_t /*fixture index*/> {};

TEST_P(GoldenRegression, EveryBackendReproducesTheGoldenCvProfile) {
  const RegressionFixture& fx = kRegressionFixtures[GetParam()];
  const Dataset data = regression_fixture(fx.n);
  const BandwidthGrid grid = BandwidthGrid::default_for(data, fx.k);

  // Direct objective (the generator of the golden values).
  std::vector<double> direct(fx.k);
  for (std::size_t b = 0; b < fx.k; ++b) {
    direct[b] = kreg::cv_score(data, grid[b]);
  }
  expect_profile(direct, fx.expected, "direct");

  // Host backends.
  expect_profile(kreg::NaiveGridSelector().select(data, grid).scores,
                 fx.expected, "naive");
  expect_profile(kreg::SortedGridSelector().select(data, grid).scores,
                 fx.expected, "per-row-sort");
  expect_profile(kreg::ParallelSortedGridSelector().select(data, grid).scores,
                 fx.expected, "parallel-per-row-sort");
  expect_profile(kreg::WindowSweepSelector().select(data, grid).scores,
                 fx.expected, "window");
  expect_profile(
      kreg::window_cv_profile_parallel(data, grid.values(),
                                       KernelType::kEpanechnikov),
      fx.expected, "window-parallel");

  // Device backends (double precision; float cannot hold 1e-12).
  kreg::spmd::Device dev;
  kreg::SpmdSelectorConfig per_row;
  per_row.precision = Precision::kDouble;
  per_row.algorithm = SweepAlgorithm::kPerRowSort;
  expect_profile(kreg::SpmdGridSelector(dev, per_row).select(data, grid).scores,
                 fx.expected, "spmd-per-row");
  kreg::SpmdSelectorConfig window_cfg;
  window_cfg.precision = Precision::kDouble;
  expect_profile(
      kreg::SpmdGridSelector(dev, window_cfg).select(data, grid).scores,
      fx.expected, "spmd-window");
  // The streamed 2-D (n-block × k-block) plan must reproduce the same
  // golden profile: block sizes deliberately misaligned with n and k.
  kreg::SpmdSelectorConfig tiled_cfg;
  tiled_cfg.precision = Precision::kDouble;
  tiled_cfg.stream.n_block = 7;
  tiled_cfg.stream.k_block = 3;
  expect_profile(
      kreg::SpmdGridSelector(dev, tiled_cfg).select(data, grid).scores,
      fx.expected, "spmd-window-2d-streamed");
  expect_profile(
      kreg::window_cv_profile_tiled(data, grid.values(),
                                    KernelType::kEpanechnikov,
                                    Precision::kDouble, kreg::HostTiling{7, 3}),
      fx.expected, "host-tiled");

  // The 1-D ray sweep is the same objective with ratios = {1}.
  const kreg::data::MDataset multi = kreg::data::to_multivariate(data);
  const std::vector<double> unit_ratio = {1.0};
  expect_profile(
      kreg::multi_ray_cv_profile(multi, unit_ratio, grid.values(),
                                 KernelType::kEpanechnikov),
      fx.expected, "ray-per-row");
  expect_profile(
      kreg::multi_ray_cv_profile_window(multi, unit_ratio, grid.values(),
                                        KernelType::kEpanechnikov),
      fx.expected, "ray-window");
}

INSTANTIATE_TEST_SUITE_P(Fixtures, GoldenRegression,
                         ::testing::Range<std::size_t>(0, 4),
                         [](const auto& info) {
                           const auto& fx = kRegressionFixtures[info.param];
                           return "n" + std::to_string(fx.n) + "k" +
                                  std::to_string(fx.k);
                         });

struct KdeFixture {
  std::size_t n;
  std::size_t k;
  std::span<const double> expected;
};

const std::array<KdeFixture, 2> kKdeFixtures = {{
    {50, 5, kLscvProfileN50K5},
    {200, 50, kLscvProfileN200K50},
}};

class GoldenKde
    : public ::testing::TestWithParam<std::size_t /*fixture index*/> {};

TEST_P(GoldenKde, EveryBackendReproducesTheGoldenLscvProfile) {
  const KdeFixture& fx = kKdeFixtures[GetParam()];
  const std::vector<double> xs = kde_fixture(fx.n);
  const BandwidthGrid grid(0.05, 1.5, fx.k);

  std::vector<double> direct(fx.k);
  for (std::size_t b = 0; b < fx.k; ++b) {
    direct[b] = kreg::kde_lscv_score(xs, grid[b]);
  }
  expect_profile(direct, fx.expected, "direct");

  expect_profile(
      kreg::kde_sweep_lscv_profile(xs, grid.values(),
                                   KernelType::kEpanechnikov),
      fx.expected, "kde-per-row-sort");
  expect_profile(
      kreg::kde_window_lscv_profile(xs, grid.values(),
                                    KernelType::kEpanechnikov),
      fx.expected, "kde-window");
  expect_profile(
      kreg::kde_window_lscv_profile_parallel(xs, grid.values(),
                                             KernelType::kEpanechnikov),
      fx.expected, "kde-window-parallel");

  kreg::spmd::Device dev;
  kreg::SpmdKdeConfig per_row;
  per_row.algorithm = SweepAlgorithm::kPerRowSort;
  expect_profile(kreg::SpmdKdeSelector(dev, per_row).select(xs, grid).scores,
                 fx.expected, "spmd-kde-per-row");
  expect_profile(kreg::SpmdKdeSelector(dev).select(xs, grid).scores,
                 fx.expected, "spmd-kde-window");
  kreg::SpmdKdeConfig tiled;
  tiled.stream.n_block = 7;
  tiled.stream.k_block = 3;
  expect_profile(kreg::SpmdKdeSelector(dev, tiled).select(xs, grid).scores,
                 fx.expected, "spmd-kde-2d-streamed");
}

INSTANTIATE_TEST_SUITE_P(Fixtures, GoldenKde,
                         ::testing::Range<std::size_t>(0, 2),
                         [](const auto& info) {
                           const auto& fx = kKdeFixtures[info.param];
                           return "n" + std::to_string(fx.n) + "k" +
                                  std::to_string(fx.k);
                         });

}  // namespace
