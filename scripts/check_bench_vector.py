#!/usr/bin/env python3
"""Perf smoke over BENCH_vector.json: batched must beat scalar.

Fails (exit 1) if, at n = 10^5, the best batched Epanechnikov cell's
elements/s falls below the scalar tiled sweep's — the regression this
guards is the lane-batched gather kernels losing their vector margin
(e.g. the σ ordering or the contiguous-run fast path silently breaking).
Timing noise is absorbed by taking the *best* batched cell across lane
widths and σ policies, so only a wholesale loss trips it.

Usage: check_bench_vector.py [BENCH_vector.json]
"""
import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_vector.json"
    with open(path) as f:
        cells = json.load(f)["cells"]

    n = 100_000
    kernel = "epanechnikov"
    scalar = [
        c for c in cells
        if c["n"] == n and c["kernel"] == kernel and c["lane_width"] == 0
    ]
    batched = [
        c for c in cells
        if c["n"] == n and c["kernel"] == kernel and c["lane_width"] != 0
    ]
    if not scalar or not batched:
        print(f"{path}: no n={n} {kernel} cells (scalar={len(scalar)}, "
              f"batched={len(batched)})")
        return 1

    scalar_eps = scalar[0]["elements_per_s"]
    best = max(batched, key=lambda c: c["elements_per_s"])
    best_eps = best["elements_per_s"]
    ratio = best_eps / scalar_eps
    print(f"scalar {kernel} n={n}: {scalar_eps:.3e} elem/s")
    print(f"best batched: C={best['lane_width']} "
          f"sigma={best['sigma_policy']} {best_eps:.3e} elem/s "
          f"({ratio:.2f}x, contig_rate={best['contig_rate']:.2f})")
    if best_eps < scalar_eps:
        print("FAIL: batched Epanechnikov is slower than the scalar tiled "
              "sweep")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
