#!/usr/bin/env sh
# Lint: no FMA contraction hazards under src/core/.
#
# The whole test suite pins BITWISE parity between backends of one sweep
# (resident vs streamed vs batched vs scalar), and the build enforces it
# with -ffp-contract=off (DESIGN.md §12): FMA contraction is chosen per
# call site under -ffp-contract=fast, so two inline expansions of the same
# kernel body could round differently. That guarantee dies silently if
# core code reintroduces contraction by hand — an explicit std::fma, a
# local `#pragma STDC FP_CONTRACT`, or a per-target -ffp-contract=fast —
# so this script fails CI when any of those appear under src/core/.
#
# Usage: scripts/check_fp_contract.sh [repo-root]
set -eu

root="${1:-.}"
core="$root/src/core"
if [ ! -d "$core" ]; then
  echo "check_fp_contract: '$core' is not a directory" >&2
  exit 2
fi

status=0
# \b keeps std::fmax/fmaf out; comment-only mentions (lines starting with
# // or *) are allowed — the guard macro KREG_FP_CONTRACT_OFF documents
# the policy and must not trip the lint that enforces it.
for pattern in 'std::fma\b' '#[[:space:]]*pragma[[:space:]]+STDC[[:space:]]+FP_CONTRACT' \
               '\-ffp-contract=fast'; do
  # -r over the tree; -n so a finding is actionable; -I skips binaries.
  if matches=$(grep -rnIE -- "$pattern" "$core" 2>/dev/null |
               grep -vE '^[^:]*:[0-9]+:[[:space:]]*(//|\*)'); then
    echo "check_fp_contract: forbidden pattern '$pattern' under src/core/:" >&2
    echo "$matches" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_fp_contract: OK — src/core/ is contraction-free"
fi
exit "$status"
