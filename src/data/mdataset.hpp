#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "rng/stream.hpp"

namespace kreg::data {

/// A multivariate regression sample: n observations of a p-dimensional
/// regressor (row-major storage) and a scalar response. Substrate for the
/// multivariate bandwidth selection the paper's §III alludes to ("an
/// evenly-spaced grid or matrix in multivariate contexts").
struct MDataset {
  std::vector<double> x;  ///< row-major, n × dim
  std::vector<double> y;  ///< length n
  std::size_t dim = 0;

  std::size_t size() const noexcept {
    return dim == 0 ? 0 : x.size() / dim;
  }

  /// Observation i's regressor row.
  std::span<const double> row(std::size_t i) const noexcept {
    return {x.data() + i * dim, dim};
  }

  /// max − min of regressor j; requires a non-empty sample.
  double domain(std::size_t j) const;

  /// Throws std::invalid_argument on shape mismatch or non-finite values.
  void validate() const;
};

/// Additive multivariate test DGP on [0,1]^dim:
///   Y = Σ_j m_j(X_j) + N(0, noise_sd),
/// with m_0(x) = sin(2πx), m_1(x) = 10x², m_2(x) = |2x − 1|, and further
/// components linear. True mean exposed for oracle checks.
MDataset multivariate_dgp(std::size_t n, std::size_t dim, rng::Stream& stream,
                          double noise_sd = 0.2);
double multivariate_dgp_mean(std::span<const double> x);

/// Flattens a univariate Dataset into a 1-D MDataset (adapter used by tests
/// to confirm the multivariate code collapses to the univariate one).
struct Dataset;
MDataset to_multivariate(const Dataset& data);

}  // namespace kreg::data
