#include "data/dataset.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace kreg::data {

double Dataset::x_domain() const {
  if (x.empty()) {
    throw std::invalid_argument("Dataset::x_domain: empty sample");
  }
  return stats::range(x);
}

void Dataset::validate() const {
  if (x.size() != y.size()) {
    throw std::invalid_argument(
        "Dataset::validate: x and y lengths differ (" +
        std::to_string(x.size()) + " vs " + std::to_string(y.size()) + ")");
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!std::isfinite(x[i])) {
      throw std::invalid_argument("Dataset::validate: x[" +
                                  std::to_string(i) + "] is not finite");
    }
    if (!std::isfinite(y[i])) {
      throw std::invalid_argument("Dataset::validate: y[" +
                                  std::to_string(i) + "] is not finite");
    }
  }
}

Split split_at(const Dataset& full, std::size_t train_count) {
  if (train_count > full.size()) {
    throw std::invalid_argument("split_at: train_count exceeds sample size");
  }
  Split out;
  out.train.x.assign(full.x.begin(), full.x.begin() + train_count);
  out.train.y.assign(full.y.begin(), full.y.begin() + train_count);
  out.test.x.assign(full.x.begin() + train_count, full.x.end());
  out.test.y.assign(full.y.begin() + train_count, full.y.end());
  return out;
}

Dataset permute(const Dataset& full, std::span<const std::size_t> perm) {
  assert(perm.size() == full.size());
  Dataset out;
  out.x.reserve(perm.size());
  out.y.reserve(perm.size());
  for (std::size_t idx : perm) {
    out.x.push_back(full.x[idx]);
    out.y.push_back(full.y[idx]);
  }
  return out;
}

}  // namespace kreg::data
