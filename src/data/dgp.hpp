#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "rng/stream.hpp"

namespace kreg::data {

/// The paper's data generating process (§IV): X ~ U(0,1),
/// Y = 0.5 X + 10 X² + u with u ~ U(0, 0.5). The conditional mean is
/// E[Y|X=x] = 0.5x + 10x² + 0.25.
Dataset paper_dgp(std::size_t n, rng::Stream& stream);

/// True conditional mean of the paper DGP, for oracle comparisons in tests
/// and examples.
double paper_dgp_mean(double x);

/// Smooth sine curve with Gaussian noise:
/// Y = sin(4πX) + N(0, sd), X ~ U(0,1). Multimodal CV surfaces arise here,
/// exercising the paper's claim that numerical optimizers can miss the
/// global minimum.
Dataset sine_dgp(std::size_t n, rng::Stream& stream, double noise_sd = 0.3);
double sine_dgp_mean(double x);

/// Donoho–Johnstone "doppler" signal: smoothness varies sharply with x, a
/// classic stress test for global-bandwidth methods.
Dataset doppler_dgp(std::size_t n, rng::Stream& stream, double noise_sd = 0.1);
double doppler_dgp_mean(double x);

/// Piecewise-constant step function: discontinuous mean, where small
/// bandwidths win.
Dataset step_dgp(std::size_t n, rng::Stream& stream, double noise_sd = 0.2);
double step_dgp_mean(double x);

/// Continuous but nondifferentiable "kink" mean — a tent at x = 0.5:
/// m(x) = 2 − 6|x − 0.5|, Y = m(X) + N(0, sd), X ~ U(0,1). The textbook
/// nonsmooth target for one-sided CV: ordinary LOOCV's selected bandwidth
/// is dragged down by the kink, while OSCV degrades more gracefully
/// (Hart & Yi's motivating case).
Dataset kink_dgp(std::size_t n, rng::Stream& stream, double noise_sd = 0.3);
double kink_dgp_mean(double x);

/// Heteroskedastic variant of the paper DGP: noise sd grows linearly in x.
Dataset heteroskedastic_dgp(std::size_t n, rng::Stream& stream,
                            double base_sd = 0.05, double slope_sd = 0.5);
double heteroskedastic_dgp_mean(double x);

/// Named registry of all DGPs (used by parameterized tests and example
/// sweeps): each entry generates a dataset and reports the true mean.
struct NamedDgp {
  std::string name;
  std::function<Dataset(std::size_t, rng::Stream&)> generate;
  std::function<double(double)> true_mean;
};
const std::vector<NamedDgp>& all_dgps();

}  // namespace kreg::data
