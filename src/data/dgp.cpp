#include "data/dgp.hpp"

#include <cmath>
#include <numbers>

namespace kreg::data {

Dataset paper_dgp(std::size_t n, rng::Stream& stream) {
  Dataset d;
  d.x.reserve(n);
  d.y.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = stream.uniform();
    const double u = stream.uniform(0.0, 0.5);
    d.x.push_back(x);
    d.y.push_back(0.5 * x + 10.0 * x * x + u);
  }
  return d;
}

double paper_dgp_mean(double x) {
  // E[u] = 0.25 for u ~ U(0, 0.5).
  return 0.5 * x + 10.0 * x * x + 0.25;
}

Dataset sine_dgp(std::size_t n, rng::Stream& stream, double noise_sd) {
  Dataset d;
  d.x.reserve(n);
  d.y.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = stream.uniform();
    d.x.push_back(x);
    d.y.push_back(sine_dgp_mean(x) + stream.gaussian(0.0, noise_sd));
  }
  return d;
}

double sine_dgp_mean(double x) {
  return std::sin(4.0 * std::numbers::pi * x);
}

Dataset doppler_dgp(std::size_t n, rng::Stream& stream, double noise_sd) {
  Dataset d;
  d.x.reserve(n);
  d.y.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = stream.uniform();
    d.x.push_back(x);
    d.y.push_back(doppler_dgp_mean(x) + stream.gaussian(0.0, noise_sd));
  }
  return d;
}

double doppler_dgp_mean(double x) {
  const double eps = 0.05;
  return std::sqrt(x * (1.0 - x)) *
         std::sin(2.0 * std::numbers::pi * (1.0 + eps) / (x + eps));
}

Dataset step_dgp(std::size_t n, rng::Stream& stream, double noise_sd) {
  Dataset d;
  d.x.reserve(n);
  d.y.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = stream.uniform();
    d.x.push_back(x);
    d.y.push_back(step_dgp_mean(x) + stream.gaussian(0.0, noise_sd));
  }
  return d;
}

double step_dgp_mean(double x) {
  if (x < 0.25) return 0.0;
  if (x < 0.5) return 1.0;
  if (x < 0.75) return -0.5;
  return 0.75;
}

Dataset kink_dgp(std::size_t n, rng::Stream& stream, double noise_sd) {
  Dataset d;
  d.x.reserve(n);
  d.y.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = stream.uniform();
    d.x.push_back(x);
    d.y.push_back(kink_dgp_mean(x) + stream.gaussian(0.0, noise_sd));
  }
  return d;
}

double kink_dgp_mean(double x) { return 2.0 - 6.0 * std::abs(x - 0.5); }

Dataset heteroskedastic_dgp(std::size_t n, rng::Stream& stream, double base_sd,
                            double slope_sd) {
  Dataset d;
  d.x.reserve(n);
  d.y.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = stream.uniform();
    const double sd = base_sd + slope_sd * x;
    d.x.push_back(x);
    d.y.push_back(heteroskedastic_dgp_mean(x) + stream.gaussian(0.0, sd));
  }
  return d;
}

double heteroskedastic_dgp_mean(double x) { return 0.5 * x + 10.0 * x * x; }

const std::vector<NamedDgp>& all_dgps() {
  static const std::vector<NamedDgp> registry = {
      {"paper",
       [](std::size_t n, rng::Stream& s) { return paper_dgp(n, s); },
       paper_dgp_mean},
      {"sine",
       [](std::size_t n, rng::Stream& s) { return sine_dgp(n, s); },
       sine_dgp_mean},
      {"doppler",
       [](std::size_t n, rng::Stream& s) { return doppler_dgp(n, s); },
       doppler_dgp_mean},
      {"step",
       [](std::size_t n, rng::Stream& s) { return step_dgp(n, s); },
       step_dgp_mean},
      {"heteroskedastic",
       [](std::size_t n, rng::Stream& s) { return heteroskedastic_dgp(n, s); },
       heteroskedastic_dgp_mean},
      // Appended after the original five: parameterized suites address the
      // registry by index, so new DGPs keep existing indices stable.
      {"kink",
       [](std::size_t n, rng::Stream& s) { return kink_dgp(n, s); },
       kink_dgp_mean},
  };
  return registry;
}

}  // namespace kreg::data
