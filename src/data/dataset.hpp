#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace kreg::data {

/// A bivariate regression sample: n paired observations (X_i, Y_i).
///
/// This is the input type of every bandwidth selector and estimator in
/// `src/core/`. Invariant (checked by `validate()`): x and y have equal
/// length and contain only finite values.
struct Dataset {
  std::vector<double> x;
  std::vector<double> y;

  std::size_t size() const noexcept { return x.size(); }
  bool empty() const noexcept { return x.empty(); }

  std::span<const double> xs() const noexcept { return x; }
  std::span<const double> ys() const noexcept { return y; }

  /// max(X) - min(X): the paper's default maximum candidate bandwidth.
  /// Requires a non-empty sample.
  double x_domain() const;

  /// Throws std::invalid_argument when the invariant is violated; the
  /// message names the first offending index.
  void validate() const;
};

/// Splits a dataset into train/test parts: the first `train_count`
/// observations go to train, the rest to test (shuffle beforehand for a
/// random split). Requires train_count <= size().
struct Split {
  Dataset train;
  Dataset test;
};
Split split_at(const Dataset& full, std::size_t train_count);

/// Applies one permutation to both columns.
Dataset permute(const Dataset& full, std::span<const std::size_t> perm);

}  // namespace kreg::data
