#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace kreg::data {

/// Writes a dataset as two-column CSV with an "x,y" header.
void write_csv(std::ostream& out, const Dataset& dataset);
void write_csv_file(const std::string& path, const Dataset& dataset);

/// Reads a two-column CSV. A first line that fails to parse as two numbers
/// is treated as a header and skipped; afterwards every line must contain
/// exactly two comma-separated numeric fields (blank lines are ignored).
/// Throws std::runtime_error on malformed input, naming the line number.
Dataset read_csv(std::istream& in);
Dataset read_csv_file(const std::string& path);

}  // namespace kreg::data
