#include "data/csv.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace kreg::data {

namespace {

/// Parses "a,b" into two doubles; returns false on any malformed field.
bool parse_line(std::string_view line, double& a, double& b) {
  const std::size_t comma = line.find(',');
  if (comma == std::string_view::npos) {
    return false;
  }
  const std::string_view first = line.substr(0, comma);
  std::string_view second = line.substr(comma + 1);
  // Tolerate a trailing carriage return from CRLF files.
  if (!second.empty() && second.back() == '\r') {
    second.remove_suffix(1);
  }
  const auto ra = std::from_chars(first.data(), first.data() + first.size(), a);
  if (ra.ec != std::errc{} || ra.ptr != first.data() + first.size()) {
    return false;
  }
  const auto rb =
      std::from_chars(second.data(), second.data() + second.size(), b);
  return rb.ec == std::errc{} && rb.ptr == second.data() + second.size();
}

}  // namespace

void write_csv(std::ostream& out, const Dataset& dataset) {
  out << "x,y\n";
  out.precision(17);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    out << dataset.x[i] << ',' << dataset.y[i] << '\n';
  }
}

void write_csv_file(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_csv_file: cannot open " + path);
  }
  write_csv(out, dataset);
}

Dataset read_csv(std::istream& in) {
  Dataset d;
  std::string line;
  std::size_t line_no = 0;
  bool first_content_line = true;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") {
      continue;
    }
    double x = 0.0;
    double y = 0.0;
    if (!parse_line(line, x, y)) {
      if (first_content_line) {
        first_content_line = false;  // header row
        continue;
      }
      throw std::runtime_error("read_csv: malformed line " +
                               std::to_string(line_no) + ": '" + line + "'");
    }
    first_content_line = false;
    d.x.push_back(x);
    d.y.push_back(y);
  }
  return d;
}

Dataset read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_csv_file: cannot open " + path);
  }
  return read_csv(in);
}

}  // namespace kreg::data
