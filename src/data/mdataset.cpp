#include "data/mdataset.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

#include "data/dataset.hpp"

namespace kreg::data {

double MDataset::domain(std::size_t j) const {
  if (size() == 0 || j >= dim) {
    throw std::invalid_argument("MDataset::domain: empty sample or bad axis");
  }
  double lo = x[j];
  double hi = x[j];
  for (std::size_t i = 1; i < size(); ++i) {
    const double v = x[i * dim + j];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return hi - lo;
}

void MDataset::validate() const {
  if (dim == 0) {
    throw std::invalid_argument("MDataset::validate: dim == 0");
  }
  if (x.size() % dim != 0) {
    throw std::invalid_argument(
        "MDataset::validate: x length not a multiple of dim");
  }
  if (x.size() / dim != y.size()) {
    throw std::invalid_argument("MDataset::validate: x rows (" +
                                std::to_string(x.size() / dim) +
                                ") != y length (" + std::to_string(y.size()) +
                                ")");
  }
  for (double v : x) {
    if (!std::isfinite(v)) {
      throw std::invalid_argument("MDataset::validate: non-finite x value");
    }
  }
  for (double v : y) {
    if (!std::isfinite(v)) {
      throw std::invalid_argument("MDataset::validate: non-finite y value");
    }
  }
}

double multivariate_dgp_mean(std::span<const double> x) {
  double acc = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    switch (j) {
      case 0:
        acc += std::sin(2.0 * std::numbers::pi * x[j]);
        break;
      case 1:
        acc += 10.0 * x[j] * x[j];
        break;
      case 2:
        acc += std::abs(2.0 * x[j] - 1.0);
        break;
      default:
        acc += 0.5 * x[j];
        break;
    }
  }
  return acc;
}

MDataset multivariate_dgp(std::size_t n, std::size_t dim, rng::Stream& stream,
                          double noise_sd) {
  if (dim == 0) {
    throw std::invalid_argument("multivariate_dgp: dim must be >= 1");
  }
  MDataset d;
  d.dim = dim;
  d.x.reserve(n * dim);
  d.y.reserve(n);
  std::vector<double> row(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = stream.uniform();
      d.x.push_back(row[j]);
    }
    d.y.push_back(multivariate_dgp_mean(row) + stream.gaussian(0.0, noise_sd));
  }
  return d;
}

MDataset to_multivariate(const Dataset& data) {
  MDataset m;
  m.dim = 1;
  m.x = data.x;
  m.y = data.y;
  return m;
}

}  // namespace kreg::data
