#pragma once

#include <cassert>
#include <cmath>
#include <span>

#include "stats/welford.hpp"

namespace kreg::stats {

/// Mean squared error between predictions and truth.
/// Requires equal, nonzero lengths.
inline double mse(std::span<const double> predicted,
                  std::span<const double> truth) {
  assert(predicted.size() == truth.size() && !predicted.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double e = predicted[i] - truth[i];
    acc += e * e;
  }
  return acc / static_cast<double>(predicted.size());
}

/// Mean absolute error.
inline double mae(std::span<const double> predicted,
                  std::span<const double> truth) {
  assert(predicted.size() == truth.size() && !predicted.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    acc += std::abs(predicted[i] - truth[i]);
  }
  return acc / static_cast<double>(predicted.size());
}

/// Coefficient of determination R² = 1 - SSE/SST. Returns 0 when the truth
/// is constant (SST == 0).
inline double r_squared(std::span<const double> predicted,
                        std::span<const double> truth) {
  assert(predicted.size() == truth.size() && !predicted.empty());
  Welford acc;
  for (double y : truth) {
    acc.add(y);
  }
  const double sst =
      acc.variance_population() * static_cast<double>(truth.size());
  if (sst == 0.0) {
    return 0.0;
  }
  double sse = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double e = truth[i] - predicted[i];
    sse += e * e;
  }
  return 1.0 - sse / sst;
}

}  // namespace kreg::stats
