#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace kreg::stats {

/// Arithmetic mean; 0 for an empty range.
double mean(std::span<const double> xs);

/// Sample variance (n-1 denominator); 0 when fewer than two values.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Minimum value; requires a non-empty range.
double min(std::span<const double> xs);

/// Maximum value; requires a non-empty range.
double max(std::span<const double> xs);

/// max - min; requires a non-empty range. This is the "domain" the paper
/// uses as the default largest candidate bandwidth.
double range(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]; requires a non-empty range.
/// Sorts a scratch copy (O(n log n)).
double quantile(std::span<const double> xs, double q);

/// Median (quantile 0.5).
double median(std::span<const double> xs);

/// Interquartile range (q75 - q25), used by the Silverman rule of thumb.
double iqr(std::span<const double> xs);

/// Summary of a sample in one pass over the data (plus one sort for the
/// quantiles).
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

}  // namespace kreg::stats
