#include "stats/descriptive.hpp"

#include <cassert>
#include <cmath>

#include "sort/introsort.hpp"
#include "stats/welford.hpp"

namespace kreg::stats {

double mean(std::span<const double> xs) {
  Welford acc;
  for (double x : xs) {
    acc.add(x);
  }
  return acc.mean();
}

double variance(std::span<const double> xs) {
  Welford acc;
  for (double x : xs) {
    acc.add(x);
  }
  return acc.variance_sample();
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  assert(!xs.empty());
  double result = xs[0];
  for (double x : xs) {
    if (x < result) {
      result = x;
    }
  }
  return result;
}

double max(std::span<const double> xs) {
  assert(!xs.empty());
  double result = xs[0];
  for (double x : xs) {
    if (x > result) {
      result = x;
    }
  }
  return result;
}

double range(std::span<const double> xs) { return max(xs) - min(xs); }

namespace {

/// Quantile of an already-sorted range, linear interpolation between order
/// statistics (type-7 in the R taxonomy, R's default).
double sorted_quantile(std::span<const double> sorted, double q) {
  assert(!sorted.empty());
  if (q <= 0.0) {
    return sorted.front();
  }
  if (q >= 1.0) {
    return sorted.back();
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) {
    return sorted.back();
  }
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace

double quantile(std::span<const double> xs, double q) {
  assert(!xs.empty());
  std::vector<double> scratch(xs.begin(), xs.end());
  kreg::sort::introsort(std::span<double>(scratch));
  return sorted_quantile(scratch, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double iqr(std::span<const double> xs) {
  assert(!xs.empty());
  std::vector<double> scratch(xs.begin(), xs.end());
  kreg::sort::introsort(std::span<double>(scratch));
  return sorted_quantile(scratch, 0.75) - sorted_quantile(scratch, 0.25);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) {
    return s;
  }
  Welford acc;
  for (double x : xs) {
    acc.add(x);
  }
  std::vector<double> scratch(xs.begin(), xs.end());
  kreg::sort::introsort(std::span<double>(scratch));
  s.n = xs.size();
  s.mean = acc.mean();
  s.stddev = acc.stddev_sample();
  s.min = scratch.front();
  s.q25 = sorted_quantile(scratch, 0.25);
  s.median = sorted_quantile(scratch, 0.5);
  s.q75 = sorted_quantile(scratch, 0.75);
  s.max = scratch.back();
  return s;
}

}  // namespace kreg::stats
