#pragma once

#include <span>
#include <vector>

namespace kreg::stats {

/// Result of a least-squares polynomial fit y ≈ Σ_j beta[j] x^j.
struct PolyFit {
  std::vector<double> beta;  ///< coefficients, beta[j] multiplies x^j
  double rss = 0.0;          ///< residual sum of squares
  double r2 = 0.0;           ///< in-sample R²

  /// Evaluates the fitted polynomial at x (Horner form).
  double operator()(double x) const;
};

/// Ordinary least squares for a degree-`degree` polynomial in one regressor,
/// solved via the normal equations with partial-pivot Gaussian elimination.
///
/// This is the parametric baseline the examples contrast with kernel
/// regression (the paper's motivation: economists assume linear/quadratic
/// forms because nonparametrics are expensive). Requires
/// x.size() == y.size() > degree.
PolyFit fit_polynomial(std::span<const double> x, std::span<const double> y,
                       int degree);

/// Simple linear regression y ≈ a + b x (degree-1 convenience wrapper).
PolyFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Solves the square linear system A beta = b in place via Gaussian
/// elimination with partial pivoting. A is row-major n×n. Throws
/// std::runtime_error when the system is singular to working precision.
std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b);

}  // namespace kreg::stats
