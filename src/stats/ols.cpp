#include "stats/ols.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "stats/metrics.hpp"

namespace kreg::stats {

double PolyFit::operator()(double x) const {
  double acc = 0.0;
  for (std::size_t j = beta.size(); j-- > 0;) {
    acc = acc * x + beta[j];
  }
  return acc;
}

std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b) {
  const std::size_t n = b.size();
  assert(a.size() == n * n);

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: bring the largest |entry| in this column to the diagonal.
    std::size_t pivot = col;
    double best = std::abs(a[col * n + col]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double candidate = std::abs(a[row * n + col]);
      if (candidate > best) {
        best = candidate;
        pivot = row;
      }
    }
    if (best < 1e-12) {
      throw std::runtime_error("solve_linear_system: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) {
        std::swap(a[col * n + k], a[pivot * n + k]);
      }
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below the diagonal.
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      if (factor == 0.0) {
        continue;
      }
      for (std::size_t k = col; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n);
  for (std::size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (std::size_t k = row + 1; k < n; ++k) {
      acc -= a[row * n + k] * x[k];
    }
    x[row] = acc / a[row * n + row];
  }
  return x;
}

PolyFit fit_polynomial(std::span<const double> x, std::span<const double> y,
                       int degree) {
  assert(x.size() == y.size());
  assert(degree >= 0);
  const std::size_t n = x.size();
  const std::size_t p = static_cast<std::size_t>(degree) + 1;
  assert(n > static_cast<std::size_t>(degree));

  // Normal equations: (X'X) beta = X'y with X the Vandermonde matrix.
  // Power sums S_m = Σ x^m for m = 0..2*degree fill X'X; T_j = Σ y x^j
  // fills X'y.
  std::vector<double> power_sums(2 * p - 1, 0.0);
  std::vector<double> xty(p, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double xm = 1.0;
    for (std::size_t m = 0; m < power_sums.size(); ++m) {
      power_sums[m] += xm;
      if (m < p) {
        xty[m] += y[i] * xm;
      }
      xm *= x[i];
    }
  }
  std::vector<double> xtx(p * p);
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t c = 0; c < p; ++c) {
      xtx[r * p + c] = power_sums[r + c];
    }
  }

  PolyFit fit;
  fit.beta = solve_linear_system(std::move(xtx), std::move(xty));

  std::vector<double> predicted(n);
  for (std::size_t i = 0; i < n; ++i) {
    predicted[i] = fit(x[i]);
  }
  fit.rss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = y[i] - predicted[i];
    fit.rss += e * e;
  }
  fit.r2 = r_squared(predicted, y);
  return fit;
}

PolyFit fit_linear(std::span<const double> x, std::span<const double> y) {
  return fit_polynomial(x, y, 1);
}

}  // namespace kreg::stats
