#pragma once

#include <cmath>
#include <cstddef>

namespace kreg::stats {

/// Single-pass, numerically stable mean/variance accumulator
/// (Welford 1962). Mergeable (Chan et al.) so parallel workers can each
/// accumulate a private instance and combine.
class Welford {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  /// Merges another accumulator into this one.
  void merge(const Welford& other) noexcept {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
  }

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }

  /// Population variance (divides by n); 0 when empty.
  double variance_population() const noexcept {
    return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
  }

  /// Sample variance (divides by n-1); 0 when n < 2.
  double variance_sample() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  double stddev_sample() const noexcept {
    return std::sqrt(variance_sample());
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace kreg::stats
