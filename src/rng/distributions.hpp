#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace kreg::rng {

/// Maps one 64-bit draw to a double in [0, 1) with 53 random bits.
template <class Engine>
double canonical(Engine& eng) {
  const std::uint64_t bits = static_cast<std::uint64_t>(eng()) &
                             ((std::uint64_t{1} << 53) - 1);
  return static_cast<double>(bits) * 0x1.0p-53;
}

/// Uniform draw on [lo, hi). Requires lo < hi.
template <class Engine>
double uniform_real(Engine& eng, double lo, double hi) {
  return lo + (hi - lo) * canonical(eng);
}

/// Unbiased uniform integer on [0, bound) via Lemire's multiply-shift
/// rejection method. Requires bound > 0.
template <class Engine>
std::uint64_t uniform_index(Engine& eng, std::uint64_t bound) {
  std::uint64_t x = eng();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = eng();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Standard normal draw via the Marsaglia polar method (no trig calls,
/// branch-predictable on average: acceptance rate pi/4).
template <class Engine>
double standard_normal(Engine& eng) {
  for (;;) {
    const double u = 2.0 * canonical(eng) - 1.0;
    const double v = 2.0 * canonical(eng) - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

/// Normal draw with the given mean and standard deviation (sd >= 0).
template <class Engine>
double normal(Engine& eng, double mean, double sd) {
  return mean + sd * standard_normal(eng);
}

/// Exponential draw with the given rate (rate > 0).
template <class Engine>
double exponential(Engine& eng, double rate) {
  // 1 - canonical() is in (0, 1], keeping the log argument nonzero.
  return -std::log(1.0 - canonical(eng)) / rate;
}

}  // namespace kreg::rng
