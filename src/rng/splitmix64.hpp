#pragma once

#include <cstdint>

namespace kreg::rng {

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
///
/// A tiny, fast 64-bit generator whose primary role in this library is
/// seeding: it expands a single 64-bit seed into the larger state vectors
/// required by Xoshiro256++ and Philox without the correlations that naive
/// seed-splatting would introduce. It satisfies the C++ named requirement
/// UniformRandomBitGenerator, so it can also be used directly.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Advances the state and returns the next 64-bit output.
  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

}  // namespace kreg::rng
