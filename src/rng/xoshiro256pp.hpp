#pragma once

#include <array>
#include <cstdint>

namespace kreg::rng {

/// Xoshiro256++ pseudo-random generator (Blackman & Vigna 2018).
///
/// The library's general-purpose engine: 256 bits of state, period 2^256−1,
/// excellent statistical quality, and a `jump()` operation that advances the
/// stream by 2^128 steps — used to hand independent sub-streams to parallel
/// workers without overlap. Satisfies UniformRandomBitGenerator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from a single seed via SplitMix64.
  explicit Xoshiro256pp(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  /// Seeds from an explicit state vector. At least one word must be nonzero;
  /// an all-zero state is silently remapped to a fixed nonzero state.
  explicit Xoshiro256pp(const std::array<std::uint64_t, 4>& state) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Advances the stream by 2^128 outputs. Calling `jump()` k times on
  /// copies of one engine yields k non-overlapping parallel sub-streams.
  void jump() noexcept;

  /// Returns an independent engine: a copy of *this after one jump, leaving
  /// *this itself jumped as well (split-off idiom for worker streams).
  Xoshiro256pp split() noexcept;

  const std::array<std::uint64_t, 4>& state() const noexcept { return s_; }

  friend bool operator==(const Xoshiro256pp& a, const Xoshiro256pp& b) noexcept {
    return a.s_ == b.s_;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_;
};

}  // namespace kreg::rng
