#include "rng/philox.hpp"

namespace kreg::rng {

namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

/// 32x32 -> 64 multiply, returning (hi, lo) words.
inline void mulhilo(std::uint32_t a, std::uint32_t b, std::uint32_t& hi,
                    std::uint32_t& lo) noexcept {
  const std::uint64_t product = std::uint64_t{a} * std::uint64_t{b};
  hi = static_cast<std::uint32_t>(product >> 32);
  lo = static_cast<std::uint32_t>(product);
}

}  // namespace

Philox4x32::Philox4x32(std::uint64_t seed) noexcept
    : key_{static_cast<std::uint32_t>(seed),
           static_cast<std::uint32_t>(seed >> 32)},
      counter_{0, 0, 0, 0} {}

Philox4x32::Philox4x32(key_type key, counter_type counter) noexcept
    : key_(key), counter_(counter) {}

void Philox4x32::round(counter_type& ctr, const key_type& key) noexcept {
  std::uint32_t hi0;
  std::uint32_t lo0;
  std::uint32_t hi1;
  std::uint32_t lo1;
  mulhilo(kPhiloxM0, ctr[0], hi0, lo0);
  mulhilo(kPhiloxM1, ctr[2], hi1, lo1);
  ctr = {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
}

void Philox4x32::bump_key(key_type& key) noexcept {
  key[0] += kWeyl0;
  key[1] += kWeyl1;
}

Philox4x32::counter_type Philox4x32::block(key_type key,
                                           counter_type counter) noexcept {
  // Ten rounds is the recommended Crush-resistant configuration.
  for (int r = 0; r < 9; ++r) {
    round(counter, key);
    bump_key(key);
  }
  round(counter, key);
  return counter;
}

void Philox4x32::refill() noexcept {
  buffer_ = block(key_, counter_);
  buffered_ = 4;
  increment_counter();
}

void Philox4x32::increment_counter() noexcept {
  for (auto& word : counter_) {
    if (++word != 0) {
      break;  // no carry
    }
  }
}

Philox4x32::result_type Philox4x32::operator()() noexcept {
  if (buffered_ == 0) {
    refill();
  }
  return buffer_[4 - buffered_--];
}

void Philox4x32::set_counter(counter_type counter) noexcept {
  counter_ = counter;
  buffered_ = 0;
}

}  // namespace kreg::rng
