#pragma once

#include <array>
#include <cstdint>

namespace kreg::rng {

/// Philox4x32-10 counter-based pseudo-random generator
/// (Salmon, Moraes, Dror & Shaw, SC'11).
///
/// Counter-based generators are the standard choice for SPMD/GPU-style code:
/// output block i is a pure function of (key, counter=i), so every simulated
/// device thread can generate its own stream with no shared state and no
/// sequential dependency — exactly the access pattern used by the SPMD
/// substrate in `src/spmd/`. Satisfies UniformRandomBitGenerator by
/// buffering one 4x32 block at a time.
class Philox4x32 {
 public:
  using result_type = std::uint32_t;
  using counter_type = std::array<std::uint32_t, 4>;
  using key_type = std::array<std::uint32_t, 2>;

  /// Constructs with a 64-bit key (split into the two 32-bit key words) and
  /// a zero counter.
  explicit Philox4x32(std::uint64_t seed = 0) noexcept;

  /// Constructs from an explicit key/counter pair (fully deterministic
  /// random-access positioning).
  Philox4x32(key_type key, counter_type counter) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint32_t{0}; }

  /// Returns the next 32-bit output, generating a new block every 4 calls.
  result_type operator()() noexcept;

  /// Pure function: the 4x32 output block for (key, counter). This is the
  /// stateless entry point used by device threads.
  static counter_type block(key_type key, counter_type counter) noexcept;

  /// Positions the generator at an arbitrary 128-bit counter value.
  void set_counter(counter_type counter) noexcept;

  const counter_type& counter() const noexcept { return counter_; }
  const key_type& key() const noexcept { return key_; }

 private:
  static void round(counter_type& ctr, const key_type& key) noexcept;
  static void bump_key(key_type& key) noexcept;
  void refill() noexcept;
  void increment_counter() noexcept;

  key_type key_;
  counter_type counter_;
  counter_type buffer_{};
  int buffered_ = 0;  // outputs remaining in buffer_
};

}  // namespace kreg::rng
