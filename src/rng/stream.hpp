#pragma once

#include <cstdint>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro256pp.hpp"

namespace kreg::rng {

/// A seeded random stream bundling an engine with the distribution helpers.
///
/// This is the front door most of the library uses: data generators take a
/// `Stream&`, tests construct one from a fixed seed, and parallel code calls
/// `substream(i)` to obtain the i-th non-overlapping worker stream.
class Stream {
 public:
  explicit Stream(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}
  explicit Stream(Xoshiro256pp engine) : engine_(engine) {}

  /// Raw 64 random bits.
  std::uint64_t bits() { return engine_(); }

  /// Uniform double in [0, 1).
  double uniform() { return canonical(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return uniform_real(engine_, lo, hi);
  }

  /// Unbiased uniform integer in [0, bound).
  std::uint64_t index(std::uint64_t bound) {
    return uniform_index(engine_, bound);
  }

  /// Standard normal draw.
  double gaussian() { return standard_normal(engine_); }

  /// Normal draw with mean/sd.
  double gaussian(double mean, double sd) { return normal(engine_, mean, sd); }

  /// Exponential draw with the given rate.
  double exp(double rate) { return exponential(engine_, rate); }

  /// Vector of n uniform draws on [lo, hi).
  std::vector<double> uniforms(std::size_t n, double lo = 0.0, double hi = 1.0);

  /// The i-th independent substream: the engine jumped i+1 times, giving
  /// 2^128 outputs of separation between workers.
  Stream substream(std::size_t i) const;

  /// In-place Fisher–Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      using std::swap;
      swap(values[i - 1], values[index(i)]);
    }
  }

  Xoshiro256pp& engine() { return engine_; }

 private:
  Xoshiro256pp engine_;
};

}  // namespace kreg::rng
