#include "rng/stream.hpp"

namespace kreg::rng {

std::vector<double> Stream::uniforms(std::size_t n, double lo, double hi) {
  std::vector<double> out(n);
  for (auto& value : out) {
    value = uniform(lo, hi);
  }
  return out;
}

Stream Stream::substream(std::size_t i) const {
  Xoshiro256pp child = engine_;
  for (std::size_t j = 0; j <= i; ++j) {
    child.jump();
  }
  return Stream(child);
}

}  // namespace kreg::rng
