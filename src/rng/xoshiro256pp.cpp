#include "rng/xoshiro256pp.hpp"

#include "rng/splitmix64.hpp"

namespace kreg::rng {

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) {
    word = sm();
  }
}

Xoshiro256pp::Xoshiro256pp(const std::array<std::uint64_t, 4>& state) noexcept
    : s_(state) {
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) {
    // The all-zero state is the one fixed point of the transition function;
    // remap it so the engine still produces a full-period stream.
    SplitMix64 sm(0x2545f4914f6cdd1dULL);
    for (auto& word : s_) {
      word = sm();
    }
  }
}

void Xoshiro256pp::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
      0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};

  std::uint64_t s0 = 0;
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  std::uint64_t s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
}

Xoshiro256pp Xoshiro256pp::split() noexcept {
  Xoshiro256pp child = *this;
  jump();
  return child;
}

}  // namespace kreg::rng
