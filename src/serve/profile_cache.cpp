#include "serve/profile_cache.hpp"

#include <utility>

namespace kreg::serve {

namespace {

// Chain the key's words through the same splitmix64-style permutation the
// fingerprints use, so the table hash covers every identity field (the
// fingerprints alone are not the identity — lengths and enums are too).
constexpr std::uint64_t mix(std::uint64_t state, std::uint64_t word) noexcept {
  std::uint64_t z = state + word + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

CacheKey cache_key(const SelectionJob& job) {
  CacheKey key;
  key.data_fp = fingerprint_dataset(*job.data);
  key.n = job.data->size();
  key.estimator = job.estimator;
  key.kernel = job.kernel;
  key.precision = job.precision;
  if (job.estimator == EstimatorKind::kKnn) {
    key.grid_fp = fingerprint_counts(job.neighbor_grid);
    key.grid_size = job.neighbor_grid.size();
  } else {
    key.grid_fp = fingerprint_span(job.bandwidth_grid);
    key.grid_size = job.bandwidth_grid.size();
  }
  // The NW device reduction accumulates in its own order and can differ
  // from the host sweeps in the last ulp; every other estimator/backend
  // combination reproduces one shared bit pattern (see CacheKey docs).
  key.family = (job.estimator == EstimatorKind::kNadarayaWatson &&
                job.backend == JobBackend::kDevice)
                   ? 1
                   : 0;
  return key;
}

std::size_t CacheKeyHash::operator()(const CacheKey& key) const noexcept {
  std::uint64_t h = 0x70726f6663616368ULL;  // "profcach"
  h = mix(h, key.data_fp.lo);
  h = mix(h, key.data_fp.hi);
  h = mix(h, key.n);
  h = mix(h, static_cast<std::uint64_t>(key.estimator));
  h = mix(h, static_cast<std::uint64_t>(key.kernel));
  h = mix(h, static_cast<std::uint64_t>(key.precision));
  h = mix(h, key.grid_fp.lo);
  h = mix(h, key.grid_fp.hi);
  h = mix(h, key.grid_size);
  h = mix(h, key.family);
  return static_cast<std::size_t>(h);
}

ProfileCache::ProfileCache(std::size_t budget_bytes) : budget_(budget_bytes) {}

std::size_t ProfileCache::entry_bytes(const SelectionProfile& profile) {
  // Key + profile payloads + per-entry index/list overhead. The constant
  // covers the list node and hash-bucket bookkeeping; the exact value only
  // has to be deterministic and monotone in payload size for the eviction
  // tests to pin behaviour.
  constexpr std::size_t kNodeOverhead = 128;
  return kNodeOverhead + sizeof(CacheKey) + sizeof(SelectionProfile) +
         profile.grid.size() * sizeof(double) +
         profile.scores.size() * sizeof(double) + profile.method.size();
}

std::optional<SelectionProfile> ProfileCache::lookup(const CacheKey& key) {
  ++stats_.lookups;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  return it->second->profile;
}

std::vector<CacheKey> ProfileCache::insert(const CacheKey& key,
                                           const SelectionProfile& profile) {
  std::vector<CacheKey> evicted;
  const std::size_t bytes = entry_bytes(profile);
  if (bytes > budget_) {  // covers budget_ == 0: cache disabled
    ++stats_.rejected_oversize;
    return evicted;
  }
  if (const auto it = index_.find(key); it != index_.end()) {
    // Refresh in place: same key means provably the same bits, but keep
    // the accounting honest and promote to MRU.
    bytes_ -= it->second->bytes;
    it->second->profile = profile;
    it->second->bytes = bytes;
    bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, profile, bytes});
    index_.emplace(key, lru_.begin());
    bytes_ += bytes;
    ++stats_.insertions;
  }
  while (bytes_ > budget_) {
    Entry& victim = lru_.back();
    evicted.push_back(victim.key);
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.resident_bytes = bytes_;
  stats_.resident_entries = lru_.size();
  return evicted;
}

std::vector<CacheKey> ProfileCache::keys_mru_first() const {
  std::vector<CacheKey> keys;
  keys.reserve(lru_.size());
  for (const Entry& entry : lru_) {
    keys.push_back(entry.key);
  }
  return keys;
}

void ProfileCache::clear() {
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  stats_.resident_bytes = 0;
  stats_.resident_entries = 0;
}

}  // namespace kreg::serve
