#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/job.hpp"
#include "serve/fingerprint.hpp"

namespace kreg::serve {

/// Identity of a cached selection profile. Two jobs share an entry exactly
/// when they would provably compute the same bits: same dataset content
/// (dual fingerprint + exact length), same estimator/kernel/precision, the
/// same grid *in the same order* (the grid digest is order-sensitive, so a
/// permuted grid misses), and the same numeric family. Streaming/batching
/// knobs are deliberately absent — every plan they induce is bitwise
/// identical for a fixed key (the streaming and lane-batching parity
/// contracts) — and backends collapse into `family`, the coarsest grouping
/// that is still provably bitwise: the k-NN and OSCV profiles reproduce
/// the same window-sweep fold bit-for-bit on every backend, and the NW
/// host sweeps (sequential and tiled) agree bitwise, but the NW *device*
/// reduction accumulates in its own order and may differ from the host in
/// the last ulp — so it caches as a separate family instead of poisoning
/// cross-backend hits.
struct CacheKey {
  Fingerprint128 data_fp;
  std::size_t n = 0;
  EstimatorKind estimator = EstimatorKind::kNadarayaWatson;
  KernelType kernel = KernelType::kEpanechnikov;
  Precision precision = Precision::kDouble;
  Fingerprint128 grid_fp;
  std::size_t grid_size = 0;
  /// 0 = the shared bitwise family (all knn/oscv backends, NW host);
  /// 1 = the NW device reduction.
  std::uint8_t family = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

/// Builds the key for a (validated) job. The dataset fingerprint is
/// recomputed from content — two distinct handles to equal data share the
/// entry.
CacheKey cache_key(const SelectionJob& job);

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const noexcept;
};

/// Monotone counters; `resident_bytes`/`resident_entries` are gauges.
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected_oversize = 0;  ///< entries larger than the budget
  std::size_t resident_bytes = 0;
  std::size_t resident_entries = 0;
};

/// LRU profile cache under a byte budget.
///
/// Entries are charged their modeled footprint (entry_bytes: key + vector
/// payloads + method string + index overhead). An insert that would exceed
/// the budget evicts from the LRU end until it fits; a single entry larger
/// than the whole budget is rejected (counted, not stored). A budget of 0
/// disables the cache entirely: every lookup misses, every insert is
/// rejected. Not internally synchronized — the scheduler serializes access
/// (all cache decisions happen on the dispatch thread, which is what makes
/// hit/miss/eviction sequences deterministic and exactly assertable).
class ProfileCache {
 public:
  explicit ProfileCache(std::size_t budget_bytes);

  /// Returns the cached profile (a copy — caller owns it) and promotes the
  /// entry to most-recently-used. std::nullopt on miss.
  std::optional<SelectionProfile> lookup(const CacheKey& key);

  /// Inserts (or refreshes) an entry and returns the keys evicted to make
  /// room, in eviction order (least recently used first).
  std::vector<CacheKey> insert(const CacheKey& key,
                               const SelectionProfile& profile);

  /// Modeled footprint an entry with this profile is charged.
  static std::size_t entry_bytes(const SelectionProfile& profile);

  std::size_t budget_bytes() const noexcept { return budget_; }
  std::size_t resident_bytes() const noexcept { return bytes_; }
  std::size_t size() const noexcept { return lru_.size(); }
  const CacheStats& stats() const noexcept { return stats_; }

  /// Keys most-recently-used first — the exact eviction order reversed,
  /// for tests that pin LRU behaviour.
  std::vector<CacheKey> keys_mru_first() const;

  void clear();

 private:
  struct Entry {
    CacheKey key;
    SelectionProfile profile;
    std::size_t bytes = 0;
  };

  std::size_t budget_;
  std::size_t bytes_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
      index_;
  CacheStats stats_;
};

}  // namespace kreg::serve
