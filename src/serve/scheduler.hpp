#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/job.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/knobs.hpp"
#include "serve/profile_cache.hpp"
#include "spmd/device.hpp"

namespace kreg::serve {

/// One observable scheduling decision. The deterministic executor makes the
/// full sequence exactly reproducible, which is what the unit tests pin:
/// every admission deferral, co-schedule grouping, cache hit/miss, and
/// eviction appears here in decision order.
enum class EventKind {
  kSubmitted,    ///< job entered the queue
  kCacheHit,     ///< profile served from the cache (or wave-coalesced)
  kCacheMiss,    ///< cache consulted, no entry — job will execute
  kAdmitted,     ///< launch group admitted onto a device / host slot
  kDeferred,     ///< reservation did not fit this wave; retried next wave
  kCoScheduled,  ///< job merged into an already-admitted group's launch
  kEvicted,      ///< cache entry evicted at wave commit
  kCompleted,    ///< outcome delivered, ok
  kFailed,       ///< outcome delivered, error
};
std::string_view to_string(EventKind kind) noexcept;

struct Event {
  EventKind kind = EventKind::kSubmitted;
  std::uint64_t job = 0;    ///< job id (1-based); 0 = not job-specific
  std::uint64_t group = 0;  ///< launch-group id (1-based); 0 = none
  std::string detail;
};

struct SchedulerConfig {
  /// Worker threads for the threaded executor (0 = hardware concurrency;
  /// capped at kMaxServeWorkers). Ignored in deterministic mode.
  std::size_t workers = 0;
  /// true: waves execute inline on the draining thread, one group at a
  /// time, in admission order — every decision *and* every execution step
  /// is single-threaded and exactly reproducible. false: groups of a wave
  /// execute concurrently on the scheduler's own bounded pool. Both modes
  /// share the wave-formation and commit code, so decisions and outcomes
  /// are identical; only execution parallelism differs.
  bool deterministic = false;
  std::size_t cache_budget_bytes = kDefaultCacheBudgetBytes;
  /// Global-memory capacity of each owned device (0 = the paper-default
  /// 4 GiB Tesla S10 ledger).
  std::size_t device_budget_bytes = 0;
  std::size_t device_count = 1;
  /// Most jobs merged into one co-scheduled launch (1 disables merging).
  std::size_t co_schedule_limit = 8;
  /// Only jobs with grids this small are co-schedule candidates; larger
  /// grids always launch solo.
  std::size_t co_schedule_max_grid = 64;
  bool record_events = true;
};

/// What a client gets back for one submitted job.
struct JobOutcome {
  std::uint64_t id = 0;
  bool ok = false;
  bool cache_hit = false;
  std::string error;
  SelectionProfile profile;
};

struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t coalesced = 0;  ///< within-wave duplicate served from twin
  std::uint64_t waves = 0;
  std::uint64_t launches = 0;       ///< launch groups executed
  std::uint64_t co_scheduled = 0;   ///< jobs that rode a merged launch
  std::uint64_t deferrals = 0;      ///< admission deferrals (job·wave pairs)
  std::uint64_t solo_overrides = 0; ///< admissions forced to guarantee progress
};

/// Async selection scheduler: owns the devices, a profile cache, and (in
/// threaded mode) a bounded worker pool. Clients submit SelectionJob plans
/// and receive futures; the scheduler drains the queue in waves:
///
///   1. *Formation* (single-threaded, even in threaded mode): jobs are
///      taken FIFO; each is validated, looked up in the cache, then either
///      merged into a compatible admitted group (co-scheduling: same data
///      handle/estimator/kernel/precision/device-backend small-grid jobs
///      share one launch over the sorted union of their grids — bitwise
///      safe only for estimators whose per-grid-point scores are
///      independent of the rest of the grid, i.e. the k-NN and OSCV device
///      folds; the NW device sweep batches lanes across the whole h-grid
///      and never grid-merges), admitted solo against the device's byte
///      share (reservation = the resolve_streaming plan's modeled bytes),
///      or deferred to the next wave. The first job of a wave on an empty
///      device is always admitted (solo-override) so progress is
///      guaranteed even for jobs that can never fit.
///   2. *Execution*: admitted groups run — inline and in admission order
///      (deterministic mode) or concurrently on the worker pool (threaded
///      mode, one mutex per device since the simulated Device is not
///      thread-safe).
///   3. *Commit* (single-threaded): outcomes are delivered and cache
///      insertions/evictions applied in ascending job-id order,
///      independent of completion order — which is why the cache's
///      hit/miss/eviction sequence is identical across both executors.
///
/// Admission tightens each executed job's stream.memory_budget_bytes to
/// its reserved share; by the streaming parity contract every plan the
/// budget induces is bitwise identical, so the tightening never shows in
/// the profile — outcomes are bitwise equal to a direct run_job call.
class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues a job; the future resolves when a later drain() (or the
  /// pump thread) processes it. Never throws on bad jobs — validation
  /// errors surface as a failed outcome.
  std::future<JobOutcome> submit(SelectionJob job);

  /// Processes everything queued at call time (plus any deferrals it
  /// creates) to completion. Serialized: concurrent drainers take turns.
  void drain();

  /// Starts/stops a background pump thread that drains whenever jobs are
  /// queued — the daemon's operating mode. Idempotent.
  void start_pump();
  void stop_pump();

  const SchedulerConfig& config() const noexcept { return config_; }
  SchedulerStats stats() const;
  CacheStats cache_stats() const;
  /// Recorded decision sequence (empty unless config.record_events).
  std::vector<Event> events() const;
  std::size_t queued() const;

  std::size_t device_count() const noexcept { return devices_.size(); }
  const spmd::Device& device(std::size_t index) const {
    return *devices_.at(index);
  }

 private:
  struct Pending {
    std::uint64_t id = 0;
    SelectionJob job;
    std::promise<JobOutcome> promise;
  };
  struct Member;
  struct Group;

  void pump_loop();
  void process_wave(std::deque<Pending>& wave, std::deque<Pending>& deferred);
  void execute_group(Group& group);
  void record(EventKind kind, std::uint64_t job, std::uint64_t group,
              std::string detail);

  SchedulerConfig config_;
  std::vector<std::unique_ptr<spmd::Device>> devices_;
  std::vector<std::unique_ptr<std::mutex>> device_mutexes_;
  std::unique_ptr<parallel::ThreadPool> pool_;  // threaded mode only

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  std::uint64_t next_job_id_ = 1;
  bool stopping_ = false;

  std::mutex drain_mutex_;  // one wave-former at a time
  std::uint64_t next_group_id_ = 1;

  mutable std::mutex state_mutex_;  // cache, stats, events
  ProfileCache cache_;
  SchedulerStats stats_;
  std::vector<Event> events_;

  std::thread pump_;
  bool pump_running_ = false;
};

}  // namespace kreg::serve
