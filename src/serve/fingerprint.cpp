#include "serve/fingerprint.hpp"

#include <bit>

namespace kreg::serve {

namespace {

// SplitMix64's output permutation (rng/splitmix64.hpp) applied as a mixing
// step: absorb one word, then scramble. Chaining word-by-word keeps the
// digest order-sensitive.
constexpr std::uint64_t mix_word(std::uint64_t state,
                                 std::uint64_t word) noexcept {
  std::uint64_t z = state + word + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kSeedLo = 0x6b72656773657276ULL;  // "kregserv"
constexpr std::uint64_t kSeedHi = 0xa5b35705f00dcafeULL;

class DualDigest {
 public:
  constexpr DualDigest() noexcept : lo_(kSeedLo), hi_(kSeedHi) {}

  constexpr void absorb(std::uint64_t word) noexcept {
    lo_ = mix_word(lo_, word);
    hi_ = mix_word(hi_, ~word);
  }

  constexpr Fingerprint128 digest() const noexcept { return {lo_, hi_}; }

 private:
  std::uint64_t lo_;
  std::uint64_t hi_;
};

}  // namespace

Fingerprint128 fingerprint_span(std::span<const double> values) {
  DualDigest digest;
  digest.absorb(values.size());
  for (const double value : values) {
    digest.absorb(std::bit_cast<std::uint64_t>(value));
  }
  return digest.digest();
}

Fingerprint128 fingerprint_counts(std::span<const std::size_t> values) {
  DualDigest digest;
  digest.absorb(values.size());
  for (const std::size_t value : values) {
    digest.absorb(static_cast<std::uint64_t>(value));
  }
  return digest.digest();
}

Fingerprint128 fingerprint_dataset(const data::Dataset& data) {
  DualDigest digest;
  digest.absorb(data.size());
  for (const double x : data.x) {
    digest.absorb(std::bit_cast<std::uint64_t>(x));
  }
  digest.absorb(0x00594f4c4f4d4f58ULL);  // X|Y domain separator
  for (const double y : data.y) {
    digest.absorb(std::bit_cast<std::uint64_t>(y));
  }
  return digest.digest();
}

}  // namespace kreg::serve
