#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <vector>

#include "data/dataset.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"

namespace kreg::serve {

/// Everything the daemon does minus the sockets: a scheduler, a dataset
/// registry keyed by (dgp, n, seed), and the request-line dispatch. Tests
/// and the bench's in-process mode drive this directly, so the whole
/// request → job → outcome → response path is covered without a socket.
class ServeContext {
 public:
  explicit ServeContext(SchedulerConfig config);

  Scheduler& scheduler() noexcept { return scheduler_; }

  /// The shared dataset handle for (dgp, n, seed), generated on first use.
  /// Sharing the handle across requests is what makes repeat requests
  /// co-schedulable (the grouping predicate compares handles) and keeps
  /// the registry's memory linear in the number of distinct datasets.
  /// Throws std::invalid_argument for an unknown dgp name.
  std::shared_ptr<const data::Dataset> dataset(const std::string& dgp,
                                               std::size_t n,
                                               std::uint64_t seed);

  /// Materializes a select request into a submittable plan: resolves the
  /// dataset, builds the grid (the request's lo:hi:count range, or the
  /// library default for the dataset when unset).
  SelectionJob job_from_request(const Request& request);

  /// Executes one request line end to end and returns the response line
  /// (without trailing newline). Never throws — parse and build errors
  /// come back as "error ..." responses. Sets *shutdown on the shutdown
  /// verb. Select requests block until the scheduler delivers the outcome,
  /// so concurrency comes from concurrent callers (one per connection).
  std::string handle_line(std::string_view line, bool* shutdown);

 private:
  Scheduler scheduler_;
  std::mutex mutex_;
  std::map<std::tuple<std::string, std::size_t, std::uint64_t>,
           std::shared_ptr<const data::Dataset>>
      datasets_;
};

struct ServerConfig {
  std::string socket_path;
  SchedulerConfig scheduler;
};

/// The kreg_serve daemon: a line-protocol server on a UNIX-domain stream
/// socket, one handler thread per connection, all submissions funneled
/// into the shared ServeContext scheduler.
class Server {
 public:
  /// Validates the socket path and binds + listens (replacing a stale
  /// socket file). Throws std::runtime_error on socket errors.
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept loop; returns after a client sends "shutdown" (or stop() is
  /// called from another thread). Joins every connection handler and
  /// removes the socket file before returning.
  void run();

  /// Asks a running accept loop to exit. Safe from any thread.
  void stop();

  const std::string& socket_path() const noexcept {
    return config_.socket_path;
  }
  ServeContext& context() noexcept { return context_; }

 private:
  void handle_connection(int fd);

  ServerConfig config_;
  ServeContext context_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::mutex threads_mutex_;
  std::vector<std::thread> threads_;
};

}  // namespace kreg::serve
