#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/job.hpp"
#include "serve/profile_cache.hpp"
#include "serve/scheduler.hpp"

namespace kreg::serve {

/// The daemon's line protocol, parsed and formatted with no sockets in
/// sight so every request/response path is unit-testable in-process.
///
/// Requests (one line each):
///   ping
///   stats
///   shutdown
///   select [estimator=nw|knn|oscv] [kernel=<name>] [precision=float|double]
///          [dgp=<name>] [n=<count>] [seed=<u64>] [grid=<lo>:<hi>:<count>]
///          [backend=host|tiled|device] [lane=<0|1|4|8|16>]
///          [budget=<bytes-with-suffix>]
///
/// Responses: "ok ..." or "error <message>".
enum class RequestKind { kSelect, kStats, kPing, kShutdown };

/// Grid range requested by a select line; unset means "use the library
/// default for the dataset" (BandwidthGrid::default_for /
/// default_neighbor_grid).
struct GridSpec {
  bool set = false;
  double lo = 0.0;
  double hi = 0.0;
  std::size_t count = 0;
};

struct Request {
  RequestKind kind = RequestKind::kPing;
  // select fields (defaults match the CLI's)
  EstimatorKind estimator = EstimatorKind::kNadarayaWatson;
  KernelType kernel = KernelType::kEpanechnikov;
  Precision precision = Precision::kDouble;
  std::string dgp = "paper";
  std::size_t n = 512;
  std::uint64_t seed = 1;
  GridSpec grid;
  JobBackend backend = JobBackend::kDevice;
  std::size_t lane_width = 0;
  std::size_t budget_bytes = 0;  ///< stream budget; 0 = derive
};

/// Parses one request line. Throws std::invalid_argument on an unknown
/// verb, unknown key, or malformed value — strict, like every other knob
/// parser in this library.
Request parse_request(std::string_view line);

/// Parses "epanechnikov" / "uniform" / ... (the to_string spellings).
KernelType parse_kernel(std::string_view text);
/// Parses "float" / "single" / "double".
Precision parse_precision(std::string_view text);

/// "ok id=<id> selected=... cv=... argmin=... grid=... cache=hit|miss
/// method=..." or "error id=<id> <message>". Doubles are printed with 17
/// significant digits so the wire value round-trips bitwise.
std::string format_outcome(const JobOutcome& outcome);

/// One-line stats snapshot for the `stats` verb.
std::string format_stats(const SchedulerStats& stats,
                         const CacheStats& cache);

std::string format_error(const std::string& message);

}  // namespace kreg::serve
