#include "serve/knobs.hpp"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "core/streaming.hpp"

namespace kreg::serve {

std::size_t parse_worker_count(std::string_view text) {
  if (text.empty()) {
    throw std::invalid_argument("parse_worker_count: empty input");
  }
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  std::size_t value = 0;
  for (const char c : text) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      throw std::invalid_argument("parse_worker_count: '" + std::string(text) +
                                  "' is not a plain decimal count");
    }
    const auto digit = static_cast<std::size_t>(c - '0');
    if (value > (kMax - digit) / 10) {
      throw std::invalid_argument("parse_worker_count: '" + std::string(text) +
                                  "' overflows the counter");
    }
    value = value * 10 + digit;
  }
  if (value == 0) {
    throw std::invalid_argument(
        "parse_worker_count: worker count must be positive");
  }
  if (value > kMaxServeWorkers) {
    throw std::invalid_argument(
        "parse_worker_count: " + std::string(text) + " exceeds the maximum (" +
        std::to_string(kMaxServeWorkers) + ")");
  }
  return value;
}

std::size_t resolve_worker_count(std::size_t requested, std::size_t fallback) {
  if (requested == kServeFromEnv) {
    const char* env = std::getenv("KREG_SERVE_WORKERS");
    if (env == nullptr || env[0] == '\0') {
      return fallback;
    }
    return parse_worker_count(env);
  }
  if (requested == 0) {
    return fallback;
  }
  if (requested > kMaxServeWorkers) {
    throw std::invalid_argument(
        "resolve_worker_count: " + std::to_string(requested) +
        " exceeds the maximum (" + std::to_string(kMaxServeWorkers) + ")");
  }
  return requested;
}

std::size_t parse_cache_budget(std::string_view text) {
  if (text == "0" || text == "off" || text == "none" || text == "disabled") {
    return 0;
  }
  return parse_memory_budget(text);
}

std::size_t resolve_cache_budget(std::size_t requested) {
  if (requested != kServeFromEnv) {
    return requested;
  }
  const char* env = std::getenv("KREG_SERVE_CACHE_BUDGET");
  if (env == nullptr || env[0] == '\0') {
    return kDefaultCacheBudgetBytes;
  }
  return parse_cache_budget(env);
}

void validate_socket_path(const std::string& path) {
  if (path.empty()) {
    throw std::invalid_argument("validate_socket_path: empty path");
  }
  if (path.front() != '/') {
    throw std::invalid_argument("validate_socket_path: '" + path +
                                "' is not absolute");
  }
  // sockaddr_un::sun_path is 108 bytes including the terminating NUL.
  constexpr std::size_t kMaxSunPath = 107;
  if (path.size() > kMaxSunPath) {
    throw std::invalid_argument(
        "validate_socket_path: path is " + std::to_string(path.size()) +
        " chars, exceeding sockaddr_un's limit of " +
        std::to_string(kMaxSunPath));
  }
}

}  // namespace kreg::serve
