#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace kreg::serve {

/// Sentinel: "the knob was not given on the command line — consult the
/// environment, then fall back to the default". Mirrors the
/// kPrefetchFromEnv idiom (core/batched_sweep.hpp).
inline constexpr std::size_t kServeFromEnv = static_cast<std::size_t>(-1);

/// Upper bound on scheduler worker threads. Generous for any realistic
/// host but small enough that a mistyped value ("2566") fails loudly
/// instead of spawning a fork bomb's worth of threads.
inline constexpr std::size_t kMaxServeWorkers = 256;

/// Default profile-cache budget when neither --cache-budget nor
/// KREG_SERVE_CACHE_BUDGET is given: 64 MiB, roomy for tens of thousands
/// of profiles.
inline constexpr std::size_t kDefaultCacheBudgetBytes = std::size_t{64}
                                                        << 20;

/// Strict worker-count parser: digits only (no sign, no whitespace, no
/// suffix), value in [1, kMaxServeWorkers]. Throws std::invalid_argument
/// on empty input, non-digit characters, zero, overflow, or a count above
/// the bound — the same reject-don't-guess posture as
/// parse_prefetch_distance.
std::size_t parse_worker_count(std::string_view text);

/// Worker count from an explicit value or the environment:
/// `requested == kServeFromEnv` reads KREG_SERVE_WORKERS (unset/empty →
/// `fallback`); any other value must already be in range (throws
/// otherwise, same rules as parse_worker_count, except 0 is allowed to
/// mean `fallback` so SchedulerConfig{} stays default-constructible).
std::size_t resolve_worker_count(std::size_t requested, std::size_t fallback);

/// Cache-budget parser: "0", "off", "none", or "disabled" (case-sensitive
/// keywords) disable the cache and return 0; anything else must satisfy
/// parse_memory_budget (positive, optional binary suffix, strict overflow
/// checks). Unlike the device-memory knob, zero is meaningful here —
/// "no cache" is a deliberate serving mode, not an unset knob.
std::size_t parse_cache_budget(std::string_view text);

/// Cache budget from an explicit value or the environment:
/// `requested == kServeFromEnv` reads KREG_SERVE_CACHE_BUDGET via
/// parse_cache_budget (unset/empty → kDefaultCacheBudgetBytes); any other
/// value — including 0, cache disabled — passes through verbatim.
std::size_t resolve_cache_budget(std::size_t requested);

/// Validates a UNIX-domain socket path: non-empty, absolute (leading '/'),
/// and short enough for sockaddr_un::sun_path (107 chars + NUL). Throws
/// std::invalid_argument naming the violated rule.
void validate_socket_path(const std::string& path);

}  // namespace kreg::serve
