#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/grid.hpp"
#include "core/knn_sweep.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"
#include "serve/knobs.hpp"

namespace kreg::serve {

namespace {

/// Default grid length when a select request names no range — matches the
/// CLI's default sweep resolution.
constexpr std::size_t kDefaultGridSize = 64;

std::vector<std::size_t> neighbor_grid_from_spec(const GridSpec& spec) {
  if (spec.lo < 1.0 || spec.hi < spec.lo) {
    throw std::invalid_argument(
        "job_from_request: knn grid range must satisfy 1 <= lo <= hi");
  }
  std::vector<std::size_t> grid;
  grid.reserve(spec.count);
  for (std::size_t i = 0; i < spec.count; ++i) {
    const double t =
        spec.count == 1
            ? spec.hi
            : spec.lo + (spec.hi - spec.lo) * static_cast<double>(i) /
                            static_cast<double>(spec.count - 1);
    const auto k = static_cast<std::size_t>(std::llround(t));
    if (grid.empty() || k > grid.back()) {
      grid.push_back(k);  // collapse rounding duplicates, stay ascending
    }
  }
  return grid;
}

}  // namespace

ServeContext::ServeContext(SchedulerConfig config)
    : scheduler_(std::move(config)) {}

std::shared_ptr<const data::Dataset> ServeContext::dataset(
    const std::string& dgp, std::size_t n, std::uint64_t seed) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto key = std::make_tuple(dgp, n, seed);
  if (const auto it = datasets_.find(key); it != datasets_.end()) {
    return it->second;
  }
  const data::NamedDgp* entry = nullptr;
  for (const data::NamedDgp& candidate : data::all_dgps()) {
    if (candidate.name == dgp) {
      entry = &candidate;
      break;
    }
  }
  if (entry == nullptr) {
    std::string valid;
    for (const data::NamedDgp& candidate : data::all_dgps()) {
      if (!valid.empty()) {
        valid += ", ";
      }
      valid += candidate.name;
    }
    throw std::invalid_argument("unknown dgp '" + dgp + "' (expected one of " +
                                valid + ")");
  }
  rng::Stream stream(seed);
  auto data =
      std::make_shared<const data::Dataset>(entry->generate(n, stream));
  datasets_.emplace(key, data);
  return data;
}

SelectionJob ServeContext::job_from_request(const Request& request) {
  SelectionJob job;
  job.data = dataset(request.dgp, request.n, request.seed);
  job.estimator = request.estimator;
  job.kernel = request.kernel;
  job.precision = request.precision;
  job.backend = request.backend;
  job.lane_width = request.lane_width;
  job.stream.memory_budget_bytes = request.budget_bytes;
  if (request.estimator == EstimatorKind::kKnn) {
    job.neighbor_grid = request.grid.set
                            ? neighbor_grid_from_spec(request.grid)
                            : default_neighbor_grid(job.data->size());
  } else {
    job.bandwidth_grid =
        request.grid.set
            ? BandwidthGrid(request.grid.lo, request.grid.hi,
                            request.grid.count)
                  .values()
            : BandwidthGrid::default_for(*job.data, kDefaultGridSize).values();
  }
  return job;
}

std::string ServeContext::handle_line(std::string_view line, bool* shutdown) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const std::exception& e) {
    return format_error(e.what());
  }
  switch (request.kind) {
    case RequestKind::kPing:
      return "ok pong";
    case RequestKind::kStats:
      return format_stats(scheduler_.stats(), scheduler_.cache_stats());
    case RequestKind::kShutdown:
      if (shutdown != nullptr) {
        *shutdown = true;
      }
      return "ok shutting down";
    case RequestKind::kSelect:
      break;
  }
  SelectionJob job;
  try {
    job = job_from_request(request);
  } catch (const std::exception& e) {
    return format_error(e.what());
  }
  return format_outcome(scheduler_.submit(std::move(job)).get());
}

Server::Server(ServerConfig config)
    : config_(std::move(config)), context_(config_.scheduler) {
  validate_socket_path(config_.socket_path);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(config_.socket_path.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind(" + config_.socket_path +
                             "): " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
    throw std::runtime_error(std::string("listen: ") + std::strerror(err));
  }
}

Server::~Server() {
  stop();
  {
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    for (std::thread& thread : threads_) {
      if (thread.joinable()) {
        thread.join();
      }
    }
    threads_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
}

void Server::stop() {
  if (!stopping_.exchange(true) && listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // breaks the blocking accept
  }
}

void Server::run() {
  context_.scheduler().start_pump();
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load() || (errno != EINTR && errno != ECONNABORTED)) {
        break;
      }
      continue;
    }
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
  {
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    for (std::thread& thread : threads_) {
      if (thread.joinable()) {
        thread.join();
      }
    }
    threads_.clear();
  }
  context_.scheduler().stop_pump();
}

void Server::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got <= 0) {
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(got));
    std::size_t newline = 0;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      bool shutdown = false;
      std::string response = context_.handle_line(line, &shutdown);
      response.push_back('\n');
      std::size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t wrote =
            ::write(fd, response.data() + sent, response.size() - sent);
        if (wrote <= 0) {
          ::close(fd);
          return;
        }
        sent += static_cast<std::size_t>(wrote);
      }
      if (shutdown) {
        ::close(fd);
        stop();
        return;
      }
    }
  }
  ::close(fd);
}

}  // namespace kreg::serve
