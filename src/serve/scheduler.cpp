#include "serve/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/streaming.hpp"
#include "serve/knobs.hpp"

namespace kreg::serve {

namespace {

constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/// A job prepared for execution plus the bytes its streaming plan reserves
/// on the device.
struct Reservation {
  SelectionJob exec;
  std::size_t bytes = 0;
};

/// Sizes `job` against a byte share of one device: tightens the streaming
/// budget to the share (auto-tuned jobs only — an explicit opt-out stays
/// opted out) and returns the resolve_streaming plan's modeled footprint.
/// Every plan a budget induces is bitwise identical, so the tightening is
/// an admission-control detail, never a result change.
Reservation plan_reservation(SelectionJob job, std::size_t share,
                             std::size_t capacity) {
  Reservation r;
  r.exec = std::move(job);
  const std::size_t k = r.exec.grid_size();
  const std::size_t resident = job_streamed_bytes(r.exec, k);
  const std::size_t base = job_streamed_bytes(r.exec, 0);
  const std::size_t one = job_streamed_bytes(r.exec, 1);
  const std::size_t per_k = one > base ? one - base : 0;
  StreamingConfig cfg = r.exec.stream;
  if (cfg.auto_tune && share > 0 &&
      (cfg.memory_budget_bytes == 0 || cfg.memory_budget_bytes > share)) {
    cfg.memory_budget_bytes = share;
  }
  const StreamingPlan plan =
      resolve_streaming(cfg, k, resident, base, per_k, capacity);
  r.bytes = plan.streamed ? base + plan.k_block * per_k : resident;
  r.exec.stream = cfg;
  return r;
}

/// Two device jobs may share one launch exactly when merging their grids
/// provably cannot change either job's bits: same dataset handle, same
/// estimator/kernel/precision, the same lane-batching knobs (keeping the
/// merged launch's reservation model exact), and — the load-bearing part —
/// an estimator whose per-grid-point score is independent of the rest of
/// the grid. The k-NN and OSCV device folds are bitwise invariant under
/// grid composition (each point's fold runs in the same ascending
/// observation order regardless of its neighbours), but the NW device
/// sweep's σ-sorted lane batching composes lanes across the whole h-grid,
/// so merging grids perturbs its last-ulp bits. NW jobs therefore never
/// grid-merge; identical NW jobs still coalesce onto one launch via their
/// shared cache key.
bool co_schedulable(const SelectionJob& lhs, const SelectionJob& rhs) {
  return lhs.backend == JobBackend::kDevice &&
         rhs.backend == JobBackend::kDevice &&
         lhs.estimator != EstimatorKind::kNadarayaWatson &&
         lhs.data == rhs.data && lhs.estimator == rhs.estimator &&
         lhs.kernel == rhs.kernel && lhs.precision == rhs.precision &&
         lhs.lane_width == rhs.lane_width && lhs.sigma == rhs.sigma;
}

template <class T>
std::vector<T> sorted_union(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> merged;
  merged.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(merged));
  return merged;
}

/// The group's launch plan extended with `job`'s grid: the sorted,
/// deduplicated union. Both inputs are strictly ascending, so the union is
/// a valid grid for the same estimator.
SelectionJob merged_job(const SelectionJob& base, const SelectionJob& job) {
  SelectionJob merged = base;
  if (base.estimator == EstimatorKind::kKnn) {
    merged.neighbor_grid = sorted_union(base.neighbor_grid, job.neighbor_grid);
  } else {
    merged.bandwidth_grid =
        sorted_union(base.bandwidth_grid, job.bandwidth_grid);
  }
  return merged;
}

}  // namespace

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kSubmitted:
      return "submitted";
    case EventKind::kCacheHit:
      return "cache-hit";
    case EventKind::kCacheMiss:
      return "cache-miss";
    case EventKind::kAdmitted:
      return "admitted";
    case EventKind::kDeferred:
      return "deferred";
    case EventKind::kCoScheduled:
      return "co-scheduled";
    case EventKind::kEvicted:
      return "evicted";
    case EventKind::kCompleted:
      return "completed";
    case EventKind::kFailed:
      return "failed";
  }
  return "?";
}

struct Scheduler::Member {
  Pending pending;
  bool has_key = false;
  CacheKey key;
  /// Outcome fully determined at formation (validation error, cache hit).
  bool done = false;
  JobOutcome outcome;
  /// Index of the earlier wave member executing an identical key, or
  /// kNoIndex. The follower's outcome is copied from the twin at commit.
  std::size_t follower_of = kNoIndex;
  /// Executing launch group, or kNoIndex when done/follower/deferred.
  std::size_t group_index = kNoIndex;
};

struct Scheduler::Group {
  std::uint64_t gid = 0;
  SelectionJob exec;
  std::vector<std::size_t> members;  ///< indices into the wave's members
  std::size_t reserved = 0;
  std::size_t device_index = kNoIndex;  ///< kNoIndex = host backend
  bool mergeable = false;
  bool ok = false;
  std::string error;
  SelectionProfile profile;  ///< the (possibly merged) launch's profile
};

Scheduler::Scheduler(SchedulerConfig config)
    : config_(config), cache_(config.cache_budget_bytes) {
  if (config_.device_count == 0) {
    throw std::invalid_argument("Scheduler: device_count must be positive");
  }
  if (config_.workers != 0 && config_.workers > kMaxServeWorkers) {
    throw std::invalid_argument(
        "Scheduler: workers exceeds the maximum (" +
        std::to_string(kMaxServeWorkers) + ")");
  }
  if (config_.co_schedule_limit == 0) {
    config_.co_schedule_limit = 1;  // 0 and 1 both mean "no merging"
  }
  // The paper-default device, with only the global ledger resized: the
  // constant cache and launch limits stay at hardware values so a capped
  // ledger exercises streaming, not unrelated capability failures.
  spmd::DeviceProperties props = spmd::DeviceProperties::tesla_s10();
  if (config_.device_budget_bytes != 0) {
    props.global_memory_bytes = config_.device_budget_bytes;
  }
  for (std::size_t i = 0; i < config_.device_count; ++i) {
    devices_.push_back(std::make_unique<spmd::Device>(props));
    device_mutexes_.push_back(std::make_unique<std::mutex>());
  }
  if (!config_.deterministic) {
    pool_ = std::make_unique<parallel::ThreadPool>(config_.workers);
  }
}

Scheduler::~Scheduler() {
  stop_pump();
  std::deque<Pending> orphans;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    orphans.swap(queue_);
  }
  for (Pending& pending : orphans) {
    JobOutcome outcome;
    outcome.id = pending.id;
    outcome.error = "scheduler destroyed before the job ran";
    pending.promise.set_value(std::move(outcome));
  }
}

void Scheduler::record(EventKind kind, std::uint64_t job, std::uint64_t group,
                       std::string detail) {
  if (!config_.record_events) {
    return;
  }
  const std::lock_guard<std::mutex> lock(state_mutex_);
  events_.push_back(Event{kind, job, group, std::move(detail)});
}

std::future<JobOutcome> Scheduler::submit(SelectionJob job) {
  Pending pending;
  pending.job = std::move(job);
  std::future<JobOutcome> future = pending.promise.get_future();
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    id = next_job_id_++;
    pending.id = id;
    queue_.push_back(std::move(pending));
    // Record under the queue lock so the submitted-event order matches the
    // id order even with racing submitters (lock order: queue -> state).
    record(EventKind::kSubmitted, id, 0, "");
    queue_cv_.notify_one();
  }
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    ++stats_.submitted;
  }
  return future;
}

void Scheduler::drain() {
  const std::lock_guard<std::mutex> drain_lock(drain_mutex_);
  std::deque<Pending> deferred;
  for (;;) {
    std::deque<Pending> wave;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      wave.swap(queue_);
    }
    // Deferred jobs are older than anything just dequeued: they keep their
    // FIFO position at the front, which is what makes the next wave's
    // solo-override reach them first.
    for (auto it = deferred.rbegin(); it != deferred.rend(); ++it) {
      wave.push_front(std::move(*it));
    }
    deferred.clear();
    if (wave.empty()) {
      break;
    }
    process_wave(wave, deferred);
  }
}

void Scheduler::process_wave(std::deque<Pending>& wave,
                             std::deque<Pending>& deferred) {
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    ++stats_.waves;
  }
  const bool cache_on = config_.cache_budget_bytes > 0;
  std::vector<Member> members;
  std::vector<Group> groups;
  members.reserve(wave.size());
  std::vector<std::size_t> free_bytes(devices_.size());
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    free_bytes[d] = devices_[d]->properties().memory_budget().global_bytes;
  }
  bool any_device_admitted = false;
  std::unordered_map<CacheKey, std::size_t, CacheKeyHash> executing;

  // ---- Phase 1: formation (single-threaded in both executor modes) ------
  while (!wave.empty()) {
    Member m;
    m.pending = std::move(wave.front());
    wave.pop_front();
    const std::uint64_t id = m.pending.id;
    const SelectionJob& job = m.pending.job;

    try {
      validate_job(job);
    } catch (const std::exception& e) {
      m.done = true;
      m.outcome.error = e.what();
      members.push_back(std::move(m));
      continue;
    }

    if (cache_on) {
      m.key = cache_key(job);
      m.has_key = true;
      std::optional<SelectionProfile> hit;
      {
        const std::lock_guard<std::mutex> lock(state_mutex_);
        hit = cache_.lookup(m.key);
        if (hit) {
          ++stats_.cache_hits;
        } else {
          ++stats_.cache_misses;
        }
      }
      if (hit) {
        m.done = true;
        m.outcome.ok = true;
        m.outcome.cache_hit = true;
        m.outcome.profile = std::move(*hit);
        // The payload is backend-invariant bitwise; the method string names
        // the backend *this* job asked for.
        m.outcome.profile.method = job_method(job);
        record(EventKind::kCacheHit, id, 0, "");
        members.push_back(std::move(m));
        continue;
      }
      record(EventKind::kCacheMiss, id, 0, "");
      if (const auto it = executing.find(m.key); it != executing.end()) {
        m.follower_of = it->second;
        record(EventKind::kCacheHit, id, 0,
               "coalesced with job " +
                   std::to_string(members[it->second].pending.id));
        {
          const std::lock_guard<std::mutex> lock(state_mutex_);
          ++stats_.coalesced;
        }
        members.push_back(std::move(m));
        continue;
      }
    }

    const std::size_t member_index = members.size();

    if (job.backend != JobBackend::kDevice) {
      // Host backends take no device bytes: always admitted, never merged.
      Group group;
      group.gid = next_group_id_++;
      group.exec = job;
      group.members.push_back(member_index);
      m.group_index = groups.size();
      record(EventKind::kAdmitted, id, group.gid, "host backend");
      groups.push_back(std::move(group));
      if (m.has_key) {
        executing.emplace(m.key, member_index);
      }
      members.push_back(std::move(m));
      continue;
    }

    bool attached = false;
    if (config_.co_schedule_limit > 1 && job.grid_size() > 0 &&
        job.grid_size() <= config_.co_schedule_max_grid) {
      for (std::size_t gi = 0; gi < groups.size() && !attached; ++gi) {
        Group& group = groups[gi];
        if (!group.mergeable ||
            group.members.size() >= config_.co_schedule_limit ||
            !co_schedulable(group.exec, job)) {
          continue;
        }
        const std::size_t capacity = devices_[group.device_index]
                                         ->properties()
                                         .memory_budget()
                                         .global_bytes;
        // Release the group's reservation, re-reserve the merged launch.
        const std::size_t share =
            free_bytes[group.device_index] + group.reserved;
        Reservation merged =
            plan_reservation(merged_job(group.exec, job), share, capacity);
        if (merged.bytes > share) {
          continue;
        }
        free_bytes[group.device_index] = share - merged.bytes;
        group.exec = std::move(merged.exec);
        group.reserved = merged.bytes;
        group.members.push_back(member_index);
        m.group_index = gi;
        record(EventKind::kCoScheduled, id, group.gid,
               "merged grid now " + std::to_string(group.exec.grid_size()) +
                   " points, " + std::to_string(group.reserved) +
                   " bytes reserved");
        {
          const std::lock_guard<std::mutex> lock(state_mutex_);
          ++stats_.co_scheduled;
        }
        attached = true;
      }
    }

    if (!attached) {
      std::size_t device_index = kNoIndex;
      Reservation reservation;
      for (std::size_t d = 0; d < devices_.size(); ++d) {
        const std::size_t capacity =
            devices_[d]->properties().memory_budget().global_bytes;
        reservation = plan_reservation(job, free_bytes[d], capacity);
        if (reservation.bytes <= free_bytes[d]) {
          device_index = d;
          break;
        }
      }
      bool solo_override = false;
      if (device_index == kNoIndex && !any_device_admitted) {
        // Nothing else holds bytes this wave: admit anyway so a job that
        // can never fit still executes (and fails with a real ledger
        // error) instead of deferring forever.
        const std::size_t capacity =
            devices_[0]->properties().memory_budget().global_bytes;
        reservation = plan_reservation(job, free_bytes[0], capacity);
        device_index = 0;
        solo_override = true;
        {
          const std::lock_guard<std::mutex> lock(state_mutex_);
          ++stats_.solo_overrides;
        }
      }
      if (device_index == kNoIndex) {
        record(EventKind::kDeferred, id, 0,
               "needs " + std::to_string(reservation.bytes) +
                   " bytes, none of the devices has that free");
        {
          const std::lock_guard<std::mutex> lock(state_mutex_);
          ++stats_.deferrals;
        }
        deferred.push_back(std::move(m.pending));
        continue;  // not a wave member; retried next wave
      }
      Group group;
      group.gid = next_group_id_++;
      group.exec = std::move(reservation.exec);
      group.reserved = reservation.bytes;
      group.device_index = device_index;
      group.mergeable = config_.co_schedule_limit > 1 &&
                        job.estimator != EstimatorKind::kNadarayaWatson &&
                        job.grid_size() <= config_.co_schedule_max_grid;
      group.members.push_back(member_index);
      m.group_index = groups.size();
      free_bytes[device_index] -=
          std::min(reservation.bytes, free_bytes[device_index]);
      any_device_admitted = true;
      record(EventKind::kAdmitted, id, group.gid,
             "device " + std::to_string(device_index) + ", " +
                 std::to_string(group.reserved) + " bytes reserved" +
                 (solo_override ? " (solo-override)" : ""));
      groups.push_back(std::move(group));
      if (m.has_key) {
        executing.emplace(m.key, member_index);
      }
      members.push_back(std::move(m));
    } else {
      if (m.has_key) {
        executing.emplace(m.key, member_index);
      }
      members.push_back(std::move(m));
    }
  }

  // ---- Phase 2: execution -----------------------------------------------
  if (pool_) {
    for (Group& group : groups) {
      Group* g = &group;
      pool_->submit([this, g] { execute_group(*g); });
    }
    pool_->wait_idle();
  } else {
    for (Group& group : groups) {
      execute_group(group);
    }
  }
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    stats_.launches += groups.size();
  }

  // ---- Phase 3: commit (single-threaded, ascending job id) --------------
  for (Member& m : members) {
    m.outcome.id = m.pending.id;
    if (m.follower_of != kNoIndex) {
      const Member& twin = members[m.follower_of];
      if (twin.outcome.ok) {
        m.outcome.ok = true;
        m.outcome.cache_hit = true;
        m.outcome.profile = twin.outcome.profile;
        m.outcome.profile.method = job_method(m.pending.job);
      } else {
        m.outcome.error = "coalesced twin failed: " + twin.outcome.error;
      }
    } else if (!m.done) {
      Group& group = groups[m.group_index];
      if (group.ok) {
        m.outcome.ok = true;
        if (group.members.size() == 1) {
          m.outcome.profile = group.profile;
        } else {
          // Extract this job's scores from the merged launch: every one of
          // its grid values appears (bit-identically) in the merged grid.
          std::vector<double> scores;
          scores.reserve(m.pending.job.grid_size());
          const std::vector<double>& merged_grid = group.profile.grid;
          const auto extract_at = [&](double value) {
            const auto it = std::lower_bound(merged_grid.begin(),
                                             merged_grid.end(), value);
            scores.push_back(group.profile.scores[static_cast<std::size_t>(
                it - merged_grid.begin())]);
          };
          if (m.pending.job.estimator == EstimatorKind::kKnn) {
            for (const std::size_t count : m.pending.job.neighbor_grid) {
              extract_at(static_cast<double>(count));
            }
          } else {
            for (const double h : m.pending.job.bandwidth_grid) {
              extract_at(h);
            }
          }
          m.outcome.profile = profile_from_scores(
              m.pending.job, std::move(scores), job_method(m.pending.job));
        }
      } else {
        m.outcome.error = group.error;
      }
    }

    if (m.outcome.ok && !m.outcome.cache_hit && m.has_key) {
      std::vector<CacheKey> evicted;
      {
        const std::lock_guard<std::mutex> lock(state_mutex_);
        evicted = cache_.insert(m.key, m.outcome.profile);
      }
      for (const CacheKey& key : evicted) {
        record(EventKind::kEvicted, 0, 0,
               "n=" + std::to_string(key.n) +
                   " grid=" + std::to_string(key.grid_size) + " " +
                   std::string(to_string(key.estimator)));
      }
    }

    const std::uint64_t gid =
        m.group_index != kNoIndex ? groups[m.group_index].gid : 0;
    record(m.outcome.ok ? EventKind::kCompleted : EventKind::kFailed,
           m.outcome.id, gid, m.outcome.ok ? "" : m.outcome.error);
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      if (m.outcome.ok) {
        ++stats_.completed;
      } else {
        ++stats_.failed;
      }
    }
    m.pending.promise.set_value(m.outcome);
  }
}

void Scheduler::execute_group(Group& group) {
  try {
    JobContext ctx;
    if (group.device_index != kNoIndex) {
      // The simulated Device is not thread-safe (stats, memory ledger):
      // one launch at a time per device.
      const std::lock_guard<std::mutex> lock(
          *device_mutexes_[group.device_index]);
      ctx.device = devices_[group.device_index].get();
      group.profile = run_job(group.exec, ctx);
    } else {
      group.profile = run_job(group.exec, ctx);
    }
    group.ok = true;
  } catch (const std::exception& e) {
    group.error = e.what();
  }
}

void Scheduler::start_pump() {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  if (pump_running_) {
    return;
  }
  stopping_ = false;
  pump_running_ = true;
  pump_ = std::thread([this] { pump_loop(); });
}

void Scheduler::stop_pump() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!pump_running_) {
      return;
    }
    stopping_ = true;
    queue_cv_.notify_all();
  }
  pump_.join();
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  pump_running_ = false;
  stopping_ = false;
}

void Scheduler::pump_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) {
        return;
      }
    }
    drain();
  }
}

SchedulerStats Scheduler::stats() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return stats_;
}

CacheStats Scheduler::cache_stats() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return cache_.stats();
}

std::vector<Event> Scheduler::events() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return events_;
}

std::size_t Scheduler::queued() const {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

}  // namespace kreg::serve
