#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "data/dataset.hpp"

namespace kreg::serve {

/// A 128-bit content fingerprint: two independent 64-bit digests of the
/// same byte stream, mixed with different seeds. The dual-digest idea is
/// borrowed from the static verifier's dual-dataset probes (spmd/verify):
/// one 64-bit hash can collide plausibly at scale, but an aliasing pair
/// must collide in *both* independently-seeded digests simultaneously —
/// and the cache key additionally carries the exact lengths, so a full
/// collision still has to match element counts (see the collision
/// regression test in serve_test).
struct Fingerprint128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Fingerprint128&,
                         const Fingerprint128&) = default;
};

/// Order-sensitive digest of a double span: hashes the exact IEEE-754 bit
/// patterns in sequence, so a permuted grid fingerprints differently and
/// -0.0 differs from +0.0 (bitwise semantics, matching the bitwise result
/// contract the cache serves).
Fingerprint128 fingerprint_span(std::span<const double> values);

/// Digest of a size_t span (neighbour grids).
Fingerprint128 fingerprint_counts(std::span<const std::size_t> values);

/// Content fingerprint of a dataset: length, every X bit pattern, a domain
/// separator, then every Y bit pattern — so two datasets with the same X
/// but different Y fingerprint differently (the CV profile depends on
/// both), as do X/Y swaps.
Fingerprint128 fingerprint_dataset(const data::Dataset& data);

}  // namespace kreg::serve
