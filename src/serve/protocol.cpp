#include "serve/protocol.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/kernels.hpp"
#include "core/streaming.hpp"

namespace kreg::serve {

namespace {

std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos])) != 0) {
      ++pos;
    }
    std::size_t end = pos;
    while (end < line.size() &&
           std::isspace(static_cast<unsigned char>(line[end])) == 0) {
      ++end;
    }
    if (end > pos) {
      tokens.push_back(line.substr(pos, end - pos));
    }
    pos = end;
  }
  return tokens;
}

std::uint64_t parse_u64(std::string_view text, const char* what) {
  if (text.empty()) {
    throw std::invalid_argument(std::string("parse_request: empty ") + what);
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw std::invalid_argument(std::string("parse_request: bad ") + what +
                                " '" + std::string(text) + "'");
  }
  return value;
}

double parse_double(std::string_view text, const char* what) {
  if (text.empty()) {
    throw std::invalid_argument(std::string("parse_request: empty ") + what);
  }
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw std::invalid_argument(std::string("parse_request: bad ") + what +
                                " '" + std::string(text) + "'");
  }
  return value;
}

GridSpec parse_grid_spec(std::string_view text) {
  const std::size_t first = text.find(':');
  const std::size_t second =
      first == std::string_view::npos ? first : text.find(':', first + 1);
  if (first == std::string_view::npos || second == std::string_view::npos ||
      text.find(':', second + 1) != std::string_view::npos) {
    throw std::invalid_argument("parse_request: grid spec '" +
                                std::string(text) +
                                "' is not of the form lo:hi:count");
  }
  GridSpec spec;
  spec.set = true;
  spec.lo = parse_double(text.substr(0, first), "grid lo");
  spec.hi = parse_double(text.substr(first + 1, second - first - 1), "grid hi");
  const std::uint64_t count = parse_u64(text.substr(second + 1), "grid count");
  if (count == 0) {
    throw std::invalid_argument("parse_request: grid count must be positive");
  }
  spec.count = static_cast<std::size_t>(count);
  return spec;
}

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

KernelType parse_kernel(std::string_view text) {
  for (const KernelType kernel : kAllKernels) {
    if (text == to_string(kernel)) {
      return kernel;
    }
  }
  std::string valid;
  for (const KernelType kernel : kAllKernels) {
    if (!valid.empty()) {
      valid += ", ";
    }
    valid += std::string(to_string(kernel));
  }
  throw std::invalid_argument("parse_kernel: unknown kernel '" +
                              std::string(text) + "' (expected one of " +
                              valid + ")");
}

Precision parse_precision(std::string_view text) {
  if (text == "float" || text == "single") {
    return Precision::kFloat;
  }
  if (text == "double") {
    return Precision::kDouble;
  }
  throw std::invalid_argument("parse_precision: unknown precision '" +
                              std::string(text) +
                              "' (expected float, single, or double)");
}

Request parse_request(std::string_view line) {
  const std::vector<std::string_view> tokens = split_tokens(line);
  if (tokens.empty()) {
    throw std::invalid_argument("parse_request: empty request line");
  }
  Request request;
  const std::string_view verb = tokens.front();
  if (verb == "ping") {
    request.kind = RequestKind::kPing;
  } else if (verb == "stats") {
    request.kind = RequestKind::kStats;
  } else if (verb == "shutdown") {
    request.kind = RequestKind::kShutdown;
  } else if (verb == "select") {
    request.kind = RequestKind::kSelect;
  } else {
    throw std::invalid_argument("parse_request: unknown verb '" +
                                std::string(verb) +
                                "' (expected select, stats, ping, shutdown)");
  }
  if (request.kind != RequestKind::kSelect) {
    if (tokens.size() > 1) {
      throw std::invalid_argument("parse_request: '" + std::string(verb) +
                                  "' takes no arguments");
    }
    return request;
  }
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 > token.size()) {
      throw std::invalid_argument("parse_request: expected key=value, got '" +
                                  std::string(token) + "'");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "estimator") {
      request.estimator = parse_estimator(value);
    } else if (key == "kernel") {
      request.kernel = parse_kernel(value);
    } else if (key == "precision") {
      request.precision = parse_precision(value);
    } else if (key == "dgp") {
      if (value.empty()) {
        throw std::invalid_argument("parse_request: empty dgp name");
      }
      request.dgp = std::string(value);
    } else if (key == "n") {
      const std::uint64_t n = parse_u64(value, "n");
      if (n < 2) {
        throw std::invalid_argument("parse_request: n must be >= 2");
      }
      request.n = static_cast<std::size_t>(n);
    } else if (key == "seed") {
      request.seed = parse_u64(value, "seed");
    } else if (key == "grid") {
      request.grid = parse_grid_spec(value);
    } else if (key == "backend") {
      request.backend = parse_job_backend(value);
    } else if (key == "lane") {
      request.lane_width =
          static_cast<std::size_t>(parse_u64(value, "lane width"));
    } else if (key == "budget") {
      request.budget_bytes = parse_memory_budget(value);
    } else {
      throw std::invalid_argument("parse_request: unknown key '" +
                                  std::string(key) + "'");
    }
  }
  return request;
}

std::string format_outcome(const JobOutcome& outcome) {
  if (!outcome.ok) {
    return "error id=" + std::to_string(outcome.id) + " " + outcome.error;
  }
  return "ok id=" + std::to_string(outcome.id) +
         " selected=" + format_double(outcome.profile.selected) +
         " cv=" + format_double(outcome.profile.cv_score) +
         " argmin=" + std::to_string(outcome.profile.argmin) +
         " grid=" + std::to_string(outcome.profile.grid.size()) +
         " cache=" + (outcome.cache_hit ? "hit" : "miss") +
         " method=" + outcome.profile.method;
}

std::string format_stats(const SchedulerStats& stats,
                         const CacheStats& cache) {
  return "ok submitted=" + std::to_string(stats.submitted) +
         " completed=" + std::to_string(stats.completed) +
         " failed=" + std::to_string(stats.failed) +
         " cache_hits=" + std::to_string(stats.cache_hits) +
         " cache_misses=" + std::to_string(stats.cache_misses) +
         " coalesced=" + std::to_string(stats.coalesced) +
         " waves=" + std::to_string(stats.waves) +
         " launches=" + std::to_string(stats.launches) +
         " co_scheduled=" + std::to_string(stats.co_scheduled) +
         " deferrals=" + std::to_string(stats.deferrals) +
         " evictions=" + std::to_string(cache.evictions) +
         " resident_entries=" + std::to_string(cache.resident_entries);
}

std::string format_error(const std::string& message) {
  return "error " + message;
}

}  // namespace kreg::serve
