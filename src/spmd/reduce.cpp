#include "spmd/reduce.hpp"

namespace kreg::spmd {

std::string_view to_string(ReduceVariant variant) noexcept {
  switch (variant) {
    case ReduceVariant::kInterleaved:
      return "interleaved";
    case ReduceVariant::kSequential:
      return "sequential";
  }
  return "unknown";
}

}  // namespace kreg::spmd
