#include "spmd/device_properties.hpp"

#include <stdexcept>

namespace kreg::spmd {

DeviceProperties DeviceProperties::tesla_s10() {
  DeviceProperties p;
  p.name = "Tesla S10 (simulated)";
  p.multiprocessor_count = 30;
  p.cores_per_multiprocessor = 8;
  p.warp_size = 32;
  p.max_threads_per_block = 512;
  p.max_grid_blocks = 65535;
  p.constant_cache_bytes = 8 * 1024;
  p.shared_memory_per_block = 16 * 1024;
  p.global_memory_bytes = 4ULL * 1024 * 1024 * 1024;
  return p;
}

DeviceProperties DeviceProperties::tiny(std::size_t global_bytes) {
  DeviceProperties p;
  p.name = "tiny (simulated)";
  p.multiprocessor_count = 2;
  p.cores_per_multiprocessor = 4;
  p.warp_size = 4;
  p.max_threads_per_block = 64;
  p.max_grid_blocks = 1024;
  p.constant_cache_bytes = 1024;
  p.shared_memory_per_block = 4 * 1024;
  p.global_memory_bytes = global_bytes;
  return p;
}

DeviceProperties::MemoryBudget DeviceProperties::memory_budget()
    const noexcept {
  MemoryBudget budget;
  budget.global_bytes = global_memory_bytes;
  budget.shared_per_block_bytes = shared_memory_per_block;
  budget.constant_bytes = constant_cache_bytes;
  return budget;
}

void DeviceProperties::validate() const {
  if (multiprocessor_count == 0 || cores_per_multiprocessor == 0 ||
      warp_size == 0 || max_threads_per_block == 0 || max_grid_blocks == 0) {
    throw std::invalid_argument(
        "DeviceProperties: execution limits must be nonzero");
  }
  if (constant_cache_bytes == 0 || shared_memory_per_block == 0 ||
      global_memory_bytes == 0) {
    throw std::invalid_argument(
        "DeviceProperties: memory capacities must be nonzero");
  }
}

}  // namespace kreg::spmd
