#include "spmd/device.hpp"

#include <cstdlib>
#include <iostream>
#include <string_view>

namespace kreg::spmd {

namespace {

/// Resolves KREG_SPMD_SANITIZE from the environment (unset/"0"/"off" →
/// disabled, "count"/"log" → counting sink on stderr, anything else →
/// throwing sink). The KREG_SPMD_SANITIZE CMake option compiles the
/// default-unset case to a throwing sink instead.
std::shared_ptr<SanitizerSink> sanitizer_sink_from_env() {
  const char* env = std::getenv("KREG_SPMD_SANITIZE");
  if (env == nullptr) {
#ifdef KREG_SPMD_SANITIZE_DEFAULT
    return std::make_shared<ThrowSink>();
#else
    return nullptr;
#endif
  }
  const std::string_view value(env);
  if (value.empty() || value == "0" || value == "off") {
    return nullptr;
  }
  if (value == "count" || value == "log") {
    return std::make_shared<CountingSink>(&std::cerr);
  }
  return std::make_shared<ThrowSink>();
}

}  // namespace

Device::Device(DeviceProperties props, parallel::ThreadPool* pool)
    : props_(std::move(props)),
      pool_(pool),
      global_(std::make_shared<detail::MemoryLedger>()),
      constant_(std::make_shared<detail::MemoryLedger>()) {
  props_.validate();
  global_->capacity_bytes = props_.global_memory_bytes;
  constant_->capacity_bytes = props_.constant_cache_bytes;
  if (auto sink = sanitizer_sink_from_env()) {
    enable_sanitizer(std::move(sink));
  }
}

Device::~Device() {
  if (sanitizer_) {
    sanitizer_->leak_check(/*may_throw=*/false);
  }
}

void Device::enable_sanitizer(std::shared_ptr<SanitizerSink> sink) {
  sanitizer_ = std::make_shared<detail::SanitizerState>(std::move(sink));
}

std::size_t Device::check_leaks() {
  return sanitizer_ ? sanitizer_->leak_check(/*may_throw=*/true) : 0;
}

void Device::enable_interceptor(
    std::shared_ptr<verify::LaunchInterceptor> hook) {
  if (!sanitizer_) {
    throw LaunchConfigError(
        "enable_interceptor: the verifier records through the sanitizer's "
        "shadows — call enable_sanitizer first");
  }
  interceptor_ = std::move(hook);
}

void Device::charge(const std::shared_ptr<detail::MemoryLedger>& ledger,
                    std::size_t bytes) {
  if (bytes > ledger->available()) {
    throw DeviceAllocError(bytes, ledger->available());
  }
  ledger->allocated_bytes += bytes;
  ledger->peak_bytes = std::max(ledger->peak_bytes, ledger->allocated_bytes);
  ++ledger->allocation_count;
}

void Device::charge_constant(std::size_t bytes) {
  if (bytes > constant_->available()) {
    throw ConstantCapacityError(bytes, constant_->capacity_bytes);
  }
  constant_->allocated_bytes += bytes;
  constant_->peak_bytes =
      std::max(constant_->peak_bytes, constant_->allocated_bytes);
  ++constant_->allocation_count;
}

void Device::validate(const LaunchConfig& cfg,
                      std::size_t shared_bytes) const {
  if (cfg.grid_blocks == 0 || cfg.threads_per_block == 0) {
    throw LaunchConfigError("launch: zero-sized grid or block");
  }
  if (cfg.threads_per_block > props_.max_threads_per_block) {
    throw LaunchConfigError(
        "launch: " + std::to_string(cfg.threads_per_block) +
        " threads per block exceeds device limit of " +
        std::to_string(props_.max_threads_per_block));
  }
  if (cfg.grid_blocks > props_.max_grid_blocks) {
    throw LaunchConfigError("launch: grid of " +
                            std::to_string(cfg.grid_blocks) +
                            " blocks exceeds device limit of " +
                            std::to_string(props_.max_grid_blocks));
  }
  if (shared_bytes > props_.shared_memory_per_block) {
    throw LaunchConfigError(
        "launch: " + std::to_string(shared_bytes) +
        " bytes of shared memory exceeds per-block limit of " +
        std::to_string(props_.shared_memory_per_block));
  }
}

}  // namespace kreg::spmd
