#include "spmd/device.hpp"

namespace kreg::spmd {

Device::Device(DeviceProperties props, parallel::ThreadPool* pool)
    : props_(std::move(props)),
      pool_(pool),
      global_(std::make_shared<detail::MemoryLedger>()),
      constant_(std::make_shared<detail::MemoryLedger>()) {
  props_.validate();
  global_->capacity_bytes = props_.global_memory_bytes;
  constant_->capacity_bytes = props_.constant_cache_bytes;
}

void Device::charge(const std::shared_ptr<detail::MemoryLedger>& ledger,
                    std::size_t bytes) {
  if (bytes > ledger->available()) {
    throw DeviceAllocError(bytes, ledger->available());
  }
  ledger->allocated_bytes += bytes;
  ledger->peak_bytes = std::max(ledger->peak_bytes, ledger->allocated_bytes);
  ++ledger->allocation_count;
}

void Device::charge_constant(std::size_t bytes) {
  if (bytes > constant_->available()) {
    throw ConstantCapacityError(bytes, constant_->capacity_bytes);
  }
  constant_->allocated_bytes += bytes;
  constant_->peak_bytes =
      std::max(constant_->peak_bytes, constant_->allocated_bytes);
  ++constant_->allocation_count;
}

void Device::validate(const LaunchConfig& cfg,
                      std::size_t shared_bytes) const {
  if (cfg.grid_blocks == 0 || cfg.threads_per_block == 0) {
    throw LaunchConfigError("launch: zero-sized grid or block");
  }
  if (cfg.threads_per_block > props_.max_threads_per_block) {
    throw LaunchConfigError(
        "launch: " + std::to_string(cfg.threads_per_block) +
        " threads per block exceeds device limit of " +
        std::to_string(props_.max_threads_per_block));
  }
  if (cfg.grid_blocks > props_.max_grid_blocks) {
    throw LaunchConfigError("launch: grid of " +
                            std::to_string(cfg.grid_blocks) +
                            " blocks exceeds device limit of " +
                            std::to_string(props_.max_grid_blocks));
  }
  if (shared_bytes > props_.shared_memory_per_block) {
    throw LaunchConfigError(
        "launch: " + std::to_string(shared_bytes) +
        " bytes of shared memory exceeds per-block limit of " +
        std::to_string(props_.shared_memory_per_block));
  }
}

}  // namespace kreg::spmd
