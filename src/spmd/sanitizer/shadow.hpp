#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "spmd/sanitizer/report.hpp"

namespace kreg::spmd::detail {

class SanitizerState;
class AllocShadow;

/// Tap interface for the static verifier (src/spmd/verify/): when a
/// recorder is installed on a device's SanitizerState, every instrumented
/// global access (MemRef through a checked MemView) and every shared access
/// and barrier-phase event (SharedRef through a recorder-attached
/// SharedShadow) is forwarded to it before the normal sanitizer processing.
///
/// The verifier drives launches serially, so implementations are called
/// from one thread at a time; they must still cheaply ignore calls made
/// while no launch is being traced (host-side copy_to_host reads, or
/// launches the verifier declined to intercept and the device runs on the
/// pool).
class AccessRecorder {
 public:
  virtual ~AccessRecorder() = default;

  /// A device-side read of `elem` of a checked global allocation.
  virtual void on_global_read(const AllocShadow& shadow, std::size_t elem) = 0;
  /// A device-side write of `elem` of a checked global allocation.
  virtual void on_global_write(const AllocShadow& shadow, std::size_t elem) = 0;
  /// A shared-memory access of `size` bytes at `byte` by `tid` (kNone-like
  /// sentinel outside phases) in `phase` of `block`.
  virtual void on_shared_access(std::size_t block, std::size_t byte,
                                std::size_t size, bool is_write, bool in_phase,
                                std::size_t phase, std::size_t tid) = 0;
  /// A for_each_thread phase opens in `block`. `nested` is true when the
  /// enclosing block body was already inside a phase — i.e. a barrier
  /// guarded by per-thread control flow (`tid` is the thread running it),
  /// which is the barrier-divergence hazard.
  virtual void on_phase_begin(std::size_t block, bool nested,
                              std::size_t tid) = 0;
  virtual void on_phase_end(std::size_t block) = 0;
  virtual void on_set_tid(std::size_t block, std::size_t tid) = 0;
};

/// Valid-bit shadow of one global (or constant) allocation: one byte per
/// element, set on the first write that reaches it (device-side store
/// through a checked view, copy_to_device, or a host-side non-const
/// element access), checked on device-side reads and copy_to_host.
///
/// The shadow is co-owned by the buffer and (weakly) by the device's
/// SanitizerState registry, and pins the state itself so a buffer that
/// outlives its device can still deliver reports.
class AllocShadow {
 public:
  AllocShadow(std::shared_ptr<SanitizerState> state, std::size_t id,
              std::string label, std::size_t elem_size, std::size_t count)
      : state_(std::move(state)),
        id_(id),
        label_(std::move(label)),
        elem_size_(elem_size),
        count_(count),
        valid_(count > 0 ? std::make_unique<std::atomic<std::uint8_t>[]>(count)
                         : nullptr) {
    for (std::size_t i = 0; i < count_; ++i) {
      valid_[i].store(0, std::memory_order_relaxed);
    }
  }

  std::size_t id() const noexcept { return id_; }
  const std::string& label() const noexcept { return label_; }
  std::size_t count() const noexcept { return count_; }
  std::size_t elem_size() const noexcept { return elem_size_; }
  std::size_t size_bytes() const noexcept { return count_ * elem_size_; }

  SanitizerState& state() noexcept { return *state_; }

  void mark_valid(std::size_t elem) noexcept {
    valid_[elem].store(1, std::memory_order_relaxed);
  }
  void mark_all_valid() noexcept {
    for (std::size_t i = 0; i < count_; ++i) {
      valid_[i].store(1, std::memory_order_relaxed);
    }
  }
  bool is_valid(std::size_t elem) const noexcept {
    return valid_[elem].load(std::memory_order_relaxed) != 0;
  }
  /// First never-written element, or nullopt when fully initialized.
  std::optional<std::size_t> first_invalid() const noexcept {
    for (std::size_t i = 0; i < count_; ++i) {
      if (!is_valid(i)) {
        return i;
      }
    }
    return std::nullopt;
  }

  /// initcheck hook for a device-side read of element `elem`. To keep
  /// non-throwing sinks from flooding, only the first uninitialized read of
  /// each allocation is reported. Forwards to an installed AccessRecorder
  /// first, so the verifier sees reads of still-uninitialized elements too.
  void check_read(std::size_t elem);

  /// Write hook: forwards the access to an installed AccessRecorder, then
  /// marks the element written. MemRef routes every device-side store here.
  void note_write(std::size_t elem);

  /// memcheck hook: index `i` is outside [0, bound). Reports and, when the
  /// sink returns (log-and-count mode), throws LaunchConfigError anyway —
  /// there is no safe element to redirect the access to.
  [[noreturn]] void report_oob(std::size_t i, std::size_t bound,
                               const char* what);

  /// Marks this allocation as already reported by a leak pass so a second
  /// pass (explicit check_leaks() followed by device teardown) stays quiet.
  bool claim_leak_report() noexcept {
    return !leak_reported_.exchange(true, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<SanitizerState> state_;
  std::size_t id_;
  std::string label_;
  std::size_t elem_size_;
  std::size_t count_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> valid_;
  std::atomic<bool> uninit_reported_{false};
  std::atomic<bool> leak_reported_{false};
};

/// Per-device sanitizer state: the sink, the registry of live global
/// allocations (weak, so RAII release is the liveness signal), hazard
/// counters, and the name of the kernel currently launching.
class SanitizerState : public std::enable_shared_from_this<SanitizerState> {
 public:
  explicit SanitizerState(std::shared_ptr<SanitizerSink> sink)
      : sink_(std::move(sink)) {}

  SanitizerSink& sink() noexcept { return *sink_; }

  /// Counts the finding, then hands it to the sink (which may throw).
  void deliver(const SanitizerReport& report) {
    count(report.kind);
    sink_->report(report);
  }
  /// Destructor-safe delivery: still counted, sink exceptions swallowed.
  void deliver_noexcept(const SanitizerReport& report) noexcept {
    count(report.kind);
    try {
      sink_->report(report);
    } catch (...) {  // teardown path must not throw
    }
  }

  std::shared_ptr<AllocShadow> register_alloc(std::string label,
                                              std::size_t elem_size,
                                              std::size_t count) {
    std::lock_guard lock(mutex_);
    auto shadow = std::make_shared<AllocShadow>(
        shared_from_this(), next_id_++, std::move(label), elem_size, count);
    allocs_.push_back(shadow);
    return shadow;
  }

  /// Number of registered allocations whose buffers are still alive.
  std::size_t live_allocations() const {
    std::lock_guard lock(mutex_);
    std::size_t live = 0;
    for (const auto& weak : allocs_) {
      if (!weak.expired()) {
        ++live;
      }
    }
    return live;
  }

  /// Reports every live allocation as a leak (each at most once across
  /// repeated passes) and returns how many were still live. `may_throw`
  /// selects deliver() vs the destructor-safe path.
  std::size_t leak_check(bool may_throw) {
    std::vector<std::shared_ptr<AllocShadow>> live;
    {
      std::lock_guard lock(mutex_);
      for (const auto& weak : allocs_) {
        if (auto shadow = weak.lock()) {
          live.push_back(std::move(shadow));
        }
      }
    }
    for (const auto& shadow : live) {
      if (!shadow->claim_leak_report()) {
        continue;
      }
      SanitizerReport report;
      report.kind = HazardKind::kLeak;
      report.object = shadow->label();
      report.byte_offset = 0;
      report.message = "allocation '" + shadow->label() + "' (" +
                       std::to_string(shadow->size_bytes()) +
                       " bytes) still live at device teardown";
      if (may_throw) {
        deliver(report);
      } else {
        deliver_noexcept(report);
      }
    }
    return live.size();
  }

  std::size_t races_detected() const noexcept { return load(counts_[0]); }
  std::size_t oobs_detected() const noexcept { return load(counts_[1]); }
  std::size_t uninits_detected() const noexcept { return load(counts_[2]); }
  std::size_t leaks_detected() const noexcept { return load(counts_[3]); }
  std::size_t findings() const noexcept {
    return races_detected() + oobs_detected() + uninits_detected() +
           leaks_detected();
  }

  /// Installs (or clears, with nullptr) the verifier's access tap. Must be
  /// called while no launch is in flight; the recorder is read on every
  /// instrumented access.
  void set_recorder(AccessRecorder* recorder) noexcept {
    recorder_.store(recorder, std::memory_order_release);
  }
  AccessRecorder* recorder() const noexcept {
    return recorder_.load(std::memory_order_acquire);
  }

  void set_current_kernel(const char* name) noexcept {
    current_kernel_.store(name, std::memory_order_relaxed);
  }
  /// Name of the kernel currently launching, or "<host>" between launches.
  const char* current_kernel() const noexcept {
    const char* name = current_kernel_.load(std::memory_order_relaxed);
    return name != nullptr ? name : "<host>";
  }

 private:
  static std::size_t load(const std::atomic<std::size_t>& c) noexcept {
    return c.load(std::memory_order_relaxed);
  }
  void count(HazardKind kind) noexcept {
    counts_[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
  }

  std::shared_ptr<SanitizerSink> sink_;
  mutable std::mutex mutex_;
  std::vector<std::weak_ptr<AllocShadow>> allocs_;
  std::size_t next_id_ = 1;
  std::atomic<std::size_t> counts_[4] = {};
  std::atomic<const char*> current_kernel_{nullptr};
  std::atomic<AccessRecorder*> recorder_{nullptr};
};

inline void AllocShadow::note_write(std::size_t elem) {
  if (AccessRecorder* recorder = state_->recorder()) {
    recorder->on_global_write(*this, elem);
  }
  mark_valid(elem);
}

/// RAII setter for SanitizerState::current_kernel across a launch.
class KernelScope {
 public:
  KernelScope(SanitizerState* state, const char* name) noexcept
      : state_(state) {
    if (state_ != nullptr) {
      state_->set_current_kernel(name);
    }
  }
  ~KernelScope() {
    if (state_ != nullptr) {
      state_->set_current_kernel(nullptr);
    }
  }
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  SanitizerState* state_;
};

/// Byte-granular racecheck shadow of one block's shared memory for one
/// cooperative launch.
///
/// The hazard model matches the simulator's barrier semantics: each
/// BlockCtx::for_each_thread call is one phase, returning from it is the
/// barrier, and within a phase the thread schedule is unspecified. Hence
/// any shared-memory byte written by tid A and touched (read: RAW, write:
/// WAW) by a different tid B in the *same* phase — or read by A then
/// written by B (WAR) — is a data race on a conforming parallel schedule,
/// even though the sequential simulator happens to pick one legal order.
/// Cross-phase communication is ordered by the barrier and never flagged.
///
/// Cells are epoch-stamped per phase instead of cleared, so a phase costs
/// O(bytes actually touched), not O(shared bytes).
class SharedShadow {
 public:
  static constexpr std::uint16_t kNone = 0xFFFF;

  SharedShadow(SanitizerState* state, const char* kernel,
               std::size_t block_idx, std::size_t bytes)
      : state_(state), kernel_(kernel), block_(block_idx), cells_(bytes) {}

  std::size_t phase() const noexcept { return phase_; }
  bool in_phase() const noexcept { return in_phase_; }

  /// Attaches the verifier's tap: every access and phase event of this
  /// block is forwarded before the normal racecheck processing.
  void set_recorder(AccessRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

  void begin_phase() noexcept {
    if (recorder_ != nullptr) {
      recorder_->on_phase_begin(block_, in_phase_, tid_);
    }
    ++epoch_;
    phase_ = phases_run_++;
    in_phase_ = true;
  }
  void end_phase() noexcept {
    in_phase_ = false;
    if (recorder_ != nullptr) {
      recorder_->on_phase_end(block_);
    }
  }
  void set_tid(std::size_t tid) noexcept {
    tid_ = static_cast<std::uint16_t>(tid);
    if (recorder_ != nullptr) {
      recorder_->on_set_tid(block_, tid);
    }
  }

  /// Records one access of `size` bytes at `offset` by the current tid.
  /// Reports at most one hazard per access (the first offending byte).
  void record(std::size_t offset, std::size_t size, bool is_write) {
    if (recorder_ != nullptr) {
      recorder_->on_shared_access(block_, offset, size, is_write, in_phase_,
                                  phase_, tid_);
    }
    if (!in_phase_) {
      return;  // block prologue/epilogue code: barrier-ordered, no hazards
    }
    bool reported = false;
    for (std::size_t i = 0; i < size; ++i) {
      Cell& cell = cells_[offset + i];
      if (cell.epoch != epoch_) {
        cell = Cell{epoch_, kNone, kNone, kNone};
      }
      if (!reported) {
        if (is_write) {
          if (cell.writer != kNone && cell.writer != tid_) {
            reported = true;
            report_race("WAW", cell.writer, offset + i);
          } else if (cell.reader1 != kNone && cell.reader1 != tid_) {
            reported = true;
            report_race("WAR", cell.reader1, offset + i);
          } else if (cell.reader2 != kNone && cell.reader2 != tid_) {
            reported = true;
            report_race("WAR", cell.reader2, offset + i);
          }
        } else if (cell.writer != kNone && cell.writer != tid_) {
          reported = true;
          report_race("RAW", cell.writer, offset + i);
        }
      }
      if (is_write) {
        if (cell.writer == kNone) {
          cell.writer = tid_;
        }
      } else if (cell.reader1 == kNone) {
        cell.reader1 = tid_;
      } else if (cell.reader1 != tid_ && cell.reader2 == kNone) {
        cell.reader2 = tid_;
      }
    }
  }

  /// memcheck hook for an out-of-range shared access; always throws (via
  /// the sink or, for log-and-count sinks, LaunchConfigError).
  [[noreturn]] void report_oob(std::size_t byte_offset, std::string what) {
    SanitizerReport report;
    report.kind = HazardKind::kOob;
    report.kernel = kernel_;
    report.object = "shared";
    report.phase = phase_;
    report.block = block_;
    report.tid_b = in_phase_ ? tid_ : SanitizerReport::kNoTid;
    report.byte_offset = byte_offset;
    report.message = std::move(what);
    state_->deliver(report);
    throw LaunchConfigError("shared-memory out-of-bounds access in kernel '" +
                            std::string(kernel_) + "'");
  }

 private:
  struct Cell {
    std::uint32_t epoch = 0;
    std::uint16_t writer = kNone;
    std::uint16_t reader1 = kNone;
    std::uint16_t reader2 = kNone;
  };

  void report_race(const char* hazard, std::uint16_t earlier,
                   std::size_t byte) {
    SanitizerReport report;
    report.kind = HazardKind::kRace;
    report.kernel = kernel_;
    report.object = "shared";
    report.phase = phase_;
    report.block = block_;
    report.tid_a = earlier;
    report.tid_b = tid_;
    report.byte_offset = byte;
    report.message = std::string(hazard) + " hazard on shared byte " +
                     std::to_string(byte) + ": tids " +
                     std::to_string(earlier) + " and " + std::to_string(tid_) +
                     " touch it inside phase " + std::to_string(phase_) +
                     " (missing barrier?)";
    state_->deliver(report);
  }

  SanitizerState* state_;
  const char* kernel_;
  std::size_t block_;
  AccessRecorder* recorder_ = nullptr;
  std::vector<Cell> cells_;
  std::uint32_t epoch_ = 0;
  std::size_t phase_ = 0;
  std::size_t phases_run_ = 0;
  std::uint16_t tid_ = kNone;
  bool in_phase_ = false;
};

}  // namespace kreg::spmd::detail
