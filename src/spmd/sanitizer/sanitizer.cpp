#include <sstream>
#include <string>
#include <utility>

#include "spmd/sanitizer/access.hpp"
#include "spmd/sanitizer/report.hpp"
#include "spmd/sanitizer/shadow.hpp"

namespace kreg::spmd {

std::string_view to_string(HazardKind kind) noexcept {
  switch (kind) {
    case HazardKind::kRace:
      return "racecheck";
    case HazardKind::kOob:
      return "memcheck";
    case HazardKind::kUninit:
      return "initcheck";
    case HazardKind::kLeak:
      return "leakcheck";
  }
  return "unknown";
}

std::string SanitizerReport::format() const {
  std::ostringstream out;
  out << "kreg-sanitizer [" << to_string(kind) << "] kernel=" << kernel
      << " object=" << (object.empty() ? "<none>" : object);
  if (kind == HazardKind::kRace || tid_a != kNoTid || tid_b != kNoTid) {
    out << " phase=" << phase << " block=" << block;
  }
  if (tid_a != kNoTid && tid_b != kNoTid) {
    out << " tids=" << tid_a << "," << tid_b;
  } else if (tid_b != kNoTid) {
    out << " tid=" << tid_b;
  }
  out << " byte=" << byte_offset << ": " << message;
  return out.str();
}

SanitizerError::SanitizerError(SanitizerReport report)
    : DeviceError(report.format()), report_(std::move(report)) {}

void ThrowSink::report(const SanitizerReport& report) {
  throw SanitizerError(report);
}

void CountingSink::report(const SanitizerReport& report) {
  std::lock_guard lock(mutex_);
  ++counts_[static_cast<std::size_t>(report.kind)];
  if (kept_.size() < max_kept_) {
    kept_.push_back(report);
  }
  if (log_ != nullptr) {
    *log_ << report.format() << '\n';
  }
}

std::size_t CountingSink::count(HazardKind kind) const {
  std::lock_guard lock(mutex_);
  return counts_[static_cast<std::size_t>(kind)];
}

std::size_t CountingSink::total() const {
  std::lock_guard lock(mutex_);
  std::size_t sum = 0;
  for (std::size_t c : counts_) {
    sum += c;
  }
  return sum;
}

std::vector<SanitizerReport> CountingSink::reports() const {
  std::lock_guard lock(mutex_);
  return kept_;
}

namespace detail {

void AllocShadow::check_read(std::size_t elem) {
  if (AccessRecorder* recorder = state_->recorder()) {
    recorder->on_global_read(*this, elem);
  }
  if (is_valid(elem)) {
    return;
  }
  // One report per allocation: with a counting sink a single uninitialized
  // buffer read in a hot kernel would otherwise emit n reports.
  if (uninit_reported_.exchange(true, std::memory_order_relaxed)) {
    return;
  }
  SanitizerReport report;
  report.kind = HazardKind::kUninit;
  report.kernel = state_->current_kernel();
  report.object = label_;
  report.byte_offset = elem * elem_size_;
  report.message = "read of never-written element " + std::to_string(elem) +
                   " of allocation '" + label_ + "'";
  state_->deliver(report);
}

void AllocShadow::report_oob(std::size_t i, std::size_t bound,
                             const char* what) {
  SanitizerReport report;
  report.kind = HazardKind::kOob;
  report.kernel = state_->current_kernel();
  report.object = label_;
  report.byte_offset = i * elem_size_;
  report.message = std::string(what) + " " + std::to_string(i) +
                   " out of range [0, " + std::to_string(bound) +
                   ") in allocation '" + label_ + "'";
  state_->deliver(report);
  // A counting sink returns; there is still no valid element to hand back,
  // so out-of-bounds escalates to the device's launch-error type.
  throw LaunchConfigError("out-of-bounds access to allocation '" + label_ +
                          "'");
}

}  // namespace detail
}  // namespace kreg::spmd
