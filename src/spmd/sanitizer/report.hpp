#pragma once

#include <array>
#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "spmd/errors.hpp"

namespace kreg::spmd {

/// The hazard classes the sanitizer layer detects, mirroring
/// `compute-sanitizer --tool racecheck|memcheck|initcheck` plus the leak
/// report compute-sanitizer folds into memcheck:
///   kRace   racecheck: two distinct tids touch the same shared-memory byte
///           inside one barrier-delimited phase (RAW / WAR / WAW).
///   kOob    memcheck: out-of-bounds index into a device buffer or shared
///           span, a shared_as<T>() request over the launch's shared bytes,
///           or use of a moved-from buffer.
///   kUninit initcheck: a kernel (or copy_to_host) reads global memory no
///           write ever reached.
///   kLeak   device teardown with live global allocations.
enum class HazardKind { kRace, kOob, kUninit, kLeak };

std::string_view to_string(HazardKind kind) noexcept;

/// One sanitizer finding. Fields that do not apply to a hazard kind keep
/// their sentinel values (kNoTid / 0 / empty).
struct SanitizerReport {
  static constexpr std::size_t kNoTid = static_cast<std::size_t>(-1);

  HazardKind kind = HazardKind::kRace;
  /// Kernel name passed at launch ("<host>" for host-side accesses).
  std::string kernel = "<host>";
  /// The object involved: a buffer's allocation label, or "shared".
  std::string object;
  /// for_each_thread phase index within the launch (races / shared OOB).
  std::size_t phase = 0;
  std::size_t block = 0;
  /// Offending tids: for races, tid_a made the earlier access and tid_b the
  /// later conflicting one; for OOB/uninit inside a phase, tid_b is the
  /// accessing thread.
  std::size_t tid_a = kNoTid;
  std::size_t tid_b = kNoTid;
  /// Byte offset of the access within the object.
  std::size_t byte_offset = 0;
  std::string message;

  /// "kreg-sanitizer [racecheck] ..." one-line rendering.
  std::string format() const;
};

/// Thrown by ThrowSink (the testing sink): a sanitizer finding as a
/// catchable device error carrying the structured report.
class SanitizerError : public DeviceError {
 public:
  explicit SanitizerError(SanitizerReport report);
  const SanitizerReport& report() const noexcept { return report_; }

 private:
  SanitizerReport report_;
};

/// Destination for sanitizer findings. Must be safe to call from multiple
/// device worker threads concurrently.
class SanitizerSink {
 public:
  virtual ~SanitizerSink() = default;
  virtual void report(const SanitizerReport& report) = 0;
};

/// Test sink: every finding throws SanitizerError (the exception surfaces
/// on the launching thread, like compute-sanitizer's default abort).
class ThrowSink final : public SanitizerSink {
 public:
  void report(const SanitizerReport& report) override;
};

/// Bench sink: counts findings per kind, keeps the first `max_kept` reports
/// for inspection, and optionally logs each one to a stream.
class CountingSink final : public SanitizerSink {
 public:
  explicit CountingSink(std::ostream* log = nullptr, std::size_t max_kept = 64)
      : log_(log), max_kept_(max_kept) {}

  void report(const SanitizerReport& report) override;

  std::size_t count(HazardKind kind) const;
  std::size_t total() const;
  std::vector<SanitizerReport> reports() const;

 private:
  mutable std::mutex mutex_;
  std::array<std::size_t, 4> counts_{};
  std::vector<SanitizerReport> kept_;
  std::ostream* log_;
  std::size_t max_kept_;
};

}  // namespace kreg::spmd
