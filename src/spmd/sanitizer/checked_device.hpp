#pragma once

#include <memory>
#include <utility>

#include "spmd/device.hpp"
#include "spmd/sanitizer/report.hpp"

namespace kreg::spmd {

/// Drop-in replacement for Device with the sanitizer always on — the
/// simulator's `compute-sanitizer ./app`: racecheck over shared memory,
/// memcheck on buffer/shared accessors, initcheck valid-bit shadows and a
/// teardown leak scan. The API is exactly Device's, so any code templated
/// on or referencing Device runs unchanged.
///
/// Default sink is ThrowSink (findings surface as SanitizerError on the
/// launching thread — the testing mode); pass a CountingSink to
/// log-and-count instead (the bench mode).
class CheckedDevice : public Device {
 public:
  explicit CheckedDevice(DeviceProperties props = DeviceProperties::tesla_s10(),
                         parallel::ThreadPool* pool = nullptr,
                         std::shared_ptr<SanitizerSink> sink = nullptr)
      : Device(std::move(props), pool) {
    enable_sanitizer(sink != nullptr ? std::move(sink)
                                     : std::make_shared<ThrowSink>());
  }
};

}  // namespace kreg::spmd
