#pragma once

#include <cassert>
#include <cstddef>
#include <string>
#include <type_traits>

#include "spmd/sanitizer/shadow.hpp"

namespace kreg::spmd {

/// Proxy reference to one element of a checked global allocation.
///
/// Reads (the implicit conversion to the value type) run the initcheck
/// valid-bit lookup; writes (assignment / compound assignment) mark the
/// element written. With a null shadow the proxy degrades to a raw
/// pointer dereference, so the same algorithm code runs checked and
/// unchecked. Copy assignment copies the *value* across — a proxy never
/// rebinds, exactly like std::vector<bool>::reference.
template <class T>
class MemRef {
 public:
  using value_type = std::remove_const_t<T>;

  MemRef(T* ptr, detail::AllocShadow* shadow, std::size_t elem) noexcept
      : ptr_(ptr), shadow_(shadow), elem_(elem) {}

  operator value_type() const {  // NOLINT(google-explicit-constructor)
    if (shadow_ != nullptr) {
      shadow_->check_read(elem_);
    }
    return *ptr_;
  }

  MemRef& operator=(const value_type& v) {
    *ptr_ = v;
    if (shadow_ != nullptr) {
      shadow_->note_write(elem_);
    }
    return *this;
  }
  MemRef& operator=(const MemRef& other) {
    return *this = static_cast<value_type>(other);
  }

  MemRef& operator+=(const value_type& v) {
    if (shadow_ != nullptr) {
      shadow_->check_read(elem_);
    }
    *ptr_ += v;
    if (shadow_ != nullptr) {
      shadow_->note_write(elem_);
    }
    return *this;
  }

 private:
  T* ptr_;
  detail::AllocShadow* shadow_;
  std::size_t elem_;
};

/// Bounds- and initcheck-instrumented window over a checked global
/// allocation — the device-side counterpart of DeviceBuffer::span().
/// Indexing returns a MemRef proxy; an out-of-range index reports a
/// memcheck OOB (and throws) when a shadow is attached, and asserts like
/// the raw span path otherwise.
template <class T>
class MemView {
 public:
  using value_type = std::remove_const_t<T>;

  MemView() = default;
  MemView(T* data, std::size_t size, detail::AllocShadow* shadow) noexcept
      : data_(data), size_(size), shadow_(shadow) {}

  /// MemView<T> → MemView<const T>.
  template <class U = T,
            class = std::enable_if_t<std::is_const_v<U>>>
  MemView(const MemView<value_type>& other) noexcept  // NOLINT
      : data_(other.data()), size_(other.size()), shadow_(other.shadow()) {
    elem_offset_ = other.elem_offset_;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  T* data() const noexcept { return data_; }
  detail::AllocShadow* shadow() const noexcept { return shadow_; }

  MemRef<T> operator[](std::size_t i) const {
    if (i >= size_) {
      if (shadow_ != nullptr) {
        shadow_->report_oob(elem_offset_ + i, elem_offset_ + size_,
                            "buffer index");
      }
      assert(i < size_ && "MemView index out of range");
    }
    return MemRef<T>(data_ + i, shadow_, elem_offset_ + i);
  }

  MemView subview(std::size_t offset, std::size_t count) const {
    if (offset + count > size_) {
      if (shadow_ != nullptr) {
        shadow_->report_oob(offset + count, size_, "buffer subview");
      }
      assert(offset + count <= size_ && "MemView subview out of range");
    }
    // Element indices in the shadow stay absolute only for a full view;
    // subviews are windows over the same storage, so the shadow is carried
    // with an element offset baked into the proxies.
    MemView v(data_ + offset, count, shadow_);
    v.elem_offset_ = elem_offset_ + offset;
    return v;
  }

 private:
  template <class>
  friend class MemView;

  T* data_ = nullptr;
  std::size_t size_ = 0;
  detail::AllocShadow* shadow_ = nullptr;
  std::size_t elem_offset_ = 0;
};

/// Proxy reference to one element of checked shared memory: every read and
/// write lands in the block's per-phase racecheck shadow.
template <class T>
class SharedRef {
 public:
  using value_type = std::remove_const_t<T>;

  SharedRef(T* ptr, detail::SharedShadow* shadow,
            std::size_t byte_offset) noexcept
      : ptr_(ptr), shadow_(shadow), byte_(byte_offset) {}

  operator value_type() const {  // NOLINT(google-explicit-constructor)
    if (shadow_ != nullptr) {
      shadow_->record(byte_, sizeof(T), /*is_write=*/false);
    }
    return *ptr_;
  }

  SharedRef& operator=(const value_type& v) {
    if (shadow_ != nullptr) {
      shadow_->record(byte_, sizeof(T), /*is_write=*/true);
    }
    *ptr_ = v;
    return *this;
  }
  SharedRef& operator=(const SharedRef& other) {
    return *this = static_cast<value_type>(other);
  }

  SharedRef& operator+=(const value_type& v) {
    if (shadow_ != nullptr) {
      shadow_->record(byte_, sizeof(T), /*is_write=*/false);
      shadow_->record(byte_, sizeof(T), /*is_write=*/true);
    }
    *ptr_ += v;
    return *this;
  }

 private:
  T* ptr_;
  detail::SharedShadow* shadow_;
  std::size_t byte_;
};

/// The view BlockCtx::shared_as<T>() returns: shared memory reinterpreted
/// as T with racecheck recording and index bounds checks. With a null
/// shadow (plain Device) the checks reduce to the debug assert.
template <class T>
class SharedSpan {
 public:
  SharedSpan() = default;
  SharedSpan(T* data, std::size_t count, detail::SharedShadow* shadow,
             std::size_t base_byte_offset) noexcept
      : data_(data), count_(count), shadow_(shadow), base_(base_byte_offset) {}

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  T* data() const noexcept { return data_; }

  SharedRef<T> operator[](std::size_t i) const {
    if (i >= count_) {
      if (shadow_ != nullptr) {
        shadow_->report_oob(
            base_ + i * sizeof(T),
            "shared index " + std::to_string(i) + " out of range [0, " +
                std::to_string(count_) + ")");
      }
      assert(i < count_ && "shared index out of range");
    }
    return SharedRef<T>(data_ + i, shadow_, base_ + i * sizeof(T));
  }

  SharedSpan subspan(std::size_t offset, std::size_t count) const {
    if (offset + count > count_) {
      if (shadow_ != nullptr) {
        shadow_->report_oob(base_ + offset * sizeof(T),
                            "shared subspan out of range");
      }
      assert(offset + count <= count_ && "shared subspan out of range");
    }
    return SharedSpan(data_ + offset, count, shadow_,
                      base_ + offset * sizeof(T));
  }

 private:
  T* data_ = nullptr;
  std::size_t count_ = 0;
  detail::SharedShadow* shadow_ = nullptr;
  std::size_t base_ = 0;
};

}  // namespace kreg::spmd
