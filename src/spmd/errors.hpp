#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace kreg::spmd {

/// Base class of every simulated-device failure.
class DeviceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Global-memory allocation failure — the simulator's analogue of
/// cudaMalloc returning cudaErrorMemoryAllocation. The paper hits this for
/// n > 20,000 because the algorithm stores two n×n matrices in device
/// memory (§IV-A, §V).
class DeviceAllocError : public DeviceError {
 public:
  DeviceAllocError(std::size_t requested, std::size_t available)
      : DeviceError("device global memory exhausted: requested " +
                    std::to_string(requested) + " bytes, " +
                    std::to_string(available) + " available"),
        requested_bytes(requested),
        available_bytes(available) {}

  std::size_t requested_bytes;
  std::size_t available_bytes;
};

/// Constant-memory capacity failure — the paper's 8 KB constant-cache
/// working set caps the bandwidth grid at 2,048 floats (§IV-A).
class ConstantCapacityError : public DeviceError {
 public:
  ConstantCapacityError(std::size_t requested, std::size_t capacity)
      : DeviceError("device constant memory exceeded: requested " +
                    std::to_string(requested) + " bytes of " +
                    std::to_string(capacity)),
        requested_bytes(requested),
        capacity_bytes(capacity) {}

  std::size_t requested_bytes;
  std::size_t capacity_bytes;
};

/// Invalid launch configuration (zero dimensions, block too large, shared
/// memory request over the per-block limit, …).
class LaunchConfigError : public DeviceError {
 public:
  using DeviceError::DeviceError;
};

}  // namespace kreg::spmd
