#pragma once

#include <cstddef>
#include <string>

namespace kreg::spmd {

/// Capability description of a simulated SPMD device.
///
/// The defaults mirror the paper's hardware: a Tesla S10-class part with 240
/// streaming cores, 4 GB of global memory, a 512-thread block limit, and the
/// 8 KB constant-memory cache working set that caps the bandwidth grid at
/// 2,048 single-precision values (paper §IV-A). The simulator enforces these
/// limits so the paper's capacity behaviour — including the n > 20,000
/// allocation failure — reproduces exactly.
struct DeviceProperties {
  std::string name = "sim";
  std::size_t multiprocessor_count = 30;
  std::size_t cores_per_multiprocessor = 8;
  std::size_t warp_size = 32;
  std::size_t max_threads_per_block = 512;
  std::size_t max_grid_blocks = 65535;
  std::size_t constant_cache_bytes = 8 * 1024;
  std::size_t shared_memory_per_block = 16 * 1024;
  std::size_t global_memory_bytes = 4ULL * 1024 * 1024 * 1024;

  std::size_t total_cores() const noexcept {
    return multiprocessor_count * cores_per_multiprocessor;
  }

  /// The memory budgets a planner sizes against, in one query — global
  /// memory for k-block streaming plans, shared memory for cooperative
  /// launches, constant memory for the bandwidth grid. Selectors and
  /// benches consult this instead of re-deriving the capacities from
  /// ad-hoc constants (the 4 GB / 8 KB literals of the paper's hardware).
  struct MemoryBudget {
    std::size_t global_bytes = 0;
    std::size_t shared_per_block_bytes = 0;
    std::size_t constant_bytes = 0;
  };
  MemoryBudget memory_budget() const noexcept;

  /// The paper's GPU: one Tesla S10 module (240 cores, 4 GB).
  static DeviceProperties tesla_s10();

  /// A small-memory configuration for tests that need to trigger
  /// DeviceAllocError without allocating gigabytes on the host.
  static DeviceProperties tiny(std::size_t global_bytes);

  /// Validates internal consistency (nonzero limits); throws
  /// std::invalid_argument otherwise.
  void validate() const;
};

}  // namespace kreg::spmd
