#include "spmd/verify/affine.hpp"

#include <cstdlib>
#include <utility>

namespace kreg::spmd::verify {

std::optional<Domain> domain_from_ids(const std::vector<long long>& ids) {
  Domain d;
  if (ids.empty()) {
    return d;  // canonical empty domain (lo > hi)
  }
  d.lo = ids.front();
  d.hi = ids.back();
  d.step = 1;
  if (ids.size() > 1) {
    d.step = ids[1] - ids[0];
    if (d.step <= 0) {
      return std::nullopt;  // unsorted or duplicated ids
    }
    for (std::size_t i = 1; i < ids.size(); ++i) {
      if (ids[i] - ids[i - 1] != d.step) {
        return std::nullopt;
      }
    }
  }
  d.offset = ((d.lo % d.step) + d.step) % d.step;
  return d;
}

std::vector<Ap> decompose_aps(const std::vector<long long>& sorted_unique) {
  std::vector<Ap> out;
  std::size_t i = 0;
  while (i < sorted_unique.size()) {
    if (i + 1 == sorted_unique.size()) {
      out.push_back(Ap{sorted_unique[i], 0, 1});
      break;
    }
    const long long diff = sorted_unique[i + 1] - sorted_unique[i];
    std::size_t j = i + 1;
    while (j + 1 < sorted_unique.size() &&
           sorted_unique[j + 1] - sorted_unique[j] == diff) {
      ++j;
    }
    out.push_back(
        Ap{sorted_unique[i], diff, static_cast<long long>(j - i + 1)});
    i = j + 1;
  }
  return out;
}

namespace {

using i128 = __int128;

long long ext_gcd(long long a, long long b, long long& x, long long& y) {
  if (b == 0) {
    x = a >= 0 ? 1 : -1;
    y = 0;
    return a >= 0 ? a : -a;
  }
  long long x1 = 0;
  long long y1 = 0;
  const long long g = ext_gcd(b, a % b, x1, y1);
  x = y1;
  y = x1 - (a / b) * y1;
  return g;
}

i128 floor_div(i128 a, i128 b) {
  i128 q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) {
    --q;
  }
  return q;
}

i128 ceil_div(i128 a, i128 b) {
  i128 q = a / b;
  if ((a % b != 0) && ((a < 0) == (b < 0))) {
    ++q;
  }
  return q;
}

/// Intersects [tlo, thi] with {t : 0 ≤ x + s·t ≤ hi}, s ≠ 0.
void clamp_range(i128 x, i128 s, i128 hi, i128& tlo, i128& thi) {
  if (s > 0) {
    tlo = std::max(tlo, ceil_div(-x, s));
    thi = std::min(thi, floor_div(hi - x, s));
  } else {
    tlo = std::max(tlo, ceil_div(hi - x, s));
    thi = std::min(thi, floor_div(-x, s));
  }
}

/// Solves slope_a·d1 − slope_b·d2 = c for d1 ∈ da, d2 ∈ db (and d1 ≠ d2
/// when `need_distinct`). Exact over the full domains: nullopt is a proof
/// no solution exists.
std::optional<std::pair<long long, long long>> solve_two_var(
    long long slope_a, const Domain& da, long long slope_b, const Domain& db,
    long long c, bool need_distinct) {
  const long long u_count1 = da.count();
  const long long u_count2 = db.count();
  if (u_count1 == 0 || u_count2 == 0) {
    return std::nullopt;
  }
  // Substitute d = lo + step·u, u ∈ [0, count):  A·u1 − B·u2 = cp.
  const long long coef_a = slope_a * da.step;
  const long long coef_b = slope_b * db.step;
  const long long cp = c - slope_a * da.lo + slope_b * db.lo;

  const auto result = [&](i128 u1, i128 u2)
      -> std::optional<std::pair<long long, long long>> {
    const long long d1 = da.lo + da.step * static_cast<long long>(u1);
    const long long d2 = db.lo + db.step * static_cast<long long>(u2);
    return std::make_pair(d1, d2);
  };

  if (coef_a == 0 && coef_b == 0) {
    if (cp != 0) {
      return std::nullopt;
    }
    long long u1 = 0;
    long long u2 = 0;
    if (need_distinct && da.lo == db.lo) {
      if (u_count2 > 1) {
        u2 = 1;
      } else if (u_count1 > 1) {
        u1 = 1;
      } else {
        return std::nullopt;
      }
    }
    return result(u1, u2);
  }
  if (coef_a == 0) {  // B·u2 = −cp, u1 free
    if ((-cp) % coef_b != 0) {
      return std::nullopt;
    }
    const long long u2 = (-cp) / coef_b;
    if (u2 < 0 || u2 >= u_count2) {
      return std::nullopt;
    }
    long long u1 = 0;
    if (need_distinct && da.lo == db.lo + db.step * u2) {
      if (u_count1 > 1) {
        u1 = 1;
      } else {
        return std::nullopt;
      }
    }
    return result(u1, u2);
  }
  if (coef_b == 0) {  // A·u1 = cp, u2 free
    if (cp % coef_a != 0) {
      return std::nullopt;
    }
    const long long u1 = cp / coef_a;
    if (u1 < 0 || u1 >= u_count1) {
      return std::nullopt;
    }
    long long u2 = 0;
    if (need_distinct && db.lo == da.lo + da.step * u1) {
      if (u_count2 > 1) {
        u2 = 1;
      } else {
        return std::nullopt;
      }
    }
    return result(u1, u2);
  }

  // General case: A·u1 + (−B)·u2 = cp. Particular solution via extended
  // GCD, then walk the one-parameter solution family into the (u1, u2)
  // box, excluding the d1 == d2 diagonal when required.
  long long x0 = 0;
  long long y0 = 0;
  const long long g = ext_gcd(coef_a, -coef_b, x0, y0);
  if (cp % g != 0) {
    return std::nullopt;
  }
  const long long mult = cp / g;
  const i128 x = static_cast<i128>(x0) * mult;
  const i128 y = static_cast<i128>(y0) * mult;
  // Homogeneous direction: (u1, u2) += t·(−B/g, −A/g).
  const long long step1 = -coef_b / g;
  const long long step2 = -coef_a / g;
  i128 tlo = static_cast<i128>(-1) << 100;
  i128 thi = static_cast<i128>(1) << 100;
  clamp_range(x, step1, u_count1 - 1, tlo, thi);
  clamp_range(y, step2, u_count2 - 1, tlo, thi);
  if (tlo > thi) {
    return std::nullopt;
  }
  // d1(t) − d2(t) is affine in t: e0 + e1·t.
  const i128 e0 = static_cast<i128>(da.lo) - db.lo + da.step * x - db.step * y;
  const i128 e1 =
      static_cast<i128>(da.step) * step1 - static_cast<i128>(db.step) * step2;
  i128 t = tlo;
  if (need_distinct) {
    if (e1 == 0) {
      if (e0 == 0) {
        return std::nullopt;  // every solution lies on the diagonal
      }
    } else if (e0 + e1 * t == 0) {
      if (t + 1 > thi) {
        return std::nullopt;
      }
      t = t + 1;
    }
  }
  return result(x + step1 * t, y + step2 * t);
}

}  // namespace

SolveResult find_collision(const Family& a, const Family& b,
                           bool need_distinct, std::size_t pair_cap) {
  SolveResult res;
  if (a.space != b.space || (!a.write && !b.write) || a.dom.empty() ||
      b.dom.empty()) {
    return res;
  }
  const i128 deltas = static_cast<i128>(a.width) + b.width - 1;
  if (static_cast<i128>(a.count) * b.count * deltas >
      static_cast<i128>(pair_cap)) {
    res.kind = SolveResult::kInconclusive;
    return res;
  }
  for (long long i = 0; i < a.count; ++i) {
    for (long long j = 0; j < b.count; ++j) {
      // Ranges [p, p + width_a) and [q, q + width_b) intersect iff
      // p − q ∈ [−(width_a − 1), width_b − 1].
      for (long long delta = -(a.width - 1); delta <= b.width - 1; ++delta) {
        const long long c =
            delta + b.base + b.stride * j - a.base - a.stride * i;
        if (auto sol = solve_two_var(a.slope, a.dom, b.slope, b.dom, c,
                                     need_distinct)) {
          res.kind = SolveResult::kCollision;
          res.witness.d1 = sol->first;
          res.witness.d2 = sol->second;
          res.witness.addr1 = a.slope * sol->first + a.base + a.stride * i;
          res.witness.addr2 = b.slope * sol->second + b.base + b.stride * j;
          return res;
        }
      }
    }
  }
  return res;
}

}  // namespace kreg::spmd::verify
