#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spmd/device.hpp"
#include "spmd/verify/affine.hpp"
#include "spmd/verify/interceptor.hpp"
#include "spmd/verify/report.hpp"

namespace kreg::spmd::verify {

struct VerifyOptions {
  /// Launches whose total thread count exceeds this are not traced — they
  /// run normally on the pool and are reported unproven (too large for
  /// exhaustive symbolic tracing). The verifier's per-thread cost is a few
  /// hundred bytes, so the default covers every runner configuration.
  std::size_t exhaustive_cap = std::size_t{1} << 15;
  /// Budget for one family-pair disjointness query: the (i, j, width)
  /// enumeration over the bounded loop offsets. Exceeding it demotes the
  /// launch to unproven rather than burning unbounded time.
  std::size_t pair_cap = std::size_t{1} << 24;
};

/// A sink that swallows findings. The verifier's serial tracing
/// legitimately drives the dynamic racecheck over seeded-hazard kernels
/// before the static analysis runs, so its device must not throw
/// mid-trace; findings are still counted on the SanitizerState.
class SilentSink final : public SanitizerSink {
 public:
  void report(const SanitizerReport&) override {}
};

/// The symbolic two-thread verifier.
///
/// Installed as both the device's LaunchInterceptor and the sanitizer
/// layer's AccessRecorder, it executes every named launch once, serially,
/// one executor (thread / lane dispatch / cooperative tid) at a time —
/// a legal schedule of the simulator, so results stand and the launch is
/// not re-run. Every instrumented access (MemView/MemRef globals,
/// SharedSpan/SharedRef shared memory) lands in a per-executor trace.
///
/// The analysis then lifts the traces into the affine abstraction:
/// read-only objects are dropped, each executor's per-object access set is
/// decomposed into maximal arithmetic progressions, executors are grouped
/// by access shape, and each shape group is fitted as an affine function
/// of a single symbolic executor variable (global thread id, dispatch
/// ordinal, or tid within a barrier phase) with an interval + congruence
/// activity domain. Disjointness of every write-write and read-write
/// family pair — over *two symbolic identities* t₁ ≠ t₂ ranging over the
/// whole domains — is decided exactly by a bounded linear-Diophantine
/// solver (affine.hpp). Barrier phases mirror racecheck's model: shared
/// accesses conflict only within a phase, global accesses across blocks
/// always, and a for_each_thread opened from inside a per-thread body is
/// the barrier-divergence hazard.
///
/// Alongside the abstraction an exact byte-granular conflict scan runs
/// over the full trace; hazards always carry the concrete witness pair it
/// produces. Launches whose addressing does not fit the abstraction are
/// reported unproven with the reason (the runner additionally demotes
/// launches whose traces differ across datasets — data-dependent
/// addressing), and explicitly fall back to the dynamic sanitizer.
class VerifierState final : public LaunchInterceptor,
                            public detail::AccessRecorder {
 public:
  /// Installs this verifier as `device`'s access recorder. The device must
  /// already have its sanitizer enabled. enable_interceptor() must be
  /// called separately (SymbolicDevice does both).
  explicit VerifierState(Device& device, VerifyOptions opts = {});
  ~VerifierState() override;

  VerifierState(const VerifierState&) = delete;
  VerifierState& operator=(const VerifierState&) = delete;

  const std::vector<VerifyReport>& reports() const noexcept {
    return reports_;
  }
  std::vector<VerifyReport> take_reports();

  // ---- LaunchInterceptor --------------------------------------------------
  bool on_launch(const char* name, const LaunchConfig& cfg,
                 const std::function<void(const ThreadCtx&)>& thread) override;
  bool on_launch_lanes(
      const char* name, const LaunchConfig& cfg, std::size_t lane_width,
      const std::function<void(const LaneCtx&)>& dispatch) override;
  bool on_launch_cooperative(
      const char* name, const LaunchConfig& cfg, std::size_t shared_bytes,
      const std::function<void(BlockCtx&)>& body) override;

  // ---- AccessRecorder -----------------------------------------------------
  void on_global_read(const detail::AllocShadow& shadow,
                      std::size_t elem) override;
  void on_global_write(const detail::AllocShadow& shadow,
                       std::size_t elem) override;
  void on_shared_access(std::size_t block, std::size_t byte, std::size_t size,
                        bool is_write, bool in_phase, std::size_t phase,
                        std::size_t tid) override;
  void on_phase_begin(std::size_t block, bool nested, std::size_t tid) override;
  void on_phase_end(std::size_t block) override;
  void on_set_tid(std::size_t block, std::size_t tid) override;

 private:
  struct Access {
    std::uint64_t space = 0;  ///< alloc id, or kSharedSpace | block
    long long addr = 0;       ///< element (global) or byte offset (shared)
    std::uint32_t width = 1;  ///< 1 (global, element units) or bytes (shared)
    bool write = false;
  };
  struct Executor {
    long long var = 0;     ///< symbolic variable value: gid / dispatch / tid
    long long block = -1;
    long long phase = -1;  ///< cooperative phase; -1 = block-body (uniform)
    std::vector<Access> acc;
  };
  struct Divergence {
    std::size_t block = 0;
    std::size_t phase = 0;
    std::size_t tid = 0;
  };
  /// A family plus the concurrency tags pairing needs.
  struct TaggedFamily {
    Family fam;
    long long block = -1;  ///< -1 for independent/lanes launches
    long long phase = -1;  ///< -1 for uniform block-body code
  };

  static constexpr std::uint64_t kSharedSpace = std::uint64_t{1} << 63;
  static constexpr std::size_t kCoopExec = static_cast<std::size_t>(-1);

  void begin_launch(const char* name, const LaunchConfig& cfg,
                    std::size_t lane_width, std::size_t shared_bytes,
                    bool cooperative);
  void finish_launch();
  void clear_launch();
  void push_too_large(const char* name, const LaunchConfig& cfg,
                      std::size_t lane_width, std::size_t shared_bytes,
                      bool cooperative);

  std::size_t coop_exec_index();
  void record_access(std::uint64_t space, long long addr, std::uint32_t width,
                     bool write);
  bool concurrent(const Executor& a, const Executor& b) const noexcept;

  VerifyReport analyze();
  bool exact_scan(VerifyReport& report);
  bool build_families(std::vector<TaggedFamily>& out, std::string& reason);
  bool fit_group(const std::vector<std::size_t>& members, long long block,
                 long long phase, std::vector<TaggedFamily>& out,
                 std::string& reason);
  std::uint64_t fingerprint() const;
  std::string describe_exec(const Executor& e) const;

  Device* device_;
  std::shared_ptr<detail::SanitizerState> state_;
  VerifyOptions opts_;
  std::vector<VerifyReport> reports_;

  // ---- per-launch state ---------------------------------------------------
  bool active_ = false;
  bool coop_ = false;
  const char* name_ = "";
  VerifyReport current_;
  std::vector<Executor> execs_;
  std::unordered_map<std::uint64_t, std::size_t> exec_index_;
  std::unordered_map<std::uint64_t, std::string> labels_;
  std::vector<Divergence> divergences_;
  std::size_t cur_exec_ = 0;
  // cooperative execution context, mirrored from the SharedShadow events
  long long cur_block_ = -1;
  long long cur_phase_ = -1;
  long long cur_tid_ = -1;
  long long block_phases_ = 0;
  bool in_phase_ = false;
};

/// Drop-in Device that runs every named launch in verification mode: the
/// production selection code executes unmodified, each launch is traced
/// serially and statically verified, and the per-launch VerifyReports
/// accumulate on verifier(). Installs a SilentSink sanitizer (shadows are
/// the recording substrate; dynamic findings are counted, not thrown).
class SymbolicDevice : public Device {
 public:
  explicit SymbolicDevice(
      DeviceProperties props = DeviceProperties::tesla_s10(),
      parallel::ThreadPool* pool = nullptr, VerifyOptions opts = {});

  VerifierState& verifier() noexcept { return *verifier_; }

 private:
  std::shared_ptr<VerifierState> verifier_;
};

}  // namespace kreg::spmd::verify
