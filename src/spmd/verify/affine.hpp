#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace kreg::spmd::verify {

/// Executor-id domain: the set {d : lo ≤ d ≤ hi, d ≡ offset (mod step)}.
///
/// This is exactly the shape thread-activity guards take in the window
/// sweep's kernels — a prefix guard `gid < n` gives a step-1 interval, a
/// tree-reduction guard `t < stride` a shrinking prefix, the interleaved
/// Harris schedule `t % (2·stride) == 0` a congruence class — so a
/// launch's active executors canonicalize into one Domain per shape group
/// or the launch is reported unproven.
struct Domain {
  long long lo = 0;
  long long hi = -1;  ///< inclusive; empty when lo > hi
  long long step = 1;
  long long offset = 0;  ///< lo ≡ offset (mod step) always holds

  bool empty() const noexcept { return lo > hi; }
  long long count() const noexcept {
    return empty() ? 0 : (hi - lo) / step + 1;
  }
  bool contains(long long d) const noexcept {
    return d >= lo && d <= hi && (d - lo) % step == 0;
  }
};

/// Canonicalizes a sorted, duplicate-free id list into a Domain, or
/// nullopt when the ids are not an arithmetic progression.
std::optional<Domain> domain_from_ids(const std::vector<long long>& ids);

/// A maximal arithmetic progression of addresses: base + stride·i for
/// i ∈ [0, count). count == 1 canonicalizes to stride 0.
struct Ap {
  long long base = 0;
  long long stride = 0;
  long long count = 1;
};

/// Greedy decomposition of a sorted, duplicate-free address set into
/// maximal constant-difference runs. Deterministic and translation-
/// equivariant: translated sets decompose into identically-shaped AP
/// lists, which is what lets per-executor sets be fitted across executors.
std::vector<Ap> decompose_aps(const std::vector<long long>& sorted_unique);

/// One access family: the addresses
///   [slope·d + base + stride·i, slope·d + base + stride·i + width)
/// for every executor d in `dom` and i ∈ [0, count) — the affine
/// abstraction of what one shape group of executors does to one object.
/// `width` is 1 for global families (element-granular) and the access size
/// in bytes for shared-memory families.
struct Family {
  std::uint64_t space = 0;  ///< object key (allocation id / shared arena)
  bool write = false;
  long long slope = 0;
  long long base = 0;
  long long stride = 0;
  long long count = 1;
  long long width = 1;
  Domain dom;
};

/// A concrete witness produced by the disjointness prover: executors d1
/// and d2 whose accesses starting at addr1 and addr2 overlap.
struct Collision {
  long long d1 = 0;
  long long d2 = 0;
  long long addr1 = 0;
  long long addr2 = 0;
};

/// Outcome of one family-pair query.
struct SolveResult {
  enum Kind { kDisjoint, kCollision, kInconclusive } kind = kDisjoint;
  Collision witness;  ///< valid when kind == kCollision
};

/// Decides whether families `a` and `b` can touch overlapping addresses
/// from two (with `need_distinct`, distinct) executors: solves the
/// two-variable linear Diophantine system
///   slope_a·d1 + base_a + stride_a·i  ≈  slope_b·d2 + base_b + stride_b·j
/// (≈ meaning interval overlap of the access widths) with d1 ∈ dom_a,
/// d2 ∈ dom_b via extended-GCD reasoning, enumerating the bounded (i, j)
/// offsets. Exact: kCollision comes with a concrete witness pair and
/// kDisjoint is a proof over the whole domains. Returns kInconclusive when
/// the (i, j, width) product exceeds `pair_cap`.
SolveResult find_collision(const Family& a, const Family& b,
                           bool need_distinct, std::size_t pair_cap);

}  // namespace kreg::spmd::verify
