#include "spmd/verify/verifier.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_set>
#include <utility>

namespace kreg::spmd::verify {

const char* to_string(VerifyStatus status) noexcept {
  switch (status) {
    case VerifyStatus::kVerified:
      return "verified";
    case VerifyStatus::kHazard:
      return "hazard";
    case VerifyStatus::kUnproven:
      return "unproven";
  }
  return "?";
}

const char* to_string(HazardClass hazard) noexcept {
  switch (hazard) {
    case HazardClass::kWriteWrite:
      return "write-write race";
    case HazardClass::kReadWrite:
      return "read-write race";
    case HazardClass::kBarrierDivergence:
      return "barrier divergence";
  }
  return "?";
}

std::string VerifyReport::summary() const {
  std::string line = kernel + " <<<" + std::to_string(grid_blocks) + "," +
                     std::to_string(threads_per_block) + ">>>";
  if (lane_width > 0) {
    line += " lanes=" + std::to_string(lane_width);
  }
  if (cooperative) {
    line += " shared=" + std::to_string(shared_bytes) + "B";
  }
  line += "  ";
  line += to_string(status);
  switch (status) {
    case VerifyStatus::kVerified:
      line += "  (families=" + std::to_string(families) +
              ", executors=" + std::to_string(executors) +
              ", accesses=" + std::to_string(accesses) + ")";
      break;
    case VerifyStatus::kHazard:
    case VerifyStatus::kUnproven:
      line += "  (" + reason + ")";
      break;
  }
  return line;
}

// ---------------------------------------------------------------------------

VerifierState::VerifierState(Device& device, VerifyOptions opts)
    : device_(&device), opts_(opts) {
  detail::SanitizerState* state = device.sanitizer();
  if (state == nullptr) {
    throw LaunchConfigError(
        "VerifierState: the device's sanitizer must be enabled — the "
        "verifier records through its shadows");
  }
  state_ = state->shared_from_this();
  state_->set_recorder(this);
}

VerifierState::~VerifierState() { state_->set_recorder(nullptr); }

std::vector<VerifyReport> VerifierState::take_reports() {
  std::vector<VerifyReport> out = std::move(reports_);
  reports_.clear();
  return out;
}

// ---- launch interception --------------------------------------------------

void VerifierState::begin_launch(const char* name, const LaunchConfig& cfg,
                                 std::size_t lane_width,
                                 std::size_t shared_bytes, bool cooperative) {
  current_ = VerifyReport{};
  current_.kernel = name;
  current_.grid_blocks = cfg.grid_blocks;
  current_.threads_per_block = cfg.threads_per_block;
  current_.lane_width = lane_width;
  current_.shared_bytes = shared_bytes;
  current_.cooperative = cooperative;
  name_ = name;
  coop_ = cooperative;
  execs_.clear();
  exec_index_.clear();
  labels_.clear();
  divergences_.clear();
  cur_exec_ = 0;
  cur_block_ = -1;
  cur_phase_ = -1;
  cur_tid_ = -1;
  block_phases_ = 0;
  in_phase_ = false;
  active_ = true;
}

void VerifierState::clear_launch() {
  active_ = false;
  execs_.clear();
  exec_index_.clear();
  labels_.clear();
  divergences_.clear();
}

void VerifierState::finish_launch() {
  active_ = false;
  reports_.push_back(analyze());
  clear_launch();
}

void VerifierState::push_too_large(const char* name, const LaunchConfig& cfg,
                                   std::size_t lane_width,
                                   std::size_t shared_bytes, bool cooperative) {
  VerifyReport r;
  r.kernel = name;
  r.grid_blocks = cfg.grid_blocks;
  r.threads_per_block = cfg.threads_per_block;
  r.lane_width = lane_width;
  r.shared_bytes = shared_bytes;
  r.cooperative = cooperative;
  r.status = VerifyStatus::kUnproven;
  r.reason = std::to_string(cfg.total_threads()) +
             " threads exceed the exhaustive tracing cap of " +
             std::to_string(opts_.exhaustive_cap) +
             " — launch ran unverified; the dynamic sanitizer remains the "
             "coverage";
  reports_.push_back(std::move(r));
}

bool VerifierState::on_launch(
    const char* name, const LaunchConfig& cfg,
    const std::function<void(const ThreadCtx&)>& thread) {
  if (active_) {
    return false;  // re-entrant launch from a kernel body: leave it alone
  }
  if (cfg.total_threads() > opts_.exhaustive_cap) {
    push_too_large(name, cfg, 0, 0, false);
    return false;
  }
  begin_launch(name, cfg, 0, 0, false);
  try {
    ThreadCtx ctx;
    ctx.block_dim = cfg.threads_per_block;
    ctx.grid_dim = cfg.grid_blocks;
    for (std::size_t block = 0; block < cfg.grid_blocks; ++block) {
      ctx.block_idx = block;
      for (std::size_t tid = 0; tid < cfg.threads_per_block; ++tid) {
        ctx.thread_idx = tid;
        Executor e;
        e.var = static_cast<long long>(block * cfg.threads_per_block + tid);
        e.block = static_cast<long long>(block);
        cur_exec_ = execs_.size();
        execs_.push_back(std::move(e));
        thread(ctx);
      }
    }
  } catch (...) {
    clear_launch();
    throw;
  }
  finish_launch();
  return true;
}

bool VerifierState::on_launch_lanes(
    const char* name, const LaunchConfig& cfg, std::size_t lane_width,
    const std::function<void(const LaneCtx&)>& dispatch) {
  if (active_) {
    return false;
  }
  if (cfg.total_threads() > opts_.exhaustive_cap) {
    push_too_large(name, cfg, lane_width, 0, false);
    return false;
  }
  begin_launch(name, cfg, lane_width, 0, false);
  try {
    const std::size_t per_block =
        (cfg.threads_per_block + lane_width - 1) / lane_width;
    LaneCtx ctx;
    ctx.block_dim = cfg.threads_per_block;
    ctx.grid_dim = cfg.grid_blocks;
    for (std::size_t block = 0; block < cfg.grid_blocks; ++block) {
      ctx.block_idx = block;
      std::size_t d = 0;
      for (std::size_t base = 0; base < cfg.threads_per_block;
           base += lane_width, ++d) {
        ctx.base = base;
        ctx.lanes = std::min(lane_width, cfg.threads_per_block - base);
        Executor e;
        e.var = static_cast<long long>(block * per_block + d);
        e.block = static_cast<long long>(block);
        cur_exec_ = execs_.size();
        execs_.push_back(std::move(e));
        dispatch(ctx);
      }
    }
  } catch (...) {
    clear_launch();
    throw;
  }
  finish_launch();
  return true;
}

bool VerifierState::on_launch_cooperative(
    const char* name, const LaunchConfig& cfg, std::size_t shared_bytes,
    const std::function<void(BlockCtx&)>& body) {
  if (active_) {
    return false;
  }
  if (cfg.total_threads() > opts_.exhaustive_cap) {
    push_too_large(name, cfg, 0, shared_bytes, true);
    return false;
  }
  begin_launch(name, cfg, 0, shared_bytes, true);
  try {
    for (std::size_t block = 0; block < cfg.grid_blocks; ++block) {
      std::vector<std::byte> shared(shared_bytes);
      detail::SharedShadow shadow(state_.get(), name_, block, shared_bytes);
      shadow.set_recorder(this);
      cur_block_ = static_cast<long long>(block);
      block_phases_ = 0;
      in_phase_ = false;
      cur_tid_ = -1;
      cur_exec_ = kCoopExec;
      BlockCtx ctx(block, cfg.threads_per_block, cfg.grid_blocks,
                   std::span<std::byte>(shared), &shadow);
      body(ctx);
      current_.phases = std::max(current_.phases,
                                 static_cast<std::size_t>(block_phases_));
    }
  } catch (...) {
    clear_launch();
    throw;
  }
  finish_launch();
  return true;
}

// ---- recording ------------------------------------------------------------

std::size_t VerifierState::coop_exec_index() {
  const std::uint64_t code =
      in_phase_ ? static_cast<std::uint64_t>(cur_phase_) + 1 : 0;
  const std::uint64_t tid_key = in_phase_ && cur_tid_ >= 0
                                    ? static_cast<std::uint64_t>(cur_tid_)
                                    : 0x1FFFFF;
  const std::uint64_t key = (static_cast<std::uint64_t>(cur_block_) << 42) |
                            (code << 21) | tid_key;
  auto [it, inserted] = exec_index_.try_emplace(key, execs_.size());
  if (inserted) {
    Executor e;
    e.var = in_phase_ && cur_tid_ >= 0 ? cur_tid_ : 0;
    e.block = cur_block_;
    e.phase = in_phase_ ? cur_phase_ : -1;
    execs_.push_back(std::move(e));
  }
  return it->second;
}

void VerifierState::record_access(std::uint64_t space, long long addr,
                                  std::uint32_t width, bool write) {
  const std::size_t idx =
      cur_exec_ == kCoopExec ? coop_exec_index() : cur_exec_;
  execs_[idx].acc.push_back(Access{space, addr, width, write});
}

void VerifierState::on_global_read(const detail::AllocShadow& shadow,
                                   std::size_t elem) {
  if (!active_) {
    return;
  }
  labels_.try_emplace(shadow.id(), shadow.label());
  record_access(shadow.id(), static_cast<long long>(elem), 1, false);
}

void VerifierState::on_global_write(const detail::AllocShadow& shadow,
                                    std::size_t elem) {
  if (!active_) {
    return;
  }
  labels_.try_emplace(shadow.id(), shadow.label());
  record_access(shadow.id(), static_cast<long long>(elem), 1, true);
}

void VerifierState::on_shared_access(std::size_t block, std::size_t byte,
                                     std::size_t size, bool is_write,
                                     bool /*in_phase*/, std::size_t /*phase*/,
                                     std::size_t /*tid*/) {
  if (!active_ || !coop_) {
    return;
  }
  const std::uint64_t space = kSharedSpace | static_cast<std::uint64_t>(block);
  labels_.try_emplace(space, "shared");
  record_access(space, static_cast<long long>(byte),
                static_cast<std::uint32_t>(size), is_write);
}

void VerifierState::on_phase_begin(std::size_t block, bool nested,
                                   std::size_t tid) {
  if (!active_ || !coop_) {
    return;
  }
  if (nested) {
    divergences_.push_back(
        Divergence{block, static_cast<std::size_t>(block_phases_), tid});
  }
  cur_phase_ = block_phases_++;
  in_phase_ = true;
  cur_tid_ = -1;
}

void VerifierState::on_phase_end(std::size_t /*block*/) {
  if (!active_ || !coop_) {
    return;
  }
  in_phase_ = false;
  cur_tid_ = -1;
}

void VerifierState::on_set_tid(std::size_t /*block*/, std::size_t tid) {
  if (!active_ || !coop_) {
    return;
  }
  cur_tid_ = static_cast<long long>(tid);
}

// ---- analysis -------------------------------------------------------------

bool VerifierState::concurrent(const Executor& a,
                               const Executor& b) const noexcept {
  if (&a == &b) {
    return false;  // program order within one executor
  }
  if (!coop_) {
    return true;  // distinct threads/dispatches of an independent launch
  }
  if (a.block != b.block) {
    return true;  // blocks never synchronize with each other
  }
  // Same block: barrier-ordered unless both run in the same phase (the
  // executors are distinct, so their tids differ). Block-body code
  // (phase -1) is ordered against every phase of its own block.
  return a.phase >= 0 && a.phase == b.phase;
}

std::string VerifierState::describe_exec(const Executor& e) const {
  if (coop_) {
    if (e.phase < 0) {
      return "block " + std::to_string(e.block) + " (block body)";
    }
    return "block " + std::to_string(e.block) + " tid " +
           std::to_string(e.var) + " phase " + std::to_string(e.phase);
  }
  if (current_.lane_width > 0) {
    return "dispatch " + std::to_string(e.var);
  }
  return "gid " + std::to_string(e.var);
}

std::uint64_t VerifierState::fingerprint() const {
  // One order-independent hash per access-with-context, then sorted and
  // folded — equal across runs iff the conflict-relevant trace is equal.
  std::vector<std::uint64_t> items;
  for (const Executor& e : execs_) {
    for (const Access& a : e.acc) {
      std::uint64_t h = 0x9E3779B97F4A7C15ULL;
      const auto mix = [&h](std::uint64_t v) {
        h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
        h *= 0xFF51AFD7ED558CCDULL;
      };
      mix(a.space);
      mix(static_cast<std::uint64_t>(a.addr));
      mix(a.width);
      mix(a.write ? 1 : 0);
      mix(static_cast<std::uint64_t>(e.var));
      mix(static_cast<std::uint64_t>(e.block));
      mix(static_cast<std::uint64_t>(e.phase));
      items.push_back(h);
    }
  }
  std::sort(items.begin(), items.end());
  std::uint64_t fp = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (std::uint64_t v : items) {
    for (int i = 0; i < 8; ++i) {
      fp ^= (v >> (8 * i)) & 0xFF;
      fp *= 0x100000001B3ULL;
    }
  }
  return fp;
}

bool VerifierState::exact_scan(VerifyReport& report) {
  struct Entry {
    std::uint32_t exec;
    bool write;
  };
  std::unordered_map<std::uint64_t, std::uint64_t> space_ord;
  std::unordered_map<std::uint64_t, std::vector<Entry>> cells;
  for (std::size_t ei = 0; ei < execs_.size(); ++ei) {
    for (const Access& a : execs_[ei].acc) {
      const auto [so_it, so_new] = space_ord.try_emplace(
          a.space, static_cast<std::uint64_t>(space_ord.size()));
      const std::uint64_t so = so_it->second;
      for (std::uint32_t b = 0; b < a.width; ++b) {
        const std::uint64_t key =
            (so << 42) | static_cast<std::uint64_t>(a.addr + b);
        std::vector<Entry>& vec = cells[key];
        bool dup = false;
        for (const Entry& prev : vec) {
          if (prev.exec == ei && prev.write == a.write) {
            dup = true;
            continue;
          }
          if ((prev.write || a.write) &&
              concurrent(execs_[prev.exec], execs_[ei])) {
            const Executor& ea = execs_[prev.exec];
            const Executor& eb = execs_[ei];
            Witness w;
            w.hazard = prev.write && a.write ? HazardClass::kWriteWrite
                                            : HazardClass::kReadWrite;
            const auto label = labels_.find(a.space);
            w.object = label != labels_.end() ? label->second : "?";
            w.shared = (a.space & kSharedSpace) != 0;
            w.block_a = ea.block;
            w.block_b = eb.block;
            w.exec_a = ea.var;
            w.exec_b = eb.var;
            w.phase = eb.phase;
            w.addr_a = a.addr + b;
            w.addr_b = a.addr + b;
            w.detail = std::string(to_string(w.hazard)) + " on '" + w.object +
                       "' " + (w.shared ? "byte " : "element ") +
                       std::to_string(a.addr + b) + ": " + describe_exec(ea) +
                       " and " + describe_exec(eb) +
                       " touch it with no ordering between them";
            report.reason = w.detail;
            report.witness = std::move(w);
            report.status = VerifyStatus::kHazard;
            return true;
          }
        }
        if (!dup) {
          vec.push_back(Entry{static_cast<std::uint32_t>(ei), a.write});
        }
      }
    }
  }
  return false;
}

bool VerifierState::fit_group(const std::vector<std::size_t>& members,
                              long long block, long long phase,
                              std::vector<TaggedFamily>& out,
                              std::string& reason) {
  // Per-member access streams keyed (space, write, width) → AP list.
  using StreamKey = std::tuple<std::uint64_t, bool, std::uint32_t>;
  struct MemberShape {
    std::size_t exec;
    std::map<StreamKey, std::vector<Ap>> streams;
  };
  std::vector<MemberShape> shapes;
  shapes.reserve(members.size());
  for (std::size_t ei : members) {
    MemberShape shape;
    shape.exec = ei;
    std::map<StreamKey, std::vector<long long>> addrs;
    for (const Access& a : execs_[ei].acc) {
      addrs[StreamKey{a.space, a.write, a.width}].push_back(a.addr);
    }
    for (auto& [key, v] : addrs) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      shape.streams.emplace(key, decompose_aps(v));
    }
    shapes.push_back(std::move(shape));
  }
  // Group members by shape signature: same streams, same (stride, count)
  // per AP position (bases may differ — they are what gets fitted).
  std::map<std::vector<long long>, std::vector<std::size_t>> groups;
  for (std::size_t m = 0; m < shapes.size(); ++m) {
    std::vector<long long> sig;
    for (const auto& [key, aps] : shapes[m].streams) {
      sig.push_back(static_cast<long long>(std::get<0>(key)));
      sig.push_back(std::get<1>(key) ? 1 : 0);
      sig.push_back(static_cast<long long>(std::get<2>(key)));
      sig.push_back(static_cast<long long>(aps.size()));
      for (const Ap& ap : aps) {
        sig.push_back(ap.stride);
        sig.push_back(ap.count);
      }
    }
    groups[std::move(sig)].push_back(m);
  }
  const auto object_name = [&](std::uint64_t space) {
    const auto it = labels_.find(space);
    return it != labels_.end() ? it->second : std::string("?");
  };
  for (auto& [sig, group] : groups) {
    std::sort(group.begin(), group.end(),
              [&](std::size_t a, std::size_t b) {
                return execs_[shapes[a].exec].var < execs_[shapes[b].exec].var;
              });
    std::vector<long long> ids;
    ids.reserve(group.size());
    for (std::size_t m : group) {
      ids.push_back(execs_[shapes[m].exec].var);
    }
    const std::optional<Domain> dom = domain_from_ids(ids);
    if (!dom) {
      reason =
          "active executor ids do not form an interval/congruence domain";
      return false;
    }
    const MemberShape& first = shapes[group.front()];
    const long long var0 = execs_[first.exec].var;
    for (const auto& [key, aps0] : first.streams) {
      for (std::size_t p = 0; p < aps0.size(); ++p) {
        long long slope = 0;
        if (group.size() > 1) {
          const MemberShape& second = shapes[group[1]];
          const long long var1 = execs_[second.exec].var;
          const long long dbase =
              second.streams.at(key)[p].base - aps0[p].base;
          if (dbase % (var1 - var0) != 0) {
            reason = "addressing of '" + object_name(std::get<0>(key)) +
                     "' is not affine in the executor id";
            return false;
          }
          slope = dbase / (var1 - var0);
          for (std::size_t m : group) {
            const long long var_m = execs_[shapes[m].exec].var;
            if (shapes[m].streams.at(key)[p].base !=
                aps0[p].base + slope * (var_m - var0)) {
              reason = "addressing of '" + object_name(std::get<0>(key)) +
                       "' is not affine in the executor id";
              return false;
            }
          }
        }
        TaggedFamily tf;
        tf.fam.space = std::get<0>(key);
        tf.fam.write = std::get<1>(key);
        tf.fam.width = static_cast<long long>(std::get<2>(key));
        tf.fam.slope = slope;
        tf.fam.base = aps0[p].base - slope * var0;
        tf.fam.stride = aps0[p].stride;
        tf.fam.count = aps0[p].count;
        tf.fam.dom = *dom;
        tf.block = block;
        tf.phase = phase;
        out.push_back(std::move(tf));
      }
    }
  }
  return true;
}

bool VerifierState::build_families(std::vector<TaggedFamily>& out,
                                   std::string& reason) {
  if (!coop_) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < execs_.size(); ++i) {
      if (!execs_[i].acc.empty()) {
        members.push_back(i);
      }
    }
    return fit_group(members, -1, -1, out, reason);
  }
  std::map<std::pair<long long, long long>, std::vector<std::size_t>> classes;
  for (std::size_t i = 0; i < execs_.size(); ++i) {
    if (!execs_[i].acc.empty()) {
      classes[{execs_[i].block, execs_[i].phase}].push_back(i);
    }
  }
  for (auto& [key, members] : classes) {
    if (!fit_group(members, key.first, key.second, out, reason)) {
      return false;
    }
  }
  return true;
}

VerifyReport VerifierState::analyze() {
  VerifyReport r = std::move(current_);
  if (!divergences_.empty()) {
    const Divergence& d = divergences_.front();
    Witness w;
    w.hazard = HazardClass::kBarrierDivergence;
    w.object = "barrier";
    w.shared = true;
    w.block_a = static_cast<long long>(d.block);
    w.block_b = static_cast<long long>(d.block);
    w.exec_a = static_cast<long long>(d.tid);
    w.exec_b = d.tid == 0 && r.threads_per_block > 1 ? 1 : 0;
    w.phase = static_cast<long long>(d.phase);
    w.detail = "for_each_thread (a barrier) opened inside the per-thread "
               "body of a phase by tid " +
               std::to_string(d.tid) + " of block " + std::to_string(d.block) +
               " — a tid-dependent branch guards the barrier, so tid " +
               std::to_string(w.exec_b) + " may not reach it";
    r.reason = "barrier divergence: " + w.detail;
    r.witness = std::move(w);
    r.status = VerifyStatus::kHazard;
    return r;
  }

  // Objects never written during the launch cannot participate in a
  // hazard; dropping them first also removes the data-dependent *read*
  // patterns (binary-searched windows over the sorted inputs) that would
  // otherwise defeat the affine fit.
  std::unordered_set<std::uint64_t> written;
  for (const Executor& e : execs_) {
    for (const Access& a : e.acc) {
      if (a.write) {
        written.insert(a.space);
      }
    }
  }
  const auto key_of = [](const Access& a) {
    return std::tie(a.space, a.addr, a.width, a.write);
  };
  std::size_t total_accesses = 0;
  std::size_t active_execs = 0;
  for (Executor& e : execs_) {
    std::vector<Access>& v = e.acc;
    v.erase(std::remove_if(v.begin(), v.end(),
                           [&](const Access& a) {
                             return written.find(a.space) == written.end();
                           }),
            v.end());
    std::sort(v.begin(), v.end(), [&](const Access& a, const Access& b) {
      return key_of(a) < key_of(b);
    });
    v.erase(std::unique(v.begin(), v.end(),
                        [&](const Access& a, const Access& b) {
                          return key_of(a) == key_of(b);
                        }),
            v.end());
    total_accesses += v.size();
    active_execs += v.empty() ? 0 : 1;
  }
  r.executors = active_execs;
  r.accesses = total_accesses;
  r.fingerprint = fingerprint();

  if (exact_scan(r)) {
    return r;
  }

  std::vector<TaggedFamily> families;
  std::string reason;
  if (!build_families(families, reason)) {
    r.status = VerifyStatus::kUnproven;
    r.reason = reason +
               " — the exact trace is clean for this input; the dynamic "
               "sanitizer (racecheck) remains the coverage";
    return r;
  }
  for (std::size_t i = 0; i < families.size(); ++i) {
    for (std::size_t j = i; j < families.size(); ++j) {
      const TaggedFamily& a = families[i];
      const TaggedFamily& b = families[j];
      if (a.fam.space != b.fam.space || (!a.fam.write && !b.fam.write)) {
        continue;
      }
      bool need_distinct = false;
      if (!coop_) {
        need_distinct = true;  // two symbolic thread identities, t1 != t2
      } else if (a.block != b.block) {
        need_distinct = false;  // cross-block: any pair is concurrent
      } else if (a.phase >= 0 && a.phase == b.phase) {
        need_distinct = true;  // same phase: distinct tids
      } else {
        continue;  // same block, barrier-ordered
      }
      const SolveResult sr =
          find_collision(a.fam, b.fam, need_distinct, opts_.pair_cap);
      const auto label = labels_.find(a.fam.space);
      const std::string object =
          label != labels_.end() ? label->second : std::string("?");
      if (sr.kind == SolveResult::kInconclusive) {
        r.status = VerifyStatus::kUnproven;
        r.reason = "family-pair budget exceeded on '" + object +
                   "' — the exact trace is clean for this input";
        return r;
      }
      if (sr.kind == SolveResult::kCollision) {
        // The trace is exhaustive and its exact scan was clean, so a model
        // collision means abstraction and trace disagree; stay sound.
        r.status = VerifyStatus::kUnproven;
        r.reason = "affine model predicts a collision on '" + object +
                   "' the concrete trace does not contain — model rejected";
        return r;
      }
    }
  }
  r.status = VerifyStatus::kVerified;
  r.families = families.size();
  return r;
}

// ---------------------------------------------------------------------------

SymbolicDevice::SymbolicDevice(DeviceProperties props,
                               parallel::ThreadPool* pool, VerifyOptions opts)
    : Device(props, pool) {
  enable_sanitizer(std::make_shared<SilentSink>());
  verifier_ = std::make_shared<VerifierState>(*this, opts);
  enable_interceptor(verifier_);
}

}  // namespace kreg::spmd::verify
