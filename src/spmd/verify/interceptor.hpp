#pragma once

#include <cstddef>
#include <functional>

namespace kreg::spmd {

struct LaunchConfig;
struct ThreadCtx;
struct LaneCtx;
class BlockCtx;

namespace verify {

/// Launch interception hook for the static verifier.
///
/// Device's launch templates offer every named launch to an installed
/// interceptor before running it on the thread pool. The interceptor may
/// execute the launch itself — the verifier runs it serially, one executor
/// at a time, with the AccessRecorder tap collecting every instrumented
/// access; a serial execution is a legal schedule of the simulator's
/// relaxed intra-phase ordering, so the results stand. Returning true
/// means "executed, skip the normal parallel run"; returning false leaves
/// the launch to the device (the verifier does this for launches too large
/// to trace exhaustively, after filing an `unproven` report).
///
/// The callbacks type-erase the kernel functor so this hook can live
/// behind a virtual interface while Device's launches stay templates.
class LaunchInterceptor {
 public:
  virtual ~LaunchInterceptor() = default;

  /// Device::launch — `thread` runs the kernel body for one ThreadCtx.
  virtual bool on_launch(const char* name, const LaunchConfig& cfg,
                         const std::function<void(const ThreadCtx&)>& thread) = 0;
  /// Device::launch_lanes — `dispatch` runs the kernel body for one LaneCtx.
  virtual bool on_launch_lanes(
      const char* name, const LaunchConfig& cfg, std::size_t lane_width,
      const std::function<void(const LaneCtx&)>& dispatch) = 0;
  /// Device::launch_cooperative — `body` runs the block body for a BlockCtx
  /// the interceptor constructs (with its own recorder-attached
  /// SharedShadow).
  virtual bool on_launch_cooperative(
      const char* name, const LaunchConfig& cfg, std::size_t shared_bytes,
      const std::function<void(BlockCtx&)>& body) = 0;
};

}  // namespace verify
}  // namespace kreg::spmd
