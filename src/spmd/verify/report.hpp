#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace kreg::spmd::verify {

/// Three-valued verification verdict for one launch.
enum class VerifyStatus {
  kVerified,  ///< race-free and barrier-uniform: proven over all thread pairs
  kHazard,    ///< a concrete witness pair collides (or a divergent barrier)
  kUnproven,  ///< outside the affine abstraction — the dynamic sanitizer
              ///< (racecheck/memcheck) remains the coverage for this launch
};

const char* to_string(VerifyStatus status) noexcept;

/// What kind of hazard a witness demonstrates.
enum class HazardClass {
  kWriteWrite,
  kReadWrite,
  kBarrierDivergence,
};

const char* to_string(HazardClass hazard) noexcept;

/// A concrete two-executor witness: the pair of thread/dispatch/tid
/// identities whose accesses collide (or the tid that reached a divergent
/// barrier and one that did not).
struct Witness {
  HazardClass hazard = HazardClass::kWriteWrite;
  std::string object;        ///< allocation label, or "shared"
  bool shared = false;       ///< shared-memory vs global hazard
  long long block_a = -1;    ///< block of the first executor (-1: n/a)
  long long block_b = -1;
  long long exec_a = 0;      ///< gid / dispatch ordinal / tid of executor A
  long long exec_b = 0;
  long long phase = -1;      ///< cooperative phase index (-1 outside phases)
  long long addr_a = 0;      ///< colliding element (global) or byte (shared)
  long long addr_b = 0;
  std::string detail;        ///< human-readable one-liner
};

/// Per-launch verification result.
struct VerifyReport {
  std::string kernel;
  std::size_t grid_blocks = 0;
  std::size_t threads_per_block = 0;
  std::size_t lane_width = 0;   ///< 0 for scalar / cooperative launches
  std::size_t shared_bytes = 0;
  bool cooperative = false;

  VerifyStatus status = VerifyStatus::kUnproven;
  std::string reason;  ///< unproven reason / hazard summary, empty if verified
  std::optional<Witness> witness;

  std::size_t executors = 0;  ///< traced executors (threads/dispatches/…)
  std::size_t accesses = 0;   ///< recorded instrumented accesses
  std::size_t families = 0;   ///< affine access families proven disjoint
  std::size_t phases = 0;     ///< barrier phases observed (cooperative)
  /// Order-independent hash of the conflict-relevant access sets; the
  /// runner compares fingerprints across datasets to detect data-dependent
  /// addressing (which demotes verified to unproven).
  std::uint64_t fingerprint = 0;

  /// One-line human-readable summary, e.g.
  ///   "cv_sweep <<<1,256>>>  verified  (families=3, executors=256)".
  std::string summary() const;
};

}  // namespace kreg::spmd::verify
