#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <span>
#include <utility>

namespace kreg::spmd {

namespace detail {

/// Shared accounting record between a Device and its live buffers. Buffers
/// may outlive neither the ledger nor their storage, but keeping the ledger
/// in a shared_ptr makes destruction order forgiving: a buffer destroyed
/// after its Device simply returns bytes to a ledger nobody reads again.
struct MemoryLedger {
  std::size_t capacity_bytes = 0;
  std::size_t allocated_bytes = 0;
  std::size_t peak_bytes = 0;
  std::size_t allocation_count = 0;

  std::size_t available() const noexcept {
    return capacity_bytes - allocated_bytes;
  }
};

}  // namespace detail

/// RAII handle to a global-memory allocation on a simulated device.
///
/// Move-only, like a cudaMalloc'd pointer wrapped in a unique owner. The
/// bytes are charged against the owning device's ledger on allocation and
/// returned on destruction. Element access is host-visible (the simulator
/// has a unified address space), but library code treats the contents as
/// device-resident and moves data with Device::copy_to_device /
/// copy_to_host to keep the CUDA structure of the algorithms explicit.
template <class T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  DeviceBuffer(DeviceBuffer&& other) noexcept { swap(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  ~DeviceBuffer() { release(); }

  std::size_t size() const noexcept { return count_; }
  std::size_t size_bytes() const noexcept { return count_ * sizeof(T); }
  bool empty() const noexcept { return count_ == 0; }

  T* data() noexcept { return storage_.get(); }
  const T* data() const noexcept { return storage_.get(); }

  std::span<T> span() noexcept { return {storage_.get(), count_}; }
  std::span<const T> span() const noexcept { return {storage_.get(), count_}; }

  T& operator[](std::size_t i) noexcept {
    assert(i < count_);
    return storage_[i];
  }
  const T& operator[](std::size_t i) const noexcept {
    assert(i < count_);
    return storage_[i];
  }

 private:
  friend class Device;

  DeviceBuffer(std::shared_ptr<detail::MemoryLedger> ledger, std::size_t count)
      : ledger_(std::move(ledger)),
        storage_(new T[count]()),
        count_(count) {}

  void release() noexcept {
    if (ledger_) {
      ledger_->allocated_bytes -= size_bytes();
      ledger_.reset();
    }
    storage_.reset();
    count_ = 0;
  }

  void swap(DeviceBuffer& other) noexcept {
    std::swap(ledger_, other.ledger_);
    std::swap(storage_, other.storage_);
    std::swap(count_, other.count_);
  }

  std::shared_ptr<detail::MemoryLedger> ledger_;
  std::unique_ptr<T[]> storage_;
  std::size_t count_ = 0;
};

/// RAII handle to a constant-memory allocation: read-only from kernels,
/// sized against the device's constant cache working set (8 KB on the
/// paper's hardware — the limit that caps the bandwidth grid at 2,048
/// single-precision values).
template <class T>
class ConstantBuffer {
 public:
  ConstantBuffer() = default;

  ConstantBuffer(ConstantBuffer&& other) noexcept { swap(other); }
  ConstantBuffer& operator=(ConstantBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  ConstantBuffer(const ConstantBuffer&) = delete;
  ConstantBuffer& operator=(const ConstantBuffer&) = delete;

  ~ConstantBuffer() { release(); }

  std::size_t size() const noexcept { return count_; }
  std::size_t size_bytes() const noexcept { return count_ * sizeof(T); }

  const T* data() const noexcept { return storage_.get(); }
  std::span<const T> span() const noexcept { return {storage_.get(), count_}; }
  const T& operator[](std::size_t i) const noexcept {
    assert(i < count_);
    return storage_[i];
  }

 private:
  friend class Device;

  ConstantBuffer(std::shared_ptr<detail::MemoryLedger> ledger,
                 std::size_t count)
      : ledger_(std::move(ledger)), storage_(new T[count]()), count_(count) {}

  /// Device fills the contents at upload time; kernels only read.
  std::span<T> mutable_span() noexcept { return {storage_.get(), count_}; }

  void release() noexcept {
    if (ledger_) {
      ledger_->allocated_bytes -= size_bytes();
      ledger_.reset();
    }
    storage_.reset();
    count_ = 0;
  }

  void swap(ConstantBuffer& other) noexcept {
    std::swap(ledger_, other.ledger_);
    std::swap(storage_, other.storage_);
    std::swap(count_, other.count_);
  }

  std::shared_ptr<detail::MemoryLedger> ledger_;
  std::unique_ptr<T[]> storage_;
  std::size_t count_ = 0;
};

}  // namespace kreg::spmd
