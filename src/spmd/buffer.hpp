#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <span>
#include <utility>

#include "spmd/sanitizer/access.hpp"

namespace kreg::spmd {

namespace detail {

/// Shared accounting record between a Device and its live buffers. Buffers
/// may outlive neither the ledger nor their storage, but keeping the ledger
/// in a shared_ptr makes destruction order forgiving: a buffer destroyed
/// after its Device simply returns bytes to a ledger nobody reads again.
struct MemoryLedger {
  std::size_t capacity_bytes = 0;
  std::size_t allocated_bytes = 0;
  std::size_t peak_bytes = 0;
  std::size_t allocation_count = 0;

  std::size_t available() const noexcept {
    return capacity_bytes - allocated_bytes;
  }
};

}  // namespace detail

/// RAII handle to a global-memory allocation on a simulated device.
///
/// Move-only, like a cudaMalloc'd pointer wrapped in a unique owner. The
/// bytes are charged against the owning device's ledger on allocation and
/// returned on destruction. Element access is host-visible (the simulator
/// has a unified address space), but library code treats the contents as
/// device-resident and moves data with Device::copy_to_device /
/// copy_to_host to keep the CUDA structure of the algorithms explicit.
///
/// On a sanitizer-enabled device each buffer carries an AllocShadow:
/// `view()` returns a MemView whose accesses run memcheck (bounds,
/// moved-from) and initcheck (valid bits), and the shadow's liveness at
/// device teardown is the leak signal. The raw span()/data()/operator[]
/// escape hatches stay unchecked, matching host pointer arithmetic.
template <class T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  DeviceBuffer(DeviceBuffer&& other) noexcept {
    swap(other);
    // The source keeps its sanitizer connection (but not the shadow: the
    // allocation's liveness moved with the storage) so a later access can
    // be reported as use-after-move.
    other.state_ = state_;
    other.moved_from_ = true;
  }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      moved_from_ = false;
      swap(other);
      other.state_ = state_;
      other.moved_from_ = true;
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  ~DeviceBuffer() { release(); }

  std::size_t size() const noexcept { return count_; }
  std::size_t size_bytes() const noexcept { return count_ * sizeof(T); }
  bool empty() const noexcept { return count_ == 0; }

  T* data() noexcept { return storage_.get(); }
  const T* data() const noexcept { return storage_.get(); }

  std::span<T> span() noexcept { return {storage_.get(), count_}; }
  std::span<const T> span() const noexcept { return {storage_.get(), count_}; }

  /// Checked window over the allocation. On a sanitizer-enabled device
  /// every indexed access is bounds-checked, reads run the initcheck
  /// valid-bit lookup, and calling view() on a moved-from buffer reports a
  /// memcheck finding; on a plain device this is a raw span with proxies.
  MemView<T> view() {
    ensure_not_moved_from();
    return MemView<T>(storage_.get(), count_, shadow_.get());
  }
  MemView<const T> view() const {
    ensure_not_moved_from();
    return MemView<const T>(storage_.get(), count_, shadow_.get());
  }

  T& operator[](std::size_t i) noexcept {
    assert(i < count_);
    if (shadow_) {
      shadow_->mark_valid(i);  // host-side writes count as initialization
    }
    return storage_[i];
  }
  const T& operator[](std::size_t i) const noexcept {
    assert(i < count_);
    return storage_[i];
  }

 private:
  friend class Device;

  DeviceBuffer(std::shared_ptr<detail::MemoryLedger> ledger, std::size_t count)
      : ledger_(std::move(ledger)),
        storage_(new T[count]()),
        count_(count) {}

  void ensure_not_moved_from() const {
    if (!moved_from_ || state_ == nullptr) {
      return;
    }
    SanitizerReport report;
    report.kind = HazardKind::kOob;
    report.kernel = state_->current_kernel();
    report.object = "<moved-from buffer>";
    report.message = "use of a moved-from DeviceBuffer";
    state_->deliver(report);
  }

  void release() noexcept {
    if (ledger_) {
      ledger_->allocated_bytes -= size_bytes();
      ledger_.reset();
    }
    storage_.reset();
    shadow_.reset();
    count_ = 0;
  }

  void swap(DeviceBuffer& other) noexcept {
    std::swap(ledger_, other.ledger_);
    std::swap(storage_, other.storage_);
    std::swap(count_, other.count_);
    std::swap(shadow_, other.shadow_);
    std::swap(state_, other.state_);
    std::swap(moved_from_, other.moved_from_);
  }

  std::shared_ptr<detail::MemoryLedger> ledger_;
  std::unique_ptr<T[]> storage_;
  std::size_t count_ = 0;
  std::shared_ptr<detail::AllocShadow> shadow_;
  std::shared_ptr<detail::SanitizerState> state_;
  bool moved_from_ = false;
};

/// RAII handle to a constant-memory allocation: read-only from kernels,
/// sized against the device's constant cache working set (8 KB on the
/// paper's hardware — the limit that caps the bandwidth grid at 2,048
/// single-precision values).
template <class T>
class ConstantBuffer {
 public:
  ConstantBuffer() = default;

  ConstantBuffer(ConstantBuffer&& other) noexcept { swap(other); }
  ConstantBuffer& operator=(ConstantBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  ConstantBuffer(const ConstantBuffer&) = delete;
  ConstantBuffer& operator=(const ConstantBuffer&) = delete;

  ~ConstantBuffer() { release(); }

  std::size_t size() const noexcept { return count_; }
  std::size_t size_bytes() const noexcept { return count_ * sizeof(T); }

  const T* data() const noexcept { return storage_.get(); }
  std::span<const T> span() const noexcept { return {storage_.get(), count_}; }

  /// Bounds-checked read-only window (constant memory is fully written at
  /// upload, so only memcheck applies).
  MemView<const T> view() const {
    return MemView<const T>(storage_.get(), count_, shadow_.get());
  }

  const T& operator[](std::size_t i) const noexcept {
    assert(i < count_);
    return storage_[i];
  }

 private:
  friend class Device;

  ConstantBuffer(std::shared_ptr<detail::MemoryLedger> ledger,
                 std::size_t count)
      : ledger_(std::move(ledger)), storage_(new T[count]()), count_(count) {}

  /// Device fills the contents at upload time; kernels only read.
  std::span<T> mutable_span() noexcept { return {storage_.get(), count_}; }

  void release() noexcept {
    if (ledger_) {
      ledger_->allocated_bytes -= size_bytes();
      ledger_.reset();
    }
    storage_.reset();
    shadow_.reset();
    count_ = 0;
  }

  void swap(ConstantBuffer& other) noexcept {
    std::swap(ledger_, other.ledger_);
    std::swap(storage_, other.storage_);
    std::swap(count_, other.count_);
    std::swap(shadow_, other.shadow_);
  }

  std::shared_ptr<detail::MemoryLedger> ledger_;
  std::unique_ptr<T[]> storage_;
  std::size_t count_ = 0;
  std::shared_ptr<detail::AllocShadow> shadow_;
};

}  // namespace kreg::spmd
