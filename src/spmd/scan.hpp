#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "spmd/device.hpp"
#include "spmd/reduce.hpp"

namespace kreg::spmd {

namespace detail {

/// Generic body shared by the span and MemView entry points (`View` needs
/// size() and an element-proxy operator[]); see inclusive_scan below.
template <class T, class View>
void inclusive_scan_impl(Device& device, View data,
                         std::size_t threads_per_block) {
  if (data.size() < 2) {
    return;
  }
  // Block dim of at least 2 guarantees the recursion shrinks: with
  // one-thread blocks the block-totals array would equal the input forever.
  const std::size_t block_dim = std::max<std::size_t>(
      2, reduction_block_dim(device, threads_per_block));
  const std::size_t blocks = (data.size() + block_dim - 1) / block_dim;

  // Per-block totals, scanned on a second level to produce block offsets.
  DeviceBuffer<T> totals =
      device.template alloc_global<T>(blocks, "scan-block-totals");
  MemView<T> totals_view = totals.view();

  // Pass 1: intra-block Hillis-Steele scan. Double-buffer in shared memory
  // (2T elements) so each phase reads the previous phase's values only.
  device.launch_cooperative(
      "inclusive_scan", LaunchConfig{blocks, block_dim},
      2 * block_dim * sizeof(T), [&](BlockCtx& ctx) {
        auto shared = ctx.template shared_as<T>(2 * block_dim);
        auto ping = shared.subspan(0, block_dim);
        auto pong = shared.subspan(block_dim, block_dim);
        const std::size_t base = ctx.block_idx() * block_dim;
        const std::size_t valid =
            base < data.size()
                ? std::min(block_dim, data.size() - base)
                : std::size_t{0};

        ctx.for_each_thread([&](std::size_t t) {
          ping[t] = t < valid ? static_cast<T>(data[base + t]) : T{};
        });
        bool flipped = false;
        for (std::size_t stride = 1; stride < block_dim; stride *= 2) {
          auto src = flipped ? pong : ping;
          auto dst = flipped ? ping : pong;
          ctx.for_each_thread([&](std::size_t t) {
            dst[t] = t >= stride ? static_cast<T>(src[t] + src[t - stride])
                                 : static_cast<T>(src[t]);
          });
          flipped = !flipped;
        }
        auto result = flipped ? pong : ping;
        ctx.for_each_thread([&](std::size_t t) {
          if (t < valid) {
            data[base + t] = result[t];
          }
        });
        totals_view[ctx.block_idx()] = result[block_dim - 1];
      });

  if (blocks > 1) {
    // Pass 2: scan the block totals (recursively; depth is logarithmic).
    inclusive_scan_impl<T>(device, totals_view, threads_per_block);

    // Pass 3: add each preceding blocks' total to this block's elements.
    device.launch("scan_fixup", LaunchConfig{blocks, block_dim},
                  [&](const ThreadCtx& t) {
                    if (t.block_idx == 0) {
                      return;
                    }
                    const std::size_t j = t.global_idx();
                    if (j < data.size()) {
                      data[j] += totals_view[t.block_idx - 1];
                    }
                  });
  }
}

}  // namespace detail

/// Device-side inclusive prefix sum (Hillis & Steele 1986), the classic
/// companion primitive to the Harris reduction: log2(T) barrier-separated
/// phases of stride doubling inside a block, then a block-offset fix-up
/// pass. Completes the substrate's parallel-primitive set (map: launch;
/// reduce: reduce.hpp; scan: here).
///
/// `data` is a device-resident span (a DeviceBuffer's span) or, on a
/// sanitizer-enabled device, a checked MemView (DeviceBuffer::view()); the
/// scan is in place. The requested block size is rounded down to a power
/// of two and clamped to the device limit.
template <class T>
void inclusive_scan(Device& device, std::span<T> data,
                    std::size_t threads_per_block = 512) {
  detail::inclusive_scan_impl<T>(device, data, threads_per_block);
}
template <class T>
void inclusive_scan(Device& device, MemView<T> data,
                    std::size_t threads_per_block = 512) {
  detail::inclusive_scan_impl<T>(device, data, threads_per_block);
}

}  // namespace kreg::spmd
