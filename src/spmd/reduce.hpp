#pragma once

#include <bit>
#include <cstddef>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

#include "spmd/device.hpp"

namespace kreg::spmd {

/// Shared-memory tree-reduction schedules, following the progression in
/// Harris, "Optimizing Parallel Reduction in CUDA" (the code the paper's
/// reductions are modified from, ref [17]).
enum class ReduceVariant {
  /// Harris reduction #1: interleaved addressing — thread t is active when
  /// t % (2*stride) == 0. Simple but divergent on real warps.
  kInterleaved,
  /// Harris reduction #3: sequential addressing — active threads are the
  /// compact prefix t < stride. This is the schedule the paper describes
  /// ("each thread with t < T/2 adds to its sum the sum from thread
  /// t + T/2 … with T/4, T/8, and so on").
  kSequential,
};

std::string_view to_string(ReduceVariant variant) noexcept;

/// Result of an argmin reduction: the minimum value and its index in the
/// input array. Ties resolve to the smallest index, making the reduction
/// deterministic.
template <class T>
struct ArgminResult {
  T value = std::numeric_limits<T>::infinity();
  std::size_t index = 0;
};

namespace detail {

/// Rounds the requested block size down to a power of two within the
/// device's limit (tree reductions halve the active set each phase).
inline std::size_t reduction_block_dim(const Device& device,
                                       std::size_t requested) {
  std::size_t dim = std::min(requested,
                             device.properties().max_threads_per_block);
  if (dim == 0) {
    dim = 1;
  }
  return std::size_t{1} << (std::bit_width(dim) - 1);
}

/// Generic body shared by the span and MemView entry points: `View` only
/// needs size()/empty() and an operator[] whose result converts to T —
/// raw spans run unchecked, MemViews run under the sanitizer shadows.
template <class T, class View>
T reduce_sum_impl(Device& device, View input, std::size_t threads_per_block,
                  ReduceVariant variant) {
  if (input.empty()) {
    return T{0};
  }
  const std::size_t block_dim =
      reduction_block_dim(device, threads_per_block);
  T result{};
  device.launch_cooperative(
      "reduce_sum", LaunchConfig{1, block_dim}, block_dim * sizeof(T),
      [&](BlockCtx& ctx) {
        auto shared = ctx.template shared_as<T>(block_dim);
        // Phase 1: strided load-and-add. Thread t owns j ≡ t (mod T).
        ctx.for_each_thread([&](std::size_t t) {
          T acc{};
          for (std::size_t j = t; j < input.size(); j += block_dim) {
            acc += input[j];
          }
          shared[t] = acc;
        });
        // Phase 2: tree reduction; each for_each_thread return is a barrier.
        if (variant == ReduceVariant::kSequential) {
          for (std::size_t stride = block_dim / 2; stride > 0; stride /= 2) {
            ctx.for_each_thread([&](std::size_t t) {
              if (t < stride) {
                shared[t] += shared[t + stride];
              }
            });
          }
        } else {
          for (std::size_t stride = 1; stride < block_dim; stride *= 2) {
            ctx.for_each_thread([&](std::size_t t) {
              if (t % (2 * stride) == 0 && t + stride < block_dim) {
                shared[t] += shared[t + stride];
              }
            });
          }
        }
        result = shared[0];
      });
  return result;
}

template <class T, class View>
ArgminResult<T> reduce_argmin_impl(Device& device, View input,
                                   std::size_t threads_per_block) {
  ArgminResult<T> result;
  if (input.empty()) {
    return result;
  }
  const std::size_t block_dim =
      reduction_block_dim(device, threads_per_block);
  // 2T shared elements: T values following T payload indices.
  const std::size_t shared_bytes =
      block_dim * (sizeof(T) + sizeof(std::size_t));
  device.launch_cooperative(
      "reduce_argmin", LaunchConfig{1, block_dim}, shared_bytes,
      [&](BlockCtx& ctx) {
        // Payload indices first: sizeof(size_t) >= alignof(T) for the
        // float/double instantiations, so the value array that follows is
        // correctly aligned for any power-of-two block size.
        auto idxs = ctx.template shared_as<std::size_t>(block_dim);
        auto vals = ctx.template shared_as<T>(
            block_dim, block_dim * sizeof(std::size_t));

        ctx.for_each_thread([&](std::size_t t) {
          T best = std::numeric_limits<T>::infinity();
          std::size_t best_idx = input.size();  // sentinel: "no element"
          for (std::size_t j = t; j < input.size(); j += block_dim) {
            if (input[j] < best) {
              best = input[j];
              best_idx = j;
            }
          }
          vals[t] = best;
          idxs[t] = best_idx;
        });
        for (std::size_t stride = block_dim / 2; stride > 0; stride /= 2) {
          ctx.for_each_thread([&](std::size_t t) {
            if (t < stride) {
              const bool take_other =
                  vals[t + stride] < vals[t] ||
                  (vals[t + stride] == vals[t] && idxs[t + stride] < idxs[t]);
              if (take_other) {
                vals[t] = vals[t + stride];
                idxs[t] = idxs[t + stride];
              }
            }
          });
        }
        result.value = vals[0];
        result.index = idxs[0] < input.size() ? idxs[0] : std::size_t{0};
      });
  return result;
}

template <class T, class View>
T reduce_sum_grid_impl(Device& device, View input,
                       std::size_t threads_per_block) {
  if (input.empty()) {
    return T{0};
  }
  const std::size_t block_dim =
      reduction_block_dim(device, threads_per_block);
  const std::size_t chunk = 2 * block_dim;  // first add during global load
  std::size_t blocks = (input.size() + chunk - 1) / chunk;
  blocks = std::min(blocks, device.properties().max_grid_blocks);

  DeviceBuffer<T> partials =
      device.template alloc_global<T>(blocks, "reduce-partials");
  MemView<T> partial_view = partials.view();
  device.launch_cooperative(
      "reduce_sum_grid", LaunchConfig{blocks, block_dim},
      block_dim * sizeof(T), [&](BlockCtx& ctx) {
        auto shared = ctx.template shared_as<T>(block_dim);
        const std::size_t b = ctx.block_idx();
        ctx.for_each_thread([&](std::size_t t) {
          // Grid-stride over the whole array so any block count covers it;
          // "first add during load" folds two elements per step.
          T acc{};
          const std::size_t stride = blocks * chunk;
          for (std::size_t base = b * chunk; base < input.size();
               base += stride) {
            const std::size_t j0 = base + t;
            const std::size_t j1 = base + t + block_dim;
            if (j0 < input.size()) {
              acc += input[j0];
            }
            if (j1 < input.size() && j1 < base + chunk) {
              acc += input[j1];
            }
          }
          shared[t] = acc;
        });
        for (std::size_t stride = block_dim / 2; stride > 0; stride /= 2) {
          ctx.for_each_thread([&](std::size_t t) {
            if (t < stride) {
              shared[t] += shared[t + stride];
            }
          });
        }
        partial_view[b] = shared[0];
      });
  return reduce_sum_impl<T>(device, partial_view, threads_per_block,
                            ReduceVariant::kSequential);
}

}  // namespace detail

/// Single-block device sum, exactly the paper's §IV-B schedule: thread t
/// first accumulates the elements j with j ≡ t (mod T) into shared[t], then
/// a tree reduction leaves the total in shared[0].
///
/// `input` is a device-resident span (a DeviceBuffer's span) or, on a
/// sanitizer-enabled device, a checked MemView (DeviceBuffer::view()). The
/// requested block size is rounded down to a power of two and clamped to
/// the device limit.
template <class T>
T reduce_sum(Device& device, std::span<const T> input,
             std::size_t threads_per_block = 512,
             ReduceVariant variant = ReduceVariant::kSequential) {
  return detail::reduce_sum_impl<T>(device, input, threads_per_block,
                                    variant);
}
template <class T>
T reduce_sum(Device& device, MemView<const T> input,
             std::size_t threads_per_block = 512,
             ReduceVariant variant = ReduceVariant::kSequential) {
  return detail::reduce_sum_impl<T>(device, input, threads_per_block,
                                    variant);
}

/// Single-block device argmin — the paper's bandwidth-selection reduction.
///
/// The paper stores 2T elements in shared memory: T cross-validation scores
/// and T corresponding bandwidths, updated in tandem. Following the paper's
/// own footnote 2 ("we can simply save the integer-value of the thread
/// index… and access that element of the bandwidth array… after the
/// procedure"), the payload here is the input *index*, which the caller
/// maps back to a bandwidth. Ties resolve to the smallest index.
template <class T>
ArgminResult<T> reduce_argmin(Device& device, std::span<const T> input,
                              std::size_t threads_per_block = 512) {
  return detail::reduce_argmin_impl<T>(device, input, threads_per_block);
}
template <class T>
ArgminResult<T> reduce_argmin(Device& device, MemView<const T> input,
                              std::size_t threads_per_block = 512) {
  return detail::reduce_argmin_impl<T>(device, input, threads_per_block);
}

/// Single-block device minimum (same schedule as reduce_sum with `min`
/// replacing `+`).
template <class T>
T reduce_min(Device& device, std::span<const T> input,
             std::size_t threads_per_block = 512) {
  ArgminResult<T> r = reduce_argmin(device, input, threads_per_block);
  return r.value;
}

/// Two-level grid-wide sum for inputs too large for one block to chew
/// through efficiently: a grid of blocks each reduces a contiguous chunk to
/// a partial (in global memory), then a single-block pass reduces the
/// partials. Mirrors the multi-launch structure of Harris's full reduction.
template <class T>
T reduce_sum_grid(Device& device, std::span<const T> input,
                  std::size_t threads_per_block = 512) {
  return detail::reduce_sum_grid_impl<T>(device, input, threads_per_block);
}
template <class T>
T reduce_sum_grid(Device& device, MemView<const T> input,
                  std::size_t threads_per_block = 512) {
  return detail::reduce_sum_grid_impl<T>(device, input, threads_per_block);
}

}  // namespace kreg::spmd
