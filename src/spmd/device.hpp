#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "spmd/buffer.hpp"
#include "spmd/device_properties.hpp"
#include "spmd/errors.hpp"
#include "spmd/sanitizer/report.hpp"
#include "spmd/sanitizer/shadow.hpp"
#include "spmd/verify/interceptor.hpp"

namespace kreg::spmd {

/// 1-D launch configuration: `grid_blocks` blocks of `threads_per_block`
/// threads, exactly CUDA's <<<grid, block>>> for the 1-D case the paper
/// uses.
struct LaunchConfig {
  std::size_t grid_blocks = 1;
  std::size_t threads_per_block = 1;

  std::size_t total_threads() const noexcept {
    return grid_blocks * threads_per_block;
  }

  /// The paper's configuration: total threads == number of observations,
  /// 512 threads per block ("the fastest performance was found with threads
  /// per block set to 512").
  static LaunchConfig cover(std::size_t total, std::size_t block = 512) {
    LaunchConfig cfg;
    cfg.threads_per_block = block;
    cfg.grid_blocks = (total + block - 1) / block;
    if (cfg.grid_blocks == 0) {
      cfg.grid_blocks = 1;
    }
    return cfg;
  }
};

/// Per-thread identity inside an independent kernel (CUDA's
/// blockIdx/threadIdx/blockDim/gridDim for the 1-D case).
struct ThreadCtx {
  std::size_t block_idx = 0;
  std::size_t thread_idx = 0;
  std::size_t block_dim = 1;
  std::size_t grid_dim = 1;

  /// blockIdx.x * blockDim.x + threadIdx.x
  std::size_t global_idx() const noexcept {
    return block_idx * block_dim + thread_idx;
  }
  std::size_t total_threads() const noexcept { return grid_dim * block_dim; }
};

/// Per-dispatch identity for lane-batched kernels (Device::launch_lanes):
/// one dispatch covers `lanes` consecutive threads of a block — a simulated
/// warp slice of compile-time-friendly width — whose bodies the kernel is
/// expected to step in lockstep (SIMT). `lanes` is the full lane width for
/// every dispatch except possibly the block's ragged tail.
struct LaneCtx {
  std::size_t block_idx = 0;
  std::size_t base = 0;   ///< first thread_idx covered by this dispatch
  std::size_t lanes = 1;  ///< threads covered: [base, base + lanes)
  std::size_t block_dim = 1;
  std::size_t grid_dim = 1;

  /// global_idx() of the dispatch's first lane; lane l is global_base() + l.
  std::size_t global_base() const noexcept {
    return block_idx * block_dim + base;
  }
  std::size_t total_threads() const noexcept { return grid_dim * block_dim; }
};

/// Per-block context for cooperative (shared-memory) kernels.
///
/// CUDA kernels that use __syncthreads() are bulk-synchronous: computation
/// alternates "all threads run" phases with barriers. The simulator makes
/// those phases explicit: each `for_each_thread(f)` call runs f(tid) for
/// every tid in the block, and *returning from for_each_thread is the
/// barrier*. A CUDA kernel of the form
///
///     stage1();  __syncthreads();  stage2();
///
/// is expressed as
///
///     ctx.for_each_thread(stage1);
///     ctx.for_each_thread(stage2);
///
/// Within a phase the simulator may run threads in any order (the current
/// implementation runs them sequentially on the block's worker, which is a
/// legal schedule), so — exactly as on real hardware — a phase must not
/// read locations another thread of the same phase writes. On a
/// sanitizer-enabled device a per-block SharedShadow records every access
/// made through shared_as() views and reports exactly those intra-phase
/// RAW/WAR/WAW hazards.
class BlockCtx {
 public:
  BlockCtx(std::size_t block_idx, std::size_t block_dim, std::size_t grid_dim,
           std::span<std::byte> shared,
           detail::SharedShadow* shadow = nullptr) noexcept
      : block_idx_(block_idx),
        block_dim_(block_dim),
        grid_dim_(grid_dim),
        shared_(shared),
        shadow_(shadow) {}

  std::size_t block_idx() const noexcept { return block_idx_; }
  std::size_t block_dim() const noexcept { return block_dim_; }
  std::size_t grid_dim() const noexcept { return grid_dim_; }

  /// The block's shared memory reinterpreted as an array of T starting at
  /// `byte_offset` (for carving one shared arena into typed sections, e.g.
  /// argmin's index + value arrays). Throws LaunchConfigError when the
  /// request exceeds the bytes requested at launch or breaks T's alignment
  /// — on a sanitizer-enabled device a memcheck report is emitted first.
  template <class T>
  SharedSpan<T> shared_as(std::size_t count, std::size_t byte_offset = 0) {
    const std::size_t need = byte_offset + count * sizeof(T);
    if (need > shared_.size()) {
      if (shadow_ != nullptr) {
        shadow_->report_oob(
            byte_offset, "shared_as request of " + std::to_string(need) +
                             " bytes exceeds the " +
                             std::to_string(shared_.size()) +
                             " shared bytes requested at launch");
      }
      throw LaunchConfigError(
          "shared_as: request of " + std::to_string(need) +
          " bytes exceeds the " + std::to_string(shared_.size()) +
          " shared bytes requested at launch");
    }
    if (byte_offset % alignof(T) != 0) {
      throw LaunchConfigError("shared_as: byte offset " +
                              std::to_string(byte_offset) +
                              " breaks the requested type's alignment");
    }
    return SharedSpan<T>(reinterpret_cast<T*>(shared_.data() + byte_offset),
                         count, shadow_, byte_offset);
  }

  std::size_t shared_bytes() const noexcept { return shared_.size(); }

  /// One barrier-delimited phase: runs f(tid) for every tid in [0,
  /// block_dim). Returning = __syncthreads().
  template <class F>
  void for_each_thread(F&& f) {
    if (shadow_ != nullptr) {
      shadow_->begin_phase();
      for (std::size_t tid = 0; tid < block_dim_; ++tid) {
        shadow_->set_tid(tid);
        f(tid);
      }
      shadow_->end_phase();
      return;
    }
    for (std::size_t tid = 0; tid < block_dim_; ++tid) {
      f(tid);
    }
  }

 private:
  std::size_t block_idx_;
  std::size_t block_dim_;
  std::size_t grid_dim_;
  std::span<std::byte> shared_;
  detail::SharedShadow* shadow_;
};

/// Cumulative execution counters, for tests and the bench harness.
struct LaunchStats {
  std::size_t kernel_launches = 0;
  std::size_t cooperative_launches = 0;
  std::size_t blocks_executed = 0;
  std::size_t threads_executed = 0;
  std::size_t lane_dispatches = 0;  ///< LaneCtx invocations by launch_lanes
};

/// A simulated SPMD device.
///
/// Owns a global-memory ledger (allocation beyond
/// DeviceProperties::global_memory_bytes throws DeviceAllocError — the
/// paper's n > 20,000 failure mode), a constant-memory ledger (capped at
/// the 8 KB constant-cache working set, the paper's k ≤ 2,048 bandwidth
/// limit), and a kernel launcher that executes blocks concurrently on a
/// host thread pool. Launches are synchronous: they return after every
/// block has finished, like a kernel launch followed by
/// cudaDeviceSynchronize().
///
/// The sanitizer layer (src/spmd/sanitizer/) hooks in here: when enabled —
/// via enable_sanitizer(), the CheckedDevice subclass, the
/// KREG_SPMD_SANITIZE environment variable, or the KREG_SPMD_SANITIZE
/// CMake option — every launch gets per-block racecheck shadows, every
/// allocation an initcheck valid-bit shadow, and checked views report
/// memcheck violations, all through a pluggable SanitizerSink.
class Device {
 public:
  /// Creates a device with the given capabilities, executing on `pool`
  /// (nullptr = the process-global pool). Honors KREG_SPMD_SANITIZE in the
  /// environment: unset/"0"/"off" leaves the sanitizer disabled (unless the
  /// KREG_SPMD_SANITIZE CMake option compiled it default-on), "count"/"log"
  /// installs a CountingSink on stderr, anything else a ThrowSink.
  explicit Device(DeviceProperties props = DeviceProperties::tesla_s10(),
                  parallel::ThreadPool* pool = nullptr);

  /// Runs a non-throwing leak check over still-live allocations (the
  /// compute-sanitizer "leaked N bytes" summary at context teardown).
  ~Device();

  const DeviceProperties& properties() const noexcept { return props_; }
  const LaunchStats& stats() const noexcept { return stats_; }

  /// ---- Sanitizer ---------------------------------------------------------

  /// Installs `sink` and turns on full instrumentation for every later
  /// allocation and launch.
  void enable_sanitizer(std::shared_ptr<SanitizerSink> sink);
  bool sanitizer_enabled() const noexcept { return sanitizer_ != nullptr; }
  /// The live sanitizer state (counters, registry), or nullptr.
  detail::SanitizerState* sanitizer() noexcept { return sanitizer_.get(); }
  /// Reports every still-live allocation as a leak (throwing sinks throw on
  /// the first) and returns how many are live. No-op without a sanitizer.
  std::size_t check_leaks();

  /// ---- Verifier ----------------------------------------------------------

  /// Installs a launch interceptor (the static verifier's entry point):
  /// every later launch is offered to it first, and skipped here when the
  /// interceptor executed it itself. Requires the sanitizer — the verifier
  /// records through its shadows — and throws LaunchConfigError otherwise.
  void enable_interceptor(std::shared_ptr<verify::LaunchInterceptor> hook);
  bool interceptor_enabled() const noexcept { return interceptor_ != nullptr; }

  /// ---- Global memory ----------------------------------------------------

  /// Allocates `count` zero-initialized elements of global memory. Throws
  /// DeviceAllocError when the request exceeds the remaining capacity.
  /// `label` names the allocation in sanitizer reports.
  template <class T>
  DeviceBuffer<T> alloc_global(std::size_t count,
                               std::string_view label = "global") {
    charge(global_, count * sizeof(T));
    DeviceBuffer<T> buf(global_, count);
    if (sanitizer_) {
      buf.shadow_ =
          sanitizer_->register_alloc(std::string(label), sizeof(T), count);
      buf.state_ = sanitizer_;
    }
    return buf;
  }

  /// Bytes of global memory currently allocated / ever allocated at peak.
  std::size_t global_allocated() const noexcept {
    return global_->allocated_bytes;
  }
  std::size_t global_peak() const noexcept { return global_->peak_bytes; }
  std::size_t global_available() const noexcept {
    return global_->available();
  }

  /// ---- Constant memory --------------------------------------------------

  /// Uploads `values` into constant memory. Throws ConstantCapacityError
  /// when the data exceeds the constant-cache working set.
  template <class T>
  ConstantBuffer<T> upload_constant(std::span<const T> values,
                                    std::string_view label = "constant") {
    charge_constant(values.size() * sizeof(T));
    ConstantBuffer<T> buf(constant_, values.size());
    std::memcpy(buf.mutable_span().data(), values.data(),
                values.size() * sizeof(T));
    if (sanitizer_) {
      buf.shadow_ = sanitizer_->register_alloc(std::string(label), sizeof(T),
                                               values.size());
      buf.shadow_->mark_all_valid();  // fully written at upload
    }
    return buf;
  }

  /// ---- Transfers ----------------------------------------------------------

  /// Host → device copy; sizes must match. Marks the destination fully
  /// initialized in the initcheck shadow.
  template <class T>
  void copy_to_device(DeviceBuffer<T>& dst, std::span<const T> src) {
    dst.ensure_not_moved_from();
    if (dst.size() != src.size()) {
      throw LaunchConfigError("copy_to_device: size mismatch");
    }
    std::memcpy(dst.data(), src.data(), src.size() * sizeof(T));
    if (dst.shadow_) {
      dst.shadow_->mark_all_valid();
    }
  }

  /// Device → host copy; sizes must match. Reading back an allocation the
  /// device never fully wrote is an initcheck finding.
  template <class T>
  void copy_to_host(std::span<T> dst, const DeviceBuffer<T>& src) {
    src.ensure_not_moved_from();
    if (dst.size() != src.size()) {
      throw LaunchConfigError("copy_to_host: size mismatch");
    }
    if (src.shadow_) {
      if (auto bad = src.shadow_->first_invalid()) {
        src.shadow_->check_read(*bad);
      }
    }
    std::memcpy(dst.data(), src.data(), src.size() * sizeof(T));
  }

  /// ---- Kernel launches ----------------------------------------------------

  /// Launches an independent kernel: `kernel(ThreadCtx)` runs once per
  /// thread with no intra-block communication (the paper's main kernel
  /// "does not use shared memory or coordination across threads"). Blocks
  /// execute concurrently on the pool; threads within a block execute on
  /// the block's worker. Synchronous. `name` labels sanitizer reports.
  template <class F>
  void launch(const char* name, LaunchConfig cfg, F&& kernel) {
    validate(cfg, 0);
    ++stats_.kernel_launches;
    stats_.blocks_executed += cfg.grid_blocks;
    stats_.threads_executed += cfg.total_threads();
    detail::KernelScope scope(sanitizer_.get(), name);
    if (interceptor_ != nullptr) {
      const std::function<void(const ThreadCtx&)> thread_fn =
          [&kernel](const ThreadCtx& t) { kernel(t); };
      if (interceptor_->on_launch(name, cfg, thread_fn)) {
        return;
      }
    }
    parallel::parallel_for(
        cfg.grid_blocks,
        [&](std::size_t block) {
          ThreadCtx ctx;
          ctx.block_idx = block;
          ctx.block_dim = cfg.threads_per_block;
          ctx.grid_dim = cfg.grid_blocks;
          for (std::size_t tid = 0; tid < cfg.threads_per_block; ++tid) {
            ctx.thread_idx = tid;
            kernel(ctx);
          }
        },
        pool_);
  }
  template <class F>
  void launch(LaunchConfig cfg, F&& kernel) {
    launch("<kernel>", cfg, std::forward<F>(kernel));
  }

  /// Launches a lane-batched independent kernel: `kernel(LaneCtx)` runs
  /// once per group of `lane_width` consecutive threads — the batch
  /// interpretation of SIMT execution, where the kernel body itself steps
  /// its lanes in lockstep instead of the device stepping one thread at a
  /// time. A block of B threads yields ⌈B / lane_width⌉ dispatches, the
  /// last one ragged when B mod lane_width ≠ 0. Blocks still execute
  /// concurrently on the pool; dispatches within a block run in ascending
  /// base order on the block's worker. Synchronous.
  template <class F>
  void launch_lanes(const char* name, LaunchConfig cfg,
                    std::size_t lane_width, F&& kernel) {
    validate(cfg, 0);
    if (lane_width == 0) {
      throw LaunchConfigError("launch_lanes: lane_width must be > 0");
    }
    ++stats_.kernel_launches;
    stats_.blocks_executed += cfg.grid_blocks;
    stats_.threads_executed += cfg.total_threads();
    const std::size_t per_block =
        (cfg.threads_per_block + lane_width - 1) / lane_width;
    stats_.lane_dispatches += per_block * cfg.grid_blocks;
    detail::KernelScope scope(sanitizer_.get(), name);
    if (interceptor_ != nullptr) {
      const std::function<void(const LaneCtx&)> dispatch_fn =
          [&kernel](const LaneCtx& d) { kernel(d); };
      if (interceptor_->on_launch_lanes(name, cfg, lane_width, dispatch_fn)) {
        return;
      }
    }
    parallel::parallel_for(
        cfg.grid_blocks,
        [&](std::size_t block) {
          LaneCtx ctx;
          ctx.block_idx = block;
          ctx.block_dim = cfg.threads_per_block;
          ctx.grid_dim = cfg.grid_blocks;
          for (std::size_t base = 0; base < cfg.threads_per_block;
               base += lane_width) {
            ctx.base = base;
            ctx.lanes = std::min(lane_width, cfg.threads_per_block - base);
            kernel(ctx);
          }
        },
        pool_);
  }
  template <class F>
  void launch_lanes(LaunchConfig cfg, std::size_t lane_width, F&& kernel) {
    launch_lanes("<kernel>", cfg, lane_width, std::forward<F>(kernel));
  }

  /// Launches a cooperative kernel: `body(BlockCtx&)` runs once per block
  /// with `shared_bytes` of shared memory; intra-block barriers are the
  /// phase boundaries of BlockCtx::for_each_thread. Synchronous. On a
  /// sanitizer-enabled device each block gets a byte-granular racecheck
  /// shadow of its shared memory. `name` labels sanitizer reports.
  template <class F>
  void launch_cooperative(const char* name, LaunchConfig cfg,
                          std::size_t shared_bytes, F&& body) {
    validate(cfg, shared_bytes);
    ++stats_.cooperative_launches;
    stats_.blocks_executed += cfg.grid_blocks;
    stats_.threads_executed += cfg.total_threads();
    detail::KernelScope scope(sanitizer_.get(), name);
    if (interceptor_ != nullptr) {
      const std::function<void(BlockCtx&)> body_fn = [&body](BlockCtx& ctx) {
        body(ctx);
      };
      if (interceptor_->on_launch_cooperative(name, cfg, shared_bytes,
                                              body_fn)) {
        return;
      }
    }
    detail::SanitizerState* state = sanitizer_.get();
    parallel::parallel_for(
        cfg.grid_blocks,
        [&](std::size_t block) {
          std::vector<std::byte> shared(shared_bytes);
          if (state != nullptr) {
            detail::SharedShadow shadow(state, name, block, shared_bytes);
            BlockCtx ctx(block, cfg.threads_per_block, cfg.grid_blocks,
                         std::span<std::byte>(shared), &shadow);
            body(ctx);
          } else {
            BlockCtx ctx(block, cfg.threads_per_block, cfg.grid_blocks,
                         std::span<std::byte>(shared));
            body(ctx);
          }
        },
        pool_);
  }
  template <class F>
  void launch_cooperative(LaunchConfig cfg, std::size_t shared_bytes,
                          F&& body) {
    launch_cooperative("<kernel>", cfg, shared_bytes, std::forward<F>(body));
  }

 private:
  void charge(const std::shared_ptr<detail::MemoryLedger>& ledger,
              std::size_t bytes);
  void charge_constant(std::size_t bytes);
  void validate(const LaunchConfig& cfg, std::size_t shared_bytes) const;

  DeviceProperties props_;
  parallel::ThreadPool* pool_;
  std::shared_ptr<detail::MemoryLedger> global_;
  std::shared_ptr<detail::MemoryLedger> constant_;
  std::shared_ptr<detail::SanitizerState> sanitizer_;
  std::shared_ptr<verify::LaunchInterceptor> interceptor_;
  LaunchStats stats_;
};

}  // namespace kreg::spmd
