#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "spmd/buffer.hpp"
#include "spmd/device_properties.hpp"
#include "spmd/errors.hpp"

namespace kreg::spmd {

/// 1-D launch configuration: `grid_blocks` blocks of `threads_per_block`
/// threads, exactly CUDA's <<<grid, block>>> for the 1-D case the paper
/// uses.
struct LaunchConfig {
  std::size_t grid_blocks = 1;
  std::size_t threads_per_block = 1;

  std::size_t total_threads() const noexcept {
    return grid_blocks * threads_per_block;
  }

  /// The paper's configuration: total threads == number of observations,
  /// 512 threads per block ("the fastest performance was found with threads
  /// per block set to 512").
  static LaunchConfig cover(std::size_t total, std::size_t block = 512) {
    LaunchConfig cfg;
    cfg.threads_per_block = block;
    cfg.grid_blocks = (total + block - 1) / block;
    if (cfg.grid_blocks == 0) {
      cfg.grid_blocks = 1;
    }
    return cfg;
  }
};

/// Per-thread identity inside an independent kernel (CUDA's
/// blockIdx/threadIdx/blockDim/gridDim for the 1-D case).
struct ThreadCtx {
  std::size_t block_idx = 0;
  std::size_t thread_idx = 0;
  std::size_t block_dim = 1;
  std::size_t grid_dim = 1;

  /// blockIdx.x * blockDim.x + threadIdx.x
  std::size_t global_idx() const noexcept {
    return block_idx * block_dim + thread_idx;
  }
  std::size_t total_threads() const noexcept { return grid_dim * block_dim; }
};

/// Per-block context for cooperative (shared-memory) kernels.
///
/// CUDA kernels that use __syncthreads() are bulk-synchronous: computation
/// alternates "all threads run" phases with barriers. The simulator makes
/// those phases explicit: each `for_each_thread(f)` call runs f(tid) for
/// every tid in the block, and *returning from for_each_thread is the
/// barrier*. A CUDA kernel of the form
///
///     stage1();  __syncthreads();  stage2();
///
/// is expressed as
///
///     ctx.for_each_thread(stage1);
///     ctx.for_each_thread(stage2);
///
/// Within a phase the simulator may run threads in any order (the current
/// implementation runs them sequentially on the block's worker, which is a
/// legal schedule), so — exactly as on real hardware — a phase must not
/// read locations another thread of the same phase writes.
class BlockCtx {
 public:
  BlockCtx(std::size_t block_idx, std::size_t block_dim, std::size_t grid_dim,
           std::span<std::byte> shared) noexcept
      : block_idx_(block_idx),
        block_dim_(block_dim),
        grid_dim_(grid_dim),
        shared_(shared) {}

  std::size_t block_idx() const noexcept { return block_idx_; }
  std::size_t block_dim() const noexcept { return block_dim_; }
  std::size_t grid_dim() const noexcept { return grid_dim_; }

  /// The block's shared memory reinterpreted as an array of T. The caller
  /// is responsible for staying within the bytes requested at launch.
  template <class T>
  std::span<T> shared_as(std::size_t count) noexcept {
    return {reinterpret_cast<T*>(shared_.data()), count};
  }

  std::size_t shared_bytes() const noexcept { return shared_.size(); }

  /// One barrier-delimited phase: runs f(tid) for every tid in [0,
  /// block_dim). Returning = __syncthreads().
  template <class F>
  void for_each_thread(F&& f) {
    for (std::size_t tid = 0; tid < block_dim_; ++tid) {
      f(tid);
    }
  }

 private:
  std::size_t block_idx_;
  std::size_t block_dim_;
  std::size_t grid_dim_;
  std::span<std::byte> shared_;
};

/// Cumulative execution counters, for tests and the bench harness.
struct LaunchStats {
  std::size_t kernel_launches = 0;
  std::size_t cooperative_launches = 0;
  std::size_t blocks_executed = 0;
  std::size_t threads_executed = 0;
};

/// A simulated SPMD device.
///
/// Owns a global-memory ledger (allocation beyond
/// DeviceProperties::global_memory_bytes throws DeviceAllocError — the
/// paper's n > 20,000 failure mode), a constant-memory ledger (capped at
/// the 8 KB constant-cache working set, the paper's k ≤ 2,048 bandwidth
/// limit), and a kernel launcher that executes blocks concurrently on a
/// host thread pool. Launches are synchronous: they return after every
/// block has finished, like a kernel launch followed by
/// cudaDeviceSynchronize().
class Device {
 public:
  /// Creates a device with the given capabilities, executing on `pool`
  /// (nullptr = the process-global pool).
  explicit Device(DeviceProperties props = DeviceProperties::tesla_s10(),
                  parallel::ThreadPool* pool = nullptr);

  const DeviceProperties& properties() const noexcept { return props_; }
  const LaunchStats& stats() const noexcept { return stats_; }

  /// ---- Global memory ----------------------------------------------------

  /// Allocates `count` zero-initialized elements of global memory. Throws
  /// DeviceAllocError when the request exceeds the remaining capacity.
  template <class T>
  DeviceBuffer<T> alloc_global(std::size_t count) {
    charge(global_, count * sizeof(T));
    return DeviceBuffer<T>(global_, count);
  }

  /// Bytes of global memory currently allocated / ever allocated at peak.
  std::size_t global_allocated() const noexcept {
    return global_->allocated_bytes;
  }
  std::size_t global_peak() const noexcept { return global_->peak_bytes; }
  std::size_t global_available() const noexcept {
    return global_->available();
  }

  /// ---- Constant memory --------------------------------------------------

  /// Uploads `values` into constant memory. Throws ConstantCapacityError
  /// when the data exceeds the constant-cache working set.
  template <class T>
  ConstantBuffer<T> upload_constant(std::span<const T> values) {
    charge_constant(values.size() * sizeof(T));
    ConstantBuffer<T> buf(constant_, values.size());
    std::memcpy(buf.mutable_span().data(), values.data(),
                values.size() * sizeof(T));
    return buf;
  }

  /// ---- Transfers ----------------------------------------------------------

  /// Host → device copy; sizes must match.
  template <class T>
  void copy_to_device(DeviceBuffer<T>& dst, std::span<const T> src) {
    if (dst.size() != src.size()) {
      throw LaunchConfigError("copy_to_device: size mismatch");
    }
    std::memcpy(dst.data(), src.data(), src.size() * sizeof(T));
  }

  /// Device → host copy; sizes must match.
  template <class T>
  void copy_to_host(std::span<T> dst, const DeviceBuffer<T>& src) {
    if (dst.size() != src.size()) {
      throw LaunchConfigError("copy_to_host: size mismatch");
    }
    std::memcpy(dst.data(), src.data(), src.size() * sizeof(T));
  }

  /// ---- Kernel launches ----------------------------------------------------

  /// Launches an independent kernel: `kernel(ThreadCtx)` runs once per
  /// thread with no intra-block communication (the paper's main kernel
  /// "does not use shared memory or coordination across threads"). Blocks
  /// execute concurrently on the pool; threads within a block execute on
  /// the block's worker. Synchronous.
  template <class F>
  void launch(LaunchConfig cfg, F&& kernel) {
    validate(cfg, 0);
    ++stats_.kernel_launches;
    stats_.blocks_executed += cfg.grid_blocks;
    stats_.threads_executed += cfg.total_threads();
    parallel::parallel_for(
        cfg.grid_blocks,
        [&](std::size_t block) {
          ThreadCtx ctx;
          ctx.block_idx = block;
          ctx.block_dim = cfg.threads_per_block;
          ctx.grid_dim = cfg.grid_blocks;
          for (std::size_t tid = 0; tid < cfg.threads_per_block; ++tid) {
            ctx.thread_idx = tid;
            kernel(ctx);
          }
        },
        pool_);
  }

  /// Launches a cooperative kernel: `body(BlockCtx&)` runs once per block
  /// with `shared_bytes` of shared memory; intra-block barriers are the
  /// phase boundaries of BlockCtx::for_each_thread. Synchronous.
  template <class F>
  void launch_cooperative(LaunchConfig cfg, std::size_t shared_bytes,
                          F&& body) {
    validate(cfg, shared_bytes);
    ++stats_.cooperative_launches;
    stats_.blocks_executed += cfg.grid_blocks;
    stats_.threads_executed += cfg.total_threads();
    parallel::parallel_for(
        cfg.grid_blocks,
        [&](std::size_t block) {
          std::vector<std::byte> shared(shared_bytes);
          BlockCtx ctx(block, cfg.threads_per_block, cfg.grid_blocks,
                       std::span<std::byte>(shared));
          body(ctx);
        },
        pool_);
  }

 private:
  void charge(const std::shared_ptr<detail::MemoryLedger>& ledger,
              std::size_t bytes);
  void charge_constant(std::size_t bytes);
  void validate(const LaunchConfig& cfg, std::size_t shared_bytes) const;

  DeviceProperties props_;
  parallel::ThreadPool* pool_;
  std::shared_ptr<detail::MemoryLedger> global_;
  std::shared_ptr<detail::MemoryLedger> constant_;
  LaunchStats stats_;
};

}  // namespace kreg::spmd
