#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>

#include "parallel/blocked_range.hpp"
#include "parallel/thread_pool.hpp"

namespace kreg::parallel {

/// Scheduling policy for `parallel_for`.
enum class Schedule {
  kStatic,   ///< one contiguous slice per worker (lowest overhead)
  kDynamic,  ///< fixed-size chunks claimed from an atomic counter
};

namespace detail {

/// Rethrows the first exception captured by any worker, if any.
class ExceptionCollector {
 public:
  void capture() noexcept {
    std::lock_guard lock(mutex_);
    if (!first_) {
      first_ = std::current_exception();
    }
  }
  void rethrow_if_any() {
    if (first_) {
      std::rethrow_exception(first_);
    }
  }

 private:
  std::mutex mutex_;
  std::exception_ptr first_;
};

}  // namespace detail

/// Runs body(i) for every i in [0, n) across the pool.
///
/// `body` must be safe to invoke concurrently for distinct indices. The call
/// blocks until all iterations complete; the first exception thrown by any
/// iteration is rethrown on the calling thread (remaining iterations in
/// flight still run to completion). Passing pool == nullptr uses
/// ThreadPool::global(). Small n short-circuits to a serial loop.
template <class Body>
void parallel_for(std::size_t n, Body&& body, ThreadPool* pool = nullptr,
                  Schedule schedule = Schedule::kStatic,
                  std::size_t chunk = 64) {
  if (n == 0) {
    return;
  }
  if (pool == nullptr) {
    pool = &ThreadPool::global();
  }
  const std::size_t workers = pool->size();
  // Serial fallbacks: tiny pools, single iterations, and — crucially —
  // nested calls from one of this pool's own workers (blocking a worker on
  // subtasks that need a worker slot would deadlock once all workers wait).
  if (workers <= 1 || n == 1 || ThreadPool::current() == pool) {
    for (std::size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }

  detail::ExceptionCollector errors;
  std::atomic<std::size_t> pending{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  auto run_range = [&](BlockedRange range) {
    try {
      for (std::size_t i = range.begin; i < range.end; ++i) {
        body(i);
      }
    } catch (...) {
      errors.capture();
    }
    if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(done_mutex);
      done_cv.notify_all();
    }
  };

  std::vector<BlockedRange> ranges;
  if (schedule == Schedule::kStatic) {
    ranges = partition_evenly(n, workers);
  } else {
    ranges = partition_chunks(n, chunk);
  }
  pending.store(ranges.size(), std::memory_order_relaxed);
  for (const BlockedRange& range : ranges) {
    pool->submit([run_range, range] { run_range(range); });
  }
  {
    std::unique_lock lock(done_mutex);
    done_cv.wait(lock, [&] {
      return pending.load(std::memory_order_acquire) == 0;
    });
  }
  errors.rethrow_if_any();
}

/// Parallel reduction: combines body(i) values with `combine` into `init`.
/// `init` must be the identity element of `combine` (0 for +, +inf for min),
/// since each worker seeds its private partial with it.
///
/// Each worker accumulates a private partial over its slice; partials are
/// then combined in slice order on the calling thread, so the result is
/// deterministic for a fixed worker count (floating-point combination order
/// does not depend on scheduling).
template <class T, class Body, class Combine>
T parallel_reduce(std::size_t n, T init, Body&& body, Combine&& combine,
                  ThreadPool* pool = nullptr) {
  if (n == 0) {
    return init;
  }
  if (pool == nullptr) {
    pool = &ThreadPool::global();
  }
  const std::size_t workers = pool->size();
  // Same serial fallbacks as parallel_for, including the nested-call guard.
  if (workers <= 1 || n < 2 * workers || ThreadPool::current() == pool) {
    T acc = init;
    for (std::size_t i = 0; i < n; ++i) {
      acc = combine(acc, body(i));
    }
    return acc;
  }

  const std::vector<BlockedRange> ranges = partition_evenly(n, workers);
  std::vector<T> partials(ranges.size(), init);
  detail::ExceptionCollector errors;
  std::atomic<std::size_t> pending{ranges.size()};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t r = 0; r < ranges.size(); ++r) {
    pool->submit([&, r] {
      try {
        T acc = init;
        for (std::size_t i = ranges[r].begin; i < ranges[r].end; ++i) {
          acc = combine(acc, body(i));
        }
        partials[r] = acc;
      } catch (...) {
        errors.capture();
      }
      if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  {
    std::unique_lock lock(done_mutex);
    done_cv.wait(lock, [&] {
      return pending.load(std::memory_order_acquire) == 0;
    });
  }
  errors.rethrow_if_any();

  T acc = init;
  for (const T& partial : partials) {
    acc = combine(acc, partial);
  }
  return acc;
}

}  // namespace kreg::parallel
