#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace kreg::parallel {

/// Fixed-size worker thread pool.
///
/// This is the host-side parallel substrate: it plays the role of the
/// paper's "Multicore R" backend (Program 2) and executes the blocks of the
/// simulated SPMD device (`src/spmd/`). Tasks are plain `void()` callables
/// dispatched FIFO from a single shared queue; `wait_idle()` blocks until
/// every submitted task has finished, which is the completion barrier the
/// kernel launcher relies on.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = std::thread::hardware_concurrency()).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle();

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// Process-wide shared pool, sized to the hardware. Most library entry
  /// points that accept a `ThreadPool*` fall back to this instance when
  /// given nullptr.
  static ThreadPool& global();

  /// The pool whose worker is executing the calling thread, or nullptr when
  /// called from a non-worker thread. parallel_for / parallel_reduce use
  /// this to run nested parallelism serially instead of deadlocking: a
  /// worker that blocked waiting for subtasks would occupy the very slot
  /// those subtasks need.
  static ThreadPool* current() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace kreg::parallel
