#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace kreg::parallel {

/// Half-open index range [begin, end).
struct BlockedRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const noexcept { return end - begin; }
  bool empty() const noexcept { return begin >= end; }
};

/// Splits [0, n) into at most `parts` contiguous ranges whose sizes differ
/// by at most one. Fewer than `parts` ranges are returned when n < parts.
inline std::vector<BlockedRange> partition_evenly(std::size_t n,
                                                  std::size_t parts) {
  std::vector<BlockedRange> out;
  if (n == 0 || parts == 0) {
    return out;
  }
  if (parts > n) {
    parts = n;
  }
  out.reserve(parts);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  std::size_t begin = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = base + (p < extra ? 1 : 0);
    out.push_back({begin, begin + len});
    begin += len;
  }
  return out;
}

/// Splits [0, n) into ranges of at most `chunk` elements (the unit of the
/// dynamic scheduler).
inline std::vector<BlockedRange> partition_chunks(std::size_t n,
                                                  std::size_t chunk) {
  std::vector<BlockedRange> out;
  if (n == 0 || chunk == 0) {
    return out;
  }
  out.reserve((n + chunk - 1) / chunk);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    out.push_back({begin, begin + std::min(chunk, n - begin)});
  }
  return out;
}

}  // namespace kreg::parallel
