#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace kreg::sort {

/// True when the range is ascending (non-strict).
template <class T>
bool is_sorted(std::span<const T> a) {
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i] < a[i - 1]) {
      return false;
    }
  }
  return true;
}

/// True when every (key, value) pair of the sorted arrays still matches one
/// pair of the originals with multiplicity — a cheap O(n²) check used by the
/// test suite to verify payload sorts preserve key/value association.
template <class K, class V>
bool is_paired_permutation(std::span<const K> keys_before,
                           std::span<const V> values_before,
                           std::span<const K> keys_after,
                           std::span<const V> values_after) {
  if (keys_before.size() != keys_after.size() ||
      values_before.size() != values_after.size() ||
      keys_before.size() != values_before.size()) {
    return false;
  }
  std::vector<bool> used(keys_before.size(), false);
  for (std::size_t i = 0; i < keys_after.size(); ++i) {
    bool found = false;
    for (std::size_t j = 0; j < keys_before.size(); ++j) {
      if (!used[j] && keys_before[j] == keys_after[i] &&
          values_before[j] == values_after[i]) {
        used[j] = true;
        found = true;
        break;
      }
    }
    if (!found) {
      return false;
    }
  }
  return true;
}

}  // namespace kreg::sort
