#pragma once

#include <bit>
#include <cstddef>
#include <span>

#include "sort/heapsort.hpp"
#include "sort/insertion_sort.hpp"
#include "sort/iterative_quicksort.hpp"

namespace kreg::sort {

/// Introspective sort: iterative quicksort with a 2·log2(n) partition-depth
/// budget; segments that exhaust the budget are finished by heapsort, giving
/// an O(n log n) worst-case guarantee that plain quicksort lacks. The host
/// side of the library sorts with this; the simulated device threads use the
/// plain iterative quicksort, matching the paper's device code.
template <class T>
void introsort(std::span<T> a, std::size_t cutoff = 16) {
  const std::size_t n = a.size();
  if (n < 2) {
    return;
  }
  struct Segment {
    std::size_t lo;
    std::size_t hi;  // inclusive
    int depth;
  };
  const int max_depth = 2 * (std::bit_width(n) - 1);
  Segment stack[kQuicksortStackDepth];
  int top = 0;
  stack[top++] = {0, n - 1, max_depth};

  while (top > 0) {
    const Segment seg = stack[--top];
    const std::size_t len = seg.hi - seg.lo + 1;
    if (len <= cutoff) {
      insertion_sort(a.subspan(seg.lo, len));
      continue;
    }
    if (seg.depth == 0) {
      heapsort(a.subspan(seg.lo, len));
      continue;
    }
    const std::size_t mid = seg.lo + (seg.hi - seg.lo) / 2;
    const T pivot = detail::median_of_three(a, seg.lo, mid, seg.hi);

    std::size_t i = seg.lo;
    std::size_t j = seg.hi;
    for (;;) {
      while (a[i] < pivot) ++i;
      while (pivot < a[j]) --j;
      if (i >= j) {
        break;
      }
      using std::swap;
      swap(a[i], a[j]);
      ++i;
      --j;
    }
    const Segment left{seg.lo, j, seg.depth - 1};
    const Segment right{j + 1, seg.hi, seg.depth - 1};
    const bool left_larger = (left.hi - left.lo) > (right.hi - right.lo);
    if (left_larger) {
      stack[top++] = left;
      stack[top++] = right;
    } else {
      stack[top++] = right;
      stack[top++] = left;
    }
  }
}

}  // namespace kreg::sort
