#pragma once

#include <cstddef>
#include <span>
#include <utility>

#include "sort/insertion_sort.hpp"

namespace kreg::sort {

/// Maximum explicit-stack depth. Segments push the larger side first, so
/// depth is bounded by log2(n); 64 entries covers any addressable array.
inline constexpr int kQuicksortStackDepth = 64;

namespace detail {

/// Median-of-three pivot selection: orders a[lo], a[mid], a[hi] and returns
/// the median value, reducing the probability of quadratic behaviour on
/// already-sorted and organ-pipe inputs.
template <class T>
const T& median_of_three(std::span<T> a, std::size_t lo, std::size_t mid,
                         std::size_t hi) {
  using std::swap;
  if (a[mid] < a[lo]) swap(a[mid], a[lo]);
  if (a[hi] < a[lo]) swap(a[hi], a[lo]);
  if (a[hi] < a[mid]) swap(a[hi], a[mid]);
  return a[mid];
}

template <class K, class V>
void swap_kv(std::span<K> keys, std::span<V> values, std::size_t i,
             std::size_t j) {
  using std::swap;
  swap(keys[i], keys[j]);
  swap(values[i], values[j]);
}

template <class K, class V>
const K& median_of_three_kv(std::span<K> keys, std::span<V> values,
                            std::size_t lo, std::size_t mid, std::size_t hi) {
  if (keys[mid] < keys[lo]) swap_kv(keys, values, mid, lo);
  if (keys[hi] < keys[lo]) swap_kv(keys, values, hi, lo);
  if (keys[hi] < keys[mid]) swap_kv(keys, values, hi, mid);
  return keys[mid];
}

}  // namespace detail

/// Iterative (non-recursive) quicksort.
///
/// This is the device sort from the paper (§IV-B): an explicit-stack variant
/// of Finley's iterative quicksort, chosen there because early CUDA compute
/// capabilities forbid recursion and because it avoids the recursive call
/// tree's stack growth. Each simulated device thread runs one complete sort
/// of its own n-element slice. Hoare partitioning with a median-of-three
/// pivot; runs shorter than `cutoff` are finished by insertion sort.
template <class T>
void iterative_quicksort(std::span<T> keys, std::size_t cutoff = 16) {
  if (keys.size() < 2) {
    return;
  }
  struct Segment {
    std::size_t lo;
    std::size_t hi;  // inclusive
  };
  Segment stack[kQuicksortStackDepth];
  int top = 0;
  stack[top++] = {0, keys.size() - 1};

  while (top > 0) {
    const Segment seg = stack[--top];
    if (seg.hi - seg.lo + 1 <= cutoff) {
      insertion_sort(keys.subspan(seg.lo, seg.hi - seg.lo + 1));
      continue;
    }
    const std::size_t mid = seg.lo + (seg.hi - seg.lo) / 2;
    const T pivot = detail::median_of_three(keys, seg.lo, mid, seg.hi);

    // Hoare partition.
    std::size_t i = seg.lo;
    std::size_t j = seg.hi;
    for (;;) {
      while (keys[i] < pivot) ++i;
      while (pivot < keys[j]) --j;
      if (i >= j) {
        break;
      }
      using std::swap;
      swap(keys[i], keys[j]);
      ++i;
      --j;
    }
    // Push the larger side first so the stack depth stays logarithmic.
    const Segment left{seg.lo, j};
    const Segment right{j + 1, seg.hi};
    const bool left_larger = (left.hi - left.lo) > (right.hi - right.lo);
    if (left_larger) {
      stack[top++] = left;
      stack[top++] = right;
    } else {
      stack[top++] = right;
      stack[top++] = left;
    }
  }
}

/// Iterative quicksort of `keys` carrying a parallel `values` payload — the
/// exact operation each device thread performs in the paper: sort the row of
/// |X_i − X_j| distances while permuting the matching Y_i row identically.
/// Requires keys.size() == values.size().
template <class K, class V>
void iterative_quicksort_kv(std::span<K> keys, std::span<V> values,
                            std::size_t cutoff = 16) {
  if (keys.size() < 2) {
    return;
  }
  struct Segment {
    std::size_t lo;
    std::size_t hi;  // inclusive
  };
  Segment stack[kQuicksortStackDepth];
  int top = 0;
  stack[top++] = {0, keys.size() - 1};

  while (top > 0) {
    const Segment seg = stack[--top];
    const std::size_t len = seg.hi - seg.lo + 1;
    if (len <= cutoff) {
      insertion_sort_kv(keys.subspan(seg.lo, len), values.subspan(seg.lo, len));
      continue;
    }
    const std::size_t mid = seg.lo + (seg.hi - seg.lo) / 2;
    const K pivot = detail::median_of_three_kv(keys, values, seg.lo, mid, seg.hi);

    std::size_t i = seg.lo;
    std::size_t j = seg.hi;
    for (;;) {
      while (keys[i] < pivot) ++i;
      while (pivot < keys[j]) --j;
      if (i >= j) {
        break;
      }
      detail::swap_kv(keys, values, i, j);
      ++i;
      --j;
    }
    const Segment left{seg.lo, j};
    const Segment right{j + 1, seg.hi};
    const bool left_larger = (left.hi - left.lo) > (right.hi - right.lo);
    if (left_larger) {
      stack[top++] = left;
      stack[top++] = right;
    } else {
      stack[top++] = right;
      stack[top++] = left;
    }
  }
}

}  // namespace kreg::sort
