#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace kreg::sort {

/// Stable indexed two-key sort: reorders `order` (a range of indices into
/// some external table) so that `primary(i)` is ascending and ties are
/// broken by `secondary(i)` descending; rows equal under both keys keep
/// their incoming relative order. This is the σ-sort shape the batched
/// window sweep needs — group lanes by admission-window *position* bucket,
/// then by *length* within a bucket — but the helper is key-agnostic.
///
/// Implemented as a bottom-up merge over a caller-provided scratch buffer
/// (resized as needed), so per-scope invocations inside a tiled sweep reuse
/// one allocation. O(count · log count) comparisons, stable by
/// construction: the merge takes from the left run on ties.
template <class Index, class Primary, class Secondary>
void two_key_argsort(std::span<Index> order, Primary&& primary,
                     Secondary&& secondary, std::vector<Index>& scratch) {
  const std::size_t count = order.size();
  if (count < 2) {
    return;
  }
  if (scratch.size() < count) {
    scratch.resize(count);
  }
  const auto before = [&](Index a, Index b) {
    const auto pa = primary(a);
    const auto pb = primary(b);
    if (pa != pb) {
      return pa < pb;
    }
    return secondary(a) > secondary(b);
  };
  Index* src = order.data();
  Index* dst = scratch.data();
  for (std::size_t width = 1; width < count; width *= 2) {
    for (std::size_t lo = 0; lo < count; lo += 2 * width) {
      const std::size_t mid = lo + width < count ? lo + width : count;
      const std::size_t hi = lo + 2 * width < count ? lo + 2 * width : count;
      std::size_t i = lo;
      std::size_t j = mid;
      std::size_t o = lo;
      while (i < mid && j < hi) {
        // Strictly-before from the right run only: equal rows come from the
        // left run first, which is what makes the sort stable.
        dst[o++] = before(src[j], src[i]) ? src[j++] : src[i++];
      }
      while (i < mid) {
        dst[o++] = src[i++];
      }
      while (j < hi) {
        dst[o++] = src[j++];
      }
    }
    std::swap(src, dst);
  }
  if (src != order.data()) {
    for (std::size_t i = 0; i < count; ++i) {
      order[i] = src[i];
    }
  }
}

/// Convenience overload with a local scratch buffer.
template <class Index, class Primary, class Secondary>
void two_key_argsort(std::span<Index> order, Primary&& primary,
                     Secondary&& secondary) {
  std::vector<Index> scratch;
  two_key_argsort(order, std::forward<Primary>(primary),
                  std::forward<Secondary>(secondary), scratch);
}

}  // namespace kreg::sort
