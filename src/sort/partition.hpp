#pragma once

#include <cstddef>
#include <span>
#include <utility>

namespace kreg::sort {

/// Two-way partition of a key array with an auxiliary payload: moves every
/// element with key <= bound to the front (in unspecified order) and returns
/// the count. Single forward pass, O(n) swaps, no allocation — the standard
/// Lomuto partition generalized to carry a payload alongside the keys.
///
/// Used by the per-row sorted sweep to truncate its quicksort at the largest
/// grid bandwidth: rows are partitioned by dist <= h_max first, so only the
/// candidates that some bandwidth can ever admit get sorted.
template <class K, class V>
inline std::size_t partition_kv(std::span<K> keys, std::span<V> values,
                                K bound) {
  std::size_t q = 0;
  for (std::size_t l = 0; l < keys.size(); ++l) {
    if (keys[l] <= bound) {
      if (l != q) {
        std::swap(keys[q], keys[l]);
        std::swap(values[q], values[l]);
      }
      ++q;
    }
  }
  return q;
}

/// Keys-only variant (same contract, no payload).
template <class K>
inline std::size_t partition_keys(std::span<K> keys, K bound) {
  std::size_t q = 0;
  for (std::size_t l = 0; l < keys.size(); ++l) {
    if (keys[l] <= bound) {
      if (l != q) {
        std::swap(keys[q], keys[l]);
      }
      ++q;
    }
  }
  return q;
}

}  // namespace kreg::sort
