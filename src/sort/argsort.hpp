#pragma once

#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "sort/iterative_quicksort.hpp"

namespace kreg::sort {

/// Returns the permutation that sorts `keys` ascending (stable ordering is
/// NOT guaranteed; equal keys may appear in any relative order). Implemented
/// as a key-value quicksort over a scratch copy of the keys so the input is
/// left untouched.
template <class T>
std::vector<std::size_t> argsort(std::span<const T> keys) {
  std::vector<std::size_t> perm(keys.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::vector<T> scratch(keys.begin(), keys.end());
  iterative_quicksort_kv(std::span<T>(scratch), std::span<std::size_t>(perm));
  return perm;
}

/// Applies a permutation: out[i] = values[perm[i]].
template <class T>
std::vector<T> apply_permutation(std::span<const T> values,
                                 std::span<const std::size_t> perm) {
  std::vector<T> out;
  out.reserve(perm.size());
  for (std::size_t idx : perm) {
    out.push_back(values[idx]);
  }
  return out;
}

}  // namespace kreg::sort
