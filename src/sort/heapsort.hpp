#pragma once

#include <cstddef>
#include <span>
#include <utility>

namespace kreg::sort {

namespace detail {

template <class T>
void sift_down(std::span<T> a, std::size_t start, std::size_t end) {
  std::size_t root = start;
  while (2 * root + 1 < end) {
    std::size_t child = 2 * root + 1;
    if (child + 1 < end && a[child] < a[child + 1]) {
      ++child;
    }
    if (a[root] < a[child]) {
      using std::swap;
      swap(a[root], a[child]);
      root = child;
    } else {
      return;
    }
  }
}

template <class K, class V>
void sift_down_kv(std::span<K> keys, std::span<V> values, std::size_t start,
                  std::size_t end) {
  std::size_t root = start;
  while (2 * root + 1 < end) {
    std::size_t child = 2 * root + 1;
    if (child + 1 < end && keys[child] < keys[child + 1]) {
      ++child;
    }
    if (keys[root] < keys[child]) {
      using std::swap;
      swap(keys[root], keys[child]);
      swap(values[root], values[child]);
      root = child;
    } else {
      return;
    }
  }
}

}  // namespace detail

/// In-place heapsort: O(n log n) worst case, no extra memory. Used as the
/// depth-limit fallback inside `introsort`.
template <class T>
void heapsort(std::span<T> a) {
  const std::size_t n = a.size();
  if (n < 2) {
    return;
  }
  for (std::size_t start = n / 2; start-- > 0;) {
    detail::sift_down(a, start, n);
  }
  for (std::size_t end = n; end-- > 1;) {
    using std::swap;
    swap(a[0], a[end]);
    detail::sift_down(a, 0, end);
  }
}

/// Heapsort of `keys` applying the same permutation to `values`.
/// Requires keys.size() == values.size().
template <class K, class V>
void heapsort_kv(std::span<K> keys, std::span<V> values) {
  const std::size_t n = keys.size();
  if (n < 2) {
    return;
  }
  for (std::size_t start = n / 2; start-- > 0;) {
    detail::sift_down_kv(keys, values, start, n);
  }
  for (std::size_t end = n; end-- > 1;) {
    using std::swap;
    swap(keys[0], keys[end]);
    swap(values[0], values[end]);
    detail::sift_down_kv(keys, values, 0, end);
  }
}

}  // namespace kreg::sort
