#pragma once

#include <cstddef>
#include <span>
#include <utility>

namespace kreg::sort {

/// In-place insertion sort. O(n²) worst case but the fastest choice for the
/// short runs left behind by quicksort partitioning; used below the cutoff
/// in `introsort` and `iterative_quicksort`.
template <class T>
void insertion_sort(std::span<T> keys) {
  for (std::size_t i = 1; i < keys.size(); ++i) {
    T key = std::move(keys[i]);
    std::size_t j = i;
    while (j > 0 && key < keys[j - 1]) {
      keys[j] = std::move(keys[j - 1]);
      --j;
    }
    keys[j] = std::move(key);
  }
}

/// Insertion sort of `keys` that applies the same permutation to the
/// parallel `values` array (the paper's "auxiliary variable").
/// Requires keys.size() == values.size().
template <class K, class V>
void insertion_sort_kv(std::span<K> keys, std::span<V> values) {
  for (std::size_t i = 1; i < keys.size(); ++i) {
    K key = std::move(keys[i]);
    V value = std::move(values[i]);
    std::size_t j = i;
    while (j > 0 && key < keys[j - 1]) {
      keys[j] = std::move(keys[j - 1]);
      values[j] = std::move(values[j - 1]);
      --j;
    }
    keys[j] = std::move(key);
    values[j] = std::move(value);
  }
}

}  // namespace kreg::sort
