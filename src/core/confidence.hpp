#pragma once

#include <cstddef>
#include <vector>

#include "core/kernels.hpp"
#include "data/dataset.hpp"

namespace kreg {

/// Pointwise confidence band for a Nadaraya–Watson regression — the
/// paper's second listed extension ("estimation of leave-one-out
/// cross-validated confidence intervals for … kernel regressions").
///
/// Construction: leave-one-out residuals ê_i = Y_i − ĝ₋ᵢ(X_i) at the
/// selected bandwidth estimate the local noise; at each evaluation point x
/// the variance of the weighted mean is the heteroskedasticity-robust
/// sandwich  V̂(x) = Σ_l w_l(x)² ê_l² / (Σ_l w_l(x))², giving the band
/// ĝ(x) ± z_{(1+level)/2} √V̂(x). Points where M(x) = 0 (no support) or
/// where an observation's own LOO prediction was undefined are handled by
/// dropping the corresponding terms.
struct ConfidenceBand {
  std::vector<double> x;      ///< evaluation points
  std::vector<double> fit;    ///< ĝ(x) (NaN where undefined)
  std::vector<double> lower;  ///< lower band edge
  std::vector<double> upper;  ///< upper band edge
  double bandwidth = 0.0;
  double level = 0.0;
};

/// Computes the band over `points` evenly spaced evaluation points spanning
/// the X range. Requires 0 < level < 1, h > 0, points >= 2.
ConfidenceBand nw_confidence_band(const data::Dataset& data, double h,
                                  KernelType kernel = KernelType::kEpanechnikov,
                                  std::size_t points = 100,
                                  double level = 0.95);

}  // namespace kreg
