#include "core/rule_of_thumb.hpp"

#include <cmath>
#include <stdexcept>

#include "core/loocv.hpp"
#include "stats/descriptive.hpp"

namespace kreg {

namespace {

/// Canonical bandwidth (delta_0 in Marron & Nolan 1988): the kernel-
/// specific scale factor (R(K)/κ₂(K)²)^(1/5) that makes bandwidths
/// comparable across kernels. Rules of thumb are stated for the Gaussian;
/// multiplying by delta(K)/delta(Gaussian) transfers them.
double canonical_delta(KernelType kernel) {
  const double r = roughness(kernel);
  const double k2 = second_moment(kernel);
  return std::pow(r / (k2 * k2), 0.2);
}

double kernel_factor(KernelType kernel) {
  return canonical_delta(kernel) / canonical_delta(KernelType::kGaussian);
}

void check_sample(std::span<const double> xs) {
  if (xs.size() < 2) {
    throw std::invalid_argument("rule of thumb: need at least 2 observations");
  }
}

}  // namespace

double silverman_bandwidth(std::span<const double> xs, KernelType kernel) {
  check_sample(xs);
  const double sd = stats::stddev(xs);
  const double iqr_scaled = stats::iqr(xs) / 1.349;
  double spread = std::min(sd, iqr_scaled);
  if (spread <= 0.0) {
    spread = std::max(sd, iqr_scaled);  // degenerate IQR (heavy ties)
  }
  if (spread <= 0.0) {
    throw std::invalid_argument("silverman_bandwidth: zero-spread sample");
  }
  const double n = static_cast<double>(xs.size());
  return 0.9 * spread * std::pow(n, -0.2) * kernel_factor(kernel);
}

double scott_bandwidth(std::span<const double> xs, KernelType kernel) {
  check_sample(xs);
  const double sd = stats::stddev(xs);
  if (sd <= 0.0) {
    throw std::invalid_argument("scott_bandwidth: zero-variance sample");
  }
  const double n = static_cast<double>(xs.size());
  return 1.06 * sd * std::pow(n, -0.2) * kernel_factor(kernel);
}

SelectionResult rule_of_thumb_select(const data::Dataset& data,
                                     ThumbRule rule, KernelType kernel) {
  data.validate();
  const double h = rule == ThumbRule::kSilverman
                       ? silverman_bandwidth(data.x, kernel)
                       : scott_bandwidth(data.x, kernel);
  SelectionResult result;
  result.bandwidth = h;
  result.cv_score = cv_score(data, h, kernel);
  result.evaluations = 1;
  result.method = rule == ThumbRule::kSilverman
                      ? "rule-of-thumb(silverman)"
                      : "rule-of-thumb(scott)";
  return result;
}

}  // namespace kreg
