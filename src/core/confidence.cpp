#include "core/confidence.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/loocv.hpp"
#include "stats/descriptive.hpp"
#include "stats/normal.hpp"

namespace kreg {

ConfidenceBand nw_confidence_band(const data::Dataset& data, double h,
                                  KernelType kernel, std::size_t points,
                                  double level) {
  data.validate();
  if (data.empty()) {
    throw std::invalid_argument("nw_confidence_band: empty dataset");
  }
  if (!(h > 0.0)) {
    throw std::invalid_argument("nw_confidence_band: bandwidth must be > 0");
  }
  if (points < 2) {
    throw std::invalid_argument("nw_confidence_band: need >= 2 points");
  }
  if (!(level > 0.0 && level < 1.0)) {
    throw std::invalid_argument("nw_confidence_band: level must be in (0,1)");
  }

  const std::size_t n = data.size();
  const double z = stats::normal_quantile(0.5 + level / 2.0);

  // Leave-one-out squared residuals at the working bandwidth. Observations
  // with M(X_i) = 0 get a NaN marker and are skipped in the variance sums.
  const std::vector<LooPrediction> loo = loo_predict_all(data, h, kernel);
  std::vector<double> sq_resid(n, std::numeric_limits<double>::quiet_NaN());
  for (std::size_t i = 0; i < n; ++i) {
    if (loo[i].valid) {
      const double e = data.y[i] - loo[i].value;
      sq_resid[i] = e * e;
    }
  }

  ConfidenceBand band;
  band.bandwidth = h;
  band.level = level;
  band.x.reserve(points);
  band.fit.reserve(points);
  band.lower.reserve(points);
  band.upper.reserve(points);

  const double lo = stats::min(data.x);
  const double hi = stats::max(data.x);
  const double step = (hi - lo) / static_cast<double>(points - 1);

  for (std::size_t p = 0; p < points; ++p) {
    const double x = lo + step * static_cast<double>(p);
    double w_sum = 0.0;
    double wy_sum = 0.0;
    double w2e2_sum = 0.0;
    for (std::size_t l = 0; l < n; ++l) {
      const double w = kernel_value(kernel, (x - data.x[l]) / h);
      if (w == 0.0) {
        continue;
      }
      w_sum += w;
      wy_sum += w * data.y[l];
      if (!std::isnan(sq_resid[l])) {
        w2e2_sum += w * w * sq_resid[l];
      }
    }
    band.x.push_back(x);
    if (w_sum == 0.0) {
      const double nan = std::numeric_limits<double>::quiet_NaN();
      band.fit.push_back(nan);
      band.lower.push_back(nan);
      band.upper.push_back(nan);
      continue;
    }
    const double fit = wy_sum / w_sum;
    const double se = std::sqrt(w2e2_sum) / w_sum;
    band.fit.push_back(fit);
    band.lower.push_back(fit - z * se);
    band.upper.push_back(fit + z * se);
  }
  return band;
}

}  // namespace kreg
