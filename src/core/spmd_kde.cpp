#include "core/spmd_kde.hpp"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/detail/device_sweep.hpp"
#include "core/detail/kde_polynomials.hpp"
#include "sort/introsort.hpp"
#include "sort/iterative_quicksort.hpp"

namespace kreg {

SpmdKdeSelector::SpmdKdeSelector(spmd::Device& device, SpmdKdeConfig config)
    : device_(device), config_(config) {
  if (config_.threads_per_block == 0) {
    throw std::invalid_argument("SpmdKdeSelector: threads_per_block == 0");
  }
}

std::size_t SpmdKdeSelector::estimated_bytes(std::size_t n, std::size_t k,
                                             SweepAlgorithm algorithm) {
  if (algorithm == SweepAlgorithm::kWindow) {
    // Sorted x + scores + the n×k LSCV-partial matrix.
    return (n + k + n * k) * sizeof(double);
  }
  // x + scores + the n×n row matrix + two n×k contribution matrices.
  return (n + k + n * n + 2 * n * k) * sizeof(double);
}

SelectionResult SpmdKdeSelector::select(std::span<const double> xs,
                                        const BandwidthGrid& grid) const {
  if (!is_kde_sweepable(config_.kernel)) {
    throw std::invalid_argument(
        "SpmdKdeSelector: kernel '" + std::string(to_string(config_.kernel)) +
        "' lacks a single-polynomial self-convolution");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("SpmdKdeSelector: need >= 2 observations");
  }
  const std::size_t n = xs.size();
  const std::size_t k = grid.size();
  const std::size_t tpb = std::min(config_.threads_per_block,
                                   device_.properties().max_threads_per_block);
  const detail::SupportPolynomial kpoly =
      detail::kde_kernel_poly(config_.kernel);
  const detail::SupportPolynomial cpoly =
      detail::kde_convolution_poly(config_.kernel);
  const double roughness_value = roughness(config_.kernel);
  const bool window = config_.algorithm == SweepAlgorithm::kWindow;

  // Host-side staging: the window sweep sorts X once before upload — the
  // LSCV sums run over all (i, l) pairs, so visiting observations in
  // sorted order changes nothing.
  std::vector<double> host_x(xs.begin(), xs.end());
  if (window) {
    sort::introsort(std::span<double>(host_x));
  }

  // Device memory plan: the bandwidth grid in constant memory (same
  // 8 KB / 2,048-value cap as regression); X in global memory; per-row
  // mode adds the n×n |Δ| row matrix and two n×k contribution matrices
  // (bandwidth-major), window mode a single n×k LSCV-partial matrix.
  std::vector<double> host_grid(grid.values());
  spmd::ConstantBuffer<double> c_grid =
      device_.upload_constant<double>(host_grid, "bandwidth-grid");
  spmd::DeviceBuffer<double> d_x = device_.alloc_global<double>(n, "x");
  device_.copy_to_device(d_x, std::span<const double>(host_x));
  spmd::DeviceBuffer<double> d_rows;
  spmd::DeviceBuffer<double> d_conv;
  spmd::DeviceBuffer<double> d_loo;
  spmd::DeviceBuffer<double> d_partial;
  if (window) {
    d_partial = device_.alloc_global<double>(n * k, "lscv-partials");
  } else {
    d_rows = device_.alloc_global<double>(n * n, "dist-rows");
    d_conv = device_.alloc_global<double>(n * k, "conv-sums");
    d_loo = device_.alloc_global<double>(n * k, "loo-sums");
  }
  spmd::DeviceBuffer<double> d_scores =
      device_.alloc_global<double>(k, "lscv-scores");

  // X and the row matrix stay raw spans (the per-thread quicksort needs raw
  // element references); the grid, contribution sums, partials, and scores
  // go through checked views for the sanitizer.
  std::span<const double> dxs = d_x.span();
  spmd::MemView<const double> hs = c_grid.view();
  std::span<double> rows = d_rows.span();
  spmd::MemView<double> conv_all = d_conv.view();
  spmd::MemView<double> loo_all = d_loo.view();
  spmd::MemView<double> partial_all = d_partial.view();

  // Main kernel, one thread per observation.
  const std::size_t max_power = std::max(kpoly.max_power, cpoly.max_power);
  device_.launch(
      "kde_lscv_sweep", spmd::LaunchConfig::cover(n, tpb),
      [&, n, k](const spmd::ThreadCtx& t) {
        const std::size_t i = t.global_idx();
        if (i >= n) {
          return;
        }
        if (window) {
          // Window sweep: two monotone admission windows over the
          // device-global sorted X; no private row, no per-thread sort.
          // The two pair sums combine immediately into the thread's
          // bandwidth-major LSCV partials.
          detail::kde_window_sweep_thread(
              dxs, hs, kpoly, cpoly, i,
              [&](std::size_t b, double conv, double loo) {
                partial_all[b * n + i] =
                    detail::lscv_pair_partial(conv, loo, n, hs[b]);
              });
          return;
        }
        std::span<double> row = rows.subspan(i * n, n);
        const double xi = dxs[i];
        for (std::size_t l = 0; l < n; ++l) {
          const double d = dxs[l] - xi;
          row[l] = d < 0.0 ? -d : d;
        }
        sort::iterative_quicksort(row);

        detail::MomentSweep conv_sweep;
        detail::MomentSweep loo_sweep;
        for (std::size_t b = 0; b < k; ++b) {
          const double h = hs[b];
          conv_sweep.admit_through(row, cpoly.support_scale * h, max_power);
          loo_sweep.admit_through(row, kpoly.support_scale * h, max_power);
          // Bandwidth-major for contiguous per-bandwidth reductions.
          conv_all[b * n + i] = conv_sweep.combine(cpoly, h);
          loo_all[b * n + i] = loo_sweep.combine(kpoly, h);
        }
      });

  // Single-block reductions (k window, 2k per-row), then assemble the
  // LSCV scores.
  spmd::MemView<double> scores = d_scores.view();
  for (std::size_t b = 0; b < k; ++b) {
    if (window) {
      const double partial_total = spmd::reduce_sum<double>(
          device_, partial_all.subview(b * n, n), tpb, config_.reduce_variant);
      scores[b] = roughness_value / (static_cast<double>(n) * grid[b]) +
                  partial_total;
    } else {
      const double conv_total = spmd::reduce_sum<double>(
          device_, conv_all.subview(b * n, n), tpb, config_.reduce_variant);
      const double loo_total = spmd::reduce_sum<double>(
          device_, loo_all.subview(b * n, n), tpb, config_.reduce_variant);
      scores[b] = detail::assemble_lscv(roughness_value, conv_total,
                                        loo_total, n, grid[b]);
    }
  }
  const spmd::ArgminResult<double> best = spmd::reduce_argmin<double>(
      device_, spmd::MemView<const double>(scores), tpb);

  SelectionResult result;
  result.bandwidth = grid[best.index];
  result.cv_score = best.value;
  result.grid = grid.values();
  std::vector<double> host_scores(k);
  device_.copy_to_host(std::span<double>(host_scores), d_scores);
  result.scores = std::move(host_scores);
  result.evaluations = k;
  result.method = name();
  return result;
}

std::string SpmdKdeSelector::name() const {
  std::string n = "spmd-kde-lscv(";
  n += to_string(config_.kernel);
  n += ",tpb=" + std::to_string(config_.threads_per_block);
  if (config_.algorithm == SweepAlgorithm::kWindow) {
    n += ",window";
  }
  n += ")";
  return n;
}

}  // namespace kreg
