#include "core/spmd_kde.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/detail/device_sweep.hpp"
#include "core/detail/kde_polynomials.hpp"
#include "core/detail/lane_reduce.hpp"
#include "sort/introsort.hpp"
#include "sort/iterative_quicksort.hpp"

namespace kreg {

SpmdKdeSelector::SpmdKdeSelector(spmd::Device& device, SpmdKdeConfig config)
    : device_(device), config_(config) {
  if (config_.threads_per_block == 0) {
    throw std::invalid_argument("SpmdKdeSelector: threads_per_block == 0");
  }
}

std::size_t SpmdKdeSelector::estimated_bytes(std::size_t n, std::size_t k,
                                             SweepAlgorithm algorithm) {
  if (algorithm == SweepAlgorithm::kWindow) {
    // Sorted x + scores + the n×k LSCV-partial matrix.
    return (n + k + n * k) * sizeof(double);
  }
  // x + scores + the n×n row matrix + two n×k contribution matrices.
  return (n + k + n * n + 2 * n * k) * sizeof(double);
}

std::size_t SpmdKdeSelector::estimated_streamed_bytes(std::size_t n,
                                                      std::size_t k_block) {
  constexpr std::size_t kSums = detail::kKdeMaxMoment + 1;
  // Sorted x, the two carried moment-sum arrays, the four carried window
  // pointers, and one resident n×k_block LSCV-partial block.
  return n * sizeof(double) + 2 * n * kSums * sizeof(double) +
         4 * n * sizeof(std::size_t) + n * k_block * sizeof(double);
}

namespace {

/// The k-block streamed KDE window sweep: the LSCV counterpart of the
/// regression selector's streamed path. One n×k_block partial block stays
/// resident; both admission windows' moment sums and pointers carry across
/// launches in O(n) buffers; each block reduces to its per-bandwidth totals
/// immediately and only the k scores plus a running argmin survive on the
/// host. Constant memory holds one grid slice at a time.
SelectionResult run_streamed_kde_selection(
    spmd::Device& device, const SpmdKdeConfig& config,
    const std::vector<double>& host_x, const BandwidthGrid& grid,
    const detail::SupportPolynomial& kpoly,
    const detail::SupportPolynomial& cpoly, double roughness_value,
    const StreamingPlan& plan, std::size_t tpb, std::string method_name) {
  const std::size_t n = host_x.size();
  const std::size_t k = grid.size();
  constexpr std::size_t kSums = detail::kKdeMaxMoment + 1;

  spmd::DeviceBuffer<double> d_x = device.alloc_global<double>(n, "x");
  device.copy_to_device(d_x, std::span<const double>(host_x));

  // O(n) carry state for both admission windows.
  spmd::DeviceBuffer<double> d_csums =
      device.alloc_global<double>(n * kSums, "conv-moments");
  spmd::DeviceBuffer<double> d_lsums =
      device.alloc_global<double>(n * kSums, "loo-moments");
  spmd::DeviceBuffer<std::size_t> d_clo =
      device.alloc_global<std::size_t>(n, "conv-lo");
  spmd::DeviceBuffer<std::size_t> d_chi =
      device.alloc_global<std::size_t>(n, "conv-hi");
  spmd::DeviceBuffer<std::size_t> d_llo =
      device.alloc_global<std::size_t>(n, "loo-lo");
  spmd::DeviceBuffer<std::size_t> d_lhi =
      device.alloc_global<std::size_t>(n, "loo-hi");

  // The one resident LSCV-partial block, reused by every pass.
  spmd::DeviceBuffer<double> d_partial =
      device.alloc_global<double>(n * plan.k_block, "lscv-partial-block");

  std::span<const double> dxs = d_x.span();
  spmd::MemView<double> cs_all = d_csums.view();
  spmd::MemView<double> ls_all = d_lsums.view();
  spmd::MemView<std::size_t> clo_all = d_clo.view();
  spmd::MemView<std::size_t> chi_all = d_chi.view();
  spmd::MemView<std::size_t> llo_all = d_llo.view();
  spmd::MemView<std::size_t> lhi_all = d_lhi.view();
  spmd::MemView<double> partial_all = d_partial.view();

  const std::vector<double> host_grid(grid.values());
  const spmd::LaunchConfig main_cfg = spmd::LaunchConfig::cover(n, tpb);

  std::vector<double> scores_out(k);
  std::size_t best_index = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t b0 = 0; b0 < k; b0 += plan.k_block) {
    const std::size_t kb = std::min(plan.k_block, k - b0);
    const std::vector<double> host_block(host_grid.begin() + b0,
                                         host_grid.begin() + b0 + kb);
    spmd::ConstantBuffer<double> c_block =
        device.upload_constant<double>(host_block, "bandwidth-grid-block");
    spmd::MemView<const double> hs = c_block.view();
    const bool first = b0 == 0;

    device.launch("kde_lscv_sweep_kblock", main_cfg,
                  [&, kb, first](const spmd::ThreadCtx& t) {
      const std::size_t i = t.global_idx();
      if (i >= n) {
        return;
      }
      detail::WindowMomentSweep conv_sweep;  // admits |Δ| <= 2h
      detail::WindowMomentSweep loo_sweep;   // admits |Δ| <= h
      if (first) {
        conv_sweep.seed(i);
        loo_sweep.seed(i);
      } else {
        for (std::size_t m = 0; m < kSums; ++m) {
          conv_sweep.sums[m] = cs_all[i * kSums + m];
          loo_sweep.sums[m] = ls_all[i * kSums + m];
        }
        conv_sweep.lo = clo_all[i];
        conv_sweep.hi = chi_all[i];
        loo_sweep.lo = llo_all[i];
        loo_sweep.hi = lhi_all[i];
      }
      detail::kde_window_sweep_resume(
          dxs, hs, kpoly, cpoly, i, conv_sweep, loo_sweep,
          [&](std::size_t b, double conv, double loo) {
            partial_all[b * n + i] =
                detail::lscv_pair_partial(conv, loo, n, hs[b]);
          });
      for (std::size_t m = 0; m < kSums; ++m) {
        cs_all[i * kSums + m] = conv_sweep.sums[m];
        ls_all[i * kSums + m] = loo_sweep.sums[m];
      }
      clo_all[i] = conv_sweep.lo;
      chi_all[i] = conv_sweep.hi;
      llo_all[i] = loo_sweep.lo;
      lhi_all[i] = loo_sweep.hi;
    });

    // Reduce this block's partials to per-bandwidth totals right away.
    for (std::size_t b = 0; b < kb; ++b) {
      const double partial_total = spmd::reduce_sum<double>(
          device, partial_all.subview(b * n, n), tpb, config.reduce_variant);
      const double score =
          roughness_value / (static_cast<double>(n) * grid[b0 + b]) +
          partial_total;
      scores_out[b0 + b] = score;
      if (score < best_score) {  // strict <: smallest index wins ties
        best_score = score;
        best_index = b0 + b;
      }
    }
  }

  SelectionResult result;
  result.bandwidth = grid[best_index];
  result.cv_score = best_score;
  result.grid = grid.values();
  result.scores = std::move(scores_out);
  result.evaluations = k;
  result.method = std::move(method_name);
  return result;
}

/// The 2-D (n-block × k-block) tiled KDE sweep: the LSCV counterpart of the
/// regression selector's run_streamed_2d_window_selection. Observations tile
/// into n-blocks, each uploading only a halo-padded slab of the sorted X —
/// the halo reach is the widest admission of either window at h_max, i.e.
/// max(K, K̄ support scale)·h_max — and carrying both windows' moment sums
/// and pointers in O(n_block) buffers. Per-bandwidth LSCV-partial totals
/// carry across n-blocks in the reduction's own per-lane accumulators (see
/// lane_reduce.hpp), so the streamed profile stays bitwise identical to the
/// resident one for ANY (n_block, k_block).
SelectionResult run_streamed_2d_kde_selection(
    spmd::Device& device, const SpmdKdeConfig& config,
    const std::vector<double>& host_x, const BandwidthGrid& grid,
    const detail::SupportPolynomial& kpoly,
    const detail::SupportPolynomial& cpoly, double roughness_value,
    const StreamingPlan& plan, std::size_t tpb, std::string method_name) {
  const std::size_t n = host_x.size();
  const std::size_t k = grid.size();
  constexpr std::size_t kSums = detail::kKdeMaxMoment + 1;
  const std::size_t lane_dim = spmd::detail::reduction_block_dim(device, tpb);
  const double scale = std::max(kpoly.support_scale, cpoly.support_scale);
  const double reach = scale * grid[k - 1];  // widest admission at h_max
  const std::span<const double> host_xs(host_x);
  const std::vector<double> host_grid(grid.values());

  // Carried per-(bandwidth, lane) partial-sum accumulators, zero-uploaded:
  // phase 1 of the resident reduction starts every lane at zero too.
  spmd::DeviceBuffer<double> d_lanes =
      device.alloc_global<double>(k * lane_dim, "lscv-lanes");
  {
    const std::vector<double> zeros(k * lane_dim, 0.0);
    device.copy_to_device(d_lanes, std::span<const double>(zeros));
  }
  spmd::MemView<double> lanes = d_lanes.view();

  for (std::size_t n0 = 0; n0 < n; n0 += plan.n_block) {
    const std::size_t nb = std::min(plan.n_block, n - n0);
    const std::size_t slab_begin = detail::halo_begin(host_xs, n0, reach);
    const std::size_t slab_end = detail::halo_end(host_xs, n0 + nb - 1, reach);
    const std::size_t slab = slab_end - slab_begin;

    spmd::DeviceBuffer<double> d_x =
        device.alloc_global<double>(slab, "x-slab");
    device.copy_to_device(d_x, host_xs.subspan(slab_begin, slab));
    spmd::DeviceBuffer<double> d_csums =
        device.alloc_global<double>(nb * kSums, "conv-moments");
    spmd::DeviceBuffer<double> d_lsums =
        device.alloc_global<double>(nb * kSums, "loo-moments");
    spmd::DeviceBuffer<std::size_t> d_clo =
        device.alloc_global<std::size_t>(nb, "conv-lo");
    spmd::DeviceBuffer<std::size_t> d_chi =
        device.alloc_global<std::size_t>(nb, "conv-hi");
    spmd::DeviceBuffer<std::size_t> d_llo =
        device.alloc_global<std::size_t>(nb, "loo-lo");
    spmd::DeviceBuffer<std::size_t> d_lhi =
        device.alloc_global<std::size_t>(nb, "loo-hi");
    spmd::DeviceBuffer<double> d_partial =
        device.alloc_global<double>(nb * plan.k_block, "lscv-partial-block");

    std::span<const double> dxs = d_x.span();
    spmd::MemView<double> cs_all = d_csums.view();
    spmd::MemView<double> ls_all = d_lsums.view();
    spmd::MemView<std::size_t> clo_all = d_clo.view();
    spmd::MemView<std::size_t> chi_all = d_chi.view();
    spmd::MemView<std::size_t> llo_all = d_llo.view();
    spmd::MemView<std::size_t> lhi_all = d_lhi.view();
    spmd::MemView<double> partial_all = d_partial.view();

    const spmd::LaunchConfig main_cfg = spmd::LaunchConfig::cover(nb, tpb);
    const std::size_t rel0 = n0 - slab_begin;  // block's first slab index

    for (std::size_t b0 = 0; b0 < k; b0 += plan.k_block) {
      const std::size_t kb = std::min(plan.k_block, k - b0);
      const std::vector<double> host_block(host_grid.begin() + b0,
                                           host_grid.begin() + b0 + kb);
      spmd::ConstantBuffer<double> c_block =
          device.upload_constant<double>(host_block, "bandwidth-grid-block");
      spmd::MemView<const double> hs = c_block.view();
      const bool first = b0 == 0;

      device.launch("kde_lscv_sweep_tile", main_cfg,
                    [&, nb, kb, first, rel0](const spmd::ThreadCtx& t) {
        const std::size_t r = t.global_idx();
        if (r >= nb) {
          return;
        }
        // Slab-relative position: the halo guarantees the slab never
        // truncates an admission, so the slab-edge guards decide exactly
        // as the resident full-array guards.
        const std::size_t pos = rel0 + r;
        detail::WindowMomentSweep conv_sweep;  // admits |Δ| <= 2h
        detail::WindowMomentSweep loo_sweep;   // admits |Δ| <= h
        if (first) {
          conv_sweep.seed(pos);
          loo_sweep.seed(pos);
        } else {
          for (std::size_t m = 0; m < kSums; ++m) {
            conv_sweep.sums[m] = cs_all[r * kSums + m];
            loo_sweep.sums[m] = ls_all[r * kSums + m];
          }
          conv_sweep.lo = clo_all[r];
          conv_sweep.hi = chi_all[r];
          loo_sweep.lo = llo_all[r];
          loo_sweep.hi = lhi_all[r];
        }
        detail::kde_window_sweep_resume(
            dxs, hs, kpoly, cpoly, pos, conv_sweep, loo_sweep,
            [&](std::size_t b, double conv, double loo) {
              partial_all[b * nb + r] =
                  detail::lscv_pair_partial(conv, loo, n, hs[b]);
            });
        for (std::size_t m = 0; m < kSums; ++m) {
          cs_all[r * kSums + m] = conv_sweep.sums[m];
          ls_all[r * kSums + m] = loo_sweep.sums[m];
        }
        clo_all[r] = conv_sweep.lo;
        chi_all[r] = conv_sweep.hi;
        llo_all[r] = loo_sweep.lo;
        lhi_all[r] = loo_sweep.hi;
      });

      // Lane accumulation: thread `lane` folds this block's partials for
      // global rows ≡ lane (mod lane_dim), ascending, straight into the
      // carried accumulator — phase 1 of the resident reduction continued
      // across n-blocks.
      device.launch("lscv_lane_accum", spmd::LaunchConfig{1, lane_dim},
                    [&, nb, kb, n0, b0](const spmd::ThreadCtx& t) {
        const std::size_t lane = t.global_idx();
        const std::size_t start = detail::first_lane_row(n0, lane, lane_dim);
        for (std::size_t b = 0; b < kb; ++b) {
          for (std::size_t r = start; r < nb; r += lane_dim) {
            lanes[(b0 + b) * lane_dim + lane] += partial_all[b * nb + r];
          }
        }
      });
    }
  }

  // Phase-2 replay: one tree reduction per bandwidth over its carried
  // lanes, with the same variant the resident reduction uses.
  std::vector<double> scores_out(k);
  std::size_t best_index = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t b = 0; b < k; ++b) {
    const double partial_total = detail::lane_tree_reduce<double>(
        device, lanes, b * lane_dim, lane_dim, config.reduce_variant);
    const double score =
        roughness_value / (static_cast<double>(n) * grid[b]) + partial_total;
    scores_out[b] = score;
    if (score < best_score) {  // strict <: smallest index wins ties
      best_score = score;
      best_index = b;
    }
  }

  SelectionResult result;
  result.bandwidth = grid[best_index];
  result.cv_score = best_score;
  result.grid = grid.values();
  result.scores = std::move(scores_out);
  result.evaluations = k;
  result.method = std::move(method_name);
  return result;
}

}  // namespace

SelectionResult SpmdKdeSelector::select(std::span<const double> xs,
                                        const BandwidthGrid& grid) const {
  if (!is_kde_sweepable(config_.kernel)) {
    throw std::invalid_argument(
        "SpmdKdeSelector: kernel '" + std::string(to_string(config_.kernel)) +
        "' lacks a single-polynomial self-convolution");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("SpmdKdeSelector: need >= 2 observations");
  }
  const std::size_t n = xs.size();
  const std::size_t k = grid.size();
  const std::size_t tpb = std::min(config_.threads_per_block,
                                   device_.properties().max_threads_per_block);
  const detail::SupportPolynomial kpoly =
      detail::kde_kernel_poly(config_.kernel);
  const detail::SupportPolynomial cpoly =
      detail::kde_convolution_poly(config_.kernel);
  const double roughness_value = roughness(config_.kernel);
  const bool window = config_.algorithm == SweepAlgorithm::kWindow;

  // Host-side staging: the window sweep sorts X once before upload — the
  // LSCV sums run over all (i, l) pairs, so visiting observations in
  // sorted order changes nothing.
  std::vector<double> host_x(xs.begin(), xs.end());
  if (window) {
    sort::introsort(std::span<double>(host_x));
  }

  // Streaming decision (window algorithm only): resolve the 2-D
  // (n-block × k-block) plan against the byte model and the device budget;
  // the default keeps small problems on the resident path bit-for-bit,
  // engages n-resident k-blocks when only the n×k partial matrix is over
  // budget, and tiles the observations too (halo slab + lane-carried
  // partial sums) once even the O(n) carry state would not fit.
  if (window) {
    constexpr std::size_t kSums = detail::kKdeMaxMoment + 1;
    const std::size_t lane_dim =
        spmd::detail::reduction_block_dim(device_, tpb);
    const double reach =
        std::max(kpoly.support_scale, cpoly.support_scale) * grid[k - 1];
    const std::span<const double> xs_host(host_x);
    const auto tile_bytes = [&, n, k](std::size_t nb,
                                      std::size_t kb) -> std::size_t {
      if (nb >= n) {
        // n-resident: the 1-D streamed path's model (no slab, no lanes).
        return estimated_streamed_bytes(n, kb);
      }
      const std::size_t slab = detail::max_halo_span(xs_host, 0, n, nb, reach);
      return slab * sizeof(double) +
             nb * (2 * kSums * sizeof(double) + 4 * sizeof(std::size_t)) +
             nb * kb * sizeof(double) + k * lane_dim * sizeof(double);
    };
    const StreamingPlan plan = resolve_streaming_2d(
        config_.stream, n, k, estimated_bytes(n, k, config_.algorithm),
        tile_bytes, device_.properties().memory_budget().global_bytes);
    if (plan.n_streamed) {
      return run_streamed_2d_kde_selection(device_, config_, host_x, grid,
                                           kpoly, cpoly, roughness_value, plan,
                                           tpb, name());
    }
    if (plan.streamed) {
      return run_streamed_kde_selection(device_, config_, host_x, grid, kpoly,
                                        cpoly, roughness_value, plan, tpb,
                                        name());
    }
  }

  // Device memory plan: the bandwidth grid in constant memory (same
  // 8 KB / 2,048-value cap as regression); X in global memory; per-row
  // mode adds the n×n |Δ| row matrix and two n×k contribution matrices
  // (bandwidth-major), window mode a single n×k LSCV-partial matrix.
  std::vector<double> host_grid(grid.values());
  spmd::ConstantBuffer<double> c_grid =
      device_.upload_constant<double>(host_grid, "bandwidth-grid");
  spmd::DeviceBuffer<double> d_x = device_.alloc_global<double>(n, "x");
  device_.copy_to_device(d_x, std::span<const double>(host_x));
  spmd::DeviceBuffer<double> d_rows;
  spmd::DeviceBuffer<double> d_conv;
  spmd::DeviceBuffer<double> d_loo;
  spmd::DeviceBuffer<double> d_partial;
  if (window) {
    d_partial = device_.alloc_global<double>(n * k, "lscv-partials");
  } else {
    d_rows = device_.alloc_global<double>(n * n, "dist-rows");
    d_conv = device_.alloc_global<double>(n * k, "conv-sums");
    d_loo = device_.alloc_global<double>(n * k, "loo-sums");
  }
  spmd::DeviceBuffer<double> d_scores =
      device_.alloc_global<double>(k, "lscv-scores");

  // X and the row matrix stay raw spans (the per-thread quicksort needs raw
  // element references); the grid, contribution sums, partials, and scores
  // go through checked views for the sanitizer.
  std::span<const double> dxs = d_x.span();
  spmd::MemView<const double> hs = c_grid.view();
  std::span<double> rows = d_rows.span();
  spmd::MemView<double> conv_all = d_conv.view();
  spmd::MemView<double> loo_all = d_loo.view();
  spmd::MemView<double> partial_all = d_partial.view();

  // Main kernel, one thread per observation.
  const std::size_t max_power = std::max(kpoly.max_power, cpoly.max_power);
  device_.launch(
      "kde_lscv_sweep", spmd::LaunchConfig::cover(n, tpb),
      [&, n, k](const spmd::ThreadCtx& t) {
        const std::size_t i = t.global_idx();
        if (i >= n) {
          return;
        }
        if (window) {
          // Window sweep: two monotone admission windows over the
          // device-global sorted X; no private row, no per-thread sort.
          // The two pair sums combine immediately into the thread's
          // bandwidth-major LSCV partials.
          detail::kde_window_sweep_thread(
              dxs, hs, kpoly, cpoly, i,
              [&](std::size_t b, double conv, double loo) {
                partial_all[b * n + i] =
                    detail::lscv_pair_partial(conv, loo, n, hs[b]);
              });
          return;
        }
        std::span<double> row = rows.subspan(i * n, n);
        const double xi = dxs[i];
        for (std::size_t l = 0; l < n; ++l) {
          const double d = dxs[l] - xi;
          row[l] = d < 0.0 ? -d : d;
        }
        sort::iterative_quicksort(row);

        detail::MomentSweep conv_sweep;
        detail::MomentSweep loo_sweep;
        for (std::size_t b = 0; b < k; ++b) {
          const double h = hs[b];
          conv_sweep.admit_through(row, cpoly.support_scale * h, max_power);
          loo_sweep.admit_through(row, kpoly.support_scale * h, max_power);
          // Bandwidth-major for contiguous per-bandwidth reductions.
          conv_all[b * n + i] = conv_sweep.combine(cpoly, h);
          loo_all[b * n + i] = loo_sweep.combine(kpoly, h);
        }
      });

  // Single-block reductions (k window, 2k per-row), then assemble the
  // LSCV scores.
  spmd::MemView<double> scores = d_scores.view();
  for (std::size_t b = 0; b < k; ++b) {
    if (window) {
      const double partial_total = spmd::reduce_sum<double>(
          device_, partial_all.subview(b * n, n), tpb, config_.reduce_variant);
      scores[b] = roughness_value / (static_cast<double>(n) * grid[b]) +
                  partial_total;
    } else {
      const double conv_total = spmd::reduce_sum<double>(
          device_, conv_all.subview(b * n, n), tpb, config_.reduce_variant);
      const double loo_total = spmd::reduce_sum<double>(
          device_, loo_all.subview(b * n, n), tpb, config_.reduce_variant);
      scores[b] = detail::assemble_lscv(roughness_value, conv_total,
                                        loo_total, n, grid[b]);
    }
  }
  const spmd::ArgminResult<double> best = spmd::reduce_argmin<double>(
      device_, spmd::MemView<const double>(scores), tpb);

  SelectionResult result;
  result.bandwidth = grid[best.index];
  result.cv_score = best.value;
  result.grid = grid.values();
  std::vector<double> host_scores(k);
  device_.copy_to_host(std::span<double>(host_scores), d_scores);
  result.scores = std::move(host_scores);
  result.evaluations = k;
  result.method = name();
  return result;
}

std::string SpmdKdeSelector::name() const {
  std::string n = "spmd-kde-lscv(";
  n += to_string(config_.kernel);
  n += ",tpb=" + std::to_string(config_.threads_per_block);
  if (config_.algorithm == SweepAlgorithm::kWindow) {
    n += ",window";
  }
  if (config_.stream.k_block != 0) {
    n += ",kblock=" + std::to_string(config_.stream.k_block);
  }
  if (config_.stream.n_block != 0) {
    n += ",nblock=" + std::to_string(config_.stream.n_block);
  }
  if (config_.stream.memory_budget_bytes != 0) {
    n += ",budget=" + std::to_string(config_.stream.memory_budget_bytes);
  }
  n += ")";
  return n;
}

}  // namespace kreg
