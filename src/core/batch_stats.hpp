#pragma once

#include <cstdint>

namespace kreg {

/// Execution ledger for the batched window sweep's phase-2 inner loops:
/// how many vector steps were served by the contiguous-run transpose fast
/// path (one block load + in-register transpose) versus per-lane gathers.
/// One "step" is one C-wide (AVX-512: one 8-lane group) iteration of a
/// left- or right-admission run. Purely observational — the counters never
/// influence scheduling — so profiles are bitwise identical with or
/// without a ledger attached.
struct BatchRunStats {
  std::uint64_t contig_steps = 0;  ///< steps served by contiguous block loads
  std::uint64_t gather_steps = 0;  ///< steps served by per-lane gathers
  /// Calls routed to the scalar tiled sweep instead of a vector path: the
  /// C = 4 narrow batch loses to scalar on the host (ROADMAP measurement),
  /// so lane_width = 4 host requests take the scalar sweep and note it
  /// here. The profile is bitwise identical either way (batched == scalar
  /// parity), so routing is observable only through this counter.
  std::uint64_t scalar_routed = 0;

  constexpr BatchRunStats& operator+=(const BatchRunStats& other) {
    contig_steps += other.contig_steps;
    gather_steps += other.gather_steps;
    scalar_routed += other.scalar_routed;
    return *this;
  }

  /// Fraction of phase-2 steps on the contiguous fast path (0 when idle).
  constexpr double contig_rate() const {
    const std::uint64_t total = contig_steps + gather_steps;
    return total == 0 ? 0.0
                      : static_cast<double>(contig_steps) /
                            static_cast<double>(total);
  }
};

}  // namespace kreg
