#include "core/binned.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/selectors.hpp"
#include "stats/descriptive.hpp"

namespace kreg {

BinnedSample linear_bin(const data::Dataset& data, std::size_t bins) {
  data.validate();
  if (data.empty()) {
    throw std::invalid_argument("linear_bin: empty dataset");
  }
  if (bins < 2) {
    throw std::invalid_argument("linear_bin: need at least 2 bins");
  }
  const double lo = stats::min(data.x);
  const double hi = stats::max(data.x);
  if (!(hi > lo)) {
    throw std::invalid_argument("linear_bin: degenerate X domain");
  }

  BinnedSample out;
  out.lo = lo;
  out.step = (hi - lo) / static_cast<double>(bins - 1);
  out.mass.assign(bins, 0.0);
  out.y_mass.assign(bins, 0.0);
  out.y2_mass.assign(bins, 0.0);
  out.n = data.size();

  for (std::size_t i = 0; i < data.size(); ++i) {
    const double pos = (data.x[i] - lo) / out.step;
    auto left = static_cast<std::size_t>(pos);
    if (left >= bins - 1) {
      left = bins - 2;  // x == hi lands exactly on the last node
    }
    const double frac = pos - static_cast<double>(left);
    const double w_right = frac;
    const double w_left = 1.0 - frac;
    out.mass[left] += w_left;
    out.y_mass[left] += w_left * data.y[i];
    out.y2_mass[left] += w_left * data.y[i] * data.y[i];
    out.mass[left + 1] += w_right;
    out.y_mass[left + 1] += w_right * data.y[i];
    out.y2_mass[left + 1] += w_right * data.y[i] * data.y[i];
  }
  return out;
}

double binned_nw_evaluate(const BinnedSample& binned, double x, double h,
                          KernelType kernel) {
  if (!(h > 0.0)) {
    throw std::invalid_argument("binned_nw_evaluate: bandwidth must be > 0");
  }
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t j = 0; j < binned.bins(); ++j) {
    const double w = kernel_value(kernel, (x - binned.node(j)) / h);
    if (w == 0.0) {
      continue;
    }
    numerator += binned.y_mass[j] * w;
    denominator += binned.mass[j] * w;
  }
  if (denominator == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return numerator / denominator;
}

std::vector<double> binned_cv_profile(const BinnedSample& binned,
                                      std::span<const double> grid,
                                      KernelType kernel) {
  if (grid.empty() || !(grid.front() > 0.0)) {
    throw std::invalid_argument("binned_cv_profile: grid must be positive");
  }
  const std::size_t bins = binned.bins();
  std::vector<double> scores(grid.size(), 0.0);

  for (std::size_t b = 0; b < grid.size(); ++b) {
    const double h = grid[b];
    // For compact kernels only nodes within h matter; the node spacing is
    // fixed, so the support radius in nodes bounds the inner loop.
    const std::size_t radius =
        is_compact(kernel)
            ? static_cast<std::size_t>(h / binned.step) + 1
            : bins;
    double total = 0.0;
    for (std::size_t j = 0; j < bins; ++j) {
      if (binned.mass[j] <= 0.0) {
        continue;  // empty bin: no pseudo-observation here
      }
      const std::size_t m_lo = j >= radius ? j - radius : 0;
      const std::size_t m_hi = std::min(bins, j + radius + 1);
      double numerator = 0.0;
      double denominator = 0.0;
      for (std::size_t m = m_lo; m < m_hi; ++m) {
        const double w = kernel_value(kernel, (binned.node(j) - binned.node(m)) / h);
        if (w == 0.0) {
          continue;
        }
        numerator += binned.y_mass[m] * w;
        denominator += binned.mass[m] * w;
      }
      // Binned leave-one-out: remove the node's own mass (weight K(0)).
      const double k0 = kernel_value(kernel, 0.0);
      numerator -= k0 * binned.y_mass[j];
      denominator -= k0 * binned.mass[j];
      if (denominator > 0.0) {
        const double g = numerator / denominator;
        // Σ_{i∈j} (y_i − g)² expanded through the bin's stored moments.
        total += binned.y2_mass[j] - 2.0 * g * binned.y_mass[j] +
                 binned.mass[j] * g * g;
      }
    }
    scores[b] = total / static_cast<double>(binned.n);
  }
  return scores;
}

SelectionResult binned_select(const data::Dataset& data,
                              const BandwidthGrid& grid, std::size_t bins,
                              KernelType kernel) {
  const BinnedSample binned = linear_bin(data, bins);
  std::vector<double> scores =
      binned_cv_profile(binned, grid.values(), kernel);
  SelectionResult result =
      selection_from_profile(grid, std::move(scores),
                             "binned-grid(" + std::string(to_string(kernel)) +
                                 ",bins=" + std::to_string(bins) + ")");
  return result;
}

}  // namespace kreg
