#pragma once

#include <span>
#include <vector>

#include "core/kernels.hpp"
#include "data/dataset.hpp"

namespace kreg {

/// Nadaraya–Watson local-constant kernel regression estimator:
///
///   ĝ(x) = Σ_l Y_l K((x − X_l)/h) / Σ_l K((x − X_l)/h)
///
/// the paper's estimator of choice ("the most commonly used kernel
/// regression estimator and the default in the common R package np").
/// The object is cheap to copy: it stores the sample plus the two tuning
/// choices (bandwidth, kernel).
class NadarayaWatson {
 public:
  /// Throws std::invalid_argument on empty data, length mismatch, or
  /// non-positive bandwidth.
  NadarayaWatson(data::Dataset data, double bandwidth,
                 KernelType kernel = KernelType::kEpanechnikov);

  /// ĝ(x). Returns NaN when no observation falls within the kernel support
  /// at x (the M(x) = 0 case); `defined_at(x)` distinguishes it cheaply.
  double operator()(double x) const;

  /// Batch evaluation at many points.
  std::vector<double> evaluate(std::span<const double> xs) const;

  /// Evaluation over an evenly spaced grid of `points` on the sample's X
  /// range — the "simple graph" use case from the paper's introduction.
  struct Curve {
    std::vector<double> x;
    std::vector<double> y;
  };
  Curve curve(std::size_t points) const;

  /// True when at least one observation lies within the kernel support.
  bool defined_at(double x) const;

  double bandwidth() const noexcept { return bandwidth_; }
  KernelType kernel() const noexcept { return kernel_; }
  const data::Dataset& data() const noexcept { return data_; }

 private:
  data::Dataset data_;
  double bandwidth_;
  KernelType kernel_;
};

/// Local-linear kernel regression (extension; the paper restricts itself to
/// the local-constant estimator). Fits a weighted line at each evaluation
/// point, removing the NW estimator's boundary bias:
///
///   ĝ(x) = ê₀ from min over (a,b) of Σ_l K((x−X_l)/h)(Y_l − a − b(X_l−x))²
///
/// Falls back to the local-constant value when the weighted X variance at x
/// is numerically zero.
class LocalLinear {
 public:
  LocalLinear(data::Dataset data, double bandwidth,
              KernelType kernel = KernelType::kEpanechnikov);

  double operator()(double x) const;
  std::vector<double> evaluate(std::span<const double> xs) const;
  bool defined_at(double x) const;

  double bandwidth() const noexcept { return bandwidth_; }
  KernelType kernel() const noexcept { return kernel_; }

 private:
  data::Dataset data_;
  double bandwidth_;
  KernelType kernel_;
};

}  // namespace kreg
