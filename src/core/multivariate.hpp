#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/grid.hpp"
#include "core/kernels.hpp"
#include "core/loocv.hpp"
#include "data/mdataset.hpp"
#include "parallel/thread_pool.hpp"

namespace kreg {

/// Product kernel weight Π_j K(u_j): the standard multivariate kernel built
/// from a univariate one (Li & Racine ch. 2).
double product_kernel_weight(KernelType kernel, std::span<const double> u);

/// Multivariate Nadaraya–Watson estimator with a per-dimension bandwidth
/// vector (product kernel):
///
///   ĝ(x) = Σ_l Y_l Π_j K((x_j − X_lj)/h_j) / Σ_l Π_j K((x_j − X_lj)/h_j)
class NadarayaWatsonMulti {
 public:
  /// Throws std::invalid_argument on invalid data, bandwidth count mismatch
  /// or non-positive bandwidths.
  NadarayaWatsonMulti(data::MDataset data, std::vector<double> bandwidths,
                      KernelType kernel = KernelType::kEpanechnikov);

  /// ĝ(x); NaN when no observation has positive product weight at x.
  double operator()(std::span<const double> x) const;

  const std::vector<double>& bandwidths() const noexcept {
    return bandwidths_;
  }

 private:
  data::MDataset data_;
  std::vector<double> bandwidths_;
  KernelType kernel_;
};

/// Leave-one-out prediction and the multivariate CV criterion
/// CV_lc(h₁…h_p) = n⁻¹ Σ_i (Y_i − ĝ₋ᵢ(X_i))² M(X_i); O(n²·p) per
/// bandwidth vector.
LooPrediction loo_predict_multi(const data::MDataset& data, std::size_t i,
                                std::span<const double> bandwidths,
                                KernelType kernel = KernelType::kEpanechnikov);
double cv_score_multi(const data::MDataset& data,
                      std::span<const double> bandwidths,
                      KernelType kernel = KernelType::kEpanechnikov,
                      parallel::ThreadPool* pool = nullptr);

/// Outcome of a multivariate bandwidth search.
struct MultiSelectionResult {
  std::vector<double> bandwidths;  ///< h_j per regressor dimension
  double cv_score = 0.0;
  std::size_t evaluations = 0;  ///< CV evaluations performed
  std::string method;
};

/// Exhaustive search over the Cartesian product of per-dimension grids —
/// the paper's "evenly-spaced grid or matrix in multivariate contexts".
/// Cost: (Π_j k_j) CV evaluations; practical for p ≤ 3 with modest k.
/// CV evaluations are distributed across the pool (deterministic result:
/// ties break to the lexicographically first grid cell).
MultiSelectionResult multi_grid_search(
    const data::MDataset& data, const std::vector<BandwidthGrid>& grids,
    KernelType kernel = KernelType::kEpanechnikov,
    parallel::ThreadPool* pool = nullptr);

/// Coordinate-descent grid search for larger p: sweep one dimension's grid
/// at a time holding the others fixed (initialized at each grid's
/// midpoint), cycling until a full sweep yields no improvement or
/// `max_cycles` is hit. Monotone in CV by construction; finds a coordinate-
/// wise optimum rather than the global grid optimum.
MultiSelectionResult multi_coordinate_descent(
    const data::MDataset& data, const std::vector<BandwidthGrid>& grids,
    KernelType kernel = KernelType::kEpanechnikov, std::size_t max_cycles = 8,
    parallel::ThreadPool* pool = nullptr);

/// Per-dimension default grids, mirroring BandwidthGrid::default_for:
/// grid j spans [domain_j / k, domain_j].
std::vector<BandwidthGrid> default_grids_for(const data::MDataset& data,
                                             std::size_t k);

}  // namespace kreg
