#pragma once

/// \file kreg.hpp
/// Umbrella header for the kreg library: optimal bandwidth selection for
/// Nadaraya–Watson kernel regression via the fast sorted grid search and a
/// simulated SPMD device, reproducing Rohlfs & Zahran (IPPS 2017).
///
/// Typical use:
///
///   kreg::rng::Stream stream(42);
///   kreg::data::Dataset data = kreg::data::paper_dgp(5000, stream);
///   kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(data, 50);
///   kreg::SortedGridSelector selector;                 // Program 3
///   kreg::SelectionResult r = selector.select(data, grid);
///   kreg::NadarayaWatson fit(data, r.bandwidth);
///   double y_hat = fit(0.5);

#include "core/auto_regress.hpp"
#include "core/batched_sweep.hpp"
#include "core/binned.hpp"
#include "core/confidence.hpp"
#include "core/dense_grid.hpp"
#include "core/grid.hpp"
#include "core/kde.hpp"
#include "core/kde_sweep.hpp"
#include "core/kernels.hpp"
#include "core/knn_sweep.hpp"
#include "core/local_linear_cv.hpp"
#include "core/loocv.hpp"
#include "core/multi_device_selector.hpp"
#include "core/multivariate.hpp"
#include "core/multivariate_sweep.hpp"
#include "core/nadaraya_watson.hpp"
#include "core/optimizers.hpp"
#include "core/oscv_sweep.hpp"
#include "core/refine.hpp"
#include "core/rule_of_thumb.hpp"
#include "core/selectors.hpp"
#include "core/sorted_sweep.hpp"
#include "core/spmd_kde.hpp"
#include "core/spmd_selector.hpp"
#include "core/streaming.hpp"
#include "core/types.hpp"
#include "core/version.hpp"
#include "core/weighted.hpp"
#include "core/window_sweep.hpp"
#include "data/csv.hpp"
#include "data/dataset.hpp"
#include "data/dgp.hpp"
#include "data/mdataset.hpp"
#include "rng/stream.hpp"
