#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "core/kernels.hpp"
#include "data/dataset.hpp"
#include "parallel/thread_pool.hpp"

namespace kreg {

/// Floating-point width of the sweep computation. The paper computes in
/// single precision ("only single-precision floating point numbers are
/// used") for memory and device-compatibility reasons; double precision is
/// this library's extension (and its default on the host paths).
enum class Precision { kFloat, kDouble };

std::string_view to_string(Precision precision) noexcept;

/// Which per-observation sweep a grid search runs. Shared by the host
/// selectors, the device (SPMD) regression and KDE selectors, and the
/// multivariate ray search.
enum class SweepAlgorithm {
  /// Paper-faithful §III/§IV-B: each observation sorts a private distance
  /// row (O(n² log n) total; n×n global-memory matrices on the device
  /// unless streaming).
  kPerRowSort,
  /// Window sweep: the data is sorted once globally and every observation
  /// grows monotone two-pointer admission windows over the sorted array
  /// across the ascending grid — O(n log n + n·(k + admitted)) total, no
  /// private rows, no per-observation sort.
  kWindow,
};
std::string_view to_string(SweepAlgorithm algorithm) noexcept;

/// Reusable scratch for one observation's sweep: the distance row, the
/// permuted-Y row, and the moment accumulators. One instance per worker;
/// re-used across observations so the inner loop allocates nothing.
template <class Scalar>
struct SweepWorkspace {
  std::vector<Scalar> dist;  ///< |X_i − X_l| for all l (self included)
  std::vector<Scalar> yrow;  ///< Y_l permuted alongside dist

  void resize(std::size_t n) {
    dist.resize(n);
    yrow.resize(n);
  }
};

/// The paper's §III algorithm for a single observation i.
///
/// Builds the row of absolute distances |X_i − X_l| (all l, self included),
/// sorts it with the iterative quicksort carrying Y as payload, then sweeps
/// the ascending bandwidth grid once: each bandwidth extends the running
/// moment sums S_m = Σ |d|^m and T_m = Σ Y·|d|^m with exactly the newly
/// admitted observations ("once the summations are complete for the first
/// bandwidth value h₁, we use the same summations for bandwidth h₂ and add
/// the terms for the remaining observations"). Numerator and denominator of
/// the leave-one-out estimator follow from the moments via the kernel's
/// polynomial coefficients rescaled by h^(−m); the self term (distance 0)
/// is subtracted analytically, and M(X_i) = 0 cases produce a 0 residual.
///
/// Writes the squared LOO residual for every grid value into
/// `out_sq_residuals` (size == grid.size(); grid must be ascending and
/// positive). Cost: O(n log n) for the sort + O(n + k) for the sweep.
template <class Scalar>
void sweep_observation(std::span<const double> x, std::span<const double> y,
                       std::size_t i, std::span<const double> grid,
                       const SweepPolynomial& poly,
                       SweepWorkspace<Scalar>& workspace,
                       std::span<Scalar> out_sq_residuals);

extern template void sweep_observation<float>(
    std::span<const double>, std::span<const double>, std::size_t,
    std::span<const double>, const SweepPolynomial&, SweepWorkspace<float>&,
    std::span<float>);
extern template void sweep_observation<double>(
    std::span<const double>, std::span<const double>, std::size_t,
    std::span<const double>, const SweepPolynomial&, SweepWorkspace<double>&,
    std::span<double>);

/// Full CV profile CV_lc(h) for every h in the (ascending) grid, computed
/// with the sorted sweep, sequentially over observations — the numerical
/// core of Program 3. Requires a sweepable kernel.
std::vector<double> sweep_cv_profile(const data::Dataset& data,
                                     std::span<const double> grid,
                                     KernelType kernel,
                                     Precision precision = Precision::kDouble);

/// Same profile with observations distributed across a thread pool
/// (deterministic combination order). nullptr = global pool.
std::vector<double> sweep_cv_profile_parallel(
    const data::Dataset& data, std::span<const double> grid, KernelType kernel,
    Precision precision = Precision::kDouble,
    parallel::ThreadPool* pool = nullptr);

}  // namespace kreg
