#pragma once

#include <span>
#include <vector>

#include "core/grid.hpp"
#include "core/kernels.hpp"
#include "core/loocv.hpp"
#include "core/types.hpp"
#include "data/dataset.hpp"

namespace kreg {

/// Observation-weighted kernel regression — survey weights, replication
/// weights, or frequency weights, the bread and butter of the applied
/// econometrics audience the paper addresses. Weight w_l scales
/// observation l's kernel contribution everywhere:
///
///   ĝ(x) = Σ_l w_l Y_l K((x−X_l)/h) / Σ_l w_l K((x−X_l)/h)
///   CV_w(h) = Σ_i w_i (Y_i − ĝ₋ᵢ(X_i))² M(X_i) / Σ_i w_i
///
/// Frequency semantics hold exactly: doubling w_l is equivalent to
/// duplicating observation l (tested), and unit weights recover the
/// unweighted criterion. The §III sorting trick extends verbatim — the
/// sweep's moments become S_m = Σ w_l |d|^m, T_m = Σ w_l Y_l |d|^m and the
/// self term subtracts (w_i, w_i·Y_i) at power 0 — so the weighted grid
/// search keeps the O(n² log n) cost.
///
/// All functions require weights.size() == data.size() and every w_l >= 0
/// with a positive total.

/// Weighted Nadaraya–Watson estimate at x (NaN where unsupported).
double weighted_nw_evaluate(const data::Dataset& data,
                            std::span<const double> weights, double x,
                            double h,
                            KernelType kernel = KernelType::kEpanechnikov);

/// Weighted leave-one-out prediction for observation i.
LooPrediction weighted_loo_predict(
    const data::Dataset& data, std::span<const double> weights, std::size_t i,
    double h, KernelType kernel = KernelType::kEpanechnikov);

/// Weighted CV criterion, direct O(n²) evaluation.
double weighted_cv_score(const data::Dataset& data,
                         std::span<const double> weights, double h,
                         KernelType kernel = KernelType::kEpanechnikov);

/// Weighted CV profile over an ascending grid via the sorted sweep
/// (O(n² log n) for all k bandwidths). Requires a sweepable kernel.
std::vector<double> weighted_sweep_cv_profile(
    const data::Dataset& data, std::span<const double> weights,
    std::span<const double> grid,
    KernelType kernel = KernelType::kEpanechnikov);

/// Weighted grid selection via the sweep.
SelectionResult weighted_select(const data::Dataset& data,
                                std::span<const double> weights,
                                const BandwidthGrid& grid,
                                KernelType kernel = KernelType::kEpanechnikov);

}  // namespace kreg
