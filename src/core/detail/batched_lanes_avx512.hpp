#pragma once

// AVX-512 specialization of the batched window sweep's phase-2 hot loop
// (see batched_lanes.hpp). Only compiled when the target has AVX-512F and
// FMA (KREG_NATIVE builds on such machines); the generic auto-vectorized
// path remains the portable default and the two produce bit-identical
// profiles because each lane executes the scalar sweep's exact
// floating-point operation sequence:
//
//   - phase-1 pointer walks test 8 admission candidates per vector
//     compare and stop at the same first-failing element as the scalar
//     walk (phase 1 carries no FP state, so identical stopping points
//     mean identical extents);
//   - admissions stay in the scalar order (left side descending, then
//     right side ascending), realized here as two separate step loops so
//     the gather index is a linear function of the step — no per-lane
//     select, no branch;
//   - masked hardware gathers (vgatherqpd) feed exact zeros into lanes
//     that ran out of admissions, the same ±0.0-padding discipline the
//     generic path uses;
//   - contiguous runs — all of a group's step-0 bases inside one
//     16-double window, the common case under the σ position-sort — swap
//     the gather for two full-width loads + a masked two-register permute
//     (vpermt2pd) selecting the very same elements with the very same
//     masked zeros, so consumed values are unchanged bit for bit; runs
//     are clipped where the block read would leave [0, n) and the gather
//     resumes seamlessly (see batched_lanes_contig.hpp);
//   - |xi − xl| is computed as a sign-bit mask of (xi − xl), which is
//     IEEE-identical to the scalar sweep's compare-and-subtract;
//   - t_m ← t_m + y·pw stays an explicit multiply-then-add, matching the
//     scalar TU exactly because this path is only enabled together with
//     -ffp-contract=off (the KREG_NATIVE configuration, which defines
//     KREG_FP_CONTRACT_OFF); under the default -ffp-contract=fast, GCC
//     contracts or not per call site, so no intrinsic choice could match
//     every inlined copy of the scalar sweep at once;
//   - moment sums live in zmm registers across the whole grid slice, one
//     register per (term, 8-lane group), instead of round-tripping
//     through memory every step.
//
// Lane widths map onto V = C/8 zmm register groups: C = 8 is one group,
// C = 16 two (two independent gather/multiply dependency chains, which is
// what hides the gather latency on one core).

#if defined(__AVX512F__) && defined(KREG_FP_CONTRACT_OFF)
#define KREG_HAVE_BATCHED_AVX512 1
#else
#define KREG_HAVE_BATCHED_AVX512 0
#endif

#if KREG_HAVE_BATCHED_AVX512

#include <immintrin.h>

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

#include "core/batch_stats.hpp"
#include "core/kernels.hpp"
#include "core/detail/batched_lanes_contig.hpp"

namespace kreg::detail {

template <class Scalar, std::size_t C>
struct LaneBatch;

/// Blocked phase-1 pointer walks: test 8 admission candidates per compare
/// instead of one. The scalar walk stops at the *first* failing element;
/// counting the leading (left walk, descending) or trailing (right walk,
/// ascending) accepted lanes of the 8-wide predicate mask stops at exactly
/// the same element — each lane evaluates the scalar predicate's own
/// subtract-and-compare, and phase 1 carries no floating-point state, so
/// the extents are identical integers. The scalar loop serves the < 8
/// remaining candidates at the array edges.
inline std::size_t walk_lo_avx512(double x, const double* xs, std::size_t lo,
                                  double h) {
  const __m512d vx = _mm512_set1_pd(x);
  const __m512d vh = _mm512_set1_pd(h);
  while (lo >= 8) {
    const __m512d vs = _mm512_loadu_pd(xs + lo - 8);
    const __mmask8 m =
        _mm512_cmp_pd_mask(_mm512_sub_pd(vx, vs), vh, _CMP_LE_OQ);
    const auto acc = static_cast<std::size_t>(
        std::countl_one(static_cast<unsigned char>(m)));
    lo -= acc;
    if (acc < 8) {
      return lo;
    }
  }
  while (lo > 0 && x - xs[lo - 1] <= h) {
    --lo;
  }
  return lo;
}

inline std::size_t walk_hi_avx512(double x, const double* xs, std::size_t hi,
                                  std::size_t n, double h) {
  const __m512d vx = _mm512_set1_pd(x);
  const __m512d vh = _mm512_set1_pd(h);
  while (hi + 8 < n) {
    const __m512d vs = _mm512_loadu_pd(xs + hi + 1);
    const __mmask8 m =
        _mm512_cmp_pd_mask(_mm512_sub_pd(vs, vx), vh, _CMP_LE_OQ);
    const auto acc = static_cast<std::size_t>(
        std::countr_one(static_cast<unsigned char>(m)));
    hi += acc;
    if (acc < 8) {
      return hi;
    }
  }
  while (hi + 1 < n && xs[hi + 1] - x <= h) {
    ++hi;
  }
  return hi;
}

/// Compile-time-terms AVX-512 resume for LaneBatch<double, 8·V>.
/// Bit-for-bit the operations of `window_sweep_resume` per lane.
template <std::size_t T, std::size_t V, class HView, class WriteResid>
inline void batch_resume_avx512_impl(LaneBatch<double, 8 * V>& st,
                                     std::span<const double> xs_sorted,
                                     std::span<const double> ys_sorted,
                                     HView hs, const SweepPolynomial& poly,
                                     WriteResid&& write,
                                     std::size_t prefetch,
                                     BatchRunStats* stats) {
  constexpr std::size_t C = 8 * V;
  const std::size_t n = xs_sorted.size();
  const std::size_t k = hs.size();
  const double* xs = xs_sorted.data();
  const double* ys = ys_sorted.data();

  __m512d sm[T][V], tm[T][V], xi[V];
  for (std::size_t m = 0; m < T; ++m) {
    for (std::size_t v = 0; v < V; ++v) {
      sm[m][v] = _mm512_loadu_pd(st.s_m[m] + 8 * v);
      tm[m][v] = _mm512_loadu_pd(st.t_m[m] + 8 * v);
    }
  }
  for (std::size_t v = 0; v < V; ++v) {
    xi[v] = _mm512_loadu_pd(st.xi.data() + 8 * v);
  }
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d zero = _mm512_setzero_pd();
  const __m512i onei = _mm512_set1_epi64(1);
  const __m512d absmask =
      _mm512_castsi512_pd(_mm512_set1_epi64(0x7fffffffffffffffLL));

  alignas(64) std::int64_t cnt[C], base[C];
  alignas(64) double smbuf[T][C], tmbuf[T][C];
  alignas(64) double num[C], den[C];
  std::array<std::size_t, C> lo_new{}, hi_new{};

  for (std::size_t b = 0; b < k; ++b) {
    const double h = hs[b];

    // Phase 1: blocked pointer walks (8 candidates per compare), same
    // admission predicate and the same stopping element as the scalar
    // sweep — see walk_lo_avx512/walk_hi_avx512 above.
    for (std::size_t l = 0; l < st.lanes; ++l) {
      const double x = st.xi[l];
      lo_new[l] = walk_lo_avx512(x, xs, st.lo[l], h);
      hi_new[l] = walk_hi_avx512(x, xs, st.hi[l], n, h);
    }

    // Phase 2: left run (descending from the old lo − 1), then right run
    // (ascending from the old hi + 1) — the scalar admission order. Each
    // 8-lane group runs its own step loop so the contiguous-run detection
    // (batched_lanes_contig.hpp) applies per group: the bases are fixed
    // for the whole run, so when the group's active bases fit one
    // 16-double window the per-step masked gather becomes two full-width
    // loads + one masked two-register permute (vpermt2pd) — the same
    // elements and the same masked zeros, so bitwise-identical values —
    // and the remaining (bounds-clipped) steps fall back to the gather.
    for (int phase = 0; phase < 2; ++phase) {
      const bool left = phase == 0;
      for (std::size_t l = 0; l < st.lanes; ++l) {
        if (left) {
          cnt[l] = static_cast<std::int64_t>(st.lo[l] - lo_new[l]);
          base[l] = static_cast<std::int64_t>(st.lo[l]) - 1;
        } else {
          cnt[l] = static_cast<std::int64_t>(hi_new[l] - st.hi[l]);
          base[l] = static_cast<std::int64_t>(st.hi[l]) + 1;
        }
      }
      for (std::size_t l = st.lanes; l < C; ++l) {
        cnt[l] = 0;
        base[l] = 0;
      }
      for (std::size_t v = 0; v < V; ++v) {
        std::size_t gmax = 0;
        for (std::size_t l = 8 * v; l < 8 * v + 8; ++l) {
          const auto c = static_cast<std::size_t>(cnt[l]);
          gmax = c > gmax ? c : gmax;
        }
        if (gmax == 0) {
          continue;
        }
        const ContigRun run =
            detect_contig_run(cnt + 8 * v, base + 8 * v, 8, gmax, n, left);
        __m512i vpidx = _mm512_setzero_si512();
        if (run.steps != 0) {
          alignas(64) std::int64_t pidx[8];
          for (std::size_t l = 0; l < 8; ++l) {
            pidx[l] =
                cnt[8 * v + l] > 0 ? base[8 * v + l] - run.min_base : 0;
          }
          vpidx = _mm512_load_si512(pidx);
        }
        if (stats != nullptr) {
          stats->contig_steps += run.steps;
          stats->gather_steps += gmax - run.steps;
        }
        const __m512i vcnt = _mm512_load_si512(cnt + 8 * v);
        const __m512i vbase = _mm512_load_si512(base + 8 * v);
        __m512i vs = _mm512_setzero_si512();
        for (std::size_t s = 0; s < gmax; ++s) {
          const __mmask8 act = _mm512_cmplt_epi64_mask(vs, vcnt);
          __m512d xv, yv;
          if (s < run.steps) {
            const std::int64_t blk =
                left ? run.min_base - static_cast<std::int64_t>(s)
                     : run.min_base + static_cast<std::int64_t>(s);
            const double* px = xs + blk;
            const double* py = ys + blk;
            xv = _mm512_maskz_permutex2var_pd(act, _mm512_loadu_pd(px),
                                              vpidx, _mm512_loadu_pd(px + 8));
            yv = _mm512_maskz_permutex2var_pd(act, _mm512_loadu_pd(py),
                                              vpidx, _mm512_loadu_pd(py + 8));
          } else {
            const __m512i vidx = left ? _mm512_sub_epi64(vbase, vs)
                                      : _mm512_add_epi64(vbase, vs);
            xv = _mm512_mask_i64gather_pd(zero, act, vidx, xs, 8);
            yv = _mm512_mask_i64gather_pd(zero, act, vidx, ys, 8);
          }
          if (prefetch != 0) {
            // The run's extreme bases slide linearly with s, so the
            // frontier `prefetch` steps ahead is the two endpoint lines.
            const auto d = static_cast<std::int64_t>(s + prefetch);
            const std::int64_t pmin =
                left ? run.min_base - d : run.min_base + d;
            const std::int64_t pmax =
                left ? run.max_base - d : run.max_base + d;
            if (pmin >= 0 && pmin < static_cast<std::int64_t>(n)) {
              _mm_prefetch(reinterpret_cast<const char*>(xs + pmin),
                           _MM_HINT_T0);
              _mm_prefetch(reinterpret_cast<const char*>(ys + pmin),
                           _MM_HINT_T0);
            }
            if (pmax != pmin && pmax >= 0 &&
                pmax < static_cast<std::int64_t>(n)) {
              _mm_prefetch(reinterpret_cast<const char*>(xs + pmax),
                           _MM_HINT_T0);
              _mm_prefetch(reinterpret_cast<const char*>(ys + pmax),
                           _MM_HINT_T0);
            }
          }
          const __m512d dv = _mm512_and_pd(absmask, _mm512_sub_pd(xi[v], xv));
          __m512d pw = _mm512_mask_blend_pd(act, zero, one);
          vs = _mm512_add_epi64(vs, onei);
          for (std::size_t m = 0; m < T; ++m) {
            sm[m][v] = _mm512_add_pd(sm[m][v], pw);
            tm[m][v] = _mm512_add_pd(tm[m][v], _mm512_mul_pd(yv, pw));
            pw = _mm512_mul_pd(pw, dv);
          }
        }
      }
      if (phase == 1) {
        for (std::size_t l = 0; l < st.lanes; ++l) {
          st.lo[l] = lo_new[l];
          st.hi[l] = hi_new[l];
        }
      }
    }

    // Phase 3: recombination, identical expression shapes to the generic
    // path (spilled to buffers — k iterations, cold next to phase 2).
    for (std::size_t m = 0; m < T; ++m) {
      for (std::size_t v = 0; v < V; ++v) {
        _mm512_store_pd(smbuf[m] + 8 * v, sm[m][v]);
        _mm512_store_pd(tmbuf[m] + 8 * v, tm[m][v]);
      }
    }
    for (std::size_t l = 0; l < C; ++l) {
      num[l] = 0.0;
      den[l] = 0.0;
    }
    const double inv_h = 1.0 / h;
    double inv_pow = 1.0;
    for (std::size_t m = 0; m < T; ++m) {
      const double c = poly.coeff[m];
      if (c != 0.0) {
        if (m == 0) {
          for (std::size_t l = 0; l < C; ++l) {
            num[l] += c * (tmbuf[0][l] - st.yi[l]) * inv_pow;
          }
          for (std::size_t l = 0; l < C; ++l) {
            den[l] += c * (smbuf[0][l] - 1.0) * inv_pow;
          }
        } else {
          for (std::size_t l = 0; l < C; ++l) {
            num[l] += c * tmbuf[m][l] * inv_pow;
          }
          for (std::size_t l = 0; l < C; ++l) {
            den[l] += c * smbuf[m][l] * inv_pow;
          }
        }
      }
      inv_pow *= inv_h;
    }
    for (std::size_t l = 0; l < st.lanes; ++l) {
      const double dd = den[l];
      const double guarded = dd > 0.0 ? dd : 1.0;
      const double e = st.yi[l] - num[l] / guarded;
      write(b, l, dd > 0.0 ? e * e : 0.0);
    }
  }

  for (std::size_t m = 0; m < T; ++m) {
    for (std::size_t v = 0; v < V; ++v) {
      _mm512_storeu_pd(st.s_m[m] + 8 * v, sm[m][v]);
      _mm512_storeu_pd(st.t_m[m] + 8 * v, tm[m][v]);
    }
  }
}

/// Runtime→compile-time dispatch on the polynomial's term count. Returns
/// false (caller falls back to the generic path) for term counts outside
/// the supported 1…kMaxPower+1 range.
template <std::size_t C, class HView, class WriteResid>
inline bool batch_resume_avx512(LaneBatch<double, C>& st,
                                std::span<const double> xs_sorted,
                                std::span<const double> ys_sorted, HView hs,
                                const SweepPolynomial& poly,
                                WriteResid&& write, std::size_t prefetch,
                                BatchRunStats* stats) {
  static_assert(C % 8 == 0);
  constexpr std::size_t V = C / 8;
  switch (poly.max_power + 1) {
    case 1:
      batch_resume_avx512_impl<1, V>(st, xs_sorted, ys_sorted, hs, poly,
                                     write, prefetch, stats);
      return true;
    case 2:
      batch_resume_avx512_impl<2, V>(st, xs_sorted, ys_sorted, hs, poly,
                                     write, prefetch, stats);
      return true;
    case 3:
      batch_resume_avx512_impl<3, V>(st, xs_sorted, ys_sorted, hs, poly,
                                     write, prefetch, stats);
      return true;
    case 4:
      batch_resume_avx512_impl<4, V>(st, xs_sorted, ys_sorted, hs, poly,
                                     write, prefetch, stats);
      return true;
    case 5:
      batch_resume_avx512_impl<5, V>(st, xs_sorted, ys_sorted, hs, poly,
                                     write, prefetch, stats);
      return true;
    case 6:
      batch_resume_avx512_impl<6, V>(st, xs_sorted, ys_sorted, hs, poly,
                                     write, prefetch, stats);
      return true;
    case 7:
      batch_resume_avx512_impl<7, V>(st, xs_sorted, ys_sorted, hs, poly,
                                     write, prefetch, stats);
      return true;
    default:
      return false;
  }
}

}  // namespace kreg::detail

#endif  // KREG_HAVE_BATCHED_AVX512
