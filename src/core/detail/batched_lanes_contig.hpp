#pragma once

// Contiguous-run detection and the transpose fast path for the batched
// window sweep's phase-2 admission loops (see batched_lanes.hpp).
//
// Phase-2 loads are gathers because each lane admits from its own window.
// But within one phase (the left-descending or right-ascending run of one
// bandwidth) every lane's index is a *linear* function of the step:
// idx_l = base_l − s (left) or base_l + s (right), with base_l fixed for
// the whole run. So the spread of the C gather targets is step-invariant:
// span = max_l base_l − min_l base_l over the active lanes. Whenever
// span < kContigBlockWidth, all C targets at every step s live inside one
// kContigBlockWidth-element window starting at min_base ∓ s — and the
// masked gather can be replaced by one contiguous block load plus an
// in-register transpose with **bit-identical** results, because the
// transposed element xs[(min_base ∓ s) + (base_l − min_base)] is exactly
// the gathered element xs[base_l ∓ s], and inactive lanes are zeroed by
// the same mask either way. The σ position-sort (core/batched_sweep.hpp,
// SigmaPolicy::kPositionLength) exists to make this span small: lanes
// grouped by window position have nearby bases, so the run detector fires
// on most batches instead of almost never.
//
// Detection runs once per phase, not per step; the only per-step concern
// is staying inside [0, n) for the full-width block read, handled by
// clipping the run to a bounds-safe step count (the remaining steps fall
// back to the gather path seamlessly).

#include <cstddef>
#include <cstdint>

namespace kreg::detail {

/// Elements per contiguous block load: 16 doubles = two zmm vectors (two
/// cache lines), 16 floats = one cache line. Also the permute width of the
/// AVX-512 two-register transpose (vpermt2pd over 2×8 doubles).
inline constexpr std::size_t kContigBlockWidth = 16;

/// One phase's detected run: `any` says some lane admits this phase;
/// `min_base`/`max_base` bound the active lanes' bases (valid only when
/// `any`); `steps` is the bounds-safe contiguous step count (0 when the
/// span is too wide or the block read would leave [0, n)).
struct ContigRun {
  bool any = false;
  std::int64_t min_base = 0;
  std::int64_t max_base = 0;
  std::size_t steps = 0;
};

/// The run-length check over the lane cnt/base SoA state for one phase.
/// `left` selects the direction the block window slides: left runs read
/// [min_base − s, min_base − s + W) so s is capped by min_base; right runs
/// read [min_base + s, min_base + s + W) so s is capped by n − W −
/// min_base. Both need min_base + W ≤ n at s = 0. Lanes with cnt ≤ 0 are
/// ignored (their bases may be stale or −1).
inline ContigRun detect_contig_run(const std::int64_t* cnt,
                                   const std::int64_t* base,
                                   std::size_t lanes, std::size_t max_cnt,
                                   std::size_t n, bool left) {
  ContigRun run;
  for (std::size_t l = 0; l < lanes; ++l) {
    if (cnt[l] <= 0) {
      continue;
    }
    if (!run.any) {
      run.min_base = base[l];
      run.max_base = base[l];
      run.any = true;
    } else {
      run.min_base = base[l] < run.min_base ? base[l] : run.min_base;
      run.max_base = base[l] > run.max_base ? base[l] : run.max_base;
    }
  }
  if (!run.any || max_cnt == 0) {
    return run;
  }
  const auto width = static_cast<std::int64_t>(kContigBlockWidth);
  const auto ni = static_cast<std::int64_t>(n);
  if (run.max_base - run.min_base >= width) {
    return run;
  }
  if (run.min_base < 0 || run.min_base + width > ni) {
    return run;
  }
  const std::int64_t safe =
      left ? run.min_base + 1 : ni - width - run.min_base + 1;
  if (safe <= 0) {
    return run;
  }
  const auto safe_steps = static_cast<std::size_t>(safe);
  run.steps = max_cnt < safe_steps ? max_cnt : safe_steps;
  return run;
}

/// One contiguous-run transpose step for the generic (auto-vectorized)
/// path: stage the block [blk_start, blk_start + W) of xs/ys with one
/// contiguous full-width copy (the compiler turns it into block vector
/// loads / an inlined 128-byte memcpy), then feed each lane its own offset
/// from the L1-resident staging buffers. The transpose itself is split
/// into an in-block gather loop and a branch-free blend loop so both
/// vectorize — the vectorize CI job greps the opt report for this file.
/// `off[l]` must be base_l − min_base for active lanes and any in-range
/// value for inactive ones (they are zeroed by the cnt blend, matching the
/// gather path's ±0.0 padding exactly; the discarded distance computed for
/// an inactive lane cannot fault — staging elements are real xs values).
template <class Scalar, std::size_t C>
inline void contig_load_transpose(
    const Scalar* __restrict xs, const Scalar* __restrict ys,
    std::int64_t blk_start, const std::int64_t* __restrict cnt,
    const std::size_t* __restrict off, std::size_t s,
    const Scalar* __restrict xi, Scalar* __restrict dv,
    Scalar* __restrict yv, Scalar* __restrict pw) {
  alignas(64) Scalar xtmp[kContigBlockWidth];
  alignas(64) Scalar ytmp[kContigBlockWidth];
  const Scalar* bx = xs + blk_start;
  const Scalar* by = ys + blk_start;
  for (std::size_t j = 0; j < kContigBlockWidth; ++j) {
    xtmp[j] = bx[j];
    ytmp[j] = by[j];
  }
  alignas(64) Scalar xg[C];
  alignas(64) Scalar yg[C];
  for (std::size_t l = 0; l < C; ++l) {
    xg[l] = xtmp[off[l]];
    yg[l] = ytmp[off[l]];
  }
  const auto si = static_cast<std::int64_t>(s);
  for (std::size_t l = 0; l < C; ++l) {
    const bool act = si < cnt[l];
    const Scalar d = xg[l] < xi[l] ? xi[l] - xg[l] : xg[l] - xi[l];
    dv[l] = act ? d : Scalar{};
    yv[l] = act ? yg[l] : Scalar{};
    pw[l] = act ? Scalar{1} : Scalar{};
  }
}

}  // namespace kreg::detail
