#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "core/kernels.hpp"

namespace kreg::detail {

/// Polynomial in |u| with compact support [0, support_scale] (in h units):
/// the shared representation of K (support 1) and K̄ = K*K (support 2) used
/// by the host and device KDE sweeps.
struct SupportPolynomial {
  std::array<double, 6> coeff{};  ///< coeff[m] multiplies |u|^m
  std::size_t max_power = 0;
  double support_scale = 1.0;  ///< admitted when |Δ| <= support_scale * h
};

/// K as a support polynomial. Only valid for KDE-sweepable kernels
/// (Epanechnikov, Uniform).
inline SupportPolynomial kde_kernel_poly(KernelType kernel) {
  SupportPolynomial p;
  p.support_scale = 1.0;
  if (kernel == KernelType::kEpanechnikov) {
    p.coeff[0] = 0.75;
    p.coeff[2] = -0.75;
    p.max_power = 2;
  } else {  // Uniform
    p.coeff[0] = 0.5;
    p.max_power = 0;
  }
  return p;
}

/// K̄ = K*K as a support polynomial.
inline SupportPolynomial kde_convolution_poly(KernelType kernel) {
  SupportPolynomial p;
  p.support_scale = 2.0;
  if (kernel == KernelType::kEpanechnikov) {
    // (K*K)(u) = 3/160 (2−|u|)³(u² + 6|u| + 4)
    //          = 0.6 − 0.75u² + 0.375|u|³ − (3/160)|u|⁵  on [0, 2].
    p.coeff[0] = 0.6;
    p.coeff[2] = -0.75;
    p.coeff[3] = 0.375;
    p.coeff[5] = -3.0 / 160.0;
    p.max_power = 5;
  } else {  // Uniform: the triangle (2 − |u|)/4.
    p.coeff[0] = 0.5;
    p.coeff[1] = -0.25;
    p.max_power = 1;
  }
  return p;
}

inline constexpr std::size_t kKdeMaxMoment = 5;

/// Σ_m coeff[m] h^(−m) (sums[m] − self_m): the self term (distance 0,
/// always admitted) contributes 1 to moment 0 only. Shared recombination of
/// the prefix-pointer and window moment accumulators.
inline double combine_moments(
    const std::array<double, kKdeMaxMoment + 1>& sums,
    const SupportPolynomial& poly, double h) {
  double acc = 0.0;
  const double inv_h = 1.0 / h;
  double inv_pow = 1.0;
  for (std::size_t m = 0; m <= poly.max_power; ++m) {
    if (poly.coeff[m] != 0.0) {
      const double moment = m == 0 ? sums[m] - 1.0 : sums[m];
      acc += poly.coeff[m] * moment * inv_pow;
    }
    inv_pow *= inv_h;
  }
  return acc;
}

/// Running moment sums Σ|Δ|^m over an admitted prefix of a sorted distance
/// row, extended lazily as its pointer advances.
struct MomentSweep {
  std::array<double, kKdeMaxMoment + 1> sums{};
  std::size_t pointer = 0;

  void admit_through(std::span<const double> sorted, double limit,
                     std::size_t max_power) {
    while (pointer < sorted.size() && sorted[pointer] <= limit) {
      const double a = sorted[pointer];
      double pw = 1.0;
      for (std::size_t m = 0; m <= max_power; ++m) {
        sums[m] += pw;
        pw *= a;
      }
      ++pointer;
    }
  }

  double combine(const SupportPolynomial& poly, double h) const {
    return combine_moments(sums, poly, h);
  }
};

/// Running moment sums Σ|Δ|^m over a contiguous window of the *globally
/// sorted* X array around one observation — the window-sweep counterpart of
/// MomentSweep. Seeded with the self term; the left and right pointers only
/// move outward as the admission limit grows across the ascending grid, so
/// each observation contributes O(k + admitted) work with no per-row sort.
struct WindowMomentSweep {
  std::array<double, kKdeMaxMoment + 1> sums{};
  std::size_t lo = 0;  ///< inclusive left edge of the admitted window
  std::size_t hi = 0;  ///< inclusive right edge

  void seed(std::size_t pos) {
    lo = hi = pos;
    sums[0] = 1.0;  // self term: |Δ| = 0 contributes to moment 0 only
  }

  void expand(std::span<const double> xs_sorted, double xi, double limit,
              std::size_t max_power) {
    while (lo > 0 && xi - xs_sorted[lo - 1] <= limit) {
      admit(xi - xs_sorted[--lo], max_power);
    }
    while (hi + 1 < xs_sorted.size() && xs_sorted[hi + 1] - xi <= limit) {
      admit(xs_sorted[++hi] - xi, max_power);
    }
  }

  double combine(const SupportPolynomial& poly, double h) const {
    return combine_moments(sums, poly, h);
  }

 private:
  void admit(double a, std::size_t max_power) {
    double pw = 1.0;
    for (std::size_t m = 0; m <= max_power; ++m) {
      sums[m] += pw;
      pw *= a;
    }
  }
};

/// One observation's LSCV contribution from its two pair sums. The
/// combination is linear in (conv, loo), so Σ_i of these partials equals
/// LSCV(h) − R(K)/(nh) — which lets the device window path keep a single
/// n×k partial matrix instead of two contribution matrices.
inline double lscv_pair_partial(double conv_i, double loo_i, std::size_t n,
                                double h) {
  const double dn = static_cast<double>(n);
  return conv_i / (dn * dn * h) - 2.0 * loo_i / (dn * (dn - 1.0) * h);
}

/// Assembles LSCV(h) from the per-bandwidth totals of the two pair sums:
/// LSCV = R(K)/(nh) + conv/(n²h) − 2·loo/(n(n−1)h).
inline double assemble_lscv(double roughness_value, double conv_total,
                            double loo_total, std::size_t n, double h) {
  const double dn = static_cast<double>(n);
  return roughness_value / (dn * h) +
         lscv_pair_partial(conv_total, loo_total, n, h);
}

}  // namespace kreg::detail
