#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "core/batch_stats.hpp"
#include "core/kernels.hpp"
#include "core/detail/batched_lanes_contig.hpp"
#include "core/detail/batched_lanes_avx512.hpp"

namespace kreg::detail {

/// SELL-C-σ-style batched execution of the window sweep.
///
/// The scalar sweep (`window_sweep_resume`) interleaves three kinds of work
/// per observation and bandwidth: the two-pointer walks (branchy, data
/// dependent), the moment-sum accumulation over newly admitted elements
/// (the hot loop), and the polynomial recombination (pure arithmetic).
/// `LaneBatch` restructures that over C observations at once with
/// structure-of-arrays state — `s_m[m][lane]`, `t_m[m][lane]` — so the
/// accumulation and recombination become straight-line loops over the lane
/// dimension that the compiler auto-vectorizes, exactly the way SELL-C-σ
/// turns ragged sparse rows into C-wide vector strips:
///
///   phase 1  per lane: advance lo/hi pointers, *recording* the admission
///            counts instead of accumulating (scalar, but cheap — two
///            comparisons per admitted element);
///   phase 2  two lockstep runs — left side descending, then right side
///            ascending: the scalar sweep's exact admission order — where
///            step s feeds every lane its element at base ∓ s, lanes that
///            ran out contribute an exact zero, and the m-loop over the
///            C-wide arrays is branch-free; the linear step indexing
///            enables the contiguous-run transpose fast path
///            (batched_lanes_contig.hpp) whenever the active lanes' bases
///            fit one block window;
///   phase 3  recombination across lanes with the per-bandwidth scalars
///            (h, 1/h and its powers) hoisted out — computed once per
///            batch instead of once per observation.
///
/// σ-sorting batches by admission-window length (see core/batched_sweep.hpp)
/// keeps the lanes of one batch doing similar numbers of phase-2 steps, so
/// the zero-padded tail work stays small — and on the simulated device the
/// same grouping is what keeps a warp's windows coherent.
///
/// **Bitwise parity.** Each lane's floating-point operation sequence is
/// exactly the scalar sweep's for that observation: admissions happen in
/// the same order (left side descending, then right side ascending), each
/// element runs the same m-loop (`s_m[m] += pw; t_m[m] += y·pw; pw *= d`),
/// and the recombination evaluates the same expression shapes with the
/// same association. Padding lanes contribute `+= 0.0` / `+= 0.0·pw`,
/// which leaves every finite accumulator bit-identical (the only IEEE
/// exception, `-0.0 + 0.0 → +0.0`, would require an exact `-0.0` moment
/// sum, i.e. a `-0.0` Y value). The caller controls the reduction order of
/// the emitted residuals, so batched profiles reproduce the scalar
/// profiles bit for bit under the same reduction discipline.
template <class Scalar, std::size_t C>
struct LaneBatch {
  static constexpr std::size_t kWidth = C;
  static constexpr std::size_t kTerms = SweepPolynomial::kMaxPower + 1;

  std::size_t lanes = 0;             ///< active lanes (≤ C; rest are padding)
  std::array<std::size_t, C> pos{};  ///< sorted-array position per lane
  std::array<std::size_t, C> lo{};   ///< left window pointer per lane
  std::array<std::size_t, C> hi{};   ///< right window pointer per lane
  alignas(64) std::array<Scalar, C> xi{};  ///< X at pos, gathered once
  alignas(64) std::array<Scalar, C> yi{};  ///< Y at pos, gathered once
  alignas(64) Scalar s_m[kTerms][C] = {};  ///< Σ |d|^m per lane
  alignas(64) Scalar t_m[kTerms][C] = {};  ///< Σ Y·|d|^m per lane
};

/// Seeds every active lane the way `window_sweep_seed` seeds one thread:
/// pointers collapsed onto pos, moment sums holding only the self term.
/// `pos[l]` must be set for l < lanes before calling; padding lanes are
/// zeroed so the lockstep loops read defined values.
template <class Scalar, std::size_t C>
inline void batch_seed(LaneBatch<Scalar, C>& st, std::span<const Scalar> xs,
                       std::span<const Scalar> ys) {
  for (std::size_t m = 0; m < LaneBatch<Scalar, C>::kTerms; ++m) {
    for (std::size_t l = 0; l < C; ++l) {
      st.s_m[m][l] = Scalar{};
      st.t_m[m][l] = Scalar{};
    }
  }
  st.xi.fill(Scalar{});
  st.yi.fill(Scalar{});
  st.lo.fill(0);
  st.hi.fill(0);
  for (std::size_t l = 0; l < st.lanes; ++l) {
    const std::size_t p = st.pos[l];
    st.lo[l] = p;
    st.hi[l] = p;
    st.xi[l] = xs[p];
    st.yi[l] = ys[p];
    st.s_m[0][l] = Scalar{1};
    st.t_m[0][l] = ys[p];
  }
}

/// Loads carried per-observation window state (the k-block streaming carry
/// arrays, indexed by `key(l)`) into the batch — the batched counterpart of
/// the scalar kernels' "load the carried state into thread-local storage".
/// `LoView`/`SmView` are any indexable views (raw spans, spmd::MemView).
template <class Scalar, std::size_t C, class LoView, class SmView, class Key>
inline void batch_load(LaneBatch<Scalar, C>& st, std::span<const Scalar> xs,
                       std::span<const Scalar> ys, LoView lo_all,
                       LoView hi_all, SmView sm_all, SmView tm_all,
                       std::size_t terms, Key&& key) {
  for (std::size_t m = 0; m < LaneBatch<Scalar, C>::kTerms; ++m) {
    for (std::size_t l = 0; l < C; ++l) {
      st.s_m[m][l] = Scalar{};
      st.t_m[m][l] = Scalar{};
    }
  }
  st.xi.fill(Scalar{});
  st.yi.fill(Scalar{});
  st.lo.fill(0);
  st.hi.fill(0);
  for (std::size_t l = 0; l < st.lanes; ++l) {
    const std::size_t j = key(l);
    const std::size_t p = st.pos[l];
    st.lo[l] = lo_all[j];
    st.hi[l] = hi_all[j];
    st.xi[l] = xs[p];
    st.yi[l] = ys[p];
    for (std::size_t m = 0; m < terms; ++m) {
      st.s_m[m][l] = sm_all[j * terms + m];
      st.t_m[m][l] = tm_all[j * terms + m];
    }
  }
}

/// Stores the batch's window state back into the carry arrays; the inverse
/// of batch_load, run after the batch finishes its grid slice.
template <class Scalar, std::size_t C, class LoView, class SmView, class Key>
inline void batch_store(const LaneBatch<Scalar, C>& st, LoView lo_all,
                        LoView hi_all, SmView sm_all, SmView tm_all,
                        std::size_t terms, Key&& key) {
  for (std::size_t l = 0; l < st.lanes; ++l) {
    const std::size_t j = key(l);
    lo_all[j] = st.lo[l];
    hi_all[j] = st.hi[l];
    for (std::size_t m = 0; m < terms; ++m) {
      sm_all[j * terms + m] = st.s_m[m][l];
      tm_all[j * terms + m] = st.t_m[m][l];
    }
  }
}

/// Sweeps `hs` — the full grid or one ascending k-block slice — for all
/// lanes of the batch, resuming from the carried state. `write(b, l, sq)`
/// receives the squared LOO residual of active lane l for every slice
/// index b in ascending order. Per lane this performs bit-for-bit the
/// operations of `window_sweep_resume` on that lane's observation.
///
/// `prefetch` (> 0) issues software prefetches for the admission lines
/// `prefetch` steps ahead of the current one; `stats`, when non-null,
/// counts the phase-2 steps served by the contiguous-run transpose fast
/// path versus per-lane gathers (see batched_lanes_contig.hpp). Both are
/// observational: values and profiles are bitwise identical for every
/// setting.
template <class Scalar, std::size_t C, class HView, class WriteResid>
inline void batch_resume(LaneBatch<Scalar, C>& st,
                         std::span<const Scalar> xs_sorted,
                         std::span<const Scalar> ys_sorted, HView hs,
                         const SweepPolynomial& poly, WriteResid&& write,
                         std::size_t prefetch = 0,
                         BatchRunStats* stats = nullptr) {
#if KREG_HAVE_BATCHED_AVX512
  // Hand-vectorized fast path for the zmm-width double batches; produces
  // bit-identical profiles (see batched_lanes_avx512.hpp for the argument).
  if constexpr (std::is_same_v<Scalar, double> && (C == 8 || C == 16)) {
    if (batch_resume_avx512(st, xs_sorted, ys_sorted, hs, poly, write,
                            prefetch, stats)) {
      return;
    }
  }
#endif
  const std::size_t n = xs_sorted.size();
  const std::size_t k = hs.size();
  const std::size_t terms = poly.max_power + 1;
  const Scalar* xs = xs_sorted.data();
  const Scalar* ys = ys_sorted.data();

  std::array<std::size_t, C> lo_new{};  // left pointer after this h
  std::array<std::size_t, C> hi_new{};  // right pointer after this h
  alignas(64) std::int64_t cnt[C];      // this phase's admissions per lane
  alignas(64) std::int64_t base[C];     // this phase's step-0 index per lane
  std::array<std::size_t, C> off{};     // base − min_base (contig runs)
  alignas(64) std::array<Scalar, C> dv{};
  alignas(64) std::array<Scalar, C> yv{};
  alignas(64) std::array<Scalar, C> pw{};
  alignas(64) std::array<Scalar, C> num{};
  alignas(64) std::array<Scalar, C> den{};
  alignas(64) std::array<Scalar, C> sq{};

  for (std::size_t b = 0; b < k; ++b) {
    const Scalar h = hs[b];

    // Phase 1: pointer walks, recording the new extents. Scalar per lane —
    // the comparisons are the admission predicate of the scalar sweep, so
    // the recorded extents are exactly the elements it would admit.
    for (std::size_t l = 0; l < st.lanes; ++l) {
      const Scalar x = st.xi[l];
      std::size_t lo = st.lo[l];
      while (lo > 0 && x - xs[lo - 1] <= h) {
        --lo;
      }
      std::size_t hi = st.hi[l];
      while (hi + 1 < n && xs[hi + 1] - x <= h) {
        ++hi;
      }
      lo_new[l] = lo;
      hi_new[l] = hi;
    }

    // Phase 2: left run (descending from the old lo − 1), then right run
    // (ascending from the old hi + 1) — the scalar sweep's exact admission
    // order, with each lane's step index a linear function of s
    // (idx = base ∓ s). Exhausted lanes contribute exact zeros (pw = 0 so
    // every term adds ±0.0); relative to the interleaved form, only where
    // those padding steps fall differs, and padding never changes a finite
    // accumulator. The linear indexing is what enables the contiguous-run
    // transpose fast path (batched_lanes_contig.hpp): when all active
    // lanes' bases fit one block window, the per-lane loads become one
    // contiguous block copy plus an L1-resident transpose.
    for (int phase = 0; phase < 2; ++phase) {
      const bool left = phase == 0;
      std::size_t max_cnt = 0;
      for (std::size_t l = 0; l < C; ++l) {
        if (l < st.lanes) {
          cnt[l] = left ? static_cast<std::int64_t>(st.lo[l] - lo_new[l])
                        : static_cast<std::int64_t>(hi_new[l] - st.hi[l]);
          base[l] = left ? static_cast<std::int64_t>(st.lo[l]) - 1
                         : static_cast<std::int64_t>(st.hi[l]) + 1;
        } else {
          cnt[l] = 0;
          base[l] = 0;
        }
        const auto c = static_cast<std::size_t>(cnt[l]);
        max_cnt = c > max_cnt ? c : max_cnt;
      }
      const ContigRun run = detect_contig_run(cnt, base, C, max_cnt, n, left);
      if (run.steps != 0) {
        for (std::size_t l = 0; l < C; ++l) {
          off[l] = cnt[l] > 0
                       ? static_cast<std::size_t>(base[l] - run.min_base)
                       : 0;
        }
      }
      if (stats != nullptr) {
        stats->contig_steps += run.steps;
        stats->gather_steps += max_cnt - run.steps;
      }
      for (std::size_t s = 0; s < max_cnt; ++s) {
        if (prefetch != 0 && run.any) {
          // The run's extreme bases slide linearly with s, so the span's
          // frontier `prefetch` steps ahead is its two endpoint lines.
          const auto d = static_cast<std::int64_t>(s + prefetch);
          const std::int64_t pmin = left ? run.min_base - d : run.min_base + d;
          const std::int64_t pmax = left ? run.max_base - d : run.max_base + d;
          if (pmin >= 0 && pmin < static_cast<std::int64_t>(n)) {
            __builtin_prefetch(xs + pmin);
            __builtin_prefetch(ys + pmin);
          }
          if (pmax != pmin && pmax >= 0 &&
              pmax < static_cast<std::int64_t>(n)) {
            __builtin_prefetch(xs + pmax);
            __builtin_prefetch(ys + pmax);
          }
        }
        if (s < run.steps) {
          contig_load_transpose<Scalar, C>(
              xs, ys,
              left ? run.min_base - static_cast<std::int64_t>(s)
                   : run.min_base + static_cast<std::int64_t>(s),
              cnt, off.data(), s, st.xi.data(), dv.data(), yv.data(),
              pw.data());
        } else {
          const auto si = static_cast<std::int64_t>(s);
          for (std::size_t l = 0; l < C; ++l) {
            if (si < cnt[l]) {
              const auto idx =
                  static_cast<std::size_t>(left ? base[l] - si : base[l] + si);
              const Scalar xl = xs[idx];
              dv[l] = xl < st.xi[l] ? st.xi[l] - xl : xl - st.xi[l];
              yv[l] = ys[idx];
              pw[l] = Scalar{1};
            } else {
              dv[l] = Scalar{};
              yv[l] = Scalar{};
              pw[l] = Scalar{};
            }
          }
        }
        // The vector hot loop: C-wide, branch-free, contiguous.
        for (std::size_t m = 0; m < terms; ++m) {
          for (std::size_t l = 0; l < C; ++l) {
            st.s_m[m][l] += pw[l];
          }
          for (std::size_t l = 0; l < C; ++l) {
            st.t_m[m][l] += yv[l] * pw[l];
          }
          for (std::size_t l = 0; l < C; ++l) {
            pw[l] *= dv[l];
          }
        }
      }
    }
    for (std::size_t l = 0; l < st.lanes; ++l) {
      st.lo[l] = lo_new[l];
      st.hi[l] = hi_new[l];
    }

    // Phase 3: recombination across lanes. h, 1/h and its running powers
    // are shared by the whole batch — one division per batch per
    // bandwidth instead of one per observation.
    num.fill(Scalar{});
    den.fill(Scalar{});
    const Scalar inv_h = Scalar{1} / h;
    Scalar inv_pow = Scalar{1};
    for (std::size_t m = 0; m < terms; ++m) {
      const auto c = static_cast<Scalar>(poly.coeff[m]);
      if (c != Scalar{0}) {
        if (m == 0) {
          // Self term excluded analytically, as in the scalar sweep.
          for (std::size_t l = 0; l < C; ++l) {
            num[l] += c * (st.t_m[0][l] - st.yi[l]) * inv_pow;
          }
          for (std::size_t l = 0; l < C; ++l) {
            den[l] += c * (st.s_m[0][l] - Scalar{1}) * inv_pow;
          }
        } else {
          for (std::size_t l = 0; l < C; ++l) {
            num[l] += c * st.t_m[m][l] * inv_pow;
          }
          for (std::size_t l = 0; l < C; ++l) {
            den[l] += c * st.s_m[m][l] * inv_pow;
          }
        }
      }
      inv_pow *= inv_h;
    }
    for (std::size_t l = 0; l < C; ++l) {
      const Scalar guarded = den[l] > Scalar{0} ? den[l] : Scalar{1};
      const Scalar e = st.yi[l] - num[l] / guarded;
      sq[l] = den[l] > Scalar{0} ? e * e : Scalar{0};
    }

    for (std::size_t l = 0; l < st.lanes; ++l) {
      write(b, l, sq[l]);
    }
  }
}

/// Dispatches a runtime lane width onto the compile-time LaneBatch
/// instantiations: f receives std::integral_constant<std::size_t, C>.
/// Supported widths are 1 (degenerate single-lane batch, the parity
/// anchor) and the vector-friendly 4 / 8 / 16.
template <class F>
decltype(auto) with_lane_width(std::size_t lane_width, F&& f) {
  switch (lane_width) {
    case 1:
      return f(std::integral_constant<std::size_t, 1>{});
    case 4:
      return f(std::integral_constant<std::size_t, 4>{});
    case 8:
      return f(std::integral_constant<std::size_t, 8>{});
    case 16:
      return f(std::integral_constant<std::size_t, 16>{});
    default:
      throw std::invalid_argument(
          "lane_width must be 1, 4, 8, or 16 (got " +
          std::to_string(lane_width) + ")");
  }
}

}  // namespace kreg::detail
