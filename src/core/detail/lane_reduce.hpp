#pragma once

#include <cstddef>

#include "spmd/device.hpp"
#include "spmd/reduce.hpp"

namespace kreg::detail {

/// Lane-carried score reduction for n-block streaming.
///
/// The resident per-bandwidth reduction (spmd::reduce_sum and the
/// observation-major strided variant) is a two-phase schedule: phase 1 has
/// thread t fold the elements j ≡ t (mod D) in ascending j into a private
/// accumulator (D = the power-of-two reduction block size), phase 2 tree-
/// reduces the D accumulators in shared memory. Floating-point addition is
/// not associative, so a streamed sweep that reduced each n-block
/// separately and added block totals would NOT reproduce the resident
/// score bitwise.
///
/// Carrying the *lane accumulators* instead does: keep k×D per-(bandwidth,
/// lane) partials resident on the device, have each n-block add its
/// residuals into lane (global observation index mod D) in ascending order
/// (`score_lane_accum` at the call sites), and replay phase 2's exact tree
/// schedule once at the end — the sequence of additions each lane and each
/// tree node performs is then identical to the resident reduction for ANY
/// n-block size, so the streamed profile is bitwise identical to the
/// resident one. (Phase 1 of reduce_sum starts each lane at T{} = 0 and
/// left-folds with +=; accumulating directly into the zero-initialized
/// lane slot element-by-element reproduces that left fold across blocks.)
///
/// `lane_tree_reduce` is that final phase-2 replay: load the D carried
/// lanes into shared memory and run the requested Harris schedule. The
/// bandwidth-major resident path honours the configured ReduceVariant; the
/// observation-major path's strided reduction is hardcoded sequential, so
/// callers pass the variant their resident counterpart uses.
template <class Scalar>
Scalar lane_tree_reduce(spmd::Device& device, spmd::MemView<Scalar> lanes,
                        std::size_t offset, std::size_t block_dim,
                        spmd::ReduceVariant variant) {
  Scalar total{};
  device.launch_cooperative(
      "score_lane_reduce", spmd::LaunchConfig{1, block_dim},
      block_dim * sizeof(Scalar), [&](spmd::BlockCtx& ctx) {
        auto shared = ctx.template shared_as<Scalar>(block_dim);
        ctx.for_each_thread(
            [&](std::size_t t) { shared[t] = lanes[offset + t]; });
        if (variant == spmd::ReduceVariant::kSequential) {
          for (std::size_t stride = block_dim / 2; stride > 0; stride /= 2) {
            ctx.for_each_thread([&](std::size_t t) {
              if (t < stride) {
                shared[t] += shared[t + stride];
              }
            });
          }
        } else {
          for (std::size_t stride = 1; stride < block_dim; stride *= 2) {
            ctx.for_each_thread([&](std::size_t t) {
              if (t % (2 * stride) == 0 && t + stride < block_dim) {
                shared[t] += shared[t + stride];
              }
            });
          }
        }
        total = shared[0];
      });
  return total;
}

/// First row index r in [0, nb) whose carried lane is `lane`, given the
/// block's first row maps to lane `origin % D`: solves
/// (origin + r) ≡ lane (mod D).
inline std::size_t first_lane_row(std::size_t origin, std::size_t lane,
                                  std::size_t block_dim) noexcept {
  return (lane + block_dim - origin % block_dim) % block_dim;
}

}  // namespace kreg::detail
