#pragma once

#include <algorithm>
#include <cstddef>
#include <span>

#include "core/detail/kde_polynomials.hpp"
#include "core/kernels.hpp"
#include "sort/iterative_quicksort.hpp"
#include "sort/partition.hpp"

namespace kreg::detail {

/// The body of the paper's main device kernel for one thread, shared by the
/// single-device selector (Program 4) and the multi-device selector.
///
/// For observation `obs`: fills the caller-provided distance/Y rows from
/// the full X/Y arrays, sorts them with the iterative quicksort (Y as the
/// auxiliary payload), sweeps the ascending bandwidth grid accumulating the
/// moment sums, writes the two bandwidth-specific sums (self term
/// included), then performs the second bandwidth loop — self-term
/// exclusion, M guard, squared residual — handing each residual to
/// `write(b, value)` so the caller controls the output layout
/// (bandwidth-major, observation-major, sliced, …).
///
/// `HView`/`SumView` abstract the grid and sum containers: raw spans run
/// unchecked, the sanitizer's checked views (spmd::MemView) run with
/// memcheck/initcheck instrumentation. The dist/Y rows stay raw spans —
/// the in-place quicksort needs raw element references — so row storage is
/// outside the checked surface by design.
template <class Scalar, class HView, class SumView, class WriteResid>
inline void sweep_thread(std::span<const Scalar> xs, std::span<const Scalar> ys,
                         HView hs,
                         const SweepPolynomial& poly, std::size_t obs,
                         std::span<Scalar> dist, std::span<Scalar> yrow,
                         SumView sum_y, SumView sum_w,
                         WriteResid&& write) {
  const std::size_t n = xs.size();
  const std::size_t k = hs.size();
  const std::size_t terms = poly.max_power + 1;
  const auto c0 = static_cast<Scalar>(poly.coeff[0]);

  // Fill this thread's rows (paper §IV-B: "Each thread j fills in n values
  // of the abs(X_i − X_j) and Y_i matrices").
  const Scalar xj = xs[obs];
  for (std::size_t l = 0; l < n; ++l) {
    const Scalar d = xs[l] - xj;
    dist[l] = d < Scalar{0} ? -d : d;
    yrow[l] = ys[l];
  }

  // Truncate the sort at the largest grid bandwidth: no h can ever admit a
  // distance beyond hs[k-1], so partition those candidates out first and
  // quicksort only the admissible prefix (Y stays the auxiliary variable).
  const Scalar h_max = hs[k - 1];
  const std::size_t admissible = sort::partition_kv(dist, yrow, h_max);
  sort::iterative_quicksort_kv(dist.first(admissible),
                               yrow.first(admissible));

  // Single sweep over the ascending grid, extending the moment sums with
  // exactly the newly admitted observations per bandwidth.
  Scalar s_m[SweepPolynomial::kMaxPower + 1] = {};
  Scalar t_m[SweepPolynomial::kMaxPower + 1] = {};
  std::size_t p = 0;
  for (std::size_t b = 0; b < k; ++b) {
    const Scalar h = hs[b];
    while (p < admissible && dist[p] <= h) {
      Scalar pw = Scalar{1};
      for (std::size_t m = 0; m < terms; ++m) {
        s_m[m] += pw;
        t_m[m] += yrow[p] * pw;
        pw *= dist[p];
      }
      ++p;
    }
    // Recombine: Σ_m c_m h^(−m) T_m and Σ_m c_m h^(−m) S_m.
    Scalar num = Scalar{0};
    Scalar den = Scalar{0};
    const Scalar inv_h = Scalar{1} / h;
    Scalar inv_pow = Scalar{1};
    for (std::size_t m = 0; m < terms; ++m) {
      const auto c = static_cast<Scalar>(poly.coeff[m]);
      if (c != Scalar{0}) {
        num += c * t_m[m] * inv_pow;
        den += c * s_m[m] * inv_pow;
      }
      inv_pow *= inv_h;
    }
    sum_y[b] = num;
    sum_w[b] = den;
  }

  // Second bandwidth loop: exclude the observation's own K(0) = c0 term,
  // apply M(X_j), and emit squared residuals.
  const Scalar yj = ys[obs];
  for (std::size_t b = 0; b < k; ++b) {
    const Scalar den = sum_w[b] - c0;
    Scalar sq = Scalar{0};
    if (den > Scalar{0}) {
      const Scalar e = yj - (sum_y[b] - c0 * yj) / den;
      sq = e * e;
    }
    write(b, sq);
  }
}

/// The window-sweep variant of the per-thread kernel body: instead of
/// filling and quicksorting a private distance row, the thread indexes into
/// the *globally sorted* X/Y arrays (sorted once, on the host, before
/// launch). Because X is sorted, the neighbours of observation `pos` within
/// any bandwidth h form a contiguous window around `pos`, and as h ascends
/// the window only grows — so a left and a right pointer, each monotone,
/// enumerate exactly the newly admitted observations per bandwidth.
///
/// Per observation this costs O(k + admitted) with O(1) extra memory: no
/// O(n) private row, no per-row O(n log n) sort. Across n observations the
/// whole grid search is O(n log n) for the one global sort plus
/// O(n·(k + admitted)) for the sweeps, versus O(n² log n) for the per-row
/// paths — and the device variant's global-memory footprint drops from the
/// two n×n matrices to the O(n) sorted arrays, lifting the paper's §IV-A
/// n ≤ 20,000 allocation limit without streaming.
///
/// The self term (distance 0) is seeded into the moment sums up front and
/// subtracted analytically in the recombination, exactly as in the per-row
/// paths; M(X_pos) = 0 cases emit a 0 residual. `write(b, sq)` receives the
/// squared LOO residual for every bandwidth index b in ascending order.
///
/// The body is split so the grid can be *streamed in k-blocks*: the window
/// state — the two pointers plus the moment sums — is externalized into
/// caller storage, `window_sweep_seed` initializes it once, and
/// `window_sweep_resume` sweeps any contiguous ascending slice of the grid
/// continuing from where the previous slice stopped. Because each slice
/// performs exactly the admissions and recombinations the full-grid sweep
/// would, a streamed profile matches the resident profile bitwise.

/// Seeds one observation's window state: pointers collapsed onto `pos`,
/// moment sums holding only the self term (1 into S_0, Y_pos into T_0).
/// `s_m`/`t_m` must each hold poly.max_power + 1 elements.
template <class Scalar>
inline void window_sweep_seed(std::span<const Scalar> ys_sorted,
                              std::size_t pos, std::size_t& lo,
                              std::size_t& hi, std::span<Scalar> s_m,
                              std::span<Scalar> t_m) {
  lo = hi = pos;
  std::fill(s_m.begin(), s_m.end(), Scalar{});
  std::fill(t_m.begin(), t_m.end(), Scalar{});
  s_m[0] = Scalar{1};
  t_m[0] = ys_sorted[pos];
}

/// Sweeps `hs` — the full grid, or one ascending k-block slice of it —
/// resuming from the carried window state. `write(b, sq)` receives the
/// squared LOO residual for every index b *within the slice*.
template <class Scalar, class HView, class WriteResid>
inline void window_sweep_resume(std::span<const Scalar> xs_sorted,
                                std::span<const Scalar> ys_sorted,
                                HView hs,
                                const SweepPolynomial& poly, std::size_t pos,
                                std::size_t& lo, std::size_t& hi,
                                std::span<Scalar> s_m, std::span<Scalar> t_m,
                                WriteResid&& write) {
  const std::size_t n = xs_sorted.size();
  const std::size_t k = hs.size();
  const std::size_t terms = poly.max_power + 1;
  const Scalar xi = xs_sorted[pos];
  const Scalar yi = ys_sorted[pos];

  const auto admit = [&](std::size_t l) {
    const Scalar d = xs_sorted[l] < xi ? xi - xs_sorted[l] : xs_sorted[l] - xi;
    const Scalar yl = ys_sorted[l];
    Scalar pw = Scalar{1};
    for (std::size_t m = 0; m < terms; ++m) {
      s_m[m] += pw;
      t_m[m] += yl * pw;
      pw *= d;
    }
  };

  for (std::size_t b = 0; b < k; ++b) {
    const Scalar h = hs[b];
    while (lo > 0 && xi - xs_sorted[lo - 1] <= h) {
      admit(--lo);
    }
    while (hi + 1 < n && xs_sorted[hi + 1] - xi <= h) {
      admit(++hi);
    }

    // Recombine: Σ_m c_m h^(−m) T_m over Σ_m c_m h^(−m) S_m, self excluded.
    Scalar num = Scalar{0};
    Scalar den = Scalar{0};
    const Scalar inv_h = Scalar{1} / h;
    Scalar inv_pow = Scalar{1};
    for (std::size_t m = 0; m < terms; ++m) {
      const auto c = static_cast<Scalar>(poly.coeff[m]);
      if (c != Scalar{0}) {
        const Scalar s_excl = m == 0 ? s_m[m] - Scalar{1} : s_m[m];
        const Scalar t_excl = m == 0 ? t_m[m] - yi : t_m[m];
        num += c * t_excl * inv_pow;
        den += c * s_excl * inv_pow;
      }
      inv_pow *= inv_h;
    }

    Scalar sq = Scalar{0};
    if (den > Scalar{0}) {
      const Scalar e = yi - num / den;
      sq = e * e;
    }
    write(b, sq);
  }
}

/// ---- k-NN fast LOOCV window sweep --------------------------------------
///
/// A k-NN neighbourhood is a *window* in the sorted array: the k nearest
/// leave-one-out neighbours of observation `pos` are contiguous around its
/// sorted position, and as k ascends across a strictly increasing k-grid
/// the window only grows — the same monotone-admission invariant the
/// bandwidth sweep exploits, with the grid axis a neighbour count instead
/// of a bandwidth (Kanagawa's fast k-NN LOOCV). Two pointers admit the
/// globally next-nearest candidate per step; a boundary-tie pass then folds
/// in every remaining candidate at the window's widest admitted distance,
/// so the neighbour set is exactly {j ≠ pos : |x_j − x_pos| ≤ r_k} with r_k
/// the k-th smallest LOO distance — well-defined under duplicated x-values
/// and independent of admission order.
///
/// The left and right running Y-sums are carried *separately* and each side
/// accumulates strictly outward, so the fold order of every partial sum is
/// a deterministic function of (data, k) alone — which is what lets the
/// naive O(n²·|grid|) reference reproduce the fast profile bitwise, and
/// what keeps a k-block-streamed resume identical to the straight-through
/// sweep. State per observation: the two pointers and the two sums — O(1).

/// Seeds one observation's k-NN window state: pointers collapsed onto
/// `pos`, both side sums empty (the self term is never admitted).
template <class Scalar>
inline void knn_sweep_seed(std::size_t pos, std::size_t& lo, std::size_t& hi,
                           Scalar& sum_left, Scalar& sum_right) {
  lo = hi = pos;
  sum_left = Scalar{};
  sum_right = Scalar{};
}

/// Sweeps `ks` — the full neighbour grid, or one ascending slice of it —
/// resuming from the carried window state. `write(b, sq)` receives the
/// squared LOO residual for every index b *within the slice*.
template <class Scalar, class KView, class WriteResid>
inline void knn_sweep_resume(std::span<const Scalar> xs_sorted,
                             std::span<const Scalar> ys_sorted, KView ks,
                             std::size_t pos, std::size_t& lo, std::size_t& hi,
                             Scalar& sum_left, Scalar& sum_right,
                             WriteResid&& write) {
  const std::size_t n = xs_sorted.size();
  const Scalar xi = xs_sorted[pos];
  const auto admit_left = [&] {
    --lo;
    sum_left += ys_sorted[lo];
  };
  const auto admit_right = [&] {
    ++hi;
    sum_right += ys_sorted[hi];
  };
  for (std::size_t b = 0; b < ks.size(); ++b) {
    const std::size_t k = ks[b];
    // Greedy nondecreasing-distance admission until the window holds k
    // neighbours (ties prefer the left candidate; the tie fold below makes
    // the final set side-symmetric, so the preference never shows).
    while (hi - lo < k && (lo > 0 || hi + 1 < n)) {
      if (lo > 0 && (hi + 1 >= n ||
                     xi - xs_sorted[lo - 1] <= xs_sorted[hi + 1] - xi)) {
        admit_left();
      } else {
        admit_right();
      }
    }
    // Boundary ties: admit every remaining candidate at distance exactly
    // r_k (the widest admitted distance). Remaining candidates are all at
    // distance >= r_k, so the loops admit the tied ones and nothing else.
    Scalar radius{0};
    if (lo < pos) {
      radius = xi - xs_sorted[lo];
    }
    if (hi > pos && xs_sorted[hi] - xi > radius) {
      radius = xs_sorted[hi] - xi;
    }
    while (lo > 0 && xi - xs_sorted[lo - 1] <= radius) {
      admit_left();
    }
    while (hi + 1 < n && xs_sorted[hi + 1] - xi <= radius) {
      admit_right();
    }
    const auto count = static_cast<Scalar>(hi - lo);
    const Scalar e = ys_sorted[pos] - (sum_left + sum_right) / count;
    write(b, e * e);
  }
}

/// The whole-grid k-NN sweep: seed + resume with thread-local state.
template <class Scalar, class KView, class WriteResid>
inline void knn_sweep_thread(std::span<const Scalar> xs_sorted,
                             std::span<const Scalar> ys_sorted, KView ks,
                             std::size_t pos, WriteResid&& write) {
  std::size_t lo = 0;
  std::size_t hi = 0;
  Scalar sum_left{};
  Scalar sum_right{};
  knn_sweep_seed<Scalar>(pos, lo, hi, sum_left, sum_right);
  knn_sweep_resume<Scalar>(xs_sorted, ys_sorted, ks, pos, lo, hi, sum_left,
                           sum_right, std::forward<WriteResid>(write));
}

/// ---- One-sided CV (OSCV) window sweep ----------------------------------
///
/// One-sided kernels are *asymmetric admission windows*: the left-sided
/// smoother at x admits exactly [x − h, x) — the half-window 0 < x − x_j
/// ≤ h — so the sweep keeps the bandwidth-monotone invariant with only the
/// left pointer moving (Savchuk/Hart one-sided cross-validation). The
/// smoother is the one-sided *local-linear* fit (the estimator OSCV theory
/// is built on; a one-sided local mean would have O(h) boundary bias), and
/// its weighted design moments S̃_m = Σ w_j d_j^m, T̃_m = Σ w_j d_j^m Y_j
/// recombine from the carried absolute moments M_q = Σ |d|^q, N_q =
/// Σ Y·|d|^q with the usual h^(−p) rescaling: on the left side d = −|d|,
/// so S̃_m = (−1)^m Σ_p c_p h^(−p) M_{p+m} and the sign factors cancel in
/// the local-linear ratio. The fit needs moments up to max_power + 2, two
/// more than the symmetric sweep carries.
///
/// The self term is excluded by the window itself (d = 0 fails d > 0), so
/// the one-sided fit is leave-one-out by construction — duplicates of
/// x_pos are skipped the same way. Admission accumulates strictly outward
/// (lo descending), so the fold order is deterministic and a naive
/// re-accumulation per bandwidth reproduces the fast profile bitwise;
/// carried state (lo, count, M_q, N_q) makes k-block streaming exact.

/// Number of carried absolute moments for a one-sided local-linear sweep.
inline constexpr std::size_t oscv_moment_count(
    const SweepPolynomial& poly) noexcept {
  return poly.max_power + 3;
}

/// Upper bound of oscv_moment_count over all sweepable kernels — sizes
/// thread-local moment arrays.
inline constexpr std::size_t kOscvMaxMoments = SweepPolynomial::kMaxPower + 3;

/// Recombines the carried one-sided moments into one bandwidth's squared
/// LOO residual. Shared verbatim by the fast sweeps and the naive
/// reference so the branch structure (local-linear when the design is
/// nondegenerate, weighted-mean fallback, 0 when no neighbour carries
/// weight) is decided on identical values everywhere.
template <class Scalar>
inline Scalar oscv_residual(const SweepPolynomial& poly, Scalar h,
                            std::size_t count, std::span<const Scalar> m_q,
                            std::span<const Scalar> n_q, Scalar yi) {
  Scalar a0{};
  Scalar a1{};
  Scalar a2{};
  Scalar b0{};
  Scalar b1{};
  const Scalar inv_h = Scalar{1} / h;
  Scalar inv_pow{1};
  for (std::size_t p = 0; p <= poly.max_power; ++p) {
    const auto c = static_cast<Scalar>(poly.coeff[p]);
    if (c != Scalar{0}) {
      a0 += c * m_q[p] * inv_pow;
      a1 += c * m_q[p + 1] * inv_pow;
      a2 += c * m_q[p + 2] * inv_pow;
      b0 += c * n_q[p] * inv_pow;
      b1 += c * n_q[p + 1] * inv_pow;
    }
    inv_pow *= inv_h;
  }
  Scalar pred;
  const Scalar det = a0 * a2 - a1 * a1;
  if (count >= 2 && det > Scalar{0}) {
    pred = (a2 * b0 - a1 * b1) / det;  // one-sided local linear
  } else if (a0 > Scalar{0}) {
    pred = b0 / a0;  // degenerate design: one-sided weighted mean
  } else {
    return Scalar{0};  // no neighbour with positive weight: M(X_i) = 0
  }
  const Scalar e = yi - pred;
  return e * e;
}

/// Seeds one observation's one-sided window state: the left pointer on
/// `pos`, no admitted neighbours, all moments zero.
template <class Scalar>
inline void oscv_sweep_seed(std::size_t pos, std::size_t& lo,
                            std::size_t& count, std::span<Scalar> m_q,
                            std::span<Scalar> n_q) {
  lo = pos;
  count = 0;
  std::fill(m_q.begin(), m_q.end(), Scalar{});
  std::fill(n_q.begin(), n_q.end(), Scalar{});
}

/// Sweeps `hs` — the full bandwidth grid, or one ascending k-block slice —
/// resuming from the carried one-sided state. `m_q`/`n_q` must each hold
/// oscv_moment_count(poly) elements.
template <class Scalar, class HView, class WriteResid>
inline void oscv_sweep_resume(std::span<const Scalar> xs_sorted,
                              std::span<const Scalar> ys_sorted, HView hs,
                              const SweepPolynomial& poly, std::size_t pos,
                              std::size_t& lo, std::size_t& count,
                              std::span<Scalar> m_q, std::span<Scalar> n_q,
                              WriteResid&& write) {
  const std::size_t moments = oscv_moment_count(poly);
  const Scalar xi = xs_sorted[pos];
  const Scalar yi = ys_sorted[pos];
  for (std::size_t b = 0; b < hs.size(); ++b) {
    const Scalar h = hs[b];
    while (lo > 0 && xi - xs_sorted[lo - 1] <= h) {
      --lo;
      const Scalar d = xi - xs_sorted[lo];
      if (d > Scalar{0}) {  // duplicates of x_pos lie outside [x − h, x)
        const Scalar yl = ys_sorted[lo];
        Scalar pw = Scalar{1};
        for (std::size_t q = 0; q < moments; ++q) {
          m_q[q] += pw;
          n_q[q] += yl * pw;
          pw *= d;
        }
        ++count;
      }
    }
    write(b, oscv_residual<Scalar>(poly, h, count,
                                   std::span<const Scalar>(m_q.data(), moments),
                                   std::span<const Scalar>(n_q.data(), moments),
                                   yi));
  }
}

/// The whole-grid one-sided sweep: seed + resume with thread-local state.
template <class Scalar, class HView, class WriteResid>
inline void oscv_sweep_thread(std::span<const Scalar> xs_sorted,
                              std::span<const Scalar> ys_sorted, HView hs,
                              const SweepPolynomial& poly, std::size_t pos,
                              WriteResid&& write) {
  Scalar m_q[kOscvMaxMoments] = {};
  Scalar n_q[kOscvMaxMoments] = {};
  const std::size_t moments = oscv_moment_count(poly);
  std::size_t lo = 0;
  std::size_t count = 0;
  oscv_sweep_seed<Scalar>(pos, lo, count, std::span<Scalar>(m_q, moments),
                          std::span<Scalar>(n_q, moments));
  oscv_sweep_resume<Scalar>(xs_sorted, ys_sorted, hs, poly, pos, lo, count,
                            std::span<Scalar>(m_q, moments),
                            std::span<Scalar>(n_q, moments),
                            std::forward<WriteResid>(write));
}

/// Halo bounds for n-block streaming (host-side; the data is sorted on the
/// host before upload, so the slab a block needs is a binary search away —
/// no device out-of-core sort).
///
/// A block of observations [block_begin, block_last] admits, at the largest
/// reach (h_max, scaled by the kernel's support for the KDE convolution
/// window), exactly the sorted indices l with |xs[l] − xs[pos]| <= reach
/// for some pos in the block. Because the admission predicate is a
/// correctly-rounded floating-point subtraction — monotone in the minuend —
/// every index the *device* sweep could admit for any pos in the block and
/// any h <= reach lies inside [halo_begin, halo_end): if
/// xs[block_begin] − xs[l] > reach then xs[pos] − xs[l] >= that for every
/// pos >= block_begin, so the device's own `<= h` test also rejects l. The
/// slab therefore never truncates an admission, and slab-relative pointer
/// guards reproduce the resident guards' decisions exactly — which is what
/// keeps the n-streamed profile bitwise identical to the resident one.

/// Smallest sorted index the block starting at `block_begin` can ever
/// admit: the first l with xs[block_begin] − xs[l] <= reach.
template <class Scalar>
inline std::size_t halo_begin(std::span<const Scalar> xs_sorted,
                              std::size_t block_begin, Scalar reach) {
  std::size_t lo = 0;
  std::size_t hi = block_begin;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (xs_sorted[block_begin] - xs_sorted[mid] > reach) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// One past the largest sorted index the block ending at `block_last`
/// (inclusive) can ever admit: past the last l with
/// xs[l] − xs[block_last] <= reach.
template <class Scalar>
inline std::size_t halo_end(std::span<const Scalar> xs_sorted,
                            std::size_t block_last, Scalar reach) {
  std::size_t lo = block_last;
  std::size_t hi = xs_sorted.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (xs_sorted[mid] - xs_sorted[block_last] <= reach) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Largest slab (block + halo) any n-block of size `n_block` tiling
/// [range_begin, range_end) would upload — the byte model's worst case for
/// resolve_streaming_2d. O((range / n_block) · log n).
template <class Scalar>
inline std::size_t max_halo_span(std::span<const Scalar> xs_sorted,
                                 std::size_t range_begin,
                                 std::size_t range_end, std::size_t n_block,
                                 Scalar reach) {
  std::size_t widest = 0;
  for (std::size_t n0 = range_begin; n0 < range_end; n0 += n_block) {
    const std::size_t n1 = std::min(n0 + n_block, range_end);
    const std::size_t begin = halo_begin(xs_sorted, n0, reach);
    const std::size_t end = halo_end(xs_sorted, n1 - 1, reach);
    widest = std::max(widest, end - begin);
  }
  return widest;
}

/// The whole-grid window sweep: seed + resume over all k bandwidths with
/// thread-local state. This is the resident (non-streamed) kernel body.
template <class Scalar, class HView, class WriteResid>
inline void window_sweep_thread(std::span<const Scalar> xs_sorted,
                                std::span<const Scalar> ys_sorted,
                                HView hs,
                                const SweepPolynomial& poly, std::size_t pos,
                                WriteResid&& write) {
  Scalar s_m[SweepPolynomial::kMaxPower + 1] = {};
  Scalar t_m[SweepPolynomial::kMaxPower + 1] = {};
  const std::size_t terms = poly.max_power + 1;
  std::size_t lo = 0;
  std::size_t hi = 0;
  window_sweep_seed<Scalar>(ys_sorted, pos, lo, hi,
                            std::span<Scalar>(s_m, terms),
                            std::span<Scalar>(t_m, terms));
  window_sweep_resume<Scalar>(xs_sorted, ys_sorted, hs, poly, pos, lo, hi,
                              std::span<Scalar>(s_m, terms),
                              std::span<Scalar>(t_m, terms),
                              std::forward<WriteResid>(write));
}

/// The window-sweep body of the device KDE LSCV kernel for one thread: the
/// KDE counterpart of window_sweep_thread. Instead of filling and
/// quicksorting a private |Δ| row, the thread indexes the *globally sorted*
/// X (sorted once on the host before launch) with **two** admission windows
/// per `kde_window_lscv_profile`: |Δ| ≤ h feeds the leave-one-out K sum and
/// |Δ| ≤ 2h feeds the K̄ = K*K convolution sum, each a pair of monotone
/// pointers growing outward across the ascending bandwidth grid.
///
/// Per observation this costs O(k + admitted) with O(1) extra memory — no
/// O(n) private row, no per-thread sort — so the device drops the n×n row
/// matrix that capped the per-row KDE selector's sample size.
/// `write(b, conv, loo)` receives both per-bandwidth pair sums (self term
/// already excluded) for every bandwidth index b in ascending order; the
/// caller combines them into LSCV partials in whatever layout it wants.
///
/// Like the regression sweep above, the body is split for k-block
/// streaming: `kde_window_sweep_resume` carries the two WindowMomentSweep
/// states in caller storage and sweeps any ascending slice of the grid,
/// continuing where the previous slice stopped — streamed LSCV partials
/// match the resident ones bitwise.
template <class HView, class WriteSums>
inline void kde_window_sweep_resume(std::span<const double> xs_sorted,
                                    HView hs,
                                    const SupportPolynomial& kpoly,
                                    const SupportPolynomial& cpoly,
                                    std::size_t pos,
                                    WindowMomentSweep& conv_sweep,
                                    WindowMomentSweep& loo_sweep,
                                    WriteSums&& write) {
  const double xi = xs_sorted[pos];
  const std::size_t max_power = std::max(kpoly.max_power, cpoly.max_power);
  for (std::size_t b = 0; b < hs.size(); ++b) {
    const double h = hs[b];
    conv_sweep.expand(xs_sorted, xi, cpoly.support_scale * h, max_power);
    loo_sweep.expand(xs_sorted, xi, kpoly.support_scale * h, max_power);
    write(b, conv_sweep.combine(cpoly, h), loo_sweep.combine(kpoly, h));
  }
}

/// The whole-grid KDE window sweep: seeds both admission windows and
/// resumes over all k bandwidths with thread-local state.
template <class HView, class WriteSums>
inline void kde_window_sweep_thread(std::span<const double> xs_sorted,
                                    HView hs,
                                    const SupportPolynomial& kpoly,
                                    const SupportPolynomial& cpoly,
                                    std::size_t pos, WriteSums&& write) {
  WindowMomentSweep conv_sweep;  // admits |Δ| <= 2h
  WindowMomentSweep loo_sweep;   // admits |Δ| <= h
  conv_sweep.seed(pos);
  loo_sweep.seed(pos);
  kde_window_sweep_resume(xs_sorted, hs, kpoly, cpoly, pos, conv_sweep,
                          loo_sweep, std::forward<WriteSums>(write));
}

}  // namespace kreg::detail
