#pragma once

#include <cstddef>
#include <span>

#include "core/kernels.hpp"
#include "sort/iterative_quicksort.hpp"

namespace kreg::detail {

/// The body of the paper's main device kernel for one thread, shared by the
/// single-device selector (Program 4) and the multi-device selector.
///
/// For observation `obs`: fills the caller-provided distance/Y rows from
/// the full X/Y arrays, sorts them with the iterative quicksort (Y as the
/// auxiliary payload), sweeps the ascending bandwidth grid accumulating the
/// moment sums, writes the two bandwidth-specific sums (self term
/// included), then performs the second bandwidth loop — self-term
/// exclusion, M guard, squared residual — handing each residual to
/// `write(b, value)` so the caller controls the output layout
/// (bandwidth-major, observation-major, sliced, …).
template <class Scalar, class WriteResid>
inline void sweep_thread(std::span<const Scalar> xs, std::span<const Scalar> ys,
                         std::span<const Scalar> hs,
                         const SweepPolynomial& poly, std::size_t obs,
                         std::span<Scalar> dist, std::span<Scalar> yrow,
                         std::span<Scalar> sum_y, std::span<Scalar> sum_w,
                         WriteResid&& write) {
  const std::size_t n = xs.size();
  const std::size_t k = hs.size();
  const std::size_t terms = poly.max_power + 1;
  const auto c0 = static_cast<Scalar>(poly.coeff[0]);

  // Fill this thread's rows (paper §IV-B: "Each thread j fills in n values
  // of the abs(X_i − X_j) and Y_i matrices").
  const Scalar xj = xs[obs];
  for (std::size_t l = 0; l < n; ++l) {
    const Scalar d = xs[l] - xj;
    dist[l] = d < Scalar{0} ? -d : d;
    yrow[l] = ys[l];
  }

  // Per-thread iterative quicksort, Y as the auxiliary variable.
  sort::iterative_quicksort_kv(dist, yrow);

  // Single sweep over the ascending grid, extending the moment sums with
  // exactly the newly admitted observations per bandwidth.
  Scalar s_m[SweepPolynomial::kMaxPower + 1] = {};
  Scalar t_m[SweepPolynomial::kMaxPower + 1] = {};
  std::size_t p = 0;
  for (std::size_t b = 0; b < k; ++b) {
    const Scalar h = hs[b];
    while (p < n && dist[p] <= h) {
      Scalar pw = Scalar{1};
      for (std::size_t m = 0; m < terms; ++m) {
        s_m[m] += pw;
        t_m[m] += yrow[p] * pw;
        pw *= dist[p];
      }
      ++p;
    }
    // Recombine: Σ_m c_m h^(−m) T_m and Σ_m c_m h^(−m) S_m.
    Scalar num = Scalar{0};
    Scalar den = Scalar{0};
    const Scalar inv_h = Scalar{1} / h;
    Scalar inv_pow = Scalar{1};
    for (std::size_t m = 0; m < terms; ++m) {
      const auto c = static_cast<Scalar>(poly.coeff[m]);
      if (c != Scalar{0}) {
        num += c * t_m[m] * inv_pow;
        den += c * s_m[m] * inv_pow;
      }
      inv_pow *= inv_h;
    }
    sum_y[b] = num;
    sum_w[b] = den;
  }

  // Second bandwidth loop: exclude the observation's own K(0) = c0 term,
  // apply M(X_j), and emit squared residuals.
  const Scalar yj = ys[obs];
  for (std::size_t b = 0; b < k; ++b) {
    const Scalar den = sum_w[b] - c0;
    Scalar sq = Scalar{0};
    if (den > Scalar{0}) {
      const Scalar e = yj - (sum_y[b] - c0 * yj) / den;
      sq = e * e;
    }
    write(b, sq);
  }
}

}  // namespace kreg::detail
