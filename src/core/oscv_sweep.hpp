#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/kernels.hpp"
#include "core/selectors.hpp"
#include "core/streaming.hpp"
#include "core/window_sweep.hpp"
#include "data/dataset.hpp"
#include "parallel/thread_pool.hpp"
#include "spmd/device.hpp"

namespace kreg {

/// One-sided cross-validation (OSCV, Hart & Yi; Savchuk) on the shared
/// window machinery — the asymmetric-window workload.
///
/// OSCV replaces the LOOCV smoother with a *one-sided* one: at each X_i
/// only the neighbours in [X_i − b, X_i) participate — an asymmetric
/// admission window, so the sweep keeps the bandwidth-monotone invariant
/// with only the left pointer moving. The one-sided smoother is the
/// local-LINEAR fit with the one-sided kernel (a one-sided local mean
/// would carry O(b) boundary bias), evaluated at the window's right edge.
/// The OSCV criterion OSCV(b) = (1/n) Σ_i (Y_i − ĝ_b^-(X_i))² is minimized
/// over the b-grid, and the selected one-sided bandwidth rescales to the
/// final two-sided bandwidth ĥ = C·b̂ with the closed-form kernel constant
/// C = oscv_rescale_constant (the Hart–Yi rescaling; ≈ 0.537 for
/// Epanechnikov). Its documented payoff: CV's selected h is noticeably
/// more variable than OSCV's, and at a kink in the regression mean the
/// one-sided criterion degrades more gracefully.
///
/// Backend contract (same shape as knn_sweep.hpp): per-(i, b) residuals
/// accumulate strictly outward on the one side, so they are bit-identical
/// across every fast backend and the naive reference; sequential, device,
/// and streamed-k-block profiles agree bitwise (ordered score folds),
/// while parallel/tiled regroup the fold at slice/tile boundaries —
/// deterministic, and bitwise when one slice/tile covers n. See
/// detail/device_sweep.hpp (oscv_sweep_seed/resume/oscv_residual).

/// The kernel-dependent constant C of the OSCV bandwidth rescaling
/// ĥ = C·b̂: with L the equivalent kernel of the one-sided local-linear
/// smoother built from K on [0, 1],
///   C = (R(K)/μ₂(K)²)^{1/5} / (R(L)/μ₂(L)²)^{1/5},
/// computed in closed form from K's sweep polynomial (all integrals of
/// polynomials over [0, 1]). Epanechnikov: 0.53713…; uniform: 0.5 exactly.
/// Throws for non-sweepable kernels.
double oscv_rescale_constant(KernelType kernel);

/// Full one-sided profile OSCV(b) for every b in the (strictly ascending,
/// validated) grid, sequentially over observations via the fast sweep.
std::vector<double> oscv_profile(const data::Dataset& data,
                                 std::span<const double> grid,
                                 KernelType kernel,
                                 Precision precision = Precision::kDouble);

/// Same profile with observations distributed across a thread pool
/// (per-slice partials combined in slice order — deterministic).
std::vector<double> oscv_profile_parallel(
    const data::Dataset& data, std::span<const double> grid, KernelType kernel,
    Precision precision = Precision::kDouble,
    parallel::ThreadPool* pool = nullptr);

/// Cache-blocked host mirror of the device's k-block streaming: tiles
/// carry the one-sided window state (left pointer, admitted count, the
/// absolute moments M_q/N_q) across ascending k-blocks taken innermost.
std::vector<double> oscv_profile_tiled(const data::Dataset& data,
                                       std::span<const double> grid,
                                       KernelType kernel,
                                       Precision precision = Precision::kDouble,
                                       HostTiling tiling = {},
                                       parallel::ThreadPool* pool = nullptr);

/// Naive O(n²·|grid|) reference: re-accumulates every (observation, b)
/// one-sided moment set from scratch (same outward order, same
/// recombination), then scores through the same oscv_residual. Ground
/// truth for the golden and fuzz suites — fast profiles match it bitwise.
std::vector<double> oscv_profile_naive(const data::Dataset& data,
                                       std::span<const double> grid,
                                       KernelType kernel,
                                       Precision precision = Precision::kDouble);

/// Device execution of the one-sided sweep.
struct OscvDeviceConfig {
  Precision precision = Precision::kDouble;
  std::size_t threads_per_block = 512;
  /// k-block streaming (1-D), same contract as KnnDeviceConfig::stream:
  /// the b-grid tiles through one resident n×k_block residual block with
  /// the one-sided carry state in O(n) buffers; streamed == resident
  /// bitwise. n_block is ignored.
  StreamingConfig stream;
};

/// The sweep on the SPMD device: one thread per observation fills the
/// residual block, then one thread per bandwidth folds its n residuals in
/// ascending observation order — bitwise equal to oscv_profile.
std::vector<double> oscv_profile_device(spmd::Device& device,
                                        const data::Dataset& data,
                                        std::span<const double> grid,
                                        KernelType kernel,
                                        OscvDeviceConfig config = {});

/// Modeled device footprint of the OSCV plan holding `k_block` grid
/// entries resident (k_block = 0: the k-independent base).
std::size_t oscv_estimated_streamed_bytes(std::size_t n, std::size_t k_block,
                                          Precision precision,
                                          KernelType kernel);

/// OSCV as a drop-in Selector: minimizes OSCV(b) over the grid via the
/// fast one-sided sweep, then reports the *rescaled* two-sided bandwidth
/// ĥ = C·b̂ in SelectionResult::bandwidth. `grid`/`scores` hold the
/// one-sided profile over the b-grid (so the argmin relation
/// scores[argmin] == cv_score still holds; bandwidth is C·grid[argmin]).
class OscvSweepSelector final : public Selector {
 public:
  explicit OscvSweepSelector(KernelType kernel = KernelType::kEpanechnikov,
                             Precision precision = Precision::kDouble,
                             bool parallel = false,
                             parallel::ThreadPool* pool = nullptr)
      : kernel_(kernel), precision_(precision), parallel_(parallel),
        pool_(pool) {}

  SelectionResult select(const data::Dataset& data,
                         const BandwidthGrid& grid) const override;
  std::string name() const override;

 private:
  KernelType kernel_;
  Precision precision_;
  bool parallel_;
  parallel::ThreadPool* pool_;
};

}  // namespace kreg
