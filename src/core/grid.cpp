#include "core/grid.hpp"

#include <stdexcept>
#include <string>

namespace kreg {

BandwidthGrid::BandwidthGrid(double min_h, double max_h, std::size_t k) {
  if (k == 0) {
    throw std::invalid_argument("BandwidthGrid: k must be at least 1");
  }
  if (!(min_h > 0.0)) {
    throw std::invalid_argument(
        "BandwidthGrid: minimum bandwidth must be positive, got " +
        std::to_string(min_h));
  }
  if (min_h > max_h) {
    throw std::invalid_argument("BandwidthGrid: min " + std::to_string(min_h) +
                                " exceeds max " + std::to_string(max_h));
  }
  values_.reserve(k);
  if (k == 1) {
    values_.push_back(max_h);
    return;
  }
  const double step = (max_h - min_h) / static_cast<double>(k - 1);
  for (std::size_t i = 0; i < k; ++i) {
    values_.push_back(min_h + step * static_cast<double>(i));
  }
  values_.back() = max_h;  // guard against accumulation drift

  // The incremental sweeps assume a strictly ascending grid (duplicate
  // candidates would also waste profile entries), so enforce it here: a
  // degenerate range (min == max with k > 1) or a spacing below double
  // resolution is rejected rather than silently collapsed.
  for (std::size_t i = 1; i < values_.size(); ++i) {
    if (!(values_[i] > values_[i - 1])) {
      throw std::invalid_argument(
          "BandwidthGrid: k = " + std::to_string(k) + " values on [" +
          std::to_string(min_h) + ", " + std::to_string(max_h) +
          "] are not strictly ascending; widen the range or reduce k");
    }
  }
}

BandwidthGrid BandwidthGrid::default_for(const data::Dataset& dataset,
                                         std::size_t k) {
  const double domain = dataset.x_domain();
  if (!(domain > 0.0)) {
    throw std::invalid_argument(
        "BandwidthGrid::default_for: X domain is degenerate");
  }
  if (k == 0) {
    throw std::invalid_argument("BandwidthGrid::default_for: k must be >= 1");
  }
  return BandwidthGrid(domain / static_cast<double>(k), domain, k);
}

BandwidthGrid BandwidthGrid::zoomed(double lo, double hi, std::size_t k) const {
  return BandwidthGrid(lo, hi, k);
}

BandwidthGrid BandwidthGrid::from_values(std::vector<double> values) {
  if (values.empty()) {
    throw std::invalid_argument("BandwidthGrid::from_values: empty grid");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!(values[i] > 0.0)) {
      throw std::invalid_argument(
          "BandwidthGrid::from_values: value at index " + std::to_string(i) +
          " (" + std::to_string(values[i]) + ") is not positive");
    }
    if (i > 0 && !(values[i] > values[i - 1])) {
      throw std::invalid_argument(
          "BandwidthGrid::from_values: values are not strictly ascending at "
          "index " +
          std::to_string(i));
    }
  }
  BandwidthGrid grid;
  grid.values_ = std::move(values);
  return grid;
}

}  // namespace kreg
