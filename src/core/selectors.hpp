#pragma once

#include <memory>
#include <string>

#include "core/grid.hpp"
#include "core/kernels.hpp"
#include "core/loocv.hpp"
#include "core/optimizers.hpp"
#include "core/sorted_sweep.hpp"
#include "core/types.hpp"
#include "core/window_sweep.hpp"
#include "data/dataset.hpp"
#include "parallel/thread_pool.hpp"

namespace kreg {

/// The regression estimators the selection engine serves (PR: the CLI and
/// auto_regress became multi-estimator). kNadarayaWatson selects a
/// bandwidth by LOOCV (the paper's workload); kKnn selects a neighbour
/// count by fast k-NN LOOCV (core/knn_sweep.hpp); kOscv selects a
/// bandwidth by one-sided CV with the Hart–Yi rescaling
/// (core/oscv_sweep.hpp). All three run on the shared sorted-array +
/// monotone-admission-window machinery.
enum class EstimatorKind {
  kNadarayaWatson,
  kKnn,
  kOscv,
};
std::string_view to_string(EstimatorKind estimator) noexcept;

/// Parses "nw" / "knn" / "oscv" (the CLI's --estimator values). Throws
/// std::invalid_argument on anything else, naming the valid spellings.
EstimatorKind parse_estimator(std::string_view text);

/// Common interface of every bandwidth selector. Grid-based selectors
/// evaluate CV_lc at each grid value; optimizer-based selectors use the
/// grid only for its [min, max] bracket. Implementations are const-callable
/// and safe to reuse across datasets.
class Selector {
 public:
  virtual ~Selector() = default;

  /// Selects the bandwidth minimizing CV_lc(h). Throws
  /// std::invalid_argument on empty/invalid inputs.
  virtual SelectionResult select(const data::Dataset& data,
                                 const BandwidthGrid& grid) const = 0;

  /// Human-readable selector name (fills SelectionResult::method).
  virtual std::string name() const = 0;
};

/// Builds a SelectionResult from a computed CV profile: argmin with
/// smallest-index tie-break (deterministic).
SelectionResult selection_from_profile(const BandwidthGrid& grid,
                                       std::vector<double> scores,
                                       std::string method);

/// Reference grid search: evaluates the O(n²) objective independently at
/// every grid value — the O(k·n²) algorithm the paper's §III complexity
/// argument starts from. Ground truth for every fast selector, and the only
/// grid selector valid for non-sweepable kernels (Gaussian, Cosine).
class NaiveGridSelector final : public Selector {
 public:
  explicit NaiveGridSelector(KernelType kernel = KernelType::kEpanechnikov,
                             bool parallel = false,
                             parallel::ThreadPool* pool = nullptr)
      : kernel_(kernel), parallel_(parallel), pool_(pool) {}

  SelectionResult select(const data::Dataset& data,
                         const BandwidthGrid& grid) const override;
  std::string name() const override;

 private:
  KernelType kernel_;
  bool parallel_;
  parallel::ThreadPool* pool_;
};

/// **Program 3** — "Sequential C": the paper's sorting-based grid search on
/// one core. Per observation: sort distances once (iterative quicksort with
/// Y payload), then accumulate all k bandwidths' sums in a single sweep.
/// O(n² log n) total, guaranteed global minimum over the grid.
class SortedGridSelector final : public Selector {
 public:
  explicit SortedGridSelector(KernelType kernel = KernelType::kEpanechnikov,
                              Precision precision = Precision::kDouble)
      : kernel_(kernel), precision_(precision) {}

  SelectionResult select(const data::Dataset& data,
                         const BandwidthGrid& grid) const override;
  std::string name() const override;

 private:
  KernelType kernel_;
  Precision precision_;
};

/// Host-parallel variant of Program 3: observations distributed across a
/// thread pool. With the observation loop being embarrassingly parallel,
/// this is what Program 3 becomes on a multicore host without a device.
class ParallelSortedGridSelector final : public Selector {
 public:
  explicit ParallelSortedGridSelector(
      KernelType kernel = KernelType::kEpanechnikov,
      Precision precision = Precision::kDouble,
      parallel::ThreadPool* pool = nullptr)
      : kernel_(kernel), precision_(precision), pool_(pool) {}

  SelectionResult select(const data::Dataset& data,
                         const BandwidthGrid& grid) const override;
  std::string name() const override;

 private:
  KernelType kernel_;
  Precision precision_;
  parallel::ThreadPool* pool_;
};

/// The window-sweep grid search (see core/window_sweep.hpp): sorts (X, Y)
/// once globally, then grows a two-pointer window per observation across
/// the ascending grid — O(n log n + n·(k + admitted)) total instead of the
/// per-row-sort paths' O(n² log n), with O(n) extra memory. Same profile as
/// SortedGridSelector up to floating-point recombination error; the
/// per-row-sort selectors remain the paper-faithful ablation baseline.
class WindowSweepSelector final : public Selector {
 public:
  explicit WindowSweepSelector(KernelType kernel = KernelType::kEpanechnikov,
                               Precision precision = Precision::kDouble,
                               bool parallel = false,
                               parallel::ThreadPool* pool = nullptr)
      : kernel_(kernel), precision_(precision), parallel_(parallel),
        pool_(pool) {}

  SelectionResult select(const data::Dataset& data,
                         const BandwidthGrid& grid) const override;
  std::string name() const override;

 private:
  KernelType kernel_;
  Precision precision_;
  bool parallel_;
  parallel::ThreadPool* pool_;
};

/// Numerical-optimization method used by CvOptimizerSelector.
enum class OptimizeMethod { kGoldenSection, kBrent };
std::string_view to_string(OptimizeMethod method) noexcept;

/// **Programs 1 & 2** — the R-style baselines: numerical minimization of
/// the naive O(n²) CV objective over [grid.min, grid.max].
///
/// Program 1 (R np analogue): sequential objective, one start. Program 2
/// (multicore R analogue): objective parallelized across the pool. Both
/// inherit the documented weakness of numerical optimization on this
/// objective — the CV surface "is not necessarily concave", so a single
/// start can converge to a non-global minimum; `starts > 1` applies the
/// multistart mitigation the np documentation recommends.
struct OptimizerSelectorConfig {
  KernelType kernel = KernelType::kEpanechnikov;
  OptimizeMethod method = OptimizeMethod::kBrent;
  std::size_t starts = 1;           ///< sub-brackets for multistart
  bool parallel_objective = false;  ///< Program 2 when true
  parallel::ThreadPool* pool = nullptr;
  OptimizeOptions options;
};

class CvOptimizerSelector final : public Selector {
 public:
  using Config = OptimizerSelectorConfig;

  explicit CvOptimizerSelector(Config config = Config()) : config_(config) {}

  SelectionResult select(const data::Dataset& data,
                         const BandwidthGrid& grid) const override;
  std::string name() const override;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace kreg
