#include "core/refine.hpp"

#include <algorithm>
#include <stdexcept>

namespace kreg {

SelectionResult refine_select(const Selector& selector,
                              const data::Dataset& data,
                              const BandwidthGrid& initial,
                              const RefineOptions& options) {
  if (options.rounds == 0 || options.k_per_round < 2) {
    throw std::invalid_argument(
        "refine_select: need rounds >= 1 and k_per_round >= 2");
  }
  if (!(options.shrink > 0.0 && options.shrink < 1.0)) {
    throw std::invalid_argument("refine_select: shrink must be in (0, 1)");
  }

  const double floor_h = initial.min();
  const double ceil_h = initial.max();

  BandwidthGrid grid(floor_h, ceil_h, options.k_per_round);
  SelectionResult best = selector.select(data, grid);
  std::size_t total_evaluations = best.evaluations;
  double range = ceil_h - floor_h;

  for (std::size_t round = 1; round < options.rounds; ++round) {
    range *= options.shrink;
    if (range <= 0.0) {
      break;
    }
    double lo = std::max(floor_h, best.bandwidth - range / 2.0);
    double hi = std::min(ceil_h, lo + range);
    lo = std::max(floor_h, hi - range);  // keep the window width if clamped
    if (!(lo < hi)) {
      break;
    }
    grid = BandwidthGrid(lo, hi, options.k_per_round);
    SelectionResult round_result = selector.select(data, grid);
    total_evaluations += round_result.evaluations;
    if (round_result.cv_score <= best.cv_score) {
      best = std::move(round_result);
    }
  }
  best.evaluations = total_evaluations;
  best.method += "+refine";
  return best;
}

}  // namespace kreg
