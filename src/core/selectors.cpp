#include "core/selectors.hpp"

#include <stdexcept>
#include <utility>

namespace kreg {

SelectionResult selection_from_profile(const BandwidthGrid& grid,
                                       std::vector<double> scores,
                                       std::string method) {
  if (scores.size() != grid.size()) {
    throw std::invalid_argument(
        "selection_from_profile: profile/grid size mismatch");
  }
  std::size_t best = 0;
  for (std::size_t b = 1; b < scores.size(); ++b) {
    if (scores[b] < scores[best]) {
      best = b;
    }
  }
  SelectionResult result;
  result.bandwidth = grid[best];
  result.cv_score = scores[best];
  result.grid = grid.values();
  result.scores = std::move(scores);
  result.evaluations = result.grid.size();
  result.method = std::move(method);
  return result;
}

SelectionResult NaiveGridSelector::select(const data::Dataset& data,
                                          const BandwidthGrid& grid) const {
  data.validate();
  std::vector<double> scores;
  scores.reserve(grid.size());
  for (double h : grid.values()) {
    scores.push_back(parallel_ ? cv_score_parallel(data, h, kernel_, pool_)
                               : cv_score(data, h, kernel_));
  }
  return selection_from_profile(grid, std::move(scores), name());
}

std::string NaiveGridSelector::name() const {
  return std::string("naive-grid(") + std::string(to_string(kernel_)) +
         (parallel_ ? ",parallel" : "") + ")";
}

SelectionResult SortedGridSelector::select(const data::Dataset& data,
                                           const BandwidthGrid& grid) const {
  data.validate();
  std::vector<double> scores =
      sweep_cv_profile(data, grid.values(), kernel_, precision_);
  return selection_from_profile(grid, std::move(scores), name());
}

std::string SortedGridSelector::name() const {
  return std::string("sorted-grid(") + std::string(to_string(kernel_)) + "," +
         std::string(to_string(precision_)) + ")";
}

SelectionResult ParallelSortedGridSelector::select(
    const data::Dataset& data, const BandwidthGrid& grid) const {
  data.validate();
  std::vector<double> scores = sweep_cv_profile_parallel(
      data, grid.values(), kernel_, precision_, pool_);
  return selection_from_profile(grid, std::move(scores), name());
}

std::string ParallelSortedGridSelector::name() const {
  return std::string("parallel-sorted-grid(") +
         std::string(to_string(kernel_)) + "," +
         std::string(to_string(precision_)) + ")";
}

SelectionResult WindowSweepSelector::select(const data::Dataset& data,
                                            const BandwidthGrid& grid) const {
  data.validate();
  std::vector<double> scores =
      parallel_ ? window_cv_profile_parallel(data, grid.values(), kernel_,
                                             precision_, pool_)
                : window_cv_profile(data, grid.values(), kernel_, precision_);
  return selection_from_profile(grid, std::move(scores), name());
}

std::string WindowSweepSelector::name() const {
  return std::string("window-sweep(") + std::string(to_string(kernel_)) + "," +
         std::string(to_string(precision_)) +
         (parallel_ ? ",parallel" : "") + ")";
}

std::string_view to_string(EstimatorKind estimator) noexcept {
  switch (estimator) {
    case EstimatorKind::kNadarayaWatson:
      return "nw";
    case EstimatorKind::kKnn:
      return "knn";
    case EstimatorKind::kOscv:
      return "oscv";
  }
  return "unknown";
}

EstimatorKind parse_estimator(std::string_view text) {
  if (text == "nw") {
    return EstimatorKind::kNadarayaWatson;
  }
  if (text == "knn") {
    return EstimatorKind::kKnn;
  }
  if (text == "oscv") {
    return EstimatorKind::kOscv;
  }
  throw std::invalid_argument("parse_estimator: unknown estimator '" +
                              std::string(text) +
                              "' (expected nw, knn, or oscv)");
}

std::string_view to_string(OptimizeMethod method) noexcept {
  switch (method) {
    case OptimizeMethod::kGoldenSection:
      return "golden-section";
    case OptimizeMethod::kBrent:
      return "brent";
  }
  return "unknown";
}

SelectionResult CvOptimizerSelector::select(const data::Dataset& data,
                                            const BandwidthGrid& grid) const {
  data.validate();
  const auto objective = [&](double h) {
    return config_.parallel_objective
               ? cv_score_parallel(data, h, config_.kernel, config_.pool)
               : cv_score(data, h, config_.kernel);
  };
  const auto method =
      config_.method == OptimizeMethod::kGoldenSection ? golden_section
                                                       : brent;
  OptimizeResult opt;
  if (config_.starts <= 1) {
    opt = method(objective, grid.min(), grid.max(), config_.options);
  } else {
    opt = multistart(objective, grid.min(), grid.max(), config_.starts,
                     method, config_.options);
  }

  SelectionResult result;
  result.bandwidth = opt.x;
  result.cv_score = opt.fx;
  result.evaluations = opt.evaluations;
  result.method = name();
  return result;
}

std::string CvOptimizerSelector::name() const {
  std::string n = "cv-optimizer(";
  n += to_string(config_.kernel);
  n += ",";
  n += to_string(config_.method);
  if (config_.starts > 1) {
    n += ",starts=" + std::to_string(config_.starts);
  }
  if (config_.parallel_objective) {
    n += ",parallel";
  }
  n += ")";
  return n;
}

}  // namespace kreg
