#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace kreg {

/// Outcome of a bandwidth selection.
///
/// Grid-based selectors fill `grid`/`scores` with the whole cross-validation
/// profile (same length, aligned); optimizer-based selectors leave them
/// empty and report the trajectory length in `evaluations` instead.
struct SelectionResult {
  double bandwidth = 0.0;   ///< selected h (argmin of the CV criterion)
  double cv_score = 0.0;    ///< CV_lc at the selected bandwidth
  std::vector<double> grid;    ///< candidate bandwidths evaluated (may be empty)
  std::vector<double> scores;  ///< CV_lc per candidate (aligned with grid)
  std::size_t evaluations = 0;  ///< number of CV-objective evaluations
  std::string method;           ///< selector name, for reports
};

}  // namespace kreg
