#include "core/oscv_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/detail/device_sweep.hpp"
#include "core/validate_grid.hpp"
#include "parallel/parallel_for.hpp"

namespace kreg {

namespace {

void check_oscv_inputs(const data::Dataset& data, std::span<const double> grid,
                       KernelType kernel, const char* fn) {
  if (data.empty()) {
    throw std::invalid_argument(std::string(fn) + ": empty dataset");
  }
  validate_bandwidth_grid(grid, fn);
  if (!is_sweepable(kernel)) {
    throw std::invalid_argument(
        std::string(fn) + ": kernel '" + std::string(to_string(kernel)) +
        "' is not supported by the one-sided window sweep");
  }
}

template <class Scalar>
std::vector<double> profile_sequential(const data::Dataset& data,
                                       std::span<const double> grid,
                                       KernelType kernel) {
  const std::size_t n = data.size();
  const SweepPolynomial poly = sweep_polynomial(kernel);
  const SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);
  const std::vector<Scalar> host_grid(grid.begin(), grid.end());

  std::vector<double> totals(grid.size(), 0.0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    detail::oscv_sweep_thread<Scalar>(
        std::span<const Scalar>(sorted.x), std::span<const Scalar>(sorted.y),
        std::span<const Scalar>(host_grid), poly, pos,
        [&](std::size_t b, Scalar sq) {
          totals[b] += static_cast<double>(sq);
        });
  }
  for (double& total : totals) {
    total /= static_cast<double>(n);
  }
  return totals;
}

template <class Scalar>
std::vector<double> profile_parallel(const data::Dataset& data,
                                     std::span<const double> grid,
                                     KernelType kernel,
                                     parallel::ThreadPool* pool) {
  const std::size_t n = data.size();
  const std::size_t k = grid.size();
  const SweepPolynomial poly = sweep_polynomial(kernel);
  if (pool == nullptr) {
    pool = &parallel::ThreadPool::global();
  }
  const SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);
  const std::vector<Scalar> host_grid(grid.begin(), grid.end());
  const std::span<const Scalar> xs(sorted.x);
  const std::span<const Scalar> ys(sorted.y);
  const std::span<const Scalar> hs(host_grid);

  const std::vector<parallel::BlockedRange> slices =
      parallel::partition_evenly(n, pool->size());
  std::vector<std::vector<double>> partials(slices.size(),
                                            std::vector<double>(k, 0.0));
  parallel::parallel_for(
      slices.size(),
      [&](std::size_t s) {
        std::vector<double>& acc = partials[s];
        for (std::size_t pos = slices[s].begin; pos < slices[s].end; ++pos) {
          detail::oscv_sweep_thread<Scalar>(xs, ys, hs, poly, pos,
                                            [&](std::size_t b, Scalar sq) {
                                              acc[b] +=
                                                  static_cast<double>(sq);
                                            });
        }
      },
      pool);

  std::vector<double> totals(k, 0.0);
  for (const std::vector<double>& partial : partials) {
    for (std::size_t b = 0; b < k; ++b) {
      totals[b] += partial[b];
    }
  }
  for (double& total : totals) {
    total /= static_cast<double>(n);
  }
  return totals;
}

template <class Scalar>
std::vector<double> profile_tiled(const data::Dataset& data,
                                  std::span<const double> grid,
                                  KernelType kernel, HostTiling tiling,
                                  parallel::ThreadPool* pool) {
  const std::size_t n = data.size();
  const std::size_t k = grid.size();
  const SweepPolynomial poly = sweep_polynomial(kernel);
  const std::size_t terms = detail::oscv_moment_count(poly);
  if (pool == nullptr) {
    pool = &parallel::ThreadPool::global();
  }
  const std::size_t n_block = tiling.n_block != 0 ? tiling.n_block : 2048;
  const std::size_t k_block = tiling.k_block != 0
                                  ? std::min(tiling.k_block, k)
                                  : std::min<std::size_t>(64, k);

  const SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);
  const std::vector<Scalar> host_grid(grid.begin(), grid.end());
  const std::span<const Scalar> xs(sorted.x);
  const std::span<const Scalar> ys(sorted.y);

  const std::size_t tiles = (n + n_block - 1) / n_block;
  std::vector<std::vector<double>> partials(tiles,
                                            std::vector<double>(k, 0.0));
  parallel::parallel_for(
      tiles,
      [&](std::size_t tile) {
        const std::size_t begin = tile * n_block;
        const std::size_t nb = std::min(n_block, n - begin);
        std::vector<double>& acc = partials[tile];

        std::vector<std::size_t> lo(nb);
        std::vector<std::size_t> count(nb);
        std::vector<Scalar> mq(nb * terms);
        std::vector<Scalar> nq(nb * terms);
        for (std::size_t r = 0; r < nb; ++r) {
          detail::oscv_sweep_seed<Scalar>(
              begin + r, lo[r], count[r],
              std::span<Scalar>(mq.data() + r * terms, terms),
              std::span<Scalar>(nq.data() + r * terms, terms));
        }

        for (std::size_t b0 = 0; b0 < k; b0 += k_block) {
          const std::size_t kb = std::min(k_block, k - b0);
          const std::span<const Scalar> hs(host_grid.data() + b0, kb);
          for (std::size_t r = 0; r < nb; ++r) {
            detail::oscv_sweep_resume<Scalar>(
                xs, ys, hs, poly, begin + r, lo[r], count[r],
                std::span<Scalar>(mq.data() + r * terms, terms),
                std::span<Scalar>(nq.data() + r * terms, terms),
                [&](std::size_t b, Scalar sq) {
                  acc[b0 + b] += static_cast<double>(sq);
                });
          }
        }
      },
      pool);

  std::vector<double> totals(k, 0.0);
  for (const std::vector<double>& partial : partials) {
    for (std::size_t b = 0; b < k; ++b) {
      totals[b] += partial[b];
    }
  }
  for (double& total : totals) {
    total /= static_cast<double>(n);
  }
  return totals;
}

/// The O(n²·|grid|) reference: per (observation, b) the one-sided moments
/// are re-accumulated from scratch in the same outward (descending-index)
/// order the fast carry follows, then scored through the shared
/// oscv_residual — so the reference reproduces the fast profile bitwise.
template <class Scalar>
std::vector<double> profile_naive(const data::Dataset& data,
                                  std::span<const double> grid,
                                  KernelType kernel) {
  const std::size_t n = data.size();
  const SweepPolynomial poly = sweep_polynomial(kernel);
  const std::size_t terms = detail::oscv_moment_count(poly);
  const SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);
  const std::vector<Scalar> host_grid(grid.begin(), grid.end());
  const std::span<const Scalar> xs(sorted.x);
  const std::span<const Scalar> ys(sorted.y);

  std::vector<double> totals(grid.size(), 0.0);
  Scalar mq[detail::kOscvMaxMoments];
  Scalar nq[detail::kOscvMaxMoments];
  for (std::size_t pos = 0; pos < n; ++pos) {
    const Scalar xi = xs[pos];
    const Scalar yi = ys[pos];
    for (std::size_t b = 0; b < host_grid.size(); ++b) {
      const Scalar h = host_grid[b];
      std::fill(mq, mq + terms, Scalar{});
      std::fill(nq, nq + terms, Scalar{});
      std::size_t count = 0;
      for (std::size_t j = pos; j > 0 && xi - xs[j - 1] <= h; --j) {
        const Scalar d = xi - xs[j - 1];
        if (d > Scalar{0}) {
          const Scalar yl = ys[j - 1];
          Scalar pw = Scalar{1};
          for (std::size_t q = 0; q < terms; ++q) {
            mq[q] += pw;
            nq[q] += yl * pw;
            pw *= d;
          }
          ++count;
        }
      }
      totals[b] += static_cast<double>(detail::oscv_residual<Scalar>(
          poly, h, count, std::span<const Scalar>(mq, terms),
          std::span<const Scalar>(nq, terms), yi));
    }
  }
  for (double& total : totals) {
    total /= static_cast<double>(n);
  }
  return totals;
}

/// Device path: k-block streamed (resident = the one-pass case), same
/// shape as the k-NN device path — sweep kernel into a bandwidth-major
/// residual block, then an ordered per-bandwidth fold in ascending
/// observation order for bitwise equality with the sequential host fold.
template <class Scalar>
std::vector<double> profile_device(spmd::Device& device,
                                   const data::Dataset& data,
                                   std::span<const double> grid,
                                   KernelType kernel,
                                   const OscvDeviceConfig& config) {
  const std::size_t n = data.size();
  const std::size_t k = grid.size();
  const std::size_t tpb = config.threads_per_block;
  const SweepPolynomial poly = sweep_polynomial(kernel);
  const std::size_t terms = detail::oscv_moment_count(poly);

  const StreamingPlan plan = resolve_streaming(
      config.stream, k,
      oscv_estimated_streamed_bytes(n, k, config.precision, kernel),
      oscv_estimated_streamed_bytes(n, 0, config.precision, kernel),
      n * sizeof(Scalar) + sizeof(double),
      device.properties().memory_budget().global_bytes);

  const SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);
  std::vector<Scalar> host_grid(grid.begin(), grid.end());

  spmd::DeviceBuffer<Scalar> d_x = device.alloc_global<Scalar>(n, "x");
  spmd::DeviceBuffer<Scalar> d_y = device.alloc_global<Scalar>(n, "y");
  device.copy_to_device(d_x, std::span<const Scalar>(sorted.x));
  device.copy_to_device(d_y, std::span<const Scalar>(sorted.y));

  // O(n) one-sided carry state surviving across k-block launches.
  spmd::DeviceBuffer<std::size_t> d_lo =
      device.alloc_global<std::size_t>(n, "oscv-lo");
  spmd::DeviceBuffer<std::size_t> d_count =
      device.alloc_global<std::size_t>(n, "oscv-count");
  spmd::DeviceBuffer<Scalar> d_mq =
      device.alloc_global<Scalar>(n * terms, "oscv-moment-m");
  spmd::DeviceBuffer<Scalar> d_nq =
      device.alloc_global<Scalar>(n * terms, "oscv-moment-n");

  spmd::DeviceBuffer<Scalar> d_resid =
      device.alloc_global<Scalar>(n * plan.k_block, "oscv-residual-block");
  spmd::DeviceBuffer<double> d_scores =
      device.alloc_global<double>(plan.k_block, "oscv-score-block");

  std::span<const Scalar> xs = d_x.span();
  std::span<const Scalar> ys = d_y.span();
  spmd::MemView<std::size_t> lo_all = d_lo.view();
  spmd::MemView<std::size_t> count_all = d_count.view();
  spmd::MemView<Scalar> mq_all = d_mq.view();
  spmd::MemView<Scalar> nq_all = d_nq.view();
  spmd::MemView<Scalar> resid_all = d_resid.view();
  spmd::MemView<double> scores_all = d_scores.view();

  const spmd::LaunchConfig main_cfg = spmd::LaunchConfig::cover(n, tpb);
  std::vector<double> cv(k);
  std::vector<double> host_scores(plan.k_block);
  for (std::size_t b0 = 0; b0 < k; b0 += plan.k_block) {
    const std::size_t kb = std::min(plan.k_block, k - b0);
    const std::vector<Scalar> host_block(host_grid.begin() + b0,
                                         host_grid.begin() + b0 + kb);
    spmd::ConstantBuffer<Scalar> c_block =
        device.upload_constant<Scalar>(host_block, "oscv-grid-block");
    spmd::MemView<const Scalar> hs = c_block.view();
    const bool first = b0 == 0;

    device.launch("oscv_sweep_kblock", main_cfg,
                  [&, kb, first](const spmd::ThreadCtx& t) {
      const std::size_t j = t.global_idx();
      if (j >= n) {
        return;  // padding thread in the last block
      }
      Scalar m_q[detail::kOscvMaxMoments] = {};
      Scalar n_q[detail::kOscvMaxMoments] = {};
      std::size_t lo = 0;
      std::size_t count = 0;
      if (first) {
        detail::oscv_sweep_seed<Scalar>(j, lo, count,
                                        std::span<Scalar>(m_q, terms),
                                        std::span<Scalar>(n_q, terms));
      } else {
        lo = lo_all[j];
        count = count_all[j];
        for (std::size_t q = 0; q < terms; ++q) {
          m_q[q] = mq_all[j * terms + q];
          n_q[q] = nq_all[j * terms + q];
        }
      }
      detail::oscv_sweep_resume<Scalar>(
          xs, ys, hs, poly, j, lo, count, std::span<Scalar>(m_q, terms),
          std::span<Scalar>(n_q, terms), [&](std::size_t b, Scalar sq) {
            resid_all[b * n + j] = sq;
          });
      lo_all[j] = lo;
      count_all[j] = count;
      for (std::size_t q = 0; q < terms; ++q) {
        mq_all[j * terms + q] = m_q[q];
        nq_all[j * terms + q] = n_q[q];
      }
    });

    device.launch("oscv_score_fold", spmd::LaunchConfig::cover(kb, tpb),
                  [&, kb](const spmd::ThreadCtx& t) {
      const std::size_t b = t.global_idx();
      if (b >= kb) {
        return;
      }
      double total = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        total += static_cast<double>(resid_all[b * n + j]);
      }
      scores_all[b] = total;
    });

    device.copy_to_host(std::span<double>(host_scores), d_scores);
    for (std::size_t b = 0; b < kb; ++b) {
      cv[b0 + b] = host_scores[b] / static_cast<double>(n);
    }
  }
  return cv;
}

}  // namespace

double oscv_rescale_constant(KernelType kernel) {
  if (!is_sweepable(kernel)) {
    throw std::invalid_argument(
        "oscv_rescale_constant: kernel '" + std::string(to_string(kernel)) +
        "' has no closed-form one-sided rescaling here (not sweepable)");
  }
  const SweepPolynomial poly = sweep_polynomial(kernel);
  // One-sided kernel moments a_m = ∫₀¹ u^m K(u) du and squared moments
  // I_m = ∫₀¹ u^m K(u)² du, all rational in the polynomial coefficients.
  const auto a = [&](std::size_t m) {
    double sum = 0.0;
    for (std::size_t p = 0; p <= poly.max_power; ++p) {
      sum += poly.coeff[p] / static_cast<double>(p + m + 1);
    }
    return sum;
  };
  const auto i2 = [&](std::size_t m) {
    double sum = 0.0;
    for (std::size_t p = 0; p <= poly.max_power; ++p) {
      for (std::size_t q = 0; q <= poly.max_power; ++q) {
        sum += poly.coeff[p] * poly.coeff[q] /
               static_cast<double>(p + q + m + 1);
      }
    }
    return sum;
  };
  const double a0 = a(0);
  const double a1 = a(1);
  const double a2 = a(2);
  const double a3 = a(3);
  const double det = a0 * a2 - a1 * a1;
  // The one-sided local-linear equivalent kernel L(u) = (a₂ − a₁u)K(u)/det
  // on [0, 1]: ∫L = 1 and ∫uL = 0 by construction.
  const double mu2_l = (a2 * a2 - a1 * a3) / det;
  const double r_l =
      (a2 * a2 * i2(0) - 2.0 * a1 * a2 * i2(1) + a1 * a1 * i2(2)) /
      (det * det);
  // The symmetric kernel's constants, from the same half-line integrals.
  const double r_k = 2.0 * i2(0);
  const double mu2_k = 2.0 * a2;
  return std::pow((r_k * mu2_l * mu2_l) / (r_l * mu2_k * mu2_k), 0.2);
}

std::vector<double> oscv_profile(const data::Dataset& data,
                                 std::span<const double> grid,
                                 KernelType kernel, Precision precision) {
  check_oscv_inputs(data, grid, kernel, "oscv_profile");
  return precision == Precision::kFloat
             ? profile_sequential<float>(data, grid, kernel)
             : profile_sequential<double>(data, grid, kernel);
}

std::vector<double> oscv_profile_parallel(const data::Dataset& data,
                                          std::span<const double> grid,
                                          KernelType kernel,
                                          Precision precision,
                                          parallel::ThreadPool* pool) {
  check_oscv_inputs(data, grid, kernel, "oscv_profile_parallel");
  return precision == Precision::kFloat
             ? profile_parallel<float>(data, grid, kernel, pool)
             : profile_parallel<double>(data, grid, kernel, pool);
}

std::vector<double> oscv_profile_tiled(const data::Dataset& data,
                                       std::span<const double> grid,
                                       KernelType kernel, Precision precision,
                                       HostTiling tiling,
                                       parallel::ThreadPool* pool) {
  check_oscv_inputs(data, grid, kernel, "oscv_profile_tiled");
  return precision == Precision::kFloat
             ? profile_tiled<float>(data, grid, kernel, tiling, pool)
             : profile_tiled<double>(data, grid, kernel, tiling, pool);
}

std::vector<double> oscv_profile_naive(const data::Dataset& data,
                                       std::span<const double> grid,
                                       KernelType kernel,
                                       Precision precision) {
  check_oscv_inputs(data, grid, kernel, "oscv_profile_naive");
  return precision == Precision::kFloat
             ? profile_naive<float>(data, grid, kernel)
             : profile_naive<double>(data, grid, kernel);
}

std::vector<double> oscv_profile_device(spmd::Device& device,
                                        const data::Dataset& data,
                                        std::span<const double> grid,
                                        KernelType kernel,
                                        OscvDeviceConfig config) {
  check_oscv_inputs(data, grid, kernel, "oscv_profile_device");
  if (config.threads_per_block == 0) {
    throw std::invalid_argument(
        "oscv_profile_device: threads_per_block must be > 0");
  }
  return config.precision == Precision::kFloat
             ? profile_device<float>(device, data, grid, kernel, config)
             : profile_device<double>(device, data, grid, kernel, config);
}

std::size_t oscv_estimated_streamed_bytes(std::size_t n, std::size_t k_block,
                                          Precision precision,
                                          KernelType kernel) {
  const std::size_t scalar =
      precision == Precision::kFloat ? sizeof(float) : sizeof(double);
  const std::size_t terms =
      detail::oscv_moment_count(sweep_polynomial(kernel));
  // x, y + lo/count (size_t) + the two moment carries, plus the residual
  // block and its per-entry double score totals.
  const std::size_t base =
      n * (2 * scalar + 2 * sizeof(std::size_t) + 2 * terms * scalar);
  return base + k_block * (n * scalar + sizeof(double));
}

SelectionResult OscvSweepSelector::select(const data::Dataset& data,
                                          const BandwidthGrid& grid) const {
  std::vector<double> scores =
      parallel_
          ? oscv_profile_parallel(data, grid.values(), kernel_, precision_,
                                  pool_)
          : oscv_profile(data, grid.values(), kernel_, precision_);
  SelectionResult result =
      selection_from_profile(grid, std::move(scores), name());
  // The OSCV rescaling: grid/scores stay the one-sided profile over the
  // b-grid; the reported bandwidth is the two-sided ĥ = C·b̂.
  result.bandwidth *= oscv_rescale_constant(kernel_);
  return result;
}

std::string OscvSweepSelector::name() const {
  return parallel_ ? "oscv-sweep-parallel" : "oscv-sweep";
}

}  // namespace kreg
