#include "core/kde_sweep.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/detail/kde_polynomials.hpp"
#include "parallel/parallel_for.hpp"
#include "sort/introsort.hpp"

namespace kreg {

namespace {

void check_inputs(std::span<const double> xs, std::span<const double> grid,
                  KernelType kernel) {
  if (!is_kde_sweepable(kernel)) {
    throw std::invalid_argument(
        "kde sweep: kernel '" + std::string(to_string(kernel)) +
        "' lacks a single-polynomial self-convolution; use kde_lscv_score");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("kde sweep: need at least 2 observations");
  }
  if (grid.empty() || !(grid.front() > 0.0)) {
    throw std::invalid_argument("kde sweep: grid must be positive");
  }
  for (std::size_t b = 1; b < grid.size(); ++b) {
    if (grid[b] < grid[b - 1]) {
      throw std::invalid_argument("kde sweep: grid must be ascending");
    }
  }
}

/// Per-observation contribution: for each h, (K̄ sum over l≠i, K sum over
/// l≠i). Accumulated into conv_totals / loo_totals (length k each).
void sweep_observation_kde(std::span<const double> xs, std::size_t i,
                           std::span<const double> grid,
                           const detail::SupportPolynomial& kpoly,
                           const detail::SupportPolynomial& cpoly,
                           std::vector<double>& row_scratch,
                           std::span<double> conv_totals,
                           std::span<double> loo_totals) {
  const std::size_t n = xs.size();
  row_scratch.resize(n);
  for (std::size_t l = 0; l < n; ++l) {
    row_scratch[l] = std::abs(xs[l] - xs[i]);
  }
  sort::introsort(std::span<double>(row_scratch));

  detail::MomentSweep conv_sweep;  // admits |Δ| <= 2h
  detail::MomentSweep loo_sweep;   // admits |Δ| <= h
  const std::size_t max_power = std::max(kpoly.max_power, cpoly.max_power);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    const double h = grid[b];
    conv_sweep.admit_through(row_scratch, cpoly.support_scale * h, max_power);
    loo_sweep.admit_through(row_scratch, kpoly.support_scale * h, max_power);
    conv_totals[b] += conv_sweep.combine(cpoly, h);
    loo_totals[b] += loo_sweep.combine(kpoly, h);
  }
}

std::vector<double> assemble_scores(std::span<const double> grid,
                                    std::span<const double> conv_totals,
                                    std::span<const double> loo_totals,
                                    double roughness_value, std::size_t n) {
  const double dn = static_cast<double>(n);
  std::vector<double> scores(grid.size());
  for (std::size_t b = 0; b < grid.size(); ++b) {
    const double h = grid[b];
    scores[b] = roughness_value / (dn * h) + conv_totals[b] / (dn * dn * h) -
                2.0 * loo_totals[b] / (dn * (dn - 1.0) * h);
  }
  return scores;
}

}  // namespace

bool is_kde_sweepable(KernelType kernel) noexcept {
  return kernel == KernelType::kEpanechnikov ||
         kernel == KernelType::kUniform;
}

std::vector<double> kde_sweep_lscv_profile(std::span<const double> xs,
                                           std::span<const double> grid,
                                           KernelType kernel) {
  check_inputs(xs, grid, kernel);
  const detail::SupportPolynomial kpoly = detail::kde_kernel_poly(kernel);
  const detail::SupportPolynomial cpoly = detail::kde_convolution_poly(kernel);

  std::vector<double> conv_totals(grid.size(), 0.0);
  std::vector<double> loo_totals(grid.size(), 0.0);
  std::vector<double> scratch;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sweep_observation_kde(xs, i, grid, kpoly, cpoly, scratch, conv_totals,
                          loo_totals);
  }
  return assemble_scores(grid, conv_totals, loo_totals, roughness(kernel),
                         xs.size());
}

std::vector<double> kde_sweep_lscv_profile_parallel(
    std::span<const double> xs, std::span<const double> grid,
    KernelType kernel, parallel::ThreadPool* pool) {
  check_inputs(xs, grid, kernel);
  const detail::SupportPolynomial kpoly = detail::kde_kernel_poly(kernel);
  const detail::SupportPolynomial cpoly = detail::kde_convolution_poly(kernel);
  if (pool == nullptr) {
    pool = &parallel::ThreadPool::global();
  }

  const std::vector<parallel::BlockedRange> slices =
      parallel::partition_evenly(xs.size(), pool->size());
  std::vector<std::vector<double>> conv_parts(
      slices.size(), std::vector<double>(grid.size(), 0.0));
  std::vector<std::vector<double>> loo_parts(
      slices.size(), std::vector<double>(grid.size(), 0.0));

  parallel::parallel_for(
      slices.size(),
      [&](std::size_t s) {
        std::vector<double> scratch;
        for (std::size_t i = slices[s].begin; i < slices[s].end; ++i) {
          sweep_observation_kde(xs, i, grid, kpoly, cpoly, scratch,
                                conv_parts[s], loo_parts[s]);
        }
      },
      pool);

  std::vector<double> conv_totals(grid.size(), 0.0);
  std::vector<double> loo_totals(grid.size(), 0.0);
  for (std::size_t s = 0; s < slices.size(); ++s) {
    for (std::size_t b = 0; b < grid.size(); ++b) {
      conv_totals[b] += conv_parts[s][b];
      loo_totals[b] += loo_parts[s][b];
    }
  }
  return assemble_scores(grid, conv_totals, loo_totals, roughness(kernel),
                         xs.size());
}

SelectionResult kde_select_sweep(std::span<const double> xs,
                                 const BandwidthGrid& grid,
                                 KernelType kernel) {
  std::vector<double> scores =
      kde_sweep_lscv_profile(xs, grid.values(), kernel);
  std::size_t best = 0;
  for (std::size_t b = 1; b < scores.size(); ++b) {
    if (scores[b] < scores[best]) {
      best = b;
    }
  }
  SelectionResult result;
  result.bandwidth = grid[best];
  result.cv_score = scores[best];
  result.grid = grid.values();
  result.scores = std::move(scores);
  result.evaluations = result.grid.size();
  result.method = "kde-lscv-sweep(" + std::string(to_string(kernel)) + ")";
  return result;
}

}  // namespace kreg
