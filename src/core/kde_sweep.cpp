#include "core/kde_sweep.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/detail/kde_polynomials.hpp"
#include "core/validate_grid.hpp"
#include "parallel/parallel_for.hpp"
#include "sort/introsort.hpp"

namespace kreg {

namespace {

void check_inputs(std::span<const double> xs, std::span<const double> grid,
                  KernelType kernel) {
  if (!is_kde_sweepable(kernel)) {
    throw std::invalid_argument(
        "kde sweep: kernel '" + std::string(to_string(kernel)) +
        "' lacks a single-polynomial self-convolution; use kde_lscv_score");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("kde sweep: need at least 2 observations");
  }
  validate_bandwidth_grid(grid, "kde sweep");
}

/// Per-observation contribution: for each h, (K̄ sum over l≠i, K sum over
/// l≠i). Accumulated into conv_totals / loo_totals (length k each).
void sweep_observation_kde(std::span<const double> xs, std::size_t i,
                           std::span<const double> grid,
                           const detail::SupportPolynomial& kpoly,
                           const detail::SupportPolynomial& cpoly,
                           std::vector<double>& row_scratch,
                           std::span<double> conv_totals,
                           std::span<double> loo_totals) {
  const std::size_t n = xs.size();
  row_scratch.resize(n);
  for (std::size_t l = 0; l < n; ++l) {
    row_scratch[l] = std::abs(xs[l] - xs[i]);
  }
  sort::introsort(std::span<double>(row_scratch));

  detail::MomentSweep conv_sweep;  // admits |Δ| <= 2h
  detail::MomentSweep loo_sweep;   // admits |Δ| <= h
  const std::size_t max_power = std::max(kpoly.max_power, cpoly.max_power);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    const double h = grid[b];
    conv_sweep.admit_through(row_scratch, cpoly.support_scale * h, max_power);
    loo_sweep.admit_through(row_scratch, kpoly.support_scale * h, max_power);
    conv_totals[b] += conv_sweep.combine(cpoly, h);
    loo_totals[b] += loo_sweep.combine(kpoly, h);
  }
}

/// Window-sweep counterpart of sweep_observation_kde: the two admission
/// windows (K at |Δ| ≤ h, K̄ at |Δ| ≤ 2h) grow outward from the
/// observation's position in the globally sorted X array — no per-row
/// distance materialization, no per-row sort.
void window_observation_kde(std::span<const double> xs_sorted, std::size_t pos,
                            std::span<const double> grid,
                            const detail::SupportPolynomial& kpoly,
                            const detail::SupportPolynomial& cpoly,
                            std::span<double> conv_totals,
                            std::span<double> loo_totals) {
  const double xi = xs_sorted[pos];
  detail::WindowMomentSweep conv_sweep;  // admits |Δ| <= 2h
  detail::WindowMomentSweep loo_sweep;   // admits |Δ| <= h
  conv_sweep.seed(pos);
  loo_sweep.seed(pos);
  const std::size_t max_power = std::max(kpoly.max_power, cpoly.max_power);
  for (std::size_t b = 0; b < grid.size(); ++b) {
    const double h = grid[b];
    conv_sweep.expand(xs_sorted, xi, cpoly.support_scale * h, max_power);
    loo_sweep.expand(xs_sorted, xi, kpoly.support_scale * h, max_power);
    conv_totals[b] += conv_sweep.combine(cpoly, h);
    loo_totals[b] += loo_sweep.combine(kpoly, h);
  }
}

std::vector<double> assemble_scores(std::span<const double> grid,
                                    std::span<const double> conv_totals,
                                    std::span<const double> loo_totals,
                                    double roughness_value, std::size_t n) {
  const double dn = static_cast<double>(n);
  std::vector<double> scores(grid.size());
  for (std::size_t b = 0; b < grid.size(); ++b) {
    const double h = grid[b];
    scores[b] = roughness_value / (dn * h) + conv_totals[b] / (dn * dn * h) -
                2.0 * loo_totals[b] / (dn * (dn - 1.0) * h);
  }
  return scores;
}

}  // namespace

bool is_kde_sweepable(KernelType kernel) noexcept {
  return kernel == KernelType::kEpanechnikov ||
         kernel == KernelType::kUniform;
}

std::vector<double> kde_sweep_lscv_profile(std::span<const double> xs,
                                           std::span<const double> grid,
                                           KernelType kernel) {
  check_inputs(xs, grid, kernel);
  const detail::SupportPolynomial kpoly = detail::kde_kernel_poly(kernel);
  const detail::SupportPolynomial cpoly = detail::kde_convolution_poly(kernel);

  std::vector<double> conv_totals(grid.size(), 0.0);
  std::vector<double> loo_totals(grid.size(), 0.0);
  std::vector<double> scratch;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sweep_observation_kde(xs, i, grid, kpoly, cpoly, scratch, conv_totals,
                          loo_totals);
  }
  return assemble_scores(grid, conv_totals, loo_totals, roughness(kernel),
                         xs.size());
}

std::vector<double> kde_sweep_lscv_profile_parallel(
    std::span<const double> xs, std::span<const double> grid,
    KernelType kernel, parallel::ThreadPool* pool) {
  check_inputs(xs, grid, kernel);
  const detail::SupportPolynomial kpoly = detail::kde_kernel_poly(kernel);
  const detail::SupportPolynomial cpoly = detail::kde_convolution_poly(kernel);
  if (pool == nullptr) {
    pool = &parallel::ThreadPool::global();
  }

  const std::vector<parallel::BlockedRange> slices =
      parallel::partition_evenly(xs.size(), pool->size());
  std::vector<std::vector<double>> conv_parts(
      slices.size(), std::vector<double>(grid.size(), 0.0));
  std::vector<std::vector<double>> loo_parts(
      slices.size(), std::vector<double>(grid.size(), 0.0));

  parallel::parallel_for(
      slices.size(),
      [&](std::size_t s) {
        std::vector<double> scratch;
        for (std::size_t i = slices[s].begin; i < slices[s].end; ++i) {
          sweep_observation_kde(xs, i, grid, kpoly, cpoly, scratch,
                                conv_parts[s], loo_parts[s]);
        }
      },
      pool);

  std::vector<double> conv_totals(grid.size(), 0.0);
  std::vector<double> loo_totals(grid.size(), 0.0);
  for (std::size_t s = 0; s < slices.size(); ++s) {
    for (std::size_t b = 0; b < grid.size(); ++b) {
      conv_totals[b] += conv_parts[s][b];
      loo_totals[b] += loo_parts[s][b];
    }
  }
  return assemble_scores(grid, conv_totals, loo_totals, roughness(kernel),
                         xs.size());
}

std::vector<double> kde_window_lscv_profile(std::span<const double> xs,
                                            std::span<const double> grid,
                                            KernelType kernel) {
  check_inputs(xs, grid, kernel);
  const detail::SupportPolynomial kpoly = detail::kde_kernel_poly(kernel);
  const detail::SupportPolynomial cpoly = detail::kde_convolution_poly(kernel);

  // One global sort; every observation's windows index into it.
  std::vector<double> sorted_x(xs.begin(), xs.end());
  sort::introsort(std::span<double>(sorted_x));

  std::vector<double> conv_totals(grid.size(), 0.0);
  std::vector<double> loo_totals(grid.size(), 0.0);
  for (std::size_t pos = 0; pos < sorted_x.size(); ++pos) {
    window_observation_kde(sorted_x, pos, grid, kpoly, cpoly, conv_totals,
                           loo_totals);
  }
  return assemble_scores(grid, conv_totals, loo_totals, roughness(kernel),
                         xs.size());
}

std::vector<double> kde_window_lscv_profile_parallel(
    std::span<const double> xs, std::span<const double> grid,
    KernelType kernel, parallel::ThreadPool* pool) {
  check_inputs(xs, grid, kernel);
  const detail::SupportPolynomial kpoly = detail::kde_kernel_poly(kernel);
  const detail::SupportPolynomial cpoly = detail::kde_convolution_poly(kernel);
  if (pool == nullptr) {
    pool = &parallel::ThreadPool::global();
  }

  std::vector<double> sorted_x(xs.begin(), xs.end());
  sort::introsort(std::span<double>(sorted_x));

  const std::vector<parallel::BlockedRange> slices =
      parallel::partition_evenly(xs.size(), pool->size());
  std::vector<std::vector<double>> conv_parts(
      slices.size(), std::vector<double>(grid.size(), 0.0));
  std::vector<std::vector<double>> loo_parts(
      slices.size(), std::vector<double>(grid.size(), 0.0));

  parallel::parallel_for(
      slices.size(),
      [&](std::size_t s) {
        for (std::size_t pos = slices[s].begin; pos < slices[s].end; ++pos) {
          window_observation_kde(sorted_x, pos, grid, kpoly, cpoly,
                                 conv_parts[s], loo_parts[s]);
        }
      },
      pool);

  std::vector<double> conv_totals(grid.size(), 0.0);
  std::vector<double> loo_totals(grid.size(), 0.0);
  for (std::size_t s = 0; s < slices.size(); ++s) {
    for (std::size_t b = 0; b < grid.size(); ++b) {
      conv_totals[b] += conv_parts[s][b];
      loo_totals[b] += loo_parts[s][b];
    }
  }
  return assemble_scores(grid, conv_totals, loo_totals, roughness(kernel),
                         xs.size());
}

namespace {

SelectionResult kde_selection_from_scores(const BandwidthGrid& grid,
                                          std::vector<double> scores,
                                          std::string method) {
  std::size_t best = 0;
  for (std::size_t b = 1; b < scores.size(); ++b) {
    if (scores[b] < scores[best]) {
      best = b;
    }
  }
  SelectionResult result;
  result.bandwidth = grid[best];
  result.cv_score = scores[best];
  result.grid = grid.values();
  result.scores = std::move(scores);
  result.evaluations = result.grid.size();
  result.method = std::move(method);
  return result;
}

}  // namespace

SelectionResult kde_select_sweep(std::span<const double> xs,
                                 const BandwidthGrid& grid,
                                 KernelType kernel) {
  return kde_selection_from_scores(
      grid, kde_sweep_lscv_profile(xs, grid.values(), kernel),
      "kde-lscv-sweep(" + std::string(to_string(kernel)) + ")");
}

SelectionResult kde_select_window(std::span<const double> xs,
                                  const BandwidthGrid& grid,
                                  KernelType kernel) {
  return kde_selection_from_scores(
      grid, kde_window_lscv_profile(xs, grid.values(), kernel),
      "kde-lscv-window(" + std::string(to_string(kernel)) + ")");
}

}  // namespace kreg
